package taskalloc_test

import (
	"fmt"
	"testing"

	"taskalloc"
	"taskalloc/internal/sweeprun"
)

// sweepGrid builds the PR 3 acceptance grid: 16 γ values × 4 seeds of a
// mid-size colony, the workload PERFORMANCE.md's serial-vs-parallel
// table is recorded on.
func sweepGrid() []sweeprun.Job {
	jobs := make([]sweeprun.Job, 0, 16*4)
	for v := 0; v < 16; v++ {
		gamma := 0.01 + 0.003*float64(v)
		for seed := uint64(1); seed <= 4; seed++ {
			jobs = append(jobs, sweeprun.Job{
				Meta: []string{fmt.Sprintf("%.3f", gamma)},
				Config: taskalloc.Config{
					Ants:    2000,
					Demands: []int{300, 500},
					Gamma:   gamma,
					Noise:   taskalloc.SigmoidNoise(gamma / 2),
					Seed:    seed,
					Shards:  1,
					BurnIn:  200,
				},
				Rounds: 400,
			})
		}
	}
	return jobs
}

// BenchmarkSweepRunner measures the multi-simulation batch runner on the
// 16-value × 4-seed grid: workers=1 is the serial sweep baseline,
// workers=8 the parallel runner over one shared worker pool. Jobs are
// independent CPU-bound simulations, so on a host with >= 8 cores the
// ratio of the two ns/op values is the sweep speedup (the collector adds
// one mutex acquisition per job). BENCH_3.json records both.
func BenchmarkSweepRunner(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := taskalloc.NewWorkerPool()
			defer pool.Close()
			jobs := sweepGrid()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := sweeprun.Run(jobs, sweeprun.Options{Workers: workers, Pool: pool})
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
