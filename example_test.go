package taskalloc_test

import (
	"fmt"

	"taskalloc"
)

// ExampleNew shows the minimal simulation: Algorithm Ant under sigmoid
// noise, with the Theorem 3.1 premise γ ≥ γ* arranged by construction.
func ExampleNew() {
	sim, err := taskalloc.New(taskalloc.Config{
		Ants:    2000,
		Demands: []int{300, 500},
		Noise:   taskalloc.SigmoidNoise(1.0 / 32), // γ* = 1/32 ≤ γ = 1/16
		Seed:    1,
		Shards:  1,
		BurnIn:  2000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim.Run(6000, nil)
	rep := sim.Report()
	fmt.Println("γ ≥ γ*:", sim.CriticalValue() <= 1.0/16)
	fmt.Println("within Theorem 3.1 band:", rep.AvgRegret <= sim.RegretBand())
	// Output:
	// γ ≥ γ*: true
	// within Theorem 3.1 band: true
}

// ExampleConfig_adversarial runs Algorithm Precise Adversarial against a
// worst-case grey-zone adversary.
func ExampleConfig_adversarial() {
	sim, err := taskalloc.New(taskalloc.Config{
		Ants:      2000,
		Demands:   []int{400, 400},
		Algorithm: taskalloc.PreciseAdversarial,
		Gamma:     0.06,
		Epsilon:   0.5,
		Noise:     taskalloc.AdversarialNoise(0.03),
		Init:      taskalloc.InitExact,
		Seed:      2,
		Shards:    1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim.Run(3200, nil)
	fmt.Println("critical value:", sim.CriticalValue())
	fmt.Println("ran rounds:", sim.Round())
	// Output:
	// critical value: 0.03
	// ran rounds: 3200
}

// ExampleSimulation_Run demonstrates the per-round observer.
func ExampleSimulation_Run() {
	sim, err := taskalloc.New(taskalloc.Config{
		Ants:    500,
		Demands: []int{100},
		Noise:   taskalloc.PerfectNoise(),
		Seed:    3,
		Shards:  1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	filled := uint64(0)
	sim.Run(100, func(round uint64, loads []int, demands []int) {
		if filled == 0 && loads[0] >= demands[0] {
			filled = round
		}
	})
	fmt.Println("task filled by round 100:", filled > 0)
	// Output:
	// task filled by round 100: true
}
