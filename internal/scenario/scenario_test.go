package scenario

import (
	"math"
	"strings"
	"testing"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

// checkSchedule verifies the demand.Schedule contract over a window:
// fixed task count, positive entries, and At determinism (same t twice).
func checkSchedule(t *testing.T, s demand.Schedule, rounds uint64) {
	t.Helper()
	k := s.Tasks()
	for r := uint64(0); r <= rounds; r++ {
		v := s.At(r)
		if len(v) != k {
			t.Fatalf("round %d: %d tasks, want %d", r, len(v), k)
		}
		for j, d := range v {
			if d < 1 {
				t.Fatalf("round %d task %d: non-positive demand %d", r, j, d)
			}
		}
		w := s.At(r)
		for j := range v {
			if v[j] != w[j] {
				t.Fatalf("round %d: At not deterministic", r)
			}
		}
	}
}

func TestSinusoid(t *testing.T) {
	base := demand.Vector{200, 400}
	s, err := NewSinusoid(base, []float64{0.5, 0.25}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, s, 500)
	// Period: one full cycle returns to the same value.
	for _, r := range []uint64{3, 57, 90} {
		a, b := s.At(r), s.At(r+100)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("period violated at round %d", r)
			}
		}
	}
	// Amplitude: task 0 reaches ~±50% of base over a cycle.
	lo, hi := base[0], base[0]
	for r := uint64(0); r < 100; r++ {
		d := s.At(r)[0]
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo > 110 || hi < 290 {
		t.Fatalf("amplitude not realized: min %d max %d", lo, hi)
	}

	if _, err := NewSinusoid(base, []float64{1.5, 0}, 100, nil); err == nil {
		t.Fatal("amplitude >= 1 accepted")
	}
	if _, err := NewSinusoid(base, nil, 0, nil); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestBurst(t *testing.T) {
	base := demand.Vector{100, 100}
	peak := demand.Vector{300, 50}
	b, err := NewBurst(base, peak, 50, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, b, 600)
	cases := []struct {
		t    uint64
		peak bool
	}{
		{0, false}, {49, false}, {50, true}, {69, true}, {70, false},
		{249, false}, {250, true}, {270, false}, {450, true},
	}
	for _, c := range cases {
		got := b.At(c.t)[0] == peak[0]
		if got != c.peak {
			t.Fatalf("round %d: peak=%v, want %v", c.t, got, c.peak)
		}
	}
	// Single burst: Every = 0.
	one, err := NewBurst(base, peak, 10, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if one.At(12)[0] != peak[0] || one.At(15)[0] != base[0] || one.At(1000)[0] != base[0] {
		t.Fatal("single-burst window wrong")
	}
	if _, err := NewBurst(base, peak, 0, 10, 10); err == nil {
		t.Fatal("Len >= Every accepted")
	}
	if _, err := NewBurst(base, demand.Vector{1}, 0, 0, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRandomWalk(t *testing.T) {
	base := demand.Vector{200, 300}
	min := demand.Vector{100, 150}
	max := demand.Vector{300, 450}
	w, err := NewRandomWalk(base, 10, 50, min, max, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, w, 5000)
	moved := false
	for r := uint64(0); r <= 5000; r++ {
		v := w.At(r)
		for j := range v {
			if v[j] < min[j] || v[j] > max[j] {
				t.Fatalf("round %d: %d outside [%d, %d]", r, v[j], min[j], max[j])
			}
		}
		if v[0] != base[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("walk never moved")
	}
	// Constant within an epoch; reproducible across instances; sample
	// paths differ across seeds. Out-of-order access must agree with a
	// forward sweep.
	if w.At(57)[0] != w.At(99)[0] {
		t.Fatal("demand changed mid-epoch")
	}
	w2, _ := NewRandomWalk(base, 10, 50, min, max, 7)
	if got, want := w2.At(4321)[1], w.At(4321)[1]; got != want {
		t.Fatalf("same seed diverged: %d vs %d", got, want)
	}
	w3, _ := NewRandomWalk(base, 10, 50, min, max, 8)
	same := true
	for r := uint64(0); r < 5000; r += 50 {
		if w3.At(r)[0] != w.At(r)[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical paths")
	}
	if _, err := NewRandomWalk(base, 0, 50, min, max, 1); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := NewRandomWalk(base, 5, 50, demand.Vector{250, 150}, max, 1); err == nil {
		t.Fatal("min above base accepted")
	}
}

func TestMarkovModulated(t *testing.T) {
	regimes := []demand.Vector{{400, 100}, {100, 400}, {250, 250}}
	p := [][]float64{
		{0.5, 0.5, 0},
		{0.25, 0.5, 0.25},
		{0, 0.5, 0.5},
	}
	m, err := NewMarkovModulated(regimes, p, 100, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, m, 20000)
	// Every vector is one of the regimes; forbidden one-step transitions
	// (0 -> 2 and 2 -> 0 have probability 0) never occur.
	visited := map[int]bool{}
	prev := m.State(0)
	if prev != 0 {
		t.Fatalf("start state %d", prev)
	}
	for e := uint64(1); e <= 200; e++ {
		s := m.State(e * 100)
		visited[s] = true
		if (prev == 0 && s == 2) || (prev == 2 && s == 0) {
			t.Fatalf("forbidden transition %d -> %d at epoch %d", prev, s, e)
		}
		prev = s
	}
	if len(visited) < 3 {
		t.Fatalf("chain visited only %d regimes in 200 epochs", len(visited))
	}
	// Reproducible across instances.
	m2, _ := NewMarkovModulated(regimes, p, 100, 0, 3)
	if m2.State(12345) != m.State(12345) {
		t.Fatal("same seed diverged")
	}
	if _, err := NewMarkovModulated(regimes, [][]float64{{1}}, 100, 0, 1); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	if _, err := NewMarkovModulated(regimes, [][]float64{
		{0.5, 0.4, 0}, {0.25, 0.5, 0.25}, {0, 0.5, 0.5},
	}, 100, 0, 1); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	if _, err := NewMarkovModulated(regimes, p, 100, 5, 1); err == nil {
		t.Fatal("bad start regime accepted")
	}
}

func TestTraceAndParse(t *testing.T) {
	tr, err := NewTrace([]uint64{0, 100, 250}, []demand.Vector{{10, 20}, {20, 10}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, tr, 400)
	for _, c := range []struct {
		t    uint64
		want int
	}{{0, 10}, {99, 10}, {100, 20}, {249, 20}, {250, 5}, {9999, 5}} {
		if got := tr.At(c.t)[0]; got != c.want {
			t.Fatalf("At(%d)[0] = %d, want %d", c.t, got, c.want)
		}
	}

	parsed, err := ParseTrace(strings.NewReader(
		"# recorded schedule\n\n0, 10, 20\n100,20,10\n250,5,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 3 || parsed.Tasks() != 2 || parsed.At(120)[1] != 10 {
		t.Fatalf("parsed trace wrong: %+v", parsed)
	}
	for _, bad := range []string{
		"5\n",          // no demands
		"x,1\n",        // bad round
		"0,zz\n",       // bad demand
		"0,1\n0,2\n",   // non-increasing rounds
		"0,1\n5,1,2\n", // ragged widths
		"0,0\n",        // non-positive demand
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("bad trace %q accepted", bad)
		}
	}
}

func TestSwitchedModel(t *testing.T) {
	base := noise.PerfectModel{}
	inv := noise.AdversarialModel{GammaAd: 0.5, Strategy: noise.Inverted{}}
	m := NewSwitchedModel(base, []NoiseSwitch{{At: 100, Model: inv}})

	if m.ModelAt(99) != noise.Model(base) || m.ModelAt(100) == noise.Model(base) {
		t.Fatal("regime boundary wrong")
	}
	var sw noise.Switcher = m // must satisfy the reporting interface
	if sw.ModelAt(500).Name() != inv.Name() {
		t.Fatal("ModelAt after switch")
	}

	// Describe delegates per round: deficit 0 is Lack under perfect
	// feedback, Overload under the inverted grey zone.
	env := noise.Env{Deficit: []float64{0}, Demand: []int{100}}
	out := make([]noise.TaskFeedback, 1)
	env.Round = 99
	m.Describe(env, out)
	if !out[0].Deterministic || out[0].Value != noise.Lack {
		t.Fatalf("pre-switch feedback %+v", out[0])
	}
	env.Round = 100
	m.Describe(env, out)
	if !out[0].Deterministic || out[0].Value != noise.Overload {
		t.Fatalf("post-switch feedback %+v", out[0])
	}
	if m.CriticalValue(1000, 100) != 0 {
		t.Fatal("CriticalValue must report the initial regime")
	}
	if m.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestTimelineValidate(t *testing.T) {
	ok := Timeline{
		Resizes:  []Resize{{At: 10, To: 5}, {At: 20, To: 10}},
		Switches: []NoiseSwitch{{At: 5, Model: noise.PerfectModel{}}},
	}
	if err := ok.Validate(10); err != nil {
		t.Fatal(err)
	}
	bad := []Timeline{
		{Resizes: []Resize{{At: 0, To: 5}}},
		{Resizes: []Resize{{At: 10, To: 5}, {At: 10, To: 6}}},
		{Resizes: []Resize{{At: 10, To: 0}}},
		{Resizes: []Resize{{At: 10, To: 11}}},
		{Switches: []NoiseSwitch{{At: 0, Model: noise.PerfectModel{}}}},
		{Switches: []NoiseSwitch{{At: 5, Model: nil}}},
		{Switches: []NoiseSwitch{{At: 5, Model: noise.PerfectModel{}}, {At: 5, Model: noise.PerfectModel{}}}},
	}
	for i, tl := range bad {
		if err := tl.Validate(10); err == nil {
			t.Fatalf("bad timeline %d accepted", i)
		}
	}
	if m := (Timeline{}).Model(noise.PerfectModel{}); m.Name() != "perfect" {
		t.Fatal("empty timeline must not wrap the model")
	}
}

// TestTimelineActiveAt: the projection picks the latest fired resize and
// tolerates unsorted (not-yet-validated) input.
func TestTimelineActiveAt(t *testing.T) {
	tl := Timeline{Resizes: []Resize{{At: 30, To: 7}, {At: 10, To: 5}}}
	for _, c := range []struct {
		t    uint64
		want int
	}{{0, 12}, {9, 12}, {10, 5}, {29, 5}, {30, 7}, {1000, 7}} {
		if got := tl.ActiveAt(12, c.t); got != c.want {
			t.Fatalf("ActiveAt(12, %d) = %d, want %d", c.t, got, c.want)
		}
	}
}

// TestTimelineDrive: resizes land exactly at their scheduled rounds on
// both engine types, regardless of how Run is chunked.
func TestTimelineDrive(t *testing.T) {
	dem := demand.Vector{50}
	tl := Timeline{Resizes: []Resize{{At: 10, To: 100}, {At: 30, To: 400}}}
	cfg := colony.Config{
		N:        400,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 1},
		Factory:  agent.AntFactory(1, agent.DefaultParams(0.05)),
		Seed:     3,
		Shards:   2,
	}
	e, err := colony.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	activeAt := map[uint64]int{}
	tl.Drive(e, 40, func(r uint64, _ []int, _ demand.Vector) {
		activeAt[r] = e.Active()
	})
	if e.Round() != 40 {
		t.Fatalf("Round = %d", e.Round())
	}
	for _, c := range []struct {
		r    uint64
		want int
	}{{9, 400}, {10, 100}, {29, 100}, {30, 400}, {40, 400}} {
		if activeAt[c.r] != c.want {
			t.Fatalf("round %d: active %d, want %d", c.r, activeAt[c.r], c.want)
		}
	}

	seq, err := colony.NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl.Drive(seq, 40, nil)
	if seq.Round() != 40 || seq.Active() != 400 {
		t.Fatalf("sequential drive: round %d active %d", seq.Round(), seq.Active())
	}

	// Regression: an event farther ahead than MaxInt64 rounds must not
	// wrap the chunk computation negative (Drive would spin forever).
	far := Timeline{Resizes: []Resize{{At: math.MaxUint64 - 3, To: 100}}}
	e3, err := colony.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	far.Drive(e3, 25, nil)
	if e3.Round() != 25 || e3.Active() != 400 {
		t.Fatalf("far-future resize broke Drive: round %d active %d", e3.Round(), e3.Active())
	}

	// Late scheduling: events whose round already passed are skipped.
	e2, err := colony.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Run(20, nil)
	tl.Drive(e2, 20, nil)
	if e2.Active() != 400 {
		t.Fatalf("late drive applied stale resize: active %d", e2.Active())
	}
}

// TestScheduleDemandSumsStayFeasible: a scenario kept within Assumptions
// 2.1 at construction stays within them over its whole horizon when the
// parameters promise it (sinusoid amplitude keeps Σd <= (1+amp)Σbase).
func TestScheduleDemandSumsStayFeasible(t *testing.T) {
	base := demand.Vector{300, 300}
	s, err := NewSinusoid(base, []float64{0.3, 0.3}, 500, []float64{0, math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(0); r <= 2000; r++ {
		if sum := s.At(r).Sum(); sum > 790 {
			t.Fatalf("round %d: Σd = %d exceeds (1+amp)Σbase", r, sum)
		}
	}
}
