package scenario

import (
	"fmt"

	"taskalloc/internal/demand"
)

// Frozen is an immutable snapshot of a demand schedule over a fixed
// horizon. Unlike the generative schedules in this package — whose At
// methods memoize their sample path and are therefore not safe for
// concurrent use — a Frozen schedule is read-only after construction and
// may be shared freely by simulations running in parallel (the sweep
// runner's usage). Rounds beyond the horizon return the horizon's
// vector, so a run never observes a demand the freeze did not cover.
type Frozen struct {
	vecs    []demand.Vector // vecs[t]; unchanged rounds share one backing vector
	horizon uint64
}

// Freeze pre-samples s over rounds [0, horizon] and returns the
// immutable snapshot. Consecutive rounds with equal demand share one
// backing vector, so freezing a piecewise-constant schedule over a long
// horizon costs O(horizon) pointers but only O(changes·k) ints.
func Freeze(s demand.Schedule, horizon uint64) (*Frozen, error) {
	if s == nil {
		return nil, fmt.Errorf("scenario: Freeze needs a schedule")
	}
	k := s.Tasks()
	vecs := make([]demand.Vector, horizon+1)
	for t := uint64(0); t <= horizon; t++ {
		v := s.At(t)
		if len(v) != k {
			return nil, fmt.Errorf("scenario: schedule yields %d tasks at round %d, want %d", len(v), t, k)
		}
		if t > 0 && vecs[t-1].Equal(v) {
			vecs[t] = vecs[t-1] // share the backing array
			continue
		}
		vecs[t] = v.Clone() // generative schedules own (and reuse) v
	}
	return &Frozen{vecs: vecs, horizon: horizon}, nil
}

// At implements demand.Schedule. Callers must not mutate the returned
// vector (it is shared across rounds and goroutines).
func (f *Frozen) At(t uint64) demand.Vector {
	if t > f.horizon {
		t = f.horizon
	}
	return f.vecs[t]
}

// Tasks implements demand.Schedule.
func (f *Frozen) Tasks() int { return len(f.vecs[0]) }

// Horizon returns the last pre-sampled round.
func (f *Frozen) Horizon() uint64 { return f.horizon }

// Points returns the snapshot's change points: the rounds (the first is
// always 0) at which the demand vector differs from the previous round,
// with the vector in force from each. Together with Horizon they
// reconstruct the snapshot exactly — the wire codec's encoding of a
// Frozen schedule — because the path is piecewise constant by
// construction.
func (f *Frozen) Points() ([]uint64, []demand.Vector) {
	var when []uint64
	var vecs []demand.Vector
	for t := uint64(0); t <= f.horizon; t++ {
		if t > 0 && f.vecs[t].Equal(f.vecs[t-1]) {
			continue
		}
		when = append(when, t)
		vecs = append(vecs, f.vecs[t].Clone())
	}
	return when, vecs
}
