package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"taskalloc/internal/demand"
	"taskalloc/internal/rng"
)

// This file defines the scenario algebra: operators that build new
// demand schedules out of existing ones — Compose (sequential splice),
// Modulate (pointwise scale), Superpose (sum), and StableNoise (an
// alpha-stable heavy-tailed noise regime). Every operator is defined
// together with its normalization rule in canon.go, so composed
// configurations still reduce to the behavioral normal form the
// service's semantic caches key on.

// maxStableDemand caps a StableNoise sample before the float → int
// conversion: alpha-stable noise is heavy-tailed (infinite variance for
// Alpha < 2), so a raw draw can exceed what int conversion defines.
const maxStableDemand = 1 << 31

// Compose splices schedules sequentially: part i is in force on rounds
// [When[i], When[i+1]) — the last part forever — and is evaluated in
// its own local time t − When[i], so each part behaves exactly as if
// its segment started at round 0.
type Compose struct {
	Parts []demand.Schedule
	When  []uint64 // When[0] == 0; strictly increasing
}

// NewCompose validates and builds a Compose. parts and when must have
// equal non-zero length, when must start at 0 and be strictly
// increasing, and every part must yield the same task count.
func NewCompose(parts []demand.Schedule, when []uint64) (*Compose, error) {
	if len(parts) == 0 || len(parts) != len(when) {
		return nil, errors.New("scenario: Compose needs matching, non-empty parts/when")
	}
	if when[0] != 0 {
		return nil, errors.New("scenario: Compose must start at round 0")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("scenario: Compose part %d is nil", i)
		}
		if i > 0 && when[i] <= when[i-1] {
			return nil, errors.New("scenario: Compose rounds must be strictly increasing")
		}
		if p.Tasks() != parts[0].Tasks() {
			return nil, fmt.Errorf("scenario: Compose part %d has %d tasks, want %d",
				i, p.Tasks(), parts[0].Tasks())
		}
	}
	return &Compose{Parts: parts, When: when}, nil
}

// At implements demand.Schedule: the in-force part evaluated at its
// local time.
func (c *Compose) At(t uint64) demand.Vector {
	i := sort.Search(len(c.When), func(i int) bool { return c.When[i] > t })
	// i >= 1 always: When[0] == 0 <= t.
	return c.Parts[i-1].At(t - c.When[i-1])
}

// Tasks implements demand.Schedule.
func (c *Compose) Tasks() int { return c.Parts[0].Tasks() }

// Modulate scales an inner schedule pointwise: task j's demand becomes
// max(1, round(Scale[j] · inner_j(t))). It models proportional load
// shifts (a colony serving double the brood) without re-deriving the
// underlying process.
type Modulate struct {
	Inner demand.Schedule
	Scale []float64 // per-task factor, positive and finite

	m memo
}

// NewModulate validates and builds a Modulate. scale must have one
// positive finite entry per task of inner.
func NewModulate(inner demand.Schedule, scale []float64) (*Modulate, error) {
	if inner == nil {
		return nil, errors.New("scenario: Modulate needs an inner schedule")
	}
	if len(scale) != inner.Tasks() {
		return nil, errors.New("scenario: Modulate Scale length mismatch")
	}
	for _, s := range scale {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("scenario: Modulate scale %v not positive finite", s)
		}
	}
	return &Modulate{Inner: inner, Scale: scale}, nil
}

// At implements demand.Schedule.
func (m *Modulate) At(t uint64) demand.Vector {
	if v, ok := m.m.get(t); ok {
		return v
	}
	in := m.Inner.At(t)
	v := make(demand.Vector, len(in))
	for j, d := range in {
		v[j] = clampPos(m.Scale[j] * float64(d))
	}
	return m.m.put(t, v)
}

// Tasks implements demand.Schedule.
func (m *Modulate) Tasks() int { return m.Inner.Tasks() }

// Superpose sums schedules pointwise: the demand of task j is the sum
// of every part's demand for j. It models independent workload sources
// (baseline foraging plus a seasonal overlay) sharing one task set.
type Superpose struct {
	Parts []demand.Schedule

	m memo
}

// NewSuperpose validates and builds a Superpose. All parts must yield
// the same task count.
func NewSuperpose(parts []demand.Schedule) (*Superpose, error) {
	if len(parts) == 0 {
		return nil, errors.New("scenario: Superpose needs >= 1 part")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("scenario: Superpose part %d is nil", i)
		}
		if p.Tasks() != parts[0].Tasks() {
			return nil, fmt.Errorf("scenario: Superpose part %d has %d tasks, want %d",
				i, p.Tasks(), parts[0].Tasks())
		}
	}
	return &Superpose{Parts: parts}, nil
}

// At implements demand.Schedule.
func (s *Superpose) At(t uint64) demand.Vector {
	if v, ok := s.m.get(t); ok {
		return v
	}
	v := make(demand.Vector, s.Parts[0].Tasks())
	for _, p := range s.Parts {
		for j, d := range p.At(t) {
			v[j] += d
		}
	}
	return s.m.put(t, v)
}

// Tasks implements demand.Schedule.
func (s *Superpose) Tasks() int { return s.Parts[0].Tasks() }

// StableNoise perturbs an inner schedule with symmetric alpha-stable
// noise: every Every rounds each task draws an independent S(Alpha)
// variate X and the demand becomes max(1, round(inner_j(t) + Sigma·X)),
// capped at maxStableDemand. Alpha = 2 is Gaussian-tailed; smaller
// Alpha gives the heavy-tailed shocks of the Lévy-stable workload
// models — rare, extreme demand spikes no finite-variance process
// produces. Draws derive from a hash of (Seed, epoch), so the sample
// path is reproducible and independent of call order.
type StableNoise struct {
	Inner demand.Schedule
	Alpha float64 // stability exponent in (0, 2]
	Sigma float64 // noise scale, >= 0
	Every uint64  // epoch length in rounds, >= 1
	Seed  uint64

	m memo
}

// NewStableNoise validates and builds a StableNoise schedule.
func NewStableNoise(inner demand.Schedule, alpha, sigma float64, every uint64, seed uint64) (*StableNoise, error) {
	if inner == nil {
		return nil, errors.New("scenario: StableNoise needs an inner schedule")
	}
	if !(alpha > 0) || alpha > 2 {
		return nil, fmt.Errorf("scenario: StableNoise alpha %v outside (0, 2]", alpha)
	}
	if !(sigma >= 0) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("scenario: StableNoise sigma %v not finite and >= 0", sigma)
	}
	if every < 1 {
		return nil, errors.New("scenario: StableNoise needs Every >= 1")
	}
	return &StableNoise{Inner: inner, Alpha: alpha, Sigma: sigma, Every: every, Seed: seed}, nil
}

// stableDraw samples a standard symmetric alpha-stable variate by the
// Chambers–Mallows–Stuck construction: with U uniform on (−π/2, π/2)
// and W exponential(1),
//
//	X = sin(αU)/cos(U)^{1/α} · (cos(U−αU)/W)^{(1−α)/α}   (α ≠ 1)
//	X = tan(U)                                            (α = 1)
func stableDraw(r *rng.Rng, alpha float64) float64 {
	u := math.Pi * (r.Float64() - 0.5)
	w := r.ExpFloat64()
	if alpha == 1 {
		return math.Tan(u)
	}
	x := math.Sin(alpha*u) / math.Pow(math.Cos(u), 1/alpha)
	return x * math.Pow(math.Cos(u-alpha*u)/w, (1-alpha)/alpha)
}

// At implements demand.Schedule.
func (s *StableNoise) At(t uint64) demand.Vector {
	if v, ok := s.m.get(t); ok {
		return v
	}
	in := s.Inner.At(t)
	v := make(demand.Vector, len(in))
	r := rng.New(epochSeed(s.Seed, t/s.Every))
	for j, d := range in {
		x := float64(d) + s.Sigma*stableDraw(r, s.Alpha)
		switch {
		case math.IsNaN(x) || x < 1:
			v[j] = 1
		case x > maxStableDemand:
			v[j] = maxStableDemand
		default:
			v[j] = clampPos(x)
		}
	}
	return s.m.put(t, v)
}

// Tasks implements demand.Schedule.
func (s *StableNoise) Tasks() int { return s.Inner.Tasks() }

var _ demand.Schedule = (*Compose)(nil)
var _ demand.Schedule = (*Modulate)(nil)
var _ demand.Schedule = (*Superpose)(nil)
var _ demand.Schedule = (*StableNoise)(nil)
