package scenario

import (
	"math"
	"testing"

	"taskalloc/internal/demand"
)

func TestComposeLocalTime(t *testing.T) {
	step, err := demand.NewStep(demand.Vector{10, 20}, []uint64{5}, []demand.Vector{{30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompose([]demand.Schedule{demand.Static{V: demand.Vector{1, 2}}, step}, []uint64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(99); !got.Equal(demand.Vector{1, 2}) {
		t.Fatalf("At(99) = %v, want first part", got)
	}
	// Round 100 is the step's local round 0: before its change.
	if got := c.At(100); !got.Equal(demand.Vector{10, 20}) {
		t.Fatalf("At(100) = %v, want step initial", got)
	}
	// Round 105 is the step's local round 5: at its change.
	if got := c.At(105); !got.Equal(demand.Vector{30, 40}) {
		t.Fatalf("At(105) = %v, want step change", got)
	}
	if c.Tasks() != 2 {
		t.Fatalf("Tasks() = %d", c.Tasks())
	}
}

func TestComposeValidation(t *testing.T) {
	stat := demand.Static{V: demand.Vector{5}}
	cases := []struct {
		name  string
		parts []demand.Schedule
		when  []uint64
	}{
		{"empty", nil, nil},
		{"length mismatch", []demand.Schedule{stat}, []uint64{0, 10}},
		{"nonzero start", []demand.Schedule{stat}, []uint64{3}},
		{"not increasing", []demand.Schedule{stat, stat}, []uint64{0, 0}},
		{"nil part", []demand.Schedule{stat, nil}, []uint64{0, 5}},
		{"task mismatch", []demand.Schedule{stat, demand.Static{V: demand.Vector{1, 2}}}, []uint64{0, 5}},
	}
	for _, c := range cases {
		if _, err := NewCompose(c.parts, c.when); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestModulateScalesAndClamps(t *testing.T) {
	m, err := NewModulate(demand.Static{V: demand.Vector{10, 3}}, []float64{2.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 10·2.5 = 25; 3·0.1 = 0.3 rounds to 0, clamps to 1.
	if got := m.At(7); !got.Equal(demand.Vector{25, 1}) {
		t.Fatalf("At = %v, want [25 1]", got)
	}
	if _, err := NewModulate(nil, []float64{1}); err == nil {
		t.Error("nil inner: want error")
	}
	if _, err := NewModulate(demand.Static{V: demand.Vector{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewModulate(demand.Static{V: demand.Vector{1}}, []float64{bad}); err == nil {
			t.Errorf("scale %v: want error", bad)
		}
	}
}

func TestSuperposeSums(t *testing.T) {
	step, err := demand.NewStep(demand.Vector{5, 5}, []uint64{10}, []demand.Vector{{7, 9}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSuperpose([]demand.Schedule{demand.Static{V: demand.Vector{100, 200}}, step})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(0); !got.Equal(demand.Vector{105, 205}) {
		t.Fatalf("At(0) = %v", got)
	}
	if got := s.At(10); !got.Equal(demand.Vector{107, 209}) {
		t.Fatalf("At(10) = %v", got)
	}
	if _, err := NewSuperpose(nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := NewSuperpose([]demand.Schedule{demand.Static{V: demand.Vector{1}}, nil}); err == nil {
		t.Error("nil part: want error")
	}
	if _, err := NewSuperpose([]demand.Schedule{
		demand.Static{V: demand.Vector{1}}, demand.Static{V: demand.Vector{1, 2}},
	}); err == nil {
		t.Error("task mismatch: want error")
	}
}

func TestStableNoiseDeterministicAndOrderFree(t *testing.T) {
	inner := demand.Static{V: demand.Vector{500, 800}}
	build := func() *StableNoise {
		s, err := NewStableNoise(inner, 1.4, 25, 10, 42)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	// Forward sweep vs. reverse access must agree: draws key on the
	// epoch hash, not call order.
	var forward []demand.Vector
	for tt := uint64(0); tt <= 100; tt++ {
		forward = append(forward, a.At(tt).Clone())
	}
	for tt := int(100); tt >= 0; tt-- {
		if got := b.At(uint64(tt)); !got.Equal(forward[tt]) {
			t.Fatalf("At(%d) order-dependent: %v vs %v", tt, got, forward[tt])
		}
	}
	// Same epoch shares one draw vector over a static inner.
	if !a.At(10).Equal(a.At(19)) {
		t.Fatalf("rounds 10 and 19 are one epoch: %v vs %v", a.At(10), a.At(19))
	}
	// Every value respects the demand floor and the tail cap.
	for e := uint64(0); e < 11; e++ {
		for _, d := range a.At(e * 10) {
			if d < 1 || d > maxStableDemand {
				t.Fatalf("epoch %d value outside [1, %d]", e, maxStableDemand)
			}
		}
	}
}

func TestStableNoiseAlphaOne(t *testing.T) {
	s, err := NewStableNoise(demand.Static{V: demand.Vector{100}}, 1, 10, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tt := uint64(0); tt < 50; tt++ {
		if d := s.At(tt)[0]; d < 1 || d > maxStableDemand {
			t.Fatalf("At(%d) = %d outside bounds", tt, d)
		}
	}
}

func TestStableNoiseValidation(t *testing.T) {
	inner := demand.Static{V: demand.Vector{10}}
	cases := []struct {
		name         string
		alpha, sigma float64
		every        uint64
		bad          bool
	}{
		{"ok gaussian tail", 2, 1, 1, false},
		{"ok cauchy", 1, 0.5, 5, false},
		{"alpha zero", 0, 1, 1, true},
		{"alpha over 2", 2.1, 1, 1, true},
		{"alpha nan", math.NaN(), 1, 1, true},
		{"sigma negative", 1.5, -1, 1, true},
		{"sigma nan", 1.5, math.NaN(), 1, true},
		{"sigma inf", 1.5, math.Inf(1), 1, true},
		{"every zero", 1.5, 1, 0, true},
	}
	for _, c := range cases {
		_, err := NewStableNoise(inner, c.alpha, c.sigma, c.every, 1)
		if (err != nil) != c.bad {
			t.Errorf("%s: err = %v, want error %v", c.name, err, c.bad)
		}
	}
	if _, err := NewStableNoise(nil, 1.5, 1, 1, 1); err == nil {
		t.Error("nil inner: want error")
	}
}
