package scenario

import (
	"sync"
	"testing"

	"taskalloc/internal/demand"
)

// TestFreezeMatchesSource: the frozen snapshot must reproduce the source
// schedule round for round, share backing arrays across unchanged
// rounds, and clamp beyond the horizon.
func TestFreezeMatchesSource(t *testing.T) {
	base := demand.Vector{200, 300}
	walk, err := NewRandomWalk(base, 10, 7, demand.Vector{100, 150}, demand.Vector{300, 450}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 200
	frozen, err := Freeze(walk, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh instance: the frozen path must equal what any fresh walk
	// would regenerate (Freeze consumed the memoizing original).
	fresh, err := NewRandomWalk(base, 10, 7, demand.Vector{100, 150}, demand.Vector{300, 450}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tt := uint64(0); tt <= horizon; tt++ {
		want := fresh.At(tt)
		got := frozen.At(tt)
		if !want.Equal(got) {
			t.Fatalf("round %d: frozen %v != source %v", tt, got, want)
		}
	}
	if frozen.Tasks() != 2 || frozen.Horizon() != horizon {
		t.Fatalf("Tasks=%d Horizon=%d", frozen.Tasks(), frozen.Horizon())
	}
	if got := frozen.At(horizon + 500); !got.Equal(frozen.At(horizon)) {
		t.Fatalf("beyond-horizon At = %v, want clamp to %v", got, frozen.At(horizon))
	}
	// Epochs are 7 rounds long: rounds within one epoch share backing.
	if &frozen.At(8)[0] != &frozen.At(13)[0] {
		t.Fatal("unchanged rounds must share one backing vector")
	}
}

// TestFreezeConcurrentReads: a frozen schedule is safe to read from many
// goroutines (run under -race in CI).
func TestFreezeConcurrentReads(t *testing.T) {
	sin, err := NewSinusoid(demand.Vector{100, 100, 100}, []float64{0.3, 0.3, 0.3}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Freeze(sin, 500)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sum := 0
			for tt := uint64(0); tt <= 500; tt++ {
				sum += frozen.At(tt).Sum()
			}
			if sum == 0 {
				t.Error("empty demand sums")
			}
		}(g)
	}
	wg.Wait()
}
