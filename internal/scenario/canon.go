package scenario

import (
	"math"
	"sort"

	"taskalloc/internal/demand"
)

// Canon reduces a schedule to its behavioral normal form: the minimal
// schedule family with the identical At(t) function for every round t.
// The engines consume schedules only through pointwise At evaluation,
// so two schedules with equal normal forms are behaviorally
// indistinguishable at any seed — the property the wire layer's
// SemanticHash and the service's semantic result caches rest on, and
// the property every reduction rule is pinned against by a
// reduced-vs-unreduced identical-trajectory test.
//
// Rules (each fires only when it is exactly behavior-preserving):
//
//   - Frozen and Trace point-lists collapse to the minimal
//     piecewise-constant family: one distinct vector → Static, else →
//     Step (a Frozen's horizon is behaviorally irrelevant — both clamp
//     to the last vector).
//   - Step folds a change at round 0 into the initial vector and drops
//     consecutive equal vectors; no changes left → Static.
//   - Sinusoid with all-zero amplitude → Static.
//   - Burst with Peak == Base → Static; a single burst (Every == 0) →
//     Step.
//   - RandomWalk pinned by its bounds (Min == Max) → Static.
//   - MarkovModulated whose reachable regimes are all equal → Static
//     (covers one-regime and absorbing-start chains, and rank-1 chains
//     over equal-valued regimes); a chain whose reachable rows are all
//     point masses follows a deterministic path — if that path's value
//     becomes constant, it collapses to Step/Static.
//   - Compose/Modulate/Superpose of piecewise-constant parts evaluate
//     to the equivalent Step/Static; a single-part Compose or Superpose
//     and an all-ones Modulate reduce to their (normalized) operand.
//   - StableNoise with Sigma == 0 → its (normalized) inner schedule.
//
// Schedules no rule applies to (generative families, algebra over
// generative operands) are returned with normalized children but are
// otherwise unchanged. Canon never mutates its argument.
func Canon(s demand.Schedule) demand.Schedule {
	return canon(s, maxCanonDepth)
}

// maxCanonDepth bounds the recursion over nested algebra operators, so
// a pathologically deep (or cyclic, via aliased parts) composition
// cannot overflow the stack; deeper levels are returned unnormalized.
const maxCanonDepth = 64

// pwcForm is a piecewise-constant view of a schedule: vecs[i] is in
// force from round when[i] (inclusive) to when[i+1] (exclusive), the
// last vector forever. when[0] is always 0.
type pwcForm struct {
	when []uint64
	vecs []demand.Vector
}

// at evaluates the view — the reference semantics fromPieces preserves.
func (p pwcForm) at(t uint64) demand.Vector {
	i := len(p.when) - 1
	for i > 0 && p.when[i] > t {
		i--
	}
	return p.vecs[i]
}

func canon(s demand.Schedule, depth int) demand.Schedule {
	if s == nil || depth <= 0 {
		return s
	}
	switch v := s.(type) {
	case *Compose:
		parts := make([]demand.Schedule, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = canon(p, depth-1)
		}
		if len(parts) == 1 {
			// When[0] == 0, so local time equals global time.
			return parts[0]
		}
		if p, ok := composePieces(parts, v.When); ok {
			return fromPieces(p, s)
		}
		out, err := NewCompose(parts, append([]uint64(nil), v.When...))
		if err != nil {
			return s
		}
		return out
	case *Modulate:
		inner := canon(v.Inner, depth-1)
		ones := true
		for _, f := range v.Scale {
			if f != 1 {
				ones = false
				break
			}
		}
		if ones {
			// clampPos(1·d) == d for every valid demand d >= 1.
			return inner
		}
		if p, ok := pieces(inner); ok {
			for i, vec := range p.vecs {
				scaled := make(demand.Vector, len(vec))
				for j, d := range vec {
					scaled[j] = clampPos(v.Scale[j] * float64(d))
				}
				p.vecs[i] = scaled
			}
			return fromPieces(p, s)
		}
		out, err := NewModulate(inner, append([]float64(nil), v.Scale...))
		if err != nil {
			return s
		}
		return out
	case *Superpose:
		parts := make([]demand.Schedule, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = canon(p, depth-1)
		}
		if len(parts) == 1 {
			return parts[0]
		}
		if p, ok := superposePieces(parts); ok {
			return fromPieces(p, s)
		}
		out, err := NewSuperpose(parts)
		if err != nil {
			return s
		}
		return out
	case *StableNoise:
		inner := canon(v.Inner, depth-1)
		if v.Sigma == 0 {
			// clampPos(d + 0) == d for every valid demand d >= 1.
			return inner
		}
		out, err := NewStableNoise(inner, v.Alpha, v.Sigma, v.Every, v.Seed)
		if err != nil {
			return s
		}
		return out
	}
	if p, ok := pieces(s); ok {
		return fromPieces(p, s)
	}
	return s
}

// pieces extracts the piecewise-constant view of a schedule, when it
// has one with finitely many change points. The returned vectors are
// fresh copies safe to mutate.
func pieces(s demand.Schedule) (pwcForm, bool) {
	switch v := s.(type) {
	case demand.Static:
		return pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.V.Clone()}}, true
	case *demand.Static:
		return pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.V.Clone()}}, true
	case *demand.Step:
		p := pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.Initial.Clone()}}
		for i, w := range v.When {
			if w == 0 {
				// A change at round 0 shadows the initial vector.
				p.vecs[0] = v.Changes[i].Clone()
				continue
			}
			p.when = append(p.when, w)
			p.vecs = append(p.vecs, v.Changes[i].Clone())
		}
		return p, true
	case *Trace:
		when, vecs := v.Points()
		// Rounds before the first stamp use the first vector, so the
		// first stamp is behaviorally round 0.
		when[0] = 0
		return pwcForm{when: when, vecs: vecs}, true
	case *Frozen:
		// Points always starts at round 0; rounds past the horizon clamp
		// to the last vector, exactly the pwcForm (and Step) semantics,
		// so the horizon itself carries no behavioral content.
		when, vecs := v.Points()
		return pwcForm{when: when, vecs: vecs}, true
	case *Sinusoid:
		for _, a := range v.Amp {
			if a != 0 {
				return pwcForm{}, false
			}
		}
		// Zero amplitude: clampPos(d·(1+0·sin)) == d at every round.
		return pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.Base.Clone()}}, true
	case *Burst:
		if v.Peak.Equal(v.Base) {
			return pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.Base.Clone()}}, true
		}
		if v.Every != 0 {
			return pwcForm{}, false // recurring: infinitely many changes
		}
		if v.Start == 0 {
			return pwcForm{
				when: []uint64{0, v.Len},
				vecs: []demand.Vector{v.Peak.Clone(), v.Base.Clone()},
			}, true
		}
		return pwcForm{
			when: []uint64{0, v.Start, v.Start + v.Len},
			vecs: []demand.Vector{v.Base.Clone(), v.Peak.Clone(), v.Base.Clone()},
		}, true
	case *RandomWalk:
		for j := range v.Min {
			if v.Min[j] != v.Max[j] {
				return pwcForm{}, false
			}
		}
		// Min == Max brackets Base, so every epoch clamps back to Base.
		return pwcForm{when: []uint64{0}, vecs: []demand.Vector{v.Base.Clone()}}, true
	case *MarkovModulated:
		return markovPieces(v)
	}
	return pwcForm{}, false
}

// markovPieces reduces degenerate Markov-modulated schedules. Two exact
// (not merely almost-sure) reductions apply:
//
//   - Every regime reachable from Start through positive-probability
//     transitions has the same vector: the sampled path can only ever
//     visit equal-valued regimes, so the schedule is Static whatever
//     the seed draws.
//   - Every reachable row is a point mass (its first non-zero entry has
//     probability >= 1): the sampled next state is independent of the
//     uniform draw, so the path is deterministic. If the path's cycle
//     holds one distinct vector, the schedule is an eventually-constant
//     Step; a cycle over distinct vectors stays Markov.
func markovPieces(m *MarkovModulated) (pwcForm, bool) {
	n := len(m.Regimes)
	reachable := make([]bool, n)
	queue := []int{m.Start}
	reachable[m.Start] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j, q := range m.P[i] {
			if q > 0 && !reachable[j] {
				reachable[j] = true
				queue = append(queue, j)
			}
		}
	}
	allEqual := true
	for j := 0; j < n && allEqual; j++ {
		if reachable[j] && !m.Regimes[j].Equal(m.Regimes[m.Start]) {
			allEqual = false
		}
	}
	if allEqual {
		return pwcForm{when: []uint64{0}, vecs: []demand.Vector{m.Regimes[m.Start].Clone()}}, true
	}

	// Deterministic-path check: every reachable row must pick its next
	// state regardless of the uniform draw u in [0, 1) — true exactly
	// when all entries before the first non-zero one are 0 (trivially)
	// and that entry is >= 1.
	next := make([]int, n)
	for i := 0; i < n; i++ {
		if !reachable[i] {
			next[i] = -1
			continue
		}
		next[i] = -1
		for j, q := range m.P[i] {
			if q != 0 {
				if q >= 1 {
					next[i] = j
				}
				break
			}
		}
		if next[i] == -1 {
			return pwcForm{}, false
		}
	}
	// Follow the deterministic path until a state repeats; at most n
	// steps to the cycle.
	seenAt := make([]int, n)
	for i := range seenAt {
		seenAt[i] = -1
	}
	var path []int
	state := m.Start
	for seenAt[state] == -1 {
		seenAt[state] = len(path)
		path = append(path, state)
		state = next[state]
	}
	cycleStart := seenAt[state]
	for i := cycleStart + 1; i < len(path); i++ {
		if !m.Regimes[path[i]].Equal(m.Regimes[path[cycleStart]]) {
			return pwcForm{}, false // genuine oscillation: stays Markov
		}
	}
	// Eventually constant: emit the pre-cycle epochs, then the cycle's
	// vector forever. Epoch e spans rounds [e·Dwell, (e+1)·Dwell).
	p := pwcForm{}
	for e := 0; e <= cycleStart; e++ {
		p.when = append(p.when, uint64(e)*m.Dwell)
		p.vecs = append(p.vecs, m.Regimes[path[e]].Clone())
	}
	return p, true
}

// composePieces splices piecewise-constant parts into one view: part
// i's change points shift by its segment start and truncate at the next
// segment boundary.
func composePieces(parts []demand.Schedule, when []uint64) (pwcForm, bool) {
	var out pwcForm
	for i, part := range parts {
		p, ok := pieces(part)
		if !ok {
			return pwcForm{}, false
		}
		start := when[i]
		end := uint64(math.MaxUint64)
		if i+1 < len(when) {
			end = when[i+1]
		}
		// The part's value at segment entry is p.at(0) == p.vecs[0]
		// (p.when[0] == 0), so the first emitted point is the segment
		// start itself.
		for k, w := range p.when {
			if w >= end-start { // local change at or past the segment end
				break
			}
			out.when = append(out.when, start+w)
			out.vecs = append(out.vecs, p.vecs[k])
		}
	}
	return out, true
}

// superposePieces sums piecewise-constant parts: the union of change
// points, each valued at the sum of the in-force vectors.
func superposePieces(parts []demand.Schedule) (pwcForm, bool) {
	views := make([]pwcForm, len(parts))
	times := map[uint64]bool{}
	for i, part := range parts {
		p, ok := pieces(part)
		if !ok {
			return pwcForm{}, false
		}
		views[i] = p
		for _, w := range p.when {
			times[w] = true
		}
	}
	when := make([]uint64, 0, len(times))
	for w := range times {
		when = append(when, w)
	}
	sort.Slice(when, func(i, j int) bool { return when[i] < when[j] })
	out := pwcForm{when: when}
	k := len(views[0].vecs[0])
	for _, w := range when {
		sum := make(demand.Vector, k)
		for _, p := range views {
			for j, d := range p.at(w) {
				sum[j] += d
			}
		}
		out.vecs = append(out.vecs, sum)
	}
	return out, true
}

// fromPieces builds the minimal schedule for a piecewise-constant view:
// consecutive equal vectors merge, a single distinct vector is Static,
// anything else is a Step. orig is returned unchanged if the view is
// malformed (a constructor rejects it) — normalization must never turn
// a representable schedule into an error.
func fromPieces(p pwcForm, orig demand.Schedule) demand.Schedule {
	if len(p.when) == 0 || len(p.when) != len(p.vecs) {
		return orig
	}
	when := []uint64{p.when[0]}
	vecs := []demand.Vector{p.vecs[0]}
	for i := 1; i < len(p.when); i++ {
		if p.vecs[i].Equal(vecs[len(vecs)-1]) {
			continue
		}
		when = append(when, p.when[i])
		vecs = append(vecs, p.vecs[i])
	}
	if len(vecs) == 1 {
		if vecs[0].Validate() != nil {
			return orig
		}
		return demand.Static{V: vecs[0]}
	}
	step, err := demand.NewStep(vecs[0], when[1:], vecs[1:])
	if err != nil {
		return orig
	}
	return step
}
