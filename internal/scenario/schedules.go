package scenario

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"taskalloc/internal/demand"
	"taskalloc/internal/rng"
)

// memo caches the most recent At result so the engine's several At(t)
// calls per round (feedback, observer, metrics) share one allocation.
type memo struct {
	t uint64
	v demand.Vector
}

func (m *memo) get(t uint64) (demand.Vector, bool) {
	if m.v != nil && m.t == t {
		return m.v, true
	}
	return nil, false
}

func (m *memo) put(t uint64, v demand.Vector) demand.Vector {
	m.t, m.v = t, v
	return v
}

// clampPos rounds x to the nearest integer demand, never below 1.
func clampPos(x float64) int {
	d := int(math.Round(x))
	if d < 1 {
		return 1
	}
	return d
}

// epochSeed derives the deterministic RNG seed for one epoch of a
// generative schedule: a splitmix-style hash of (seed, epoch), so sample
// paths are reproducible and independent of the order At is called in.
func epochSeed(seed, epoch uint64) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15 ^ (epoch * 0xd1342543de82ef95)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sinusoid is a seasonal demand process: task j oscillates around
// Base[j] with relative amplitude Amp[j] and a common period,
//
//	d_j(t) = max(1, round(Base[j] · (1 + Amp[j]·sin(2πt/Period + Phase[j])))).
//
// It models slow environmental drift (day/night foraging cycles); each
// round's vector is a pure function of t.
type Sinusoid struct {
	Base   demand.Vector
	Amp    []float64 // per-task relative amplitude, in [0, 1)
	Period float64   // rounds per full cycle, > 0
	Phase  []float64 // per-task phase offset in radians; nil = all zero

	m memo
}

// NewSinusoid validates and builds a Sinusoid. amp and phase may be nil
// (no modulation / zero phase) or per-task slices.
func NewSinusoid(base demand.Vector, amp []float64, period float64, phase []float64) (*Sinusoid, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, errors.New("scenario: Sinusoid needs Period > 0")
	}
	if amp == nil {
		amp = make([]float64, len(base))
	}
	if len(amp) != len(base) {
		return nil, errors.New("scenario: Sinusoid Amp length mismatch")
	}
	for _, a := range amp {
		if a < 0 || a >= 1 || math.IsNaN(a) {
			return nil, fmt.Errorf("scenario: Sinusoid amplitude %v outside [0, 1)", a)
		}
	}
	if phase == nil {
		phase = make([]float64, len(base))
	}
	if len(phase) != len(base) {
		return nil, errors.New("scenario: Sinusoid Phase length mismatch")
	}
	return &Sinusoid{Base: base, Amp: amp, Period: period, Phase: phase}, nil
}

// At implements demand.Schedule.
func (s *Sinusoid) At(t uint64) demand.Vector {
	if v, ok := s.m.get(t); ok {
		return v
	}
	v := make(demand.Vector, len(s.Base))
	omega := 2 * math.Pi / s.Period
	for j, d := range s.Base {
		v[j] = clampPos(float64(d) * (1 + s.Amp[j]*math.Sin(omega*float64(t)+s.Phase[j])))
	}
	return s.m.put(t, v)
}

// Tasks implements demand.Schedule.
func (s *Sinusoid) Tasks() int { return len(s.Base) }

// Burst is a spike process: demand sits at Base and jumps to Peak for
// Len rounds starting at Start, recurring every Every rounds (Every = 0
// means a single burst). It models food bonanzas and brood-care
// emergencies as sharp, repeated regime flips.
type Burst struct {
	Base  demand.Vector
	Peak  demand.Vector
	Start uint64 // first onset round
	Every uint64 // burst period; 0 = one burst only
	Len   uint64 // burst duration in rounds, >= 1
}

// NewBurst validates and builds a Burst.
func NewBurst(base, peak demand.Vector, start, every, length uint64) (*Burst, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := peak.Validate(); err != nil {
		return nil, err
	}
	if len(peak) != len(base) {
		return nil, errors.New("scenario: Burst peak/base length mismatch")
	}
	if length == 0 {
		return nil, errors.New("scenario: Burst needs Len >= 1")
	}
	if every != 0 && length >= every {
		return nil, errors.New("scenario: Burst Len must be < Every")
	}
	return &Burst{Base: base, Peak: peak, Start: start, Every: every, Len: length}, nil
}

// At implements demand.Schedule.
func (b *Burst) At(t uint64) demand.Vector {
	if t >= b.Start {
		off := t - b.Start
		if b.Every != 0 {
			off %= b.Every
		}
		if off < b.Len {
			return b.Peak
		}
	}
	return b.Base
}

// Tasks implements demand.Schedule.
func (b *Burst) Tasks() int { return len(b.Base) }

// RandomWalk is a bounded diffusion: every Every rounds each task's
// demand takes an independent uniform step in [−Step, +Step], clamped to
// [Min[j], Max[j]]. Steps are derived from a hash of (Seed, epoch), so
// the sample path is reproducible and independent of call order; the
// path is memoized epoch by epoch.
type RandomWalk struct {
	Base  demand.Vector
	Step  int    // max per-epoch move per task, >= 1
	Every uint64 // epoch length in rounds, >= 1
	Min   demand.Vector
	Max   demand.Vector
	Seed  uint64

	path []demand.Vector // memoized epoch values; path[0] = Base
}

// NewRandomWalk validates and builds a RandomWalk. min and max bound the
// walk per task and must bracket base.
func NewRandomWalk(base demand.Vector, step int, every uint64, min, max demand.Vector, seed uint64) (*RandomWalk, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if step < 1 {
		return nil, errors.New("scenario: RandomWalk needs Step >= 1")
	}
	if every < 1 {
		return nil, errors.New("scenario: RandomWalk needs Every >= 1")
	}
	if len(min) != len(base) || len(max) != len(base) {
		return nil, errors.New("scenario: RandomWalk bounds length mismatch")
	}
	for j := range base {
		if min[j] < 1 || min[j] > base[j] || max[j] < base[j] {
			return nil, fmt.Errorf("scenario: RandomWalk needs 1 <= Min[%d] <= Base[%d] <= Max[%d]", j, j, j)
		}
	}
	return &RandomWalk{Base: base, Step: step, Every: every, Min: min, Max: max, Seed: seed}, nil
}

// At implements demand.Schedule.
func (w *RandomWalk) At(t uint64) demand.Vector {
	epoch := t / w.Every
	if w.path == nil {
		w.path = append(w.path, w.Base.Clone())
	}
	for uint64(len(w.path)) <= epoch {
		e := uint64(len(w.path))
		r := rng.New(epochSeed(w.Seed, e))
		prev := w.path[e-1]
		next := make(demand.Vector, len(prev))
		for j, d := range prev {
			d += r.Intn(2*w.Step+1) - w.Step
			if d < w.Min[j] {
				d = w.Min[j]
			}
			if d > w.Max[j] {
				d = w.Max[j]
			}
			next[j] = d
		}
		w.path = append(w.path, next)
	}
	return w.path[epoch]
}

// Tasks implements demand.Schedule.
func (w *RandomWalk) Tasks() int { return len(w.Base) }

// MarkovModulated switches between a finite set of demand regimes
// following a Markov chain: every Dwell rounds the regime transitions
// according to the row-stochastic matrix P. It models environments with
// qualitatively distinct modes (forage-heavy vs brood-heavy) and
// geometric sojourn times, in the spirit of the Markov-modulated demand
// processes of the time-varying estimation literature.
type MarkovModulated struct {
	Regimes []demand.Vector
	P       [][]float64 // P[i][j] = transition probability i -> j
	Dwell   uint64      // rounds between transition decisions, >= 1
	Start   int         // initial regime index
	Seed    uint64

	states []int // memoized regime per epoch; states[0] = Start
}

// NewMarkovModulated validates and builds a MarkovModulated schedule.
func NewMarkovModulated(regimes []demand.Vector, p [][]float64, dwell uint64, start int, seed uint64) (*MarkovModulated, error) {
	if len(regimes) == 0 {
		return nil, errors.New("scenario: MarkovModulated needs >= 1 regime")
	}
	k := len(regimes[0])
	for i, v := range regimes {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if len(v) != k {
			return nil, fmt.Errorf("scenario: regime %d has %d tasks, want %d", i, len(v), k)
		}
	}
	if len(p) != len(regimes) {
		return nil, errors.New("scenario: transition matrix must be square over the regimes")
	}
	for i, row := range p {
		if len(row) != len(regimes) {
			return nil, errors.New("scenario: transition matrix must be square over the regimes")
		}
		sum := 0.0
		for _, q := range row {
			if q < 0 || math.IsNaN(q) {
				return nil, fmt.Errorf("scenario: negative transition probability in row %d", i)
			}
			sum += q
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("scenario: transition row %d sums to %v, want 1", i, sum)
		}
	}
	if dwell < 1 {
		return nil, errors.New("scenario: MarkovModulated needs Dwell >= 1")
	}
	if start < 0 || start >= len(regimes) {
		return nil, fmt.Errorf("scenario: start regime %d outside [0, %d)", start, len(regimes))
	}
	return &MarkovModulated{Regimes: regimes, P: p, Dwell: dwell, Start: start, Seed: seed}, nil
}

// At implements demand.Schedule.
func (m *MarkovModulated) At(t uint64) demand.Vector {
	epoch := t / m.Dwell
	if m.states == nil {
		m.states = append(m.states, m.Start)
	}
	for uint64(len(m.states)) <= epoch {
		e := uint64(len(m.states))
		r := rng.New(epochSeed(m.Seed, e))
		u := r.Float64()
		row := m.P[m.states[e-1]]
		next := len(row) - 1
		acc := 0.0
		for j, q := range row {
			acc += q
			if u < acc {
				next = j
				break
			}
		}
		m.states = append(m.states, next)
	}
	return m.Regimes[m.states[epoch]]
}

// Tasks implements demand.Schedule.
func (m *MarkovModulated) Tasks() int { return len(m.Regimes[0]) }

// State returns the regime index in force at round t (sampling the path
// up to t if needed).
func (m *MarkovModulated) State(t uint64) int {
	m.At(t)
	return m.states[t/m.Dwell]
}

// Trace replays a recorded demand schedule: piecewise-constant vectors
// with strictly increasing change rounds. Rounds before the first stamp
// use the first vector. It is how measured workloads (or schedules
// exported from other simulators) are fed back into the engines.
type Trace struct {
	when []uint64
	vecs []demand.Vector
}

// NewTrace builds a Trace from change rounds and vectors of equal count;
// when must be strictly increasing and all vectors the same length.
func NewTrace(when []uint64, vecs []demand.Vector) (*Trace, error) {
	if len(when) == 0 || len(when) != len(vecs) {
		return nil, errors.New("scenario: Trace needs matching, non-empty when/vectors")
	}
	k := len(vecs[0])
	for i := range when {
		if i > 0 && when[i] <= when[i-1] {
			return nil, errors.New("scenario: Trace rounds must be strictly increasing")
		}
		if len(vecs[i]) != k {
			return nil, fmt.Errorf("scenario: Trace vector %d has %d tasks, want %d", i, len(vecs[i]), k)
		}
		if err := vecs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Trace{when: when, vecs: vecs}, nil
}

// ParseTrace reads a trace from CSV-like text: one "round,d1,d2,..."
// line per change point, ordered by round. Blank lines and lines
// starting with '#' are skipped.
func ParseTrace(r io.Reader) (*Trace, error) {
	var when []uint64
	var vecs []demand.Vector
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("scenario: trace line %d: want round,d1[,d2...]", line)
		}
		round, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace line %d: bad round: %v", line, err)
		}
		v := make(demand.Vector, len(fields)-1)
		for j, f := range fields[1:] {
			d, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("scenario: trace line %d: bad demand: %v", line, err)
			}
			v[j] = d
		}
		when = append(when, round)
		vecs = append(vecs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(when, vecs)
}

// At implements demand.Schedule (binary search over the change points).
func (tr *Trace) At(t uint64) demand.Vector {
	i := sort.Search(len(tr.when), func(i int) bool { return tr.when[i] > t })
	if i == 0 {
		return tr.vecs[0]
	}
	return tr.vecs[i-1]
}

// Tasks implements demand.Schedule.
func (tr *Trace) Tasks() int { return len(tr.vecs[0]) }

// Len returns the number of change points.
func (tr *Trace) Len() int { return len(tr.when) }

// Points returns copies of the change rounds and vectors — exactly the
// arguments NewTrace rebuilds the schedule from (the wire codec's
// encoding of a Trace).
func (tr *Trace) Points() ([]uint64, []demand.Vector) {
	when := append([]uint64(nil), tr.when...)
	vecs := make([]demand.Vector, len(tr.vecs))
	for i, v := range tr.vecs {
		vecs[i] = v.Clone()
	}
	return when, vecs
}
