package scenario_test

// Every Canon reduction rule is pinned here twice over: the reduced and
// unreduced schedules must agree pointwise (At) over a long horizon,
// and — the equivalence claim the semantic caches rest on — a full
// engine run at fixed seed must produce identical per-round
// trajectories for both. A rule fails either check, it may not fire.

import (
	"fmt"
	"reflect"
	"testing"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
)

var (
	canonBase = demand.Vector{40, 60}
	canonAlt  = demand.Vector{70, 30}
)

// mustSched panics on a builder error: rules are constructed from
// literals, so a failure is a test-authoring bug, not a test outcome.
func mustSched[S demand.Schedule](s S, err error) demand.Schedule {
	if err != nil {
		panic(err)
	}
	return s
}

// canonRules enumerates one case per normalization rule (plus the
// stays-unchanged guards). build must return a fresh instance per call:
// generative schedules memoize their sample paths and the tests run
// original and normal form through separate engines.
func canonRules() []struct {
	name  string
	build func(t *testing.T) demand.Schedule
	want  string // fmt %T of the expected normal form
} {
	step := func(t *testing.T) demand.Schedule {
		return mustSched(demand.NewStep(canonBase, []uint64{30, 90}, []demand.Vector{canonAlt, canonBase}))
	}
	sinusoid := func(t *testing.T) demand.Schedule {
		return mustSched(scenario.NewSinusoid(canonBase, []float64{0.4, 0.2}, 50, nil))
	}
	return []struct {
		name  string
		build func(t *testing.T) demand.Schedule
		want  string
	}{
		{"frozen_piecewise", func(t *testing.T) demand.Schedule {
			f, err := scenario.Freeze(step(t), 200)
			return mustSched(f, err)
		}, "*demand.Step"},
		{"frozen_constant", func(t *testing.T) demand.Schedule {
			f, err := scenario.Freeze(demand.Static{V: canonBase}, 120)
			return mustSched(f, err)
		}, "demand.Static"},
		{"trace_single_point", func(t *testing.T) demand.Schedule {
			// Rounds before the first stamp replay the first vector, so a
			// one-point trace is constant no matter where the stamp sits.
			return mustSched(scenario.NewTrace([]uint64{17}, []demand.Vector{canonBase}))
		}, "demand.Static"},
		{"trace_piecewise", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewTrace([]uint64{5, 60}, []demand.Vector{canonBase, canonAlt}))
		}, "*demand.Step"},
		{"step_folds_round_zero_and_noops", func(t *testing.T) demand.Schedule {
			// The change at round 0 shadows the initial vector; the equal
			// consecutive change is a no-op.
			return mustSched(demand.NewStep(canonAlt,
				[]uint64{0, 40, 80}, []demand.Vector{canonBase, canonBase, canonAlt}))
		}, "*demand.Step"},
		{"step_constant", func(t *testing.T) demand.Schedule {
			return mustSched(demand.NewStep(canonBase, []uint64{25}, []demand.Vector{canonBase}))
		}, "demand.Static"},
		{"sinusoid_zero_amplitude", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewSinusoid(canonBase, []float64{0, 0}, 40, []float64{1, 2}))
		}, "demand.Static"},
		{"sinusoid_live_unchanged", sinusoid, "*scenario.Sinusoid"},
		{"burst_peak_equals_base", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewBurst(canonBase, canonBase.Clone(), 30, 50, 10))
		}, "demand.Static"},
		{"burst_single", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewBurst(canonBase, canonAlt, 40, 0, 25))
		}, "*demand.Step"},
		{"burst_single_from_round_zero", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewBurst(canonBase, canonAlt, 0, 0, 25))
		}, "*demand.Step"},
		{"burst_recurring_unchanged", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewBurst(canonBase, canonAlt, 40, 60, 20))
		}, "*scenario.Burst"},
		{"randomwalk_pinned_bounds", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewRandomWalk(canonBase, 4, 10,
				canonBase.Clone(), canonBase.Clone(), 9))
		}, "demand.Static"},
		{"randomwalk_live_unchanged", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewRandomWalk(canonBase, 4, 10,
				demand.Vector{20, 30}, demand.Vector{80, 120}, 9))
		}, "*scenario.RandomWalk"},
		{"markov_absorbing_start", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewMarkovModulated(
				[]demand.Vector{canonBase, canonAlt},
				[][]float64{{1, 0}, {0.5, 0.5}}, 20, 0, 9))
		}, "demand.Static"},
		{"markov_equal_reachable_regimes", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewMarkovModulated(
				[]demand.Vector{canonBase, canonBase.Clone()},
				[][]float64{{0.3, 0.7}, {0.6, 0.4}}, 15, 1, 9))
		}, "demand.Static"},
		{"markov_deterministic_chain", func(t *testing.T) demand.Schedule {
			// Point-mass rows: 0 -> 1 -> 2 -> 2. The sampled path never
			// consults the uniform draw, so the seed is irrelevant and the
			// schedule is the eventually-constant step it traces.
			return mustSched(scenario.NewMarkovModulated(
				[]demand.Vector{canonBase, canonAlt, {55, 45}},
				[][]float64{{0, 1, 0}, {0, 0, 1}, {0, 0, 1}}, 10, 0, 9))
		}, "*demand.Step"},
		{"markov_deterministic_cycle_unchanged", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewMarkovModulated(
				[]demand.Vector{canonBase, canonAlt},
				[][]float64{{0, 1}, {1, 0}}, 10, 0, 9))
		}, "*scenario.MarkovModulated"},
		{"markov_random_unchanged", func(t *testing.T) demand.Schedule {
			return mustSched(scenario.NewMarkovModulated(
				[]demand.Vector{canonBase, canonAlt},
				[][]float64{{0.6, 0.4}, {0.4, 0.6}}, 25, 0, 5))
		}, "*scenario.MarkovModulated"},
		{"compose_single_part", func(t *testing.T) demand.Schedule {
			c, err := scenario.NewCompose([]demand.Schedule{sinusoid(t)}, []uint64{0})
			return mustSched(c, err)
		}, "*scenario.Sinusoid"},
		{"compose_piecewise_parts", func(t *testing.T) demand.Schedule {
			c, err := scenario.NewCompose([]demand.Schedule{
				demand.Static{V: canonAlt},
				step(t),
				mustSched(scenario.NewTrace([]uint64{10}, []demand.Vector{{44, 66}})),
			}, []uint64{0, 50, 150})
			return mustSched(c, err)
		}, "*demand.Step"},
		{"compose_generative_unchanged", func(t *testing.T) demand.Schedule {
			c, err := scenario.NewCompose(
				[]demand.Schedule{demand.Static{V: canonBase}, sinusoid(t)}, []uint64{0, 60})
			return mustSched(c, err)
		}, "*scenario.Compose"},
		{"modulate_unit_scale", func(t *testing.T) demand.Schedule {
			m, err := scenario.NewModulate(sinusoid(t), []float64{1, 1})
			return mustSched(m, err)
		}, "*scenario.Sinusoid"},
		{"modulate_piecewise_inner", func(t *testing.T) demand.Schedule {
			m, err := scenario.NewModulate(step(t), []float64{1.5, 0.5})
			return mustSched(m, err)
		}, "*demand.Step"},
		{"modulate_generative_unchanged", func(t *testing.T) demand.Schedule {
			m, err := scenario.NewModulate(sinusoid(t), []float64{1.5, 0.5})
			return mustSched(m, err)
		}, "*scenario.Modulate"},
		{"superpose_single_part", func(t *testing.T) demand.Schedule {
			sp, err := scenario.NewSuperpose([]demand.Schedule{step(t)})
			return mustSched(sp, err)
		}, "*demand.Step"},
		{"superpose_piecewise_parts", func(t *testing.T) demand.Schedule {
			sp, err := scenario.NewSuperpose([]demand.Schedule{
				step(t),
				mustSched(demand.NewStep(canonAlt, []uint64{45}, []demand.Vector{{20, 25}})),
			})
			return mustSched(sp, err)
		}, "*demand.Step"},
		{"superpose_generative_unchanged", func(t *testing.T) demand.Schedule {
			sp, err := scenario.NewSuperpose([]demand.Schedule{demand.Static{V: canonBase}, sinusoid(t)})
			return mustSched(sp, err)
		}, "*scenario.Superpose"},
		{"stablenoise_zero_sigma", func(t *testing.T) demand.Schedule {
			sn, err := scenario.NewStableNoise(step(t), 1.5, 0, 10, 3)
			return mustSched(sn, err)
		}, "*demand.Step"},
		{"stablenoise_live_unchanged", func(t *testing.T) demand.Schedule {
			sn, err := scenario.NewStableNoise(step(t), 1.5, 2, 10, 3)
			return mustSched(sn, err)
		}, "*scenario.StableNoise"},
	}
}

// TestCanonPointwise checks, for every rule, that the normal form has
// the expected family and the identical At function over a long
// horizon, and that Canon is idempotent.
func TestCanonPointwise(t *testing.T) {
	const horizon = 400
	for _, rule := range canonRules() {
		t.Run(rule.name, func(t *testing.T) {
			orig := rule.build(t)
			norm := scenario.Canon(rule.build(t))
			if got := fmt.Sprintf("%T", norm); got != rule.want {
				t.Fatalf("Canon yielded %s, want %s", got, rule.want)
			}
			for tt := uint64(0); tt <= horizon; tt++ {
				if a, b := orig.At(tt), norm.At(tt); !a.Equal(b) {
					t.Fatalf("At(%d): original %v, normal form %v", tt, a, b)
				}
			}
			again := scenario.Canon(norm)
			if got, want := fmt.Sprintf("%T", again), rule.want; got != want {
				t.Fatalf("Canon not idempotent: second pass yielded %s, want %s", got, want)
			}
			for tt := uint64(0); tt <= horizon; tt += 7 {
				if a, b := norm.At(tt), again.At(tt); !a.Equal(b) {
					t.Fatalf("idempotence At(%d): %v vs %v", tt, a, b)
				}
			}
		})
	}
}

// TestCanonEngineTrajectories is the equivalence proof the semantic
// caches require: for every reduction rule, the reduced and unreduced
// schedule drive a full simulation at fixed seed to identical per-round
// trajectories (loads, demands, and final report).
func TestCanonEngineTrajectories(t *testing.T) {
	run := func(sched demand.Schedule) ([]string, taskalloc.Report) {
		sim, err := taskalloc.New(taskalloc.Config{
			Ants:    240,
			Demand:  sched,
			Epsilon: 0.5,
			Noise:   taskalloc.SigmoidNoise(0.04),
			Seed:    7,
			Shards:  2,
			SizeChanges: []taskalloc.SizeChange{
				{At: 60, To: 160},
				{At: 110, To: 240},
			},
		})
		if err != nil {
			t.Fatalf("build simulation: %v", err)
		}
		defer sim.Close()
		var rows []string
		sim.Run(160, func(round uint64, loads []int, demands []int) {
			rows = append(rows, fmt.Sprintf("%d %v %v", round, loads, demands))
		})
		return rows, sim.Report()
	}
	for _, rule := range canonRules() {
		t.Run(rule.name, func(t *testing.T) {
			origRows, origRep := run(rule.build(t))
			normRows, normRep := run(scenario.Canon(rule.build(t)))
			if len(origRows) != len(normRows) {
				t.Fatalf("trajectory lengths differ: %d vs %d", len(origRows), len(normRows))
			}
			for i := range origRows {
				if origRows[i] != normRows[i] {
					t.Fatalf("trajectories diverge at row %d:\noriginal: %s\nnormal:   %s",
						i, origRows[i], normRows[i])
				}
			}
			if !reflect.DeepEqual(origRep, normRep) {
				t.Fatalf("reports differ:\noriginal: %+v\nnormal:   %+v", origRep, normRep)
			}
		})
	}
}

// TestCanonStepShape pins the minimal forms structurally, not just
// behaviorally: the fold rules must actually shrink the representation.
func TestCanonStepShape(t *testing.T) {
	s := mustSched(demand.NewStep(canonAlt,
		[]uint64{0, 40, 80}, []demand.Vector{canonBase, canonBase, canonAlt}))
	norm, ok := scenario.Canon(s).(*demand.Step)
	if !ok {
		t.Fatalf("want *demand.Step, got %T", scenario.Canon(s))
	}
	if !norm.Initial.Equal(canonBase) || len(norm.When) != 1 || norm.When[0] != 80 ||
		!norm.Changes[0].Equal(canonAlt) {
		t.Fatalf("unexpected normal form: %+v", norm)
	}

	f, err := scenario.Freeze(norm, 300)
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	back, ok := scenario.Canon(f).(*demand.Step)
	if !ok {
		t.Fatalf("frozen snapshot did not normalize to *demand.Step: %T", scenario.Canon(f))
	}
	if !back.Initial.Equal(norm.Initial) || len(back.When) != 1 || back.When[0] != 80 {
		t.Fatalf("frozen normal form diverged: %+v", back)
	}
}
