// Package scenario generates the changing environments of the paper's
// Section 6 argument: self-stabilization is what makes the algorithms
// useful when demands drift and ants die or hatch, so the simulator
// must be able to express rich time-varying workloads, not just
// hand-written step changes.
//
// The package provides two axes:
//
//   - Generative demand processes implementing demand.Schedule —
//     Sinusoid (seasonal drift), Burst (recurring spikes), RandomWalk
//     (bounded diffusion), MarkovModulated (regime switching), and
//     Trace (replay of a recorded schedule). All are deterministic
//     functions of (their parameters, round): re-running a scenario
//     reproduces it exactly, and none depends on engine sharding.
//
//   - A Timeline of discrete events: colony-size changes (Resize —
//     ants dying and hatching) and feedback-regime switches
//     (NoiseSwitch, applied through SwitchedModel). Timeline.Drive
//     applies the resizes to any engine while it runs.
//
// The stateful schedules (RandomWalk, MarkovModulated) memoize their
// sample paths lazily, so At is O(1) amortized over a forward sweep and
// the same instance can be shared by sequential re-runs; they are not
// safe for concurrent use, matching the engines they feed.
package scenario

import (
	"errors"
	"fmt"

	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

// Resize schedules a colony-size change: from round At onward the
// active colony size is To (colony.Engine.Resize / Sequential.Resize).
type Resize struct {
	At uint64
	To int
}

// NoiseSwitch schedules a feedback-regime change: from round At onward
// feedback is drawn from Model.
type NoiseSwitch struct {
	At    uint64
	Model noise.Model
}

// Timeline is a scenario's discrete event schedule. Both event lists
// must be ordered by strictly increasing At >= 1.
type Timeline struct {
	Resizes  []Resize
	Switches []NoiseSwitch
}

// Validate checks event ordering and bounds for a colony of n ants.
func (tl Timeline) Validate(n int) error {
	for i, r := range tl.Resizes {
		if r.At < 1 {
			return errors.New("scenario: Resize.At must be >= 1")
		}
		if i > 0 && r.At <= tl.Resizes[i-1].At {
			return errors.New("scenario: Resizes must have strictly increasing At")
		}
		if r.To < 1 || r.To > n {
			return fmt.Errorf("scenario: Resize to %d outside [1, %d]", r.To, n)
		}
	}
	for i, s := range tl.Switches {
		if s.At < 1 {
			return errors.New("scenario: NoiseSwitch.At must be >= 1")
		}
		if i > 0 && s.At <= tl.Switches[i-1].At {
			return errors.New("scenario: Switches must have strictly increasing At")
		}
		if s.Model == nil {
			return errors.New("scenario: NoiseSwitch with nil model")
		}
	}
	return nil
}

// ActiveAt projects the colony size in force at round t for a colony of
// n ants: the To of the latest resize with At <= t, or n when none has
// fired. It does not require Resizes to be sorted, so it is safe to call
// before Validate.
func (tl Timeline) ActiveAt(n int, t uint64) int {
	var bestAt uint64
	out := n
	for _, r := range tl.Resizes {
		if r.At <= t && r.At >= bestAt {
			bestAt = r.At
			out = r.To
		}
	}
	return out
}

// Model wraps base into a SwitchedModel applying the timeline's noise
// switches; with no switches it returns base unchanged.
func (tl Timeline) Model(base noise.Model) noise.Model {
	if len(tl.Switches) == 0 {
		return base
	}
	return NewSwitchedModel(base, tl.Switches)
}

// Runner is the engine surface Timeline.Drive needs; colony.Engine and
// colony.Sequential both implement it.
type Runner interface {
	Run(rounds int, obs colony.Observer)
	Round() uint64
	Resize(m int)
}

// Drive advances r by rounds rounds, applying the timeline's resizes so
// that a Resize{At, To} is in force for every round >= At. Resizes whose
// round already passed are skipped. Noise switches need no driving: they
// are part of the model (see Timeline.Model) and key on the round number.
func (tl Timeline) Drive(r Runner, rounds int, obs colony.Observer) {
	i := 0
	for rounds > 0 {
		next := r.Round() + 1 // the round the engine will execute next
		for i < len(tl.Resizes) && tl.Resizes[i].At <= next {
			if tl.Resizes[i].At == next {
				r.Resize(tl.Resizes[i].To)
			}
			i++
		}
		chunk := rounds
		if i < len(tl.Resizes) {
			// Compare in uint64: an event far in the future must clamp
			// nothing, not wrap negative through int().
			if gap := tl.Resizes[i].At - next; gap < uint64(chunk) {
				chunk = int(gap)
			}
		}
		r.Run(chunk, obs)
		rounds -= chunk
	}
}

// SwitchedModel is a noise.Model whose regime changes at scheduled
// rounds: rounds before the first switch use Base, later rounds use the
// model of the latest switch with At <= round. It implements
// noise.Switcher so reporting code can resolve the in-force model.
type SwitchedModel struct {
	base   noise.Model
	when   []uint64
	models []noise.Model
}

// NewSwitchedModel builds a SwitchedModel; switches must be ordered by
// strictly increasing At (Timeline.Validate enforces this for timelines).
func NewSwitchedModel(base noise.Model, switches []NoiseSwitch) *SwitchedModel {
	m := &SwitchedModel{base: base}
	for _, s := range switches {
		m.when = append(m.when, s.At)
		m.models = append(m.models, s.Model)
	}
	return m
}

// ModelAt implements noise.Switcher: the model in force at round t.
func (m *SwitchedModel) ModelAt(t uint64) noise.Model {
	in := m.base
	for i, w := range m.when {
		if t >= w {
			in = m.models[i]
		} else {
			break
		}
	}
	return in
}

// Name implements noise.Model.
func (m *SwitchedModel) Name() string {
	return fmt.Sprintf("switched(%s, %d switches)", m.base.Name(), len(m.models))
}

// Describe implements noise.Model by delegating to the in-force regime.
func (m *SwitchedModel) Describe(env noise.Env, out []noise.TaskFeedback) {
	m.ModelAt(env.Round).Describe(env, out)
}

// CriticalValue implements noise.Model with the initial regime's γ*;
// round-aware callers should resolve ModelAt themselves (the root
// Simulation reports the in-force γ* this way).
func (m *SwitchedModel) CriticalValue(n int, dMin int) float64 {
	return m.base.CriticalValue(n, dMin)
}

var _ noise.Model = (*SwitchedModel)(nil)
var _ noise.Switcher = (*SwitchedModel)(nil)
var _ Runner = (*colony.Engine)(nil)
var _ Runner = (*colony.Sequential)(nil)
var _ demand.Schedule = (*Sinusoid)(nil)
var _ demand.Schedule = (*Burst)(nil)
var _ demand.Schedule = (*RandomWalk)(nil)
var _ demand.Schedule = (*MarkovModulated)(nil)
var _ demand.Schedule = (*Trace)(nil)
