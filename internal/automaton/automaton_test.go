package automaton

import (
	"testing"
	"testing/quick"
)

func TestNewAndAdd(t *testing.T) {
	f := New(3, 2, 0)
	if f.States() != 3 || f.Alphabet() != 2 || f.Start() != 0 {
		t.Fatal("accessors broken")
	}
	f.Add(0, 0, 1)
	f.Add(0, 0, 1) // duplicate ignored
	if got := f.Successors(0, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("successors %v", got)
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic(t, "states", func() { New(0, 2, 0) })
	mustPanic(t, "alphabet", func() { New(2, 0, 0) })
	mustPanic(t, "start", func() { New(2, 1, 5) })
	f := New(2, 1, 0)
	mustPanic(t, "add s", func() { f.Add(5, 0, 0) })
	mustPanic(t, "add a", func() { f.Add(0, 3, 0) })
	mustPanic(t, "add to", func() { f.Add(0, 0, 9) })
	mustPanic(t, "reach", func() { f.Reachable(7) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestValidate(t *testing.T) {
	f := New(2, 1, 0)
	f.Add(0, 0, 1)
	if err := f.Validate(); err == nil {
		t.Fatal("incomplete FSM validated")
	}
	f.Add(1, 0, 0)
	if err := f.Validate(); err != nil {
		t.Fatalf("complete FSM rejected: %v", err)
	}
}

func TestLabels(t *testing.T) {
	f := New(2, 1, 0)
	f.SetLabel(0, "idle")
	if f.Label(0) != "idle" || f.Label(1) != "s1" {
		t.Fatal("labels broken")
	}
}

func TestReachableAndStronglyConnected(t *testing.T) {
	// Cycle 0 -> 1 -> 2 -> 0: strongly connected.
	f := New(3, 1, 0)
	f.Add(0, 0, 1)
	f.Add(1, 0, 2)
	f.Add(2, 0, 0)
	if !f.StronglyConnected() {
		t.Fatal("cycle not strongly connected")
	}
	if err := f.CheckAssumption22(); err != nil {
		t.Fatal(err)
	}
	// Chain 0 -> 1 -> 2: not strongly connected.
	g := New(3, 1, 0)
	g.Add(0, 0, 1)
	g.Add(1, 0, 2)
	g.Add(2, 0, 2)
	if g.StronglyConnected() {
		t.Fatal("chain reported strongly connected")
	}
	if err := g.CheckAssumption22(); err == nil {
		t.Fatal("CheckAssumption22 missed the violation")
	}
}

func TestDiameter(t *testing.T) {
	f := New(3, 1, 0)
	f.Add(0, 0, 1)
	f.Add(1, 0, 2)
	f.Add(2, 0, 0)
	if got := f.Diameter(); got != 2 {
		t.Fatalf("cycle diameter %d, want 2", got)
	}
	g := New(2, 1, 0)
	g.Add(0, 0, 1)
	g.Add(1, 0, 1)
	if got := g.Diameter(); got != -1 {
		t.Fatalf("disconnected diameter %d, want -1", got)
	}
}

func TestMemoryBits(t *testing.T) {
	if got := New(1, 1, 0).MemoryBits(); got != 0 {
		t.Fatalf("1 state: %d bits", got)
	}
	if got := New(5, 1, 0).MemoryBits(); got != 3 {
		t.Fatalf("5 states: %d bits", got)
	}
}

// TestTrivialFSMSatisfiesAssumption22: the paper's baseline is a legal
// ant automaton for every task count.
func TestTrivialFSMSatisfiesAssumption22(t *testing.T) {
	for k := 1; k <= 6; k++ {
		f := TrivialFSM(k)
		if err := f.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := f.CheckAssumption22(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if f.States() != k+1 || f.Alphabet() != 1<<k {
			t.Fatalf("k=%d: wrong shape", k)
		}
	}
}

func TestTrivialFSMTransitions(t *testing.T) {
	f := TrivialFSM(2)
	// Letter 0b01: task 0 lacks, task 1 overloaded.
	succ := f.Successors(0, 0b01)
	if len(succ) != 1 || succ[0] != 1 {
		t.Fatalf("idle on 01 -> %v, want [task0]", succ)
	}
	// Working on task 1 (state 2) with letter 0b01: overloaded -> idle.
	succ = f.Successors(2, 0b01)
	if len(succ) != 1 || succ[0] != 0 {
		t.Fatalf("task1 on 01 -> %v, want [idle]", succ)
	}
	// Letter 0b00: idle stays idle.
	succ = f.Successors(0, 0)
	if len(succ) != 1 || succ[0] != 0 {
		t.Fatalf("idle on 00 -> %v", succ)
	}
}

// TestAntPhaseFSMSatisfiesAssumption22 is the paper's requirement applied
// to Algorithm Ant itself.
func TestAntPhaseFSMSatisfiesAssumption22(t *testing.T) {
	for k := 1; k <= 4; k++ {
		f := AntPhaseFSM(k)
		if err := f.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := f.CheckAssumption22(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestAntPhaseFSMTransitions(t *testing.T) {
	f := AntPhaseFSM(1)
	// Letter encoding: s1 | s2<<1, bit = Lack.
	const (
		oo = 0b00
		lo = 0b01 // s1 lack, s2 overload
		ol = 0b10
		ll = 0b11
	)
	// Idle joins only on double lack.
	if s := f.Successors(0, ll); len(s) != 1 || s[0] != 1 {
		t.Fatalf("idle on ll -> %v", s)
	}
	for _, a := range []int{oo, lo, ol} {
		if s := f.Successors(0, a); len(s) != 1 || s[0] != 0 {
			t.Fatalf("idle on %02b -> %v", a, s)
		}
	}
	// Worker can leave only on double overload (and staying is possible).
	if s := f.Successors(1, oo); len(s) != 2 {
		t.Fatalf("worker on oo -> %v, want {stay, leave}", s)
	}
	for _, a := range []int{lo, ol, ll} {
		if s := f.Successors(1, a); len(s) != 1 || s[0] != 1 {
			t.Fatalf("worker on %02b -> %v, want stay only", a, s)
		}
	}
}

// TestStubbornFSMViolatesAssumption22: the counter-example the paper's
// assumption forbids must be caught.
func TestStubbornFSMViolatesAssumption22(t *testing.T) {
	for k := 1; k <= 4; k++ {
		f := StubbornFSM(k)
		if err := f.Validate(); err != nil {
			t.Fatalf("k=%d incomplete: %v", k, err)
		}
		if f.StronglyConnected() {
			t.Fatalf("k=%d: stubborn machine reported strongly connected", k)
		}
		if err := f.CheckAssumption22(); err == nil {
			t.Fatalf("k=%d: violation not caught", k)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic(t, "trivial k=0", func() { TrivialFSM(0) })
	mustPanic(t, "trivial k=17", func() { TrivialFSM(17) })
	mustPanic(t, "ant k=9", func() { AntPhaseFSM(9) })
	mustPanic(t, "stubborn k=0", func() { StubbornFSM(0) })
}

// TestStronglyConnectedAgreesWithPairwise: the two-BFS shortcut must
// agree with the all-pairs definition on random machines.
func TestStronglyConnectedAgreesWithPairwise(t *testing.T) {
	f := func(edges [12]uint8) bool {
		const states, alphabet = 4, 2
		m := New(states, alphabet, 0)
		for i, e := range edges {
			s := i % states
			a := (i / states) % alphabet
			m.Add(s, a, int(e)%states)
		}
		fast := m.StronglyConnected()
		slow := m.CheckAssumption22() == nil
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
