// Package automaton gives the paper's ants an explicit finite-state-
// machine representation. The paper models ants as finite automata and
// imposes Assumption 2.2: every pair of states must be mutually reachable
// under some feedback sequence (no absorbing roles). This package builds
// the transition structure of the trivial algorithm and of Algorithm
// Ant's phase-level dynamics, checks that assumption by graph search, and
// accounts state memory in bits for the Theorem 3.3 memory/precision
// tables.
package automaton

import (
	"errors"
	"fmt"
	"math"
)

// FSM is a nondeterministic transition structure: Next[s][a] lists the
// states reachable with positive probability from state s on letter a.
// Letters abstract one observation step (a feedback vector, or a whole
// phase's worth of feedback for phase-level machines).
type FSM struct {
	states   int
	alphabet int
	start    int
	labels   []string
	next     [][][]int
}

// New creates an FSM with the given state count, alphabet size, and start
// state, and no transitions.
func New(states, alphabet, start int) *FSM {
	if states <= 0 || alphabet <= 0 || start < 0 || start >= states {
		panic("automaton: invalid New arguments")
	}
	next := make([][][]int, states)
	for s := range next {
		next[s] = make([][]int, alphabet)
	}
	return &FSM{
		states:   states,
		alphabet: alphabet,
		start:    start,
		labels:   make([]string, states),
		next:     next,
	}
}

// States returns the state count.
func (f *FSM) States() int { return f.states }

// Alphabet returns the alphabet size.
func (f *FSM) Alphabet() int { return f.alphabet }

// Start returns the start state.
func (f *FSM) Start() int { return f.start }

// SetLabel names a state for reports.
func (f *FSM) SetLabel(s int, label string) { f.labels[s] = label }

// Label returns the state's name (or "s<i>").
func (f *FSM) Label(s int) string {
	if f.labels[s] != "" {
		return f.labels[s]
	}
	return fmt.Sprintf("s%d", s)
}

// Add records that letter a can move state s to state to (with positive
// probability). Duplicates are ignored.
func (f *FSM) Add(s, a, to int) {
	if s < 0 || s >= f.states || a < 0 || a >= f.alphabet || to < 0 || to >= f.states {
		panic("automaton: Add out of range")
	}
	for _, t := range f.next[s][a] {
		if t == to {
			return
		}
	}
	f.next[s][a] = append(f.next[s][a], to)
}

// Successors returns the transition set for (s, a); callers must not
// mutate it.
func (f *FSM) Successors(s, a int) []int { return f.next[s][a] }

// Validate checks completeness: every (state, letter) pair must have at
// least one successor (an automaton always does *something*).
func (f *FSM) Validate() error {
	for s := 0; s < f.states; s++ {
		for a := 0; a < f.alphabet; a++ {
			if len(f.next[s][a]) == 0 {
				return fmt.Errorf("automaton: state %s has no transition on letter %d",
					f.Label(s), a)
			}
		}
	}
	return nil
}

// Reachable returns the set of states reachable from s under any letter
// sequence (BFS over the union graph).
func (f *FSM) Reachable(s int) []bool {
	if s < 0 || s >= f.states {
		panic("automaton: Reachable out of range")
	}
	seen := make([]bool, f.states)
	queue := []int{s}
	seen[s] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for a := 0; a < f.alphabet; a++ {
			for _, to := range f.next[cur][a] {
				if !seen[to] {
					seen[to] = true
					queue = append(queue, to)
				}
			}
		}
	}
	return seen
}

// StronglyConnected reports whether every state can reach every other —
// the paper's Assumption 2.2.
func (f *FSM) StronglyConnected() bool {
	// Forward reachability from state 0, then reverse reachability: a
	// directed graph is strongly connected iff both cover all states.
	fwd := f.Reachable(0)
	for _, ok := range fwd {
		if !ok {
			return false
		}
	}
	rev := f.reverse()
	back := rev.Reachable(0)
	for _, ok := range back {
		if !ok {
			return false
		}
	}
	return true
}

// reverse returns the edge-reversed FSM.
func (f *FSM) reverse() *FSM {
	r := New(f.states, f.alphabet, f.start)
	for s := 0; s < f.states; s++ {
		for a := 0; a < f.alphabet; a++ {
			for _, to := range f.next[s][a] {
				r.Add(to, a, s)
			}
		}
	}
	return r
}

// CheckAssumption22 returns nil when the machine satisfies Assumption 2.2
// and a descriptive error naming an unreachable pair otherwise.
func (f *FSM) CheckAssumption22() error {
	for s := 0; s < f.states; s++ {
		seen := f.Reachable(s)
		for to, ok := range seen {
			if !ok {
				return fmt.Errorf("automaton: state %s cannot reach %s",
					f.Label(s), f.Label(to))
			}
		}
	}
	return nil
}

// MemoryBits returns ⌈log₂(states)⌉.
func (f *FSM) MemoryBits() int {
	if f.states <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(f.states))))
}

// Diameter returns the longest shortest path between any ordered state
// pair (how many observations an adversary needs to force any
// transition), or -1 if the machine is not strongly connected.
func (f *FSM) Diameter() int {
	maxDist := 0
	for s := 0; s < f.states; s++ {
		dist := make([]int, f.states)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for a := 0; a < f.alphabet; a++ {
				for _, to := range f.next[cur][a] {
					if dist[to] < 0 {
						dist[to] = dist[cur] + 1
						queue = append(queue, to)
					}
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}

// --- Machines for the paper's algorithms -----------------------------------

// TrivialFSM builds the trivial algorithm's machine for k tasks. States
// are 0 = idle and 1+j = working on task j. Letters are feedback vectors:
// bit j of the letter is 1 when task j reads Lack. It panics for k > 16
// (the letter space is 2^k).
func TrivialFSM(k int) *FSM {
	if k <= 0 || k > 16 {
		panic("automaton: TrivialFSM needs 1 <= k <= 16")
	}
	f := New(k+1, 1<<k, 0)
	f.SetLabel(0, "idle")
	for j := 0; j < k; j++ {
		f.SetLabel(1+j, fmt.Sprintf("task%d", j))
	}
	for a := 0; a < 1<<k; a++ {
		// From idle: join any lacking task; stay if none lack.
		joined := false
		for j := 0; j < k; j++ {
			if a&(1<<j) != 0 {
				f.Add(0, a, 1+j)
				joined = true
			}
		}
		if !joined {
			f.Add(0, a, 0)
		}
		// From task j: stay on Lack, leave on Overload.
		for j := 0; j < k; j++ {
			if a&(1<<j) != 0 {
				f.Add(1+j, a, 1+j)
			} else {
				f.Add(1+j, a, 0)
			}
		}
	}
	return f
}

// AntPhaseFSM builds Algorithm Ant's phase-level machine for k tasks: one
// letter is the pair (s1, s2) of feedback vectors observed in a phase,
// encoded as s1 | s2<<k with bit j = 1 meaning Lack. States are 0 = idle
// and 1+j = working on task j (the within-phase pause is transient and
// does not survive a phase boundary). It panics for k > 8.
func AntPhaseFSM(k int) *FSM {
	if k <= 0 || k > 8 {
		panic("automaton: AntPhaseFSM needs 1 <= k <= 8")
	}
	f := New(k+1, 1<<(2*k), 0)
	f.SetLabel(0, "idle")
	for j := 0; j < k; j++ {
		f.SetLabel(1+j, fmt.Sprintf("task%d", j))
	}
	for a := 0; a < 1<<(2*k); a++ {
		s1 := a & (1<<k - 1)
		s2 := a >> k
		// From idle: join any task with Lack in both samples.
		joined := false
		for j := 0; j < k; j++ {
			if s1&(1<<j) != 0 && s2&(1<<j) != 0 {
				f.Add(0, a, 1+j)
				joined = true
			}
		}
		if !joined {
			f.Add(0, a, 0)
		}
		// From task j: leave with positive probability only when both
		// samples read Overload; staying is always possible.
		for j := 0; j < k; j++ {
			f.Add(1+j, a, 1+j)
			if s1&(1<<j) == 0 && s2&(1<<j) == 0 {
				f.Add(1+j, a, 0)
			}
		}
	}
	return f
}

// StubbornFSM builds a deliberately broken machine violating
// Assumption 2.2: a worker that never leaves its task. Used to test the
// checker's negative path and as the counter-example the paper's
// assumption rules out.
func StubbornFSM(k int) *FSM {
	if k <= 0 || k > 16 {
		panic("automaton: StubbornFSM needs 1 <= k <= 16")
	}
	f := New(k+1, 1<<k, 0)
	f.SetLabel(0, "idle")
	for j := 0; j < k; j++ {
		f.SetLabel(1+j, fmt.Sprintf("task%d", j))
	}
	for a := 0; a < 1<<k; a++ {
		joined := false
		for j := 0; j < k; j++ {
			if a&(1<<j) != 0 {
				f.Add(0, a, 1+j)
				joined = true
			}
		}
		if !joined {
			f.Add(0, a, 0)
		}
		for j := 0; j < k; j++ {
			f.Add(1+j, a, 1+j) // never leaves
		}
	}
	return f
}

// ErrNotStronglyConnected is a sentinel for reporting.
var ErrNotStronglyConnected = errors.New("automaton: not strongly connected")
