// Package fixture is the doclint test fixture: a package with known
// documentation gaps the checker must find, and documented identifiers
// it must not flag.
package fixture

// Documented has a doc comment.
type Documented struct{}

// HasDoc is documented.
func (Documented) HasDoc() {}

func (Documented) NoDoc() {}

type Undocumented struct{}

// DocumentedFunc is documented.
func DocumentedFunc() {}

func MissingDoc() {}

// Grouped consts share the block comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const MissingConstDoc = 3

// trailing comment style also counts.
var TrailingDoc = 4 // TrailingDoc is documented inline.

type unexported struct{}

func (unexported) ExportedOnUnexported() {}
