// Package doclint is the repository's doc-completeness gate: a small
// go/ast walker that reports every exported identifier missing a doc
// comment — packages, top-level types, functions, methods on exported
// types, and const/var declarations (the revive `exported` rule's
// surface). It exists because the container pins the toolchain (no
// external linters like revive), and the public-facing packages (the
// wire format, the service client, the grid coordinator) promise
// complete reference docs.
//
// The gate runs as an ordinary test (doclint_test.go), so `go test
// ./...` and CI fail when an undocumented exported identifier lands in
// a gated package.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Check parses the (non-test) Go files in dir and returns one message
// per exported identifier that lacks a doc comment, sorted by position.
func Check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		problems = append(problems,
			fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			return nil, fmt.Errorf("doclint: package %s has no package comment", pkg.Name)
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(decl, report)
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkDecl reports the declaration's undocumented exported names.
func checkDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		label := exportedReceiver(d)
		if !d.Name.IsExported() || label == "" {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), label)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil {
					report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					// A group comment on the const/var block documents
					// every member (the Go convention for enums).
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), "exported %s %s has no doc comment",
							declKind(d.Tok), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver returns the name label a method check should use:
// "" hides methods on unexported receivers from the gate.
func exportedReceiver(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name // plain function
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		if !ident.IsExported() {
			return ""
		}
		return ident.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// funcKind names the declaration kind in messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// declKind names a GenDecl token in messages.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
