package doclint

import (
	"path/filepath"
	"testing"
)

// TestExportedDocsComplete is the doc-completeness gate promised by the
// serving-layer docs: every exported identifier of the wire format, the
// service client, the grid coordinator, the scenario subsystem, and the
// batch runner must carry a doc comment. Extend gated with any new
// public-facing package.
func TestExportedDocsComplete(t *testing.T) {
	gated := []string{
		"internal/wire",
		"internal/simserver/client",
		"internal/gridcoord",
		"internal/bisect",
		"internal/scenario",
		"internal/sweeprun",
		"internal/store",
		"internal/obs",
	}
	root := filepath.Join("..", "..")
	for _, dir := range gated {
		t.Run(dir, func(t *testing.T) {
			problems, err := Check(filepath.Join(root, filepath.FromSlash(dir)))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestCheckFindsProblems guards the checker itself against silently
// passing everything: the fixture package has known gaps.
func TestCheckFindsProblems(t *testing.T) {
	problems, err := Check(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"exported type Undocumented has no doc comment":       false,
		"exported function MissingDoc has no doc comment":     false,
		"exported method Documented.NoDoc has no doc comment": false,
		"exported const MissingConstDoc has no doc comment":   false,
	}
	for _, p := range problems {
		for frag := range want {
			if len(p) >= len(frag) && p[len(p)-len(frag):] == frag {
				want[frag] = true
			}
		}
	}
	for frag, found := range want {
		if !found {
			t.Errorf("checker missed: %s (got %v)", frag, problems)
		}
	}
	if n := len(problems); n != len(want) {
		t.Errorf("checker reported %d problems, want exactly %d: %v", n, len(want), problems)
	}
}
