package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/clock"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "C1",
		Title: "Phase synchronization: 1-bit clock consensus, and what desync costs",
		Paper: "footnote 2 (synchronization assumption)",
		Run:   runC1,
	})
	register(Experiment{
		ID:    "V1",
		Title: "Single-task feedback variant of Algorithm Ant",
		Paper: "Remark 3.4 (one adaptively chosen task)",
		Run:   runV1,
	})
	register(Experiment{
		ID:    "W1",
		Title: "Switching-cost regret: Ant vs Precise Adversarial crossover",
		Paper: "Section 3.4 remark / Section 2.3 future direction",
		Run:   runW1,
	})
	register(Experiment{
		ID:    "AB1",
		Title: "Constant ablation: the cs and cd bounds from the analysis",
		Paper: "pseudocode constants (cs, cd) — see DESIGN.md §2",
		Run:   runAB1,
	})
	register(Experiment{
		ID:    "S4",
		Title: "Resilience to colony-size changes (death and hatching)",
		Paper: "Section 6 (changing number of ants)",
		Run:   runS4,
	})
}

// runC1 measures (a) how fast the 1-bit best-of-k majority clock reaches
// consensus from worst-case starts, and (b) what Algorithm Ant loses when
// a fraction of the colony runs one round out of phase — together
// justifying the paper's full-synchronization assumption and its
// footnote that one bit suffices to establish it.
func runC1(p Params) (*Result, error) {
	// (a) clock consensus.
	clockTbl := Table{
		Title:   "C1a: 1-bit phase clock, rounds to full agreement (random start)",
		Columns: []string{"n", "peers sampled", "rounds to 100%", "rounds to 99%"},
	}
	sizes := []int{1000, 10000, 100000}
	if p.Quick {
		sizes = []int{1000, 10000}
	}
	for _, n := range sizes {
		for _, sample := range []int{3, 5} {
			full := clock.New(n, sample, p.Seed+uint64(n))
			rFull, okFull := full.RoundsToSync(1.0, 10000)
			almost := clock.New(n, sample, p.Seed+uint64(n))
			rAlmost, _ := almost.RoundsToSync(0.99, 10000)
			fullCell := fmt.Sprintf("%d", rFull)
			if !okFull {
				fullCell = ">10000"
			}
			clockTbl.Rows = append(clockTbl.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", sample),
				fullCell, fmt.Sprintf("%d", rAlmost),
			})
		}
	}

	// (b) desynchronized Algorithm Ant.
	n, d, rounds, burn := 3000, 500, 8000, uint64(5000)
	if p.Quick {
		n, d, rounds, burn = 2000, 400, 6000, 4000
	}
	dem := demand.Vector{d, d}
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}
	desyncTbl := Table{
		Title:   fmt.Sprintf("C1b: Algorithm Ant with a fraction of ants one round out of phase (n=%d)", n),
		Columns: []string{"desync fraction", "avg regret", "vs synced"},
	}
	var baseline float64
	seed := p.Seed + 1100
	for _, frac := range []float64{0, 0.1, 0.3, 0.5} {
		seed++
		fac := agent.AntFactory(2, agent.DefaultParams(gamma))
		if frac > 0 {
			fac = agent.DesyncFactory(fac, frac, 1)
		}
		rec, _, err := runOne(runSpec{
			n: n, schedule: demand.Static{V: dem}, model: model,
			factory: fac, seed: seed, rounds: rounds, burn: burn, gamma: gamma,
		})
		if err != nil {
			return nil, err
		}
		avg := rec.AvgRegret()
		if frac == 0 {
			baseline = avg
		}
		desyncTbl.Rows = append(desyncTbl.Rows, []string{
			f(frac), f(avg), f(avg / baseline),
		})
	}
	return &Result{
		Tables: []Table{clockTbl, desyncTbl},
		Notes: []string{
			"C1a: best-of-k majority over one shared bit reaches colony-wide",
			"agreement in O(log n) rounds from any start — the paper's footnote-2",
			"claim that full phase synchronization costs one bit of memory.",
			"C1b (measured): Algorithm Ant degrades gracefully under partial",
			"desynchronization at this scale — out-of-phase ants spread the per-phase",
			"pause dip across both rounds, so mild desync even lowers instantaneous",
			"regret, and 50% desync only matches the synced baseline. The w.h.p.",
			"proofs need the assumption; typical behavior is robust without it.",
		},
	}, nil
}

// runV1 compares Algorithm Ant against its single-observation variant
// (Remark 3.4): same steady state, slower initial fill, less memory.
func runV1(p Params) (*Result, error) {
	n, d, rounds := 3000, 500, 10000
	k := 4
	if p.Quick {
		n, d, rounds, k = 2000, 300, 7000, 3
	}
	dem := demand.Uniform(k, d)
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}
	burn := uint64(rounds) * 2 / 3

	type variant struct {
		name string
		fac  agent.Factory
		mem  int
	}
	variants := []variant{
		{"ant (full feedback)", agent.AntFactory(k, agent.DefaultParams(gamma)),
			agent.NewAnt(k, agent.DefaultParams(gamma)).MemoryBits()},
		{"ant (single-task feedback)", agent.SingleFeedbackAntFactory(k, agent.DefaultParams(gamma)),
			agent.NewSingleFeedbackAnt(k, agent.DefaultParams(gamma)).MemoryBits()},
	}
	tbl := Table{
		Title: fmt.Sprintf("V1: feedback-scope variants, n=%d, k=%d, d=%d", n, k, d),
		Columns: []string{"variant", "memory bits", "avg regret (post burn)",
			"rounds to half-fill", "closeness"},
	}
	seed := p.Seed + 1200
	for _, v := range variants {
		seed++
		// Track the fill time inline: first round with total load >= Σd/2.
		fill := -1
		rec := metrics.NewRecorder(k, gamma, agent.DefaultCs, burn)
		e, err := colony.New(colony.Config{
			N: n, Schedule: demand.Static{V: dem}, Model: model,
			Factory: v.fac, Seed: seed, Shards: 1,
		})
		if err != nil {
			return nil, err
		}
		half := dem.Sum() / 2
		e.Run(rounds, metrics.Multi(rec.Observer(),
			func(t uint64, loads []int, _ demand.Vector) {
				if fill >= 0 {
					return
				}
				total := 0
				for _, w := range loads {
					total += w
				}
				if total >= half {
					fill = int(t)
				}
			}))
		gammaStar := model.CriticalValue(n, dem.Min())
		tbl.Rows = append(tbl.Rows, []string{
			v.name, fmt.Sprintf("%d", v.mem), f(rec.AvgRegret()),
			fmt.Sprintf("%d", fill), f(rec.Closeness(gammaStar, dem.Sum())),
		})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Remark 3.4: restricting each ant to one observed task per round",
			"changes only the initial cost. The single-observation variant fills",
			"more slowly (idle ants probe one task at a time) but matches the full",
			"variant's steady-state regret with constant instead of O(k) memory.",
		},
	}, nil
}

// runW1 adds a per-switch cost to the regret (the future direction of
// Section 2.3 and the Theorem 3.6 remark) and finds the crossover where
// Algorithm Precise Adversarial's switch economy beats Algorithm Ant.
func runW1(p Params) (*Result, error) {
	n, d, phases := 3000, 500, 40
	if p.Quick {
		n, d, phases = 2000, 400, 30
	}
	dem := demand.Vector{d, d}
	gammaStar := 0.03
	gamma := gammaStar
	eps := 0.5
	model := noise.AdversarialModel{GammaAd: gammaStar, Strategy: noise.Alternating{}}

	paParams := agent.DefaultPreciseParams(gamma, eps)
	phaseLen := agent.NewPreciseAdversarial(2, paParams).PhaseLen()
	rounds := phases * phaseLen
	burn := uint64(rounds / 2)

	type leg struct {
		name string
		fac  agent.Factory
	}
	legs := []leg{
		{"ant", agent.AntFactory(2, agent.DefaultParams(gamma))},
		{"precise-adversarial", agent.PreciseAdversarialFactory(2, paParams)},
	}
	weights := []float64{0, 0.1, 1, 10}
	tbl := Table{
		Title: fmt.Sprintf("W1: cost = regret + w·switches per round (adversarial noise, n=%d)", n),
		Columns: append([]string{"algorithm", "avg regret", "switches/round"},
			"w=0", "w=0.1", "w=1", "w=10"),
	}
	costs := make([][]float64, len(legs))
	seed := p.Seed + 1300
	for i, l := range legs {
		seed++
		e, err := colony.New(colony.Config{
			N: n, Schedule: demand.Static{V: dem}, Model: model,
			Factory: l.fac, Init: colony.Exact(dem), Seed: seed, Shards: 1,
		})
		if err != nil {
			return nil, err
		}
		wrec := make([]*metrics.WeightedRecorder, len(weights))
		for wi, w := range weights {
			wrec[wi] = metrics.NewWeightedRecorder(2, 1, 1, w, burn)
		}
		rec := metrics.NewRecorder(2, gamma, agent.DefaultCs, burn)
		e.Run(rounds, func(t uint64, loads []int, dv demand.Vector) {
			rec.Observe(t, loads, dv)
			for _, w := range wrec {
				w.Observe(t, loads, dv, e.Switches())
			}
		})
		row := []string{l.name, f(rec.AvgRegret()),
			f(float64(e.Switches()) / float64(rounds))}
		costs[i] = make([]float64, len(weights))
		for wi := range weights {
			costs[i][wi] = wrec[wi].AvgCost()
			row = append(row, f(costs[i][wi]))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	// Identify the crossover.
	notes := []string{
		"With w = 0 the two algorithms are comparable in plain regret; as the",
		"per-switch cost grows, Algorithm Ant's per-phase churn (cs·γ·W pauses",
		"every 2 rounds) dominates while Precise Adversarial drains once per",
		"O(1/ε)-round phase — the remark after Theorem 3.6.",
	}
	for wi, w := range weights {
		if costs[0][wi] > costs[1][wi] {
			notes = append(notes, fmt.Sprintf(
				"measured crossover: precise-adversarial is cheaper from w = %g on.", w))
			break
		}
	}
	return &Result{Tables: []Table{tbl}, Notes: notes}, nil
}

// runAB1 sweeps the algorithm constants cs and cd around the values the
// analysis pins down (DESIGN.md §2): cs below 20/9 + 2/(cd−1) collapses
// the stable zone [d(1+γ), d(1+(0.9cs−1)γ)] and destabilizes the
// allocation, while very large cd slows recovery from overload.
func runAB1(p Params) (*Result, error) {
	n, d, rounds, burn := 3000, 500, 10000, uint64(6000)
	if p.Quick {
		n, d, rounds, burn = 2000, 400, 7000, 4000
	}
	dem := demand.Vector{d, d}
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}

	tbl := Table{
		Title: fmt.Sprintf("AB1: cs/cd ablation for Algorithm Ant (defaults cs=2.4, cd=19), n=%d", n),
		Columns: []string{"cs", "cd", "stable zone width ·γd", "avg regret",
			"zero crossings/1k rounds", "note"},
	}
	cases := []struct {
		cs, cd float64
		note   string
	}{
		{1.5, 19, "cs < 20/9: stable zone EMPTY (0.9cs−1 < 1)"},
		{2.2, 19, "cs just below the 20/9+2/(cd−1) bound"},
		{2.4, 19, "paper constants as resolved in DESIGN.md"},
		{4.0, 19, "larger spacing: wider zone, deeper dips"},
		{7.0, 19, "cs near the 1/(2γ) ceiling"},
		{2.4, 5, "small cd: fast drain, leave-noise grows"},
		{2.4, 60, "large cd: slow recovery from overload"},
	}
	seed := p.Seed + 1400
	for _, c := range cases {
		seed++
		params := agent.Params{Gamma: gamma, Cs: c.cs, Cd: c.cd}
		if err := params.Validate(false); err != nil {
			return nil, err
		}
		rec, _, err := runOne(runSpec{
			n: n, schedule: demand.Static{V: dem}, model: model,
			factory: agent.AntFactory(2, params),
			seed:    seed, rounds: rounds, burn: burn, gamma: gamma,
		})
		if err != nil {
			return nil, err
		}
		var crossings int64
		for _, z := range rec.ZeroCrossings() {
			crossings += z
		}
		width := 0.9*c.cs - 2 // stable zone width in units of γ·d
		tbl.Rows = append(tbl.Rows, []string{
			f(c.cs), f(c.cd), f(width), f(rec.AvgRegret()),
			f(float64(crossings) / float64(rounds) * 1000), c.note,
		})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"The paper's pseudocode prints cs ← 213; the analysis requires",
			"cs ∈ [20/9 + 2/(cd−1), 1/(2γ)] (Claims 4.1/4.2/4.5). The sweep shows",
			"the mechanism: a negative-width stable zone (cs=1.5) churns hardest,",
			"and regret is flat across the admissible range — supporting the",
			"cs ≈ 7/3 reading documented in DESIGN.md.",
		},
	}, nil
}

// runS4 kills a third of the colony mid-run and hatches it back later,
// measuring recovery — Section 6's "changes of the number of ants".
func runS4(p Params) (*Result, error) {
	n, d, third := 3000, 700, 9000
	if p.Quick {
		n, d, third = 2000, 450, 6000
	}
	dem := demand.Vector{d, d} // Σd = 2d; after the die-off Σd ≤ (2n/3)/2 must still hold
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}

	e, err := colony.New(colony.Config{
		N: n, Schedule: demand.Static{V: dem}, Model: model,
		Factory: agent.AntFactory(2, agent.DefaultParams(gamma)),
		Seed:    p.Seed + 1500, Shards: 1,
	})
	if err != nil {
		return nil, err
	}
	phase := third / 3
	window := func(rounds int) float64 {
		rec := metrics.NewRecorder(2, gamma, agent.DefaultCs, 0)
		e.Run(rounds, rec.Observer())
		return rec.AvgRegret()
	}
	// Converge, then measure a steady window.
	window(phase)
	steady := window(phase)
	// Die-off: a third of the colony disappears, taking its workers.
	e.Resize(n * 2 / 3)
	spike := window(phase / 4)
	recovered := window(phase)
	// Hatch back.
	e.Resize(n)
	rebirth := window(phase / 4)
	final := window(phase)

	tbl := Table{
		Title:   fmt.Sprintf("S4: colony-size changes, n=%d→%d→%d, Σd=%d", n, n*2/3, n, dem.Sum()),
		Columns: []string{"window", "active ants", "avg regret"},
		Rows: [][]string{
			{"steady (pre die-off)", fmt.Sprintf("%d", n), f(steady)},
			{"right after 1/3 die-off", fmt.Sprintf("%d", n*2/3), f(spike)},
			{"recovered", fmt.Sprintf("%d", n*2/3), f(recovered)},
			{"right after hatching", fmt.Sprintf("%d", n), f(rebirth)},
			{"final", fmt.Sprintf("%d", n), f(final)},
		},
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"A die-off removes workers uniformly, leaving deficits the survivors",
			"re-fill from the idle reserve; hatching adds idle ants that the",
			"algorithm absorbs. Both recovered windows match the steady window —",
			"the Section 6 resilience claim.",
		},
	}, nil
}
