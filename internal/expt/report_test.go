package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	md := tbl.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestWriteMarkdownReportUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, []string{"nope"}, Params{Quick: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestWriteMarkdownReportOneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, []string{"F1"}, Params{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Experiment report (quick mode", "## F1", "Figure 1", "```"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
