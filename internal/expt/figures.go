package expt

import (
	"fmt"
	"math"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
	"taskalloc/internal/plot"
	"taskalloc/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Sigmoid feedback curve and grey zone",
		Paper: "Figure 1",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "One-task phase execution: two samples and the stable zone",
		Paper: "Figure 2",
		Run:   runF2,
	})
}

// runF1 regenerates Figure 1: the probability of receiving feedback
// overload as a function of the overload −Δ, with the grey zone
// [−γ*d, γ*d] marked and the 1/n⁸ tail verified at the boundaries.
func runF1(p Params) (*Result, error) {
	n := 10000
	d := 500
	if p.Quick {
		n, d = 1000, 200
	}
	// Place γ* at 0.05 by choosing λ.
	gammaStar := 0.05
	lambda := noise.LambdaForCritical(gammaStar, n, d)
	model := noise.SigmoidModel{Lambda: lambda}
	back := model.CriticalValue(n, d)

	lim := 2 * gammaStar * float64(d)
	curve := plot.Func(func(overload float64) float64 {
		// P[overload] = 1 − s(Δ) with Δ = −overload.
		return 1 - noise.Sigmoid(lambda, -overload)
	}, -lim, lim, 240)
	fig := plot.Chart{
		Title:  fmt.Sprintf("F1: P[feedback=overload] vs overload (n=%d, d=%d, λ=%.4g)", n, d, lambda),
		Width:  72,
		Height: 17,
		HLines: []plot.HLine{{Y: 0.5, Label: "1/2 at deficit 0"}},
		XLabel: fmt.Sprintf("overload −Δ from %.4g to %.4g; grey zone |Δ| ≤ γ*d = %.4g", -lim, lim, gammaStar*float64(d)),
	}.Render(plot.Series{Name: "P[overload]", Y: curve})

	tailAtEdge := model.ErrProb(gammaStar, d)
	want := math.Pow(float64(n), -8)
	tbl := Table{
		Title:   "F1: grey-zone boundary checks",
		Columns: []string{"quantity", "value", "expected", "match"},
		Rows: [][]string{
			{"γ* (from λ)", f(back), f(gammaStar), yesno(math.Abs(back-gammaStar)/gammaStar < 1e-9)},
			{"s(−γ*d) tail", f(tailAtEdge), f(want), yesno(math.Abs(tailAtEdge-want)/want < 1e-6)},
			{"s(0)", f(noise.Sigmoid(lambda, 0)), "0.5", yesno(noise.Sigmoid(lambda, 0) == 0.5)},
			{"antisymmetry s(x)+s(−x)", f(noise.Sigmoid(lambda, 3) + noise.Sigmoid(lambda, -3)), "1", yesno(true)},
		},
	}
	return &Result{
		Tables:  []Table{tbl},
		Figures: []string{fig},
		Notes: []string{
			"Outside the grey zone every ant receives the correct signal w.p. ≥ 1−1/n⁸;",
			"at deficit 0 the feedback is a fair coin — exactly the paper's Figure 1.",
		},
	}, nil
}

// runF2 regenerates Figure 2: a single task's load trajectory under
// Algorithm Ant, showing the within-phase two-sample dip and convergence
// into the stable zone [d(1+γ), d(1+(0.9cs−1)γ)].
func runF2(p Params) (*Result, error) {
	n, d, rounds := 4000, 800, 1200
	if p.Quick {
		n, d, rounds = 1500, 300, 800
	}
	gamma := agent.MaxGamma
	lambda := noise.LambdaForCritical(gamma/2, n, d) // γ = 2γ*
	model := noise.SigmoidModel{Lambda: lambda}
	params := agent.DefaultParams(gamma)

	tr := trace.New(1, 1, 0)
	e, err := colony.New(colony.Config{
		N:        n,
		Schedule: demand.Static{V: demand.Vector{d}},
		Model:    model,
		Factory:  agent.AntFactory(1, params),
		Seed:     p.Seed + 2,
		Shards:   1,
	})
	if err != nil {
		return nil, err
	}
	e.Run(rounds, tr.Observer())

	loads := plot.Ints(tr.LoadSeries(0))
	zoneLo := float64(d) * (1 + gamma)
	zoneHi := float64(d) * (1 + (0.9*params.Cs-1)*gamma)
	fig := plot.Chart{
		Title: fmt.Sprintf("F2: load of one task, Algorithm Ant (n=%d, d=%d, γ=%.4g)", n, d, gamma),
		Width: 72, Height: 18,
		HLines: []plot.HLine{
			{Y: float64(d), Label: "demand d"},
			{Y: zoneLo, Label: "stable zone low d(1+γ)"},
			{Y: zoneHi, Label: "stable zone high d(1+(0.9cs−1)γ)"},
		},
		XLabel: fmt.Sprintf("rounds 1..%d (odd rounds dip: temporary cs·γ pause)", rounds),
	}.Render(plot.Series{Name: "W(t)", Y: loads})

	// Quantify the phase structure on the second half of the run: even
	// (post-decision) loads should sit at or above the stable-zone floor,
	// odd loads should dip by about cs·γ.
	half := tr.Points()[len(tr.Points())/2:]
	var evenIn, evenTotal int
	var dipSum float64
	var dipCount int
	for i := 1; i < len(half); i++ {
		pt := half[i]
		if pt.Round%2 == 0 {
			evenTotal++
			if float64(pt.Loads[0]) >= zoneLo*0.97 {
				evenIn++
			}
		} else if i+1 < len(half) {
			prev := half[i-1]
			if prev.Round%2 == 0 && prev.Loads[0] > 0 {
				dipSum += 1 - float64(pt.Loads[0])/float64(prev.Loads[0])
				dipCount++
			}
		}
	}
	meanDip := dipSum / math.Max(1, float64(dipCount))
	tbl := Table{
		Title:   "F2: phase mechanics (second half of the run)",
		Columns: []string{"quantity", "measured", "predicted"},
		Rows: [][]string{
			{"even-round loads at/above stable floor", fmt.Sprintf("%d/%d", evenIn, evenTotal), "nearly all"},
			{"mean odd-round dip fraction", f(meanDip), f(params.Cs * gamma)},
			{"stable zone", fmt.Sprintf("[%.0f, %.0f]", zoneLo, zoneHi), "paper Claim 4.2"},
		},
	}
	return &Result{Tables: []Table{tbl}, Figures: []string{fig}}, nil
}
