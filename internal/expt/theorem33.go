package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/automaton"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/lowerbound"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "T33",
		Title: "Memory lower bound: sub-critical learning rates cannot beat the ε floor",
		Paper: "Theorem 3.3",
		Run:   runT33,
	})
	register(Experiment{
		ID:    "A22",
		Title: "Assumption 2.2 verification of the implemented automata",
		Paper: "Assumptions 2.2",
		Run:   runA22,
	})
}

// runT33 contrasts constant-memory algorithms that try to sit inside the
// grey zone (Algorithm Ant run at a sub-critical γ = ε·γ*, the "Hugger")
// with the εγ*Σd floor of Theorem 3.3: the floor binds, and the huggers
// exhibit grey-zone-scale oscillations, while Precise Sigmoid — paying
// O(log 1/ε) memory — beats the constant-memory floor as the theorem
// permits.
func runT33(p Params) (*Result, error) {
	// Scale note: the Precise Sigmoid contrast row moves loads by
	// γ'·d = εγ*d/c_χ ants per phase, so d is chosen to make that a few
	// ants (see runT32's methodology comment).
	n, d, rounds, burn := 15000, 3000, 14000, uint64(8000)
	if p.Quick {
		n, d, rounds, burn = 10000, 2000, 9000, 5500
	}
	dem := demand.Vector{d, d}
	gammaStar := 0.03
	lambda := noise.LambdaForCritical(gammaStar, n, dem.Min())
	model := noise.SigmoidModel{Lambda: lambda}

	tbl := Table{
		Title: fmt.Sprintf("T33: constant memory vs the εγ*Σd floor, n=%d, γ*=%.4g",
			n, gammaStar),
		Columns: []string{"algorithm", "ε", "memory bits", "avg regret",
			"floor εγ*Σd", "≥ floor", "max |Δ|/γ*d", "budget c·log(1/ε)"},
	}
	seed := p.Seed + 200

	addRow := func(name string, eps float64, memBits int, factory agent.Factory, init colony.Initializer) error {
		seed++
		rec, _, err := runOne(runSpec{
			n:        n,
			schedule: demand.Static{V: dem},
			model:    model,
			factory:  factory,
			init:     init,
			seed:     seed,
			rounds:   rounds,
			burn:     burn,
			gamma:    gammaStar,
		})
		if err != nil {
			return err
		}
		avg := rec.AvgRegret()
		floor := lowerbound.SigmoidFloor(eps, gammaStar, dem.Sum())
		maxOsc := 0
		for _, m := range rec.MaxAbsDeficit() {
			if m > maxOsc {
				maxOsc = m
			}
		}
		relOsc := float64(maxOsc) / (gammaStar * float64(d))
		tbl.Rows = append(tbl.Rows, []string{
			name, f(eps), fmt.Sprintf("%d", memBits), f(avg), f(floor),
			yesno(avg >= floor), f(relOsc),
			fmt.Sprintf("%d", lowerbound.MemoryBudget(1, eps)),
		})
		return nil
	}

	for _, eps := range []float64{0.5, 0.25} {
		hp := agent.DefaultParams(eps * gammaStar)
		hugger := agent.HuggerFactory(2, hp)
		proto := agent.NewHugger(2, hp)
		if err := addRow("hugger (Ant @ εγ*)", eps, proto.MemoryBits(), hugger, nil); err != nil {
			return nil, err
		}
	}
	// Contrast: Precise Sigmoid with ε = 0.5 spends Θ(log 1/ε) MORE
	// memory and (measured from its stable point, per runT32's
	// methodology) lands BELOW the constant-memory floor — the escape the
	// theorem charges memory for. It runs at γ = 2γ* so its reduced-step
	// buffer γ'·d is several ants at this scale: at γ'·d ≈ 3 the stable
	// point sits within integer-drift distance of the demand, where a
	// single crossing triggers an idle-pool avalanche (metastability, not
	// a property of the asymptotic algorithm).
	psp := agent.DefaultPreciseParams(2*gammaStar, 0.5)
	psProto := agent.NewPreciseSigmoid(2, psp)
	if err := addRow("precise-sigmoid (γ=2γ*)", 0.5, psProto.MemoryBits(),
		agent.PreciseSigmoidFactory(2, psp),
		stableZoneInit(dem, psp.Epsilon*psp.Gamma/psp.CChi, psp.Cs)); err != nil {
		return nil, err
	}

	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Theorem 3.3: with at most c·log(1/ε) bits, regret stays ≥ εγ*Σd and",
			"deficits oscillate at ω(γ*d) scale when an algorithm hugs zero deficit.",
			"The huggers (constant memory, sub-critical step) sit at or above the",
			"floor with grey-zone-scale |Δ| excursions (the max column includes the",
			"initial convergence); Precise Sigmoid escapes below the floor only by",
			"spending the extra memory the theorem charges for.",
		},
	}, nil
}

// runA22 builds the explicit finite-state machines of the implemented
// algorithms and checks the paper's reachability assumption, plus the
// stubborn counter-example the assumption exists to exclude.
func runA22(Params) (*Result, error) {
	tbl := Table{
		Title:   "A22: Assumption 2.2 (all states mutually reachable)",
		Columns: []string{"machine", "k", "states", "memory bits", "alphabet", "strongly connected", "diameter"},
	}
	add := func(name string, k int, m *automaton.FSM) error {
		if err := m.Validate(); err != nil {
			return err
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, fmt.Sprintf("%d", k), fmt.Sprintf("%d", m.States()),
			fmt.Sprintf("%d", m.MemoryBits()), fmt.Sprintf("%d", m.Alphabet()),
			yesno(m.StronglyConnected()), fmt.Sprintf("%d", m.Diameter()),
		})
		return nil
	}
	for _, k := range []int{1, 2, 4} {
		if err := add("trivial", k, automaton.TrivialFSM(k)); err != nil {
			return nil, err
		}
		if err := add("ant (phase-level)", k, automaton.AntPhaseFSM(k)); err != nil {
			return nil, err
		}
		if err := add("stubborn (violates 2.2)", k, automaton.StubbornFSM(k)); err != nil {
			return nil, err
		}
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"The paper requires every ant automaton to satisfy Assumption 2.2; the",
			"stubborn worker (never leaves its task) is the excluded counter-example",
			"and is correctly flagged as not strongly connected (diameter −1).",
		},
	}, nil
}
