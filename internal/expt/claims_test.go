package expt

// Claim-level regression tests: each paper claim that an experiment
// demonstrates is asserted here on the quick-mode run, so a regression in
// any algorithm, noise model, or metric that would flip a theorem's
// verdict fails CI — not just the human-read tables.

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tbl Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tbl.Columns)
	return ""
}

func cellFloat(t *testing.T, tbl Table, row int, col string) float64 {
	t.Helper()
	s := cell(t, tbl, row, col)
	s = strings.ReplaceAll(s, "e+0", "e+0") // keep scientific notation intact
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

// TestClaimT32RatioIsO1: Precise Sigmoid's regret/(γεΣd) ratio must be a
// small constant for every ε (Theorem 3.2's linear-in-ε law).
func TestClaimT32RatioIsO1(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runT32(Params{Quick: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	for r := range tbl.Rows {
		ratio := cellFloat(t, tbl, r, "ratio")
		if ratio > 4 {
			t.Errorf("row %v: ratio %v not O(1)", tbl.Rows[r], ratio)
		}
	}
}

// TestClaimT33FloorAndEscape: huggers sit at/above the εγ*Σd floor;
// Precise Sigmoid (more memory) lands below it.
func TestClaimT33FloorAndEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runT33(Params{Quick: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	for r := range tbl.Rows {
		name := tbl.Rows[r][0]
		avg := cellFloat(t, tbl, r, "avg regret")
		floor := cellFloat(t, tbl, r, "floor εγ*Σd")
		if strings.HasPrefix(name, "hugger") {
			if avg < floor*0.9 {
				t.Errorf("%s beat the floor: %v < %v", name, avg, floor)
			}
		} else { // precise-sigmoid
			if avg > floor {
				t.Errorf("%s failed to escape the floor: %v > %v", name, avg, floor)
			}
		}
	}
}

// TestClaimT35FloorBindsAll: every algorithm's Yao-averaged regret is at
// least the indistinguishability floor.
func TestClaimT35FloorBindsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runT35(Params{Quick: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	for r := range tbl.Rows {
		if got := tbl.Rows[r][len(tbl.Rows[r])-1]; got != "yes" {
			t.Errorf("row %v: floor did not bind", tbl.Rows[r])
		}
	}
}

// TestClaimT36InBoundWithFewerSwitches: Precise Adversarial stays within
// 1.5× its (1+ε)γΣd bound and switches at least 50× less than Ant.
func TestClaimT36InBoundWithFewerSwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runT36(Params{Quick: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	for r := range tbl.Rows {
		if got := cell(t, tbl, r, "in bound(±50%)"); got != "yes" {
			t.Errorf("row %v: out of bound", tbl.Rows[r])
		}
		sw := cellFloat(t, tbl, r, "switches/round")
		antSw := cellFloat(t, tbl, r, "ant switches/round")
		if sw*50 > antSw {
			t.Errorf("row %v: switch economy missing (%v vs ant %v)", tbl.Rows[r], sw, antSw)
		}
	}
}

// TestClaimS3Separation: under sigmoid noise the measured regret is below
// the γ*Σd line; under adversarial noise it is not (Theorem 3.5 floor).
func TestClaimS3Separation(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runS3(Params{Quick: true, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	sig := cellFloat(t, tbl, 0, "regret/(γ*Σd)")
	adv := cellFloat(t, tbl, 1, "regret/(γ*Σd)")
	if sig >= 1 {
		t.Errorf("sigmoid leg ratio %v not below the γ*Σd line", sig)
	}
	if adv < 0.9 {
		t.Errorf("adversarial leg ratio %v beat the Theorem 3.5 floor", adv)
	}
	if adv <= sig {
		t.Errorf("no separation: adversarial %v <= sigmoid %v", adv, sig)
	}
}

// TestClaimD1D2SchedulerCliff: the trivial algorithm's regret collapses
// by orders of magnitude between the synchronous and sequential models.
func TestClaimD1D2SchedulerCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	d1, err := runD1(Params{Quick: true, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := runD2(Params{Quick: true, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var seqAvg, seqOverN float64
	for _, row := range d1.Tables[0].Rows {
		if row[0] == "avg regret (post burn-in)" {
			seqAvg, _ = strconv.ParseFloat(row[1], 64)
		}
		if strings.HasPrefix(row[0], "avg / n") {
			seqOverN, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	var syncOverN float64
	for _, row := range d2.Tables[0].Rows {
		if row[0] == "avg regret / n" {
			syncOverN, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	if seqOverN > 0.01 {
		t.Errorf("sequential trivial regret/n = %v, want ≪ 1", seqOverN)
	}
	if syncOverN < 0.2 {
		t.Errorf("synchronous trivial regret/n = %v, want Θ(1)", syncOverN)
	}
	if seqAvg <= 0 {
		t.Errorf("sequential average %v not positive", seqAvg)
	}
}

// TestClaimS4Recovery: both post-event windows return to the steady
// level within 25%.
func TestClaimS4Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runS4(Params{Quick: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	steady := cellFloat(t, tbl, 0, "avg regret")
	recovered := cellFloat(t, tbl, 2, "avg regret")
	final := cellFloat(t, tbl, 4, "avg regret")
	for _, v := range []float64{recovered, final} {
		if v > steady*1.25 {
			t.Errorf("recovery %v not within 25%% of steady %v", v, steady)
		}
	}
}
