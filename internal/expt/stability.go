package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
	"taskalloc/internal/plot"
	"taskalloc/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "S1",
		Title: "Self-stabilization under demand changes",
		Paper: "Section 1/6 (self-stabilization claims)",
		Run:   runS1,
	})
	register(Experiment{
		ID:    "S2",
		Title: "Correlated noise with small marginal error leaves guarantees intact",
		Paper: "Remark 3.4",
		Run:   runS2,
	})
	register(Experiment{
		ID:    "S3",
		Title: "Model separation: ε-close (sigmoid) vs (1+ε) floor (adversarial)",
		Paper: "Sections 3.3 vs 3.4",
		Run:   runS3,
	})
}

// runS1 changes the demand vector mid-run and measures the regret spike
// and re-convergence time — the paper's self-stabilization claim.
func runS1(p Params) (*Result, error) {
	n, rounds := 3000, 12000
	if p.Quick {
		n, rounds = 2000, 8000
	}
	d1 := demand.Vector{n / 10, n / 5}     // initial demands
	d2 := demand.Vector{n / 5, n / 10}     // swapped at T1
	d3 := demand.Vector{n / 20, n * 3 / 8} // skewed at T2
	t1 := uint64(rounds / 3)
	t2 := uint64(2 * rounds / 3)
	sched, err := demand.NewStep(d1, []uint64{t1, t2}, []demand.Vector{d2, d3})
	if err != nil {
		return nil, err
	}
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d3.Min())}

	tr := trace.New(2, 1, 0)
	rec := metrics.NewRecorder(2, gamma, agent.DefaultCs, 0)
	e, err := colony.New(colony.Config{
		N:        n,
		Schedule: sched,
		Model:    model,
		Factory:  agent.AntFactory(2, agent.DefaultParams(gamma)),
		Seed:     p.Seed + 700,
		Shards:   1,
	})
	if err != nil {
		return nil, err
	}
	e.Run(rounds, metrics.Multi(rec.Observer(), tr.Observer()))

	fig := plot.Chart{
		Title: fmt.Sprintf("S1: regret under demand changes at t=%d and t=%d", t1, t2),
		Width: 72, Height: 14,
		XLabel: fmt.Sprintf("rounds 1..%d", rounds),
	}.Render(plot.Series{Name: "r(t)", Y: plot.Ints(tr.RegretSeries())})

	// Re-convergence: time from each change until regret first returns
	// below twice the Theorem 3.1 band and holds for 50 rounds.
	series := tr.RegretSeries()
	band := func(dem demand.Vector) int { return int(2 * (5*gamma*float64(dem.Sum()) + 3)) }
	recov := func(from uint64, dem demand.Vector) string {
		idx := int(from) // series index is round-1
		if idx >= len(series) {
			return "n/a"
		}
		c := metrics.ConvergenceTime(series[idx:], band(dem), 50)
		if c < 0 {
			return "not reached"
		}
		return fmt.Sprintf("%d rounds", c)
	}
	tbl := Table{
		Title:   "S1: demand-change recovery",
		Columns: []string{"event", "demands", "recovery to 2×band"},
		Rows: [][]string{
			{"start (all idle)", fmt.Sprintf("%v", d1), recov(0, d1)},
			{fmt.Sprintf("t=%d swap", t1), fmt.Sprintf("%v", d2), recov(t1, d2)},
			{fmt.Sprintf("t=%d skew", t2), fmt.Sprintf("%v", d3), recov(t2, d3)},
		},
	}
	return &Result{
		Tables:  []Table{tbl},
		Figures: []string{fig},
		Notes: []string{
			"Algorithm Ant carries no state that outlives a phase, so any demand",
			"change is just another 'arbitrary initial allocation': Theorem 3.1",
			"re-applies from the change point (the paper's self-stabilization).",
		},
	}, nil
}

// runS2 wraps the sigmoid model in colony-wide correlated flips with
// marginal probability 1/n² and checks Algorithm Ant's regret is
// unchanged relative to the uncorrelated baseline (Remark 3.4).
func runS2(p Params) (*Result, error) {
	n, d, rounds, burn := 3000, 400, 10000, uint64(6000)
	if p.Quick {
		n, d, rounds, burn = 2000, 300, 6000, 4000
	}
	dem := demand.Vector{d, d}
	gamma := agent.MaxGamma
	base := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}

	flip := 1 / (float64(n) * float64(n))
	models := []noise.Model{
		base,
		noise.CorrelatedModel{Base: base, FlipProb: flip, Seed: p.Seed},
		noise.CorrelatedModel{Base: base, FlipProb: 0.02, Seed: p.Seed}, // too-large flips for contrast
	}
	tbl := Table{
		Title:   fmt.Sprintf("S2: correlated colony-wide flips, n=%d (Remark 3.4)", n),
		Columns: []string{"model", "flip prob", "avg regret", "vs baseline"},
	}
	var baseline float64
	seed := p.Seed + 800
	for i, m := range models {
		seed++
		rec, _, err := runOne(runSpec{
			n: n, schedule: demand.Static{V: dem}, model: m,
			factory: agent.AntFactory(2, agent.DefaultParams(gamma)),
			seed:    seed, rounds: rounds, burn: burn, gamma: gamma,
		})
		if err != nil {
			return nil, err
		}
		avg := rec.AvgRegret()
		if i == 0 {
			baseline = avg
		}
		fp := "0"
		if cm, ok := m.(noise.CorrelatedModel); ok {
			fp = f(cm.FlipProb)
		}
		tbl.Rows = append(tbl.Rows, []string{m.Name(), fp, f(avg), f(avg / baseline)})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Remark 3.4: arbitrary correlation is harmless while the marginal",
			"error outside the grey zone stays ≤ 1/n^c. The 1/n² row matches the",
			"baseline; the deliberately large 2% flip row degrades it.",
		},
	}, nil
}

// runS3 contrasts the two noise models at equal parameters: under sigmoid
// noise Precise Sigmoid beats the γ*Σd line (ε-closeness is feasible),
// while under adversarial noise even Precise Adversarial cannot go below
// it (Theorem 3.5) — the separation highlighted in Section 3.4.
func runS3(p Params) (*Result, error) {
	// Both legs are steady-state measurements (see runT32's methodology
	// comment): the sigmoid leg starts in Precise Sigmoid's stable zone
	// at the reduced step εγ/c_χ (so d is scaled to keep γ'·d a few
	// ants), the adversarial leg starts exact; the adversarial leg runs
	// at γ = 2γ* per the γ = γ* boundary note (DESIGN.md §4b).
	n, d := 30000, 6000
	eps := 0.25
	sigPhases, advPhases := 40, 70
	if p.Quick {
		n, d = 15000, 3000
		eps = 0.5
		sigPhases, advPhases = 30, 60
	}
	dem := demand.Vector{d, d}
	gammaStar := 0.03
	gamma := gammaStar

	// Sigmoid leg.
	sigParams := agent.DefaultPreciseParams(gamma, eps)
	sigProto := agent.NewPreciseSigmoid(2, sigParams)
	sigRounds := sigPhases * sigProto.PhaseLen()
	sigModel := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gammaStar, n, d)}
	sigRec, _, err := runOne(runSpec{
		n: n, schedule: demand.Static{V: dem}, model: sigModel,
		factory: agent.PreciseSigmoidFactory(2, sigParams),
		init:    stableZoneInit(dem, eps*gamma/sigParams.CChi, sigParams.Cs),
		seed:    p.Seed + 900, rounds: sigRounds, burn: uint64(sigRounds / 2), gamma: gamma,
	})
	if err != nil {
		return nil, err
	}

	// Adversarial leg.
	advGamma := 2 * gammaStar
	advParams := agent.DefaultPreciseParams(advGamma, eps)
	advProto := agent.NewPreciseAdversarial(2, advParams)
	advRounds := advPhases * advProto.PhaseLen()
	advModel := noise.AdversarialModel{GammaAd: gammaStar, Strategy: noise.Inverted{}}
	advRec, _, err := runOne(runSpec{
		n: n, schedule: demand.Static{V: dem}, model: advModel,
		factory: agent.PreciseAdversarialFactory(2, advParams),
		init:    colony.Exact(dem),
		seed:    p.Seed + 901, rounds: advRounds, burn: uint64(advRounds * 2 / 3), gamma: advGamma,
	})
	if err != nil {
		return nil, err
	}

	line := gammaStar * float64(dem.Sum())
	sig := sigRec.AvgRegret()
	adv := advRec.AvgRegret()
	tbl := Table{
		Title:   fmt.Sprintf("S3: model separation at γ*=%.4g, ε=%.4g (γ*Σd = %.4g)", gammaStar, eps, line),
		Columns: []string{"noise model", "algorithm", "avg regret", "regret/(γ*Σd)", "theory"},
		Rows: [][]string{
			{"sigmoid", "precise-sigmoid", f(sig), f(sig / line), "can reach ε < 1 (Thm 3.2)"},
			{"adversarial", "precise-adversarial", f(adv), f(adv / line), "≥ 1 − o(1) (Thm 3.5)"},
		},
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"The stochastic model admits median amplification below the γ*Σd line;",
			"the adversarial model provably does not — the models separate.",
		},
	}, nil
}
