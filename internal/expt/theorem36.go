package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "T36",
		Title: "Algorithm Precise Adversarial: (1+ε)-closeness and switch economy",
		Paper: "Theorem 3.6",
		Run:   runT36,
	})
}

// runT36 runs Algorithm Precise Adversarial against hostile grey-zone
// strategies, checking the (1+ε)·γ·Σd regret bound and the theorem's
// remark that it switches ants between tasks far less than Algorithm Ant.
func runT36(p Params) (*Result, error) {
	n, d, phases := 3000, 400, 70
	burnPhases := 50
	if p.Quick {
		n, d, phases, burnPhases = 2000, 400, 60, 45
	}
	dem := demand.Vector{d, d}
	gammaStar := 0.03
	// γ = 2γ*: as in T31, γ = γ* exactly makes the phase's full drain
	// depth γ·d coincide with the grey-zone half-width γ*·d, so whether
	// the own-task signal ever flips to Lack rides on binomial noise at
	// the boundary; the theorem's premise γ ≥ γ* is kept with margin.
	gamma := 2 * gammaStar

	strategies := []noise.GreyStrategy{
		noise.Inverted{},
		noise.Alternating{},
		noise.AlwaysLack{},
	}
	epsilons := []float64{0.5, 0.25}
	if p.Quick {
		epsilons = []float64{0.5}
	}

	tbl := Table{
		Title: fmt.Sprintf("T36: Precise Adversarial, n=%d, γ*=%.4g, γ=2γ*=%.4g (adversarial noise)",
			n, gammaStar, gamma),
		Columns: []string{"grey strategy", "ε", "phase len", "avg regret",
			"bound (1+ε)γΣd", "in bound(±50%)", "switches/round", "ant switches/round"},
	}
	seed := p.Seed + 400
	for _, eps := range epsilons {
		params := agent.DefaultPreciseParams(gamma, eps)
		proto := agent.NewPreciseAdversarial(2, params)
		phaseLen := proto.PhaseLen()
		rounds := phases * phaseLen
		burn := uint64(burnPhases * phaseLen)
		for _, strat := range strategies {
			seed += 2
			model := noise.AdversarialModel{GammaAd: gammaStar, Strategy: strat}
			rec, eng, err := runOne(runSpec{
				n: n, schedule: demand.Static{V: dem}, model: model,
				factory: agent.PreciseAdversarialFactory(2, params),
				init:    colony.Exact(dem),
				seed:    seed, rounds: rounds, burn: burn, gamma: gamma,
			})
			if err != nil {
				return nil, err
			}
			// Ant baseline under the same adversary, same horizon.
			antRec, antEng, err := runOne(runSpec{
				n: n, schedule: demand.Static{V: dem}, model: model,
				factory: agent.AntFactory(2, agent.DefaultParams(gamma)),
				init:    colony.Exact(dem),
				seed:    seed + 1, rounds: rounds, burn: burn, gamma: gamma,
			})
			if err != nil {
				return nil, err
			}
			_ = antRec
			avg := rec.AvgRegret()
			bound := (1 + eps) * gamma * float64(dem.Sum())
			sw := float64(eng.Switches()) / float64(rounds)
			antSw := float64(antEng.Switches()) / float64(rounds)
			tbl.Rows = append(tbl.Rows, []string{
				strat.Name(), f(eps), fmt.Sprintf("%d", phaseLen), f(avg), f(bound),
				yesno(avg <= 1.5*bound), f(sw), f(antSw),
			})
		}
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Theorem 3.6: lim R(t)/t = (1+ε)γΣd under any grey-zone strategy.",
			"Drain/restore happens once per O(1/ε)-round phase, so the switch",
			"rate is far below Algorithm Ant's per-phase churn (last column).",
			"Against Theorem 3.5's floor γ*Σd this is optimal up to (1+ε).",
		},
	}, nil
}
