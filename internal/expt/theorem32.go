package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "T32",
		Title: "Algorithm Precise Sigmoid: ε-closeness vs memory/phase tradeoff",
		Paper: "Theorem 3.2",
		Run:   runT32,
	})
}

// runT32 sweeps the precision ε of Algorithm Precise Sigmoid and checks
// that the steady-state average regret tracks γ·ε·Σd (Theorem 3.2) while
// memory and phase length grow as O(log(1/ε)) and O(1/ε).
//
// Methodology notes (recorded in EXPERIMENTS.md):
//
//   - Theorem 3.2 is a lim_{t→∞} statement; the initial convergence cost
//     c·n·k/γ' at the reduced step γ' = εγ/c_χ is suppressed there and
//     would take Θ(c_χ·cd/(εγ)) phases from an empty start. Moreover the
//     exact allocation (deficit 0) is the point of MAXIMAL feedback
//     uncertainty — the paper's own argument for oscillating around a
//     small positive overload — so runs start at the algorithm's stable
//     point d(1+Θ(γ')) and measure the steady state (transients are
//     exercised by T31/S1).
//   - The reduced step moves loads by γ'·d ants per phase and the median
//     mechanism needs the per-sample reliability at deficit 1.4·γ'·d to
//     clear 1/2 by a constant (then m samples amplify it); both require
//     γ'·d = ε·γ·d/c_χ to be at least a few ANTS. Demands are scaled
//     accordingly — at the paper's asymptotic scale this is the harmless
//     d = Ω(log n/γ²) assumption, at laptop scale it is binding.
func runT32(p Params) (*Result, error) {
	n, d := 50000, 10000
	epsilons := []float64{0.8, 0.4, 0.2}
	phases, burnPhases := 30, 10
	if p.Quick {
		n, d = 12000, 2500
		epsilons = []float64{0.8, 0.4}
	}
	dem := demand.Vector{d, d}
	gamma := 0.03
	lambda := noise.LambdaForCritical(gamma, n, dem.Min())
	model := noise.SigmoidModel{Lambda: lambda}

	tbl := Table{
		Title: fmt.Sprintf("T32: Precise Sigmoid, n=%d, d=(%d,%d), γ=γ*=%.4g (steady state)",
			n, d, d, gamma),
		Columns: []string{"ε", "phase len", "memory bits", "step γ'd (ants)",
			"avg regret", "target γεΣd", "ratio", "ant baseline 5γΣd+3"},
	}
	antBand := 5*gamma*float64(dem.Sum()) + 3
	seed := p.Seed + 100
	var ratios []float64
	for _, eps := range epsilons {
		params := agent.DefaultPreciseParams(gamma, eps)
		proto := agent.NewPreciseSigmoid(2, params)
		phaseLen := proto.PhaseLen()
		rounds := phases * phaseLen
		burn := uint64(burnPhases * phaseLen)
		seed++
		rec, _, err := runOne(runSpec{
			n:        n,
			schedule: demand.Static{V: dem},
			model:    model,
			factory:  agent.PreciseSigmoidFactory(2, params),
			init:     stableZoneInit(dem, eps*gamma/params.CChi, params.Cs),
			seed:     seed,
			rounds:   rounds,
			burn:     burn,
			gamma:    gamma,
		})
		if err != nil {
			return nil, err
		}
		avg := rec.AvgRegret()
		target := gamma * eps * float64(dem.Sum())
		ratio := avg / target
		ratios = append(ratios, ratio)
		stepAnts := eps * gamma * float64(d) / params.CChi
		tbl.Rows = append(tbl.Rows, []string{
			f(eps), fmt.Sprintf("%d", phaseLen), fmt.Sprintf("%d", proto.MemoryBits()),
			f(stepAnts), f(avg), f(target), f(ratio), f(antBand),
		})
	}
	notes := []string{
		"Theorem 3.2: lim R(t)/t = γεΣd + O(1); the ratio column should stay",
		"an O(1) constant as ε shrinks, while the plain Algorithm Ant band",
		"(last column) does not improve with ε — the memory/precision tradeoff.",
	}
	if len(ratios) >= 2 && ratios[len(ratios)-1] < 4 && ratios[0] < 4 {
		notes = append(notes, "measured: ratio O(1) across ε (shape reproduced)")
	}
	return &Result{Tables: []Table{tbl}, Notes: notes}, nil
}
