// Package expt is the reproduction harness: one registered, named
// experiment per paper artifact (figure, theorem, appendix result), each
// regenerating the corresponding series or table rows. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded outcomes.
package expt

import (
	"fmt"
	"sort"
	"strings"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
)

// Params tunes an experiment run.
type Params struct {
	// Quick shrinks colony sizes and horizons for CI-speed runs; the
	// qualitative shape checks still hold.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// Result is what an experiment produces.
type Result struct {
	Tables  []Table
	Figures []string
	Notes   []string
}

// Table is a rendered-to-strings result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render aligns the table as monospaced text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	// ID is the short handle (e.g. "T31"); Paper names the artifact it
	// reproduces (e.g. "Theorem 3.1").
	ID    string
	Title string
	Paper string
	Run   func(p Params) (*Result, error)
}

var registry = map[string]Experiment{}

// register is called from each experiment file's init.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// --- shared helpers ---------------------------------------------------------

// runSpec describes one simulation leg.
type runSpec struct {
	n        int
	schedule demand.Schedule
	model    noise.Model
	factory  agent.Factory
	init     colony.Initializer
	seed     uint64
	rounds   int
	burn     uint64
	gamma    float64 // for the recorder's decomposition/bound thresholds
}

// runOne executes a synchronous simulation and returns its recorder and
// the engine (for switch counts etc.).
func runOne(s runSpec) (*metrics.Recorder, *colony.Engine, error) {
	e, err := colony.New(colony.Config{
		N:        s.n,
		Schedule: s.schedule,
		Model:    s.model,
		Factory:  s.factory,
		Init:     s.init,
		Seed:     s.seed,
		Shards:   1,
	})
	if err != nil {
		return nil, nil, err
	}
	rec := metrics.NewRecorder(s.schedule.Tasks(), s.gamma, agent.DefaultCs, s.burn)
	e.Run(s.rounds, rec.Observer())
	return rec, e, nil
}

// f formats a float compactly for table cells.
func f(x float64) string { return fmt.Sprintf("%.4g", x) }

// yesno renders a boolean check.
func yesno(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

// stableZoneInit returns an Initializer placing each task's load at the
// midpoint of Algorithm Ant's stable zone [d(1+γ), d(1+(0.9cs−1)γ)] for
// the given effective step size. Used by the steady-state experiments
// (T32, T33, S3): the theorems' lim_{t→∞} statements suppress the
// initial-convergence cost, and the paper itself mandates NOT sitting at
// deficit 0 (maximal feedback uncertainty) — the stable point is above
// the demand by Θ(step·d).
func stableZoneInit(dem demand.Vector, step, cs float64) colony.Initializer {
	loads := make(demand.Vector, len(dem))
	mid := 1 + step*(1+(0.9*cs-1))/2
	for j, d := range dem {
		loads[j] = int(float64(d) * mid)
	}
	return colony.Exact(loads)
}
