package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "T31",
		Title: "Algorithm Ant regret vs the 5γΣd+3 band, both noise models",
		Paper: "Theorem 3.1",
		Run:   runT31,
	})
}

// runT31 sweeps the learning rate γ over multiples of the critical value
// γ* in both noise models and from two initial allocations, checking that
// the post-burn-in average regret sits inside the Theorem 3.1 band
// 5γΣd + 3 and that per-task deficits rarely leave 5γd(j)+3.
//
// Finite-size note (recorded in EXPERIMENTS.md): the theorem's stable-zone
// machinery is a w.h.p. statement under Claim 4.1's concentration
// requirement d = Ω(log n/γ²). At laptop scale that translates into two
// constraints on the sweep: γ*·d must be tens of ants (so the stable zone
// [d(1+γ), d(1+(0.9cs−1)γ)] is wider than one binomial drain step), and —
// for the adversarial model only — γ must exceed γ* strictly, because at
// γ = γ* the stable zone's lower edge lies exactly ON the closed grey
// zone boundary where the adversary may legally lie (with real-valued
// loads this boundary has measure zero; with integer loads it does not).
// The sigmoid model has no such edge (its boundary error is 1/n⁸), so it
// is swept from γ = γ* exactly.
func runT31(p Params) (*Result, error) {
	n, d, rounds, burn := 6000, 1200, 14000, uint64(10000)
	gammaStar := 0.0125
	if p.Quick {
		n, d, rounds, burn = 4000, 800, 9000, 6000
		gammaStar = 0.015
	}
	dem := demand.Vector{d, d}
	lambda := noise.LambdaForCritical(gammaStar, n, dem.Min())

	type sweep struct {
		name  string
		model noise.Model
		mults []float64
	}
	sweeps := []sweep{
		{"sigmoid", noise.SigmoidModel{Lambda: lambda}, []float64{1, 2, 4}},
		{"adversarial/inverted",
			noise.AdversarialModel{GammaAd: gammaStar, Strategy: noise.Inverted{}},
			[]float64{2, 4}},
	}
	inits := []struct {
		name string
		init colony.Initializer
	}{
		{"idle", colony.AllIdle},
		{"flood", colony.Concentrated(0)},
	}

	tbl := Table{
		Title: fmt.Sprintf("T31: Algorithm Ant, n=%d, d=(%d,%d), γ*=%.4g, %d rounds (burn %d)",
			n, d, d, gammaStar, rounds, burn),
		Columns: []string{"model", "init", "γ/γ*", "avg regret", "band 5γΣd+3",
			"in band", "closeness", "≤5·γ/γ*", "band-exit rounds"},
	}
	seed := p.Seed
	for _, sw := range sweeps {
		for _, ic := range inits {
			for _, mult := range sw.mults {
				gamma := mult * gammaStar
				seed++
				rec, _, err := runOne(runSpec{
					n:        n,
					schedule: demand.Static{V: dem},
					model:    sw.model,
					factory:  agent.AntFactory(2, agent.DefaultParams(gamma)),
					init:     ic.init,
					seed:     seed,
					rounds:   rounds,
					burn:     burn,
					gamma:    gamma,
				})
				if err != nil {
					return nil, err
				}
				avg := rec.AvgRegret()
				band := 5*gamma*float64(dem.Sum()) + 3
				closeness := rec.Closeness(gammaStar, dem.Sum())
				var viol int64
				for _, v := range rec.BoundViolations() {
					viol += v
				}
				tbl.Rows = append(tbl.Rows, []string{
					sw.name, ic.name, f(mult), f(avg), f(band),
					yesno(avg <= band), f(closeness),
					yesno(closeness <= 5*mult+1), // +1 slack for finite-n noise
					fmt.Sprintf("%d", viol),
				})
			}
		}
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Theorem 3.1 predicts a 5·(γ/γ*)-close assignment for any initial allocation;",
			"the closeness column should track the γ/γ* column within a small constant.",
			"Band-exit rounds concentrate in the pre-burn-in convergence window",
			"(Theorem 3.1: O(k·log n/γ) such rounds per n⁴ window).",
			"Adversarial rows start at γ = 2γ*: at γ = γ* the stable zone's edge",
			"coincides with the closed grey-zone boundary (see function comment).",
		},
	}, nil
}
