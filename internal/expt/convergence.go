package expt

import (
	"fmt"
	"math"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
	"taskalloc/internal/stats"
	"taskalloc/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "CV1",
		Title: "Convergence time of Algorithm Ant vs colony size and learning rate",
		Paper: "§1.1 comparison with Cornejo et al. (convergence-time metric)",
		Run:   runCV1,
	})
	register(Experiment{
		ID:    "R1",
		Title: "Run-to-run dispersion of the steady-state regret",
		Paper: "methodology (seed sensitivity of all measured tables)",
		Run:   runR1,
	})
}

// runCV1 measures the convergence-time metric the prior work (Cornejo et
// al., DISC 2014) is stated in: rounds from an all-idle start until the
// regret first stays within twice the Theorem 3.1 band. The paper swaps
// this metric for regret because constant-memory algorithms oscillate
// forever; this experiment supplies the bridge between the two papers —
// convergence is dominated by the γ/cd overload drain, so it scales like
// (cd/γ)·ln(n/Σd) and is nearly independent of n at fixed n/Σd.
func runCV1(p Params) (*Result, error) {
	sizes := []int{2000, 4000, 8000}
	gammas := []float64{agent.MaxGamma, agent.MaxGamma / 2, agent.MaxGamma / 4}
	if p.Quick {
		sizes = []int{2000, 4000}
		gammas = []float64{agent.MaxGamma, agent.MaxGamma / 2}
	}
	tbl := Table{
		Title: "CV1: rounds to enter (and hold) 2× the Theorem 3.1 band from all-idle",
		Columns: []string{"n", "Σd", "γ", "convergence rounds",
			"(cd/γ)·ln(n/Σd) prediction", "ratio"},
	}
	seed := p.Seed + 1600
	for _, n := range sizes {
		dem := demand.Vector{n / 8, n / 4} // Σd = 3n/8
		for _, gamma := range gammas {
			seed++
			model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, dem.Min())}
			tr := trace.New(2, 1, 0)
			e, err := colony.New(colony.Config{
				N: n, Schedule: demand.Static{V: dem}, Model: model,
				Factory: agent.AntFactory(2, agent.DefaultParams(gamma)),
				Seed:    seed, Shards: 1,
			})
			if err != nil {
				return nil, err
			}
			maxRounds := int(8 * agent.DefaultCd / gamma)
			e.Run(maxRounds, tr.Observer())
			band := int(2 * (5*gamma*float64(dem.Sum()) + 3))
			conv := metrics.ConvergenceTime(tr.RegretSeries(), band, 100)
			convCell := "not reached"
			ratio := "-"
			// The all-join overshoot puts ~n−Σd extra ants on tasks; the
			// drain back is geometric at rate ~γ/(2cd) per round.
			pred := 2 * agent.DefaultCd / gamma * lnRatio(n, dem.Sum())
			if conv >= 0 {
				convCell = fmt.Sprintf("%d", conv)
				ratio = f(float64(conv) / pred)
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", dem.Sum()), f(gamma),
				convCell, f(pred), ratio,
			})
		}
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Halving γ roughly doubles convergence time (the γ-regret tradeoff the",
			"paper notes: smaller γ gives better regret but slower convergence);",
			"at fixed n/Σd the time is nearly independent of n — the prior work's",
			"convergence-time metric is benign here, regret is the binding one.",
		},
	}, nil
}

// lnRatio returns ln(n/Σd), guarded against degenerate inputs.
func lnRatio(n, sd int) float64 {
	if sd <= 0 || n <= sd {
		return 1
	}
	return math.Log(float64(n) / float64(sd))
}

// runR1 repeats one steady-state workload across seeds for each algorithm
// and reports the dispersion — calibrating how much any single-table
// number in this report can wobble.
func runR1(p Params) (*Result, error) {
	n, d, rounds, burn := 3000, 500, 6000, uint64(4000)
	reps := 5
	if p.Quick {
		n, d, rounds, burn, reps = 2000, 400, 5000, 3500, 3
	}
	dem := demand.Vector{d, d}
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}

	algos := []agent.Factory{
		agent.AntFactory(2, agent.DefaultParams(gamma)),
		agent.SingleFeedbackAntFactory(2, agent.DefaultParams(gamma)),
		agent.TrivialFactory(2),
	}
	tbl := Table{
		Title:   fmt.Sprintf("R1: steady-state regret across %d seeds, n=%d", reps, n),
		Columns: []string{"algorithm", "mean", "std", "min", "max", "CV (std/mean)"},
	}
	seed := p.Seed + 1700
	for _, fac := range algos {
		var s stats.Summary
		for rep := 0; rep < reps; rep++ {
			seed++
			rec, _, err := runOne(runSpec{
				n: n, schedule: demand.Static{V: dem}, model: model,
				factory: fac, seed: seed, rounds: rounds, burn: burn, gamma: gamma,
			})
			if err != nil {
				return nil, err
			}
			s.Add(rec.AvgRegret())
		}
		tbl.Rows = append(tbl.Rows, []string{
			fac.Name, f(s.Mean()), f(s.Std()), f(s.Min()), f(s.Max()),
			f(s.Std() / s.Mean()),
		})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"The phased algorithms' steady-state regret is tightly concentrated",
			"(CV of a few percent), so the single-seed tables elsewhere in this",
			"report are representative; the trivial algorithm's thrash is equally",
			"reproducible because its amplitude is pinned at Θ(n).",
		},
	}, nil
}
