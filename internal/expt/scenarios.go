package expt

import (
	"fmt"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
	"taskalloc/internal/sweeprun"
)

func init() {
	register(Experiment{
		ID:    "S5",
		Title: "Scenario families: ensemble regret bands per demand process",
		Paper: "Section 6 extension (time-varying demand, ensemble view)",
		Run:   runS5,
	})
}

// runS5 runs the scenario-family grid — every generative demand process
// × {Ant, Precise Sigmoid} × seeds — through the multi-simulation batch
// runner and tables the ensemble statistics. It is the S-series'
// ensemble counterpart to S1's single demand-change trajectory: the
// paper's c-closeness claims are statements about regret bands, so each
// cell reports mean ± std (and the p90 tail) over the seed ensemble
// rather than one run.
func runS5(p Params) (*Result, error) {
	n, rounds, seeds := 4000, 6000, 3
	base := demand.Vector{600, 900}
	if p.Quick {
		n, rounds, seeds = 1200, 1500, 2
		base = demand.Vector{180, 270}
	}

	type family struct {
		name  string
		build func() (demand.Schedule, error)
	}
	families := []family{
		{"sinusoid", func() (demand.Schedule, error) {
			return scenario.NewSinusoid(base, []float64{0.3, 0.3}, float64(rounds)/3, []float64{0, 3.14159})
		}},
		{"burst", func() (demand.Schedule, error) {
			peak := base.Clone()
			peak[0] *= 2
			return scenario.NewBurst(base, peak, uint64(rounds)/4, uint64(rounds)/2, uint64(rounds)/10)
		}},
		{"randomwalk", func() (demand.Schedule, error) {
			lo := make(demand.Vector, len(base))
			hi := make(demand.Vector, len(base))
			for j, d := range base {
				lo[j], hi[j] = d/2, d*3/2
			}
			return scenario.NewRandomWalk(base, base.Min()/10, uint64(rounds)/20, lo, hi, p.Seed)
		}},
		{"markov", func() (demand.Schedule, error) {
			rev := demand.Vector{base[1], base[0]}
			pm := [][]float64{{0.6, 0.4}, {0.4, 0.6}}
			return scenario.NewMarkovModulated([]demand.Vector{base, rev}, pm, uint64(rounds)/8, 0, p.Seed)
		}},
	}
	algos := []struct {
		name string
		alg  taskalloc.Algorithm
	}{
		{"ant", taskalloc.Ant},
		{"precise-sigmoid", taskalloc.PreciseSigmoid},
	}

	// One heterogeneous job grid, executed by one batch-runner call over
	// one shared worker pool: families × algorithms × seeds, in table
	// row order (the runner's ordered collector keeps groups contiguous).
	var jobs []sweeprun.Job
	for _, fam := range families {
		sched, err := fam.build()
		if err != nil {
			return nil, err
		}
		frozen, err := scenario.Freeze(sched, uint64(rounds)+1)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, sweeprun.Job{
					Meta: []string{fam.name, a.name},
					Config: taskalloc.Config{
						Ants:      n,
						Demand:    frozen,
						Algorithm: a.alg,
						Epsilon:   0.5,
						Noise:     taskalloc.SigmoidNoise(0.02),
						Seed:      p.Seed + uint64(s),
						Shards:    2,
						BurnIn:    uint64(rounds) / 2,
					},
					Rounds: rounds,
				})
			}
		}
	}
	results := sweeprun.Run(jobs, sweeprun.Options{})

	tbl := Table{
		Title: fmt.Sprintf("S5: scenario families, n=%d, %d rounds, %d seeds (ensemble per cell)",
			n, rounds, seeds),
		Columns: []string{"family", "algorithm", "avg regret (mean±std)", "regret p90",
			"closeness (mean)", "switches/round (mean)"},
	}
	for lo := 0; lo < len(results); lo += seeds {
		group := results[lo : lo+seeds]
		for _, r := range group {
			if r.Err != nil {
				return nil, fmt.Errorf("S5 %v seed job: %w", r.Job.Meta, r.Err)
			}
		}
		sum := sweeprun.Summarize(group)
		tbl.Rows = append(tbl.Rows, []string{
			group[0].Job.Meta[0], group[0].Job.Meta[1],
			fmt.Sprintf("%s±%s", f(sum.AvgRegret.Mean), f(sum.AvgRegret.Std)),
			f(sum.AvgRegret.P90),
			f(sum.Closeness.Mean),
			f(sum.SwitchesPerRound.Mean),
		})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Each cell aggregates an ensemble run by the multi-simulation batch runner",
			"(shared worker pool, deterministic collection); regret bands, not single paths.",
			"Ant tracks every family at ~γΣd-scale regret but churns (switches/round);",
			"Precise Sigmoid switches ~100× less, at the cost of ε·γ/c_χ-slow convergence —",
			"at these horizons it is still filling, so its regret is dominated by ramp-up,",
			"not steady-state tracking error.",
		},
	}, nil
}
