package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/lowerbound"
)

func init() {
	register(Experiment{
		ID:    "T35",
		Title: "Yao demand-pair adversary: the γ*Σd floor binds every algorithm",
		Paper: "Theorem 3.5",
		Run:   runT35,
	})
}

// runT35 builds the Theorem 3.5 indistinguishable demand pair, runs each
// implemented algorithm against the shared threshold feedback under both
// demand vectors, and verifies the averaged regret is at least the
// (1−o(1))·γ*·Σd floor.
func runT35(p Params) (*Result, error) {
	n, d, rounds, burn := 3000, 400, 10000, uint64(4000)
	if p.Quick {
		n, d, rounds, burn = 2000, 300, 6000, 3000
	}
	gammaAd := 0.05
	base := demand.Vector{d, d}
	pair, err := lowerbound.NewPair(base, gammaAd)
	if err != nil {
		return nil, err
	}
	model := pair.Model()
	floor := pair.ExpectedFloor()

	gamma := agent.MaxGamma
	factories := []agent.Factory{
		agent.AntFactory(2, agent.DefaultParams(gamma)),
		agent.PreciseAdversarialFactory(2, agent.DefaultPreciseParams(gamma, 0.5)),
		agent.TrivialFactory(2),
	}

	tbl := Table{
		Title: fmt.Sprintf("T35: Yao pair D=(%d,%d) D'=(%d,%d) θ=(%d,%d), floor=%.4g",
			pair.D[0], pair.D[1], pair.DPrime[0], pair.DPrime[1],
			pair.Theta[0], pair.Theta[1], floor),
		Columns: []string{"algorithm", "regret vs D", "regret vs D'",
			"avg (Yao)", "floor γ*Σ(D+D')/2-ish", "≥ floor"},
	}
	seed := p.Seed + 300
	for _, fac := range factories {
		seed += 2
		recD, _, err := runOne(runSpec{
			n: n, schedule: demand.Static{V: pair.D}, model: model,
			factory: fac, seed: seed, rounds: rounds, burn: burn, gamma: gamma,
		})
		if err != nil {
			return nil, err
		}
		recP, _, err := runOne(runSpec{
			n: n, schedule: demand.Static{V: pair.DPrime}, model: model,
			factory: fac, seed: seed + 1, rounds: rounds, burn: burn, gamma: gamma,
		})
		if err != nil {
			return nil, err
		}
		avg := (recD.AvgRegret() + recP.AvgRegret()) / 2
		tbl.Rows = append(tbl.Rows, []string{
			fac.Name, f(recD.AvgRegret()), f(recP.AvgRegret()),
			f(avg), f(floor), yesno(avg >= floor*0.95),
		})
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"The feedback function is identical under both demand vectors, so no",
			"algorithm — with any memory or communication — can do better than",
			"splitting the 2τ gap; the floor holds for all three algorithms.",
		},
	}, nil
}
