package expt

import (
	"fmt"
	"math"
	"time"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/meanfield"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "X1",
		Title: "Engine ablation: agent-based vs mean-field, parallel shard scaling",
		Paper: "implementation (DESIGN.md §6)",
		Run:   runX1,
	})
}

// runX1 cross-validates the two simulation engines (same stochastic
// process, different samplers) and measures the throughput of each,
// including the sharded agent engine at several worker counts.
func runX1(p Params) (*Result, error) {
	n, d, rounds, burn := 20000, 3000, 6000, uint64(3000)
	if p.Quick {
		n, d, rounds, burn = 5000, 800, 3000, 1500
	}
	dem := demand.Vector{d, d, d}
	gamma := agent.MaxGamma
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(gamma/2, n, d)}
	params := agent.DefaultParams(gamma)

	tbl := Table{
		Title: fmt.Sprintf("X1: engines on n=%d, k=3, %d rounds", n, rounds),
		Columns: []string{"engine", "avg regret", "closeness-norm", "wall time",
			"rounds/s", "speedup vs agent(1)"},
	}

	type leg struct {
		name string
		run  func(seed uint64) (float64, time.Duration)
	}
	agentLeg := func(shards int) leg {
		return leg{
			name: fmt.Sprintf("agent (shards=%d)", shards),
			run: func(seed uint64) (float64, time.Duration) {
				e, err := colony.New(colony.Config{
					N: n, Schedule: demand.Static{V: dem}, Model: model,
					Factory: agent.AntFactory(3, params), Seed: seed, Shards: shards,
				})
				if err != nil {
					panic(err)
				}
				rec := metrics.NewRecorder(3, gamma, params.Cs, burn)
				start := time.Now()
				e.Run(rounds, rec.Observer())
				return rec.AvgRegret(), time.Since(start)
			},
		}
	}
	legs := []leg{
		agentLeg(1), agentLeg(2), agentLeg(4),
		{
			name: "mean-field",
			run: func(seed uint64) (float64, time.Duration) {
				e, err := meanfield.New(meanfield.Config{
					N: n, Schedule: demand.Static{V: dem}, Model: model,
					Params: params, Seed: seed,
				})
				if err != nil {
					panic(err)
				}
				rec := metrics.NewRecorder(3, gamma, params.Cs, burn)
				start := time.Now()
				e.Run(rounds, meanfield.Observer(rec.Observer()))
				return rec.AvgRegret(), time.Since(start)
			},
		},
	}

	norm := gamma * float64(dem.Sum())
	var baseTime time.Duration
	var regrets []float64
	for i, l := range legs {
		avg, dur := l.run(p.Seed + 1000 + uint64(i))
		if i == 0 {
			baseTime = dur
		}
		regrets = append(regrets, avg)
		tbl.Rows = append(tbl.Rows, []string{
			l.name, f(avg), f(avg / norm),
			dur.Round(time.Millisecond).String(),
			f(float64(rounds) / dur.Seconds()),
			f(baseTime.Seconds() / dur.Seconds()),
		})
	}

	// Agreement check between the two simulators.
	agree := math.Abs(regrets[0]-regrets[len(regrets)-1]) <=
		0.35*math.Max(regrets[0], regrets[len(regrets)-1])
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("agent vs mean-field average regret agreement: %s", yesno(agree)),
			"The mean-field engine replaces O(n·k) per-ant coin flips with O(2^k)",
			"binomial/multinomial draws per round — the speedup column shows the",
			"resulting throughput gap; shard rows show the parallel agent engine.",
		},
	}, nil
}
