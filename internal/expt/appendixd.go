package expt

import (
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
	"taskalloc/internal/plot"
	"taskalloc/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "D1",
		Title: "Trivial algorithm, sequential scheduler: Θ(γ*Σd) regret",
		Paper: "Appendix D.1",
		Run:   runD1,
	})
	register(Experiment{
		ID:    "D2",
		Title: "Trivial algorithm, synchronous scheduler: Θ(n) oscillation",
		Paper: "Appendix D.2",
		Run:   runD2,
	})
}

// runD1 runs the trivial algorithm under the sequential scheduler and
// checks that the average regret settles at a constant multiple of
// γ*·Σd — reasonable performance, in sharp contrast to D2.
func runD1(p Params) (*Result, error) {
	n, d, rounds, burn := 1000, 250, 200000, uint64(80000)
	if p.Quick {
		n, d, rounds, burn = 500, 120, 80000, 30000
	}
	dem := demand.Vector{d}
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(0.04, n, d)}
	gammaStar := model.CriticalValue(n, d)

	e, err := colony.NewSequential(colony.Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.TrivialFactory(1),
		Seed:     p.Seed + 500,
	})
	if err != nil {
		return nil, err
	}
	rec := metrics.NewRecorder(1, gammaStar, agent.DefaultCs, burn)
	e.Run(rounds, rec.Observer())

	avg := rec.AvgRegret()
	floor := gammaStar * float64(dem.Sum())
	tbl := Table{
		Title:   fmt.Sprintf("D1: trivial algorithm, sequential model, n=%d, d=%d", n, d),
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"γ*", f(gammaStar)},
			{"avg regret (post burn-in)", f(avg)},
			{"Θ(γ*Σd) reference", f(floor)},
			{"avg / (γ*Σd)", f(avg / floor)},
			{"avg / n (should be ≪ 1)", f(avg / float64(n))},
			{"switches per round", f(float64(e.Switches()) / float64(rounds))},
		},
	}
	return &Result{
		Tables: []Table{tbl},
		Notes: []string{
			"Appendix D.1: with one ant acting per round, a slight overload is",
			"visible to every subsequent ant, so the system self-regulates at",
			"Θ(γ*Σd) — asymptotically matching the optimal synchronous regret.",
		},
	}, nil
}

// runD2 runs the same algorithm under the synchronous scheduler, where
// every idle ant reacts to the same stale Lack signal at once: the
// colony oscillates between empty and flooded with per-round regret Θ(n).
func runD2(p Params) (*Result, error) {
	n, rounds := 2000, 3000
	if p.Quick {
		n, rounds = 1000, 1500
	}
	d := n / 4
	dem := demand.Vector{d}
	model := noise.SigmoidModel{Lambda: noise.LambdaForCritical(0.04, n, d)}

	tr := trace.New(1, 1, 0)
	rec := metrics.NewRecorder(1, 0.04, agent.DefaultCs, uint64(rounds/10))
	e, err := colony.New(colony.Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.TrivialFactory(1),
		Seed:     p.Seed + 600,
		Shards:   1,
	})
	if err != nil {
		return nil, err
	}
	e.Run(rounds, metrics.Multi(rec.Observer(), tr.Observer()))

	fig := plot.Chart{
		Title: fmt.Sprintf("D2: trivial algorithm, synchronous model (n=%d, d=%d) — thrash", n, d),
		Width: 72, Height: 14,
		HLines: []plot.HLine{{Y: float64(d), Label: "demand d"}},
		XLabel: fmt.Sprintf("rounds 1..%d (window of first 200 shown left-compressed)", rounds),
	}.Render(plot.Series{Name: "W(t)", Y: plot.Ints(tr.LoadSeries(0))})

	tbl := Table{
		Title:   "D2: synchronous trivial algorithm",
		Columns: []string{"quantity", "value", "expectation"},
		Rows: [][]string{
			{"avg regret", f(rec.AvgRegret()), "Θ(n)"},
			{"avg regret / n", f(rec.AvgRegret() / float64(n)), "constant fraction"},
			{"deficit zero crossings", fmt.Sprintf("%d", rec.ZeroCrossings()[0]), "Θ(rounds)"},
			{"peak regret", fmt.Sprintf("%d", rec.PeakRegret()), fmt.Sprintf("≈ max(d, n−d) = %d", n-d)},
		},
	}
	return &Result{
		Tables:  []Table{tbl},
		Figures: []string{fig},
		Notes: []string{
			"Appendix D.2: every idle ant joins on the same Lack signal and every",
			"worker flees on the same Overload signal, so the load flips between",
			"≈0 and ≈n−… each round for e^Ω(n) rounds. This is the failure mode",
			"Algorithm Ant's two-sample phases are designed to break.",
		},
	}, nil
}
