package expt

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A22", "AB1", "C1", "CV1", "D1", "D2", "F1", "F2", "R1",
		"S1", "S2", "S3", "S4", "S5", "T31", "T32", "T33", "T35", "T36", "V1", "W1", "X1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s (sorted)", i, all[i].ID, id)
		}
		e, ok := ByID(id)
		if !ok || e.ID != id {
			t.Fatalf("ByID(%s) failed", id)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "long-header") {
		t.Fatal("missing header")
	}
	// Alignment: the second column must start at the same offset in all rows.
	idx := strings.Index(lines[1], "long-header")
	if strings.Index(lines[3], "1") != idx {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestHelpers(t *testing.T) {
	if f(1.23456789) != "1.235" {
		t.Fatalf("f() = %q", f(1.23456789))
	}
	if yesno(true) != "yes" || yesno(false) != "no" {
		t.Fatal("yesno broken")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
	}()
	register(Experiment{ID: "F1"})
}

// TestRunAllQuick executes every registered experiment in quick mode.
// This is the harness's own integration test: every paper artifact must
// regenerate without error and produce at least one table or figure.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Params{Quick: true, Seed: 42})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("%s table %q has a ragged row (%d cells, %d cols)",
							e.ID, tbl.Title, len(row), len(tbl.Columns))
					}
				}
				if tbl.Render() == "" {
					t.Fatalf("%s table render empty", e.ID)
				}
			}
		})
	}
}

// TestQuickModeShrinks ensures quick mode is actually cheaper than full
// mode for a representative experiment (table parameters differ).
func TestQuickModeShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	quick, err := runF1(Params{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := runF1(Params{Quick: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// F1 reports γ*: both should verify their own boundary check.
	for _, r := range [][]Table{quick.Tables, full.Tables} {
		if got := r[0].Rows[0][3]; got != "yes" {
			t.Fatalf("γ* check failed: %v", r[0].Rows[0])
		}
	}
}

// TestT31ClosenessTracksGamma spot-checks the headline claim on the quick
// run: measured closeness stays within 5·(γ/γ*) + slack for every row.
func TestT31ClosenessTracksGamma(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	res, err := runT31(Params{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		mult, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad multiplier %q", row[2])
		}
		closeness, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("bad closeness %q", row[6])
		}
		if closeness > 5*mult+2 {
			t.Errorf("row %v: closeness %v above 5·(γ/γ*)+2 = %v", row, closeness, 5*mult+2)
		}
	}
}
