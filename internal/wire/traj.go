package wire

import (
	"bytes"
	"fmt"

	"taskalloc"
)

// SimView is the slice of a running simulation the trajectory recorder
// reads beyond the per-round observer arguments.
type SimView interface {
	Active() int
	Switches() uint64
}

// TrajectoryRecorder serializes a simulation's per-round trajectory in
// the golden-corpus CSV format: a header for k tasks, then one row per
// round with the loads, the demands in force, the active colony size,
// and the cumulative switch count. cmd/goldengen, the golden regression
// test, and the simulation service all emit through this one writer, so
// a trajectory streamed over HTTP is byte-comparable against
// testdata/golden.
type TrajectoryRecorder struct {
	buf bytes.Buffer
}

// NewTrajectoryRecorder starts a recording for k tasks (writes the
// header).
func NewTrajectoryRecorder(k int) *TrajectoryRecorder {
	r := &TrajectoryRecorder{}
	r.buf.WriteString("round")
	for j := 0; j < k; j++ {
		fmt.Fprintf(&r.buf, ",load_%d", j)
	}
	for j := 0; j < k; j++ {
		fmt.Fprintf(&r.buf, ",demand_%d", j)
	}
	r.buf.WriteString(",active,switches\n")
	return r
}

// Observer returns the per-round callback appending one row per round,
// reading the active size and switch count from sim.
func (r *TrajectoryRecorder) Observer(sim SimView) taskalloc.Observer {
	return func(round uint64, loads []int, demands []int) {
		fmt.Fprintf(&r.buf, "%d", round)
		for _, w := range loads {
			fmt.Fprintf(&r.buf, ",%d", w)
		}
		for _, d := range demands {
			fmt.Fprintf(&r.buf, ",%d", d)
		}
		fmt.Fprintf(&r.buf, ",%d,%d\n", sim.Active(), sim.Switches())
	}
}

// Bytes returns the recording so far (header + rows).
func (r *TrajectoryRecorder) Bytes() []byte { return r.buf.Bytes() }
