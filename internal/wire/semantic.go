package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"taskalloc/internal/scenario"
)

// This file is the behavioral-identity layer of the hash stack. JobHash
// and SweepHash (wire.go) digest the *syntactic* canonical form: the
// defaults-applied struct as submitted, family by family. SemanticHash,
// SemanticSweepHash, and SemanticBisectHash digest the *behavioral
// normal form* instead: the demand schedule is decoded through its
// validating constructor, reduced by scenario.Canon, and re-encoded, and
// timeline events that provably change nothing (a resize to the size
// already in force, a noise switch to the regime already in force) are
// dropped. Two configs that induce the identical trajectory
// distribution — a frozen snapshot vs. its generative family with the
// same realized demand, a Markov chain that degenerates to a step, a
// one-point trace vs. a static — therefore digest identically, and
// every cache keyed on the semantic hash serves them from one entry.
//
// Soundness contract: a reduction only fires when it is exactly
// behavior-preserving (engines consume schedules solely through At, and
// scenario.Canon preserves At pointwise; dropped events are pure no-ops
// at the engine layer and leave the Report untouched). Anything that
// fails to decode or validate keeps its syntactic form — an invalid
// config must keep its own identity rather than alias a valid one's
// cache entry.

// semanticDomain separates the semantic digests from the syntactic ones:
// a normal form that happens to re-encode to a job's exact canonical
// bytes must still never collide hashes across the two layers.
const semanticDomain = "semantic/v1\n"

// SemanticHash digests one job's behavioral normal form: hex SHA-256 of
// the defaults-applied struct with the demand schedule canonicalized by
// scenario.Canon and no-op timeline events dropped. Like JobHash it is
// sensitive to Meta, Rounds, and Trajectory (they change the rendered
// response); unlike JobHash it is insensitive to which of several
// behaviorally-equivalent schedule encodings was submitted.
func SemanticHash(j Job) (string, error) {
	return semanticHash(j, semCache{})
}

func semanticHash(j Job, cache semCache) (string, error) {
	b, err := json.Marshal(semanticJob(j, cache))
	if err != nil {
		return "", fmt.Errorf("wire: semantic hash job: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(semanticDomain))
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// SemanticSweepHash digests a whole grid's behavioral normal form: the
// version tag and every job's normalized bytes, in order. The service's
// sweep result cache keys on it, so syntactically distinct but
// behaviorally identical submissions coalesce onto one entry.
// Normalization of a schedule encoding shared by many cells (the
// cmd/sweep pattern: one frozen snapshot for the whole grid) runs once,
// not per job.
func SemanticSweepHash(s Sweep) (string, error) {
	cache := semCache{}
	h := sha256.New()
	fmt.Fprintf(h, "%s%s\n", semanticDomain, orDefault(s.Version, V1))
	for i, j := range s.Jobs {
		b, err := json.Marshal(semanticJob(j, cache))
		if err != nil {
			return "", fmt.Errorf("wire: semantic hash jobs[%d]: %w", i, err)
		}
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// SemanticBisectHash digests a bisect request over the template job's
// behavioral normal form plus the search parameters. The server's
// in-flight bisect coalescing and the grid coordinator's backend
// affinity key on it, so equivalent re-bisections land where the job
// cache is already warm.
func SemanticBisectHash(b BisectRequest) (string, error) {
	b.Job.Trajectory = false // ignored by bisect; must not split the hash
	jb, err := json.Marshal(semanticJob(b.Job, semCache{}))
	if err != nil {
		return "", fmt.Errorf("wire: semantic hash bisect request: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%sbisect/%s\n%g %g %g %d\n", semanticDomain, orDefault(b.Version, V1),
		b.GammaLo, b.GammaHi, b.TargetBand, b.MaxEvals)
	h.Write(jb)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// semCache memoizes normalized schedule encodings by their syntactic
// JSON, so a sweep whose cells share one schedule pays the decode →
// Canon → re-encode pass (O(horizon) for frozen snapshots) once. A nil
// value records an irreducible (invalid) encoding.
type semCache map[string]*Schedule

// normalize returns the canonical re-encoding of sc, or ok=false when
// sc does not decode/validate and must keep its syntactic identity.
func (m semCache) normalize(sc *Schedule) (*Schedule, bool) {
	key := FrozenKey(sc)
	if got, hit := m[key]; hit {
		return got, got != nil
	}
	var out *Schedule
	if dec, err := sc.ToSchedule(); err == nil {
		if enc, err := FromSchedule(scenario.Canon(dec)); err == nil {
			out = &enc
		}
	}
	m[key] = out
	return out, out != nil
}

// semanticJob maps a job to its behavioral normal form. Every reduction
// is gated on validity: on any decode or validation failure the
// affected part keeps its syntactic canonical form.
func semanticJob(j Job, cache semCache) Job {
	j = canonicalJob(j)
	c := j.Config
	if sc, ok := scheduleForm(c); ok {
		if norm, ok := cache.normalize(sc); ok {
			c.Schedule = norm
			c.Demands = nil
			c.DemandChanges = nil
		}
	}
	if out, ok := canonSizeChanges(c.Ants, c.SizeChanges); ok {
		c.SizeChanges = out
	}
	if out, ok := canonNoiseChanges(*c.Noise, c.NoiseChanges); ok {
		c.NoiseChanges = out
	}
	j.Config = c
	return j
}

// scheduleForm unifies the three demand spellings taskalloc.Config
// accepts into one wire Schedule: an explicit Schedule, Demands (a
// static), or Demands + DemandChanges (exactly demand.NewStep, which is
// how taskalloc.New builds them). Returns ok=false for combinations
// taskalloc.New rejects (both spellings at once, changes without a
// base, no demand at all) — those keep their syntactic identity.
func scheduleForm(c Config) (*Schedule, bool) {
	switch {
	case c.Schedule != nil:
		if len(c.Demands) > 0 || len(c.DemandChanges) > 0 {
			return nil, false // mutually exclusive; taskalloc.New rejects
		}
		return c.Schedule, true
	case len(c.Demands) > 0:
		sc := &Schedule{Kind: "static", Base: c.Demands}
		if len(c.DemandChanges) > 0 {
			sc.Kind = "step"
			for _, ch := range c.DemandChanges {
				sc.When = append(sc.When, ch.At)
				sc.Vectors = append(sc.Vectors, ch.Demands)
			}
		}
		return sc, true
	default:
		return nil, false
	}
}

// canonSizeChanges drops resize events whose target equals the colony
// size already in force: Engine.Resize (dense, sequential, and
// mean-field alike) with m == active is a pure no-op, so the
// trajectory, the Report, and the noise placement are untouched.
// Returns ok=false — leave the list alone — unless the events satisfy
// the Timeline validation rules (At >= 1, strictly increasing, To in
// [1, ants]): an invalid config must keep its own identity.
func canonSizeChanges(ants int, cs []SizeChange) ([]SizeChange, bool) {
	for i, c := range cs {
		if c.At < 1 || c.To < 1 || c.To > ants {
			return nil, false
		}
		if i > 0 && c.At <= cs[i-1].At {
			return nil, false
		}
	}
	inForce := ants
	out := cs
	dropped := false
	for i, c := range cs {
		if c.To == inForce {
			if !dropped {
				out = append([]SizeChange(nil), cs[:i]...)
				dropped = true
			}
			continue
		}
		if dropped {
			out = append(out, c)
		}
		inForce = c.To
	}
	if dropped && len(out) == 0 {
		out = nil // an all-no-op list must digest like an absent one
	}
	return out, true
}

// canonNoiseChanges drops noise switches to the regime already in force
// (entries are already canonicalized by canonicalJob, so equality is
// exact): SwitchedModel consults the in-force model per round, and the
// Report carries no model identity, so a switch to the same parameters
// changes neither trajectory nor rendered bytes. Returns ok=false
// unless every entry satisfies Timeline validation (At >= 1, strictly
// increasing) and every noise kind decodes — invalid configs keep
// their own identity.
func canonNoiseChanges(base Noise, ncs []NoiseChange) ([]NoiseChange, bool) {
	if _, err := base.toNoise(); err != nil {
		return nil, false
	}
	for i, c := range ncs {
		if c.At < 1 {
			return nil, false
		}
		if i > 0 && c.At <= ncs[i-1].At {
			return nil, false
		}
		if _, err := c.Noise.toNoise(); err != nil {
			return nil, false
		}
	}
	inForce := base
	out := ncs
	dropped := false
	for i, c := range ncs {
		if c.Noise == inForce {
			if !dropped {
				out = append([]NoiseChange(nil), ncs[:i]...)
				dropped = true
			}
			continue
		}
		if dropped {
			out = append(out, c)
		}
		inForce = c.Noise
	}
	if dropped && len(out) == 0 {
		out = nil
	}
	return out, true
}
