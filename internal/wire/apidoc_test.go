package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAPIDocExamples is the API.md drift gate: every fenced ```json
// block in the HTTP reference carries a tag naming its wire type, and
// this test decodes each body through the codec (strictly — unknown
// fields fail). An untagged ```json block fails too, so an example
// cannot be added without being checked.
func TestAPIDocExamples(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md missing: %v", err)
	}
	blocks := fencedBlocks(doc)
	if len(blocks) == 0 {
		t.Fatal("API.md has no fenced json examples")
	}

	decoders := map[string]func([]byte) error{
		"sweep": func(b []byte) error {
			_, err := DecodeSweep(bytes.NewReader(b))
			return err
		},
		"bisect-request": func(b []byte) error {
			_, err := DecodeBisectRequest(bytes.NewReader(b))
			return err
		},
		"bisect-response": strict[BisectResponse],
		"stream-header":   strict[StreamHeader],
		"result-line":     strict[Result],
		"sweep-status":    strict[SweepStatus],
		"error-body":      strict[ErrorBody],
		// untyped: ad-hoc JSON (healthz/version) — validity only.
		"untyped": func(b []byte) error {
			if !json.Valid(b) {
				return fmt.Errorf("invalid JSON")
			}
			return nil
		},
	}

	tagged := 0
	for _, bl := range blocks {
		if bl.lang != "json" {
			continue // shell snippets etc. are not wire documents
		}
		tagged++
		dec, ok := decoders[bl.tag]
		if !ok {
			t.Errorf("API.md line %d: ```json block tagged %q — every json example "+
				"needs a known tag (%v) so the gate can decode it", bl.line, bl.tag, keys(decoders))
			continue
		}
		if err := dec(bl.body); err != nil {
			t.Errorf("API.md line %d: %s example does not decode: %v", bl.line, bl.tag, err)
		}
	}
	if tagged < 8 {
		t.Errorf("only %d json examples found; the reference shrank?", tagged)
	}
}

// strict decodes into T with unknown fields disallowed.
func strict[T any](b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var v T
	return dec.Decode(&v)
}

func keys[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// block is one fenced code block of a markdown document.
type block struct {
	lang string // first word of the info string
	tag  string // second word of the info string
	line int    // 1-based line of the opening fence
	body []byte
}

// fencedBlocks extracts every ``` fenced block.
func fencedBlocks(doc []byte) []block {
	var out []block
	var cur *block
	var body []string
	for i, line := range strings.Split(string(doc), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "```") {
			if cur != nil {
				body = append(body, line)
			}
			continue
		}
		if cur == nil {
			info := strings.Fields(strings.TrimPrefix(trimmed, "```"))
			cur = &block{line: i + 1}
			if len(info) > 0 {
				cur.lang = info[0]
			}
			if len(info) > 1 {
				cur.tag = info[1]
			}
			body = body[:0]
			continue
		}
		cur.body = []byte(strings.Join(body, "\n"))
		out = append(out, *cur)
		cur = nil
	}
	return out
}
