// Package wire is the versioned wire format of the simulation service:
// a canonical JSON encoding of the full scenario configuration space —
// algorithm, colony size, γ, seeds, every demand schedule family
// (static, step, sinusoid, burst, random walk, Markov-modulated, trace
// replay, frozen snapshots), and the Timeline events (colony resizes,
// noise-regime switches) — plus the job-grid envelope the service and
// cmd/sweep exchange.
//
// The codec is bidirectional and lossless over the supported space:
// FromConfig/ToConfig map between taskalloc.Config and the wire form,
// and FromJobs/ToJobs do the same for whole sweeprun grids, so a grid
// serialized by `sweep -dump-jobs` replays byte-identically through
// `sweep -jobs` or over POST /v1/sweeps.
//
// Hashing: JobHash and SweepHash digest the *canonical* form — the
// decoded struct re-encoded with configuration defaults applied — so
// the hash is insensitive to JSON key order and whitespace but
// sensitive to every semantic field (seed, γ, schedule parameters,
// events, metadata, rounds). The service's result cache keys on it.
// Shards = 0 (resolve to GOMAXPROCS at run time) is deliberately NOT
// canonicalized away: submitters who need cross-host reproducibility
// must pin Shards explicitly.
//
// Runtime-only fields (Config.Pool, sweeprun.Job.Observe) are outside
// the wire format; executors re-inject them after decoding.
package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"

	"taskalloc"
	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
	"taskalloc/internal/sweeprun"
)

// V1 is the current wire-format version tag. Decoders reject anything
// else; additive evolution (new optional fields) stays within v1, and
// an incompatible change must mint v2 and keep decoding v1.
const V1 = "taskalloc/v1"

// MaxFrozenHorizon bounds the horizon a frozen-schedule decode will
// materialize (the snapshot costs O(horizon) pointers), so a hostile or
// corrupt document cannot make the decoder allocate without bound.
const MaxFrozenHorizon = 1 << 22

// Sweep is the job-grid envelope: what POST /v1/sweeps accepts and
// `sweep -dump-jobs` emits.
type Sweep struct {
	Version string `json:"version"`
	Jobs    []Job  `json:"jobs"`
}

// Job is one grid cell: a fully-resolved simulation plus the opaque
// caller metadata echoed on its result row.
type Job struct {
	// Meta is echoed untouched (cmd/sweep uses param/value/scenario/seed).
	Meta []string `json:"meta,omitempty"`
	// Rounds is the simulation horizon.
	Rounds int `json:"rounds"`
	// Trajectory asks the executor to record and return the full
	// per-round trajectory CSV (the golden-corpus format) on the result.
	Trajectory bool `json:"trajectory,omitempty"`
	// Config is the wire form of the simulation configuration.
	Config Config `json:"config"`
}

// Config mirrors taskalloc.Config field by field, with interfaces
// replaced by tagged encodings (Schedule) and enums by strings.
type Config struct {
	Ants             int            `json:"ants"`
	Demands          []int          `json:"demands,omitempty"`
	Algorithm        string         `json:"algorithm,omitempty"` // "" = "ant"
	Gamma            float64        `json:"gamma,omitempty"`     // 0 = 1/16
	Epsilon          float64        `json:"epsilon,omitempty"`
	Noise            *Noise         `json:"noise,omitempty"` // nil = sigmoid at γ/2
	Init             string         `json:"init,omitempty"`  // "" = "idle"
	DemandChanges    []DemandChange `json:"demand_changes,omitempty"`
	Schedule         *Schedule      `json:"schedule,omitempty"` // Config.Demand
	SizeChanges      []SizeChange   `json:"size_changes,omitempty"`
	NoiseChanges     []NoiseChange  `json:"noise_changes,omitempty"`
	Sequential       bool           `json:"sequential,omitempty"`
	MeanField        bool           `json:"mean_field,omitempty"`
	Seed             uint64         `json:"seed,omitempty"` // 0 = 1
	Shards           int            `json:"shards,omitempty"`
	BurnIn           uint64         `json:"burn_in,omitempty"`
	CheckAssumptions bool           `json:"check_assumptions,omitempty"`
}

// Noise is the wire form of taskalloc.Noise.
type Noise struct {
	Kind               string  `json:"kind"` // sigmoid | adversarial | perfect
	Lambda             float64 `json:"lambda,omitempty"`
	GammaStar          float64 `json:"gamma_star,omitempty"`
	GammaAd            float64 `json:"gamma_ad,omitempty"`
	GreyStrategy       string  `json:"grey_strategy,omitempty"`
	CorrelatedFlipProb float64 `json:"correlated_flip_prob,omitempty"`
}

// DemandChange is the wire form of taskalloc.DemandChange.
type DemandChange struct {
	At      uint64 `json:"at"`
	Demands []int  `json:"demands"`
}

// SizeChange is the wire form of taskalloc.SizeChange (a Timeline
// Resize event: ants dying or hatching at a round).
type SizeChange struct {
	At uint64 `json:"at"`
	To int    `json:"to"`
}

// NoiseChange is the wire form of taskalloc.NoiseChange (a Timeline
// NoiseSwitch event: the feedback regime in force from a round).
type NoiseChange struct {
	At    uint64 `json:"at"`
	Noise Noise  `json:"noise"`
}

// Schedule is the tagged union over the demand schedule families. Kind
// selects the family; the other fields are per-family parameters (the
// unused ones stay empty).
type Schedule struct {
	Kind string `json:"kind"`
	// Base is the anchor vector of static, step (initial), sinusoid,
	// burst, and randomwalk.
	Base []int `json:"base,omitempty"`
	// When/Vectors are the change points of step, trace, and frozen.
	When    []uint64 `json:"when,omitempty"`
	Vectors [][]int  `json:"vectors,omitempty"`
	// Horizon is the last pre-sampled round of a frozen snapshot.
	Horizon uint64 `json:"horizon,omitempty"`
	// Sinusoid.
	Amp    []float64 `json:"amp,omitempty"`
	Period float64   `json:"period,omitempty"`
	Phase  []float64 `json:"phase,omitempty"`
	// Burst.
	Peak  []int  `json:"peak,omitempty"`
	Start uint64 `json:"start,omitempty"`
	Every uint64 `json:"every,omitempty"`
	Len   uint64 `json:"len,omitempty"`
	// RandomWalk (Every is shared with Burst).
	Step int   `json:"step,omitempty"`
	Min  []int `json:"min,omitempty"`
	Max  []int `json:"max,omitempty"`
	// Seed drives the generative families (randomwalk, markov).
	Seed uint64 `json:"seed,omitempty"`
	// MarkovModulated.
	Regimes     [][]int     `json:"regimes,omitempty"`
	P           [][]float64 `json:"p,omitempty"`
	Dwell       uint64      `json:"dwell,omitempty"`
	StartRegime int         `json:"start_regime,omitempty"`
	// Scenario algebra: Parts are the operands of compose (spliced at
	// When, which is shared with step/trace) and superpose; Inner is the
	// operand of modulate and stablenoise.
	Parts []Schedule `json:"parts,omitempty"`
	Inner *Schedule  `json:"inner,omitempty"`
	// Scale is modulate's per-task factor vector.
	Scale []float64 `json:"scale,omitempty"`
	// Alpha and Sigma are stablenoise's stability exponent and noise
	// scale (Every and Seed are shared with the other generative
	// families).
	Alpha float64 `json:"alpha,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// MaxScheduleDepth bounds the nesting of algebra operators a decoder
// will materialize, so a hostile document cannot recurse without bound.
const MaxScheduleDepth = 16

// EncodeSweep writes s as JSON. An empty Version is stamped V1.
func EncodeSweep(w io.Writer, s Sweep) error {
	if s.Version == "" {
		s.Version = V1
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MarshalSweep renders s as JSON bytes (EncodeSweep into memory).
func MarshalSweep(s Sweep) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeSweep(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSweep reads one JSON sweep document. Unknown fields and version
// mismatches are errors: the format is versioned, not duck-typed.
func DecodeSweep(r io.Reader) (Sweep, error) {
	var s Sweep
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Sweep{}, fmt.Errorf("wire: decode sweep: %w", err)
	}
	if s.Version != V1 {
		return Sweep{}, fmt.Errorf("wire: unsupported version %q (want %q)", s.Version, V1)
	}
	return s, nil
}

// --- Config <-> taskalloc.Config ---

var algorithmNames = map[taskalloc.Algorithm]string{
	taskalloc.Ant:                "ant",
	taskalloc.PreciseSigmoid:     "precise-sigmoid",
	taskalloc.PreciseAdversarial: "precise-adversarial",
	taskalloc.Trivial:            "trivial",
}

var initNames = map[taskalloc.InitKind]string{
	taskalloc.InitIdle:    "idle",
	taskalloc.InitUniform: "uniform",
	taskalloc.InitFlood:   "flood",
	taskalloc.InitExact:   "exact",
}

var noiseKindNames = map[taskalloc.NoiseKind]string{
	taskalloc.NoiseSigmoid:     "sigmoid",
	taskalloc.NoiseAdversarial: "adversarial",
	taskalloc.NoisePerfect:     "perfect",
}

func invert[K comparable, V comparable](m map[K]V) map[V]K {
	out := make(map[V]K, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

var (
	algorithmKinds = invert(algorithmNames)
	initKinds      = invert(initNames)
	noiseKinds     = invert(noiseKindNames)
)

// FromConfig encodes a taskalloc.Config. Config.Pool (runtime-only) is
// dropped; every other field round-trips.
func FromConfig(cfg taskalloc.Config) (Config, error) {
	alg, ok := algorithmNames[cfg.Algorithm]
	if !ok {
		return Config{}, fmt.Errorf("wire: unknown algorithm %d", int(cfg.Algorithm))
	}
	ini, ok := initNames[cfg.Init]
	if !ok {
		return Config{}, fmt.Errorf("wire: unknown init kind %d", int(cfg.Init))
	}
	out := Config{
		Ants:             cfg.Ants,
		Demands:          append([]int(nil), cfg.Demands...),
		Gamma:            cfg.Gamma,
		Epsilon:          cfg.Epsilon,
		Sequential:       cfg.Sequential,
		MeanField:        cfg.MeanField,
		Seed:             cfg.Seed,
		Shards:           cfg.Shards,
		BurnIn:           cfg.BurnIn,
		CheckAssumptions: cfg.CheckAssumptions,
	}
	if alg != "ant" {
		out.Algorithm = alg
	}
	if ini != "idle" {
		out.Init = ini
	}
	if cfg.Noise != (taskalloc.Noise{}) {
		nz, err := fromNoise(cfg.Noise)
		if err != nil {
			return Config{}, err
		}
		out.Noise = &nz
	}
	for _, c := range cfg.DemandChanges {
		out.DemandChanges = append(out.DemandChanges,
			DemandChange{At: c.At, Demands: append([]int(nil), c.Demands...)})
	}
	for _, c := range cfg.SizeChanges {
		out.SizeChanges = append(out.SizeChanges, SizeChange{At: c.At, To: c.To})
	}
	for _, c := range cfg.NoiseChanges {
		nz, err := fromNoise(c.Noise)
		if err != nil {
			return Config{}, fmt.Errorf("wire: noise_changes[%d]: %w", len(out.NoiseChanges), err)
		}
		out.NoiseChanges = append(out.NoiseChanges, NoiseChange{At: c.At, Noise: nz})
	}
	if cfg.Demand != nil {
		sched, err := FromSchedule(cfg.Demand)
		if err != nil {
			return Config{}, err
		}
		out.Schedule = &sched
	}
	return out, nil
}

// ToConfig decodes into a taskalloc.Config, rebuilding the demand
// schedule through its validating constructor.
func (c Config) ToConfig() (taskalloc.Config, error) {
	out := taskalloc.Config{
		Ants:             c.Ants,
		Demands:          append([]int(nil), c.Demands...),
		Gamma:            c.Gamma,
		Epsilon:          c.Epsilon,
		Sequential:       c.Sequential,
		MeanField:        c.MeanField,
		Seed:             c.Seed,
		Shards:           c.Shards,
		BurnIn:           c.BurnIn,
		CheckAssumptions: c.CheckAssumptions,
	}
	alg, ok := algorithmKinds[orDefault(c.Algorithm, "ant")]
	if !ok {
		return taskalloc.Config{}, fmt.Errorf("wire: unknown algorithm %q", c.Algorithm)
	}
	out.Algorithm = alg
	ini, ok := initKinds[orDefault(c.Init, "idle")]
	if !ok {
		return taskalloc.Config{}, fmt.Errorf("wire: unknown init kind %q", c.Init)
	}
	out.Init = ini
	if c.Noise != nil {
		nz, err := c.Noise.toNoise()
		if err != nil {
			return taskalloc.Config{}, err
		}
		out.Noise = nz
	}
	for _, ch := range c.DemandChanges {
		out.DemandChanges = append(out.DemandChanges,
			taskalloc.DemandChange{At: ch.At, Demands: append([]int(nil), ch.Demands...)})
	}
	for _, ch := range c.SizeChanges {
		out.SizeChanges = append(out.SizeChanges, taskalloc.SizeChange{At: ch.At, To: ch.To})
	}
	for i, ch := range c.NoiseChanges {
		nz, err := ch.Noise.toNoise()
		if err != nil {
			return taskalloc.Config{}, fmt.Errorf("wire: noise_changes[%d]: %w", i, err)
		}
		out.NoiseChanges = append(out.NoiseChanges, taskalloc.NoiseChange{At: ch.At, Noise: nz})
	}
	if c.Schedule != nil {
		sched, err := c.Schedule.ToSchedule()
		if err != nil {
			return taskalloc.Config{}, err
		}
		out.Demand = sched
	}
	return out, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func fromNoise(nz taskalloc.Noise) (Noise, error) {
	kind, ok := noiseKindNames[nz.Kind]
	if !ok {
		return Noise{}, fmt.Errorf("wire: unknown noise kind %d", int(nz.Kind))
	}
	return Noise{
		Kind:               kind,
		Lambda:             nz.Lambda,
		GammaStar:          nz.GammaStar,
		GammaAd:            nz.GammaAd,
		GreyStrategy:       nz.GreyStrategy,
		CorrelatedFlipProb: nz.CorrelatedFlipProb,
	}, nil
}

func (n Noise) toNoise() (taskalloc.Noise, error) {
	kind, ok := noiseKinds[orDefault(n.Kind, "sigmoid")]
	if !ok {
		return taskalloc.Noise{}, fmt.Errorf("wire: unknown noise kind %q", n.Kind)
	}
	return taskalloc.Noise{
		Kind:               kind,
		Lambda:             n.Lambda,
		GammaStar:          n.GammaStar,
		GammaAd:            n.GammaAd,
		GreyStrategy:       n.GreyStrategy,
		CorrelatedFlipProb: n.CorrelatedFlipProb,
	}, nil
}

// --- Schedule <-> demand.Schedule ---

// FromSchedule encodes any schedule the codec supports: demand.Static,
// *demand.Step, the five generative scenario families, and frozen
// snapshots.
func FromSchedule(s demand.Schedule) (Schedule, error) {
	switch v := s.(type) {
	case demand.Static:
		return Schedule{Kind: "static", Base: append([]int(nil), v.V...)}, nil
	case *demand.Static:
		return Schedule{Kind: "static", Base: append([]int(nil), v.V...)}, nil
	case *demand.Step:
		return Schedule{
			Kind:    "step",
			Base:    append([]int(nil), v.Initial...),
			When:    append([]uint64(nil), v.When...),
			Vectors: fromVectors(v.Changes),
		}, nil
	case *scenario.Sinusoid:
		return Schedule{
			Kind:   "sinusoid",
			Base:   append([]int(nil), v.Base...),
			Amp:    append([]float64(nil), v.Amp...),
			Period: v.Period,
			Phase:  append([]float64(nil), v.Phase...),
		}, nil
	case *scenario.Burst:
		return Schedule{
			Kind:  "burst",
			Base:  append([]int(nil), v.Base...),
			Peak:  append([]int(nil), v.Peak...),
			Start: v.Start,
			Every: v.Every,
			Len:   v.Len,
		}, nil
	case *scenario.RandomWalk:
		return Schedule{
			Kind:  "randomwalk",
			Base:  append([]int(nil), v.Base...),
			Step:  v.Step,
			Every: v.Every,
			Min:   append([]int(nil), v.Min...),
			Max:   append([]int(nil), v.Max...),
			Seed:  v.Seed,
		}, nil
	case *scenario.MarkovModulated:
		return Schedule{
			Kind:        "markov",
			Regimes:     fromVectors(v.Regimes),
			P:           clone2D(v.P),
			Dwell:       v.Dwell,
			StartRegime: v.Start,
			Seed:        v.Seed,
		}, nil
	case *scenario.Trace:
		when, vecs := v.Points()
		return Schedule{Kind: "trace", When: when, Vectors: fromVectors(vecs)}, nil
	case *scenario.Frozen:
		if v.Horizon() > MaxFrozenHorizon {
			// Refuse at encode time what every decoder will refuse, so
			// a dump/replay round trip fails fast on the dumping side.
			return Schedule{}, fmt.Errorf("wire: frozen horizon %d exceeds limit %d (freeze over a shorter horizon, or encode the generative family instead)",
				v.Horizon(), MaxFrozenHorizon)
		}
		when, vecs := v.Points()
		return Schedule{
			Kind:    "frozen",
			When:    when,
			Vectors: fromVectors(vecs),
			Horizon: v.Horizon(),
		}, nil
	case *scenario.Compose:
		out := Schedule{Kind: "compose", When: append([]uint64(nil), v.When...)}
		for i, p := range v.Parts {
			enc, err := FromSchedule(p)
			if err != nil {
				return Schedule{}, fmt.Errorf("wire: compose part %d: %w", i, err)
			}
			out.Parts = append(out.Parts, enc)
		}
		return out, nil
	case *scenario.Superpose:
		out := Schedule{Kind: "superpose"}
		for i, p := range v.Parts {
			enc, err := FromSchedule(p)
			if err != nil {
				return Schedule{}, fmt.Errorf("wire: superpose part %d: %w", i, err)
			}
			out.Parts = append(out.Parts, enc)
		}
		return out, nil
	case *scenario.Modulate:
		inner, err := FromSchedule(v.Inner)
		if err != nil {
			return Schedule{}, fmt.Errorf("wire: modulate inner: %w", err)
		}
		return Schedule{
			Kind:  "modulate",
			Inner: &inner,
			Scale: append([]float64(nil), v.Scale...),
		}, nil
	case *scenario.StableNoise:
		inner, err := FromSchedule(v.Inner)
		if err != nil {
			return Schedule{}, fmt.Errorf("wire: stablenoise inner: %w", err)
		}
		return Schedule{
			Kind:  "stablenoise",
			Inner: &inner,
			Alpha: v.Alpha,
			Sigma: v.Sigma,
			Every: v.Every,
			Seed:  v.Seed,
		}, nil
	default:
		return Schedule{}, fmt.Errorf("wire: unsupported schedule type %T", s)
	}
}

// ToSchedule decodes into a live demand.Schedule through the family's
// validating constructor. Algebra operators decode recursively, bounded
// by MaxScheduleDepth.
func (s Schedule) ToSchedule() (demand.Schedule, error) {
	return s.toSchedule(0)
}

func (s Schedule) toSchedule(depth int) (demand.Schedule, error) {
	if depth > MaxScheduleDepth {
		return nil, fmt.Errorf("wire: schedule nesting exceeds depth %d", MaxScheduleDepth)
	}
	switch s.Kind {
	case "static":
		v := demand.Vector(append([]int(nil), s.Base...))
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("wire: static schedule: %w", err)
		}
		return demand.Static{V: v}, nil
	case "step":
		return demand.NewStep(append([]int(nil), s.Base...),
			append([]uint64(nil), s.When...), toVectors(s.Vectors))
	case "sinusoid":
		return scenario.NewSinusoid(append([]int(nil), s.Base...),
			append([]float64(nil), s.Amp...), s.Period, append([]float64(nil), s.Phase...))
	case "burst":
		return scenario.NewBurst(append([]int(nil), s.Base...),
			append([]int(nil), s.Peak...), s.Start, s.Every, s.Len)
	case "randomwalk":
		return scenario.NewRandomWalk(append([]int(nil), s.Base...),
			s.Step, s.Every, append([]int(nil), s.Min...), append([]int(nil), s.Max...), s.Seed)
	case "markov":
		return scenario.NewMarkovModulated(toVectors(s.Regimes), clone2D(s.P),
			s.Dwell, s.StartRegime, s.Seed)
	case "trace":
		return scenario.NewTrace(append([]uint64(nil), s.When...), toVectors(s.Vectors))
	case "frozen":
		if s.Horizon > MaxFrozenHorizon {
			return nil, fmt.Errorf("wire: frozen horizon %d exceeds limit %d", s.Horizon, MaxFrozenHorizon)
		}
		tr, err := scenario.NewTrace(append([]uint64(nil), s.When...), toVectors(s.Vectors))
		if err != nil {
			return nil, err
		}
		if len(s.When) > 0 && s.When[len(s.When)-1] > s.Horizon {
			return nil, fmt.Errorf("wire: frozen change at %d beyond horizon %d",
				s.When[len(s.When)-1], s.Horizon)
		}
		// Re-sampling the piecewise-constant trace reproduces the
		// original snapshot exactly.
		return scenario.Freeze(tr, s.Horizon)
	case "compose":
		parts, err := s.toParts(depth)
		if err != nil {
			return nil, fmt.Errorf("wire: compose: %w", err)
		}
		return scenario.NewCompose(parts, append([]uint64(nil), s.When...))
	case "superpose":
		parts, err := s.toParts(depth)
		if err != nil {
			return nil, fmt.Errorf("wire: superpose: %w", err)
		}
		return scenario.NewSuperpose(parts)
	case "modulate":
		inner, err := s.toInner(depth)
		if err != nil {
			return nil, fmt.Errorf("wire: modulate: %w", err)
		}
		return scenario.NewModulate(inner, append([]float64(nil), s.Scale...))
	case "stablenoise":
		inner, err := s.toInner(depth)
		if err != nil {
			return nil, fmt.Errorf("wire: stablenoise: %w", err)
		}
		return scenario.NewStableNoise(inner, s.Alpha, s.Sigma, s.Every, s.Seed)
	case "":
		return nil, errors.New("wire: schedule missing kind")
	default:
		return nil, fmt.Errorf("wire: unknown schedule kind %q", s.Kind)
	}
}

func (s Schedule) toParts(depth int) ([]demand.Schedule, error) {
	if len(s.Parts) == 0 {
		return nil, errors.New("needs parts")
	}
	parts := make([]demand.Schedule, len(s.Parts))
	for i, p := range s.Parts {
		dec, err := p.toSchedule(depth + 1)
		if err != nil {
			return nil, fmt.Errorf("part %d: %w", i, err)
		}
		parts[i] = dec
	}
	return parts, nil
}

func (s Schedule) toInner(depth int) (demand.Schedule, error) {
	if s.Inner == nil {
		return nil, errors.New("needs inner")
	}
	return s.Inner.toSchedule(depth + 1)
}

func fromVectors(vs []demand.Vector) [][]int {
	out := make([][]int, len(vs))
	for i, v := range vs {
		out[i] = append([]int(nil), v...)
	}
	return out
}

func toVectors(vs [][]int) []demand.Vector {
	out := make([]demand.Vector, len(vs))
	for i, v := range vs {
		out[i] = demand.Vector(append([]int(nil), v...))
	}
	return out
}

func clone2D(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// --- Job <-> sweeprun.Job ---

// FromJob encodes one grid cell. The runtime-only Observe hook is
// dropped.
func FromJob(j sweeprun.Job) (Job, error) {
	cfg, err := FromConfig(j.Config)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Meta:   append([]string(nil), j.Meta...),
		Rounds: j.Rounds,
		Config: cfg,
	}, nil
}

// ToJob decodes into a runnable sweeprun.Job (Observe left nil; the
// executor attaches trajectory recorders itself when Trajectory is set).
func (j Job) ToJob() (sweeprun.Job, error) {
	cfg, err := j.Config.ToConfig()
	if err != nil {
		return sweeprun.Job{}, err
	}
	return sweeprun.Job{
		Meta:   append([]string(nil), j.Meta...),
		Config: cfg,
		Rounds: j.Rounds,
	}, nil
}

// FromJobs encodes a whole grid as a V1 sweep. A schedule instance
// shared by many jobs (the cmd/sweep pattern: one frozen snapshot for
// the whole grid) is serialized once and its encoding reused, so the
// O(changes) Points walk is not repeated per cell. The JSON document
// still carries one copy per job — the v1 envelope has no cross-job
// references; decoders rebuild per-job instances, which is what makes
// the decoded jobs safe to run concurrently.
func FromJobs(jobs []sweeprun.Job) (Sweep, error) {
	out := Sweep{Version: V1, Jobs: make([]Job, len(jobs))}
	encoded := map[demand.Schedule]*Schedule{}
	// Only pointer-typed schedules are memoizable map keys;
	// demand.Static (a value type holding a slice) is not hashable —
	// and is trivial to re-encode anyway.
	memoizable := func(s demand.Schedule) bool {
		if s == nil {
			return false
		}
		return reflect.ValueOf(s).Kind() == reflect.Pointer
	}
	for i, j := range jobs {
		var shared *Schedule
		sched := j.Config.Demand
		if memoizable(sched) {
			if shared = encoded[sched]; shared != nil {
				// Already encoded for an earlier cell: skip the
				// re-encode (Frozen.Points is O(horizon)) and reuse.
				j.Config.Demand = nil
			}
		}
		wj, err := FromJob(j)
		if err != nil {
			return Sweep{}, fmt.Errorf("wire: jobs[%d]: %w", i, err)
		}
		if shared != nil {
			wj.Config.Schedule = shared
		} else if memoizable(sched) {
			encoded[sched] = wj.Config.Schedule
		}
		out.Jobs[i] = wj
	}
	return out, nil
}

// ToJobs decodes a sweep's grid into runnable jobs. Identical
// frozen-schedule encodings materialize once and share the snapshot: a
// Frozen is immutable and explicitly safe for concurrent simulations,
// and dumped grids (cmd/sweep -dump-jobs, FromJobs) carry one copy per
// cell — without sharing, a J-cell replay would pay J·O(horizon)
// memory instead of one snapshot.
func ToJobs(s Sweep) ([]sweeprun.Job, error) {
	out := make([]sweeprun.Job, len(s.Jobs))
	frozen := map[string]demand.Schedule{}
	for i, wj := range s.Jobs {
		// On a cache hit, drop the schedule before ToJob so the
		// snapshot is not re-materialized just to be discarded.
		var key string
		var shared demand.Schedule
		if sc := wj.Config.Schedule; sc != nil && sc.Kind == "frozen" {
			key = FrozenKey(sc)
			if shared = frozen[key]; shared != nil {
				wj.Config.Schedule = nil
			}
		}
		j, err := wj.ToJob()
		if err != nil {
			return nil, fmt.Errorf("wire: jobs[%d]: %w", i, err)
		}
		switch {
		case shared != nil:
			j.Config.Demand = shared
		case key != "":
			frozen[key] = j.Config.Demand
		}
		out[i] = j
	}
	return out, nil
}

// FrozenKey identifies a frozen schedule encoding by content. It is
// the single identity both ToJobs' decode-side snapshot sharing and
// the service's distinct-snapshot admission accounting key on — the
// two must agree, or the admission memory bound stops matching what
// actually materializes.
func FrozenKey(sc *Schedule) string {
	b, err := json.Marshal(sc)
	if err != nil {
		return fmt.Sprintf("%p", sc) // unreachable: Schedule always marshals
	}
	return string(b)
}

// Tasks returns the task count the config's schedule yields (the
// trajectory recorder's column count).
func (c Config) Tasks() int {
	if c.Schedule != nil {
		return c.Schedule.tasks(0)
	}
	return len(c.Demands)
}

func (s *Schedule) tasks(depth int) int {
	if depth > MaxScheduleDepth {
		return 0
	}
	switch s.Kind {
	case "markov":
		if len(s.Regimes) > 0 {
			return len(s.Regimes[0])
		}
		return 0
	case "trace", "frozen":
		if len(s.Vectors) > 0 {
			return len(s.Vectors[0])
		}
		return 0
	case "compose", "superpose":
		if len(s.Parts) > 0 {
			return s.Parts[0].tasks(depth + 1)
		}
		return 0
	case "modulate", "stablenoise":
		if s.Inner != nil {
			return s.Inner.tasks(depth + 1)
		}
		return 0
	default:
		return len(s.Base)
	}
}

// EachFrozen calls fn for every frozen-kind node in the schedule tree,
// including snapshots nested inside algebra operators. The service's
// admission accounting walks it so a snapshot hidden inside a compose
// is charged against the memory budget like a top-level one. Trees
// deeper than MaxScheduleDepth are cut off — they never decode anyway.
func (s *Schedule) EachFrozen(fn func(*Schedule)) { s.eachFrozen(fn, 0) }

func (s *Schedule) eachFrozen(fn func(*Schedule), depth int) {
	if depth > MaxScheduleDepth {
		return
	}
	if s.Kind == "frozen" {
		fn(s)
	}
	for i := range s.Parts {
		s.Parts[i].eachFrozen(fn, depth+1)
	}
	if s.Inner != nil {
		s.Inner.eachFrozen(fn, depth+1)
	}
}

// --- Canonical hashing ---

// canonicalJob applies the configuration defaults the engine would, so
// that semantically identical submissions (Gamma 0 vs 1/16, Seed 0 vs
// 1, elided algorithm names) digest identically.
func canonicalJob(j Job) Job {
	c := j.Config
	c.Algorithm = orDefault(c.Algorithm, "ant")
	c.Init = orDefault(c.Init, "idle")
	if c.Gamma == 0 {
		c.Gamma = agent.MaxGamma
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Noise == nil {
		c.Noise = &Noise{}
	}
	nz := canonicalNoise(*c.Noise, c.Gamma)
	c.Noise = &nz
	if len(c.NoiseChanges) > 0 {
		// Clone before applying defaults: the struct copy above still
		// aliases the caller's slice backing array, and hashing must
		// never mutate its input. NoiseChanges entries resolve exactly
		// like the top-level Noise (buildNoiseModel treats them the
		// same), so they canonicalize the same.
		changes := append([]NoiseChange(nil), c.NoiseChanges...)
		for i := range changes {
			changes[i].Noise = canonicalNoise(changes[i].Noise, c.Gamma)
		}
		c.NoiseChanges = changes
	}
	j.Config = c
	return j
}

// canonicalNoise applies the defaults the engine's buildNoiseModel
// would, for a simulation whose (already-defaulted) learning rate is
// gamma.
func canonicalNoise(nz Noise, gamma float64) Noise {
	nz.Kind = orDefault(nz.Kind, "sigmoid")
	if nz.Kind == "sigmoid" && nz.Lambda == 0 && nz.GammaStar == 0 {
		nz.GammaStar = gamma / 2
	}
	if nz.Kind == "adversarial" {
		nz.GreyStrategy = orDefault(nz.GreyStrategy, "inverted")
	}
	return nz
}

// JobHash digests one job's canonical form: hex SHA-256 of the
// defaults-applied struct re-marshalled as JSON. Insensitive to the
// submitted document's key order and whitespace; sensitive to every
// semantic field, including Meta, Rounds, and Trajectory (they change
// the rendered response).
func JobHash(j Job) (string, error) {
	b, err := json.Marshal(canonicalJob(j))
	if err != nil {
		return "", fmt.Errorf("wire: hash job: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// SweepHash digests a whole grid: the version tag and every job's
// canonical bytes, in order. The service's result cache and sweep IDs
// key on it.
func SweepHash(s Sweep) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", orDefault(s.Version, V1))
	for i, j := range s.Jobs {
		b, err := json.Marshal(canonicalJob(j))
		if err != nil {
			return "", fmt.Errorf("wire: hash jobs[%d]: %w", i, err)
		}
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
