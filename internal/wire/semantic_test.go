package wire_test

import (
	"fmt"
	"testing"

	"taskalloc"
	"taskalloc/internal/scenario"
	"taskalloc/internal/wire"
)

// semJob wraps a config in the standard test envelope.
func semJob(c wire.Config) wire.Job {
	return wire.Job{Rounds: 120, Config: c}
}

func mustSemantic(t *testing.T, j wire.Job) string {
	t.Helper()
	h, err := wire.SemanticHash(j)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustSyntactic(t *testing.T, j wire.Job) string {
	t.Helper()
	h, err := wire.JobHash(j)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSemanticHashAliases: behaviorally identical spellings digest
// identically even when their syntactic hashes differ.
func TestSemanticHashAliases(t *testing.T) {
	base := wire.Config{Ants: 240, Epsilon: 0.5, Seed: 7, Shards: 2}

	step := &wire.Schedule{
		Kind: "step", Base: []int{40, 60},
		When: []uint64{50}, Vectors: [][]int{{70, 30}},
	}
	stepSched, err := step.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(stepSched, 300)
	if err != nil {
		t.Fatal(err)
	}
	frozenEnc, err := wire.FromSchedule(frozen)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		a, b func(wire.Config) wire.Config
	}{
		{
			// The flagship alias of the issue: a snapshot and the
			// generative schedule it froze, with identical realized demand.
			"frozen vs generative",
			func(c wire.Config) wire.Config { c.Schedule = &frozenEnc; return c },
			func(c wire.Config) wire.Config { c.Schedule = step; return c },
		},
		{
			"demands vs static schedule",
			func(c wire.Config) wire.Config { c.Demands = []int{40, 60}; return c },
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{Kind: "static", Base: []int{40, 60}}
				return c
			},
		},
		{
			"demand_changes vs step schedule",
			func(c wire.Config) wire.Config {
				c.Demands = []int{40, 60}
				c.DemandChanges = []wire.DemandChange{{At: 50, Demands: []int{70, 30}}}
				return c
			},
			func(c wire.Config) wire.Config { c.Schedule = step; return c },
		},
		{
			"one-point trace vs static",
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{Kind: "trace", When: []uint64{0}, Vectors: [][]int{{40, 60}}}
				return c
			},
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{Kind: "static", Base: []int{40, 60}}
				return c
			},
		},
		{
			"degenerate markov vs step",
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{
					Kind:    "markov",
					Regimes: [][]int{{40, 60}, {70, 30}},
					P:       [][]float64{{0, 1}, {0, 1}},
					Dwell:   50,
					Seed:    99, // seed is behaviorally dead in a deterministic chain
				}
				return c
			},
			func(c wire.Config) wire.Config { c.Schedule = step; return c },
		},
		{
			"no-op resize dropped",
			func(c wire.Config) wire.Config {
				c.Demands = []int{40, 60}
				c.SizeChanges = []wire.SizeChange{{At: 30, To: 240}, {At: 60, To: 120}}
				return c
			},
			func(c wire.Config) wire.Config {
				c.Demands = []int{40, 60}
				c.SizeChanges = []wire.SizeChange{{At: 60, To: 120}}
				return c
			},
		},
		{
			"no-op noise switch dropped",
			func(c wire.Config) wire.Config {
				c.Demands = []int{40, 60}
				c.Noise = &wire.Noise{Kind: "sigmoid", GammaStar: 0.02}
				c.NoiseChanges = []wire.NoiseChange{
					{At: 40, Noise: wire.Noise{Kind: "sigmoid", GammaStar: 0.02}},
				}
				return c
			},
			func(c wire.Config) wire.Config {
				c.Demands = []int{40, 60}
				c.Noise = &wire.Noise{Kind: "sigmoid", GammaStar: 0.02}
				return c
			},
		},
		{
			"single-part compose vs operand",
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{Kind: "compose", When: []uint64{0}, Parts: []wire.Schedule{*step}}
				return c
			},
			func(c wire.Config) wire.Config { c.Schedule = step; return c },
		},
		{
			"zero-sigma stablenoise vs inner",
			func(c wire.Config) wire.Config {
				c.Schedule = &wire.Schedule{Kind: "stablenoise", Alpha: 1.5, Every: 10, Seed: 3, Inner: step}
				return c
			},
			func(c wire.Config) wire.Config { c.Schedule = step; return c },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ja, jb := semJob(tc.a(base)), semJob(tc.b(base))
			if mustSyntactic(t, ja) == mustSyntactic(t, jb) {
				t.Fatal("spellings are syntactically identical; alias test is vacuous")
			}
			ha, hb := mustSemantic(t, ja), mustSemantic(t, jb)
			if ha != hb {
				t.Fatalf("semantic hashes differ:\n a: %s\n b: %s", ha, hb)
			}
		})
	}
}

// TestSemanticHashDistinguishes: behaviorally different configs keep
// different semantic hashes, and invalid configs keep their syntactic
// identity instead of aliasing.
func TestSemanticHashDistinguishes(t *testing.T) {
	base := wire.Config{Ants: 240, Epsilon: 0.5, Seed: 7, Shards: 2}

	t.Run("different demand", func(t *testing.T) {
		a, b := base, base
		a.Demands = []int{40, 60}
		b.Demands = []int{60, 40}
		if mustSemantic(t, semJob(a)) == mustSemantic(t, semJob(b)) {
			t.Fatal("distinct demands alias")
		}
	})
	t.Run("live markov keeps its seed", func(t *testing.T) {
		mk := func(seed uint64) wire.Config {
			c := base
			c.Schedule = &wire.Schedule{
				Kind:    "markov",
				Regimes: [][]int{{40, 60}, {70, 30}},
				P:       [][]float64{{0.5, 0.5}, {0.5, 0.5}},
				Dwell:   25,
				Seed:    seed,
			}
			return c
		}
		if mustSemantic(t, semJob(mk(1))) == mustSemantic(t, semJob(mk(2))) {
			t.Fatal("random chain seeds alias")
		}
	})
	t.Run("invalid schedule keeps syntactic identity", func(t *testing.T) {
		a, b := base, base
		// Both invalid (amp > 1), syntactically distinct: must stay distinct.
		a.Schedule = &wire.Schedule{Kind: "sinusoid", Base: []int{40, 60}, Amp: []float64{2, 0}, Period: 10}
		b.Schedule = &wire.Schedule{Kind: "sinusoid", Base: []int{40, 60}, Amp: []float64{3, 0}, Period: 10}
		if mustSemantic(t, semJob(a)) == mustSemantic(t, semJob(b)) {
			t.Fatal("invalid schedules alias")
		}
	})
	t.Run("schedule plus demands keeps syntactic identity", func(t *testing.T) {
		// Mutually exclusive spellings: taskalloc.New rejects the combined
		// form, so it must not alias the valid schedule-only config.
		a, b := base, base
		a.Schedule = &wire.Schedule{Kind: "static", Base: []int{40, 60}}
		a.Demands = []int{40, 60}
		b.Schedule = &wire.Schedule{Kind: "static", Base: []int{40, 60}}
		if mustSemantic(t, semJob(a)) == mustSemantic(t, semJob(b)) {
			t.Fatal("invalid combined spelling aliases the valid config")
		}
	})
	t.Run("invalid timeline keeps events", func(t *testing.T) {
		a, b := base, base
		a.Demands = []int{40, 60}
		b.Demands = []int{40, 60}
		// Non-increasing At: invalid, so the no-op resize is NOT dropped.
		a.SizeChanges = []wire.SizeChange{{At: 30, To: 240}, {At: 30, To: 120}}
		b.SizeChanges = []wire.SizeChange{{At: 30, To: 120}}
		if mustSemantic(t, semJob(a)) == mustSemantic(t, semJob(b)) {
			t.Fatal("invalid timeline aliased a valid one")
		}
	})
	t.Run("meta and rounds stay significant", func(t *testing.T) {
		a, b := semJob(base), semJob(base)
		a.Config.Demands = []int{40, 60}
		b.Config.Demands = []int{40, 60}
		b.Meta = []string{"x"}
		if mustSemantic(t, a) == mustSemantic(t, b) {
			t.Fatal("meta not hashed")
		}
		b.Meta = nil
		b.Rounds = 121
		if mustSemantic(t, a) == mustSemantic(t, b) {
			t.Fatal("rounds not hashed")
		}
	})
	t.Run("domain-separated from syntactic hash", func(t *testing.T) {
		c := base
		c.Demands = []int{40, 60}
		j := semJob(c)
		if mustSemantic(t, j) == mustSyntactic(t, j) {
			t.Fatal("semantic and syntactic hashes share a domain")
		}
	})
}

// TestSemanticSweepHashAliases: grid-level aliasing — two sweeps whose
// cells are pairwise behaviorally equivalent share one semantic sweep
// hash, the key the service's result cache uses.
func TestSemanticSweepHashAliases(t *testing.T) {
	step := &wire.Schedule{
		Kind: "step", Base: []int{40, 60},
		When: []uint64{50}, Vectors: [][]int{{70, 30}},
	}
	sched, err := step.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sched, 300)
	if err != nil {
		t.Fatal(err)
	}
	frozenEnc, err := wire.FromSchedule(frozen)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sc *wire.Schedule) wire.Sweep {
		var jobs []wire.Job
		for _, gamma := range []float64{0.01, 0.02, 0.03} {
			jobs = append(jobs, wire.Job{
				Rounds: 120,
				Config: wire.Config{Ants: 240, Epsilon: 0.5, Gamma: gamma, Seed: 7, Shards: 2, Schedule: sc},
			})
		}
		return wire.Sweep{Version: wire.V1, Jobs: jobs}
	}
	syn1, err := wire.SweepHash(mk(&frozenEnc))
	if err != nil {
		t.Fatal(err)
	}
	syn2, err := wire.SweepHash(mk(step))
	if err != nil {
		t.Fatal(err)
	}
	if syn1 == syn2 {
		t.Fatal("sweeps are syntactically identical; alias test is vacuous")
	}
	sem1, err := wire.SemanticSweepHash(mk(&frozenEnc))
	if err != nil {
		t.Fatal(err)
	}
	sem2, err := wire.SemanticSweepHash(mk(step))
	if err != nil {
		t.Fatal(err)
	}
	if sem1 != sem2 {
		t.Fatalf("semantic sweep hashes differ:\n a: %s\n b: %s", sem1, sem2)
	}
}

// TestSemanticBisectHashAliases: bisect affinity follows the template
// job's behavioral identity, and the search parameters stay significant.
func TestSemanticBisectHashAliases(t *testing.T) {
	mk := func(sc *wire.Schedule, demands []int, band float64) wire.BisectRequest {
		return wire.BisectRequest{
			Version:    wire.V1,
			Job:        wire.Job{Rounds: 120, Config: wire.Config{Ants: 240, Epsilon: 0.5, Seed: 7, Shards: 2, Schedule: sc, Demands: demands}},
			GammaLo:    0.01,
			GammaHi:    0.05,
			TargetBand: band,
		}
	}
	static := &wire.Schedule{Kind: "static", Base: []int{40, 60}}
	a, err := wire.SemanticBisectHash(mk(static, nil, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := wire.SemanticBisectHash(mk(nil, []int{40, 60}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent templates split the bisect hash:\n a: %s\n b: %s", a, b)
	}
	c, err := wire.SemanticBisectHash(mk(static, nil, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("target band not hashed")
	}
}

// TestSemanticHashEquivalentTrajectories is the safety net behind the
// aliasing rules: any two spellings this file asserts semantically
// equal must also replay identical trajectories through the engine.
func TestSemanticHashEquivalentTrajectories(t *testing.T) {
	step := &wire.Schedule{
		Kind: "step", Base: []int{40, 60},
		When: []uint64{50}, Vectors: [][]int{{70, 30}},
	}
	sched, err := step.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sched, 300)
	if err != nil {
		t.Fatal(err)
	}
	frozenEnc, err := wire.FromSchedule(frozen)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sc *wire.Schedule) []string {
		c := wire.Config{Ants: 240, Epsilon: 0.5, Seed: 7, Shards: 2, Schedule: sc}
		cfg, err := c.ToConfig()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := taskalloc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		sim.Run(120, func(round uint64, loads []int, demands []int) {
			rows = append(rows, fmt.Sprintf("%d %v %v", round, loads, demands))
		})
		return rows
	}
	a, b := run(&frozenEnc), run(step)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged:\n frozen: %s\n   step: %s", i, a[i], b[i])
		}
	}
}
