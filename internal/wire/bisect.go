package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"taskalloc"
	"taskalloc/internal/agent"
)

// BisectRequest is the POST /v1/bisect body: an adaptive-grid search
// that refines a γ interval by repeated bisection until every segment's
// regret band (the |ΔAvgRegret| across its endpoints) is at most
// TargetBand, or the evaluation budget runs out. Every evaluated cell
// is an ordinary job — the template with Config.Gamma overridden — so
// the server's job-level result cache makes re-bisection over
// previously-simulated cells nearly free.
type BisectRequest struct {
	// Version is the wire-format version tag (V1).
	Version string `json:"version"`
	// Job is the cell template: its Config is run unchanged except for
	// Gamma, which the search overrides per evaluation. Trajectory is
	// ignored — bisect cells never stream trajectories.
	Job Job `json:"job"`
	// GammaLo and GammaHi bracket the searched learning-rate interval;
	// 0 < GammaLo < GammaHi <= 1/16 (agent.MaxGamma).
	GammaLo float64 `json:"gamma_lo"`
	GammaHi float64 `json:"gamma_hi"`
	// TargetBand is the convergence threshold: a segment is refined
	// while |AvgRegret(hi) − AvgRegret(lo)| exceeds it. Must be > 0.
	TargetBand float64 `json:"target_band"`
	// MaxEvals caps the number of evaluated γ cells (cached ones
	// included); 0 means the server default, and values >= 2 are
	// honored exactly (the endpoints alone cost two evaluations, so 1
	// is rejected). The server rejects values over its own bound.
	MaxEvals int `json:"max_evals,omitempty"`
}

// Validate checks the request's intrinsic invariants (the server layers
// its admission bounds on top).
func (b BisectRequest) Validate() error {
	if b.GammaLo <= 0 || b.GammaHi > agent.MaxGamma || b.GammaLo >= b.GammaHi {
		return fmt.Errorf("wire: bisect needs 0 < gamma_lo < gamma_hi <= %g, got [%g, %g]",
			agent.MaxGamma, b.GammaLo, b.GammaHi)
	}
	if b.TargetBand <= 0 {
		return fmt.Errorf("wire: bisect needs target_band > 0, got %g", b.TargetBand)
	}
	if b.MaxEvals < 0 || b.MaxEvals == 1 {
		// The interval endpoints alone cost two evaluations, so a budget
		// of 1 cannot be honored; 0 selects the server default.
		return fmt.Errorf("wire: bisect needs max_evals of 0 (server default) or >= 2, got %d", b.MaxEvals)
	}
	if b.Job.Rounds < 0 {
		return fmt.Errorf("wire: bisect job rounds %d < 0", b.Job.Rounds)
	}
	return nil
}

// DecodeBisectRequest reads one JSON bisect request. Like DecodeSweep,
// unknown fields and version mismatches are errors.
func DecodeBisectRequest(r io.Reader) (BisectRequest, error) {
	var b BisectRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return BisectRequest{}, fmt.Errorf("wire: decode bisect request: %w", err)
	}
	if b.Version != V1 {
		return BisectRequest{}, fmt.Errorf("wire: unsupported version %q (want %q)", b.Version, V1)
	}
	if err := b.Validate(); err != nil {
		return BisectRequest{}, err
	}
	return b, nil
}

// BisectCell is one evaluated γ point of a bisect response.
type BisectCell struct {
	// Gamma is the evaluated learning rate.
	Gamma float64 `json:"gamma"`
	// JobHash is the cell's canonical job hash (JobHash of the template
	// with Gamma overridden) — the key the server's job cache uses.
	JobHash string `json:"job_hash"`
	// Cached is true when the cell was served from the job cache.
	Cached bool `json:"cached"`
	// Report holds the cell's simulation metrics; nil when Err != "".
	Report *taskalloc.Report `json:"report,omitempty"`
	// Err is the cell's configuration/validation failure, if it could
	// not run.
	Err string `json:"err,omitempty"`
}

// BisectInterval is one segment of the final γ partition.
type BisectInterval struct {
	// Lo and Hi are the segment's γ endpoints.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Band is |AvgRegret(Hi) − AvgRegret(Lo)|: the regret width the
	// convergence criterion is stated against. NaN (an endpoint cell
	// failed, or its regret is undefined) is null on the wire, like
	// taskalloc.Report's metrics — encoding/json rejects NaN outright,
	// which would otherwise abort the whole response over one segment.
	Band float64 `json:"band"`
}

// bisectIntervalJSON is the wire shadow of BisectInterval (Band
// pointer-mapped so NaN round-trips as null).
type bisectIntervalJSON struct {
	Lo   float64  `json:"lo"`
	Hi   float64  `json:"hi"`
	Band *float64 `json:"band"`
}

// MarshalJSON implements json.Marshaler (NaN/Inf Band → null).
func (b BisectInterval) MarshalJSON() ([]byte, error) {
	j := bisectIntervalJSON{Lo: b.Lo, Hi: b.Hi}
	if !math.IsNaN(b.Band) && !math.IsInf(b.Band, 0) {
		band := b.Band
		j.Band = &band
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler (null Band → NaN).
func (b *BisectInterval) UnmarshalJSON(data []byte) error {
	var j bisectIntervalJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*b = BisectInterval{Lo: j.Lo, Hi: j.Hi, Band: math.NaN()}
	if j.Band != nil {
		b.Band = *j.Band
	}
	return nil
}

// BisectResponse is the POST /v1/bisect body on success.
type BisectResponse struct {
	// Version is the wire-format version tag (V1).
	Version string `json:"version"`
	// ID is the request's canonical hash (BisectHash).
	ID string `json:"id"`
	// Cells are the evaluated γ points in ascending γ order.
	Cells []BisectCell `json:"cells"`
	// Intervals is the final segmentation in ascending γ order; when
	// Converged, every Band is at most the request's TargetBand.
	Intervals []BisectInterval `json:"intervals"`
	// Evals counts the evaluated cells (cache hits included);
	// CacheHits counts how many were served from the job cache.
	Evals     int `json:"evals"`
	CacheHits int `json:"cache_hits"`
	// Converged is false when the evaluation budget ran out (or a
	// segment hit the floating-point width floor) before every
	// segment's band met the target.
	Converged bool `json:"converged"`
}

// BisectHash digests a bisect request's canonical form: the template
// job's canonical bytes plus the search parameters. The grid
// coordinator keys backend affinity on it, so identical re-bisections
// land on the backend whose job cache is already warm.
func BisectHash(b BisectRequest) (string, error) {
	b.Job.Trajectory = false // ignored by bisect; must not split the hash
	jb, err := json.Marshal(canonicalJob(b.Job))
	if err != nil {
		return "", fmt.Errorf("wire: hash bisect request: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "bisect/%s\n%g %g %g %d\n", orDefault(b.Version, V1),
		b.GammaLo, b.GammaHi, b.TargetBand, b.MaxEvals)
	h.Write(jb)
	return hex.EncodeToString(h.Sum(nil)), nil
}
