package wire_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"taskalloc/internal/wire"
)

type seedDoc struct {
	name string
	data []byte
}

// seedCorpus loads the decode fuzz seeds under testdata/wire/ — one
// valid document per schedule family plus event-heavy and
// engine-variant documents (the fuzzer mutates from these).
func seedCorpus(tb testing.TB) []seedDoc {
	tb.Helper()
	dir := filepath.Join("..", "..", "testdata", "wire")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatalf("seed corpus missing: %v", err)
	}
	var out []seedDoc
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, seedDoc{name: e.Name(), data: data})
	}
	if len(out) < 8 {
		tb.Fatalf("seed corpus too small: %d documents", len(out))
	}
	return out
}

// FuzzDecodeSweep hardens the decoder: any input either errors cleanly
// or yields a sweep whose re-encoding decodes again with a stable
// canonical hash, and whose grid conversion never panics.
func FuzzDecodeSweep(f *testing.F) {
	for _, doc := range seedCorpus(f) {
		f.Add(doc.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := wire.DecodeSweep(bytes.NewReader(data))
		if err != nil {
			return
		}
		h1, err := wire.SweepHash(s)
		if err != nil {
			t.Fatalf("decoded sweep does not hash: %v", err)
		}
		blob, err := wire.MarshalSweep(s)
		if err != nil {
			t.Fatalf("decoded sweep does not re-encode: %v", err)
		}
		s2, err := wire.DecodeSweep(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("re-encoded sweep does not decode: %v\n%s", err, blob)
		}
		h2, err := wire.SweepHash(s2)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("canonical hash unstable: %s vs %s", h1, h2)
		}
		// The semantic hash must be just as stable across a re-encode
		// round trip, and must never fail on a decodable document (the
		// normal form falls back to the syntactic encoding on any
		// irreducible schedule).
		s1, err := wire.SemanticSweepHash(s)
		if err != nil {
			t.Fatalf("decoded sweep has no semantic hash: %v", err)
		}
		s2h, err := wire.SemanticSweepHash(s2)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2h {
			t.Fatalf("semantic hash unstable: %s vs %s", s1, s2h)
		}
		// Grid conversion must reject garbage with errors, not panics
		// (the decode cap on frozen horizons bounds allocation).
		_, _ = wire.ToJobs(s)
	})
}
