package wire

import (
	"taskalloc"
	"taskalloc/internal/sweeprun"
)

// StreamHeader is the first NDJSON line of a POST /v1/sweeps response:
// it names the sweep before any cell completes, so clients can poll
// GET /v1/sweeps/{id} even if the stream is interrupted.
type StreamHeader struct {
	Version string `json:"version"`
	// ID is the sweep's canonical hash (SweepHash).
	ID string `json:"id"`
	// Jobs is the grid size; the stream carries exactly this many
	// Result lines after the header, in job order.
	Jobs int `json:"jobs"`
}

// Result is one grid cell's outcome: an NDJSON line of the submit
// stream and an entry of the GET summary. Exactly one of Report and Err
// is set.
type Result struct {
	Index int      `json:"index"`
	Meta  []string `json:"meta,omitempty"`
	// Report holds the simulation metrics (taskalloc.Report, default
	// JSON field names — part of the v1 wire surface).
	Report *taskalloc.Report `json:"report,omitempty"`
	// Err is the configuration/validation failure, if the cell could
	// not run.
	Err string `json:"err,omitempty"`
	// Trajectory is the golden-format trajectory CSV, present only when
	// the job requested it.
	Trajectory string `json:"trajectory,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} body.
type SweepStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // "running" | "done" | "resumable"
	Jobs   int    `json:"jobs"`
	Failed int    `json:"failed,omitempty"`
	// Summary aggregates the completed grid (sweeprun.Summarize).
	Summary *sweeprun.Summary `json:"summary,omitempty"`
	// Results are the per-cell outcomes, trajectories elided (fetch
	// them from the submit stream).
	Results []Result `json:"results,omitempty"`
}

// ErrorBody is the JSON error envelope the service returns for tenant
// rejections (401 unauthorized, 403 quota, 429 rate_limited). Plain
// validation errors keep their text/plain bodies; only the tenant layer
// speaks this envelope, so clients can branch on Kind.
type ErrorBody struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Kind discriminates the rejection: "unauthorized" | "quota" |
	// "rate_limited".
	Kind string `json:"kind"`
	// RetryAfterMS is set only for rate_limited: how long until the
	// token bucket readmits this tenant.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}
