package wire_test

import (
	"math/rand"
	"reflect"
	"testing"

	"taskalloc/internal/wire"
)

// The canonical-hash property suite: JobHash must change exactly when a
// semantic field changes. Each Config (and Job envelope) field has a
// mutator that perturbs it; applying any one mutator to a random base
// job must move the hash, while re-spelling a field as its configured
// default (the alias table) must not. A reflection sweep pins the
// mutator table to the Config struct, so a future field cannot be added
// without declaring how it hashes.

// hashMutator perturbs exactly one semantic field of a job.
type hashMutator struct {
	field  string // the wire.Config (or "Job.X") field it covers
	name   string
	mutate func(*wire.Job, *rand.Rand)
}

// hashMutators covers every semantic field. Perturbations are chosen to
// stay inside the hashable space (JobHash validates nothing beyond
// marshalability, but the values here mirror real documents).
var hashMutators = []hashMutator{
	{"Ants", "ants+1", func(j *wire.Job, _ *rand.Rand) { j.Config.Ants++ }},
	{"Demands", "demand+1", func(j *wire.Job, _ *rand.Rand) { j.Config.Demands[0]++ }},
	{"Algorithm", "algorithm=dutycycle", func(j *wire.Job, _ *rand.Rand) { j.Config.Algorithm = "dutycycle" }},
	{"Gamma", "gamma/2", func(j *wire.Job, _ *rand.Rand) { j.Config.Gamma /= 2 }},
	{"Epsilon", "epsilon+=1/64", func(j *wire.Job, _ *rand.Rand) { j.Config.Epsilon += 1.0 / 64 }},
	{"Noise", "noise=adversarial", func(j *wire.Job, _ *rand.Rand) {
		j.Config.Noise = &wire.Noise{Kind: "adversarial", GammaAd: 1.0 / 8}
	}},
	{"Init", "init=uniform", func(j *wire.Job, _ *rand.Rand) { j.Config.Init = "uniform" }},
	{"DemandChanges", "demand change at 50", func(j *wire.Job, _ *rand.Rand) {
		j.Config.DemandChanges = append(j.Config.DemandChanges,
			wire.DemandChange{At: 50, Demands: []int{10, 20}})
	}},
	{"Schedule", "schedule=sinusoid", func(j *wire.Job, _ *rand.Rand) {
		j.Config.Schedule = &wire.Schedule{
			Kind: "sinusoid", Base: []int{40, 50}, Amp: []float64{4, 4}, Period: 64,
		}
	}},
	{"SizeChanges", "resize at 60", func(j *wire.Job, _ *rand.Rand) {
		j.Config.SizeChanges = append(j.Config.SizeChanges, wire.SizeChange{At: 60, To: 80})
	}},
	{"NoiseChanges", "noise switch at 70", func(j *wire.Job, _ *rand.Rand) {
		j.Config.NoiseChanges = append(j.Config.NoiseChanges,
			wire.NoiseChange{At: 70, Noise: wire.Noise{Kind: "perfect"}})
	}},
	{"Sequential", "sequential toggle", func(j *wire.Job, _ *rand.Rand) { j.Config.Sequential = !j.Config.Sequential }},
	{"MeanField", "mean-field toggle", func(j *wire.Job, _ *rand.Rand) { j.Config.MeanField = !j.Config.MeanField }},
	{"Seed", "seed+1", func(j *wire.Job, _ *rand.Rand) { j.Config.Seed++ }},
	{"Shards", "shards+1", func(j *wire.Job, _ *rand.Rand) { j.Config.Shards++ }},
	{"BurnIn", "burn-in+10", func(j *wire.Job, _ *rand.Rand) { j.Config.BurnIn += 10 }},
	{"CheckAssumptions", "check-assumptions toggle", func(j *wire.Job, _ *rand.Rand) {
		j.Config.CheckAssumptions = !j.Config.CheckAssumptions
	}},
	// The Job envelope fields are semantic too: they change the rendered
	// response, so the result cache must not conflate them.
	{"Job.Meta", "meta append", func(j *wire.Job, _ *rand.Rand) { j.Meta = append(j.Meta, "extra") }},
	{"Job.Rounds", "rounds+1", func(j *wire.Job, _ *rand.Rand) { j.Rounds++ }},
	{"Job.Trajectory", "trajectory toggle", func(j *wire.Job, _ *rand.Rand) { j.Trajectory = !j.Trajectory }},
}

// randomBaseJob builds a base job with every defaultable field pinned
// to a non-default value, so any mutator's perturbation is visible.
func randomBaseJob(rng *rand.Rand) wire.Job {
	return wire.Job{
		Meta:   []string{"seed", "1"},
		Rounds: 100 + rng.Intn(400),
		Config: wire.Config{
			Ants:      50 + rng.Intn(200),
			Demands:   []int{10 + rng.Intn(40), 20 + rng.Intn(40)},
			Algorithm: "ant",
			Gamma:     1.0 / float64(int(8)<<rng.Intn(3)),
			Epsilon:   1.0 / 32,
			Noise:     &wire.Noise{Kind: "sigmoid", Lambda: 4, GammaStar: 1.0 / 64},
			Init:      "idle",
			Seed:      uint64(rng.Intn(1000)) + 2,
			Shards:    1 + rng.Intn(4),
			BurnIn:    uint64(rng.Intn(50)),
		},
	}
}

// TestJobHashMutationProperties: for 200 random base jobs, applying any
// single mutator changes JobHash (semantic sensitivity) and the
// mutation is the only difference — reapplying JobHash to the untouched
// base reproduces the original digest (hashing is pure and never
// mutates its input).
func TestJobHashMutationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		base := randomBaseJob(rng)
		baseHash, err := wire.JobHash(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range hashMutators {
			mut := base
			// Deep-enough copy: mutators touch slices in place.
			mut.Meta = append([]string(nil), base.Meta...)
			mut.Config.Demands = append([]int(nil), base.Config.Demands...)
			mut.Config.DemandChanges = append([]wire.DemandChange(nil), base.Config.DemandChanges...)
			mut.Config.SizeChanges = append([]wire.SizeChange(nil), base.Config.SizeChanges...)
			mut.Config.NoiseChanges = append([]wire.NoiseChange(nil), base.Config.NoiseChanges...)
			if base.Config.Noise != nil {
				nz := *base.Config.Noise
				mut.Config.Noise = &nz
			}
			m.mutate(&mut, rng)
			mutHash, err := wire.JobHash(mut)
			if err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
			if mutHash == baseHash {
				t.Errorf("trial %d: mutator %q (field %s) did not change JobHash", trial, m.name, m.field)
			}
			again, err := wire.JobHash(base)
			if err != nil {
				t.Fatal(err)
			}
			if again != baseHash {
				t.Fatalf("trial %d: hashing after mutator %q changed the base job's digest — JobHash mutated its input", trial, m.name)
			}
		}
	}
}

// TestJobHashAliasInsensitivity: re-spelling a field as its configured
// default is not a semantic change, so the canonical hash must not
// move. Each alias pair is one (explicit, elided) spelling of the same
// behavior.
func TestJobHashAliasInsensitivity(t *testing.T) {
	base := wire.Job{
		Meta:   []string{"alias", "base"},
		Rounds: 200,
		Config: wire.Config{
			Ants:    100,
			Demands: []int{40, 50},
		},
	}
	aliases := []struct {
		name  string
		spell func(*wire.Job)
	}{
		{"algorithm=ant", func(j *wire.Job) { j.Config.Algorithm = "ant" }},
		{"init=idle", func(j *wire.Job) { j.Config.Init = "idle" }},
		{"gamma=1/16", func(j *wire.Job) { j.Config.Gamma = 1.0 / 16 }},
		{"seed=1", func(j *wire.Job) { j.Config.Seed = 1 }},
		{"noise=sigmoid", func(j *wire.Job) { j.Config.Noise = &wire.Noise{Kind: "sigmoid"} }},
		{"noise=sigmoid gamma*/2", func(j *wire.Job) {
			// The elided sigmoid defaults its γ* to half the (defaulted)
			// learning rate.
			j.Config.Noise = &wire.Noise{Kind: "sigmoid", GammaStar: 1.0 / 32}
		}},
	}
	baseHash, err := wire.JobHash(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range aliases {
		spelled := base
		a.spell(&spelled)
		h, err := wire.JobHash(spelled)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if h != baseHash {
			t.Errorf("alias %q changed JobHash: default-spelling a field must digest identically", a.name)
		}
	}
}

// TestConfigFieldsHaveHashMutators pins the mutator table to the Config
// struct by reflection: adding a wire field without declaring its hash
// mutator fails here, so the semantic-sensitivity property cannot
// silently lose coverage.
func TestConfigFieldsHaveHashMutators(t *testing.T) {
	covered := map[string]bool{}
	for _, m := range hashMutators {
		covered[m.field] = true
	}
	ct := reflect.TypeOf(wire.Config{})
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if !covered[f.Name] {
			t.Errorf("wire.Config field %s has no JobHash mutator — add one to hashMutators (or a deliberate exemption here)", f.Name)
		}
	}
	for _, env := range []string{"Job.Meta", "Job.Rounds", "Job.Trajectory"} {
		if !covered[env] {
			t.Errorf("job envelope field %s has no JobHash mutator", env)
		}
	}
}
