package wire_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/goldencases"
	"taskalloc/internal/scenario"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// schedules builds one live instance of every family the codec covers.
func schedules(t *testing.T) map[string]demand.Schedule {
	t.Helper()
	base := demand.Vector{40, 60}
	sin, err := scenario.NewSinusoid(base, []float64{0.3, 0.5}, 120, []float64{0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := scenario.NewBurst(base, demand.Vector{90, 60}, 30, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := scenario.NewRandomWalk(base, 4, 8, demand.Vector{20, 30}, demand.Vector{70, 90}, 11)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := scenario.NewMarkovModulated(
		[]demand.Vector{base, {60, 40}, {50, 50}},
		[][]float64{{0.5, 0.3, 0.2}, {0.1, 0.8, 0.1}, {0.25, 0.25, 0.5}}, 16, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scenario.NewTrace([]uint64{0, 40, 90}, []demand.Vector{base, {55, 45}, {45, 55}})
	if err != nil {
		t.Fatal(err)
	}
	step, err := demand.NewStep(base, []uint64{50, 120}, []demand.Vector{{30, 70}, {70, 30}})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sin, 200)
	if err != nil {
		t.Fatal(err)
	}
	compose, err := scenario.NewCompose([]demand.Schedule{demand.Static{V: base}, sin}, []uint64{0, 70})
	if err != nil {
		t.Fatal(err)
	}
	modulate, err := scenario.NewModulate(burst, []float64{1.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	superpose, err := scenario.NewSuperpose([]demand.Schedule{step, markov})
	if err != nil {
		t.Fatal(err)
	}
	stable, err := scenario.NewStableNoise(walk, 1.4, 6, 20, 17)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]demand.Schedule{
		"static":      demand.Static{V: base},
		"step":        step,
		"sinusoid":    sin,
		"burst":       burst,
		"randomwalk":  walk,
		"markov":      markov,
		"trace":       tr,
		"frozen":      frozen,
		"compose":     compose,
		"modulate":    modulate,
		"superpose":   superpose,
		"stablenoise": stable,
	}
}

// TestScheduleRoundTripFamilies: every family survives encode → JSON →
// decode → re-encode structurally, and the reconstructed schedule
// yields the same demand vector at every round of a long horizon
// (generative seeds included).
func TestScheduleRoundTripFamilies(t *testing.T) {
	for name, orig := range schedules(t) {
		t.Run(name, func(t *testing.T) {
			enc, err := wire.FromSchedule(orig)
			if err != nil {
				t.Fatal(err)
			}
			if enc.Kind != name {
				t.Fatalf("kind = %q, want %q", enc.Kind, name)
			}
			blob, err := json.Marshal(enc)
			if err != nil {
				t.Fatal(err)
			}
			var dec wire.Schedule
			if err := json.Unmarshal(blob, &dec); err != nil {
				t.Fatal(err)
			}
			rebuilt, err := dec.ToSchedule()
			if err != nil {
				t.Fatal(err)
			}
			if got := rebuilt.Tasks(); got != orig.Tasks() {
				t.Fatalf("tasks = %d, want %d", got, orig.Tasks())
			}
			for round := uint64(0); round <= 300; round++ {
				want := orig.At(round)
				got := rebuilt.At(round)
				if !want.Equal(got) {
					t.Fatalf("At(%d) = %v, want %v", round, got, want)
				}
			}
			// The re-encoding is structurally identical — the codec is a
			// fixed point after one round trip.
			enc2, err := wire.FromSchedule(rebuilt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(enc, enc2) {
				t.Fatalf("re-encode drifted:\n first: %+v\nsecond: %+v", enc, enc2)
			}
		})
	}
}

// TestConfigRoundTripTimeline: a config carrying every event axis —
// SizeChanges (Resize), NoiseChanges (NoiseSwitch through three noise
// kinds), a generative schedule — round-trips through the codec and the
// rebuilt config replays the exact same trajectory.
func TestConfigRoundTripTimeline(t *testing.T) {
	sin, err := scenario.NewSinusoid(demand.Vector{30, 50}, []float64{0.4, 0.4}, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := taskalloc.Config{
		Ants:      300,
		Algorithm: taskalloc.PreciseSigmoid,
		Gamma:     0.05,
		Epsilon:   0.5,
		Noise:     taskalloc.SigmoidNoise(0.03),
		Demand:    sin,
		SizeChanges: []taskalloc.SizeChange{
			{At: 40, To: 200},
			{At: 90, To: 300},
		},
		NoiseChanges: []taskalloc.NoiseChange{
			{At: 50, Noise: taskalloc.AdversarialNoise(0.06)},
			{At: 100, Noise: taskalloc.PerfectNoise()},
		},
		Seed:   3,
		Shards: 2,
		BurnIn: 20,
	}

	enc, err := wire.FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var dec wire.Config
	if err := json.Unmarshal(blob, &dec); err != nil {
		t.Fatal(err)
	}
	cfg2, err := dec.ToConfig()
	if err != nil {
		t.Fatal(err)
	}

	run := func(c taskalloc.Config) []byte {
		t.Helper()
		sim, err := taskalloc.New(c)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		rec := wire.NewTrajectoryRecorder(len(sim.Demands()))
		sim.Run(140, rec.Observer(sim))
		return rec.Bytes()
	}
	a, b := run(cfg), run(cfg2)
	if !bytes.Equal(a, b) {
		t.Fatalf("round-tripped config diverged from the original trajectory")
	}

	// Structural fixed point too.
	enc2, err := wire.FromConfig(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enc, enc2) {
		t.Fatalf("re-encode drifted:\n first: %+v\nsecond: %+v", enc, enc2)
	}
}

// TestGoldenCorpusRoundTrip proves the wire format round-trips the
// whole existing scenario corpus: every golden case's config crosses
// the codec and still replays byte-identical to goldencases.CSV.
func TestGoldenCorpusRoundTrip(t *testing.T) {
	for _, c := range goldencases.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			want, err := goldencases.CSV(c)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := c.Config()
			if err != nil {
				t.Fatal(err)
			}
			enc, err := wire.FromConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(enc)
			if err != nil {
				t.Fatal(err)
			}
			var dec wire.Config
			if err := json.Unmarshal(blob, &dec); err != nil {
				t.Fatal(err)
			}
			cfg2, err := dec.ToConfig()
			if err != nil {
				t.Fatal(err)
			}
			sim, err := taskalloc.New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			rec := wire.NewTrajectoryRecorder(len(sim.Demands()))
			sim.Run(c.Rounds, rec.Observer(sim))
			if !bytes.Equal(rec.Bytes(), want) {
				t.Fatalf("wire round trip changed the %s trajectory", c.Name)
			}
		})
	}
}

func baseJob(t *testing.T) wire.Job {
	t.Helper()
	return wire.Job{
		Meta:   []string{"gamma", "0.04", "sinusoid", "3"},
		Rounds: 500,
		Config: wire.Config{
			Ants:    800,
			Gamma:   0.04,
			Epsilon: 0.5,
			Noise:   &wire.Noise{Kind: "sigmoid", GammaStar: 0.02},
			Schedule: &wire.Schedule{
				Kind: "sinusoid", Base: []int{100, 150},
				Amp: []float64{0.3, 0.3}, Period: 200, Phase: []float64{0, 0},
			},
			SizeChanges: []wire.SizeChange{{At: 100, To: 400}},
			Seed:        3,
			Shards:      1,
		},
	}
}

// TestHashKeyOrderInsensitive: the canonical hash depends on content,
// not on the submitted document's key order or whitespace.
func TestHashKeyOrderInsensitive(t *testing.T) {
	a := `{
	  "version": "taskalloc/v1",
	  "jobs": [{"rounds": 100, "config": {"ants": 50, "seed": 2, "gamma": 0.04, "shards": 1}}]
	}`
	b := `{"jobs":[{"config":{"shards":1,"gamma":0.04,"seed":2,"ants":50},"rounds":100}],"version":"taskalloc/v1"}`
	sa, err := wire.DecodeSweep(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := wire.DecodeSweep(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := wire.SweepHash(sa)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := wire.SweepHash(sb)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("key order changed the hash: %s vs %s", ha, hb)
	}
}

// TestHashFieldSensitivity: every semantic field moves the hash.
func TestHashFieldSensitivity(t *testing.T) {
	base := baseJob(t)
	baseHash, err := wire.JobHash(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*wire.Job){
		"seed":            func(j *wire.Job) { j.Config.Seed = 4 },
		"gamma":           func(j *wire.Job) { j.Config.Gamma = 0.05 },
		"epsilon":         func(j *wire.Job) { j.Config.Epsilon = 0.25 },
		"ants":            func(j *wire.Job) { j.Config.Ants = 900 },
		"shards":          func(j *wire.Job) { j.Config.Shards = 2 },
		"rounds":          func(j *wire.Job) { j.Rounds = 600 },
		"meta":            func(j *wire.Job) { j.Meta = []string{"gamma", "0.05", "sinusoid", "3"} },
		"trajectory":      func(j *wire.Job) { j.Trajectory = true },
		"algorithm":       func(j *wire.Job) { j.Config.Algorithm = "trivial" },
		"init":            func(j *wire.Job) { j.Config.Init = "uniform" },
		"burn_in":         func(j *wire.Job) { j.Config.BurnIn = 10 },
		"noise.kind":      func(j *wire.Job) { j.Config.Noise = &wire.Noise{Kind: "perfect"} },
		"noise.gammastar": func(j *wire.Job) { j.Config.Noise = &wire.Noise{Kind: "sigmoid", GammaStar: 0.03} },
		"sched.period":    func(j *wire.Job) { j.Config.Schedule.Period = 250 },
		"sched.amp":       func(j *wire.Job) { j.Config.Schedule.Amp = []float64{0.3, 0.4} },
		"sched.base":      func(j *wire.Job) { j.Config.Schedule.Base = []int{100, 151} },
		"sched.kind": func(j *wire.Job) {
			j.Config.Schedule = &wire.Schedule{Kind: "static", Base: []int{100, 150}}
		},
		"size_change.at": func(j *wire.Job) { j.Config.SizeChanges = []wire.SizeChange{{At: 101, To: 400}} },
		"size_change.to": func(j *wire.Job) { j.Config.SizeChanges = []wire.SizeChange{{At: 100, To: 401}} },
		"noise_changes": func(j *wire.Job) {
			j.Config.NoiseChanges = []wire.NoiseChange{{At: 50, Noise: wire.Noise{Kind: "perfect"}}}
		},
		"sequential": func(j *wire.Job) { j.Config.Sequential = true; j.Config.Shards = 0 },
		"mean_field": func(j *wire.Job) { j.Config.MeanField = true },
	}
	seen := map[string]string{baseHash: "base"}
	for name, mutate := range mutations {
		j := baseJob(t)
		// Deep-ish copy of the pointer fields the mutations touch.
		sched := *j.Config.Schedule
		j.Config.Schedule = &sched
		nz := *j.Config.Noise
		j.Config.Noise = &nz
		mutate(&j)
		h, err := wire.JobHash(j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestHashCanonicalDefaults: elided defaults hash like their explicit
// forms — the semantic identity the result cache relies on.
func TestHashCanonicalDefaults(t *testing.T) {
	explicit := wire.Job{
		Rounds: 100,
		Config: wire.Config{
			Ants:      50,
			Algorithm: "ant",
			Init:      "idle",
			Gamma:     1.0 / 16,
			Seed:      1,
			Noise:     &wire.Noise{Kind: "sigmoid", GammaStar: 1.0 / 32},
			Shards:    1,
		},
	}
	elided := wire.Job{
		Rounds: 100,
		Config: wire.Config{Ants: 50, Shards: 1},
	}
	he, err := wire.JobHash(explicit)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := wire.JobHash(elided)
	if err != nil {
		t.Fatal(err)
	}
	if he != hd {
		t.Fatalf("defaults are not canonical: %s vs %s", he, hd)
	}
}

// TestHashCanonicalNoiseChanges: NoiseChanges entries resolve defaults
// exactly like the top-level Noise (buildNoiseModel treats them the
// same), so eliding gamma_star = γ/2 or grey_strategy = "inverted"
// inside a noise_changes entry must not change the hash.
func TestHashCanonicalNoiseChanges(t *testing.T) {
	job := func(changes []wire.NoiseChange) wire.Job {
		return wire.Job{
			Rounds: 50,
			Config: wire.Config{
				Ants: 40, Demands: []int{5}, Gamma: 0.04, Shards: 1,
				NoiseChanges: changes,
			},
		}
	}
	pairs := [][2][]wire.NoiseChange{
		{
			{{At: 10, Noise: wire.Noise{Kind: "sigmoid"}}},
			{{At: 10, Noise: wire.Noise{Kind: "sigmoid", GammaStar: 0.02}}},
		},
		{
			{{At: 10, Noise: wire.Noise{Kind: "adversarial", GammaAd: 0.05}}},
			{{At: 10, Noise: wire.Noise{Kind: "adversarial", GammaAd: 0.05, GreyStrategy: "inverted"}}},
		},
	}
	for i, p := range pairs {
		ha, err := wire.JobHash(job(p[0]))
		if err != nil {
			t.Fatal(err)
		}
		hb, err := wire.JobHash(job(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if ha != hb {
			t.Errorf("pair %d: elided noise_changes defaults changed the hash", i)
		}
	}
}

// TestHashDoesNotMutateInput: canonicalization happens on a copy — the
// submitted document must re-encode byte-identically after hashing
// (regression: NoiseChanges aliased the caller's backing array).
func TestHashDoesNotMutateInput(t *testing.T) {
	j := wire.Job{
		Rounds: 50,
		Config: wire.Config{
			Ants:    40,
			Demands: []int{5},
			NoiseChanges: []wire.NoiseChange{
				{At: 10, Noise: wire.Noise{GammaStar: 0.02}}, // Kind elided
			},
		},
	}
	s := wire.Sweep{Version: wire.V1, Jobs: []wire.Job{j}}
	before, err := wire.MarshalSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.SweepHash(s); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.JobHash(s.Jobs[0]); err != nil {
		t.Fatal(err)
	}
	after, err := wire.MarshalSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("hashing mutated the document:\nbefore: %s\nafter:  %s", before, after)
	}
	if s.Jobs[0].Config.NoiseChanges[0].Noise.Kind != "" {
		t.Fatalf("hashing wrote through NoiseChanges: %+v", s.Jobs[0].Config.NoiseChanges[0])
	}
}

// TestSweepJobsRoundTrip: a sweeprun grid crosses FromJobs/ToJobs and
// the rebuilt jobs run to the same reports.
func TestSweepJobsRoundTrip(t *testing.T) {
	sin, err := scenario.NewSinusoid(demand.Vector{40, 60}, []float64{0.3, 0.3}, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sin, 220)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []sweeprun.Job
	for seed := uint64(1); seed <= 3; seed++ {
		jobs = append(jobs, sweeprun.Job{
			Meta: []string{"seed", "s", "frozen-sinusoid", "x"},
			Config: taskalloc.Config{
				Ants: 250, Demand: frozen, Seed: seed, Shards: 1,
				Noise: taskalloc.SigmoidNoise(0.04),
			},
			Rounds: 200,
		})
	}
	sweep, err := wire.FromJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := wire.MarshalSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	sweep2, err := wire.DecodeSweep(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	jobs2, err := wire.ToJobs(sweep2)
	if err != nil {
		t.Fatal(err)
	}
	want := sweeprun.Run(jobs, sweeprun.Options{Workers: 1})
	got := sweeprun.Run(jobs2, sweeprun.Options{Workers: 1})
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Report, got[i].Report) {
			t.Fatalf("job %d report diverged:\n want %+v\n got %+v", i, want[i].Report, got[i].Report)
		}
	}
}

// TestDecodeRejects: versioning and strictness.
func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         ``,
		"no version":    `{"jobs":[]}`,
		"bad version":   `{"version":"taskalloc/v0","jobs":[]}`,
		"unknown field": `{"version":"taskalloc/v1","jobs":[],"extra":1}`,
		"unknown job":   `{"version":"taskalloc/v1","jobs":[{"rounds":1,"config":{"ants":1},"wat":2}]}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := wire.DecodeSweep(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestScheduleDecodeRejects: constructor validation reaches the codec,
// and the frozen horizon is bounded.
func TestScheduleDecodeRejects(t *testing.T) {
	bad := []wire.Schedule{
		{},
		{Kind: "wat"},
		{Kind: "static"},
		{Kind: "static", Base: []int{0}},
		{Kind: "sinusoid", Base: []int{10}, Amp: []float64{0.5}, Period: 0},
		{Kind: "sinusoid", Base: []int{10}, Amp: []float64{1.5}, Period: 10},
		{Kind: "burst", Base: []int{10}, Peak: []int{20, 20}, Len: 1, Every: 10},
		{Kind: "randomwalk", Base: []int{10}, Step: 0, Every: 1, Min: []int{1}, Max: []int{20}},
		{Kind: "markov"},
		{Kind: "markov", Regimes: [][]int{{10}}, P: [][]float64{{0.5}}, Dwell: 1},
		{Kind: "trace"},
		{Kind: "trace", When: []uint64{5, 5}, Vectors: [][]int{{1}, {2}}},
		{Kind: "frozen", When: []uint64{0}, Vectors: [][]int{{5}}, Horizon: wire.MaxFrozenHorizon + 1},
		{Kind: "frozen", When: []uint64{0, 50}, Vectors: [][]int{{5}, {6}}, Horizon: 10},
		{Kind: "compose"},
		{Kind: "compose", When: []uint64{3}, Parts: []wire.Schedule{{Kind: "static", Base: []int{5}}}},
		{Kind: "compose", When: []uint64{0}, Parts: []wire.Schedule{{Kind: "wat"}}},
		{Kind: "superpose"},
		{Kind: "superpose", Parts: []wire.Schedule{{Kind: "static", Base: []int{1}}, {Kind: "static", Base: []int{1, 2}}}},
		{Kind: "modulate"},
		{Kind: "modulate", Scale: []float64{0}, Inner: &wire.Schedule{Kind: "static", Base: []int{5}}},
		{Kind: "stablenoise"},
		{Kind: "stablenoise", Alpha: 3, Sigma: 1, Every: 1, Inner: &wire.Schedule{Kind: "static", Base: []int{5}}},
	}
	for i, s := range bad {
		if _, err := s.ToSchedule(); err == nil {
			t.Errorf("case %d (%q) accepted", i, s.Kind)
		}
	}
}

// TestScheduleDepthCap: nesting beyond MaxScheduleDepth is rejected
// instead of recursed into (the fuzz seed for hostile documents).
func TestScheduleDepthCap(t *testing.T) {
	deep := wire.Schedule{Kind: "static", Base: []int{5}}
	for i := 0; i < wire.MaxScheduleDepth+1; i++ {
		inner := deep
		deep = wire.Schedule{Kind: "modulate", Scale: []float64{1}, Inner: &inner}
	}
	if _, err := deep.ToSchedule(); err == nil {
		t.Fatal("over-deep nesting accepted")
	}
	// One level under the cap still decodes.
	ok := wire.Schedule{Kind: "static", Base: []int{5}}
	for i := 0; i < wire.MaxScheduleDepth-1; i++ {
		inner := ok
		ok = wire.Schedule{Kind: "modulate", Scale: []float64{1}, Inner: &inner}
	}
	if _, err := ok.ToSchedule(); err != nil {
		t.Fatalf("in-bounds nesting rejected: %v", err)
	}
}

// TestSeedCorpusValid: every checked-in fuzz seed document decodes,
// converts to runnable jobs, and hashes stably across a re-encode.
func TestSeedCorpusValid(t *testing.T) {
	for _, doc := range seedCorpus(t) {
		t.Run(doc.name, func(t *testing.T) {
			s, err := wire.DecodeSweep(bytes.NewReader(doc.data))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.ToJobs(s); err != nil {
				t.Fatal(err)
			}
			h1, err := wire.SweepHash(s)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := wire.MarshalSweep(s)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := wire.DecodeSweep(bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			h2, err := wire.SweepHash(s2)
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("hash unstable across re-encode: %s vs %s", h1, h2)
			}
		})
	}
}
