package sweeprun

import (
	"encoding/json"
	"math"
)

// Stat JSON: ensemble statistics legitimately contain NaN (the Std of
// a single seed, quantiles of an empty set), which encoding/json
// rejects outright. On the wire those become null, and null decodes
// back to NaN, so the service's summaries round-trip instead of
// aborting the whole response at the first degenerate stat.

type statJSON struct {
	Mean *float64 `json:"mean"`
	Std  *float64 `json:"std"`
	Min  *float64 `json:"min"`
	Max  *float64 `json:"max"`
	P25  *float64 `json:"p25"`
	P50  *float64 `json:"p50"`
	P75  *float64 `json:"p75"`
	P90  *float64 `json:"p90"`
}

func finitePtr(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func ptrFloat(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON implements json.Marshaler.
func (s Stat) MarshalJSON() ([]byte, error) {
	return json.Marshal(statJSON{
		Mean: finitePtr(s.Mean), Std: finitePtr(s.Std),
		Min: finitePtr(s.Min), Max: finitePtr(s.Max),
		P25: finitePtr(s.P25), P50: finitePtr(s.P50),
		P75: finitePtr(s.P75), P90: finitePtr(s.P90),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Stat) UnmarshalJSON(data []byte) error {
	var raw statJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*s = Stat{
		Mean: ptrFloat(raw.Mean), Std: ptrFloat(raw.Std),
		Min: ptrFloat(raw.Min), Max: ptrFloat(raw.Max),
		P25: ptrFloat(raw.P25), P50: ptrFloat(raw.P50),
		P75: ptrFloat(raw.P75), P90: ptrFloat(raw.P90),
	}
	return nil
}
