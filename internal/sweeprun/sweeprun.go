// Package sweeprun is the multi-simulation batch runner: it executes an
// ensemble of fully-resolved simulation configurations — a parameter
// sweep's (value × seed × scenario) grid — concurrently on a bounded
// worker group whose engines share one persistent shard worker pool
// across engine lifetimes, and streams per-job reports through a
// deterministic, order-independent collector.
//
// Determinism contract: each job's trajectory is a function of its
// (Config.Seed, Config.Shards) only, and results are emitted in job
// order regardless of which worker finishes when — so any output built
// from the emission stream is byte-identical for every worker count,
// including 1. The package tests and cmd/sweep's tests enforce this.
//
// Schedules: jobs may share one demand.Schedule only if it is safe for
// concurrent readers. The generative families in internal/scenario
// memoize their sample paths and are NOT safe to share — freeze them
// first (scenario.Freeze) and hand every job the frozen snapshot.
package sweeprun

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"taskalloc"
	"taskalloc/internal/stats"
)

// Job is one fully-resolved simulation: the configuration to run, the
// horizon, and caller-defined row metadata (e.g. the swept parameter
// name and value) carried through to the Result untouched.
type Job struct {
	// Meta is opaque caller metadata echoed on the Result.
	Meta []string
	// Config is the complete simulation configuration. If Config.Pool is
	// nil the runner injects its shared worker pool.
	Config taskalloc.Config
	// Rounds is the simulation horizon.
	Rounds int
	// Observe, if non-nil, supplies this job's per-round observer (e.g.
	// a trajectory recorder); it receives the built simulation before
	// the run starts. Runtime-only: the wire codec does not carry it.
	Observe func(sim *taskalloc.Simulation) taskalloc.Observer
}

// Result is one job's outcome, emitted in job order.
type Result struct {
	// Index is the job's position in the input slice.
	Index int
	// Job echoes the input job (Meta, Config, Rounds).
	Job Job
	// Report holds the simulation's metrics; zero when Err != nil.
	Report taskalloc.Report
	// Err is the configuration/validation error, if the job could not
	// run. Failed jobs still occupy their emission slot.
	Err error
}

// Options tunes a run.
type Options struct {
	// Workers bounds the number of simulations in flight; <= 0 means
	// GOMAXPROCS. Workers = 1 runs the ensemble serially (the baseline
	// the byte-identity contract is stated against).
	Workers int
	// Pool, if non-nil, is the shared shard worker reservoir injected
	// into every job whose Config.Pool is nil. When nil, the runner
	// creates one for the duration of the call and closes it on return.
	Pool *taskalloc.WorkerPool
	// Gate, if non-nil, is a counting semaphore acquired around every
	// job's execution: at most cap(Gate) simulations run at once across
	// every Stream/Run call sharing the channel. It is how the
	// simulation service bounds total load across concurrent requests;
	// emission order (and therefore output bytes) is unaffected.
	Gate chan struct{}
	// OnTiming, if non-nil, receives one Timing per job as its execution
	// finishes. It is called from worker goroutines (it must be safe for
	// concurrent use) and never affects results, emission order, or
	// output bytes — it is the measurement hook the simulation service
	// feeds its per-stage latency histograms from. Nil costs nothing.
	OnTiming func(Timing)
}

// Timing is one job's execution timing: how long the job waited for
// the admission gate (zero when Options.Gate is nil or uncontended)
// and how long the simulation itself ran.
type Timing struct {
	// Index is the job's position in the input slice.
	Index int
	// QueueWait is the time spent blocked acquiring Options.Gate.
	QueueWait time.Duration
	// Run is the simulation's wall-clock execution time.
	Run time.Duration
}

// Ordered runs fn(0..n-1) on at most workers goroutines and invokes
// emit(i) in strict index order: emit(i) fires only once fn(0..i) have
// all returned, from under a lock, so emitters may write shared output
// (a CSV writer, os.Stdout) without further synchronization. It is the
// deterministic collector the typed runners are built on, exported for
// callers that orchestrate non-simulation work (cmd/experiments).
func Ordered(n, workers int, fn func(i int), emit func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
			if emit != nil {
				emit(i)
			}
		}
		return
	}
	var (
		next   atomic.Int64
		mu     sync.Mutex
		done   = make([]bool, n)
		cursor int
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
				mu.Lock()
				done[i] = true
				for cursor < n && done[cursor] {
					if emit != nil {
						emit(cursor)
					}
					cursor++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// Stream executes the jobs and calls emit once per job, in job order, as
// completed prefixes become available. It returns the full result slice
// (indexed like jobs). emit may be nil.
func Stream(jobs []Job, opts Options, emit func(Result)) []Result {
	results := make([]Result, len(jobs))
	pool := opts.Pool
	if pool == nil {
		pool = taskalloc.NewWorkerPool()
		defer pool.Close()
	}
	Ordered(len(jobs), opts.Workers, func(i int) {
		var queued time.Time
		if opts.OnTiming != nil {
			queued = time.Now()
		}
		if opts.Gate != nil {
			opts.Gate <- struct{}{}
			defer func() { <-opts.Gate }()
		}
		if opts.OnTiming == nil {
			results[i] = runJob(i, jobs[i], pool)
			return
		}
		started := time.Now()
		results[i] = runJob(i, jobs[i], pool)
		opts.OnTiming(Timing{Index: i, QueueWait: started.Sub(queued), Run: time.Since(started)})
	}, func(i int) {
		if emit != nil {
			emit(results[i])
		}
	})
	return results
}

// Run executes the jobs and returns the results in job order.
func Run(jobs []Job, opts Options) []Result { return Stream(jobs, opts, nil) }

// runJob executes one simulation end to end, returning the engine's
// worker set to the shared pool via Close.
func runJob(i int, job Job, pool *taskalloc.WorkerPool) Result {
	res := Result{Index: i, Job: job}
	cfg := job.Config
	if cfg.Pool == nil {
		cfg.Pool = pool
	}
	sim, err := taskalloc.New(cfg)
	if err != nil {
		res.Err = err
		return res
	}
	defer sim.Close()
	var obs taskalloc.Observer
	if job.Observe != nil {
		obs = job.Observe(sim)
	}
	sim.Run(job.Rounds, obs)
	res.Report = sim.Report()
	return res
}

// Stat summarizes one metric over an ensemble.
type Stat struct {
	Mean, Std, Min, Max float64
	P25, P50, P75, P90  float64
}

// NewStat computes a Stat over xs (NaNs propagate; empty gives NaNs).
func NewStat(xs []float64) Stat {
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	return Stat{
		Mean: s.Mean(), Std: s.Std(), Min: s.Min(), Max: s.Max(),
		P25: stats.Quantile(xs, 0.25), P50: stats.Quantile(xs, 0.50),
		P75: stats.Quantile(xs, 0.75), P90: stats.Quantile(xs, 0.90),
	}
}

// Summary is the ensemble aggregate over a result set: the paper's
// headline quantities as regret bands rather than single trajectories.
type Summary struct {
	// Jobs counts the results aggregated; Failed the ones skipped for a
	// non-nil Err.
	Jobs, Failed int
	// AvgRegret, Closeness, and SwitchesPerRound summarize the per-job
	// Report fields of the same names (Switches normalized by Rounds).
	AvgRegret        Stat
	Closeness        Stat
	SwitchesPerRound Stat
}

// Summarize aggregates results (in index order, so the output is
// deterministic). Failed jobs are counted and excluded.
func Summarize(results []Result) Summary {
	var sum Summary
	regret := make([]float64, 0, len(results))
	closeness := make([]float64, 0, len(results))
	switches := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			sum.Failed++
			continue
		}
		sum.Jobs++
		regret = append(regret, r.Report.AvgRegret)
		closeness = append(closeness, r.Report.Closeness)
		rounds := float64(r.Job.Rounds)
		if rounds <= 0 {
			rounds = 1
		}
		switches = append(switches, float64(r.Report.Switches)/rounds)
	}
	sum.AvgRegret = NewStat(regret)
	sum.Closeness = NewStat(closeness)
	sum.SwitchesPerRound = NewStat(switches)
	return sum
}
