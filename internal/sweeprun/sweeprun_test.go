package sweeprun

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
)

// grid builds a values × seeds job grid over a shared (frozen) schedule.
func grid(t *testing.T, values []float64, seeds int, rounds int) []Job {
	t.Helper()
	sin, err := scenario.NewSinusoid(demand.Vector{80, 120}, []float64{0.3, 0.3}, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sin, uint64(rounds)+1)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, v := range values {
		for s := 1; s <= seeds; s++ {
			jobs = append(jobs, Job{
				Meta: []string{"gamma", fmt.Sprint(v), fmt.Sprint(s)},
				Config: taskalloc.Config{
					Ants:   800,
					Demand: frozen,
					Gamma:  v,
					Noise:  taskalloc.SigmoidNoise(v / 2),
					Seed:   uint64(s),
					Shards: 2,
					BurnIn: uint64(rounds) / 2,
				},
				Rounds: rounds,
			})
		}
	}
	return jobs
}

// render serializes an emission stream the way cmd/sweep does, so the
// byte-identity contract is tested end to end.
func render(results []Result) []byte {
	var buf bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&buf, "%v,%d,%.17g,%.17g,%d,%d,%v\n",
			r.Job.Meta, r.Index, r.Report.AvgRegret, r.Report.Closeness,
			r.Report.PeakRegret, r.Report.Switches, r.Err)
	}
	return buf.Bytes()
}

// TestStreamByteIdenticalAcrossWorkers is the tentpole's determinism
// contract: the emission stream (order AND content) must be identical
// for 1, 2, 3, and 8 workers, generative scenario included.
func TestStreamByteIdenticalAcrossWorkers(t *testing.T) {
	jobs := grid(t, []float64{0.02, 0.04, 0.0625}, 3, 240)

	var baseline []byte
	for _, workers := range []int{1, 2, 3, 8} {
		var emitted []Result
		results := Stream(jobs, Options{Workers: workers}, func(r Result) {
			emitted = append(emitted, r)
		})
		if len(emitted) != len(jobs) || len(results) != len(jobs) {
			t.Fatalf("workers=%d: emitted %d results for %d jobs", workers, len(emitted), len(jobs))
		}
		for i, r := range emitted {
			if r.Index != i {
				t.Fatalf("workers=%d: emission %d carries index %d", workers, i, r.Index)
			}
		}
		got := render(emitted)
		if workers == 1 {
			baseline = got
			continue
		}
		if !bytes.Equal(got, baseline) {
			t.Fatalf("workers=%d: emission stream differs from serial baseline", workers)
		}
	}
}

// TestOrderedEmitsPrefixesInOrder: emit(i) must fire exactly once per
// index, in index order, even under maximal worker counts.
func TestOrderedEmitsPrefixesInOrder(t *testing.T) {
	const n = 100
	ran := make([]bool, n)
	var order []int
	Ordered(n, 16, func(i int) { ran[i] = true }, func(i int) {
		if !ran[i] {
			t.Errorf("emit(%d) before fn(%d)", i, i)
		}
		order = append(order, i)
	})
	if len(order) != n {
		t.Fatalf("emitted %d of %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emission %d was index %d", i, got)
		}
	}
	// Degenerate inputs must not hang or panic.
	Ordered(0, 4, func(int) {}, nil)
	Ordered(3, 0, func(int) {}, nil)
}

// TestRunSharedPoolAndErrors: invalid jobs surface as per-job errors in
// their emission slot without disturbing their neighbors, and a caller
// pool is honored.
func TestRunSharedPoolAndErrors(t *testing.T) {
	pool := taskalloc.NewWorkerPool()
	defer pool.Close()
	jobs := grid(t, []float64{0.05}, 2, 120)
	bad := Job{Config: taskalloc.Config{Ants: -1}, Rounds: 10}
	jobs = append(jobs[:1], append([]Job{bad}, jobs[1:]...)...)

	results := Run(jobs, Options{Workers: 4, Pool: pool})
	if results[1].Err == nil {
		t.Fatal("invalid job must carry its error")
	}
	for i, r := range results {
		if i == 1 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Report.Rounds != 120 {
			t.Fatalf("job %d ran %d rounds", i, r.Report.Rounds)
		}
	}

	sum := Summarize(results)
	if sum.Jobs != 2 || sum.Failed != 1 {
		t.Fatalf("Summarize counted %d ok / %d failed", sum.Jobs, sum.Failed)
	}
	if math.IsNaN(sum.AvgRegret.Mean) || sum.AvgRegret.Min > sum.AvgRegret.Max {
		t.Fatalf("implausible aggregate %+v", sum.AvgRegret)
	}
	if sum.AvgRegret.P25 > sum.AvgRegret.P50 || sum.AvgRegret.P50 > sum.AvgRegret.P90 {
		t.Fatalf("quantiles out of order: %+v", sum.AvgRegret)
	}
}

// TestSummarizeDeterministic: aggregates are a pure function of the
// result slice (fixed iteration order), so two runs agree exactly.
func TestSummarizeDeterministic(t *testing.T) {
	jobs := grid(t, []float64{0.03, 0.06}, 2, 120)
	a := Summarize(Run(jobs, Options{Workers: 8}))
	b := Summarize(Run(jobs, Options{Workers: 1}))
	if a != b {
		t.Fatalf("aggregate diverged across worker counts:\n%+v\n%+v", a, b)
	}
}
