package sweeprun

import (
	"encoding/csv"
	"fmt"
	"io"

	"taskalloc"
)

// This file is the canonical CSV rendering of a sweep grid. cmd/sweep
// and the simulation service's format=csv responses both emit through
// these helpers, so "a sweep over HTTP is byte-identical to cmd/sweep
// on the same grid" is a property of shared code, not of two renderers
// kept in sync by hand. Rows assume the cmd/sweep Meta convention
// (param, value, scenario, seed).

// CSVOptions tunes WriteCSV's output.
type CSVOptions struct {
	// Aggregate appends the per-value ensemble-statistics block,
	// grouping consecutive rows in runs of Repeat seeds.
	Aggregate bool
	Repeat    int
}

// CSVHeader returns the per-row header.
func CSVHeader() []string {
	return []string{"param", "value", "scenario", "seed", "avg_regret", "std_regret",
		"closeness", "gamma_star", "peak_regret", "switches_per_round"}
}

// CSVRow renders one successful cell: the job's Meta columns followed
// by the report metrics (switches normalized by the job's rounds).
func CSVRow(meta []string, rep taskalloc.Report, rounds int) []string {
	return append(append([]string(nil), meta...),
		fmt.Sprintf("%.6g", rep.AvgRegret),
		fmt.Sprintf("%.6g", rep.StdRegret),
		fmt.Sprintf("%.6g", rep.Closeness),
		fmt.Sprintf("%.6g", rep.GammaStar),
		fmt.Sprint(rep.PeakRegret),
		fmt.Sprintf("%.6g", float64(rep.Switches)/float64(rounds)),
	)
}

// WriteCSV executes the grid and streams its CSV to out: the header,
// then one row per successful job in job order (failed jobs emit no
// row), then the aggregate block if requested. It returns the first
// job error, if any, after the stream completes — matching cmd/sweep's
// long-standing behavior of finishing the healthy rows before failing.
// The output is a pure function of (jobs, csvOpts): the worker count
// never changes a byte.
func WriteCSV(out io.Writer, jobs []Job, opts Options, csvOpts CSVOptions) error {
	w := csv.NewWriter(out)
	_ = w.Write(CSVHeader())

	var jobErr error
	results := Stream(jobs, opts, func(r Result) {
		if r.Err != nil {
			if jobErr == nil {
				jobErr = fmt.Errorf("config for %s: %v", describeJob(r.Job), r.Err)
			}
			return
		}
		_ = w.Write(CSVRow(r.Job.Meta, r.Report, r.Job.Rounds))
	})
	if jobErr == nil && csvOpts.Aggregate {
		WriteAggregates(w, results, csvOpts.Repeat)
	}
	w.Flush()
	if jobErr != nil {
		return jobErr
	}
	// Surface the csv.Writer's sticky I/O error (disk full, closed
	// pipe): a truncated CSV must not look like a completed sweep.
	return w.Error()
}

// describeJob names a job in error messages by its Meta convention.
func describeJob(j Job) string {
	if len(j.Meta) >= 2 {
		return fmt.Sprintf("%s=%s", j.Meta[0], j.Meta[1])
	}
	return fmt.Sprintf("job %v", j.Meta)
}

// WriteAggregates appends one ensemble-statistics block: a second
// header and one row per swept value, aggregating that value's run of
// repeat consecutive seeds. Failed cells are counted out by Summarize.
func WriteAggregates(w *csv.Writer, results []Result, repeat int) {
	if repeat < 1 {
		repeat = 1
	}
	_ = w.Write([]string{"param", "value", "scenario", "seeds",
		"avg_regret_mean", "avg_regret_std", "avg_regret_p50", "avg_regret_p90",
		"closeness_mean", "closeness_std", "switches_per_round_mean", "switches_per_round_std"})
	for lo := 0; lo < len(results); lo += repeat {
		hi := lo + repeat
		if hi > len(results) {
			hi = len(results)
		}
		group := results[lo:hi]
		sum := Summarize(group)
		meta := group[0].Job.Meta
		param, value, family := "", "", ""
		if len(meta) > 0 {
			param = meta[0]
		}
		if len(meta) > 1 {
			value = meta[1]
		}
		if len(meta) > 2 {
			family = meta[2]
		}
		_ = w.Write([]string{
			param, value, family, fmt.Sprint(sum.Jobs),
			fmt.Sprintf("%.6g", sum.AvgRegret.Mean),
			fmt.Sprintf("%.6g", sum.AvgRegret.Std),
			fmt.Sprintf("%.6g", sum.AvgRegret.P50),
			fmt.Sprintf("%.6g", sum.AvgRegret.P90),
			fmt.Sprintf("%.6g", sum.Closeness.Mean),
			fmt.Sprintf("%.6g", sum.Closeness.Std),
			fmt.Sprintf("%.6g", sum.SwitchesPerRound.Mean),
			fmt.Sprintf("%.6g", sum.SwitchesPerRound.Std),
		})
	}
}
