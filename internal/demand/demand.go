// Package demand models task demand vectors: the per-task worker counts
// the colony should converge to. It provides generators for the workload
// families used by the experiments, validation of the paper's
// Assumptions 2.1, and schedules for time-varying demands (the
// self-stabilization experiments).
package demand

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"taskalloc/internal/rng"
)

// Vector is a fixed demand vector d(1..k). Entries are positive integers.
type Vector []int

// Sum returns the total demand across all tasks.
func (v Vector) Sum() int {
	total := 0
	for _, d := range v {
		total += d
	}
	return total
}

// Min returns the smallest entry. It panics on an empty vector.
func (v Vector) Min() int {
	if len(v) == 0 {
		panic("demand: Min of empty vector")
	}
	m := v[0]
	for _, d := range v[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the largest entry. It panics on an empty vector.
func (v Vector) Max() int {
	if len(v) == 0 {
		panic("demand: Max of empty vector")
	}
	m := v[0]
	for _, d := range v[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports element-wise equality.
func (v Vector) Equal(o Vector) bool { return slices.Equal(v, o) }

// Validate checks structural sanity: non-empty and all entries positive.
func (v Vector) Validate() error {
	if len(v) == 0 {
		return errors.New("demand: empty vector")
	}
	for j, d := range v {
		if d <= 0 {
			return fmt.Errorf("demand: task %d has non-positive demand %d", j, d)
		}
	}
	return nil
}

// CheckAssumptions verifies the paper's Assumptions 2.1 for a colony of n
// ants: every demand is at least cLog*ln(n) and the demand sum is at most
// n/2. cLog tunes the "Ω(log n)" constant; the paper's proofs implicitly
// need d(j) = Θ(log n / γ²), which callers with small γ should check via
// CheckConcentration instead.
func (v Vector) CheckAssumptions(n int, cLog float64) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return errors.New("demand: non-positive colony size")
	}
	minDemand := cLog * math.Log(float64(n))
	for j, d := range v {
		if float64(d) < minDemand {
			return fmt.Errorf("demand: task %d demand %d below %.1f = %.1f*ln(%d)",
				j, d, minDemand, cLog, n)
		}
	}
	if s := v.Sum(); s > n/2 {
		return fmt.Errorf("demand: sum %d exceeds n/2 = %d", s, n/2)
	}
	return nil
}

// CheckConcentration verifies the stronger quantitative requirement used
// by the concentration arguments (Claim 4.1): d(j) >= cConc*log(n)/gamma²
// for every task. The paper uses cConc = 120*max(cs², cd²) with its
// algorithm constants; simulations are well-behaved far below that, so the
// constant is a parameter.
func (v Vector) CheckConcentration(n int, gamma, cConc float64) error {
	if gamma <= 0 || gamma > 1 {
		return fmt.Errorf("demand: gamma %v outside (0, 1]", gamma)
	}
	need := cConc * math.Log(float64(n)) / (gamma * gamma)
	for j, d := range v {
		if float64(d) < need {
			return fmt.Errorf("demand: task %d demand %d below concentration bound %.1f",
				j, d, need)
		}
	}
	return nil
}

// Uniform returns k tasks each with demand d.
func Uniform(k, d int) Vector {
	if k <= 0 || d <= 0 {
		panic("demand: Uniform needs positive k and d")
	}
	v := make(Vector, k)
	for j := range v {
		v[j] = d
	}
	return v
}

// Split divides a total demand across k tasks as evenly as possible
// (the first total%k tasks get one extra ant).
func Split(k, total int) Vector {
	if k <= 0 || total < k {
		panic("demand: Split needs k >= 1 and total >= k")
	}
	base := total / k
	rem := total % k
	v := make(Vector, k)
	for j := range v {
		v[j] = base
		if j < rem {
			v[j]++
		}
	}
	return v
}

// Proportional builds a vector with entries proportional to the given
// positive ratios, scaled so the sum is close to total (>= k, every entry
// >= 1, exact total preserved by adjusting the largest entry).
func Proportional(ratios []float64, total int) Vector {
	if len(ratios) == 0 {
		panic("demand: Proportional with no ratios")
	}
	if total < len(ratios) {
		panic("demand: Proportional total smaller than task count")
	}
	sum := 0.0
	for _, w := range ratios {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("demand: Proportional needs positive finite ratios")
		}
		sum += w
	}
	v := make(Vector, len(ratios))
	assigned := 0
	for j, w := range ratios {
		d := int(math.Round(w / sum * float64(total)))
		if d < 1 {
			d = 1
		}
		v[j] = d
		assigned += d
	}
	// Fix rounding drift on the largest entry, keeping it >= 1.
	largest := 0
	for j := range v {
		if v[j] > v[largest] {
			largest = j
		}
	}
	v[largest] += total - assigned
	if v[largest] < 1 {
		v[largest] = 1
	}
	return v
}

// PowerLaw returns k demands following d(j) ~ (j+1)^(-alpha), scaled to
// sum approximately to total. alpha = 0 gives a uniform split; larger
// alpha concentrates demand on low-index tasks. Random tie-breaking is
// not needed; the generator is deterministic.
func PowerLaw(k int, alpha float64, total int) Vector {
	if k <= 0 {
		panic("demand: PowerLaw needs positive k")
	}
	ratios := make([]float64, k)
	for j := range ratios {
		ratios[j] = math.Pow(float64(j+1), -alpha)
	}
	return Proportional(ratios, total)
}

// LogScaled returns k demands of c*ln(n) each — the minimal regime
// permitted by Assumptions 2.1 — useful for stress-testing the
// concentration boundary.
func LogScaled(k, n int, c float64) Vector {
	d := int(math.Ceil(c * math.Log(float64(n))))
	if d < 1 {
		d = 1
	}
	return Uniform(k, d)
}

// Random returns k demands drawn uniformly from [min, max], re-rolled with
// the caller's RNG; useful for randomized property tests.
func Random(r *rng.Rng, k, min, max int) Vector {
	if k <= 0 || min <= 0 || max < min {
		panic("demand: Random needs k >= 1 and 0 < min <= max")
	}
	v := make(Vector, k)
	for j := range v {
		v[j] = min + r.Intn(max-min+1)
	}
	return v
}

// Schedule maps a round number to the demand vector in force during that
// round. It is how the self-stabilization experiments inject demand
// changes. Implementations must return vectors of a fixed length.
type Schedule interface {
	// At returns the demand vector in force at round t (t >= 0).
	// Callers must not mutate the returned slice.
	At(t uint64) Vector
	// Tasks returns the (constant) number of tasks.
	Tasks() int
}

// Static is a Schedule that never changes.
type Static struct{ V Vector }

// At implements Schedule.
func (s Static) At(uint64) Vector { return s.V }

// Tasks implements Schedule.
func (s Static) Tasks() int { return len(s.V) }

// Step is a Schedule with piecewise-constant demands: Changes[i] takes
// effect at round When[i]. Rounds before the first change use Initial.
type Step struct {
	Initial Vector
	When    []uint64
	Changes []Vector
}

// NewStep builds a Step schedule, validating that change points are
// strictly increasing and all vectors share the initial vector's length.
func NewStep(initial Vector, when []uint64, changes []Vector) (*Step, error) {
	if len(when) != len(changes) {
		return nil, errors.New("demand: Step when/changes length mismatch")
	}
	for i := range when {
		if i > 0 && when[i] <= when[i-1] {
			return nil, errors.New("demand: Step change points must be strictly increasing")
		}
		if len(changes[i]) != len(initial) {
			return nil, fmt.Errorf("demand: Step change %d has %d tasks, want %d",
				i, len(changes[i]), len(initial))
		}
		if err := changes[i].Validate(); err != nil {
			return nil, err
		}
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	return &Step{Initial: initial, When: when, Changes: changes}, nil
}

// At implements Schedule.
func (s *Step) At(t uint64) Vector {
	v := s.Initial
	for i, w := range s.When {
		if t >= w {
			v = s.Changes[i]
		} else {
			break
		}
	}
	return v
}

// Tasks implements Schedule.
func (s *Step) Tasks() int { return len(s.Initial) }
