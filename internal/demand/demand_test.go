package demand

import (
	"math"
	"testing"
	"testing/quick"

	"taskalloc/internal/rng"
)

func TestVectorSumMinMax(t *testing.T) {
	v := Vector{5, 2, 9, 4}
	if v.Sum() != 20 {
		t.Fatalf("Sum = %d, want 20", v.Sum())
	}
	if v.Min() != 2 {
		t.Fatalf("Min = %d, want 2", v.Min())
	}
	if v.Max() != 9 {
		t.Fatalf("Max = %d, want 9", v.Max())
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestValidate(t *testing.T) {
	if err := (Vector{}).Validate(); err == nil {
		t.Fatal("empty vector validated")
	}
	if err := (Vector{3, 0}).Validate(); err == nil {
		t.Fatal("zero entry validated")
	}
	if err := (Vector{3, -1}).Validate(); err == nil {
		t.Fatal("negative entry validated")
	}
	if err := (Vector{3, 1}).Validate(); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
}

func TestCheckAssumptions(t *testing.T) {
	n := 1000
	// ln(1000) ~ 6.9; with cLog = 1, demands >= 7 pass.
	ok := Vector{100, 200, 100}
	if err := ok.CheckAssumptions(n, 1); err != nil {
		t.Fatalf("valid assumptions rejected: %v", err)
	}
	tooSmall := Vector{3, 100}
	if err := tooSmall.CheckAssumptions(n, 1); err == nil {
		t.Fatal("sub-logarithmic demand accepted")
	}
	tooBig := Vector{400, 200} // sum 600 > 500 = n/2
	if err := tooBig.CheckAssumptions(n, 1); err == nil {
		t.Fatal("demand sum above n/2 accepted")
	}
	if err := ok.CheckAssumptions(0, 1); err == nil {
		t.Fatal("non-positive n accepted")
	}
}

func TestCheckConcentration(t *testing.T) {
	v := Vector{1000}
	if err := v.CheckConcentration(1000, 0.1, 1); err != nil {
		t.Fatalf("1000 >= ln(1000)/0.01 ~ 691 should pass: %v", err)
	}
	if err := v.CheckConcentration(1000, 0.05, 1); err == nil {
		t.Fatal("1000 < ln(1000)/0.0025 ~ 2763 should fail")
	}
	if err := v.CheckConcentration(1000, 0, 1); err == nil {
		t.Fatal("gamma = 0 accepted")
	}
	if err := v.CheckConcentration(1000, 1.5, 1); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
}

func TestUniform(t *testing.T) {
	v := Uniform(4, 25)
	if len(v) != 4 || v.Sum() != 100 || v.Min() != 25 || v.Max() != 25 {
		t.Fatalf("Uniform(4, 25) = %v", v)
	}
}

func TestSplitExact(t *testing.T) {
	f := func(kRaw, totRaw uint16) bool {
		k := int(kRaw%20) + 1
		total := k + int(totRaw%10000)
		v := Split(k, total)
		if v.Sum() != total {
			return false
		}
		return v.Max()-v.Min() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalPreservesTotal(t *testing.T) {
	v := Proportional([]float64{1, 2, 3, 4}, 1000)
	if v.Sum() != 1000 {
		t.Fatalf("Proportional sum %d, want 1000", v.Sum())
	}
	// Entries should follow the 1:2:3:4 ratio within rounding.
	if math.Abs(float64(v[3])-4*float64(v[0])) > 5 {
		t.Fatalf("ratio drift: %v", v)
	}
}

func TestProportionalPanics(t *testing.T) {
	mustPanic(t, "empty", func() { Proportional(nil, 10) })
	mustPanic(t, "total too small", func() { Proportional([]float64{1, 1, 1}, 2) })
	mustPanic(t, "zero ratio", func() { Proportional([]float64{1, 0}, 10) })
	mustPanic(t, "NaN ratio", func() { Proportional([]float64{1, math.NaN()}, 10) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestPowerLawShapes(t *testing.T) {
	flat := PowerLaw(5, 0, 500)
	if flat.Max()-flat.Min() > 1 {
		t.Fatalf("alpha=0 not flat: %v", flat)
	}
	steep := PowerLaw(5, 2, 500)
	if steep[0] <= steep[4] {
		t.Fatalf("alpha=2 not decreasing: %v", steep)
	}
	if steep.Sum() != 500 {
		t.Fatalf("PowerLaw sum %d, want 500", steep.Sum())
	}
}

func TestLogScaled(t *testing.T) {
	v := LogScaled(3, 1000, 2)
	want := int(math.Ceil(2 * math.Log(1000)))
	for _, d := range v {
		if d != want {
			t.Fatalf("LogScaled entry %d, want %d", d, want)
		}
	}
}

func TestRandomInRange(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint32) bool {
		v := Random(r, 8, 10, 20)
		for _, d := range v {
			if d < 10 || d > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticSchedule(t *testing.T) {
	s := Static{V: Vector{10, 20}}
	if s.Tasks() != 2 {
		t.Fatalf("Tasks = %d, want 2", s.Tasks())
	}
	for _, round := range []uint64{0, 1, 1 << 40} {
		if got := s.At(round); got[0] != 10 || got[1] != 20 {
			t.Fatalf("At(%d) = %v", round, got)
		}
	}
}

func TestStepSchedule(t *testing.T) {
	s, err := NewStep(
		Vector{10, 10},
		[]uint64{100, 200},
		[]Vector{{20, 10}, {5, 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    uint64
		want Vector
	}{
		{0, Vector{10, 10}},
		{99, Vector{10, 10}},
		{100, Vector{20, 10}},
		{199, Vector{20, 10}},
		{200, Vector{5, 5}},
		{1 << 50, Vector{5, 5}},
	}
	for _, c := range cases {
		got := s.At(c.t)
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Fatalf("At(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepScheduleValidation(t *testing.T) {
	if _, err := NewStep(Vector{10}, []uint64{5}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewStep(Vector{10}, []uint64{5, 5}, []Vector{{1}, {2}}); err == nil {
		t.Fatal("non-increasing change points accepted")
	}
	if _, err := NewStep(Vector{10}, []uint64{5}, []Vector{{1, 2}}); err == nil {
		t.Fatal("task-count change accepted")
	}
	if _, err := NewStep(Vector{10}, []uint64{5}, []Vector{{0}}); err == nil {
		t.Fatal("invalid change vector accepted")
	}
	if _, err := NewStep(Vector{0}, nil, nil); err == nil {
		t.Fatal("invalid initial vector accepted")
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	mustPanic(t, "Min", func() { (Vector{}).Min() })
	mustPanic(t, "Max", func() { (Vector{}).Max() })
}
