package goldencases

import (
	"bytes"
	"encoding/json"
	"fmt"

	"taskalloc"
	"taskalloc/internal/sweeprun"
)

// The golden corpus pins single trajectories; the paper's claims,
// though, are statements about regret BANDS over ensembles (the S5
// experiment's view). This file pins that aggregate layer too: the
// scenario-family × algorithm grid re-run over EnsembleSeeds seeds,
// summarized by sweeprun.Summarize, and serialized as deterministic
// JSON — so a change that preserves every pinned single trajectory but
// shifts the ensemble quantiles (e.g. a seed-derivation change) still
// fails CI.

// EnsembleSeeds is the per-cell seed count of the ensemble fixture.
const EnsembleSeeds = 5

// EnsembleFile is the fixture's basename under testdata/golden.
const EnsembleFile = "ensemble_s5.json"

// ensembleStat is one metric's quantile summary, rendered as %.6g
// strings so the fixture is byte-stable.
type ensembleStat struct {
	Mean string `json:"mean"`
	Std  string `json:"std"`
	Min  string `json:"min"`
	Max  string `json:"max"`
	P25  string `json:"p25"`
	P50  string `json:"p50"`
	P75  string `json:"p75"`
	P90  string `json:"p90"`
}

func newEnsembleStat(s sweeprun.Stat) ensembleStat {
	g := func(x float64) string { return fmt.Sprintf("%.6g", x) }
	return ensembleStat{
		Mean: g(s.Mean), Std: g(s.Std), Min: g(s.Min), Max: g(s.Max),
		P25: g(s.P25), P50: g(s.P50), P75: g(s.P75), P90: g(s.P90),
	}
}

// ensembleCell is one (family, algorithm) cell of the fixture.
type ensembleCell struct {
	Family           string       `json:"family"`
	Algorithm        string       `json:"algorithm"`
	AvgRegret        ensembleStat `json:"avg_regret"`
	Closeness        ensembleStat `json:"closeness"`
	SwitchesPerRound ensembleStat `json:"switches_per_round"`
}

// ensembleDoc is the whole fixture document.
type ensembleDoc struct {
	Seeds int            `json:"seeds"`
	Cells []ensembleCell `json:"cells"`
}

// EnsembleJSON runs the S5-style ensemble — every corpus scenario
// family × {ant, precise-sigmoid} × EnsembleSeeds seeds, at the corpus
// scale — through the multi-simulation batch runner and renders the
// per-cell quantile statistics as the golden fixture's bytes. The
// output is a pure function of the corpus parameters (the runner's
// ordered collection makes it worker-count invariant).
func EnsembleJSON() ([]byte, error) {
	ensembleAlgos := algorithms[:2] // ant, precise-sigmoid: the S5 pair
	var jobs []sweeprun.Job
	for _, fam := range families {
		if fam.name == "algebra" {
			// The S5 fixture pins the paper experiment's original
			// families; the later-added algebra composition case is
			// covered by its per-trajectory goldens, and keeping it out
			// keeps the ensemble fixture's bytes frozen.
			continue
		}
		for _, a := range ensembleAlgos {
			for s := 0; s < EnsembleSeeds; s++ {
				// Each job builds a fresh schedule instance: the
				// generative families memoize their sample paths and must
				// not be shared across the runner's concurrent jobs.
				sched, err := fam.build()
				if err != nil {
					return nil, fmt.Errorf("goldencases ensemble %s: %w", fam.name, err)
				}
				cfg := taskalloc.Config{
					Ants:      ants,
					Algorithm: a.alg,
					Epsilon:   0.5,
					Noise:     taskalloc.SigmoidNoise(0.04),
					Seed:      seed + uint64(s),
					Shards:    shards,
					BurnIn:    rounds / 2,
				}
				if sched != nil {
					cfg.Demand = sched
				} else {
					cfg.Demands = base
				}
				jobs = append(jobs, sweeprun.Job{
					Meta:   []string{fam.name, a.name},
					Config: cfg,
					Rounds: rounds,
				})
			}
		}
	}
	results := sweeprun.Run(jobs, sweeprun.Options{})

	doc := ensembleDoc{Seeds: EnsembleSeeds}
	for lo := 0; lo < len(results); lo += EnsembleSeeds {
		group := results[lo : lo+EnsembleSeeds]
		for _, r := range group {
			if r.Err != nil {
				return nil, fmt.Errorf("goldencases ensemble %v: %w", r.Job.Meta, r.Err)
			}
		}
		sum := sweeprun.Summarize(group)
		doc.Cells = append(doc.Cells, ensembleCell{
			Family:           group[0].Job.Meta[0],
			Algorithm:        group[0].Job.Meta[1],
			AvgRegret:        newEnsembleStat(sum.AvgRegret),
			Closeness:        newEnsembleStat(sum.Closeness),
			SwitchesPerRound: newEnsembleStat(sum.SwitchesPerRound),
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
