// Package goldencases defines the golden scenario regression corpus:
// one small deterministic trajectory per scenario family × algorithm,
// with a mid-run die-off and re-hatch. The generator (cmd/goldengen,
// wired to go:generate) serializes each case to testdata/golden/*.csv,
// and the root package's golden test replays and byte-compares them, so
// any drift in the engines' trajectories — scenario demand evaluation,
// resize semantics, the feedback RNG stream (agent.FeedbackStreamVersion),
// shard handoff — fails CI with the exact first diverging round.
package goldencases

import (
	"fmt"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
	"taskalloc/internal/wire"
)

// Corpus parameters: small enough that the full grid replays in well
// under a second, large enough that every case exercises joins, leaves,
// the resize path, and at least one full phase of every algorithm.
const (
	ants   = 240
	rounds = 160
	seed   = 7
	shards = 2
)

var base = demand.Vector{40, 60}

// Case is one pinned trajectory.
type Case struct {
	// Name is the golden file's basename (without .csv).
	Name string
	// Rounds is the replay horizon.
	Rounds int
	// Config builds the full simulation configuration. It constructs a
	// fresh demand schedule on every call, so concurrent replays never
	// share generative-schedule state.
	Config func() (taskalloc.Config, error)
}

// families enumerates the scenario demand processes under test. Each
// builder returns a fresh schedule (nil for the static vector).
var families = []struct {
	name  string
	build func() (demand.Schedule, error)
}{
	{"static", func() (demand.Schedule, error) { return nil, nil }},
	{"sinusoid", func() (demand.Schedule, error) {
		return scenario.NewSinusoid(base, []float64{0.4, 0.4}, 80, []float64{0, 3.14159})
	}},
	{"burst", func() (demand.Schedule, error) {
		peak := base.Clone()
		peak[0] *= 2
		return scenario.NewBurst(base, peak, 40, 60, 20)
	}},
	{"randomwalk", func() (demand.Schedule, error) {
		return scenario.NewRandomWalk(base, 5, 10,
			demand.Vector{20, 30}, demand.Vector{80, 120}, 5)
	}},
	{"markov", func() (demand.Schedule, error) {
		rev := demand.Vector{base[1], base[0]}
		p := [][]float64{{0.6, 0.4}, {0.4, 0.6}}
		return scenario.NewMarkovModulated([]demand.Vector{base, rev}, p, 25, 0, 5)
	}},
	// algebra nests every composition operator: a scaled burst spliced
	// into a heavy-tail-perturbed superposition of a sinusoid and a
	// static floor. The whole tree is wire-encodable, so the service
	// replays this trajectory from a decoded document too.
	{"algebra", func() (demand.Schedule, error) {
		peak := base.Clone()
		peak[0] *= 2
		burst, err := scenario.NewBurst(base, peak, 20, 40, 15)
		if err != nil {
			return nil, err
		}
		scaled, err := scenario.NewModulate(burst, []float64{1.25, 0.8})
		if err != nil {
			return nil, err
		}
		sin, err := scenario.NewSinusoid(demand.Vector{30, 40},
			[]float64{0.4, 0.4}, 50, []float64{0, 3.14159})
		if err != nil {
			return nil, err
		}
		sum, err := scenario.NewSuperpose([]demand.Schedule{
			sin, demand.Static{V: demand.Vector{10, 20}}})
		if err != nil {
			return nil, err
		}
		noisy, err := scenario.NewStableNoise(sum, 1.5, 4, 15, 11)
		if err != nil {
			return nil, err
		}
		return scenario.NewCompose([]demand.Schedule{scaled, noisy}, []uint64{0, 80})
	}},
}

var algorithms = []struct {
	name string
	alg  taskalloc.Algorithm
}{
	{"ant", taskalloc.Ant},
	{"precise-sigmoid", taskalloc.PreciseSigmoid},
	{"precise-adversarial", taskalloc.PreciseAdversarial},
	{"trivial", taskalloc.Trivial},
}

// All returns the corpus: every scenario family × algorithm.
func All() []Case {
	var out []Case
	for _, fam := range families {
		for _, a := range algorithms {
			fam, a := fam, a
			out = append(out, Case{
				Name:   fam.name + "_" + a.name,
				Rounds: rounds,
				Config: func() (taskalloc.Config, error) {
					sched, err := fam.build()
					if err != nil {
						return taskalloc.Config{}, err
					}
					cfg := taskalloc.Config{
						Ants:      ants,
						Algorithm: a.alg,
						Epsilon:   0.5,
						Noise:     taskalloc.SigmoidNoise(0.04),
						Seed:      seed,
						Shards:    shards,
						// A die-off and a re-hatch mid-run pin the
						// resize path in every trajectory.
						SizeChanges: []taskalloc.SizeChange{
							{At: 60, To: 160},
							{At: 110, To: ants},
						},
					}
					if sched != nil {
						cfg.Demand = sched
					} else {
						cfg.Demands = base
					}
					return cfg, nil
				},
			})
		}
	}
	return out
}

// CSV replays one case and serializes its trajectory: one row per round
// with the loads, the demands in force, the active colony size, and the
// cumulative switch count (the tightest cheap RNG-stream pin). The
// serialization is wire.TrajectoryRecorder — the same writer the
// simulation service streams trajectories through, so service responses
// byte-compare against these fixtures.
func CSV(c Case) ([]byte, error) {
	cfg, err := c.Config()
	if err != nil {
		return nil, fmt.Errorf("goldencases %s: %w", c.Name, err)
	}
	sim, err := taskalloc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("goldencases %s: %w", c.Name, err)
	}
	defer sim.Close()

	rec := wire.NewTrajectoryRecorder(len(sim.Demands()))
	sim.Run(c.Rounds, rec.Observer(sim))
	return rec.Bytes(), nil
}
