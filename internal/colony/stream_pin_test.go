package colony

import (
	"fmt"
	"testing"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

// TestPreciseSigmoidStreamV2Pinned freezes the stream-v2 draw sequence
// (agent.FeedbackStreamVersion): the exact Precise Sigmoid loads at
// phase boundaries for a fixed (Seed, Shards), on both stepping paths.
// If this fails, the feedback draw sequence changed — bump
// agent.FeedbackStreamVersion, update these values, and regenerate the
// golden corpus (go generate ./...).
func TestPreciseSigmoidStreamV2Pinned(t *testing.T) {
	if agent.FeedbackStreamVersion != 2 {
		t.Fatalf("pinned values are for stream v2, constant says v%d", agent.FeedbackStreamVersion)
	}
	dem := demand.Vector{80, 120, 60}
	want := []struct {
		round uint64
		loads []int
	}{
		{82, []int{178, 217, 205}},
		{164, []int{178, 217, 205}},
		{328, []int{177, 217, 205}},
	}
	for _, iface := range []bool{false, true} {
		f := agent.PreciseSigmoidFactory(3, agent.DefaultPreciseParams(0.05, 0.5))
		if iface {
			f.NewBatch = nil
		}
		e, err := New(Config{
			N: 600, Schedule: demand.Static{V: dem},
			Model:   noise.SigmoidModel{Lambda: 3.5},
			Factory: f,
			Init:    AllIdle, Seed: 11, Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			for e.Round() < w.round {
				e.Step()
			}
			got := fmt.Sprint(e.Loads())
			if got != fmt.Sprint(w.loads) {
				t.Errorf("interface=%v round %d: loads %v, want %v", iface, w.round, got, w.loads)
			}
		}
		e.Close()
	}
}
