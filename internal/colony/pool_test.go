package colony

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

func poolConfig(seed uint64, shards int, pool *Pool) Config {
	dem := demand.Vector{60, 40}
	return Config{
		N:        400,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 0.05},
		Factory:  agent.AntFactory(2, agent.DefaultParams(0.05)),
		Init:     UniformRandom,
		Seed:     seed,
		Shards:   shards,
		Pool:     pool,
	}
}

// TestPoolReuseAcrossEngines: sequential engines sharing a Pool must
// check out the same worker set (no goroutine growth per engine) and
// produce trajectories bit-identical to engine-owned workers.
func TestPoolReuseAcrossEngines(t *testing.T) {
	pool := NewPool()
	defer pool.Close()

	// run executes one engine to completion (with an explicit Close, so
	// the worker set goes straight back to the pool) and returns its
	// final loads, cumulative regret contribution, and switches.
	run := func(cfg Config) ([]int, uint64) {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(60, nil)
		loads := append([]int(nil), e.Loads()...)
		return loads, e.Switches()
	}

	for round := 0; round < 2; round++ {
		for seed := uint64(1); seed <= 4; seed++ {
			aLoads, aSw := run(poolConfig(seed, 4, pool))
			bLoads, bSw := run(poolConfig(seed, 4, nil))
			if aSw != bSw {
				t.Fatalf("seed %d: pooled switches %d != owned %d", seed, aSw, bSw)
			}
			for j := range aLoads {
				if aLoads[j] != bLoads[j] {
					t.Fatalf("seed %d task %d: pooled load %d != owned %d",
						seed, j, aLoads[j], bLoads[j])
				}
			}
		}
	}

	// The engines ran one at a time and each Closed before the next was
	// built, so they all reused one checked-out set: exactly one
	// 4-worker set must be parked now.
	pool.mu.Lock()
	parked := len(pool.idle[4])
	pool.mu.Unlock()
	if parked != 1 {
		t.Fatalf("expected exactly one parked 4-worker set, got %d", parked)
	}
}

// TestPoolConcurrentEngines: engines sharing one Pool from concurrent
// goroutines must each see the deterministic (Seed, Shards) trajectory.
func TestPoolConcurrentEngines(t *testing.T) {
	pool := NewPool()
	defer pool.Close()

	type out struct {
		regret   int64
		switches uint64
	}
	want := make([]out, 6)
	for i := range want {
		e, err := New(poolConfig(uint64(i+1), 3, nil))
		if err != nil {
			t.Fatal(err)
		}
		e.Run(80, nil)
		var regret int64
		dem := poolConfig(1, 3, nil).Schedule.At(1)
		for j, w := range e.Loads() {
			d := int64(dem[j] - w)
			if d < 0 {
				d = -d
			}
			regret += d
		}
		want[i] = out{regret: regret, switches: e.Switches()}
		e.Close()
	}

	got := make([]out, len(want))
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := New(poolConfig(uint64(i+1), 3, pool))
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			e.Run(80, nil)
			var regret int64
			dem := e.cfg.Schedule.At(1)
			for j, w := range e.Loads() {
				d := int64(dem[j] - w)
				if d < 0 {
					d = -d
				}
				regret += d
			}
			got[i] = out{regret: regret, switches: e.Switches()}
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("engine %d: pooled concurrent run %+v != solo run %+v", i, got[i], want[i])
		}
	}
}

// TestPoolCloseShutsDownWorkers: Close reaps parked sets immediately and
// checked-out sets when their engine releases them; release after Close
// must not park workers forever.
func TestPoolCloseShutsDownWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool()

	e, err := New(poolConfig(1, 4, pool))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10, nil)

	e2, err := New(poolConfig(2, 2, pool))
	if err != nil {
		t.Fatal(err)
	}
	e2.Run(10, nil)
	e2.Close() // parks a 2-worker set

	pool.Close()
	pool.Close() // idempotent
	e.Close()    // releases into a closed pool: must shut down, not park

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("pool workers leaked after Close: %d -> %d goroutines", before, got)
	}
}
