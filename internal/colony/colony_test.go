package colony

import (
	"math"
	"runtime"
	"testing"
	"time"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

func baseConfig(n int, dem demand.Vector) Config {
	return Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 1},
		Factory:  agent.AntFactory(len(dem), agent.DefaultParams(0.05)),
		Seed:     1,
		Shards:   1,
	}
}

func TestConfigValidation(t *testing.T) {
	dem := demand.Vector{50}
	bad := []Config{
		func() Config { c := baseConfig(0, dem); return c }(),
		func() Config { c := baseConfig(10, dem); c.Schedule = nil; return c }(),
		func() Config { c := baseConfig(10, dem); c.Model = nil; return c }(),
		func() Config { c := baseConfig(10, dem); c.Factory = agent.Factory{}; return c }(),
		func() Config { c := baseConfig(10, dem); c.Shards = -1; return c }(),
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
		if _, err := NewSequential(c); err == nil {
			t.Fatalf("bad sequential config %d accepted", i)
		}
	}
	if _, err := New(baseConfig(10, dem)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInitializers(t *testing.T) {
	r := rng.New(1)
	idle := AllIdle(10, 3, r)
	for _, a := range idle {
		if a != agent.Idle {
			t.Fatal("AllIdle produced a worker")
		}
	}
	uni := UniformRandom(10000, 3, r)
	counts := map[int32]int{}
	for _, a := range uni {
		if a < agent.Idle || a >= 3 {
			t.Fatalf("UniformRandom out of range: %d", a)
		}
		counts[a]++
	}
	for a := int32(-1); a < 3; a++ {
		frac := float64(counts[a]) / 10000
		if math.Abs(frac-0.25) > 0.03 {
			t.Fatalf("UniformRandom assignment %d frequency %v", a, frac)
		}
	}
	conc := Concentrated(2)(100, 3, r)
	for _, a := range conc {
		if a != 2 {
			t.Fatal("Concentrated broken")
		}
	}
	exact := Exact(demand.Vector{3, 2})(10, 2, r)
	loads := map[int32]int{}
	for _, a := range exact {
		loads[a]++
	}
	if loads[0] != 3 || loads[1] != 2 || loads[agent.Idle] != 5 {
		t.Fatalf("Exact loads %v", loads)
	}
}

func TestInitializerPanics(t *testing.T) {
	r := rng.New(1)
	mustPanic(t, "Concentrated range", func() { Concentrated(5)(10, 3, r) })
	mustPanic(t, "Exact len", func() { Exact(demand.Vector{1})(10, 2, r) })
	mustPanic(t, "Exact size", func() { Exact(demand.Vector{11})(10, 1, r) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// TestLoadConservation: the number of working ants never exceeds n, and
// loads always equal the count of agents assigned to each task.
func TestLoadConservation(t *testing.T) {
	dem := demand.Vector{30, 40}
	cfg := baseConfig(200, dem)
	cfg.Init = UniformRandom
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Step()
		working := 0
		for _, w := range e.Loads() {
			if w < 0 {
				t.Fatalf("negative load at round %d", e.Round())
			}
			working += w
		}
		if working > e.N() {
			t.Fatalf("round %d: %d workers > %d ants", e.Round(), working, e.N())
		}
		if e.Idle() != e.N()-working {
			t.Fatalf("Idle() inconsistent at round %d", e.Round())
		}
	}
}

// TestShardsDeterminism: same seed and shard count give identical
// trajectories.
func TestShardsDeterminism(t *testing.T) {
	dem := demand.Vector{30, 40}
	run := func(shards int) []int {
		cfg := baseConfig(500, dem)
		cfg.Shards = shards
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var series []int
		e.Run(100, func(_ uint64, loads []int, d demand.Vector) {
			series = append(series, metrics.Regret(loads, d))
		})
		return series
	}
	a, b := run(4), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, shards) diverged at round %d", i)
		}
	}
}

// TestShardCountsStatisticallyEquivalent: different shard counts change
// the RNG interleaving but not the distribution; long-run average regret
// must agree within noise.
func TestShardCountsStatisticallyEquivalent(t *testing.T) {
	dem := demand.Vector{100, 100}
	run := func(shards int, seed uint64) float64 {
		cfg := baseConfig(500, dem)
		cfg.Model = noise.SigmoidModel{Lambda: 0.5}
		cfg.Shards = shards
		cfg.Seed = seed
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(2, 0.05, agent.DefaultCs, 500)
		e.Run(3000, rec.Observer())
		return rec.AvgRegret()
	}
	a := (run(1, 1) + run(1, 2) + run(1, 3)) / 3
	b := (run(8, 4) + run(8, 5) + run(8, 6)) / 3
	if math.Abs(a-b) > 0.5*math.Max(a, b) {
		t.Fatalf("shard counts gave inconsistent averages: %v vs %v", a, b)
	}
}

// TestAntConvergesFromEmpty: the headline sanity check — Algorithm Ant
// under sigmoid noise fills demands from an all-idle start and stays in a
// near-optimal band.
func TestAntConvergesFromEmpty(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	// λ = 3.5 places γ* = 8·ln(2000)/(3.5·300) ≈ 0.058 below the
	// admissible maximum learning rate 1/16.
	model := noise.SigmoidModel{Lambda: 3.5}
	gammaStar := model.CriticalValue(n, dem.Min())
	if gammaStar > agent.MaxGamma {
		t.Fatalf("test setup: γ* = %v too large", gammaStar)
	}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.AntFactory(2, agent.DefaultParams(agent.MaxGamma)),
		Seed:     7,
		Shards:   1,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(2, agent.MaxGamma, agent.DefaultCs, 1000)
	e.Run(5000, rec.Observer())
	// After burn-in the average regret should be well below the trivial
	// Σd (i.e., the tasks actually filled) and within the Theorem 3.1
	// band 5γΣd + 3 with slack.
	avg := rec.AvgRegret()
	bound := 5*agent.MaxGamma*float64(dem.Sum()) + 3
	if avg > bound*2 {
		t.Fatalf("avg regret %v far above theorem band %v", avg, bound)
	}
	if avg > float64(dem.Sum())/4 {
		t.Fatalf("avg regret %v suggests tasks never filled (Σd = %d)", avg, dem.Sum())
	}
}

// TestAntSelfStabilizesFromFlood: starting with every ant dumped on task
// 0, the overload must drain geometrically and the other task must fill.
func TestAntSelfStabilizesFromFlood(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	model := noise.SigmoidModel{Lambda: 3.5}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.AntFactory(2, agent.DefaultParams(agent.MaxGamma)),
		Init:     Concentrated(0),
		Seed:     8,
		Shards:   1,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(2, agent.MaxGamma, agent.DefaultCs, 2000)
	e.Run(6000, rec.Observer())
	avg := rec.AvgRegret()
	if avg > float64(dem.Sum())/4 {
		t.Fatalf("avg regret %v after flood start; no self-stabilization", avg)
	}
	loads := rec.LastLoads()
	if loads[1] < int(0.8*float64(dem[1])) {
		t.Fatalf("task 1 load %d never approached demand %d", loads[1], dem[1])
	}
}

// TestPerfectFeedbackStableZone: under noiseless feedback Algorithm Ant
// must hold every task inside the Theorem 3.1 deficit band after
// convergence.
func TestPerfectFeedbackStableZone(t *testing.T) {
	n := 1000
	dem := demand.Vector{200, 200}
	gamma := 0.05
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    noise.PerfectModel{},
		Factory:  agent.AntFactory(2, agent.DefaultParams(gamma)),
		Seed:     9,
		Shards:   1,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2000, nil) // converge
	rec := metrics.NewRecorder(2, gamma, agent.DefaultCs, 0)
	e.Run(2000, rec.Observer())
	for j, v := range rec.BoundViolations() {
		if float64(v) > 0.02*2000 {
			t.Fatalf("task %d violated the 5γd+3 band in %d/2000 rounds", j, v)
		}
	}
}

// TestTrivialSyncOscillates: Appendix D.2 — under synchronous scheduling
// with near-perfect feedback, the trivial algorithm thrashes between
// empty and flooded.
func TestTrivialSyncOscillates(t *testing.T) {
	n := 1000
	dem := demand.Vector{250}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 5},
		Factory:  agent.TrivialFactory(1),
		Seed:     10,
		Shards:   1,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(1, 0.05, agent.DefaultCs, 100)
	e.Run(2000, rec.Observer())
	// The oscillation amplitude is Θ(n): all idle ants pile in, all
	// workers flee. Average regret should be a constant fraction of n.
	if rec.AvgRegret() < float64(n)/10 {
		t.Fatalf("trivial sync avg regret %v; expected Θ(n) oscillation", rec.AvgRegret())
	}
	if rec.ZeroCrossings()[0] < 100 {
		t.Fatalf("trivial sync zero crossings %d; expected rapid thrash", rec.ZeroCrossings()[0])
	}
}

// TestTrivialSequentialConverges: Appendix D.1 — the same algorithm under
// the sequential scheduler settles near the demand.
func TestTrivialSequentialConverges(t *testing.T) {
	n := 400
	dem := demand.Vector{100}
	model := noise.SigmoidModel{Lambda: 1}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.TrivialFactory(1),
		Seed:     11,
	}
	e, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(1, 0.05, agent.DefaultCs, 20000)
	e.Run(60000, rec.Observer())
	gammaStar := model.CriticalValue(n, dem.Min())
	// Appendix D.1: regret settles at Θ(γ*Σd). Allow a generous
	// constant; the point is it is FAR below the Θ(n) of the sync model.
	if rec.AvgRegret() > 20*gammaStar*float64(dem.Sum())+10 {
		t.Fatalf("sequential trivial avg regret %v, want Θ(γ*Σd) = Θ(%v)",
			rec.AvgRegret(), gammaStar*float64(dem.Sum()))
	}
	if rec.AvgRegret() > float64(n)/10 {
		t.Fatalf("sequential trivial regret %v as bad as sync oscillation", rec.AvgRegret())
	}
}

func TestSequentialLoadConservation(t *testing.T) {
	dem := demand.Vector{20, 20}
	cfg := Config{
		N:        100,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 1},
		Factory:  agent.TrivialFactory(2),
		Init:     UniformRandom,
		Seed:     12,
	}
	e, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		e.Step()
		working := 0
		for _, w := range e.Loads() {
			if w < 0 {
				t.Fatal("negative load")
			}
			working += w
		}
		if working > 100 {
			t.Fatalf("workers %d > n", working)
		}
	}
	if e.Round() != 2000 {
		t.Fatalf("Round = %d", e.Round())
	}
}

// TestSequentialSingleSwitchPerRound: at most one ant changes per round.
func TestSequentialSingleSwitchPerRound(t *testing.T) {
	dem := demand.Vector{30}
	cfg := Config{
		N:        100,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 1},
		Factory:  agent.TrivialFactory(1),
		Seed:     13,
	}
	e, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := e.Loads()[0]
	for i := 0; i < 2000; i++ {
		e.Step()
		now := e.Loads()[0]
		if d := now - prev; d < -1 || d > 1 {
			t.Fatalf("load jumped by %d in a sequential round", d)
		}
		prev = now
	}
}

func TestObserverReceivesEveryRound(t *testing.T) {
	dem := demand.Vector{10}
	cfg := baseConfig(50, dem)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	e.Run(10, func(t uint64, _ []int, _ demand.Vector) { seen = append(seen, t) })
	if len(seen) != 10 {
		t.Fatalf("observer called %d times", len(seen))
	}
	for i, tt := range seen {
		if tt != uint64(i+1) {
			t.Fatalf("round %d reported as %d", i+1, tt)
		}
	}
}

func TestDemandsAccessor(t *testing.T) {
	s, err := demand.NewStep(demand.Vector{10}, []uint64{5}, []demand.Vector{{20}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(100, demand.Vector{10})
	cfg.Schedule = s
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Demands()[0] != 10 {
		t.Fatal("initial demand wrong")
	}
	e.Run(5, nil) // rounds 1..5; next round is 6 >= 5 -> new demand
	if e.Demands()[0] != 20 {
		t.Fatalf("demand after change = %d, want 20", e.Demands()[0])
	}
}

func TestBadInitializerRejected(t *testing.T) {
	dem := demand.Vector{10}
	cfg := baseConfig(10, dem)
	cfg.Init = func(n, k int, _ *rng.Rng) []int32 { return make([]int32, n-1) }
	if _, err := New(cfg); err == nil {
		t.Fatal("short initializer accepted")
	}
	cfg.Init = func(n, k int, _ *rng.Rng) []int32 {
		out := make([]int32, n)
		out[0] = 5 // out of range for k=1
		return out
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range initializer accepted")
	}
	if _, err := NewSequential(cfg); err == nil {
		t.Fatal("sequential out-of-range initializer accepted")
	}
}

func TestManyShardsClampedToN(t *testing.T) {
	dem := demand.Vector{5}
	cfg := baseConfig(3, dem)
	cfg.Shards = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20, nil)
	if e.Round() != 20 {
		t.Fatal("engine with clamped shards failed to run")
	}
}

// TestSwitchCounting: an all-idle colony that immediately joins tasks
// must register switches; a frozen colony must not.
func TestSwitchCounting(t *testing.T) {
	dem := demand.Vector{100}
	cfg := Config{
		N:        200,
		Schedule: demand.Static{V: dem},
		Model:    noise.PerfectModel{},
		Factory:  agent.TrivialFactory(1),
		Seed:     30,
		Shards:   2,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Switches() != 0 {
		t.Fatal("switches before any round")
	}
	e.Step() // all 200 idle ants see Lack and join
	if e.Switches() != 200 {
		t.Fatalf("switches = %d, want 200", e.Switches())
	}
	seq, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(50, nil)
	if seq.Switches() == 0 || seq.Switches() > 50 {
		t.Fatalf("sequential switches = %d, want in (0, 50]", seq.Switches())
	}
}

// TestResizeShrinkAndRegrow: dying ants release their tasks; hatched
// ants re-enter idle with fresh state, and the colony re-converges.
func TestResizeShrinkAndRegrow(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	model := noise.SigmoidModel{Lambda: 3.5}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    model,
		Factory:  agent.AntFactory(2, agent.DefaultParams(agent.MaxGamma)),
		Seed:     40,
		Shards:   2,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Active() != n {
		t.Fatalf("Active = %d", e.Active())
	}
	e.Run(3000, nil) // converge
	before := metrics.Regret(e.Loads(), dem)

	e.Resize(n / 2) // mass die-off
	working := 0
	for _, w := range e.Loads() {
		working += w
	}
	if working > n/2 {
		t.Fatalf("dead ants still counted: %d workers > %d active", working, n/2)
	}
	if e.Active() != n/2 {
		t.Fatal("Active after shrink")
	}
	e.Run(4000, nil) // re-converge with half the colony (Σd=800 ≤ 1000)
	mid := metrics.Regret(e.Loads(), dem)
	if mid > 4*(before+50) {
		t.Fatalf("no recovery after shrink: regret %d (was %d)", mid, before)
	}

	e.Resize(n) // hatch them back
	e.Run(3000, nil)
	after := metrics.Regret(e.Loads(), dem)
	if after > 4*(before+50) {
		t.Fatalf("no recovery after regrow: regret %d (was %d)", after, before)
	}
	// Load conservation against the active population throughout.
	working = 0
	for _, w := range e.Loads() {
		working += w
	}
	if working > e.Active() {
		t.Fatalf("workers %d exceed active %d", working, e.Active())
	}
}

// TestWorkerPoolLifecycle: multi-shard engines park persistent workers
// between rounds; Close releases them promptly, and closing twice is
// safe. The trajectory must be unaffected by pooling (covered against
// the single-shard path by determinism: same Seed+Shards re-run).
func TestWorkerPoolLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := baseConfig(400, demand.Vector{50, 50})
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50, nil)
	// Inspect the pool directly rather than global goroutine counts:
	// cleanups reaping engines abandoned by other tests can shrink the
	// global count at any moment.
	if e.pool == nil || len(e.pool.set.work) != 4 {
		t.Fatalf("expected a 4-worker pool, got %+v", e.pool)
	}
	e.Close()
	e.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("pool workers leaked after Close: %d -> %d goroutines", before, got)
	}

	// Single-shard engines have no pool; Close must still be a no-op.
	cfg.Shards = 1
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Run(10, nil)
	e2.Close()
}

// TestWorkerPoolAbandonedEnginesCollected: engines dropped without Close
// must not accumulate parked workers (the runtime cleanup closes their
// channels once the engine is collected).
func TestWorkerPoolAbandonedEnginesCollected(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		cfg := baseConfig(200, demand.Vector{30})
		cfg.Shards = 4
		cfg.Seed = uint64(i + 1)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(5, nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2*4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("abandoned engines leaked workers: %d -> %d goroutines",
		before, runtime.NumGoroutine())
}

// TestSequentialResize mirrors the Engine Resize semantics on the
// Appendix D.1 scheduler: dying ants release their tasks, the scheduler
// only picks active ants, and hatched ants re-enter idle.
func TestSequentialResize(t *testing.T) {
	n := 200
	dem := demand.Vector{60}
	cfg := Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 1},
		Factory:  agent.TrivialFactory(1),
		Init:     Concentrated(0),
		Seed:     14,
	}
	e, err := NewSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Active() != n {
		t.Fatalf("Active = %d", e.Active())
	}
	e.Resize(n / 4) // mass die-off: 150 of the 200 flooded workers die
	if e.Loads()[0] != n/4 {
		t.Fatalf("dead ants still counted: load %d, active %d", e.Loads()[0], n/4)
	}
	e.Run(4000, nil)
	if got := e.Loads()[0]; got > e.Active() {
		t.Fatalf("load %d exceeds active %d", got, e.Active())
	}
	e.Resize(n) // hatch back; re-converge toward the demand
	if e.Active() != n {
		t.Fatal("Active after regrow")
	}
	e.Run(12000, nil)
	if got := e.Loads()[0]; got < dem[0]/2 || got > 2*dem[0] {
		t.Fatalf("no re-convergence after regrow: load %d, demand %d", got, dem[0])
	}
	mustPanic(t, "zero", func() { e.Resize(0) })
	mustPanic(t, "too big", func() { e.Resize(n + 1) })
}

// TestResizeLoadConservationBothPaths: across interleaved shrink→grow
// cycles and a demand change, the loads always equal the recount of
// active ants' assignments and never exceed the active population — on
// the struct-of-arrays batch path and the interface fallback alike.
func TestResizeLoadConservationBothPaths(t *testing.T) {
	sched, err := demand.NewStep(demand.Vector{60, 90},
		[]uint64{120}, []demand.Vector{{90, 60}})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []bool{true, false} {
		factory := agent.AntFactory(2, agent.DefaultParams(0.05))
		if !batch {
			factory.NewBatch = nil // force the interface path
		}
		e, err := New(Config{
			N:        600,
			Schedule: sched,
			Model:    noise.SigmoidModel{Lambda: 0.1},
			Factory:  factory,
			Init:     UniformRandom,
			Seed:     15,
			Shards:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		resizes := map[uint64]int{40: 200, 100: 600, 160: 350, 220: 600}
		for r := uint64(1); r <= 260; r++ {
			if to, ok := resizes[r]; ok {
				e.Resize(to)
			}
			e.Step()
			counts := make([]int, e.Tasks())
			working := 0
			for i := 0; i < e.Active(); i++ {
				if a := e.assignment(i); a != agent.Idle {
					counts[a]++
					working++
				}
			}
			for j, w := range e.Loads() {
				if w != counts[j] {
					t.Fatalf("batch=%v round %d task %d: load %d != recount %d",
						batch, r, j, w, counts[j])
				}
			}
			if working > e.Active() {
				t.Fatalf("batch=%v round %d: %d workers > %d active",
					batch, r, working, e.Active())
			}
		}
	}
}

func TestResizePanics(t *testing.T) {
	cfg := baseConfig(10, demand.Vector{5})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "zero", func() { e.Resize(0) })
	mustPanic(t, "too big", func() { e.Resize(11) })
}
