// Package colony is the simulation substrate: it advances n ant automata
// through the paper's synchronous rounds, draws their noisy feedback,
// counts loads, and reports the trajectory to observers.
//
// Two schedulers are provided. Engine is the synchronous model of
// Section 2: every ant receives feedback derived from the previous
// round's loads and all ants act concurrently; its hot loop is sharded
// across a persistent goroutine pool with one deterministic RNG stream
// per shard. Sequential is the model of Appendix D.1: one uniformly
// random ant acts per round.
package colony

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Initializer produces the initial assignment of every ant (task index or
// agent.Idle). Self-stabilization experiments exercise adversarial
// initializations.
type Initializer func(n, k int, r *rng.Rng) []int32

// AllIdle starts every ant idle.
func AllIdle(n, _ int, _ *rng.Rng) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = agent.Idle
	}
	return out
}

// UniformRandom assigns every ant independently and uniformly to one of
// the k tasks or idle.
func UniformRandom(n, k int, r *rng.Rng) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Intn(k+1)) - 1
	}
	return out
}

// Concentrated returns an Initializer that puts every ant on one task —
// the worst-case flood used to exercise the R⁺ (overload) analysis.
func Concentrated(task int) Initializer {
	return func(n, k int, _ *rng.Rng) []int32 {
		if task < 0 || task >= k {
			panic(fmt.Sprintf("colony: Concentrated task %d outside [0,%d)", task, k))
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(task)
		}
		return out
	}
}

// Exact returns an Initializer assigning exactly the demanded number of
// ants to each task (remaining ants idle) — the zero-regret start used to
// measure steady-state oscillation in isolation.
func Exact(dem demand.Vector) Initializer {
	return func(n, k int, _ *rng.Rng) []int32 {
		if k != len(dem) {
			panic("colony: Exact demand length mismatch")
		}
		if dem.Sum() > n {
			panic("colony: Exact demand exceeds colony size")
		}
		out := make([]int32, n)
		i := 0
		for j, d := range dem {
			for c := 0; c < d; c++ {
				out[i] = int32(j)
				i++
			}
		}
		for ; i < n; i++ {
			out[i] = agent.Idle
		}
		return out
	}
}

// Observer receives the state after each round: the round number t, the
// loads W(j)_t, and the demands in force. The slices are owned by the
// engine and must not be retained or mutated.
type Observer func(t uint64, loads []int, dem demand.Vector)

// Config assembles a simulation.
type Config struct {
	// N is the number of ants.
	N int
	// Schedule supplies the (possibly time-varying) demand vector.
	Schedule demand.Schedule
	// Model is the feedback noise model.
	Model noise.Model
	// Factory constructs the ant automata.
	Factory agent.Factory
	// Init sets the initial assignment; nil means AllIdle.
	Init Initializer
	// Seed drives all randomness. Runs with equal (Config, Shards) are
	// bit-identical.
	Seed uint64
	// Shards is the parallel fan-out of the synchronous engine;
	// 0 means GOMAXPROCS. Results depend on the shard count (each shard
	// owns an RNG stream), so fix it for reproducibility.
	Shards int
	// Pool, if non-nil, supplies the persistent shard workers from a
	// shared reservoir instead of engine-owned goroutines: the engine
	// checks a worker set out at construction and returns it on Close,
	// so a sweep of many short-lived engines reuses the same parked
	// goroutines. Ignored by single-shard engines (they step inline) and
	// by Sequential. Trajectories are unaffected.
	Pool *Pool
}

func (c Config) validate() error {
	if c.N <= 0 {
		return errors.New("colony: need N >= 1")
	}
	if c.Schedule == nil || c.Schedule.Tasks() <= 0 {
		return errors.New("colony: need a schedule with >= 1 task")
	}
	if c.Model == nil {
		return errors.New("colony: need a noise model")
	}
	if c.Factory.New == nil {
		return errors.New("colony: need an agent factory")
	}
	if c.Shards < 0 {
		return errors.New("colony: negative shard count")
	}
	return nil
}

// Engine is the synchronous scheduler. Not safe for concurrent use.
//
// The hot loop has two implementations. When the factory provides a
// batch constructor (all built-in algorithms do), the whole colony's
// state lives in one struct-of-arrays agent.Batch and each shard
// advances its index range with a single devirtualized StepRange call
// over per-round feedback compiled to integer Bernoulli cutoffs. The
// fallback path steps individually allocated agent.Agent values through
// the interface, and exists for custom or wrapped agents (e.g.
// agent.DesyncFactory). Both paths consume identical RNG streams and
// produce bit-identical trajectories for a fixed (Seed, Shards); the
// package tests enforce this.
type Engine struct {
	cfg      Config
	k        int
	agents   []agent.Agent // interface fallback path; nil when batch != nil
	batch    agent.Batch   // struct-of-arrays fast path; nil when agents != nil
	shards   []shard
	pool     *workers // persistent shard workers; nil when len(shards) == 1
	loads    []int
	deficits []float64
	fbDesc   []noise.TaskFeedback
	batchFb  []agent.BatchTaskFeedback // compiled once per round, shared by shards
	round    uint64
	switches uint64
	active   int
}

type shard struct {
	lo, hi   int // ant index range [lo, hi)
	r        *rng.Rng
	counts   []int // per-assignment accumulator, len k+1
	switches uint64
}

// workerSet runs one persistent goroutine per shard. Workers park on
// their work channel between rounds, so a Step costs one channel send and
// one WaitGroup wait per shard instead of a goroutine spawn — the
// difference is what makes 10⁵-round scenario sweeps cheap at high shard
// counts.
//
// While parked, a worker references only its channel, its shard index,
// and the set itself — never any Engine. The Engine pointer travels
// inside each stepReq, so a set is not bound to the engine that is using
// it: between rounds (and between engine lifetimes, via Pool) the same
// parked goroutines can serve any engine with the same shard count.
type workerSet struct {
	work []chan stepReq
	wg   *sync.WaitGroup // separate allocation: workers must not point into Engine
	stop sync.Once
}

// stepReq carries one round's work order to a parked worker.
type stepReq struct {
	e      *Engine
	t      uint64
	active int
}

func newWorkerSet(workers int) *workerSet {
	p := &workerSet{
		work: make([]chan stepReq, workers),
		wg:   new(sync.WaitGroup),
	}
	for i := range p.work {
		ch := make(chan stepReq, 1)
		p.work[i] = ch
		go func() {
			for req := range ch {
				req.e.shards[i].run(req.t, req.active, req.e)
				p.wg.Done()
			}
		}()
	}
	return p
}

// step fans one round out to every worker and waits for all of them.
func (p *workerSet) step(e *Engine, t uint64, active int) {
	p.wg.Add(len(p.work))
	req := stepReq{e: e, t: t, active: active}
	for _, ch := range p.work {
		ch <- req
	}
	p.wg.Wait()
}

// close shuts the workers down; idempotent.
func (p *workerSet) close() {
	p.stop.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}

// Pool is a shared reservoir of persistent shard worker sets that
// outlives any single Engine. An engine built with Config.Pool checks a
// worker set out at construction and returns it on Close (or, for
// abandoned engines, through the runtime cleanup), so a sweep of many
// short-lived engines keeps reusing the same parked goroutines instead
// of spawning and tearing down a set per simulation.
//
// Pool is safe for concurrent use: engines sharing one Pool may be
// constructed, stepped, and closed from different goroutines (each
// checked-out set is used by exactly one engine at a time). Sets are
// keyed by worker count, so sweeps that vary Shards coexist in one Pool.
// Trajectories remain a function of (Seed, Shards) only — which physical
// worker set executes a shard never influences its RNG stream.
type Pool struct {
	mu     sync.Mutex
	idle   map[int][]*workerSet
	closed bool
}

// NewPool returns an empty Pool. Worker sets are spawned lazily on first
// checkout of each size.
func NewPool() *Pool { return &Pool{idle: make(map[int][]*workerSet)} }

// acquire checks out a parked worker set with the given worker count,
// spawning a fresh one when none is idle.
func (p *Pool) acquire(workers int) *workerSet {
	p.mu.Lock()
	if sets := p.idle[workers]; len(sets) > 0 {
		ws := sets[len(sets)-1]
		p.idle[workers] = sets[:len(sets)-1]
		p.mu.Unlock()
		return ws
	}
	p.mu.Unlock()
	return newWorkerSet(workers)
}

// release parks a quiescent worker set for reuse; if the Pool has been
// closed in the meantime the set's goroutines are shut down instead.
func (p *Pool) release(ws *workerSet) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ws.close()
		return
	}
	p.idle[len(ws.work)] = append(p.idle[len(ws.work)], ws)
	p.mu.Unlock()
}

// Close shuts down every parked worker set and marks the Pool closed;
// sets still checked out by live engines are shut down when those
// engines release them. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = make(map[int][]*workerSet)
	p.mu.Unlock()
	for _, sets := range idle {
		for _, ws := range sets {
			ws.close()
		}
	}
}

// workers binds an Engine to its checked-out worker set and remembers
// where the set must go on release: back to the shared Pool, or closed
// outright when the engine owns it. The release is idempotent so that
// an explicit Close and the runtime cleanup cannot double-return a set.
type workers struct {
	set  *workerSet
	pool *Pool // nil when the engine owns the set outright
	done atomic.Bool
}

func (w *workers) release() {
	if w.done.Swap(true) {
		return
	}
	if w.pool != nil {
		w.pool.release(w.set)
	} else {
		w.set.close()
	}
}

// New builds a synchronous engine and applies the initializer.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.Schedule.Tasks()
	e := &Engine{
		cfg:      cfg,
		k:        k,
		loads:    make([]int, k),
		deficits: make([]float64, k),
		fbDesc:   make([]noise.TaskFeedback, k),
		active:   cfg.N,
	}
	if cfg.Factory.NewBatch != nil {
		e.batch = cfg.Factory.NewBatch(cfg.N)
		e.batchFb = make([]agent.BatchTaskFeedback, k)
	} else {
		e.agents = make([]agent.Agent, cfg.N)
		for i := range e.agents {
			e.agents[i] = cfg.Factory.New()
		}
	}

	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > cfg.N {
		shards = cfg.N
	}
	master := rng.New(cfg.Seed)
	per := cfg.N / shards
	rem := cfg.N % shards
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		e.shards = append(e.shards, shard{
			lo: lo, hi: hi,
			r:      master.Fork(uint64(s) + 1),
			counts: make([]int, k+1),
		})
		lo = hi
	}

	init := cfg.Init
	if init == nil {
		init = AllIdle
	}
	initRng := master.Fork(0)
	assign := init(cfg.N, k, initRng)
	if len(assign) != cfg.N {
		return nil, fmt.Errorf("colony: initializer returned %d assignments, want %d",
			len(assign), cfg.N)
	}
	for i, a := range assign {
		if a < agent.Idle || a >= int32(k) {
			return nil, fmt.Errorf("colony: initializer assignment %d out of range", a)
		}
		e.reset(i, a)
		if a != agent.Idle {
			e.loads[a]++
		}
	}
	if len(e.shards) > 1 {
		if cfg.Pool != nil {
			e.pool = &workers{set: cfg.Pool.acquire(len(e.shards)), pool: cfg.Pool}
		} else {
			e.pool = &workers{set: newWorkerSet(len(e.shards))}
		}
		// Release the workers of engines dropped without Close: back to
		// the shared Pool, or shut down when engine-owned.
		runtime.AddCleanup(e, (*workers).release, e.pool)
	}
	return e, nil
}

// Close releases the persistent worker set, if any: engine-owned workers
// are shut down, workers checked out of a shared Pool are returned to
// it. Optional — abandoned engines release their workers through a
// runtime cleanup — and idempotent, but Step must not be called after
// Close.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.release()
	}
}

// reset re-initializes ant i on whichever stepping path is active.
func (e *Engine) reset(i int, a int32) {
	if e.batch != nil {
		e.batch.Reset(i, a)
	} else {
		e.agents[i].Reset(a)
	}
}

// assignment reads ant i's current assignment on whichever stepping path
// is active.
func (e *Engine) assignment(i int) int32 {
	if e.batch != nil {
		return e.batch.Assignment(i)
	}
	return e.agents[i].Assignment()
}

// Tasks returns the number of tasks.
func (e *Engine) Tasks() int { return e.k }

// N returns the number of ants.
func (e *Engine) N() int { return e.cfg.N }

// Round returns the index of the last completed round (0 before any Step).
func (e *Engine) Round() uint64 { return e.round }

// Loads returns the current per-task loads. The engine owns the slice.
func (e *Engine) Loads() []int { return e.loads }

// Idle returns the number of idle (active) ants.
func (e *Engine) Idle() int {
	working := 0
	for _, w := range e.loads {
		working += w
	}
	return e.active - working
}

// Active returns the number of active ants (see Resize).
func (e *Engine) Active() int { return e.active }

// Resize changes the active colony size to m in [1, N]: ants with index
// >= m stop participating (they are neither stepped nor counted — the
// paper's "ants dying"), and previously inactive ants re-enter idle with
// cleared memory ("ants hatching"). The paper's Section 6 notes the
// algorithms tolerate such changes because of their self-stabilization;
// experiment S4 measures it. Takes effect from the next Step.
func (e *Engine) Resize(m int) {
	if m < 1 || m > e.cfg.N {
		panic(fmt.Sprintf("colony: Resize to %d outside [1, %d]", m, e.cfg.N))
	}
	if m > e.active {
		// Newly hatched ants start idle with fresh state.
		for i := e.active; i < m; i++ {
			e.reset(i, agent.Idle)
		}
	} else {
		// Dying ants release their tasks immediately so the loads seen
		// by the next round's feedback reflect the real workforce.
		for i := m; i < e.active; i++ {
			if a := e.assignment(i); a != agent.Idle {
				e.loads[a]--
			}
		}
	}
	e.active = m
}

// Demands returns the demand vector in force for the next round.
func (e *Engine) Demands() demand.Vector { return e.cfg.Schedule.At(e.round + 1) }

// Step advances the simulation by one synchronous round: feedback is
// derived from the loads at the end of the previous round, all ants act
// concurrently, and the loads are re-counted.
func (e *Engine) Step() {
	t := e.round + 1
	dem := e.cfg.Schedule.At(t)
	for j := 0; j < e.k; j++ {
		e.deficits[j] = float64(dem[j] - e.loads[j])
	}
	e.cfg.Model.Describe(noise.Env{Round: t, Deficit: e.deficits, Demand: dem}, e.fbDesc)
	if e.batch != nil {
		// Compile the Bernoulli descriptors to integer cutoffs once per
		// round; every shard then shares the same read-only slice.
		agent.CompileFeedback(e.fbDesc, e.batchFb)
	}

	if len(e.shards) == 1 {
		s := &e.shards[0]
		s.run(t, e.active, e)
	} else {
		e.pool.set.step(e, t, e.active)
	}

	for j := range e.loads {
		e.loads[j] = 0
	}
	for i := range e.shards {
		c := e.shards[i].counts
		for j := 0; j < e.k; j++ {
			e.loads[j] += c[j+1]
		}
		e.switches += e.shards[i].switches
	}
	e.round = t
}

// Switches returns the cumulative number of assignment changes (an ant
// moving between a task and idle or between tasks) across all rounds —
// the churn measure Theorem 3.6 remarks on.
func (e *Engine) Switches() uint64 { return e.switches }

// run advances one shard's ants for round t, accumulating assignment
// counts into s.counts. Ants with index >= active are skipped (see
// Engine.Resize).
func (s *shard) run(t uint64, active int, e *Engine) {
	for j := range s.counts {
		s.counts[j] = 0
	}
	s.switches = 0
	hi := s.hi
	if hi > active {
		hi = active
	}
	if e.batch != nil {
		// Struct-of-arrays fast path: one devirtualized call advances the
		// whole index range against the pre-compiled cutoff table.
		s.switches = e.batch.StepRange(t, s.lo, hi, e.batchFb, s.r, s.counts)
		return
	}
	// One Feedback serves every ant in the shard: it carries only the
	// shared per-task descriptors and the shard's RNG (sampling state
	// lives in the RNG, not the Feedback), and hoisting it out of the
	// loop removes a per-ant heap allocation.
	fb := agent.NewFeedback(e.fbDesc, s.r)
	for i := s.lo; i < hi; i++ {
		old := e.agents[i].Assignment()
		a := e.agents[i].Step(t, &fb, s.r)
		s.counts[a+1]++
		if a != old {
			s.switches++
		}
	}
}

// Run advances the engine by rounds rounds, invoking obs (if non-nil)
// after each.
func (e *Engine) Run(rounds int, obs Observer) {
	for i := 0; i < rounds; i++ {
		e.Step()
		if obs != nil {
			obs(e.round, e.loads, e.cfg.Schedule.At(e.round))
		}
	}
}

// Sequential is the Appendix D.1 scheduler: each round one uniformly
// random ant receives feedback (derived from the current loads) and acts;
// all other ants keep their assignment. Not safe for concurrent use.
type Sequential struct {
	cfg      Config
	k        int
	agents   []agent.Agent
	loads    []int
	deficits []float64
	fbDesc   []noise.TaskFeedback
	r        *rng.Rng
	round    uint64
	switches uint64
	active   int
}

// NewSequential builds a sequential engine (Shards is ignored).
func NewSequential(cfg Config) (*Sequential, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.Schedule.Tasks()
	e := &Sequential{
		cfg:      cfg,
		k:        k,
		agents:   make([]agent.Agent, cfg.N),
		loads:    make([]int, k),
		deficits: make([]float64, k),
		fbDesc:   make([]noise.TaskFeedback, k),
		r:        rng.New(cfg.Seed),
		active:   cfg.N,
	}
	for i := range e.agents {
		e.agents[i] = cfg.Factory.New()
	}
	init := cfg.Init
	if init == nil {
		init = AllIdle
	}
	assign := init(cfg.N, k, e.r)
	if len(assign) != cfg.N {
		return nil, fmt.Errorf("colony: initializer returned %d assignments, want %d",
			len(assign), cfg.N)
	}
	for i, a := range assign {
		if a < agent.Idle || a >= int32(k) {
			return nil, fmt.Errorf("colony: initializer assignment %d out of range", a)
		}
		e.agents[i].Reset(a)
		if a != agent.Idle {
			e.loads[a]++
		}
	}
	return e, nil
}

// Loads returns the current per-task loads. The engine owns the slice.
func (e *Sequential) Loads() []int { return e.loads }

// Round returns the index of the last completed round.
func (e *Sequential) Round() uint64 { return e.round }

// Active returns the number of active ants (see Resize).
func (e *Sequential) Active() int { return e.active }

// Resize changes the active colony size to m in [1, N], with the same
// semantics as Engine.Resize: dying ants (index >= m) release their
// tasks immediately and are never picked by the scheduler; hatched ants
// re-enter idle with cleared memory. Takes effect from the next Step.
func (e *Sequential) Resize(m int) {
	if m < 1 || m > e.cfg.N {
		panic(fmt.Sprintf("colony: Resize to %d outside [1, %d]", m, e.cfg.N))
	}
	if m > e.active {
		for i := e.active; i < m; i++ {
			e.agents[i].Reset(agent.Idle)
		}
	} else {
		for i := m; i < e.active; i++ {
			if a := e.agents[i].Assignment(); a != agent.Idle {
				e.loads[a]--
			}
		}
	}
	e.active = m
}

// Step lets one uniformly random active ant act.
func (e *Sequential) Step() {
	t := e.round + 1
	dem := e.cfg.Schedule.At(t)
	for j := 0; j < e.k; j++ {
		e.deficits[j] = float64(dem[j] - e.loads[j])
	}
	e.cfg.Model.Describe(noise.Env{Round: t, Deficit: e.deficits, Demand: dem}, e.fbDesc)

	i := e.r.Intn(e.active)
	old := e.agents[i].Assignment()
	fb := agent.NewFeedback(e.fbDesc, e.r)
	now := e.agents[i].Step(t, &fb, e.r)
	if old != now {
		if old != agent.Idle {
			e.loads[old]--
		}
		if now != agent.Idle {
			e.loads[now]++
		}
		e.switches++
	}
	e.round = t
}

// Switches returns the cumulative number of assignment changes.
func (e *Sequential) Switches() uint64 { return e.switches }

// Run advances the engine by rounds rounds, invoking obs after each.
func (e *Sequential) Run(rounds int, obs Observer) {
	for i := 0; i < rounds; i++ {
		e.Step()
		if obs != nil {
			obs(e.round, e.loads, e.cfg.Schedule.At(e.round))
		}
	}
}
