package colony

import (
	"fmt"
	"testing"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

// runTrajectory advances an engine rounds rounds and returns the
// per-round load vectors, the cumulative regret Σ_t Σ_j |d(j) − W(j)_t|,
// and the cumulative switch count. resizeAt, if non-zero, shrinks and
// re-grows the colony mid-run to exercise the Resize path.
func runTrajectory(t *testing.T, cfg Config, rounds, resizeAt int) ([][]int, int64, uint64) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var regret int64
	loads := make([][]int, 0, rounds)
	for i := 0; i < rounds; i++ {
		if resizeAt > 0 && i == resizeAt {
			e.Resize(cfg.N * 2 / 3)
		}
		if resizeAt > 0 && i == resizeAt+rounds/4 {
			e.Resize(cfg.N)
		}
		e.Step()
		dem := cfg.Schedule.At(e.Round())
		row := make([]int, len(e.Loads()))
		copy(row, e.Loads())
		loads = append(loads, row)
		for j, w := range row {
			d := dem[j] - w
			if d < 0 {
				d = -d
			}
			regret += int64(d)
		}
	}
	return loads, regret, e.Switches()
}

// TestBatchInterfaceEquivalence is the determinism harness for the
// struct-of-arrays engine: for every built-in algorithm, seeds 1–5, and
// shard counts {1, 4}, the batch path and the interface path must
// produce bit-identical load trajectories and identical regret and
// switch totals for the same (Seed, Shards).
func TestBatchInterfaceEquivalence(t *testing.T) {
	const (
		n      = 600
		rounds = 240
	)
	dem := demand.Vector{80, 120, 60}
	k := len(dem)
	p := agent.DefaultParams(0.05)
	pp := agent.DefaultPreciseParams(0.05, 0.5)

	factories := []agent.Factory{
		agent.AntFactory(k, p),
		agent.HuggerFactory(k, agent.DefaultParams(0.004)),
		agent.PreciseSigmoidFactory(k, pp),
		agent.PreciseAdversarialFactory(k, pp),
		agent.TrivialFactory(k),
	}
	models := []noise.Model{
		noise.SigmoidModel{Lambda: 0.05},
		noise.AdversarialModel{GammaAd: 0.1, Strategy: noise.NewRandomGrey()},
	}

	for _, f := range factories {
		if f.NewBatch == nil {
			t.Fatalf("%s: built-in factory must provide NewBatch", f.Name)
		}
		for _, model := range models {
			for seed := uint64(1); seed <= 5; seed++ {
				for _, shards := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/seed=%d/shards=%d",
						f.Name, model.Name(), seed, shards)
					t.Run(name, func(t *testing.T) {
						cfg := Config{
							N:        n,
							Schedule: demand.Static{V: dem},
							Model:    model,
							Factory:  f,
							Init:     UniformRandom,
							Seed:     seed,
							Shards:   shards,
						}
						iface := cfg
						iface.Factory.NewBatch = nil // force the Agent path

						resizeAt := 0
						if seed == 3 {
							resizeAt = rounds / 3 // cover Resize on both paths
						}
						bLoads, bRegret, bSwitches := runTrajectory(t, cfg, rounds, resizeAt)
						iLoads, iRegret, iSwitches := runTrajectory(t, iface, rounds, resizeAt)

						for r := range bLoads {
							for j := range bLoads[r] {
								if bLoads[r][j] != iLoads[r][j] {
									t.Fatalf("round %d task %d: batch load %d != interface load %d",
										r+1, j, bLoads[r][j], iLoads[r][j])
								}
							}
						}
						if bRegret != iRegret {
							t.Fatalf("regret: batch %d != interface %d", bRegret, iRegret)
						}
						if bSwitches != iSwitches {
							t.Fatalf("switches: batch %d != interface %d", bSwitches, iSwitches)
						}
					})
				}
			}
		}
	}
}

// TestBatchSeedReproducibility pins the batch engine's determinism
// contract directly: equal (Config, Shards) must give bit-identical
// trajectories, and different shard counts are allowed to differ only in
// RNG stream assignment, never in conservation of ants.
func TestBatchSeedReproducibility(t *testing.T) {
	dem := demand.Vector{150, 100}
	cfg := Config{
		N:        800,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 0.04},
		Factory:  agent.AntFactory(2, agent.DefaultParams(0.05)),
		Init:     UniformRandom,
		Seed:     42,
		Shards:   3,
	}
	a, ra, sa := runTrajectory(t, cfg, 300, 0)
	b, rb, sb := runTrajectory(t, cfg, 300, 0)
	if ra != rb || sa != sb {
		t.Fatalf("rerun diverged: regret %d vs %d, switches %d vs %d", ra, rb, sa, sb)
	}
	for r := range a {
		working := 0
		for j := range a[r] {
			if a[r][j] != b[r][j] {
				t.Fatalf("round %d: rerun load mismatch", r+1)
			}
			working += a[r][j]
		}
		if working > cfg.N {
			t.Fatalf("round %d: %d working ants exceed colony size %d", r+1, working, cfg.N)
		}
	}
}
