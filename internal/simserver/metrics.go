package simserver

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"taskalloc/internal/obs"
	"taskalloc/internal/sweeprun"
)

// Telemetry layer (DESIGN.md §14): every counter the ad-hoc Stats
// struct used to hold now lives on obs primitives — atomic, monotone,
// and rendered on GET /v1/metrics in Prometheus text format — and the
// request path is wrapped with per-route latency/status accounting, a
// per-request ID, optional structured access logging, and per-stage
// histograms (admission, cache lookup, engine run, render, journal
// append). Stats() and /v1/healthz re-derive the exact JSON schema
// clients already scrape, so nothing upstream changes.

// serverMetrics is one Server's metric families, with the hot-path
// histogram children resolved once at construction (Vec lookups take a
// lock; Observe on a child is atomic-only).
type serverMetrics struct {
	reg *obs.Registry

	requests   *obs.CounterVec   // route, code
	reqLatency *obs.HistogramVec // route

	// Per-stage latency children of taskalloc_stage_seconds.
	stageAdmission     *obs.Histogram
	stageCacheLookup   *obs.Histogram
	stageQueueWait     *obs.Histogram
	stageEngineRun     *obs.Histogram
	stageRender        *obs.Histogram
	stageJournalAppend *obs.Histogram

	// Cache-disposition counters (the Stats struct's sources of truth).
	sweepHits        *obs.Counter
	sweepMisses      *obs.Counter
	sweepCoalesced   *obs.Counter
	aliasHits        *obs.Counter
	bisectJobHits    *obs.Counter
	bisectJobMisses  *obs.Counter
	bisectCoalesced  *obs.Counter
	diskSweepHits    *obs.Counter
	diskResumes      *obs.Counter
	jobCacheDiskHits *obs.Counter
	persistErrors    *obs.Counter

	// Per-tenant counter families (children cached on each tenant).
	tenantRequests      *obs.CounterVec
	tenantRateLimited   *obs.CounterVec
	tenantQuotaRejected *obs.CounterVec
	tenantJobs          *obs.CounterVec
}

// newServerMetrics registers the server's families. Gauges over live
// sizes (cache entries/bytes, store and blob sizes) read the owning
// subsystem at collection time rather than shadowing it.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}

	m.requests = r.CounterVec("taskalloc_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	m.reqLatency = r.HistogramVec("taskalloc_http_request_seconds",
		"End-to-end request latency in seconds, by route pattern.", nil, "route")

	stages := r.HistogramVec("taskalloc_stage_seconds",
		"Per-stage processing latency in seconds: admission (decode+bounds+quota), "+
			"cache_lookup, queue_wait (admission-gate wait per job), engine_run (one "+
			"simulation), render (one cell's response bytes), journal_append (one "+
			"checkpoint record).", nil, "stage")
	m.stageAdmission = stages.With("admission")
	m.stageCacheLookup = stages.With("cache_lookup")
	m.stageQueueWait = stages.With("queue_wait")
	m.stageEngineRun = stages.With("engine_run")
	m.stageRender = stages.With("render")
	m.stageJournalAppend = stages.With("journal_append")

	sweep := r.CounterVec("taskalloc_sweep_requests_total",
		"POST /v1/sweeps submissions by cache disposition.", "disposition")
	m.sweepHits = sweep.With("hit")
	m.sweepMisses = sweep.With("miss")
	m.sweepCoalesced = sweep.With("coalesced")
	m.aliasHits = r.Counter("taskalloc_semantic_alias_hits_total",
		"Cache hits whose syntactic hash differed from the entry creator's.")

	bisectJobs := r.CounterVec("taskalloc_bisect_job_cache_total",
		"Bisect cell evaluations against the job-level result cache.", "outcome")
	m.bisectJobHits = bisectJobs.With("hit")
	m.bisectJobMisses = bisectJobs.With("miss")
	m.bisectCoalesced = r.Counter("taskalloc_bisect_coalesced_total",
		"Bisect requests that joined an in-flight equivalent execution.")

	m.diskSweepHits = r.Counter("taskalloc_disk_sweep_hits_total",
		"Sweeps served entirely from an on-disk journal.")
	m.diskResumes = r.Counter("taskalloc_disk_resumes_total",
		"Incomplete journals resumed (prefix replayed, remainder executed).")
	m.jobCacheDiskHits = r.Counter("taskalloc_job_cache_disk_hits_total",
		"Bisect cells served from the disk job cache.")
	m.persistErrors = r.Counter("taskalloc_persist_errors_total",
		"Best-effort durability failures (request served from memory).")

	r.GaugeFunc("taskalloc_sweep_cache_entries",
		"Completed-sweep cache entries currently held.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.cache))
		})
	r.GaugeFunc("taskalloc_sweep_cache_bytes",
		"Bytes retained by the completed-sweep cache.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.cacheSize)
		})
	r.GaugeFunc("taskalloc_store_journals",
		"Sweep journals in the durability store (0 when durability is off).", func() float64 {
			if s.store == nil {
				return 0
			}
			n, _ := s.store.Stats()
			return float64(n)
		})
	r.GaugeFunc("taskalloc_store_bytes",
		"Bytes held by the journal store.", func() float64 {
			if s.store == nil {
				return 0
			}
			_, b := s.store.Stats()
			return float64(b)
		})
	r.CounterFunc("taskalloc_store_appends_total",
		"Journal checkpoint records appended.", func() float64 {
			if s.store == nil {
				return 0
			}
			a, _ := s.store.Counters()
			return float64(a)
		})
	r.CounterFunc("taskalloc_store_evictions_total",
		"Complete journals evicted past the store's byte budget.", func() float64 {
			if s.store == nil {
				return 0
			}
			_, e := s.store.Counters()
			return float64(e)
		})
	r.GaugeFunc("taskalloc_blob_entries",
		"Disk job-cache entries (0 when the disk cache is off).", func() float64 {
			if s.blob == nil {
				return 0
			}
			n, _ := s.blob.Stats()
			return float64(n)
		})
	r.GaugeFunc("taskalloc_blob_bytes",
		"Bytes held by the disk job cache.", func() float64 {
			if s.blob == nil {
				return 0
			}
			_, b := s.blob.Stats()
			return float64(b)
		})
	r.CounterFunc("taskalloc_blob_puts_total",
		"Disk job-cache entries written.", func() float64 {
			if s.blob == nil {
				return 0
			}
			p, _ := s.blob.Counters()
			return float64(p)
		})
	r.CounterFunc("taskalloc_blob_evictions_total",
		"Disk job-cache entries evicted past the byte budget.", func() float64 {
			if s.blob == nil {
				return 0
			}
			_, e := s.blob.Counters()
			return float64(e)
		})

	m.tenantRequests = r.CounterVec("taskalloc_tenant_requests_total",
		"Authenticated requests admitted past the rate limiter, by tenant.", "tenant")
	m.tenantRateLimited = r.CounterVec("taskalloc_tenant_rate_limited_total",
		"Requests rejected 429 by the tenant token bucket.", "tenant")
	m.tenantQuotaRejected = r.CounterVec("taskalloc_tenant_quota_rejected_total",
		"Submissions rejected 403 by the tenant job quota.", "tenant")
	m.tenantJobs = r.CounterVec("taskalloc_tenant_jobs_submitted_total",
		"Cumulative sweep jobs charged against the tenant quota.", "tenant")
	return m
}

// observeJobTiming is the sweeprun per-job timing hook: one queue-wait
// and one engine-run observation per executed job. It is called from
// worker goroutines; the histogram children are atomic-only.
func (s *Server) observeJobTiming(t sweeprun.Timing) {
	s.metrics.stageQueueWait.Observe(t.QueueWait.Seconds())
	s.metrics.stageEngineRun.Observe(t.Run.Seconds())
}

// statusWriter captures the response status and byte count for the
// request log and metrics. It preserves http.Flusher — the streaming
// renderers flush per cell — and defaults to 200 like net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush passes through to the wrapped writer so streamed responses
// keep their per-cell flush behavior.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sanitizeTraceID accepts a propagated X-Trace-Id only when it is a
// short token of URL- and log-safe characters — anything else is
// dropped rather than echoed into logs and headers.
func sanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= '0' && c <= '9' || c >= 'a' && c <= 'z' ||
			c >= 'A' && c <= 'Z' || c == '-' || c == '_'
		if !ok {
			return ""
		}
	}
	return id
}

// instrumented is the request-path wrapper ServeHTTP dispatches
// through: route resolution, request/trace IDs, status capture,
// per-route metrics, and the optional structured access log.
func (s *Server) instrumented(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "other"
	}
	reqID := obs.NewID()
	traceID := sanitizeTraceID(r.Header.Get("X-Trace-Id"))
	w.Header().Set("X-Request-Id", reqID)
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

	if s.auth != nil {
		s.middleware(sw, r)
	} else {
		s.mux.ServeHTTP(sw, r)
	}

	elapsed := time.Since(start)
	s.metrics.requests.With(route, strconv.Itoa(sw.status)).Inc()
	s.metrics.reqLatency.With(route).Observe(elapsed.Seconds())
	if s.accessLog != nil {
		attrs := make([]slog.Attr, 0, 9)
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("request_id", reqID),
		)
		if traceID != "" {
			attrs = append(attrs, slog.String("trace_id", traceID))
		}
		if cache := sw.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, slog.String("cache", cache))
		}
		s.accessLog.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
	}
}

// handleMetrics serves the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.reg.ServeHTTP(w, r)
}
