// Package client is the typed Go client of the simulation service
// (internal/simserver): it submits wire-format job grids, consumes the
// NDJSON result stream, and fetches completed summaries. The e2e tests
// and the CI smoke drive the service exclusively through it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"taskalloc/internal/wire"
)

// Client talks to one simulation service instance.
type Client struct {
	base    string
	hc      *http.Client
	token   string
	traceID string
}

// New builds a client for the service at base (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for
// http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// WithToken returns a copy of the client that authenticates every
// request with the tenant bearer token. An empty token clears it.
func (c *Client) WithToken(token string) *Client {
	out := *c
	out.token = token
	return &out
}

// WithTraceID returns a copy of the client that stamps every request
// with the X-Trace-Id header — the correlation ID the grid coordinator
// mints per sweep so one distributed run can be followed through every
// backend's request log. An empty id clears it.
func (c *Client) WithTraceID(id string) *Client {
	out := *c
	out.traceID = id
	return &out
}

// newRequest builds a request with the client's auth and trace
// propagation applied.
func (c *Client) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if c.traceID != "" {
		req.Header.Set("X-Trace-Id", c.traceID)
	}
	return req, nil
}

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// Workers overrides the server's per-sweep fan-out bound (0 = server
	// default). Never changes the response bytes.
	Workers int
	// DiscardResults skips buffering the result set on the returned
	// Submission: onResult observes each cell and Submission.Results
	// stays nil. For streaming consumers (the grid coordinator) whose
	// sweeps can carry multi-MB trajectory lines, this keeps client
	// memory bounded by one line instead of the whole response.
	DiscardResults bool
}

// Submission reports how a submission was served.
type Submission struct {
	// Header is the stream's leading line (sweep ID, grid size).
	Header wire.StreamHeader
	// Cached is true when the response was replayed from the server's
	// result cache (X-Sweep-Cache: hit).
	Cached bool
	// Disposition is the server's X-Cache verdict: "miss" (this request
	// ran the sweep), "hit" (replayed from the result cache — including
	// via a behaviorally equivalent spelling of the sweep), or
	// "coalesced" (joined an identical in-flight execution). Empty when
	// the server predates the header.
	Disposition string
	// Results are the per-cell outcomes in job order.
	Results []wire.Result
}

// readLine reads one newline-terminated line of any length, without
// the trailing newline. io.EOF may accompany a final unterminated line.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		line = bytes.TrimSuffix(line, []byte("\n"))
		return line, err
	}
}

// APIError is a non-2xx response from the service: the HTTP status
// plus the server's (truncated) message body. Callers that retry —
// e.g. the grid coordinator — use StatusCode to tell transport
// failures (retryable, not an APIError at all) from request rejections
// (4xx: a retry elsewhere would be rejected identically).
type APIError struct {
	// StatusCode is the HTTP status of the rejection.
	StatusCode int
	// Status is the HTTP status line (e.g. "400 Bad Request").
	Status string
	// Message is the server's error body, truncated to 4 KiB.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: %s", e.Status, e.Message)
}

// AuthError is a 401 rejection: the request carried no bearer token,
// or one the server does not know. It unwraps to its *APIError, so
// errors.As-on-APIError call sites keep working.
type AuthError struct{ *APIError }

// Unwrap exposes the underlying APIError.
func (e *AuthError) Unwrap() error { return e.APIError }

// QuotaError is a 403 rejection: the submission would exceed the
// tenant's cumulative job quota.
type QuotaError struct{ *APIError }

// Unwrap exposes the underlying APIError.
func (e *QuotaError) Unwrap() error { return e.APIError }

// RateLimitError is a 429 rejection from the tenant's token bucket.
// Unlike other 4xx rejections it is transient: retry after RetryAfter.
type RateLimitError struct {
	*APIError
	// RetryAfter is how long until the bucket readmits the tenant.
	RetryAfter time.Duration
}

// Unwrap exposes the underlying APIError.
func (e *RateLimitError) Unwrap() error { return e.APIError }

// apiError decorates non-2xx responses with the server's message. A
// tenant rejection (wire.ErrorBody) becomes its typed error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	base := &APIError{
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		Message:    string(bytes.TrimSpace(body)),
	}
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Kind != "" {
		base.Message = eb.Error
		switch eb.Kind {
		case "unauthorized":
			return &AuthError{base}
		case "quota":
			return &QuotaError{base}
		case "rate_limited":
			return &RateLimitError{
				APIError:   base,
				RetryAfter: time.Duration(eb.RetryAfterMS) * time.Millisecond,
			}
		}
	}
	return base
}

func (c *Client) sweepsURL(format string, opts SubmitOptions) string {
	q := url.Values{}
	if format != "" {
		q.Set("format", format)
	}
	if opts.Workers > 0 {
		q.Set("workers", strconv.Itoa(opts.Workers))
	}
	u := c.base + "/v1/sweeps"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// SubmitSweep POSTs the grid and consumes the NDJSON stream. onResult,
// if non-nil, observes each cell as its line arrives (in job order);
// the full result set is returned either way.
func (c *Client) SubmitSweep(ctx context.Context, sweep wire.Sweep, opts SubmitOptions,
	onResult func(wire.Result)) (*Submission, error) {
	body, err := wire.MarshalSweep(sweep)
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost,
		c.sweepsURL("ndjson", opts), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return consumeNDJSON(resp, 0, opts.DiscardResults, onResult)
}

// consumeNDJSON reads a sweep stream from an HTTP response, decorating
// the decoded Submission with the response's cache headers.
func consumeNDJSON(resp *http.Response, cursor int, discard bool, onResult func(wire.Result)) (*Submission, error) {
	sub, err := DecodeStream(resp.Body, cursor, discard, onResult)
	if sub != nil {
		sub.Cached = resp.Header.Get("X-Sweep-Cache") == "hit"
		sub.Disposition = resp.Header.Get("X-Cache")
	}
	return sub, err
}

// DecodeStream decodes a sweep NDJSON stream from r: the header line,
// then one wire.Result line per cell, each handed to onResult (when
// non-nil) as it is decoded. The stream is truncated unless exactly
// Header.Jobs - cursor result lines arrive (a cursored stream carries
// only the cells from the cursor on); any malformed, truncated, or
// trailing-garbage input returns an error. The returned Submission
// carries no cache headers — HTTP callers use SubmitSweep/ResumeSweep,
// which decorate it; DecodeStream itself exists so non-HTTP consumers
// (fuzzers, replay tools) can drive the exact decode path the client
// uses.
func DecodeStream(r io.Reader, cursor int, discard bool, onResult func(wire.Result)) (*Submission, error) {
	sub := &Submission{}
	// Lines are read through a growing reader, not a capped scanner:
	// an inline trajectory for a multi-million-round job is one NDJSON
	// line of arbitrary (memory-bounded) length.
	lines := bufio.NewReaderSize(r, 64*1024)
	header, err := readLine(lines)
	if err != nil {
		return nil, fmt.Errorf("client: read stream header: %w", err)
	}
	if err := json.Unmarshal(header, &sub.Header); err != nil {
		return nil, fmt.Errorf("client: decode stream header: %w", err)
	}
	lineCount := 0
	for {
		line, err := readLine(lines)
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("client: read stream: %w", err)
		}
		var res wire.Result
		if jsonErr := json.Unmarshal(line, &res); jsonErr != nil {
			return nil, fmt.Errorf("client: decode result line %d: %w", lineCount, jsonErr)
		}
		lineCount++
		if !discard {
			sub.Results = append(sub.Results, res)
		}
		if onResult != nil {
			onResult(res)
		}
		if err == io.EOF {
			break
		}
	}
	if want := sub.Header.Jobs - cursor; lineCount != want {
		return nil, fmt.Errorf("client: stream truncated: %d of %d results",
			lineCount, want)
	}
	return sub, nil
}

// ResumeSweep reconnects to a sweep's result stream at cursor
// (GET /v1/sweeps/{id}?cursor=N): the response carries cells N on,
// byte-identical to the tail of the uninterrupted POST response, so a
// client that read N result lines before losing its connection — even
// to a server restart, when the sweep was journaled under -data-dir —
// stitches the two bodies into the full response. The returned
// Submission holds only the resumed cells.
func (c *Client) ResumeSweep(ctx context.Context, id string, cursor int, opts SubmitOptions,
	onResult func(wire.Result)) (*Submission, error) {
	if cursor < 0 {
		return nil, fmt.Errorf("client: negative cursor %d", cursor)
	}
	u := c.base + "/v1/sweeps/" + url.PathEscape(id) + "?cursor=" + strconv.Itoa(cursor)
	req, err := c.newRequest(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return consumeNDJSON(resp, cursor, opts.DiscardResults, onResult)
}

// SubmitSweepCSV POSTs the grid with format=csv and returns the raw
// response body — the bytes cmd/sweep would print for the same grid.
func (c *Client) SubmitSweepCSV(ctx context.Context, sweep wire.Sweep, opts SubmitOptions) ([]byte, bool, error) {
	body, err := wire.MarshalSweep(sweep)
	if err != nil {
		return nil, false, err
	}
	req, err := c.newRequest(ctx, http.MethodPost,
		c.sweepsURL("csv", opts), bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, apiError(resp)
	}
	out, err := io.ReadAll(resp.Body)
	return out, resp.Header.Get("X-Sweep-Cache") == "hit", err
}

// Bisect POSTs an adaptive γ-bisection request (POST /v1/bisect) and
// returns the server's response: the evaluated γ cells, the final
// interval partition, and the cache-hit accounting.
func (c *Client) Bisect(ctx context.Context, req wire.BisectRequest) (*wire.BisectResponse, error) {
	if req.Version == "" {
		req.Version = wire.V1
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := c.newRequest(ctx, http.MethodPost,
		c.base+"/v1/bisect", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out wire.BisectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decode bisect response: %w", err)
	}
	return &out, nil
}

// JobHashes is the pair of canonical identities one wire job carries:
// the syntactic hash of its defaults-applied document and the semantic
// hash of its behavioral normal form. Syntactically distinct spellings
// of one behavior — a frozen snapshot and its generative schedule, a
// demands field and its static-schedule equivalent — share Semantic
// but not Syntactic; the service caches and the grid coordinator
// partitions by Semantic.
type JobHashes struct {
	// Syntactic is wire.JobHash: identity of the document as spelled.
	Syntactic string
	// Semantic is wire.SemanticHash: identity of the behavior.
	Semantic string
}

// HashJob computes both canonical identities of one wire job — the
// pair cmd/sweep -dump-jobs prints, and the key space the server's
// result cache and the coordinator's partitioning operate in.
func HashJob(j wire.Job) (JobHashes, error) {
	syn, err := wire.JobHash(j)
	if err != nil {
		return JobHashes{}, err
	}
	sem, err := wire.SemanticHash(j)
	if err != nil {
		return JobHashes{}, err
	}
	return JobHashes{Syntactic: syn, Semantic: sem}, nil
}

// GetSweep fetches a sweep's status/summary by ID.
func (c *Client) GetSweep(ctx context.Context, id string) (*wire.SweepStatus, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		c.base+"/v1/sweeps/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var status wire.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return nil, fmt.Errorf("client: decode sweep status: %w", err)
	}
	return &status, nil
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := c.newRequest(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Version fetches the server's wire-format and runtime versions.
func (c *Client) Version(ctx context.Context) (map[string]string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, c.base+"/v1/version", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	out := map[string]string{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
