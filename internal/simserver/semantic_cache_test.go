package simserver_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"taskalloc/internal/scenario"
	"taskalloc/internal/simserver"
	"taskalloc/internal/wire"
)

// aliasSweeps builds the flagship alias pair: one sweep over a
// generative step schedule and one over the frozen snapshot of that
// same schedule — behaviorally identical realized demand, syntactically
// distinct documents.
func aliasSweeps(t *testing.T, trajectory bool) (generative, frozen wire.Sweep) {
	t.Helper()
	step := &wire.Schedule{
		Kind: "step", Base: []int{40, 60},
		When: []uint64{40}, Vectors: [][]int{{70, 30}},
	}
	sched, err := step.ToSchedule()
	if err != nil {
		t.Fatal(err)
	}
	fz, err := scenario.Freeze(sched, 200)
	if err != nil {
		t.Fatal(err)
	}
	fzEnc, err := wire.FromSchedule(fz)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sc wire.Schedule) wire.Sweep {
		var jobs []wire.Job
		for seed := uint64(1); seed <= 2; seed++ {
			s := sc
			jobs = append(jobs, wire.Job{
				Meta:       []string{"seed", itoa(seed)},
				Rounds:     100,
				Trajectory: trajectory,
				Config: wire.Config{
					Ants: 240, Epsilon: 0.5, Gamma: 0.03, Seed: seed, Shards: 2,
					Schedule: &s,
				},
			})
		}
		return wire.Sweep{Version: wire.V1, Jobs: jobs}
	}
	g, f := mk(*step), mk(fzEnc)
	synG, err := wire.SweepHash(g)
	if err != nil {
		t.Fatal(err)
	}
	synF, err := wire.SweepHash(f)
	if err != nil {
		t.Fatal(err)
	}
	if synG == synF {
		t.Fatal("alias pair is syntactically identical; test is vacuous")
	}
	return g, f
}

func postRaw(t *testing.T, url string, sweep wire.Sweep) (*http.Response, []byte) {
	t.Helper()
	blob, err := wire.MarshalSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps?workers=2", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	return resp, body
}

// TestSemanticAliasEndToEnd is the issue's acceptance e2e: a frozen
// snapshot and its generative schedule produce the same semantic sweep
// ID, hit the same cache entry, and replay byte-identical bodies —
// trajectories included.
func TestSemanticAliasEndToEnd(t *testing.T) {
	srv := simserver.New(simserver.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	generative, frozen := aliasSweeps(t, true)

	fresh, freshBody := postRaw(t, ts.URL, generative)
	if got := fresh.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", got)
	}
	cached, cachedBody := postRaw(t, ts.URL, frozen)
	if got := cached.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("alias submission X-Cache = %q, want hit", got)
	}
	if got := cached.Header.Get("X-Sweep-Cache"); got != "hit" {
		t.Fatalf("alias submission X-Sweep-Cache = %q, want hit", got)
	}
	if a, b := fresh.Header.Get("X-Sweep-Id"), cached.Header.Get("X-Sweep-Id"); a != b || a == "" {
		t.Fatalf("alias pair got different sweep IDs: %q vs %q", a, b)
	}
	if !bytes.Equal(freshBody, cachedBody) {
		t.Fatalf("alias replay not byte-identical:\n fresh: %d bytes\ncached: %d bytes", len(freshBody), len(cachedBody))
	}

	st := srv.Stats()
	if st.SweepMisses != 1 || st.SweepHits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}
	if st.SemanticAliasHits != 1 {
		t.Fatalf("semantic alias hits = %d, want 1", st.SemanticAliasHits)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1 (aliases share the entry)", st.CacheEntries)
	}
}

// TestSemanticAliasEvictionAccounting is the budget-accounting
// satellite: two syntactically distinct spellings coalesce onto one
// semantic entry, so the byte budget is charged once — and when the
// entry is evicted, every spelling misses (no stale alias survives).
func TestSemanticAliasEvictionAccounting(t *testing.T) {
	t.Run("charged once", func(t *testing.T) {
		srv := simserver.New(simserver.Options{Workers: 2})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()

		generative, frozen := aliasSweeps(t, true)
		postRaw(t, ts.URL, generative)
		after1 := srv.Stats()
		if after1.CacheBytes <= 0 {
			t.Fatalf("entry charged %d bytes, want > 0", after1.CacheBytes)
		}
		postRaw(t, ts.URL, frozen)
		after2 := srv.Stats()
		if after2.CacheBytes != after1.CacheBytes {
			t.Fatalf("alias hit changed the charged bytes: %d -> %d", after1.CacheBytes, after2.CacheBytes)
		}
		if after2.CacheEntries != 1 {
			t.Fatalf("cache entries = %d, want 1", after2.CacheEntries)
		}
	})

	t.Run("eviction invalidates every alias", func(t *testing.T) {
		// CacheBytes: 1 keeps the budget permanently exceeded, so the
		// next insertion evicts every completed entry — after which the
		// alias spelling must re-run rather than hit a stale mapping.
		srv := simserver.New(simserver.Options{Workers: 2, CacheBytes: 1})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()

		generative, frozen := aliasSweeps(t, true)
		first, firstBody := postRaw(t, ts.URL, generative)
		if got := first.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("first submission X-Cache = %q, want miss", got)
		}
		// A distinct sweep's insertion pushes the completed entry out.
		evictor := generative
		evictor.Jobs = evictor.Jobs[:1]
		postRaw(t, ts.URL, evictor)

		second, secondBody := postRaw(t, ts.URL, frozen)
		if got := second.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("post-eviction alias X-Cache = %q, want miss (entry was evicted)", got)
		}
		// Both ran fresh, and determinism still makes the bodies equal.
		if !bytes.Equal(firstBody, secondBody) {
			t.Fatal("fresh alias runs diverged")
		}
		st := srv.Stats()
		if st.SweepMisses != 3 || st.SweepHits != 0 {
			t.Fatalf("stats = %+v, want 3 misses and no hits", st)
		}
	})
}

// TestConcurrentAliasSubmissionsCoalesce: syntactically distinct but
// equivalent concurrent submissions coalesce onto one execution, and
// the joiners are counted as semantic-alias coalesces.
func TestConcurrentAliasSubmissionsCoalesce(t *testing.T) {
	srv := simserver.New(simserver.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	generative, frozen := aliasSweeps(t, false)
	type outcome struct {
		body []byte
		err  error
	}
	results := make(chan outcome, 2)
	for _, sweep := range []wire.Sweep{generative, frozen} {
		blob, err := wire.MarshalSweep(sweep)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			resp, err := http.Post(ts.URL+"/v1/sweeps?workers=2", "application/json", bytes.NewReader(blob))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
			}
			results <- outcome{body: body, err: err}
		}()
	}
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatalf("submissions failed: %v / %v", a.err, b.err)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Fatal("concurrent alias submissions got different bodies")
	}
	st := srv.Stats()
	if st.SweepMisses != 1 {
		t.Fatalf("misses = %d, want 1 (one execution)", st.SweepMisses)
	}
	if st.SweepHits+st.SweepCoalesced != 1 {
		t.Fatalf("stats = %+v, want exactly one joiner", st)
	}
	if st.SemanticAliasHits != 1 {
		t.Fatalf("semantic alias hits = %d, want 1", st.SemanticAliasHits)
	}
}
