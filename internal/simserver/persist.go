package simserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"taskalloc"
	"taskalloc/internal/store"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// Durability glue: how sweeps checkpoint to the journal store and come
// back. One journal per sweep, keyed by the semantic sweep hash:
//
//	header  = journalHeader (the canonical document + identity)
//	records = one cellRecord per completed cell, in index order
//	commit  = commitRecord (summary + failure count)
//
// Because sweeprun.Stream delivers results in strict index order, the
// journal's record sequence IS the response's cell order: recovery of
// k records means cells [0,k) are replayable byte-identically and
// execution resumes at cell k — from the STORED document, so an alias
// spelling that resumes someone else's sweep still renders the
// creator's exact bytes.

// journalHeader is a sweep journal's header payload.
type journalHeader struct {
	// ID is the semantic sweep hash (the journal id, restated so a
	// journal is self-describing).
	ID string `json:"id"`
	// SynID is the creator's syntactic hash, for alias accounting.
	SynID string `json:"syn_id"`
	// Jobs is the grid size.
	Jobs int `json:"jobs"`
	// Doc is the canonical document (wire.MarshalSweep), re-decoded on
	// resume so remaining cells run with the creator's exact spelling.
	Doc json.RawMessage `json:"doc"`
}

// cellRecord is one checkpointed cell. Report round-trips through JSON
// byte-stably (shortest-float encoding is its own fixed point, and
// Report's NaN↔null mapping is symmetric), so a replayed cell renders
// the same bytes the original stream sent.
type cellRecord struct {
	Index  int               `json:"index"`
	Meta   []string          `json:"meta,omitempty"`
	Rounds int               `json:"rounds"`
	Report *taskalloc.Report `json:"report,omitempty"`
	Err    string            `json:"err,omitempty"`
	Traj   []byte            `json:"traj,omitempty"`
}

// commitRecord is the terminal journal payload.
type commitRecord struct {
	Summary sweeprun.Summary `json:"summary"`
	Failed  int              `json:"failed"`
}

// persistedJob is the blob-cache encoding of one job-level result
// (bisect cells), keyed by wire.SemanticHash.
type persistedJob struct {
	Report *taskalloc.Report `json:"report,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// diskSweep is the in-memory index entry for one on-disk journal.
type diskSweep struct {
	complete bool
}

// cellToRecord converts a completed cell to its journal payload.
func cellToRecord(i int, c cell) cellRecord {
	rec := cellRecord{Index: i, Meta: c.meta, Rounds: c.rounds, Err: c.err, Traj: c.traj}
	if c.err == "" {
		rep := c.report
		rec.Report = &rep
	}
	return rec
}

// recordToCell converts a recovered journal payload back to a cell.
func recordToCell(rec cellRecord) cell {
	c := cell{meta: rec.Meta, rounds: rec.Rounds, err: rec.Err, traj: rec.Traj}
	if rec.Report != nil {
		c.report = *rec.Report
	}
	return c
}

// persistError counts a durability failure. Persistence is best-effort
// around the in-memory serving path: a journal that cannot be written
// degrades the sweep to memory-only, never fails the request.
func (s *Server) persistError() {
	s.metrics.persistErrors.Inc()
}

// createJournal starts a sweep's journal; nil when durability is off
// or the journal could not be created (counted, degraded to memory).
func (s *Server) createJournal(id, synID string, sweep wire.Sweep) *store.Journal {
	if s.store == nil {
		return nil
	}
	doc, err := wire.MarshalSweep(sweep)
	if err != nil {
		s.persistError()
		return nil
	}
	hdr, err := json.Marshal(journalHeader{ID: id, SynID: synID, Jobs: len(sweep.Jobs), Doc: doc})
	if err != nil {
		s.persistError()
		return nil
	}
	j, err := s.store.Create(id, hdr)
	if err != nil {
		s.persistError()
		return nil
	}
	s.mu.Lock()
	s.diskIdx[id] = &diskSweep{}
	s.mu.Unlock()
	return j
}

// dropJournal discards a failed submission's journal with its index
// entry (the owning request never ran, so nothing is worth resuming).
func (s *Server) dropJournal(j *store.Journal) {
	if j == nil {
		return
	}
	_ = j.Close()
	_ = s.store.Remove(j.ID())
	s.mu.Lock()
	delete(s.diskIdx, j.ID())
	s.mu.Unlock()
}

// hasJournal reports whether id has an on-disk journal.
func (s *Server) hasJournal(id string) (exists, complete bool) {
	if s.store == nil {
		return false, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.diskIdx[id]
	if !ok {
		return false, false
	}
	return true, d.complete
}

// recovered is a journal decoded back to serving state.
type recovered struct {
	header  journalHeader
	cells   []cell // the checkpointed prefix
	summary sweeprun.Summary
	failed  int
	// journal is the append handle for an incomplete journal (nil when
	// the journal was complete).
	journal *store.Journal
}

// loadJournal recovers a sweep journal: read-only for a complete one,
// truncate-and-append for an incomplete one (becoming the journal's
// owner). A journal that cannot be decoded is removed and reported as
// an error — the caller executes fresh, as if it never existed.
func (s *Server) loadJournal(id string, wantAppend bool) (*recovered, error) {
	var (
		rec *store.Recovered
		j   *store.Journal
		err error
	)
	if wantAppend {
		j, rec, err = s.store.OpenAppend(id)
	} else {
		rec, err = s.store.Load(id)
	}
	if err != nil {
		s.mu.Lock()
		delete(s.diskIdx, id)
		s.mu.Unlock()
		if !errors.Is(err, store.ErrNotExist) {
			_ = s.store.Remove(id)
			s.persistError()
		}
		return nil, err
	}
	out := &recovered{journal: j}
	if err := json.Unmarshal(rec.Header, &out.header); err != nil {
		s.discardRecovered(id, j)
		return nil, fmt.Errorf("journal %s: bad header: %w", id, err)
	}
	if out.header.Jobs < 0 || len(rec.Records) > out.header.Jobs {
		s.discardRecovered(id, j)
		return nil, fmt.Errorf("journal %s: %d records for %d jobs", id, len(rec.Records), out.header.Jobs)
	}
	for i, raw := range rec.Records {
		var cr cellRecord
		if err := json.Unmarshal(raw, &cr); err != nil || cr.Index != i {
			s.discardRecovered(id, j)
			return nil, fmt.Errorf("journal %s: bad record %d", id, i)
		}
		out.cells = append(out.cells, recordToCell(cr))
	}
	if rec.Complete {
		var com commitRecord
		if err := json.Unmarshal(rec.Final, &com); err != nil || len(out.cells) != out.header.Jobs {
			s.discardRecovered(id, j)
			return nil, fmt.Errorf("journal %s: bad commit", id)
		}
		out.summary = com.Summary
		out.failed = com.Failed
	}
	return out, nil
}

// discardRecovered removes an undecodable journal so the sweep can be
// re-executed fresh.
func (s *Server) discardRecovered(id string, j *store.Journal) {
	if j != nil {
		_ = j.Close()
	}
	_ = s.store.Remove(id)
	s.mu.Lock()
	delete(s.diskIdx, id)
	s.mu.Unlock()
	s.persistError()
}

// executeOwned runs an owned sweep to completion and publishes it:
// prefix cells (recovered from a journal, len(prefix) <= len(jobs))
// are emitted as-is, the remaining jobs execute through the shared
// pool, each cell checkpointed to j (when non-nil) BEFORE it is
// emitted — the record is on disk before its bytes can reach a
// client, so a crash never leaves a client holding bytes the journal
// cannot replay. Emit receives every cell in strict index order.
func (s *Server) executeOwned(entry *sweepEntry, jobs []sweeprun.Job, recs []*wire.TrajectoryRecorder, prefix []cell, j *store.Journal, workers int, emit func(i int, c cell)) {
	cells := make([]cell, len(jobs))
	copy(cells, prefix)
	results := make([]sweeprun.Result, len(jobs))
	for i, c := range prefix {
		results[i] = sweeprun.Result{Index: i, Job: jobs[i], Report: c.report}
		if c.err != "" {
			results[i].Err = errors.New(c.err)
		}
		emit(i, c)
	}

	off := len(prefix)
	journal := j
	rest := sweeprun.Stream(jobs[off:], sweeprun.Options{
		Workers:  workers,
		Pool:     s.pool,
		Gate:     s.gate,
		OnTiming: s.observeJobTiming,
	}, func(res sweeprun.Result) {
		if d := s.opts.JobDelay; d > 0 {
			// Chaos/test hook: make every freshly computed cell cost at
			// least d wall-clock, simulating a slow heterogeneous backend.
			time.Sleep(d)
		}
		i := off + res.Index
		c := cell{meta: res.Job.Meta, rounds: res.Job.Rounds, report: res.Report}
		if res.Err != nil {
			c.err = res.Err.Error()
		} else if rec := recs[i]; rec != nil {
			// Only successful cells carry a trajectory: a failed cell's
			// recorder holds just the pre-written header, which would
			// read as a legitimate zero-round run.
			c.traj = rec.Bytes()
		}
		if journal != nil {
			appendStart := time.Now()
			payload, err := json.Marshal(cellToRecord(i, c))
			if err == nil {
				err = journal.Append(payload)
			}
			s.metrics.stageJournalAppend.ObserveSince(appendStart)
			if err != nil {
				// Degrade to memory-only; the journal keeps its valid
				// prefix for a later resume.
				_ = journal.Close()
				journal = nil
				s.persistError()
			}
		}
		cells[i] = c
		emit(i, c)
	})
	for i, res := range rest {
		res.Index = off + i
		results[off+i] = res
	}

	sum := sweeprun.Summarize(results)
	if journal != nil {
		payload, err := json.Marshal(commitRecord{Summary: sum, Failed: sum.Failed})
		if err == nil {
			err = journal.Commit(payload)
		}
		if err != nil {
			_ = journal.Close()
			s.persistError()
		} else {
			s.mu.Lock()
			if d, ok := s.diskIdx[entry.id]; ok {
				d.complete = true
			}
			s.mu.Unlock()
		}
	}
	s.publish(entry, cells, sum)
}

// serveFromDisk tries to satisfy an owned entry from its journal.
// It returns the disposition it served ("hit" for a complete journal,
// "resume" after finishing an incomplete one) and whether it handled
// the response; ("", false) means no usable journal — execute fresh.
// synID is the submitting document's syntactic hash ("" for GETs), for
// alias accounting against the stored creator's.
func (s *Server) serveFromDisk(w http.ResponseWriter, r *http.Request, entry *sweepEntry, synID, format string, cursor, workers int) (string, bool) {
	exists, complete := s.hasJournal(entry.id)
	if !exists {
		return "", false
	}
	rec, err := s.loadJournal(entry.id, !complete)
	if err != nil {
		return "", false
	}
	s.mu.Lock()
	entry.jobs = rec.header.Jobs
	entry.synID = rec.header.SynID // the creator whose bytes we replay
	s.mu.Unlock()
	if synID != "" && rec.header.SynID != synID {
		s.metrics.aliasHits.Inc()
	}

	if rec.journal == nil {
		// Complete: publish the recovered cells and replay from cursor.
		// A POST so served never executed — it is a sweep hit (the
		// lookup deferred the hit-or-miss call to here, keeping the
		// counters monotone).
		s.metrics.diskSweepHits.Inc()
		if synID != "" {
			s.metrics.sweepHits.Inc()
		}
		s.publish(entry, rec.cells, rec.summary)
		if cursor > len(rec.cells) {
			httpError(w, http.StatusBadRequest,
				"cursor %d past end of sweep (%d jobs)", cursor, len(rec.cells))
			return "hit", true
		}
		s.setStreamHeaders(w, format, entry.id, "hit")
		s.renderFrom(w, entry, format, cursor)
		return "hit", true
	}

	// Incomplete: resume the remaining jobs from the STORED document,
	// so an alias spelling that adopts the journal still renders the
	// creator's exact bytes.
	sweep, err := wire.DecodeSweep(bytes.NewReader(rec.header.Doc))
	var (
		jobs []sweeprun.Job
		recs []*wire.TrajectoryRecorder
	)
	if err == nil {
		jobs, recs, err = buildRunnable(sweep)
	}
	if err != nil || len(rec.cells) > len(jobs) || len(jobs) != rec.header.Jobs {
		// Unusable journal: the caller executes fresh and charges the
		// miss itself.
		s.discardRecovered(entry.id, rec.journal)
		return "", false
	}
	// A resuming POST still executes work, so it counts as the miss the
	// lookup deferred (GET adoptions, synID "", count neither way — as
	// before).
	if synID != "" {
		s.metrics.sweepMisses.Inc()
	}
	if cursor > rec.header.Jobs {
		_ = rec.journal.Close()
		httpError(w, http.StatusBadRequest,
			"cursor %d past end of sweep (%d jobs)", cursor, rec.header.Jobs)
		// The entry was never published; drop it so a retry can resume.
		s.drop(entry)
		return "resume", true
	}
	s.metrics.diskResumes.Inc()
	s.setStreamHeaders(w, format, entry.id, "resume")
	stream, flush := s.newStream(w, format, entry.id, rec.header.Jobs, cursor)
	s.executeOwned(entry, jobs, recs, rec.cells, rec.journal, workers, func(i int, c cell) {
		if i >= cursor {
			stream.cell(i, c)
			flush()
		}
	})
	stream.finish()
	return "resume", true
}

// newStream builds the response renderer for a (possibly cursored)
// stream plus its flush hook. A cursor > 0 skips the CSV header so
// stitched responses concatenate cleanly; the NDJSON header line is
// always sent (resumed clients drop it — it carries the id they
// already have).
func (s *Server) newStream(w http.ResponseWriter, format, id string, jobs, cursor int) (streamRenderer, func()) {
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	var stream streamRenderer
	switch format {
	case "csv":
		stream = newCSVRenderer(w, cursor == 0)
	default:
		stream = newNDJSONRenderer(w, wire.StreamHeader{Version: wire.V1, ID: id, Jobs: jobs})
	}
	return stream, flush
}

// renderFrom replays a completed sweep's cells starting at cursor.
func (s *Server) renderFrom(w http.ResponseWriter, e *sweepEntry, format string, cursor int) {
	stream, _ := s.newStream(w, format, e.id, e.jobs, cursor)
	for i := cursor; i < len(e.cells); i++ {
		stream.cell(i, e.cells[i])
	}
	stream.finish()
}

// jobBlobGet consults the disk job cache; ok only for a decodable
// entry.
func (s *Server) jobBlobGet(key string) (jobResult, bool) {
	if s.blob == nil {
		return jobResult{}, false
	}
	raw, ok := s.blob.Get(key)
	if !ok {
		return jobResult{}, false
	}
	var pj persistedJob
	if err := json.Unmarshal(raw, &pj); err != nil {
		return jobResult{}, false
	}
	jr := jobResult{err: pj.Err}
	if pj.Report != nil {
		jr.report = *pj.Report
	}
	return jr, true
}

// jobBlobPut writes one job result to the disk cache (best-effort).
func (s *Server) jobBlobPut(key string, jr jobResult) {
	if s.blob == nil {
		return
	}
	pj := persistedJob{Err: jr.err}
	if jr.err == "" {
		rep := jr.report
		pj.Report = &rep
	}
	raw, err := json.Marshal(pj)
	if err == nil {
		err = s.blob.Put(key, raw)
	}
	if err != nil {
		s.persistError()
	}
}
