package simserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"taskalloc/internal/wire"
)

// TestRateLimitTokenBucket drives the per-tenant token bucket on an
// injected clock: the burst is admitted, the next request is a 429
// carrying Retry-After and a machine-readable retry_after_ms, and one
// refill interval later the tenant is admitted again.
func TestRateLimitTokenBucket(t *testing.T) {
	srv, err := Open(Options{Tenants: []TenantConfig{
		{Name: "acme", Token: "tok", RatePerSec: 1, Burst: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	now := time.Unix(1_700_000_000, 0)
	srv.nowFn = func() time.Time { return now }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Any authenticated endpoint exercises the bucket; an unknown sweep
	// id is admitted (past the limiter) and then 404s.
	get := func() (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/deadbeef", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	for i := 0; i < 2; i++ {
		resp, body := get()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("burst request %d: HTTP %d (%s), want 404", i, resp.StatusCode, body)
		}
	}
	resp, body := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	var eb wire.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("429 body is not an ErrorBody: %v (%s)", err, body)
	}
	if eb.Kind != "rate_limited" || eb.RetryAfterMS != 1000 {
		t.Fatalf("429 body = %+v, want rate_limited with retry_after_ms 1000", eb)
	}

	now = now.Add(time.Second) // one token refilled
	if resp, body := get(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-refill request: HTTP %d (%s), want 404", resp.StatusCode, body)
	}

	stats := srv.tenantStats()["acme"]
	if stats.Requests != 3 || stats.RateLimited != 1 {
		t.Fatalf("tenant stats = %+v, want 3 admitted, 1 rate-limited", stats)
	}
}

// smallBisectRequest is a cheap deterministic bisect request for the
// disk-cache tests.
func smallBisectRequest() wire.BisectRequest {
	return wire.BisectRequest{
		Version: wire.V1,
		Job: wire.Job{Rounds: 150, Config: wire.Config{
			Ants: 120, Demands: []int{40, 40}, Seed: 3, Shards: 1,
		}},
		GammaLo:    0.01,
		GammaHi:    0.05,
		TargetBand: 0.5,
		MaxEvals:   8,
	}
}

// TestBisectDiskCacheWarmAcrossRestart: bisect cell results spilled to
// the disk job cache serve a repeat bisection on a FRESH process — every
// cell cached, promoted through JobCacheDiskHits, response X-Cache hit,
// reports identical to the first run's.
func TestBisectDiskCacheWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srvA, err := Open(Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	first, code, msg := postBisect(t, tsA, smallBisectRequest())
	if first == nil {
		t.Fatalf("first bisect: HTTP %d: %s", code, msg)
	}
	if first.Evals == 0 || first.CacheHits != 0 {
		t.Fatalf("first bisect evals=%d hits=%d, want fresh evaluations", first.Evals, first.CacheHits)
	}
	tsA.Close()
	srvA.Close()

	srvB, err := Open(Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	again, code, msg := postBisect(t, tsB, smallBisectRequest())
	if again == nil {
		t.Fatalf("repeat bisect: HTTP %d: %s", code, msg)
	}
	if again.CacheHits != again.Evals || again.Evals != first.Evals {
		t.Fatalf("repeat bisect evals=%d hits=%d, want all %d from cache", again.Evals, again.CacheHits, first.Evals)
	}
	if len(again.Cells) != len(first.Cells) {
		t.Fatalf("repeat bisect has %d cells, want %d", len(again.Cells), len(first.Cells))
	}
	for i := range first.Cells {
		if again.Cells[i].Gamma != first.Cells[i].Gamma || again.Cells[i].JobHash != first.Cells[i].JobHash {
			t.Fatalf("cell %d identity diverged across restart", i)
		}
		if !again.Cells[i].Cached {
			t.Fatalf("cell %d (γ=%g) missed the warm disk cache", i, again.Cells[i].Gamma)
		}
		if !reflect.DeepEqual(again.Cells[i].Report, first.Cells[i].Report) {
			t.Fatalf("cell %d report diverged across restart", i)
		}
	}
	st := srvB.Stats()
	if st.JobCacheDiskHits == 0 || st.JobCacheDiskHits != uint64(first.Evals) {
		t.Fatalf("job cache disk hits = %d, want %d", st.JobCacheDiskHits, first.Evals)
	}
	if st.PersistErrors != 0 {
		t.Fatalf("persist errors = %d, want 0", st.PersistErrors)
	}
}
