package simserver_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"taskalloc/internal/simserver"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/wire"
)

// openDurable boots a durable server on dir with its HTTP front end.
func openDurable(t *testing.T, dir string) (*simserver.Server, *httptest.Server) {
	t.Helper()
	srv, err := simserver.Open(simserver.Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return srv, httptest.NewServer(srv)
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestDurableRestartReplay: a sweep journaled under -data-dir survives a
// full server restart — a cursored GET on the new process replays the
// original POST body byte-identically, and an alias spelling of the
// sweep still hits the (re-adopted) cache entry.
func TestDurableRestartReplay(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := openDurable(t, dir)

	generative, frozen := aliasSweeps(t, true)
	fresh, freshBody := postRaw(t, tsA.URL, generative)
	if got := fresh.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache = %q, want miss", got)
	}
	id := fresh.Header.Get("X-Sweep-Id")
	tsA.Close()
	srvA.Close()

	srvB, tsB := openDurable(t, dir)
	defer func() {
		tsB.Close()
		srvB.Close()
	}()

	// Before anything adopts the journal, the status endpoint reports
	// the sweep as resumable rather than 404ing.
	resp, body := getRaw(t, tsB.URL+"/v1/sweeps/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status before adoption: HTTP %d: %s", resp.StatusCode, body)
	}
	var status wire.SweepStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Status != "resumable" {
		t.Fatalf("pre-adoption status = %q, want resumable", status.Status)
	}

	// The cursored GET is byte-identical to the original POST response.
	resp, replay := getRaw(t, tsB.URL+"/v1/sweeps/"+id+"?cursor=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cursored GET: HTTP %d: %s", resp.StatusCode, replay)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("cursored GET X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(replay, freshBody) {
		t.Fatalf("replay after restart not byte-identical: %d vs %d bytes", len(replay), len(freshBody))
	}

	// An alias spelling POSTed to the restarted server hits too.
	cached, cachedBody := postRaw(t, tsB.URL, frozen)
	if got := cached.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("alias after restart X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cachedBody, freshBody) {
		t.Fatal("alias replay after restart not byte-identical")
	}

	st := srvB.Stats()
	if st.DiskSweepHits != 1 {
		t.Fatalf("disk sweep hits = %d, want 1", st.DiskSweepHits)
	}
	if st.SemanticAliasHits != 1 {
		t.Fatalf("semantic alias hits = %d, want 1", st.SemanticAliasHits)
	}
	if st.PersistErrors != 0 {
		t.Fatalf("persist errors = %d, want 0", st.PersistErrors)
	}
	if st.DiskJournals == 0 || st.DiskBytes == 0 {
		t.Fatalf("journal store empty after restart: %+v", st)
	}
}

// TestDurableCursorStitch: a client that read N result lines before
// losing its connection reconnects with ?cursor=N on a fresh process
// and stitches the two bodies into exactly the uninterrupted response —
// for NDJSON via the raw endpoint and the typed client, and for CSV at
// cursor 0.
func TestDurableCursorStitch(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := openDurable(t, dir)
	ctx := context.Background()

	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, fullBody := postRaw(t, tsA.URL, sweep)
	id := fresh.Header.Get("X-Sweep-Id")
	cA := client.New(tsA.URL, tsA.Client())
	fullCSV, _, err := cA.SubmitSweepCSV(ctx, sweep, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	srvA.Close()

	srvB, tsB := openDurable(t, dir)
	defer func() {
		tsB.Close()
		srvB.Close()
	}()

	// NDJSON: body = header line + one result line per cell; a cursored
	// response carries the header line (the resuming client drops it)
	// then the lines from the cursor on.
	lines := bytes.SplitAfter(fullBody, []byte("\n"))
	const cursor = 3
	resp, tail := getRaw(t, tsB.URL+"/v1/sweeps/"+id+"?cursor=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cursored GET: HTTP %d: %s", resp.StatusCode, tail)
	}
	tailLines := bytes.SplitAfter(tail, []byte("\n"))
	var stitched []byte
	for _, l := range lines[:1+cursor] { // original header + first 3 cells
		stitched = append(stitched, l...)
	}
	for _, l := range tailLines[1:] { // resumed cells, header line dropped
		stitched = append(stitched, l...)
	}
	if !bytes.Equal(stitched, fullBody) {
		t.Fatalf("stitched stream differs from uninterrupted body:\n--- stitched\n%s--- full\n%s", stitched, fullBody)
	}

	// The typed client's resume: only the cells from the cursor on, in
	// order, with the truncation check against Jobs - cursor.
	cB := client.New(tsB.URL, tsB.Client())
	sub, err := cB.ResumeSweep(ctx, id, cursor, client.SubmitOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Results) != len(sweep.Jobs)-cursor {
		t.Fatalf("resumed %d cells, want %d", len(sub.Results), len(sweep.Jobs)-cursor)
	}
	for i, res := range sub.Results {
		if res.Index != cursor+i {
			t.Fatalf("resumed line %d has index %d, want %d", i, res.Index, cursor+i)
		}
	}

	// A cursor past the end is a 400, not a truncated stream.
	if _, err := cB.ResumeSweep(ctx, id, len(sweep.Jobs)+1, client.SubmitOptions{}, nil); err == nil {
		t.Fatal("cursor past end did not error")
	}

	// CSV at cursor 0 is byte-identical to the POST ?format=csv body.
	resp, csvBody := getRaw(t, tsB.URL+"/v1/sweeps/"+id+"?cursor=0&format=csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("CSV GET: HTTP %d: %s", resp.StatusCode, csvBody)
	}
	if !bytes.Equal(csvBody, fullCSV) {
		t.Fatal("CSV replay after restart not byte-identical")
	}
}

// frameEnds parses the journal's stable on-disk framing (8-byte magic,
// then [kind u8][len u32 LE][crc u32 LE][payload] frames) and returns
// the byte offset at the end of each complete frame — the crash points
// the torn-tail tests cut at.
func frameEnds(t *testing.T, wal []byte) []int {
	t.Helper()
	const magic, header = 8, 9
	if len(wal) < magic {
		t.Fatalf("journal too short: %d bytes", len(wal))
	}
	var ends []int
	off := magic
	for off+header <= len(wal) {
		n := int(binary.LittleEndian.Uint32(wal[off+1 : off+5]))
		end := off + header + n
		if end > len(wal) {
			break
		}
		off = end
		ends = append(ends, off)
	}
	return ends
}

// TestDurableResumeMatchesUninterrupted is the crash-consistency
// acceptance test at the HTTP layer: for journals cut at several crash
// points (commit frame written but unmarked, torn mid-record, header
// only, torn mid-header), a fresh server over the damaged directory
// serves the SAME bytes an uninterrupted run produced — resuming where
// the journal's valid prefix ends.
func TestDurableResumeMatchesUninterrupted(t *testing.T) {
	// Golden run: one durable server, never crashed.
	goldDir := t.TempDir()
	srvA, tsA := openDurable(t, goldDir)
	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, fullBody := postRaw(t, tsA.URL, sweep)
	id := fresh.Header.Get("X-Sweep-Id")
	tsA.Close()
	srvA.Close()

	wal, err := os.ReadFile(filepath.Join(goldDir, "sweeps", id[:2], id+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, wal)
	// header + 6 records + commit = 8 complete frames
	if want := len(sweep.Jobs) + 2; len(ends) != want {
		t.Fatalf("journal has %d frames, want %d", len(ends), want)
	}

	// seed writes a damaged copy of the journal (cut at size, commit
	// marker withheld — the crash happened before the marker renamed in)
	// into a fresh data dir.
	seed := func(size int) string {
		dir := t.TempDir()
		sub := filepath.Join(dir, "sweeps", id[:2])
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, id+".wal"), wal[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cases := []struct {
		name    string
		size    int
		resumes bool // a valid journal prefix survives, so the POST resumes
	}{
		{"commit frame unmarked", len(wal), true},
		{"torn mid-record", ends[3] + 5, true},
		{"header only", ends[0], true},
		{"torn mid-header", 12, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := seed(tc.size)
			srv, ts := openDurable(t, dir)
			defer func() {
				ts.Close()
				srv.Close()
			}()
			resp, body := postRaw(t, ts.URL, sweep)
			if !bytes.Equal(body, fullBody) {
				t.Fatalf("recover-then-serve differs from never-crashed run:\n--- recovered\n%s--- golden\n%s", body, fullBody)
			}
			st := srv.Stats()
			disposition := resp.Header.Get("X-Cache")
			if tc.resumes {
				if disposition != "resume" {
					t.Fatalf("X-Cache = %q, want resume", disposition)
				}
				if st.DiskResumes != 1 {
					t.Fatalf("disk resumes = %d, want 1", st.DiskResumes)
				}
			} else if disposition != "miss" {
				t.Fatalf("X-Cache = %q, want miss (journal unrecoverable)", disposition)
			}

			// After the resume (or fresh run) recommitted the journal, a
			// second restart serves the whole sweep from disk.
			ts.Close()
			srv.Close()
			srv2, ts2 := openDurable(t, dir)
			defer func() {
				ts2.Close()
				srv2.Close()
			}()
			resp2, body2 := postRaw(t, ts2.URL, sweep)
			if got := resp2.Header.Get("X-Cache"); got != "hit" {
				t.Fatalf("post-recommit restart X-Cache = %q, want hit", got)
			}
			if !bytes.Equal(body2, fullBody) {
				t.Fatal("post-recommit replay not byte-identical")
			}
		})
	}
}

// TestDurableResumeStitchMidStream: reconnecting with a cursor INTO an
// incomplete journal replays the checkpointed prefix from disk, runs
// the rest, and stitches byte-identically with the bytes read before
// the crash.
func TestDurableResumeStitchMidStream(t *testing.T) {
	goldDir := t.TempDir()
	srvA, tsA := openDurable(t, goldDir)
	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	fresh, fullBody := postRaw(t, tsA.URL, sweep)
	id := fresh.Header.Get("X-Sweep-Id")
	tsA.Close()
	srvA.Close()

	wal, err := os.ReadFile(filepath.Join(goldDir, "sweeps", id[:2], id+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, wal)

	// Crash with 4 of 6 records checkpointed; the client had read 2
	// result lines.
	dir := t.TempDir()
	sub := filepath.Join(dir, "sweeps", id[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, id+".wal"), wal[:ends[4]], 0o644); err != nil {
		t.Fatal(err)
	}
	srvB, tsB := openDurable(t, dir)
	defer func() {
		tsB.Close()
		srvB.Close()
	}()

	const cursor = 2
	resp, tail := getRaw(t, tsB.URL+"/v1/sweeps/"+id+"?cursor=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cursored GET: HTTP %d: %s", resp.StatusCode, tail)
	}
	if got := resp.Header.Get("X-Cache"); got != "resume" {
		t.Fatalf("X-Cache = %q, want resume", got)
	}
	lines := bytes.SplitAfter(fullBody, []byte("\n"))
	tailLines := bytes.SplitAfter(tail, []byte("\n"))
	var stitched []byte
	for _, l := range lines[:1+cursor] {
		stitched = append(stitched, l...)
	}
	for _, l := range tailLines[1:] {
		stitched = append(stitched, l...)
	}
	if !bytes.Equal(stitched, fullBody) {
		t.Fatalf("stitched resume differs from uninterrupted body:\n--- stitched\n%s--- full\n%s", stitched, fullBody)
	}
	if st := srvB.Stats(); st.DiskResumes != 1 {
		t.Fatalf("disk resumes = %d, want 1", st.DiskResumes)
	}
}

// TestTenantAuthEndToEnd covers the tenant layer through the typed
// client: open endpoints stay open, missing/unknown tokens are typed
// 401s, the cumulative job quota is a typed 403, and healthz reports
// per-tenant stats.
func TestTenantAuthEndToEnd(t *testing.T) {
	srv, err := simserver.Open(simserver.Options{
		Workers: 2,
		Tenants: []simserver.TenantConfig{
			{Name: "acme", Token: "sekret-acme", MaxJobs: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	ctx := context.Background()

	// healthz and version stay open; work-carrying endpoints do not.
	anon := client.New(ts.URL, ts.Client())
	if err := anon.Healthz(ctx); err != nil {
		t.Fatalf("anonymous healthz: %v", err)
	}
	if _, err := anon.Version(ctx); err != nil {
		t.Fatalf("anonymous version: %v", err)
	}
	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = anon.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil)
	var authErr *client.AuthError
	if !errors.As(err, &authErr) {
		t.Fatalf("anonymous submit error = %v, want AuthError", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("AuthError does not unwrap to a 401 APIError: %v", err)
	}
	if _, err := anon.WithToken("wrong").SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil); !errors.As(err, &authErr) {
		t.Fatalf("bad-token submit error = %v, want AuthError", err)
	}

	// Two 6-job sweeps exhaust the 12-job quota; the third distinct
	// sweep is a typed quota rejection.
	auth := anon.WithToken("sekret-acme")
	if _, err := auth.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil); err != nil {
		t.Fatalf("first authorized submit: %v", err)
	}
	sweep2 := sweep
	sweep2.Jobs = append([]wire.Job(nil), sweep.Jobs...)
	sweep2.Jobs[0].Config.Seed = 77
	if _, err := auth.SubmitSweep(ctx, sweep2, client.SubmitOptions{}, nil); err != nil {
		t.Fatalf("second authorized submit: %v", err)
	}
	sweep3 := sweep
	sweep3.Jobs = append([]wire.Job(nil), sweep.Jobs...)
	sweep3.Jobs[0].Config.Seed = 78
	_, err = auth.SubmitSweep(ctx, sweep3, client.SubmitOptions{}, nil)
	var quotaErr *client.QuotaError
	if !errors.As(err, &quotaErr) {
		t.Fatalf("over-quota submit error = %v, want QuotaError", err)
	}
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("QuotaError does not unwrap to a 403 APIError: %v", err)
	}

	// healthz reports the tenant's counters by name, never its token.
	resp, body := getRaw(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status  string                           `json:"status"`
		Tenants map[string]simserver.TenantStats `json:"tenants"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	acme, ok := health.Tenants["acme"]
	if !ok {
		t.Fatalf("healthz tenants = %v, want acme", health.Tenants)
	}
	if acme.JobsSubmitted != 12 || acme.QuotaRejected != 1 || acme.Requests != 3 {
		t.Fatalf("tenant stats = %+v, want 12 jobs, 1 quota rejection, 3 requests", acme)
	}
	if bytes.Contains(body, []byte("sekret-acme")) {
		t.Fatal("healthz body leaks the tenant token")
	}
}
