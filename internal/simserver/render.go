package simserver

import (
	"encoding/csv"
	"encoding/json"
	"io"

	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// streamRenderer serializes cells to a response body as they complete.
// Fresh runs and cached replays drive the same renderers, so the two
// response bodies are byte-identical by construction.
type streamRenderer interface {
	// cell renders cell i; calls arrive in strict index order.
	cell(i int, c cell)
	// finish flushes any buffered output.
	finish()
}

// ndjsonRenderer emits the StreamHeader line then one wire.Result line
// per cell, trajectories included.
type ndjsonRenderer struct {
	w   io.Writer
	enc *json.Encoder
}

func newNDJSONRenderer(w io.Writer, header any) *ndjsonRenderer {
	r := &ndjsonRenderer{w: w, enc: json.NewEncoder(w)}
	_ = r.enc.Encode(header) // Encode appends the newline NDJSON needs
	return r
}

func (r *ndjsonRenderer) cell(i int, c cell) {
	if err := r.enc.Encode(resultLine(i, c, true)); err != nil {
		// Encode buffers before writing, so a marshal failure (e.g. a
		// NaN that slipped past the Stat/Report handling) has emitted
		// nothing: the cell still gets its line, as an error. The
		// failure is deterministic per cell, so cached replays render
		// the same bytes.
		_ = r.enc.Encode(wire.Result{Index: i, Meta: c.meta, Err: "encode: " + err.Error()})
	}
}
func (r *ndjsonRenderer) finish() {}

// csvRenderer emits exactly the cmd/sweep CSV (sweeprun's shared
// helpers): header, one row per successful cell, failed cells skipped.
// withHeader false suppresses the header row, so a cursored
// continuation concatenates onto an interrupted response cleanly.
type csvRenderer struct {
	w *csv.Writer
}

func newCSVRenderer(w io.Writer, withHeader bool) *csvRenderer {
	r := &csvRenderer{w: csv.NewWriter(w)}
	if withHeader {
		_ = r.w.Write(sweeprun.CSVHeader())
	}
	return r
}

func (r *csvRenderer) cell(_ int, c cell) {
	if c.err != "" {
		return
	}
	_ = r.w.Write(sweeprun.CSVRow(c.meta, c.report, c.rounds))
	r.w.Flush() // per-row so the HTTP flusher has bytes to push
}

func (r *csvRenderer) finish() { r.w.Flush() }
