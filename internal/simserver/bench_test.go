package simserver_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"taskalloc"
	"taskalloc/internal/simserver"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// BenchmarkServerSweep measures one full service round trip: POST a
// (γ × seed) grid as wire JSON, fan it out on the shared pool, and
// consume the NDJSON stream. Each iteration mutates the base seed so
// the result cache never short-circuits the work being measured; see
// BenchmarkServerSweepCached for the cache path.
func BenchmarkServerSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := simserver.New(simserver.Options{Workers: workers, MaxConcurrent: workers})
			hs := httptest.NewServer(srv)
			defer func() {
				hs.Close()
				srv.Close()
			}()
			c := client.New(hs.URL, hs.Client())
			ctx := context.Background()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep := benchSweep(b, uint64(i)*100+1)
				sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: workers}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if sub.Cached || len(sub.Results) != len(sweep.Jobs) {
					b.Fatalf("unexpected response: cached=%v results=%d", sub.Cached, len(sub.Results))
				}
			}
		})
	}
}

// BenchmarkServerSweepCached measures the cache replay path: the same
// grid re-submitted every iteration, served without simulating.
func BenchmarkServerSweepCached(b *testing.B) {
	srv := simserver.New(simserver.Options{})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	sweep := benchSweep(b, 1)
	if _, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !sub.Cached {
			b.Fatal("cache miss on identical re-submission")
		}
	}
}

// benchSweep builds an 8-cell grid (2 γ × 4 seeds) of 2-shard engines,
// 400 rounds each — small enough for CI smoke, large enough that the
// serving overhead is amortized over real simulation work.
func benchSweep(b *testing.B, baseSeed uint64) wire.Sweep {
	b.Helper()
	var jobs []sweeprun.Job
	for _, gamma := range []float64{0.03, 0.0625} {
		for s := uint64(0); s < 4; s++ {
			jobs = append(jobs, sweeprun.Job{
				Meta: []string{"gamma", fmt.Sprint(gamma), "static", fmt.Sprint(baseSeed + s)},
				Config: taskalloc.Config{
					Ants: 2000, Demands: []int{300, 500}, Gamma: gamma,
					Noise: taskalloc.SigmoidNoise(0.02),
					Seed:  baseSeed + s, Shards: 2, BurnIn: 100,
				},
				Rounds: 400,
			})
		}
	}
	sweep, err := wire.FromJobs(jobs)
	if err != nil {
		b.Fatal(err)
	}
	return sweep
}
