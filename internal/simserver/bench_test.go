package simserver_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"taskalloc"
	"taskalloc/internal/scenario"
	"taskalloc/internal/simserver"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// BenchmarkServerSweep measures one full service round trip: POST a
// (γ × seed) grid as wire JSON, fan it out on the shared pool, and
// consume the NDJSON stream. Each iteration mutates the base seed so
// the result cache never short-circuits the work being measured; see
// BenchmarkServerSweepCached for the cache path.
func BenchmarkServerSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := simserver.New(simserver.Options{Workers: workers, MaxConcurrent: workers})
			hs := httptest.NewServer(srv)
			defer func() {
				hs.Close()
				srv.Close()
			}()
			c := client.New(hs.URL, hs.Client())
			ctx := context.Background()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep := benchSweep(b, uint64(i)*100+1)
				sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: workers}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if sub.Cached || len(sub.Results) != len(sweep.Jobs) {
					b.Fatalf("unexpected response: cached=%v results=%d", sub.Cached, len(sub.Results))
				}
			}
		})
	}
}

// BenchmarkServerSweepCached measures the cache replay path: the same
// grid re-submitted every iteration, served without simulating.
func BenchmarkServerSweepCached(b *testing.B) {
	srv := simserver.New(simserver.Options{})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	sweep := benchSweep(b, 1)
	if _, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !sub.Cached {
			b.Fatal("cache miss on identical re-submission")
		}
	}
}

// benchSweep builds an 8-cell grid (2 γ × 4 seeds) of 2-shard engines,
// 400 rounds each — small enough for CI smoke, large enough that the
// serving overhead is amortized over real simulation work.
func benchSweep(b *testing.B, baseSeed uint64) wire.Sweep {
	b.Helper()
	var jobs []sweeprun.Job
	for _, gamma := range []float64{0.03, 0.0625} {
		for s := uint64(0); s < 4; s++ {
			jobs = append(jobs, sweeprun.Job{
				Meta: []string{"gamma", fmt.Sprint(gamma), "static", fmt.Sprint(baseSeed + s)},
				Config: taskalloc.Config{
					Ants: 2000, Demands: []int{300, 500}, Gamma: gamma,
					Noise: taskalloc.SigmoidNoise(0.02),
					Seed:  baseSeed + s, Shards: 2, BurnIn: 100,
				},
				Rounds: 400,
			})
		}
	}
	sweep, err := wire.FromJobs(jobs)
	if err != nil {
		b.Fatal(err)
	}
	return sweep
}

// aliasBenchPair builds the BENCH_6 sweep pair: a generative step
// schedule and its frozen snapshot — behaviorally identical,
// syntactically distinct — over 4 seeds at seedBase.
func aliasBenchPair(b *testing.B, seedBase uint64) (generative, frozen wire.Sweep) {
	b.Helper()
	step := &wire.Schedule{
		Kind: "step", Base: []int{300, 500},
		When: []uint64{200}, Vectors: [][]int{{500, 300}},
	}
	sched, err := step.ToSchedule()
	if err != nil {
		b.Fatal(err)
	}
	fz, err := scenario.Freeze(sched, 401)
	if err != nil {
		b.Fatal(err)
	}
	fzEnc, err := wire.FromSchedule(fz)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(sc wire.Schedule) wire.Sweep {
		var jobs []wire.Job
		for s := uint64(0); s < 4; s++ {
			cp := sc
			jobs = append(jobs, wire.Job{
				Meta:   []string{"alias", fmt.Sprint(seedBase + s)},
				Rounds: 400,
				Config: wire.Config{
					Ants: 2000, Epsilon: 0.5, Gamma: 0.03, Seed: seedBase + s,
					Shards: 2, BurnIn: 100, Schedule: &cp,
				},
			})
		}
		return wire.Sweep{Version: wire.V1, Jobs: jobs}
	}
	return mk(*step), mk(fzEnc)
}

// BenchmarkSemanticAlias is the BENCH_6 measurement: cold submits a
// fresh generative sweep every iteration (cache miss, full
// simulation); warm re-submits the frozen *spelling* of a sweep whose
// generative spelling is already cached — every iteration is a
// semantic-alias hit served without simulating, so warm/cold is the
// alias layer's payoff on a frozen-vs-generative pair.
func BenchmarkSemanticAlias(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		srv := simserver.New(simserver.Options{})
		hs := httptest.NewServer(srv)
		defer func() { hs.Close(); srv.Close() }()
		c := client.New(hs.URL, hs.Client())
		ctx := context.Background()

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			generative, _ := aliasBenchPair(b, uint64(i)*100+1)
			sub, err := c.SubmitSweep(ctx, generative, client.SubmitOptions{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if sub.Disposition != "miss" {
				b.Fatalf("cold submission disposition %q, want miss", sub.Disposition)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		srv := simserver.New(simserver.Options{})
		hs := httptest.NewServer(srv)
		defer func() { hs.Close(); srv.Close() }()
		c := client.New(hs.URL, hs.Client())
		ctx := context.Background()

		generative, frozen := aliasBenchPair(b, 1)
		if _, err := c.SubmitSweep(ctx, generative, client.SubmitOptions{}, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sub, err := c.SubmitSweep(ctx, frozen, client.SubmitOptions{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if sub.Disposition != "hit" {
				b.Fatalf("alias submission disposition %q, want hit", sub.Disposition)
			}
		}
		b.StopTimer()
		st := srv.Stats()
		if st.SemanticAliasHits < uint64(b.N) {
			b.Fatalf("semantic alias hits %d < %d iterations", st.SemanticAliasHits, b.N)
		}
	})
}
