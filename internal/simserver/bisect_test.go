package simserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"taskalloc/internal/goldencases"
	"taskalloc/internal/wire"
)

// bisectGoldenRequest builds a bisect request over the golden S5-family
// sinusoid scenario (the scenario corpus the golden tests pin).
func bisectGoldenRequest(t *testing.T, targetBand float64, maxEvals int) wire.BisectRequest {
	t.Helper()
	var sinusoid *goldencases.Case
	for _, c := range goldencases.All() {
		if strings.HasPrefix(c.Name, "sinusoid_ant") {
			sinusoid = &c
			break
		}
	}
	if sinusoid == nil {
		t.Fatal("no sinusoid_ant golden case")
	}
	cfg, err := sinusoid.Config()
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := wire.FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wire.BisectRequest{
		Version:    wire.V1,
		Job:        wire.Job{Rounds: sinusoid.Rounds, Config: wcfg},
		GammaLo:    0.004,
		GammaHi:    1.0 / 16,
		TargetBand: targetBand,
		MaxEvals:   maxEvals,
	}
}

func postBisect(t *testing.T, ts *httptest.Server, req wire.BisectRequest) (*wire.BisectResponse, int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/bisect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, resp.StatusCode, strings.TrimSpace(string(msg))
	}
	var out wire.BisectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode, ""
}

// TestBisectConvergesOnGoldenScenario: the adaptive grid refines the γ
// interval until every segment's regret band is at most the target,
// and a repeat run is served (almost) entirely from the job cache.
func TestBisectConvergesOnGoldenScenario(t *testing.T) {
	srv := New(Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := bisectGoldenRequest(t, 8, 64)
	first, code, msg := postBisect(t, ts, req)
	if first == nil {
		t.Fatalf("bisect: HTTP %d: %s", code, msg)
	}
	if !first.Converged {
		t.Fatalf("bisect did not converge: %+v", first)
	}
	if first.Evals <= 2 {
		t.Fatalf("bisect converged with no refinement (evals=%d) — target band too loose for the test", first.Evals)
	}
	if first.Evals > 64 {
		t.Fatalf("evals %d over the requested budget", first.Evals)
	}
	if len(first.Cells) != first.Evals {
		t.Fatalf("%d cells for %d evals", len(first.Cells), first.Evals)
	}
	for i, iv := range first.Intervals {
		if iv.Band > req.TargetBand {
			t.Errorf("interval %d [%g, %g] band %g over target %g", i, iv.Lo, iv.Hi, iv.Band, req.TargetBand)
		}
	}
	for i := 1; i < len(first.Cells); i++ {
		if first.Cells[i].Gamma <= first.Cells[i-1].Gamma {
			t.Fatalf("cells not in ascending γ order at %d", i)
		}
	}
	// Segments tile the requested interval exactly.
	if got := first.Intervals[0].Lo; got != req.GammaLo {
		t.Errorf("first interval starts at %g, want %g", got, req.GammaLo)
	}
	if got := first.Intervals[len(first.Intervals)-1].Hi; got != req.GammaHi {
		t.Errorf("last interval ends at %g, want %g", got, req.GammaHi)
	}
	for i := 1; i < len(first.Intervals); i++ {
		if first.Intervals[i].Lo != first.Intervals[i-1].Hi {
			t.Errorf("interval gap between %g and %g", first.Intervals[i-1].Hi, first.Intervals[i].Lo)
		}
	}

	// Repeat bisect: identical search path, every cell from the cache.
	again, code, msg := postBisect(t, ts, req)
	if again == nil {
		t.Fatalf("repeat bisect: HTTP %d: %s", code, msg)
	}
	if again.Evals != first.Evals {
		t.Fatalf("repeat evaluated %d cells, first run %d — search path not deterministic", again.Evals, first.Evals)
	}
	if frac := float64(again.CacheHits) / float64(again.Evals); frac < 0.9 {
		t.Fatalf("repeat bisect hit only %.0f%% of %d cells", frac*100, again.Evals)
	}
	if again.ID != first.ID {
		t.Errorf("repeat response id %s != %s", again.ID, first.ID)
	}

	// An overlapping narrower search reuses the shared cells too.
	narrower := req
	narrower.GammaHi = (req.GammaLo + req.GammaHi) / 2
	nresp, code, msg := postBisect(t, ts, narrower)
	if nresp == nil {
		t.Fatalf("narrower bisect: HTTP %d: %s", code, msg)
	}
	if nresp.CacheHits == 0 {
		t.Error("narrower overlapping bisect reused no cached cells")
	}
}

// TestBisectIDIsCanonicalHash: the response ID must be the behavioral
// hash of the request AS SENT — max_evals 0 included — so coordinator
// affinity and caller-side correlation hold across servers with
// different -max-bisect-evals, and equivalent template spellings share
// one ID.
func TestBisectIDIsCanonicalHash(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := bisectGoldenRequest(t, 1e9, 0) // unreachable-loose band: endpoints only
	want, err := wire.SemanticBisectHash(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, code, msg := postBisect(t, ts, req)
	if resp == nil {
		t.Fatalf("bisect: HTTP %d: %s", code, msg)
	}
	if resp.ID != want {
		t.Errorf("response id %s != canonical request hash %s", resp.ID, want)
	}
	if resp.Evals != 2 || !resp.Converged {
		t.Errorf("loose band should converge on the endpoints alone: %+v", resp)
	}
}

// TestBisectConcurrentCoalesce: identical concurrent requests coalesce
// onto one execution and return identical responses (without
// coalescing, the racing run would observe the first run's cache).
func TestBisectConcurrentCoalesce(t *testing.T) {
	srv := New(Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := bisectGoldenRequest(t, 8, 64)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		body []byte
		err  error
	}
	results := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/bisect", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- out{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
			}
			results <- out{body: b, err: err}
		}()
	}
	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent bisect failed: %v / %v", a.err, b.err)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Errorf("concurrent identical bisects returned different responses:\n%s\n%s", a.body, b.body)
	}
}

// TestBisectBudgetExhaustion: a tiny budget must terminate with
// converged=false and exactly the budgeted number of evaluations.
func TestBisectBudgetExhaustion(t *testing.T) {
	srv := New(Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := bisectGoldenRequest(t, 0.001, 3) // unreachable band, 3 evals
	resp, code, msg := postBisect(t, ts, req)
	if resp == nil {
		t.Fatalf("bisect: HTTP %d: %s", code, msg)
	}
	if resp.Converged {
		t.Fatal("converged with an unreachable target band")
	}
	if resp.Evals != 3 {
		t.Fatalf("evals = %d, want the budget 3", resp.Evals)
	}
}

// TestBisectNaNRegret: a template whose regret is legitimately
// undefined (burn-in at the horizon leaves no rounds to average) must
// still produce a decodable response — NaN bands travel as null, never
// as an encoding failure that turns into an empty 200.
func TestBisectNaNRegret(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := bisectGoldenRequest(t, 8, 8)
	req.Job.Config.BurnIn = uint64(req.Job.Rounds) // AvgRegret = NaN
	resp, code, msg := postBisect(t, ts, req)
	if resp == nil {
		t.Fatalf("bisect with NaN regret: HTTP %d: %s", code, msg)
	}
	if resp.Converged {
		t.Error("converged with undefined regret bands")
	}
	if len(resp.Intervals) != 1 || !math.IsNaN(resp.Intervals[0].Band) {
		t.Errorf("want one interval with NaN band, got %+v", resp.Intervals)
	}
	if resp.Evals != 2 {
		t.Errorf("NaN bands must stop refinement at the endpoints, got %d evals", resp.Evals)
	}
}

// TestBisectAdmission: malformed and over-bound requests are rejected
// before any simulation runs.
func TestBisectAdmission(t *testing.T) {
	srv := New(Options{Workers: 1, MaxCellRounds: 200, MaxBisectEvals: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	base := bisectGoldenRequest(t, 8, 0)

	cases := []struct {
		name string
		mut  func(*wire.BisectRequest)
		want string
	}{
		{"inverted range", func(r *wire.BisectRequest) { r.GammaLo, r.GammaHi = r.GammaHi, r.GammaLo }, "gamma_lo"},
		{"gamma over max", func(r *wire.BisectRequest) { r.GammaHi = 0.5 }, "gamma_lo"},
		{"zero band", func(r *wire.BisectRequest) { r.TargetBand = 0 }, "target_band"},
		{"max_evals one", func(r *wire.BisectRequest) { r.MaxEvals = 1 }, "max_evals"},
		{"rounds over limit", func(r *wire.BisectRequest) { r.Job.Rounds = 201 }, "rounds"},
		{"evals over limit", func(r *wire.BisectRequest) { r.MaxEvals = 17 }, "max_evals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			tc.mut(&req)
			resp, code, msg := postBisect(t, ts, req)
			if resp != nil || code != http.StatusBadRequest {
				t.Fatalf("want 400, got %d (%+v)", code, resp)
			}
			if !strings.Contains(msg, tc.want) {
				t.Errorf("error %q does not mention %q", msg, tc.want)
			}
		})
	}
}
