package simserver

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"taskalloc/internal/obs"
	"taskalloc/internal/wire"
)

// Tenant layer: bearer-token auth with per-tenant job quotas and
// token-bucket rate limits, layered on the existing admission bounds.
// It is opt-in — with no Options.Tenants the server stays open, so
// every existing client and test sees the unauthenticated surface
// unchanged. GET /v1/healthz, /v1/version, and /v1/metrics stay open
// even with tenants configured (probes and scrapes don't carry work).
//
// Rejections speak wire.ErrorBody (Kind "unauthorized" | "quota" |
// "rate_limited") so clients can branch without parsing prose; the
// client package surfaces them as typed errors.

// TenantConfig declares one tenant: its bearer token, a cumulative job
// quota, and a token-bucket rate limit over requests.
type TenantConfig struct {
	// Name identifies the tenant in healthz stats (never the token).
	Name string `json:"name"`
	// Token is the bearer token (compared constant-time).
	Token string `json:"token"`
	// MaxJobs caps the tenant's cumulative submitted sweep jobs across
	// the server's lifetime; <= 0 means unlimited.
	MaxJobs int64 `json:"max_jobs,omitempty"`
	// RatePerSec refills the tenant's request bucket; <= 0 means no
	// rate limit.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity; <= 0 means max(1, RatePerSec).
	Burst int `json:"burst,omitempty"`
}

// TenantStats counts one tenant's dispositions since the server
// started. All counters are monotone.
type TenantStats struct {
	// Requests counts authenticated requests admitted past the rate
	// limiter (including ones later rejected by validation or quota).
	Requests uint64 `json:"requests"`
	// RateLimited counts requests rejected 429 by the token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// QuotaRejected counts submissions rejected 403 by the job quota.
	QuotaRejected uint64 `json:"quota_rejected"`
	// JobsSubmitted is the cumulative sweep jobs charged against the
	// quota.
	JobsSubmitted uint64 `json:"jobs_submitted"`
}

// tenant is one tenant's live state: its config, token bucket, and
// counters. The bucket uses the server's clock (injectable in tests).
// The disposition counters are obs children cached at construction —
// they are the single source of truth, read back by snapshot() for the
// healthz JSON and exposed by name on /v1/metrics.
type tenant struct {
	cfg TenantConfig

	mRequests      *obs.Counter
	mRateLimited   *obs.Counter
	mQuotaRejected *obs.Counter
	mJobs          *obs.Counter

	mu     sync.Mutex
	tokens float64 // current bucket level
	last   time.Time
	jobs   int64 // cumulative jobs, for the quota
}

// authState is the tenant registry, scanned (constant-time per token)
// for authentication.
type authState struct {
	tenants []*tenant
}

func newAuthState(cfgs []TenantConfig, m *serverMetrics) *authState {
	a := &authState{}
	for _, cfg := range cfgs {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(math.Max(1, cfg.RatePerSec))
		}
		cfg.Burst = burst
		// last stays zero: the first admit sees a huge elapsed time and
		// clamps the bucket to its (already full) burst capacity.
		a.tenants = append(a.tenants, &tenant{
			cfg:            cfg,
			tokens:         float64(burst),
			mRequests:      m.tenantRequests.With(cfg.Name),
			mRateLimited:   m.tenantRateLimited.With(cfg.Name),
			mQuotaRejected: m.tenantQuotaRejected.With(cfg.Name),
			mJobs:          m.tenantJobs.With(cfg.Name),
		})
	}
	return a
}

// authenticate resolves the request's bearer token to a tenant. Every
// configured token is compared constant-time, so timing cannot narrow
// a token search even across tenants.
func (a *authState) authenticate(r *http.Request) *tenant {
	raw := r.Header.Get("Authorization")
	bearer, ok := strings.CutPrefix(raw, "Bearer ")
	if !ok {
		return nil
	}
	var found *tenant
	for _, t := range a.tenants {
		if subtle.ConstantTimeCompare([]byte(bearer), []byte(t.cfg.Token)) == 1 {
			found = t
		}
	}
	return found
}

// admit takes one request token from the tenant's bucket. When the
// bucket is empty it returns false and the wait until the next token.
func (t *tenant) admit(now time.Time) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.RatePerSec <= 0 {
		t.mRequests.Inc()
		return true, 0
	}
	elapsed := now.Sub(t.last).Seconds()
	if elapsed > 0 {
		t.tokens = math.Min(float64(t.cfg.Burst), t.tokens+elapsed*t.cfg.RatePerSec)
		t.last = now
	}
	if t.tokens < 1 {
		t.mRateLimited.Inc()
		wait := time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second))
		return false, wait
	}
	t.tokens--
	t.mRequests.Inc()
	return true, 0
}

// chargeJobs charges n sweep jobs against the tenant's quota; false
// (and no charge) when the quota would be exceeded.
func (t *tenant) chargeJobs(n int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.MaxJobs > 0 && t.jobs+int64(n) > t.cfg.MaxJobs {
		t.mQuotaRejected.Inc()
		return false
	}
	t.jobs += int64(n)
	t.mJobs.Add(uint64(n))
	return true
}

// snapshot reads the tenant's counters back into the healthz schema.
func (t *tenant) snapshot() TenantStats {
	return TenantStats{
		Requests:      t.mRequests.Value(),
		RateLimited:   t.mRateLimited.Value(),
		QuotaRejected: t.mQuotaRejected.Value(),
		JobsSubmitted: t.mJobs.Value(),
	}
}

// tenantKey is the context key the middleware stores the caller under.
type tenantKey struct{}

// tenantFrom returns the request's authenticated tenant, nil when auth
// is disabled.
func tenantFrom(r *http.Request) *tenant {
	t, _ := r.Context().Value(tenantKey{}).(*tenant)
	return t
}

// openPath reports whether the endpoint stays unauthenticated.
// Metrics stay open alongside healthz: scrapers don't carry work, and
// the exposition names tenants but never tokens.
func openPath(r *http.Request) bool {
	return r.Method == http.MethodGet &&
		(r.URL.Path == "/v1/healthz" || r.URL.Path == "/v1/version" ||
			r.URL.Path == "/v1/metrics")
}

// middleware enforces auth + rate limits in front of the mux.
func (s *Server) middleware(w http.ResponseWriter, r *http.Request) {
	if openPath(r) {
		s.mux.ServeHTTP(w, r)
		return
	}
	t := s.auth.authenticate(r)
	if t == nil {
		writeErrorBody(w, http.StatusUnauthorized, wire.ErrorBody{
			Error: "missing or unknown bearer token",
			Kind:  "unauthorized",
		})
		return
	}
	ok, wait := t.admit(s.now())
	if !ok {
		w.Header().Set("Retry-After", strconv.FormatInt(int64(wait/time.Second)+1, 10))
		writeErrorBody(w, http.StatusTooManyRequests, wire.ErrorBody{
			Error:        "rate limit exceeded for tenant " + t.cfg.Name,
			Kind:         "rate_limited",
			RetryAfterMS: int64(wait / time.Millisecond),
		})
		return
	}
	s.mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, t)))
}

// writeErrorBody emits a wire.ErrorBody rejection.
func writeErrorBody(w http.ResponseWriter, code int, body wire.ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// tenantStats snapshots every tenant's counters by name, nil when auth
// is disabled (so healthz omits the field entirely).
func (s *Server) tenantStats() map[string]TenantStats {
	if s.auth == nil {
		return nil
	}
	out := make(map[string]TenantStats, len(s.auth.tenants))
	for _, t := range s.auth.tenants {
		out[t.cfg.Name] = t.snapshot()
	}
	return out
}
