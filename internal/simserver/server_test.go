package simserver_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"taskalloc"
	"taskalloc/internal/goldencases"
	"taskalloc/internal/scenario"
	"taskalloc/internal/simserver"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// testGrid builds a small deterministic (γ × seed) grid in the
// cmd/sweep Meta convention. Shards > 1 so the sweep exercises the
// shared worker pool.
func testGrid(t *testing.T, shards int) []sweeprun.Job {
	t.Helper()
	sin, err := scenario.NewSinusoid([]int{40, 60}, []float64{0.3, 0.3}, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := scenario.Freeze(sin, 160)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []sweeprun.Job
	for _, gamma := range []string{"0.03", "0.0625"} {
		for seed := uint64(1); seed <= 3; seed++ {
			g := 0.03
			if gamma == "0.0625" {
				g = 0.0625
			}
			jobs = append(jobs, sweeprun.Job{
				Meta: []string{"gamma", gamma, "sinusoid", itoa(seed)},
				Config: taskalloc.Config{
					Ants: 240, Demand: frozen, Gamma: g, Seed: seed, Shards: shards,
					Noise: taskalloc.SigmoidNoise(0.02), BurnIn: 50,
				},
				Rounds: 150,
			})
		}
	}
	return jobs
}

func itoa(u uint64) string { return string('0' + rune(u)) }

func newTestService(t *testing.T, opts simserver.Options) (*simserver.Server, *client.Client, func()) {
	t.Helper()
	srv := simserver.New(opts)
	hs := httptest.NewServer(srv)
	c := client.New(hs.URL, hs.Client())
	return srv, c, func() {
		hs.Close()
		srv.Close()
	}
}

// TestSubmitStreamAndCache is the cache-correctness acceptance test:
// identical re-submissions are served from cache with byte-identical
// bodies, at any worker count.
func TestSubmitStreamAndCache(t *testing.T) {
	_, c, done := newTestService(t, simserver.Options{})
	defer done()
	ctx := context.Background()

	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	first, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission reported a cache hit")
	}
	if first.Header.ID == "" || first.Header.Jobs != len(sweep.Jobs) {
		t.Fatalf("bad stream header %+v", first.Header)
	}
	for i, res := range first.Results {
		if res.Err != "" || res.Report == nil {
			t.Fatalf("cell %d failed: %q", i, res.Err)
		}
		if res.Index != i {
			t.Fatalf("stream out of order: line %d has index %d", i, res.Index)
		}
	}

	// Re-submission (different worker count, different JSON key order
	// via re-marshal) is served from cache, byte-identically.
	csvFresh, cached, err := c.SubmitSweepCSV(ctx, sweep, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second submission missed the cache")
	}
	for _, workers := range []int{2, 5} {
		again, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatalf("workers=%d resubmission missed the cache", workers)
		}
		if len(again.Results) != len(first.Results) {
			t.Fatalf("cached stream has %d results, want %d", len(again.Results), len(first.Results))
		}
		for i := range first.Results {
			if !reflect.DeepEqual(again.Results[i].Report, first.Results[i].Report) {
				t.Fatalf("cached cell %d diverged", i)
			}
		}
		csvAgain, cached, err := c.SubmitSweepCSV(ctx, sweep, client.SubmitOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !cached || !bytes.Equal(csvFresh, csvAgain) {
			t.Fatalf("cached CSV not byte-identical (cached=%v)", cached)
		}
	}

	// A semantically different grid (one seed changed) misses.
	sweep2, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	sweep2.Jobs[0].Config.Seed = 99
	other, err := c.SubmitSweep(ctx, sweep2, client.SubmitOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Fatal("mutated grid hit the cache")
	}
	if other.Header.ID == first.Header.ID {
		t.Fatal("mutated grid got the same sweep ID")
	}
}

// TestHTTPCSVMatchesDirectSweep is the cross-layer acceptance test: a
// sweep over HTTP produces bytes identical to the grid run directly
// through the renderer cmd/sweep uses, at ≥ 2 worker counts.
func TestHTTPCSVMatchesDirectSweep(t *testing.T) {
	_, c, done := newTestService(t, simserver.Options{})
	defer done()
	ctx := context.Background()

	jobs := testGrid(t, 1)
	var direct bytes.Buffer
	if err := sweeprun.WriteCSV(&direct, jobs, sweeprun.Options{Workers: 1}, sweeprun.CSVOptions{}); err != nil {
		t.Fatal(err)
	}

	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, _, err := c.SubmitSweepCSV(ctx, sweep, client.SubmitOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), got) {
			t.Fatalf("workers=%d: HTTP CSV differs from direct run\n--- direct\n%s--- http\n%s",
				workers, direct.String(), got)
		}
	}
}

// TestGoldenTrajectoriesOverHTTP streams the golden corpus through the
// service and byte-compares every trajectory against testdata/golden —
// the in-process version of the CI smoke.
func TestGoldenTrajectoriesOverHTTP(t *testing.T) {
	_, c, done := newTestService(t, simserver.Options{})
	defer done()

	cases := goldencases.All()
	sweep := wire.Sweep{Version: wire.V1}
	for _, gc := range cases {
		cfg, err := gc.Config()
		if err != nil {
			t.Fatal(err)
		}
		wcfg, err := wire.FromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sweep.Jobs = append(sweep.Jobs, wire.Job{
			Meta:       []string{gc.Name},
			Rounds:     gc.Rounds,
			Trajectory: true,
			Config:     wcfg,
		})
	}
	sub, err := c.SubmitSweep(context.Background(), sweep, client.SubmitOptions{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range sub.Results {
		name := cases[i].Name
		if res.Err != "" {
			t.Fatalf("%s: %s", name, res.Err)
		}
		want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(res.Trajectory), want) {
			t.Errorf("%s: streamed trajectory differs from testdata/golden", name)
		}
	}
}

// TestGetSweep covers the summary endpoint.
func TestGetSweep(t *testing.T) {
	_, c, done := newTestService(t, simserver.Options{})
	defer done()
	ctx := context.Background()

	if _, err := c.GetSweep(ctx, "nope"); err == nil {
		t.Fatal("unknown sweep id did not 404")
	}
	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	status, err := c.GetSweep(ctx, sub.Header.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Status != "done" || status.Jobs != len(sweep.Jobs) || status.Failed != 0 {
		t.Fatalf("status = %+v", status)
	}
	if status.Summary == nil || status.Summary.Jobs != len(sweep.Jobs) {
		t.Fatalf("summary = %+v", status.Summary)
	}
	if len(status.Results) != len(sweep.Jobs) || status.Results[0].Report == nil {
		t.Fatalf("results = %+v", status.Results)
	}
}

// TestOpsEndpoints covers healthz/version and submission validation.
func TestOpsEndpoints(t *testing.T) {
	srv, c, done := newTestService(t, simserver.Options{})
	defer done()
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v["wire"] != wire.V1 {
		t.Fatalf("version = %v", v)
	}

	// Malformed submissions are 400s.
	hs := httptest.NewServer(srv)
	defer hs.Close()
	for name, body := range map[string]string{
		"bad json":    `{`,
		"bad version": `{"version":"v0","jobs":[]}`,
		"bad schedule": `{"version":"taskalloc/v1","jobs":[{"rounds":10,"config":{
			"ants":10,"schedule":{"kind":"wat"}}}]}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/sweeps?format=xml", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}

	// Oversized submissions are refused before the decoder materializes
	// them.
	tiny := simserver.New(simserver.Options{MaxBodyBytes: 64})
	ths := httptest.NewServer(tiny)
	defer func() {
		ths.Close()
		tiny.Close()
	}()
	big := `{"version":"taskalloc/v1","jobs":[` + strings.Repeat(" ", 100) + `]}`
	resp, err = http.Post(ths.URL+"/v1/sweeps", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Compute bounds: grids over MaxJobs and cells over MaxCellRounds
	// are refused at admission.
	bounded := simserver.New(simserver.Options{MaxJobs: 1, MaxCellRounds: 100})
	bhs := httptest.NewServer(bounded)
	defer func() {
		bhs.Close()
		bounded.Close()
	}()
	tooMany := `{"version":"taskalloc/v1","jobs":[
		{"rounds":10,"config":{"ants":10,"demands":[2]}},
		{"rounds":10,"config":{"ants":10,"demands":[2]}}]}`
	resp, err = http.Post(bhs.URL+"/v1/sweeps", "application/json", strings.NewReader(tooMany))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-MaxJobs grid: status %d, want 413", resp.StatusCode)
	}
	tooLong := `{"version":"taskalloc/v1","jobs":[{"rounds":101,"config":{"ants":10,"demands":[2]}}]}`
	resp, err = http.Post(bhs.URL+"/v1/sweeps", "application/json", strings.NewReader(tooLong))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-MaxCellRounds cell: status %d, want 400", resp.StatusCode)
	}

	// A failed validation does not poison the cache: a corrected grid
	// under a fresh hash still runs, and per-cell config errors are
	// reported in-stream rather than failing the sweep.
	cellErr := wire.Sweep{Version: wire.V1, Jobs: []wire.Job{
		{Rounds: 10, Config: wire.Config{Ants: 0, Demands: []int{5}}},
		{Rounds: 10, Config: wire.Config{Ants: 50, Demands: []int{5}, Shards: 1}},
	}}
	sub, err := c.SubmitSweep(ctx, cellErr, client.SubmitOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Results[0].Err == "" || sub.Results[0].Report != nil {
		t.Fatalf("invalid cell did not error: %+v", sub.Results[0])
	}
	if sub.Results[1].Err != "" || sub.Results[1].Report == nil {
		t.Fatalf("valid cell failed: %+v", sub.Results[1])
	}
	status, err := c.GetSweep(ctx, sub.Header.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Failed != 1 {
		t.Fatalf("failed = %d, want 1", status.Failed)
	}
}

// TestDrainReturnsAllWorkers is the pool-lifecycle regression test:
// after sweeps with multi-shard engines at several worker counts,
// Close must return and shut down every checked-out shard worker — no
// goroutine may survive the drain. Run under -race in CI.
func TestDrainReturnsAllWorkers(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := simserver.New(simserver.Options{Workers: 4, MaxConcurrent: 4})
	hs := httptest.NewServer(srv)
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	// Multi-shard grids force worker-set checkouts; two shard counts
	// populate two pool size classes.
	for _, shards := range []int{2, 3} {
		sweep, err := wire.FromJobs(testGrid(t, shards))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: 4}, nil); err != nil {
			t.Fatal(err)
		}
	}

	hs.Close()
	srv.Close()
	srv.Close() // idempotent

	// Submissions after drain are refused.
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader("{}"))
	if err == nil {
		resp.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // let engine cleanups (if any were missed) run
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across drain: %d before, %d after\n%s",
				before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentIdenticalSubmissions: simultaneous identical grids
// coalesce onto one execution and all receive full result sets.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	_, c, done := newTestService(t, simserver.Options{})
	defer done()
	ctx := context.Background()

	sweep, err := wire.FromJobs(testGrid(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 4
	type outcome struct {
		sub *client.Submission
		err error
	}
	results := make(chan outcome, submitters)
	for i := 0; i < submitters; i++ {
		go func() {
			sub, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: 2}, nil)
			results <- outcome{sub, err}
		}()
	}
	var first *client.Submission
	for i := 0; i < submitters; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if first == nil {
			first = out.sub
			continue
		}
		if out.sub.Header.ID != first.Header.ID || len(out.sub.Results) != len(first.Results) {
			t.Fatalf("submissions diverged: %+v vs %+v", out.sub.Header, first.Header)
		}
		for j := range first.Results {
			if !reflect.DeepEqual(out.sub.Results[j].Report, first.Results[j].Report) {
				t.Fatalf("cell %d diverged across concurrent submissions", j)
			}
		}
	}
}
