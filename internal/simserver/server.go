// Package simserver is the simulation service: a net/http JSON front
// end that turns the paper's task-allocation dynamics into an on-demand
// backend. Clients POST a job grid in the versioned wire format
// (internal/wire) and the server fans it out on the multi-simulation
// batch runner (internal/sweeprun), streaming per-cell results back as
// NDJSON — or as the exact CSV cmd/sweep renders — in byte-stable job
// order at any worker count.
//
// Endpoints:
//
//	POST /v1/sweeps            submit a grid; streams results (NDJSON, or
//	                           ?format=csv). ?workers=N bounds the fan-out.
//	POST /v1/bisect            adaptive γ-bisection: refine a γ interval
//	                           until every segment's regret band meets the
//	                           target (see bisect.go).
//	GET  /v1/sweeps/{id}       fetch a completed sweep's summary.
//	GET  /v1/healthz           liveness.
//	GET  /v1/version           wire-format + runtime versions.
//
// Caching: sweeps are keyed by their behavioral hash
// (wire.SemanticSweepHash), so re-submitting an equivalent grid —
// regardless of JSON key order, whitespace, worker count, or which of
// several behaviorally identical schedule spellings was used (a frozen
// snapshot vs. the generative family it froze, Demands vs. a static
// schedule, a degenerate Markov chain vs. its step) — is served from
// cache byte-identically to the fresh response. The X-Sweep-Cache
// header says hit or miss; the finer X-Cache header distinguishes
// hit | miss | coalesced, and Stats/healthz count semantic-alias hits
// (cache hits whose syntactic hash differs from the entry creator's).
// Concurrent equivalent submissions coalesce onto one execution.
//
// All handlers share one colony worker pool and one cross-request
// simulation gate sized to GOMAXPROCS; Close drains in-flight sweeps
// and returns every checked-out shard worker (no goroutine leaks — the
// package test asserts it under -race).
package simserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"taskalloc"
	"taskalloc/internal/store"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds each sweep's simulations in flight; <= 0 means
	// GOMAXPROCS. A request's ?workers=N overrides it per submission
	// (never the response bytes — ordering is worker-count invariant).
	Workers int
	// MaxConcurrent bounds simulations in flight across ALL requests
	// (the shared gate); <= 0 means GOMAXPROCS.
	MaxConcurrent int
	// CacheEntries caps the completed-sweep cache; <= 0 means 128.
	// Eviction is FIFO over completed sweeps.
	CacheEntries int
	// MaxBodyBytes caps a submission document's size (the decoder
	// materializes the whole grid); <= 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxJobs caps a single sweep's grid size; <= 0 means 10000.
	MaxJobs int
	// MaxCellRounds caps one cell's horizon — the compute bound a
	// well-formed document could otherwise dodge (a running sweep is
	// deliberately not cancelled on client disconnect, so admission is
	// where compute is bounded); <= 0 means 10,000,000.
	MaxCellRounds int
	// MaxCellAnts caps one cell's colony size (engine state is O(ants)
	// and per-round work is O(ants·k)); <= 0 means 10,000,000.
	MaxCellAnts int
	// CacheBytes caps the cached cells' retained bytes (trajectory
	// CSVs dominate); completed sweeps are evicted FIFO past it.
	// <= 0 means 256 MiB.
	CacheBytes int64
	// MaxBisectEvals caps one bisect request's evaluated γ cells (and
	// is the default when the request leaves max_evals 0); <= 0 means
	// 128.
	MaxBisectEvals int
	// JobCacheEntries caps the job-level result cache the bisect
	// endpoint reuses cells through (reports only — a few hundred bytes
	// each); <= 0 means 4096. Eviction is FIFO.
	JobCacheEntries int
	// DataDir enables durability: sweep journals are checkpointed under
	// DataDir/sweeps so a restart can replay completed sweeps and
	// resume interrupted ones (GET /v1/sweeps/{id}?cursor=N). Empty
	// keeps the service memory-only (the default — no existing behavior
	// changes).
	DataDir string
	// DataBytes caps the journals' disk usage (least-recently-committed
	// complete journals are evicted past it); <= 0 means 4 GiB.
	DataBytes int64
	// CacheDir enables the disk job-result cache (bisect cells), keyed
	// by wire.SemanticHash and shared across restarts — and across
	// processes: several backends may mount one directory. Empty
	// defaults to DataDir/jobcache when DataDir is set, else disabled.
	CacheDir string
	// CacheDiskBytes caps the disk job cache; <= 0 means 1 GiB.
	CacheDiskBytes int64
	// SyncWrites fsyncs every journal append. Off (the default),
	// checkpoints survive a process kill but not a machine crash; on,
	// both, at a large append cost.
	SyncWrites bool
	// Tenants enables bearer-token auth: requests (except healthz,
	// version, and metrics) must carry a configured token, and each
	// tenant gets its own job quota and request rate limit. Empty leaves
	// the server open.
	Tenants []TenantConfig
	// AccessLog, if non-nil, receives one structured JSON line per
	// request (log/slog): method, path, route, status, bytes, duration,
	// a per-request ID, the propagated X-Trace-Id (when present), and
	// the cache disposition. Nil disables request logging.
	AccessLog io.Writer
	// JobDelay artificially sleeps before each freshly computed job (a
	// chaos/test hook — cmd/simserve's -test-job-delay): it makes this
	// backend uniformly slow without touching results, so grid tests can
	// exercise work stealing against a real heterogeneous fleet. Cached
	// and journal-replayed cells are not delayed. Zero (the default)
	// disables it.
	JobDelay time.Duration
}

// maxWorkersPerRequest bounds the goroutines one submission's
// ?workers=N can ask sweeprun to spawn (the gate already bounds how
// many run; this bounds parked stacks).
const maxWorkersPerRequest = 256

// Server is the simulation service. Create with New, serve via
// ServeHTTP (it is an http.Handler), and Close to drain.
type Server struct {
	opts Options
	pool *taskalloc.WorkerPool
	gate chan struct{}
	mux  *http.ServeMux

	mu        sync.Mutex
	closed    bool
	inflight  sync.WaitGroup
	cache     map[string]*sweepEntry
	order     []string // insertion order, for FIFO eviction
	cacheSize int64    // retained bytes across completed entries

	// Job-level result cache (bisect cells), keyed by wire.SemanticHash,
	// and the in-flight bisect executions concurrent equivalent requests
	// coalesce onto (keyed by wire.SemanticBisectHash).
	jobCache      map[string]jobResult
	jobOrder      []string // insertion order, for FIFO eviction
	bisectFlights map[string]*bisectFlight

	// Durability layer (nil when Options.DataDir / CacheDir are empty):
	// the journal store, the disk job cache, and the index of on-disk
	// sweeps (guarded by mu).
	store   *store.Store
	blob    *store.BlobCache
	diskIdx map[string]*diskSweep

	// auth is the tenant layer, nil when Options.Tenants is empty.
	auth *authState
	// nowFn is the tenant rate limiter's clock, injectable in tests;
	// nil means time.Now.
	nowFn func() time.Time

	// metrics is the telemetry layer (always non-nil; see metrics.go).
	// Every counter the Stats snapshot reports lives here.
	metrics *serverMetrics
	// accessLog is the structured request logger, nil when
	// Options.AccessLog is nil.
	accessLog *slog.Logger
}

// now is the server's clock (rate limiting only).
func (s *Server) now() time.Time {
	if s.nowFn != nil {
		return s.nowFn()
	}
	return time.Now()
}

// Stats counts cache dispositions since the server started. All
// counters are monotone; Gauges (CacheEntries, CacheBytes) reflect the
// moment of the Stats call.
type Stats struct {
	// SweepHits / SweepMisses / SweepCoalesced classify POST /v1/sweeps
	// submissions: served from a completed cache entry, executed fresh,
	// or joined onto a running execution.
	SweepHits      uint64 `json:"sweep_hits"`
	SweepMisses    uint64 `json:"sweep_misses"`
	SweepCoalesced uint64 `json:"sweep_coalesced"`
	// SemanticAliasHits counts the subset of SweepHits + SweepCoalesced
	// whose syntactic hash (wire.SweepHash) differed from the hash of
	// the submission that created the entry — the wins only the
	// behavioral cache key can deliver.
	SemanticAliasHits uint64 `json:"semantic_alias_hits"`
	// BisectJobHits / BisectJobMisses classify per-γ cell evaluations
	// against the job-level result cache; BisectCoalesced counts bisect
	// requests that joined an in-flight equivalent execution.
	BisectJobHits   uint64 `json:"bisect_job_hits"`
	BisectJobMisses uint64 `json:"bisect_job_misses"`
	BisectCoalesced uint64 `json:"bisect_coalesced"`
	// DiskSweepHits counts sweeps served entirely from an on-disk
	// journal after a restart (POST submissions so served are
	// reclassified from SweepMisses to SweepHits); DiskResumes counts
	// incomplete journals resumed (checkpointed prefix replayed from
	// disk, remaining cells executed). JobCacheDiskHits counts bisect
	// cells served from the disk job cache. PersistErrors counts
	// best-effort durability failures — the request is still served
	// from memory, but its checkpoints stopped.
	DiskSweepHits    uint64 `json:"disk_sweep_hits"`
	DiskResumes      uint64 `json:"disk_resumes"`
	JobCacheDiskHits uint64 `json:"job_cache_disk_hits"`
	PersistErrors    uint64 `json:"persist_errors"`
	// CacheEntries / CacheBytes are the sweep cache's current size.
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	// DiskJournals / DiskBytes are the journal store's current size
	// (zero when durability is off).
	DiskJournals int   `json:"disk_journals"`
	DiskBytes    int64 `json:"disk_bytes"`
}

// Stats snapshots the server's cache counters. The counters live on
// the telemetry registry (GET /v1/metrics renders the same values);
// this snapshot re-derives the stable JSON schema healthz serves.
func (s *Server) Stats() Stats {
	m := s.metrics
	out := Stats{
		SweepHits:         m.sweepHits.Value(),
		SweepMisses:       m.sweepMisses.Value(),
		SweepCoalesced:    m.sweepCoalesced.Value(),
		SemanticAliasHits: m.aliasHits.Value(),
		BisectJobHits:     m.bisectJobHits.Value(),
		BisectJobMisses:   m.bisectJobMisses.Value(),
		BisectCoalesced:   m.bisectCoalesced.Value(),
		DiskSweepHits:     m.diskSweepHits.Value(),
		DiskResumes:       m.diskResumes.Value(),
		JobCacheDiskHits:  m.jobCacheDiskHits.Value(),
		PersistErrors:     m.persistErrors.Value(),
	}
	s.mu.Lock()
	out.CacheEntries = len(s.cache)
	out.CacheBytes = s.cacheSize
	s.mu.Unlock()
	if s.store != nil {
		out.DiskJournals, out.DiskBytes = s.store.Stats()
	}
	return out
}

// sweepEntry is one sweep's lifecycle: created on first submission,
// filled by the owning request, read by everyone after done closes.
type sweepEntry struct {
	id    string // semantic sweep hash: the cache key and public sweep ID
	synID string // creator's syntactic hash, for semantic-alias accounting
	jobs  int
	done  chan struct{}
	// Written only by the owning request before close(done):
	cells   []cell
	summary sweeprun.Summary
	failed  int
	size    int64 // approximate retained bytes (trajectories dominate)
}

// cell is one completed grid cell — everything any response format
// renders from.
type cell struct {
	meta   []string
	rounds int
	report taskalloc.Report
	err    string
	traj   []byte
}

// New builds a memory-only Server with a fresh shared worker pool. It
// panics if opts enables durability or tenants and that setup fails
// (bad directory, invalid tenant config) — prefer Open when using
// those options.
func New(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, setting up the durability layer (journal
// store + disk job cache) and the tenant registry when their options
// are set. With a zero Options it is equivalent to New: memory-only,
// open to all callers.
func Open(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 128
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 10000
	}
	if opts.MaxCellRounds <= 0 {
		opts.MaxCellRounds = 10_000_000
	}
	if opts.MaxCellAnts <= 0 {
		opts.MaxCellAnts = 10_000_000
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 256 << 20
	}
	if opts.MaxBisectEvals <= 0 {
		opts.MaxBisectEvals = 128
	}
	if opts.JobCacheEntries <= 0 {
		opts.JobCacheEntries = 4096
	}
	s := &Server{
		opts:          opts,
		pool:          taskalloc.NewWorkerPool(),
		gate:          make(chan struct{}, opts.MaxConcurrent),
		cache:         make(map[string]*sweepEntry),
		jobCache:      make(map[string]jobResult),
		bisectFlights: make(map[string]*bisectFlight),
		diskIdx:       make(map[string]*diskSweep),
	}
	if opts.DataDir != "" {
		if opts.DataBytes <= 0 {
			opts.DataBytes = 4 << 30
		}
		st, err := store.Open(filepath.Join(opts.DataDir, "sweeps"),
			store.Options{MaxBytes: opts.DataBytes, Sync: opts.SyncWrites})
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.store = st
		for _, e := range st.Entries() {
			s.diskIdx[e.ID] = &diskSweep{complete: e.Complete}
		}
		if opts.CacheDir == "" {
			opts.CacheDir = filepath.Join(opts.DataDir, "jobcache")
		}
		s.opts = opts
	}
	if opts.CacheDir != "" {
		if opts.CacheDiskBytes <= 0 {
			opts.CacheDiskBytes = 1 << 30
		}
		bc, err := store.OpenBlobCache(opts.CacheDir, opts.CacheDiskBytes)
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.blob = bc
	}
	s.metrics = newServerMetrics(s)
	if opts.AccessLog != nil {
		s.accessLog = slog.New(slog.NewJSONHandler(opts.AccessLog, nil))
	}
	if len(opts.Tenants) > 0 {
		for i, t := range opts.Tenants {
			if t.Name == "" || t.Token == "" {
				s.pool.Close()
				return nil, fmt.Errorf("simserver: tenant %d needs a name and a token", i)
			}
		}
		s.auth = newAuthState(opts.Tenants, s.metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/bisect", s.handleBisect)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler: every request flows through the
// instrumentation wrapper (metrics.go) and then the tenant middleware
// or the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.instrumented(w, r)
}

// begin registers an in-flight request; false once Close has started.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Close drains the server: new submissions are rejected with 503,
// in-flight sweeps run to completion, and only then is the shared
// worker pool shut down — so every checked-out shard worker set has
// been returned before its goroutines are told to exit. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	if !already {
		s.pool.Close()
	}
}

// lookupOrCreate returns the entry for the semantic id, creating it
// (and becoming the owner, who must run the sweep and close done) when
// absent. The disposition is "miss" for the owner, "hit" when the entry
// was already complete, and "coalesced" when its execution is still in
// flight; non-owners whose syntactic hash differs from the creator's
// count as semantic-alias hits. The owner's hit-or-miss counter is NOT
// charged here: whether a "miss" really executes — or is served from an
// on-disk journal and counts as a hit — is only known after the disk
// check, and the Prometheus counters must stay monotone (no
// reclassifying decrement).
func (s *Server) lookupOrCreate(id, synID string, jobs int) (entry *sweepEntry, disposition string) {
	s.mu.Lock()
	if e, ok := s.cache[id]; ok {
		disposition = "coalesced"
		var counter = s.metrics.sweepCoalesced
		select {
		case <-e.done:
			disposition = "hit"
			counter = s.metrics.sweepHits
		default:
		}
		alias := e.synID != synID
		s.mu.Unlock()
		counter.Inc()
		if alias {
			s.metrics.aliasHits.Inc()
		}
		return e, disposition
	}
	e := &sweepEntry{id: id, synID: synID, jobs: jobs, done: make(chan struct{})}
	s.cache[id] = e
	s.order = append(s.order, id)
	s.evictLocked()
	s.mu.Unlock()
	return e, "miss"
}

// evictLocked drops the oldest completed entries while the cache is
// over its entry-count or retained-bytes budget. In-flight entries are
// never evicted (waiters hold their pointer, and the owner must be
// able to publish); they count 0 bytes until published.
func (s *Server) evictLocked() {
	over := func() bool {
		return len(s.cache) > s.opts.CacheEntries || s.cacheSize > s.opts.CacheBytes
	}
	for i := 0; over() && i < len(s.order); {
		id := s.order[i]
		e, ok := s.cache[id]
		if !ok {
			s.order = append(s.order[:i], s.order[i+1:]...)
			continue
		}
		select {
		case <-e.done:
			delete(s.cache, id)
			s.cacheSize -= e.size
			s.order = append(s.order[:i], s.order[i+1:]...)
		default:
			i++
		}
	}
}

// drop removes a failed submission's placeholder (from the cache AND
// the eviction order, so repeated failures don't grow order without
// bound and a resubmitted id doesn't inherit a stale FIFO position) so
// a corrected resubmission is not welded to the broken one.
func (s *Server) drop(e *sweepEntry) {
	s.mu.Lock()
	delete(s.cache, e.id)
	for i, id := range s.order {
		if id == e.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	close(e.done)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.inflight.Done()

	// Admission stage: everything from here to the cache lookup —
	// decode, bounds, hashing, quota. Observed only for admitted
	// submissions (rejections show up in the per-route status counters).
	admissionStart := time.Now()

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		httpError(w, http.StatusBadRequest, "unknown format %q (want ndjson or csv)", format)
		return
	}
	workers := s.opts.Workers
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		// Clamp rather than reject: ordering (and therefore every
		// response byte) is worker-count invariant, and the gate bounds
		// running simulations anyway — the clamp only bounds parked
		// goroutine stacks a huge request could otherwise spawn.
		if n > maxWorkersPerRequest {
			n = maxWorkersPerRequest
		}
		workers = n
	}

	sweep, err := wire.DecodeSweep(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "%v", err)
		return
	}
	// Admission bounds: a well-formed document must not be able to buy
	// unbounded compute (running sweeps are not cancelled on client
	// disconnect, so this is where CPU is bounded).
	if len(sweep.Jobs) > s.opts.MaxJobs {
		httpError(w, http.StatusRequestEntityTooLarge,
			"grid has %d jobs, limit %d", len(sweep.Jobs), s.opts.MaxJobs)
		return
	}
	var frozenTotal uint64
	frozenSeen := map[string]bool{}
	for i, j := range sweep.Jobs {
		if j.Rounds < 0 || j.Rounds > s.opts.MaxCellRounds {
			httpError(w, http.StatusBadRequest,
				"jobs[%d]: rounds %d outside [0, %d]", i, j.Rounds, s.opts.MaxCellRounds)
			return
		}
		if j.Config.Ants > s.opts.MaxCellAnts {
			httpError(w, http.StatusBadRequest,
				"jobs[%d]: ants %d over limit %d", i, j.Config.Ants, s.opts.MaxCellAnts)
			return
		}
		// Frozen snapshots materialize O(horizon) at decode; the wire
		// codec caps each one, but the document-wide sum over DISTINCT
		// snapshots must be capped too or a small body buys an
		// unbounded buildRunnable. Identical encodings count once —
		// buildRunnable materializes them once (frozen snapshots are
		// safe to share across concurrent jobs; cmd/sweep grids
		// duplicate one snapshot across every cell).
		// Snapshots nested inside algebra operators count too: EachFrozen
		// walks the whole schedule tree, so a compose cannot smuggle a
		// snapshot past the budget.
		if sc := j.Config.Schedule; sc != nil {
			sc.EachFrozen(func(fz *wire.Schedule) {
				if key := wire.FrozenKey(fz); !frozenSeen[key] {
					frozenSeen[key] = true
					frozenTotal += fz.Horizon
				}
			})
			if frozenTotal > wire.MaxFrozenHorizon {
				httpError(w, http.StatusRequestEntityTooLarge,
					"grid's distinct frozen horizons sum past %d (job %d)", wire.MaxFrozenHorizon, i)
				return
			}
		}
	}
	// The public sweep ID is the behavioral hash: equivalent spellings
	// share one ID, one cache entry, and byte-identical bodies. The
	// syntactic hash is kept per entry only to count alias hits.
	synID, err := wire.SweepHash(sweep)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The tenant job quota is charged at admission, whatever the cache
	// disposition ends up being (a hit still consumed a submission).
	if t := tenantFrom(r); t != nil && !t.chargeJobs(len(sweep.Jobs)) {
		writeErrorBody(w, http.StatusForbidden, wire.ErrorBody{
			Error: fmt.Sprintf("job quota exceeded (%d jobs over tenant limit)", len(sweep.Jobs)),
			Kind:  "quota",
		})
		return
	}

	s.metrics.stageAdmission.ObserveSince(admissionStart)

	lookupStart := time.Now()
	entry, disposition := s.lookupOrCreate(id, synID, len(sweep.Jobs))
	s.metrics.stageCacheLookup.ObserveSince(lookupStart)
	if disposition != "miss" {
		// An equivalent grid already ran (or is running): coalesce onto
		// its result and replay it byte-identically.
		select {
		case <-entry.done:
		case <-r.Context().Done():
			return
		}
		if entry.cells == nil {
			// The owning submission failed validation after we joined.
			httpError(w, http.StatusBadRequest, "sweep %s failed validation; resubmit", id)
			return
		}
		s.setStreamHeaders(w, format, id, disposition)
		s.renderFrom(w, entry, format, 0)
		return
	}

	// We own the entry. Until published, any exit (validation error,
	// panic) must drop the placeholder so coalesced waiters unblock and
	// a corrected resubmission is not welded to the broken one.
	published := false
	defer func() {
		if !published {
			s.drop(entry)
		}
	}()

	// A journal from a previous process lifetime serves (or resumes)
	// this submission byte-identically to its creator's run;
	// serveFromDisk charges the hit/miss counter for the paths it
	// handles.
	if _, handled := s.serveFromDisk(w, r, entry, synID, format, 0, workers); handled {
		published = true // serveFromDisk publishes or drops the entry itself
		return
	}
	// No usable journal: this submission executes fresh — the miss the
	// lookup provisionally was is now definite.
	s.metrics.sweepMisses.Inc()

	jobs, recs, err := buildRunnable(sweep)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.createJournal(id, synID, sweep)
	s.setStreamHeaders(w, format, id, "miss")
	stream, flush := s.newStream(w, format, id, len(jobs), 0)
	s.executeOwned(entry, jobs, recs, nil, j, workers, func(i int, c cell) {
		// Completed sweep cells warm the bisect job cache: a later
		// bisection over a γ this sweep covered replays from it.
		s.storeJobFromCell(sweep.Jobs[i], c)
		renderStart := time.Now()
		stream.cell(i, c)
		flush()
		s.metrics.stageRender.ObserveSince(renderStart)
	})
	stream.finish()
	published = true
}

// publish completes an entry: records its cells and summary, charges
// its retained bytes against the cache budget (evicting older entries
// as needed), and releases every waiter. The field writes
// happen-before close(done), so waiters read them race-free.
func (s *Server) publish(e *sweepEntry, cells []cell, sum sweeprun.Summary) {
	var size int64
	for _, c := range cells {
		size += int64(len(c.traj)) + int64(len(c.err)) + 256 // report + struct overhead
		for _, m := range c.meta {
			size += int64(len(m))
		}
	}
	s.mu.Lock()
	e.cells = cells
	e.summary = sum
	e.failed = sum.Failed
	e.size = size
	if _, live := s.cache[e.id]; live {
		s.cacheSize += size
		s.evictLocked()
	}
	s.mu.Unlock()
	close(e.done)
}

// setStreamHeaders stamps the response metadata shared by fresh and
// cached replies. Bodies are byte-identical across the dispositions;
// only these headers differ. X-Cache carries the full disposition
// (hit | miss | coalesced); X-Sweep-Cache keeps its original binary
// contract (miss only for the executing owner) for existing clients.
func (s *Server) setStreamHeaders(w http.ResponseWriter, format, id, disposition string) {
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Sweep-Id", id)
	w.Header().Set("X-Cache", disposition)
	if disposition == "miss" {
		w.Header().Set("X-Sweep-Cache", "miss")
	} else {
		w.Header().Set("X-Sweep-Cache", "hit")
	}
}

// buildRunnable decodes the wire grid into sweeprun jobs (via
// wire.ToJobs, which shares identical frozen snapshots across cells),
// attaching a trajectory recorder to every job that asked for one.
func buildRunnable(sweep wire.Sweep) ([]sweeprun.Job, []*wire.TrajectoryRecorder, error) {
	jobs, err := wire.ToJobs(sweep)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]*wire.TrajectoryRecorder, len(sweep.Jobs))
	for i, wj := range sweep.Jobs {
		if wj.Trajectory {
			rec := wire.NewTrajectoryRecorder(wj.Config.Tasks())
			recs[i] = rec
			jobs[i].Observe = func(sim *taskalloc.Simulation) taskalloc.Observer {
				return rec.Observer(sim)
			}
		}
	}
	return jobs, recs, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.inflight.Done()

	id := r.PathValue("id")
	if q := r.URL.Query(); q.Has("cursor") || q.Has("format") {
		// Stream mode: replay the response body from a cursor — how a
		// client reconnects to a half-streamed sweep after a restart.
		s.handleGetStream(w, r, id)
		return
	}
	s.mu.Lock()
	e := s.cache[id]
	var jobsNow int
	if e != nil {
		jobsNow = e.jobs
	}
	s.mu.Unlock()
	if e == nil {
		if exists, _ := s.hasJournal(id); exists {
			// On disk but not loaded: a cursored GET (or an equivalent
			// POST) will replay or resume it.
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(wire.SweepStatus{ID: id, Status: "resumable"})
			return
		}
		httpError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	select {
	case <-e.done:
	default:
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(wire.SweepStatus{ID: e.id, Status: "running", Jobs: jobsNow})
		return
	}
	if e.cells == nil {
		httpError(w, http.StatusNotFound, "sweep %q failed validation", id)
		return
	}
	status := wire.SweepStatus{
		ID:      e.id,
		Status:  "done",
		Jobs:    e.jobs,
		Failed:  e.failed,
		Summary: &e.summary,
	}
	for i, c := range e.cells {
		status.Results = append(status.Results, resultLine(i, c, false))
	}
	_ = json.NewEncoder(w).Encode(status)
}

// handleGetStream serves GET /v1/sweeps/{id}?cursor=N[&format=...]:
// the response body from cell N on, byte-identical to the tail of an
// uninterrupted POST response (for NDJSON, preceded by the header line
// a resuming client drops; for CSV, the header row only at cursor 0).
// A sweep that lives only in a journal is loaded — or, if its journal
// is incomplete, resumed: the checkpointed prefix replays from disk
// and the remaining cells execute, streaming as they complete.
func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request, id string) {
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		httpError(w, http.StatusBadRequest, "unknown format %q (want ndjson or csv)", format)
		return
	}
	cursor := 0
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad cursor %q", v)
			return
		}
		cursor = n
	}

	// Memory first; fall back to adopting the on-disk journal (the
	// adopter becomes the entry owner, so concurrent readers coalesce
	// instead of double-resuming).
	s.mu.Lock()
	e := s.cache[id]
	owner := false
	if e == nil {
		if _, ok := s.diskIdx[id]; ok {
			e = &sweepEntry{id: id, done: make(chan struct{})}
			s.cache[id] = e
			s.order = append(s.order, id)
			owner = true
		}
	}
	s.mu.Unlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	if owner {
		if _, handled := s.serveFromDisk(w, r, e, "", format, cursor, s.opts.Workers); handled {
			return
		}
		// The journal vanished (evicted) or was undecodable.
		s.drop(e)
		httpError(w, http.StatusNotFound, "sweep %q is not recoverable", id)
		return
	}
	select {
	case <-e.done:
	case <-r.Context().Done():
		return
	}
	if e.cells == nil {
		httpError(w, http.StatusNotFound, "sweep %q failed validation", id)
		return
	}
	if cursor > len(e.cells) {
		httpError(w, http.StatusBadRequest,
			"cursor %d past end of sweep (%d jobs)", cursor, len(e.cells))
		return
	}
	s.setStreamHeaders(w, format, id, "hit")
	s.renderFrom(w, e, format, cursor)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Status  string                 `json:"status"`
		Stats   Stats                  `json:"stats"`
		Tenants map[string]TenantStats `json:"tenants,omitempty"`
	}{Status: "ok", Stats: s.Stats(), Tenants: s.tenantStats()})
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{
		"wire": wire.V1,
		"go":   runtime.Version(),
	})
}

// resultLine renders one cell as a wire.Result.
func resultLine(i int, c cell, withTrajectory bool) wire.Result {
	out := wire.Result{Index: i, Meta: c.meta, Err: c.err}
	if c.err == "" {
		rep := c.report
		out.Report = &rep
	}
	if withTrajectory && len(c.traj) > 0 {
		out.Trajectory = string(c.traj)
	}
	return out
}
