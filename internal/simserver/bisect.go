package simserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"taskalloc"
	"taskalloc/internal/bisect"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// Adaptive γ-bisection (POST /v1/bisect): the server refines a γ
// interval by repeated midpoint evaluation until every segment's regret
// band — |ΔAvgRegret| across its endpoints — is at most the requested
// target, or the evaluation budget runs out. The refinement loop itself
// lives in internal/bisect (shared with the grid coordinator's sharded
// bisect); this file supplies its evaluator: each evaluated cell is an
// ordinary job (the request's template with Gamma overridden), keyed by
// its behavioral hash (wire.SemanticHash) in a job-level result cache
// separate from the sweep cache, so a repeat bisection — or an
// overlapping one, or one whose template spells the same behavior
// differently — is served almost entirely from cache. The rendered
// cell still carries the syntactic wire.JobHash, so response bytes are
// unchanged by the cache's keying. Midpoints of all over-target
// segments are evaluated as one sweeprun batch per refinement round,
// through the same shared pool and admission gate as sweeps.

// jobResult is one cached cell outcome. Reports are a few hundred
// bytes, so the cache is bounded by entry count, not bytes.
type jobResult struct {
	report taskalloc.Report
	err    string
}

func (s *Server) handleBisect(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.inflight.Done()

	workers := s.opts.Workers
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		if n > maxWorkersPerRequest {
			n = maxWorkersPerRequest
		}
		workers = n
	}

	req, err := wire.DecodeBisectRequest(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "%v", err)
		return
	}
	// Admission: the same per-cell bounds as POST /v1/sweeps, plus the
	// evaluation budget (each evaluation is one cell of compute).
	if req.Job.Rounds > s.opts.MaxCellRounds {
		httpError(w, http.StatusBadRequest,
			"job rounds %d over limit %d", req.Job.Rounds, s.opts.MaxCellRounds)
		return
	}
	if req.Job.Config.Ants > s.opts.MaxCellAnts {
		httpError(w, http.StatusBadRequest,
			"job ants %d over limit %d", req.Job.Config.Ants, s.opts.MaxCellAnts)
		return
	}
	if req.MaxEvals > s.opts.MaxBisectEvals {
		httpError(w, http.StatusBadRequest,
			"max_evals %d over limit %d", req.MaxEvals, s.opts.MaxBisectEvals)
		return
	}
	// Hash the request AS SENT — before the server's MaxEvals default is
	// applied — so the response ID equals wire.SemanticBisectHash of the
	// submitted document (the coordinator's affinity hash) regardless of
	// this server's -max-bisect-evals. The behavioral hash makes
	// equivalent template spellings coalesce and share one response ID.
	id, err := wire.SemanticBisectHash(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.MaxEvals == 0 {
		req.MaxEvals = s.opts.MaxBisectEvals
	}
	req.Job.Trajectory = false // bisect cells never stream trajectories

	resp, disposition, err := s.runBisectCoalesced(r, id, req, workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if resp == nil {
		return // waiter whose request context ended first
	}
	if disposition == "" {
		// We owned the execution: "hit" when every cell came from the
		// job cache (the whole search replayed), else "miss".
		disposition = "miss"
		if resp.Evals > 0 && resp.CacheHits == resp.Evals {
			disposition = "hit"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", disposition)
	_ = json.NewEncoder(w).Encode(resp)
}

// bisectFlight is one in-flight bisect execution identical concurrent
// requests coalesce onto (the sweep cache's coalescing, without the
// long-term retention — the job cache already makes a repeat cheap).
type bisectFlight struct {
	done chan struct{}
	resp wire.BisectResponse
	err  error
}

// runBisectCoalesced executes the search, coalescing concurrent
// equivalent requests (same semantic id) onto one execution — without
// it, a dashboard double-refresh doubles admission-gated compute. The
// returned disposition is "coalesced" for a waiter and "" for the
// owner (the handler classifies the owner's run from its cache-hit
// counts). The returned response is nil (with nil error) only when a
// waiter's request context ended before the owner finished. Completed
// flights are not retained: a later repeat re-runs the
// (job-cache-warm) search.
func (s *Server) runBisectCoalesced(r *http.Request, id string, req wire.BisectRequest, workers int) (*wire.BisectResponse, string, error) {
	s.mu.Lock()
	if f := s.bisectFlights[id]; f != nil {
		s.mu.Unlock()
		s.metrics.bisectCoalesced.Inc()
		select {
		case <-f.done:
		case <-r.Context().Done():
			return nil, "", nil
		}
		if f.err != nil {
			return nil, "", f.err
		}
		resp := f.resp
		return &resp, "coalesced", nil
	}
	f := &bisectFlight{done: make(chan struct{})}
	s.bisectFlights[id] = f
	s.mu.Unlock()

	f.resp, f.err = bisect.Run(req, s.bisectEvaluator(req, workers))
	f.resp.Version = wire.V1
	f.resp.ID = id
	s.mu.Lock()
	delete(s.bisectFlights, id)
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, "", f.err
	}
	resp := f.resp
	return &resp, "", nil
}

// bisectEvaluator returns the local evaluator for one search: one cell
// per γ, serving repeats from the job cache (keyed by the behavioral
// hash, so equivalent template spellings share entries) and running the
// misses as one sweeprun batch. The rendered cell carries the syntactic
// JobHash unchanged. The shared refinement loop (internal/bisect) walks
// the same γ sequence every run, so a repeat request hits the cache on
// every cell.
func (s *Server) bisectEvaluator(req wire.BisectRequest, workers int) bisect.Evaluator {
	return func(gammas []float64) ([]wire.BisectCell, error) {
		type pending struct {
			cell int
			key  string
			job  sweeprun.Job
		}
		var (
			cells  []wire.BisectCell
			misses []pending
		)
		for _, g := range gammas {
			wj := req.Job
			cfg := wj.Config // value copy; Gamma override stays local
			cfg.Gamma = g
			wj.Config = cfg
			hash, err := wire.JobHash(wj)
			if err != nil {
				return nil, err
			}
			key, err := wire.SemanticHash(wj)
			if err != nil {
				return nil, err
			}
			cell := wire.BisectCell{Gamma: g, JobHash: hash}
			s.mu.Lock()
			hit, ok := s.jobCache[key]
			s.mu.Unlock()
			if !ok {
				// Memory miss: the disk job cache may still have it (a
				// previous process lifetime, or another backend sharing
				// the mount). A disk hit is promoted into memory.
				if jr, dok := s.jobBlobGet(key); dok {
					hit, ok = jr, true
					s.mu.Lock()
					s.storeJobLocked(key, jr)
					s.mu.Unlock()
					s.metrics.jobCacheDiskHits.Inc()
				}
			}
			if ok {
				s.metrics.bisectJobHits.Inc()
			} else {
				s.metrics.bisectJobMisses.Inc()
			}
			if ok {
				cell.Cached = true
				if hit.err != "" {
					cell.Err = hit.err
				} else {
					rep := hit.report
					cell.Report = &rep
				}
			} else {
				job, err := wj.ToJob()
				if err != nil {
					return nil, err
				}
				misses = append(misses, pending{cell: len(cells), key: key, job: job})
			}
			cells = append(cells, cell)
		}
		if len(misses) == 0 {
			return cells, nil
		}
		jobs := make([]sweeprun.Job, len(misses))
		for i, p := range misses {
			jobs[i] = p.job
		}
		results := sweeprun.Run(jobs, sweeprun.Options{
			Workers:  workers,
			Pool:     s.pool,
			Gate:     s.gate,
			OnTiming: s.observeJobTiming,
		})
		computed := make([]jobResult, len(results))
		s.mu.Lock()
		for i, res := range results {
			c := &cells[misses[i].cell]
			var jr jobResult
			if res.Err != nil {
				c.Err = res.Err.Error()
				jr.err = c.Err
			} else {
				rep := res.Report
				c.Report = &rep
				jr.report = res.Report
			}
			s.storeJobLocked(misses[i].key, jr)
			computed[i] = jr
		}
		s.mu.Unlock()
		// Spill fresh results to the disk cache outside the lock (Put
		// does file IO); idempotent, so concurrent writers are safe.
		for i, p := range misses {
			s.jobBlobPut(p.key, computed[i])
		}
		return cells, nil
	}
}

// storeJobLocked inserts one job-cache entry, evicting FIFO past the
// entry budget. Caller holds s.mu.
func (s *Server) storeJobLocked(hash string, jr jobResult) {
	if _, ok := s.jobCache[hash]; ok {
		return
	}
	s.jobCache[hash] = jr
	s.jobOrder = append(s.jobOrder, hash)
	for len(s.jobOrder) > s.opts.JobCacheEntries {
		delete(s.jobCache, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

// storeJobFromCell populates the bisect job cache from one completed
// sweep cell, keyed by the job's behavioral hash — a sweep that covered
// a γ point warms later bisections over the same template (and vice
// versa: the caches converge on behavior, not on which endpoint
// computed it). Trajectory output is irrelevant to the cached report,
// so the entry is stored regardless of the job's Trajectory flag.
func (s *Server) storeJobFromCell(wj wire.Job, c cell) {
	wj.Trajectory = false
	key, err := wire.SemanticHash(wj)
	if err != nil {
		return
	}
	jr := jobResult{report: c.report}
	if c.err != "" {
		jr = jobResult{err: c.err}
	}
	s.mu.Lock()
	s.storeJobLocked(key, jr)
	s.mu.Unlock()
}
