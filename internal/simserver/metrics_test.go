package simserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"taskalloc/internal/obs"
	"taskalloc/internal/simserver"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/wire"
)

// newHTTPService is newTestService plus the raw base URL, for tests
// that scrape endpoints directly.
func newHTTPService(t *testing.T, srv *simserver.Server) (*httptest.Server, *client.Client, func()) {
	t.Helper()
	hs := httptest.NewServer(srv)
	c := client.New(hs.URL, hs.Client())
	return hs, c, func() {
		hs.Close()
		srv.Close()
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the access
// log (slog writes from handler goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// scrape fetches GET /v1/metrics and returns the exposition body.
func scrape(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /v1/metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// sampleValue finds the first sample line whose name+labels prefix
// matches and returns its value string ("" if absent).
func sampleValue(body []byte, prefix string) string {
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	return ""
}

// TestMetricsExposition is the telemetry acceptance test: after a miss
// and a cached hit, /v1/metrics serves a lint-clean exposition whose
// counters agree with the healthz Stats JSON (which must be unchanged
// by the counters' migration onto obs primitives).
func TestMetricsExposition(t *testing.T) {
	var logBuf syncBuffer
	srv := simserver.New(simserver.Options{AccessLog: &logBuf})
	hs, c, done := newHTTPService(t, srv)
	defer done()
	ctx := context.Background()

	sweep, err := wire.FromJobs(testGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission reported a cache hit")
	}
	again, err := c.SubmitSweep(ctx, sweep, client.SubmitOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("resubmission missed the cache")
	}

	body := scrape(t, hs.URL)
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}

	// The Stats counters and the exposition are the same underlying
	// values.
	st := srv.Stats()
	if st.SweepHits != 1 || st.SweepMisses != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/1", st.SweepHits, st.SweepMisses)
	}
	if got := sampleValue(body, `taskalloc_sweep_requests_total{disposition="hit"}`); got != "1" {
		t.Fatalf("sweep hit sample = %q, want 1", got)
	}
	if got := sampleValue(body, `taskalloc_sweep_requests_total{disposition="miss"}`); got != "1" {
		t.Fatalf("sweep miss sample = %q, want 1", got)
	}
	// Stage timings observed once per executed job at least.
	if got := sampleValue(body, `taskalloc_stage_seconds_count{stage="engine_run"}`); got == "" || got == "0" {
		t.Fatalf("engine_run stage count = %q, want > 0", got)
	}
	if got := sampleValue(body, `taskalloc_stage_seconds_count{stage="admission"}`); got == "" || got == "0" {
		t.Fatalf("admission stage count = %q, want > 0", got)
	}
	// Request accounting by route pattern and status.
	if got := sampleValue(body, `taskalloc_http_requests_total{route="POST /v1/sweeps",code="200"}`); got != "2" {
		t.Fatalf("http requests sample = %q, want 2", got)
	}

	// The healthz payload still speaks the exact Stats schema.
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string          `json:"status"`
		Stats  simserver.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Stats.SweepHits != 1 || health.Stats.SweepMisses != 1 {
		t.Fatalf("healthz: %+v", health)
	}

	// Access log: one JSON line per request with route, status, and a
	// request ID.
	logs := logBuf.String()
	if !strings.Contains(logs, `"route":"POST /v1/sweeps"`) ||
		!strings.Contains(logs, `"request_id":`) {
		t.Fatalf("access log missing request records:\n%s", logs)
	}
}

// TestTraceIDPropagation: a client-supplied X-Trace-Id is echoed on the
// response and lands in the access log; responses always carry a
// fresh X-Request-Id; a malformed trace ID is dropped, not echoed.
func TestTraceIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	srv := simserver.New(simserver.Options{AccessLog: &logBuf})
	hs, c, done := newHTTPService(t, srv)
	defer done()
	ctx := context.Background()

	const trace = "trace-abc_123"
	tc := c.WithTraceID(trace)
	if err := tc.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != trace {
		t.Fatalf("X-Trace-Id echo = %q, want %q", got, trace)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}

	// Malformed IDs (spaces, newlines — log-injection vectors) are
	// dropped.
	req, _ = http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Trace-Id", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("malformed trace ID echoed: %q", got)
	}

	logs := logBuf.String()
	if !strings.Contains(logs, `"trace_id":"`+trace+`"`) {
		t.Fatalf("access log missing trace_id %q:\n%s", trace, logs)
	}
	if strings.Contains(logs, "bad id with spaces") {
		t.Fatalf("malformed trace ID reached the log:\n%s", logs)
	}
}

// TestMetricsOpenWithTenants: /v1/metrics stays unauthenticated like
// healthz when tenants are configured, and per-tenant counters appear
// under the tenant's name.
func TestMetricsOpenWithTenants(t *testing.T) {
	srv := simserver.New(simserver.Options{
		Tenants: []simserver.TenantConfig{{Name: "acme", Token: "sekrit"}},
	})
	hs, c, done := newHTTPService(t, srv)
	defer done()

	// Healthz/version are open paths, so exercise an authenticated one:
	// a GET for an unknown sweep still passes auth admission (the 404
	// comes after the rate limiter charges the request).
	if _, err := c.WithToken("sekrit").GetSweep(context.Background(), "nope"); err == nil {
		t.Fatal("expected a 404 for an unknown sweep")
	}
	body := scrape(t, hs.URL) // unauthenticated scrape
	if problems := obs.Lint(body); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	if got := sampleValue(body, `taskalloc_tenant_requests_total{tenant="acme"}`); got != "1" {
		t.Fatalf("tenant requests sample = %q, want 1", got)
	}
	if strings.Contains(string(body), "sekrit") {
		t.Fatal("exposition leaked a tenant token")
	}
}
