package clock

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	mustPanic(t, "n=1", func() { New(1, 3, 1) })
	mustPanic(t, "even sample", func() { New(10, 2, 1) })
	mustPanic(t, "zero sample", func() { New(10, 0, 1) })
	s := New(10, 3, 1)
	if s.N() != 10 || s.MemoryBits() != 1 || s.Round() != 0 {
		t.Fatal("accessors broken")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSetBits(t *testing.T) {
	s := New(4, 3, 1)
	s.SetBits([]uint8{1, 1, 1, 0})
	if s.Bit(0) != 1 || s.Bit(3) != 0 {
		t.Fatal("SetBits failed")
	}
	if got := s.Agreement(); got != 0.75 {
		t.Fatalf("Agreement = %v, want 0.75", got)
	}
	mustPanic(t, "length", func() { s.SetBits([]uint8{1}) })
}

func TestAgreementRange(t *testing.T) {
	s := New(100, 3, 2)
	a := s.Agreement()
	if a < 0.5 || a > 1 {
		t.Fatalf("Agreement %v outside [0.5, 1]", a)
	}
}

// TestConsensusPreserved: once all bits agree, they stay in agreement
// forever (the tick flips everyone together; majority keeps it).
func TestConsensusPreserved(t *testing.T) {
	s := New(200, 3, 3)
	s.SetBits(make([]uint8, 200)) // all zero
	for i := 0; i < 50; i++ {
		s.Step()
		if s.Agreement() != 1 {
			t.Fatalf("consensus broken at round %d: %v", i+1, s.Agreement())
		}
	}
}

// TestTickAlternates: under consensus the common bit alternates each
// round — the day/night phase signal Algorithm Ant needs.
func TestTickAlternates(t *testing.T) {
	s := New(50, 3, 4)
	s.SetBits(make([]uint8, 50))
	prev := s.Bit(0)
	for i := 0; i < 20; i++ {
		s.Step()
		if s.Bit(0) == prev {
			t.Fatalf("bit did not alternate at round %d", i+1)
		}
		prev = s.Bit(0)
	}
}

// TestConvergesFromRandom: from uniform random bits, best-of-3 majority
// reaches full agreement quickly (O(log n) w.h.p.).
func TestConvergesFromRandom(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		s := New(n, 3, uint64(n))
		rounds, ok := s.RoundsToSync(1.0, 200)
		if !ok {
			t.Fatalf("n=%d: no consensus in 200 rounds (agreement %v)", n, s.Agreement())
		}
		if rounds > 100 {
			t.Fatalf("n=%d: consensus took %d rounds", n, rounds)
		}
	}
}

// TestConvergesFromNearTie: an adversarial 50/50 split still resolves.
func TestConvergesFromNearTie(t *testing.T) {
	n := 2000
	s := New(n, 5, 9)
	bits := make([]uint8, n)
	for i := n / 2; i < n; i++ {
		bits[i] = 1
	}
	s.SetBits(bits)
	if _, ok := s.RoundsToSync(1.0, 500); !ok {
		t.Fatalf("tie not resolved: agreement %v", s.Agreement())
	}
}

// TestLargerSamplesConvergeFaster (statistically): best-of-5 should not
// be slower than best-of-1 (which is just a voter-model random walk).
func TestLargerSamplesConvergeFaster(t *testing.T) {
	avg := func(sample int) float64 {
		total := 0.0
		const reps = 10
		for rep := 0; rep < reps; rep++ {
			s := New(500, sample, uint64(100+rep))
			r, ok := s.RoundsToSync(0.99, 5000)
			if !ok {
				r = 5000
			}
			total += float64(r)
		}
		return total / reps
	}
	slow := avg(1)
	fast := avg(5)
	if fast > slow+5 && fast > 2*slow {
		t.Fatalf("best-of-5 (%v rounds) much slower than best-of-1 (%v)", fast, slow)
	}
}

// TestRoundsToSyncAlreadySynced returns immediately.
func TestRoundsToSyncAlreadySynced(t *testing.T) {
	s := New(10, 3, 5)
	s.SetBits(make([]uint8, 10))
	r, ok := s.RoundsToSync(1.0, 100)
	if !ok || r != 0 {
		t.Fatalf("(%d, %v), want (0, true)", r, ok)
	}
}

// TestDeterminism: same seed, same trajectory.
func TestDeterminism(t *testing.T) {
	a := New(300, 3, 7)
	b := New(300, 3, 7)
	for i := 0; i < 50; i++ {
		a.Step()
		b.Step()
	}
	for i := 0; i < 300; i++ {
		if a.Bit(i) != b.Bit(i) {
			t.Fatalf("diverged at ant %d", i)
		}
	}
	if math.Abs(a.Agreement()-b.Agreement()) > 0 {
		t.Fatal("agreement diverged")
	}
}
