// Package clock implements the self-stabilizing phase synchronization
// the paper assumes away in footnote 2: Algorithm Ant needs all ants to
// agree on which round opens a phase ("day" vs "night"), and the paper
// notes this is achievable with one extra bit of memory and very limited
// communication (citing Boczkowski, Korman & Natale, SODA 2017).
//
// The substrate here is a 1-bit self-stabilizing clock: every ant keeps
// one phase bit that it flips every round (its local "day/night"), and
// each round it observes the bits of a few uniformly random peers and
// adopts the majority when its own bit is outvoted. Because everybody
// flips in lockstep, agreement on the bit is exactly agreement on the
// phase boundary, and best-of-k majority dynamics drives any initial bit
// configuration to consensus in O(log n) rounds w.h.p. — from which
// point Algorithm Ant's premise holds.
package clock

import (
	"fmt"

	"taskalloc/internal/rng"
)

// Sync is a colony of 1-bit phase clocks. Not safe for concurrent use.
type Sync struct {
	bits    []uint8
	scratch []uint8
	r       *rng.Rng
	sample  int
	round   uint64
}

// New builds a synchronizer for n ants, each observing sample (an odd
// number >= 1) random peers per round. Initial bits are uniform random —
// the worst case for consensus.
func New(n, sample int, seed uint64) *Sync {
	if n < 2 {
		panic("clock: New needs n >= 2")
	}
	if sample < 1 || sample%2 == 0 {
		panic("clock: sample size must be odd and >= 1")
	}
	s := &Sync{
		bits:    make([]uint8, n),
		scratch: make([]uint8, n),
		r:       rng.New(seed),
		sample:  sample,
	}
	for i := range s.bits {
		s.bits[i] = uint8(s.r.Intn(2))
	}
	return s
}

// SetBits overwrites the bit configuration (for adversarial starts).
func (s *Sync) SetBits(bits []uint8) {
	if len(bits) != len(s.bits) {
		panic("clock: SetBits length mismatch")
	}
	for i, b := range bits {
		s.bits[i] = b & 1
	}
}

// N returns the number of clocks.
func (s *Sync) N() int { return len(s.bits) }

// Round returns the number of completed rounds.
func (s *Sync) Round() uint64 { return s.round }

// Bit returns ant i's current phase bit.
func (s *Sync) Bit(i int) uint8 { return s.bits[i] }

// Step advances one synchronous round: every ant flips its bit (the
// clock tick), then samples `sample` peers from the pre-correction state
// and adopts the majority bit. Sampling is with replacement and may hit
// the ant itself — the dynamics tolerate both.
func (s *Sync) Step() {
	n := len(s.bits)
	// Tick.
	for i := range s.bits {
		s.bits[i] ^= 1
	}
	// Correct: everyone observes the POST-tick bits of peers
	// simultaneously, so use a snapshot.
	copy(s.scratch, s.bits)
	for i := range s.bits {
		ones := 0
		for j := 0; j < s.sample; j++ {
			ones += int(s.scratch[s.r.Intn(n)])
		}
		if 2*ones > s.sample {
			s.bits[i] = 1
		} else {
			s.bits[i] = 0
		}
	}
	s.round++
}

// Agreement returns the fraction of ants holding the majority bit, in
// [0.5, 1].
func (s *Sync) Agreement() float64 {
	ones := 0
	for _, b := range s.bits {
		ones += int(b)
	}
	n := len(s.bits)
	if 2*ones >= n {
		return float64(ones) / float64(n)
	}
	return float64(n-ones) / float64(n)
}

// Synchronized reports whether agreement has reached thresh.
func (s *Sync) Synchronized(thresh float64) bool { return s.Agreement() >= thresh }

// RoundsToSync steps until agreement reaches thresh or maxRounds passes,
// returning the number of rounds taken and whether the threshold was
// reached.
func (s *Sync) RoundsToSync(thresh float64, maxRounds int) (int, bool) {
	if s.Synchronized(thresh) {
		return 0, true
	}
	for i := 1; i <= maxRounds; i++ {
		s.Step()
		if s.Synchronized(thresh) {
			return i, true
		}
	}
	return maxRounds, false
}

// MemoryBits returns the per-ant memory of the synchronizer: one bit.
func (s *Sync) MemoryBits() int { return 1 }

// String summarizes the state.
func (s *Sync) String() string {
	return fmt.Sprintf("clock.Sync{n=%d sample=%d round=%d agreement=%.3f}",
		len(s.bits), s.sample, s.round, s.Agreement())
}
