// Package meanfield is an aggregate simulator for Algorithm Ant under
// per-ant independent feedback. Ants in the same role (worker on task j,
// or idle) are exchangeable, so instead of flipping coins per ant the
// engine advances whole cohorts with binomial and multinomial draws:
//
//   - temporary pauses:  Binomial(W(j), cs·γ)
//   - permanent leaves:  Binomial(W(j), q1(j)·q2(j)·γ/cd)
//   - idle joins: each idle ant "succeeds" on task j with probability
//     u(j) = p1(j)·p2(j) and joins a uniform success. The joint success
//     vectors are product-Bernoulli, so for k ≤ MaxEnumTasks the engine
//     draws one multinomial over the 2^k subsets and splits each subset's
//     cohort uniformly; above that it falls back to per-ant draws for
//     idle ants only.
//
// Per round the cost is O(2^k) instead of O(n·k), which makes colony-size
// sweeps of Algorithm Ant essentially free. The distribution of the load
// process is exactly that of the agent engine (it is not bit-identical —
// different random draws — but statistically equivalent; package tests
// cross-validate the two engines).
package meanfield

import (
	"errors"
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/dist"
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Config assembles a mean-field simulation of Algorithm Ant.
type Config struct {
	// N is the number of ants.
	N int
	// Schedule supplies the demand vector.
	Schedule demand.Schedule
	// Model is the feedback model. Any Model works; deterministic
	// descriptors are treated as Bernoulli with probability 0 or 1.
	Model noise.Model
	// Params are Algorithm Ant's parameters (Epsilon/CChi unused).
	Params agent.Params
	// InitLoads sets the initial per-task loads (nil = all idle). The
	// remaining ants start idle.
	InitLoads []int
	// Seed drives all randomness.
	Seed uint64
	// MaxEnumTasks bounds the 2^k subset enumeration for idle joins;
	// 0 means 10. Larger k uses the per-ant fallback.
	MaxEnumTasks int
}

// Engine is the aggregate simulator. Not safe for concurrent use.
type Engine struct {
	cfg    Config
	k      int
	r      *rng.Rng
	loads  []int // loads after the last completed round
	phaseW []int // loads at the start of the current phase
	idle   int   // idle count at the start of the current phase
	p1     []float64
	p2     []float64
	fbDesc []noise.TaskFeedback
	defs   []float64
	round  uint64

	// scratch for subset enumeration
	subsetW []float64
	subsetC []int
	taskW   []float64
	taskC   []int
}

// Observer matches colony.Observer.
type Observer func(t uint64, loads []int, dem demand.Vector)

// New builds a mean-field engine.
func New(cfg Config) (*Engine, error) {
	if cfg.N <= 0 {
		return nil, errors.New("meanfield: need N >= 1")
	}
	if cfg.Schedule == nil || cfg.Schedule.Tasks() <= 0 {
		return nil, errors.New("meanfield: need a schedule with >= 1 task")
	}
	if cfg.Model == nil {
		return nil, errors.New("meanfield: need a noise model")
	}
	if err := cfg.Params.Validate(false); err != nil {
		return nil, fmt.Errorf("meanfield: %w", err)
	}
	if cfg.MaxEnumTasks == 0 {
		cfg.MaxEnumTasks = 10
	}
	k := cfg.Schedule.Tasks()
	e := &Engine{
		cfg:    cfg,
		k:      k,
		r:      rng.New(cfg.Seed),
		loads:  make([]int, k),
		phaseW: make([]int, k),
		p1:     make([]float64, k),
		p2:     make([]float64, k),
		fbDesc: make([]noise.TaskFeedback, k),
		defs:   make([]float64, k),
		taskW:  make([]float64, k),
		taskC:  make([]int, k),
	}
	if k <= cfg.MaxEnumTasks {
		e.subsetW = make([]float64, 1<<k)
		e.subsetC = make([]int, 1<<k)
	}
	working := 0
	if cfg.InitLoads != nil {
		if len(cfg.InitLoads) != k {
			return nil, fmt.Errorf("meanfield: InitLoads has %d tasks, want %d",
				len(cfg.InitLoads), k)
		}
		for j, w := range cfg.InitLoads {
			if w < 0 {
				return nil, fmt.Errorf("meanfield: negative initial load %d", w)
			}
			e.loads[j] = w
			working += w
		}
		if working > cfg.N {
			return nil, fmt.Errorf("meanfield: initial loads %d exceed N=%d", working, cfg.N)
		}
	}
	e.idle = cfg.N - working
	return e, nil
}

// Loads returns the current per-task loads (engine-owned).
func (e *Engine) Loads() []int { return e.loads }

// Idle returns the current idle count.
func (e *Engine) Idle() int {
	working := 0
	for _, w := range e.loads {
		working += w
	}
	return e.cfg.N - working
}

// Round returns the last completed round.
func (e *Engine) Round() uint64 { return e.round }

// lackProbs fills dst with the per-ant Lack probability of every task for
// round t given the current loads.
func (e *Engine) lackProbs(t uint64, dem demand.Vector, dst []float64) {
	for j := 0; j < e.k; j++ {
		e.defs[j] = float64(dem[j] - e.loads[j])
	}
	e.cfg.Model.Describe(noise.Env{Round: t, Deficit: e.defs, Demand: dem}, e.fbDesc)
	for j, d := range e.fbDesc {
		if d.Deterministic {
			if d.Value == noise.Lack {
				dst[j] = 1
			} else {
				dst[j] = 0
			}
		} else {
			dst[j] = d.LackProb
		}
	}
}

// Step advances one round (half of an Algorithm Ant phase).
func (e *Engine) Step() {
	t := e.round + 1
	dem := e.cfg.Schedule.At(t)
	if t%2 == 1 {
		// Phase open: record the phase-start cohort sizes and sample
		// probabilities, then thin the workforce.
		copy(e.phaseW, e.loads)
		e.idle = e.Idle()
		e.lackProbs(t, dem, e.p1)
		for j := 0; j < e.k; j++ {
			paused := dist.Binomial(e.r, e.phaseW[j], e.cfg.Params.Cs*e.cfg.Params.Gamma)
			e.loads[j] = e.phaseW[j] - paused
		}
		e.round = t
		return
	}

	// Phase close.
	e.lackProbs(t, dem, e.p2)
	p := e.cfg.Params

	// Permanent leaves from each phase-start cohort.
	for j := 0; j < e.k; j++ {
		q := (1 - e.p1[j]) * (1 - e.p2[j]) * p.Gamma / p.Cd
		left := dist.Binomial(e.r, e.phaseW[j], q)
		e.loads[j] = e.phaseW[j] - left
	}

	// Idle joins.
	if e.idle > 0 {
		if e.subsetW != nil {
			e.joinsEnumerated()
		} else {
			e.joinsPerAnt()
		}
	}
	e.idle = 0 // recomputed at the next phase open
	e.round = t
}

// joinsEnumerated distributes the idle cohort over the 2^k success
// subsets with one multinomial, then splits each subset uniformly.
func (e *Engine) joinsEnumerated() {
	k := e.k
	// Subset probability via the standard product expansion.
	e.subsetW[0] = 1
	size := 1
	for j := 0; j < k; j++ {
		u := e.p1[j] * e.p2[j]
		for s := 0; s < size; s++ {
			w := e.subsetW[s]
			e.subsetW[s] = w * (1 - u)
			e.subsetW[s|1<<j] = w * u
		}
		size <<= 1
	}
	dist.Multinomial(e.r, e.idle, e.subsetW, e.subsetC)
	for s := 1; s < 1<<k; s++ {
		c := e.subsetC[s]
		if c == 0 {
			continue
		}
		// Uniform split of c ants over the tasks in subset s.
		members := 0
		for j := 0; j < k; j++ {
			if s&(1<<j) != 0 {
				e.taskW[members] = 1
				e.taskC[members] = 0
				members++
			}
		}
		dist.Multinomial(e.r, c, e.taskW[:members], e.taskC[:members])
		idx := 0
		for j := 0; j < k; j++ {
			if s&(1<<j) != 0 {
				e.loads[j] += e.taskC[idx]
				idx++
			}
		}
	}
}

// joinsPerAnt is the fallback for large k: idle ants are sampled
// individually (workers are still aggregated).
func (e *Engine) joinsPerAnt() {
	for i := 0; i < e.idle; i++ {
		count := 0
		choice := -1
		for j := 0; j < e.k; j++ {
			if e.r.Bernoulli(e.p1[j] * e.p2[j]) {
				count++
				if e.r.Intn(count) == 0 {
					choice = j
				}
			}
		}
		if choice >= 0 {
			e.loads[choice]++
		}
	}
}

// Run advances the engine by rounds rounds, invoking obs after each.
func (e *Engine) Run(rounds int, obs Observer) {
	for i := 0; i < rounds; i++ {
		e.Step()
		if obs != nil {
			obs(e.round, e.loads, e.cfg.Schedule.At(e.round))
		}
	}
}
