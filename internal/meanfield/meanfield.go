// Package meanfield is an aggregate simulator for Algorithm Ant under
// per-ant independent feedback. Ants in the same role (worker on task j,
// or idle) are exchangeable, so instead of flipping coins per ant the
// engine advances whole cohorts with binomial and multinomial draws:
//
//   - temporary pauses:  Binomial(W(j), cs·γ)
//   - permanent leaves:  Binomial(W(j), q1(j)·q2(j)·γ/cd)
//   - idle joins: each idle ant "succeeds" on task j with probability
//     u(j) = p1(j)·p2(j) and joins a uniform success. The joint success
//     vectors are product-Bernoulli, so for k ≤ MaxEnumTasks the engine
//     draws one multinomial over the 2^k subsets and splits each subset's
//     cohort uniformly; above that it falls back to per-ant draws for
//     idle ants only.
//
// Per round the cost is O(2^k) instead of O(n·k), which makes colony-size
// sweeps of Algorithm Ant essentially free. The distribution of the load
// process is exactly that of the agent engine (it is not bit-identical —
// different random draws — but statistically equivalent; package tests
// cross-validate the two engines).
package meanfield

import (
	"errors"
	"fmt"

	"taskalloc/internal/agent"
	"taskalloc/internal/demand"
	"taskalloc/internal/dist"
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Config assembles a mean-field simulation of Algorithm Ant.
type Config struct {
	// N is the number of ants.
	N int
	// Schedule supplies the demand vector.
	Schedule demand.Schedule
	// Model is the feedback model. Any Model works; deterministic
	// descriptors are treated as Bernoulli with probability 0 or 1.
	Model noise.Model
	// Params are Algorithm Ant's parameters (Epsilon/CChi unused).
	Params agent.Params
	// InitLoads sets the initial per-task loads (nil = all idle). The
	// remaining ants start idle.
	InitLoads []int
	// Seed drives all randomness.
	Seed uint64
	// MaxEnumTasks bounds the 2^k subset enumeration for idle joins;
	// 0 means 10. Larger k uses the per-ant fallback.
	MaxEnumTasks int
}

// Engine is the aggregate simulator. Not safe for concurrent use.
type Engine struct {
	cfg      Config
	k        int
	r        *rng.Rng
	loads    []int // loads after the last completed round
	phaseW   []int // loads at the start of the current phase
	idle     int   // idle count at the start of the current phase
	p1       []float64
	p2       []float64
	fbDesc   []noise.TaskFeedback
	defs     []float64
	round    uint64
	active   int // current applied colony size (see Resize)
	resizeTo int // pending Resize target; -1 = none
	switches uint64

	// scratch for subset enumeration
	subsetW []float64
	subsetC []int
	taskW   []float64
	taskC   []int
}

// Observer matches colony.Observer.
type Observer func(t uint64, loads []int, dem demand.Vector)

// New builds a mean-field engine.
func New(cfg Config) (*Engine, error) {
	if cfg.N <= 0 {
		return nil, errors.New("meanfield: need N >= 1")
	}
	if cfg.Schedule == nil || cfg.Schedule.Tasks() <= 0 {
		return nil, errors.New("meanfield: need a schedule with >= 1 task")
	}
	if cfg.Model == nil {
		return nil, errors.New("meanfield: need a noise model")
	}
	if err := cfg.Params.Validate(false); err != nil {
		return nil, fmt.Errorf("meanfield: %w", err)
	}
	if cfg.MaxEnumTasks == 0 {
		cfg.MaxEnumTasks = 10
	}
	k := cfg.Schedule.Tasks()
	e := &Engine{
		cfg:      cfg,
		k:        k,
		r:        rng.New(cfg.Seed),
		loads:    make([]int, k),
		phaseW:   make([]int, k),
		p1:       make([]float64, k),
		p2:       make([]float64, k),
		fbDesc:   make([]noise.TaskFeedback, k),
		defs:     make([]float64, k),
		taskW:    make([]float64, k),
		taskC:    make([]int, k),
		active:   cfg.N,
		resizeTo: -1,
	}
	if k <= cfg.MaxEnumTasks {
		e.subsetW = make([]float64, 1<<k)
		e.subsetC = make([]int, 1<<k)
	}
	working := 0
	if cfg.InitLoads != nil {
		if len(cfg.InitLoads) != k {
			return nil, fmt.Errorf("meanfield: InitLoads has %d tasks, want %d",
				len(cfg.InitLoads), k)
		}
		for j, w := range cfg.InitLoads {
			if w < 0 {
				return nil, fmt.Errorf("meanfield: negative initial load %d", w)
			}
			e.loads[j] = w
			working += w
		}
		if working > cfg.N {
			return nil, fmt.Errorf("meanfield: initial loads %d exceed N=%d", working, cfg.N)
		}
	}
	e.idle = cfg.N - working
	return e, nil
}

// Loads returns the current per-task loads (engine-owned).
func (e *Engine) Loads() []int { return e.loads }

// Idle returns the current idle count.
func (e *Engine) Idle() int {
	working := 0
	for _, w := range e.loads {
		working += w
	}
	return e.active - working
}

// Round returns the last completed round.
func (e *Engine) Round() uint64 { return e.round }

// Active returns the colony size in force: the last Resize target, or N.
func (e *Engine) Active() int {
	if e.resizeTo >= 0 {
		return e.resizeTo
	}
	return e.active
}

// Switches returns the cumulative number of assignment changes — pauses,
// resumes, permanent leaves, and idle joins — aggregated cohort-wise: the
// engine tracks the exact distribution of the per-phase switch count
// (pause/leave overlaps are resolved with a hypergeometric draw) even
// though it never materializes individual ants.
func (e *Engine) Switches() uint64 { return e.switches }

// Resize schedules a colony-size change to m in [1, N]: ants dying
// (shrink) or hatching back idle (grow), the Section 6 perturbation. The
// change is applied at the next phase open — the only instant the
// aggregate cohorts are well-defined (mid-phase, paused ants are
// indistinguishable from idle ones) — so it takes force at most one
// round after the agent engines would apply it. Dying ants are a uniform
// random subset of the colony (cohort exchangeability), sampled
// multivariate-hypergeometrically over the task and idle cohorts.
func (e *Engine) Resize(m int) {
	if m < 1 || m > e.cfg.N {
		panic(fmt.Sprintf("meanfield: Resize to %d outside [1, %d]", m, e.cfg.N))
	}
	e.resizeTo = m
}

// applyPendingResize realizes a scheduled Resize at a phase boundary.
func (e *Engine) applyPendingResize() {
	m := e.resizeTo
	e.resizeTo = -1
	if m == e.active {
		return
	}
	if m < e.active {
		// Kill a uniform subset of active - m ants: sequential
		// conditional hypergeometric over the task cohorts; leftover
		// kills land on the idle cohort (derived, no bookkeeping).
		kills := e.active - m
		pop := e.active
		for j := 0; j < e.k && kills > 0; j++ {
			kj := dist.Hypergeometric(e.r, pop, e.loads[j], kills)
			pop -= e.loads[j]
			e.loads[j] -= kj
			kills -= kj
		}
	}
	// Growing needs no cohort work: hatched ants enter idle with cleared
	// memory, exactly the state the aggregate idle cohort models.
	e.active = m
}

// lackProbs fills dst with the per-ant Lack probability of every task for
// round t given the current loads.
func (e *Engine) lackProbs(t uint64, dem demand.Vector, dst []float64) {
	for j := 0; j < e.k; j++ {
		e.defs[j] = float64(dem[j] - e.loads[j])
	}
	e.cfg.Model.Describe(noise.Env{Round: t, Deficit: e.defs, Demand: dem}, e.fbDesc)
	for j, d := range e.fbDesc {
		if d.Deterministic {
			if d.Value == noise.Lack {
				dst[j] = 1
			} else {
				dst[j] = 0
			}
		} else {
			dst[j] = d.LackProb
		}
	}
}

// Step advances one round (half of an Algorithm Ant phase).
func (e *Engine) Step() {
	t := e.round + 1
	dem := e.cfg.Schedule.At(t)
	if t%2 == 1 {
		// Phase boundary: realize any scheduled Resize while the cohorts
		// are clean (no outstanding pauses), then open the phase: record
		// the phase-start cohort sizes and sample probabilities, and
		// thin the workforce.
		if e.resizeTo >= 0 {
			e.applyPendingResize()
		}
		copy(e.phaseW, e.loads)
		e.idle = e.Idle()
		e.lackProbs(t, dem, e.p1)
		for j := 0; j < e.k; j++ {
			paused := dist.Binomial(e.r, e.phaseW[j], e.cfg.Params.Cs*e.cfg.Params.Gamma)
			e.loads[j] = e.phaseW[j] - paused
			e.switches += uint64(paused) // working → idle (temporary)
		}
		e.round = t
		return
	}

	// Phase close.
	e.lackProbs(t, dem, e.p2)
	p := e.cfg.Params

	// Permanent leaves from each phase-start cohort. The leave coin is
	// independent of the pause coin, so among the left leavers the
	// already-paused ones (who change nothing at close: idle → idle) are
	// a hypergeometric overlap; the rest of the paused cohort resumes
	// (idle → task) and the unpaused leavers drop out (task → idle).
	for j := 0; j < e.k; j++ {
		q := (1 - e.p1[j]) * (1 - e.p2[j]) * p.Gamma / p.Cd
		left := dist.Binomial(e.r, e.phaseW[j], q)
		paused := e.phaseW[j] - e.loads[j]
		overlap := dist.Hypergeometric(e.r, e.phaseW[j], paused, left)
		e.switches += uint64(paused-overlap) + uint64(left-overlap)
		e.loads[j] = e.phaseW[j] - left
	}

	// Idle joins (each join is one idle → task switch).
	if e.idle > 0 {
		stayed := e.idle
		if e.subsetW != nil {
			e.joinsEnumerated()
			stayed = e.subsetC[0]
		} else {
			stayed = e.joinsPerAnt()
		}
		e.switches += uint64(e.idle - stayed)
	}
	e.idle = 0 // recomputed at the next phase open
	e.round = t
}

// joinsEnumerated distributes the idle cohort over the 2^k success
// subsets with one multinomial, then splits each subset uniformly.
func (e *Engine) joinsEnumerated() {
	k := e.k
	// Subset probability via the standard product expansion.
	e.subsetW[0] = 1
	size := 1
	for j := 0; j < k; j++ {
		u := e.p1[j] * e.p2[j]
		for s := 0; s < size; s++ {
			w := e.subsetW[s]
			e.subsetW[s] = w * (1 - u)
			e.subsetW[s|1<<j] = w * u
		}
		size <<= 1
	}
	dist.Multinomial(e.r, e.idle, e.subsetW, e.subsetC)
	for s := 1; s < 1<<k; s++ {
		c := e.subsetC[s]
		if c == 0 {
			continue
		}
		// Uniform split of c ants over the tasks in subset s.
		members := 0
		for j := 0; j < k; j++ {
			if s&(1<<j) != 0 {
				e.taskW[members] = 1
				e.taskC[members] = 0
				members++
			}
		}
		dist.Multinomial(e.r, c, e.taskW[:members], e.taskC[:members])
		idx := 0
		for j := 0; j < k; j++ {
			if s&(1<<j) != 0 {
				e.loads[j] += e.taskC[idx]
				idx++
			}
		}
	}
}

// joinsPerAnt is the fallback for large k: idle ants are sampled
// individually (workers are still aggregated). It returns the number of
// idle ants that stayed idle.
func (e *Engine) joinsPerAnt() int {
	stayed := 0
	for i := 0; i < e.idle; i++ {
		count := 0
		choice := -1
		for j := 0; j < e.k; j++ {
			if e.r.Bernoulli(e.p1[j] * e.p2[j]) {
				count++
				if e.r.Intn(count) == 0 {
					choice = j
				}
			}
		}
		if choice >= 0 {
			e.loads[choice]++
		} else {
			stayed++
		}
	}
	return stayed
}

// Run advances the engine by rounds rounds, invoking obs after each.
func (e *Engine) Run(rounds int, obs Observer) {
	for i := 0; i < rounds; i++ {
		e.Step()
		if obs != nil {
			obs(e.round, e.loads, e.cfg.Schedule.At(e.round))
		}
	}
}
