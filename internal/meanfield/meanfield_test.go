package meanfield

import (
	"math"
	"testing"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
)

func baseConfig(n int, dem demand.Vector) Config {
	return Config{
		N:        n,
		Schedule: demand.Static{V: dem},
		Model:    noise.SigmoidModel{Lambda: 3.5},
		Params:   agent.DefaultParams(0.05),
		Seed:     1,
	}
}

func TestConfigValidation(t *testing.T) {
	dem := demand.Vector{50}
	cases := []func(Config) Config{
		func(c Config) Config { c.N = 0; return c },
		func(c Config) Config { c.Schedule = nil; return c },
		func(c Config) Config { c.Model = nil; return c },
		func(c Config) Config { c.Params.Gamma = 0; return c },
		func(c Config) Config { c.InitLoads = []int{1, 2}; return c },
		func(c Config) Config { c.InitLoads = []int{-1}; return c },
		func(c Config) Config { c.InitLoads = []int{1000}; return c },
	}
	for i, mutate := range cases {
		if _, err := New(mutate(baseConfig(100, dem))); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := New(baseConfig(100, dem)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestLoadConservation(t *testing.T) {
	dem := demand.Vector{100, 150}
	cfg := baseConfig(1000, dem)
	cfg.InitLoads = []int{500, 200}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		e.Step()
		working := 0
		for _, w := range e.Loads() {
			if w < 0 {
				t.Fatalf("negative load at round %d", e.Round())
			}
			working += w
		}
		if working > 1000 {
			t.Fatalf("round %d: %d workers > 1000 ants", e.Round(), working)
		}
		if e.Idle() != 1000-working {
			t.Fatal("Idle inconsistent")
		}
	}
}

func TestConvergesFromEmpty(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	cfg := baseConfig(n, dem)
	cfg.Params = agent.DefaultParams(agent.MaxGamma)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(2, agent.MaxGamma, agent.DefaultCs, 1000)
	e.Run(5000, Observer(rec.Observer()))
	if rec.AvgRegret() > float64(dem.Sum())/4 {
		t.Fatalf("avg regret %v; mean-field engine failed to converge", rec.AvgRegret())
	}
}

// TestCrossValidationAgainstAgentEngine: the two engines simulate the
// same stochastic process; their long-run average regret must agree.
func TestCrossValidationAgainstAgentEngine(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	model := noise.SigmoidModel{Lambda: 3.5}
	params := agent.DefaultParams(agent.MaxGamma)
	const rounds, burn = 6000, 2000

	mfAvg := func(seed uint64) float64 {
		cfg := baseConfig(n, dem)
		cfg.Model = model
		cfg.Params = params
		cfg.Seed = seed
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(2, params.Gamma, params.Cs, burn)
		e.Run(rounds, Observer(rec.Observer()))
		return rec.AvgRegret()
	}
	agAvg := func(seed uint64) float64 {
		e, err := colony.New(colony.Config{
			N:        n,
			Schedule: demand.Static{V: dem},
			Model:    model,
			Factory:  agent.AntFactory(2, params),
			Seed:     seed,
			Shards:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(2, params.Gamma, params.Cs, burn)
		e.Run(rounds, rec.Observer())
		return rec.AvgRegret()
	}

	mf := (mfAvg(1) + mfAvg(2) + mfAvg(3)) / 3
	ag := (agAvg(4) + agAvg(5) + agAvg(6)) / 3
	if math.Abs(mf-ag) > 0.35*math.Max(mf, ag) {
		t.Fatalf("engines disagree: mean-field %v vs agent %v", mf, ag)
	}
}

// TestEnumerationMatchesPerAntFallback: forcing the per-ant join path
// must not change the dynamics statistically.
func TestEnumerationMatchesPerAntFallback(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	run := func(maxEnum int, seed uint64) float64 {
		cfg := baseConfig(n, dem)
		cfg.Params = agent.DefaultParams(agent.MaxGamma)
		cfg.MaxEnumTasks = maxEnum
		cfg.Seed = seed
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(2, agent.MaxGamma, agent.DefaultCs, 2000)
		e.Run(6000, Observer(rec.Observer()))
		return rec.AvgRegret()
	}
	enum := (run(10, 1) + run(10, 2)) / 2
	perAnt := (run(1, 3) + run(1, 4)) / 2 // k=2 > 1 forces the fallback
	if math.Abs(enum-perAnt) > 0.35*math.Max(enum, perAnt) {
		t.Fatalf("join paths disagree: enum %v vs per-ant %v", enum, perAnt)
	}
}

func TestDeterminism(t *testing.T) {
	dem := demand.Vector{100, 100}
	run := func() []int {
		cfg := baseConfig(500, dem)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var series []int
		e.Run(200, func(_ uint64, loads []int, d demand.Vector) {
			series = append(series, metrics.Regret(loads, d))
		})
		return series
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at round %d", i)
		}
	}
}

func TestPerfectModelDeterministicDescriptors(t *testing.T) {
	dem := demand.Vector{100}
	cfg := baseConfig(400, dem)
	cfg.Model = noise.PerfectModel{}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(1, 0.05, agent.DefaultCs, 1500)
	e.Run(4000, Observer(rec.Observer()))
	if rec.AvgRegret() > float64(dem[0])/4 {
		t.Fatalf("perfect-feedback mean-field regret %v", rec.AvgRegret())
	}
}

func TestInitLoadsRespected(t *testing.T) {
	dem := demand.Vector{50, 50}
	cfg := baseConfig(300, dem)
	cfg.InitLoads = []int{120, 30}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Loads()[0] != 120 || e.Loads()[1] != 30 || e.Idle() != 150 {
		t.Fatalf("initial state loads=%v idle=%d", e.Loads(), e.Idle())
	}
}

// TestSwitchesCrossValidation: the aggregate switch count must match the
// agent engine's per-ant count statistically (same workload, per-round
// rate within a tolerance), since both realize the same process.
func TestSwitchesCrossValidation(t *testing.T) {
	n := 2000
	dem := demand.Vector{300, 500}
	model := noise.SigmoidModel{Lambda: 3.5}
	params := agent.DefaultParams(agent.MaxGamma)
	const rounds = 4000

	mfRate := func(seed uint64) float64 {
		cfg := baseConfig(n, dem)
		cfg.Model = model
		cfg.Params = params
		cfg.Seed = seed
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(rounds, nil)
		return float64(e.Switches()) / rounds
	}
	agRate := func(seed uint64) float64 {
		e, err := colony.New(colony.Config{
			N:        n,
			Schedule: demand.Static{V: dem},
			Model:    model,
			Factory:  agent.AntFactory(2, params),
			Seed:     seed,
			Shards:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(rounds, nil)
		return float64(e.Switches()) / rounds
	}

	mf := (mfRate(1) + mfRate(2) + mfRate(3)) / 3
	ag := (agRate(4) + agRate(5) + agRate(6)) / 3
	if mf <= 0 {
		t.Fatal("mean-field engine tracked no switches")
	}
	if math.Abs(mf-ag) > 0.2*math.Max(mf, ag) {
		t.Fatalf("switch rates disagree: mean-field %v vs agent %v", mf, ag)
	}
}

// TestResizeShrinkGrow: Resize must land at the next phase boundary,
// conserve cohort totals, kill proportionally (statistically), and let
// the colony re-converge after a regrow — the S4 workload at mean-field
// scale.
func TestResizeShrinkGrow(t *testing.T) {
	n := 4000
	dem := demand.Vector{400, 600}
	cfg := baseConfig(n, dem)
	cfg.Params = agent.DefaultParams(agent.MaxGamma)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3000, nil)
	before := 0
	for _, w := range e.Loads() {
		before += w
	}
	if before == 0 {
		t.Fatal("colony never filled")
	}

	// Shrink to half mid-phase: commanded size reported immediately,
	// cohorts adjusted at the next phase open.
	e.Resize(n / 2)
	if e.Active() != n/2 {
		t.Fatalf("Active() = %d after Resize(%d)", e.Active(), n/2)
	}
	e.Step() // phase boundary realizes the kill
	working := 0
	for _, w := range e.Loads() {
		if w < 0 {
			t.Fatal("negative load after shrink")
		}
		working += w
	}
	if working > n/2 {
		t.Fatalf("%d workers exceed active %d after shrink", working, n/2)
	}
	// A uniform kill of half the colony halves the workforce: allow a
	// generous stochastic band.
	if working < before/4 || working > before*3/4+100 {
		t.Fatalf("shrink killed non-uniformly: %d workers from %d", working, before)
	}
	e.Run(2000, nil)

	// Regrow: hatched ants re-enter idle, then refill the demands.
	e.Resize(n)
	rec := metrics.NewRecorder(2, agent.MaxGamma, agent.DefaultCs, 2000)
	e.Run(4000, Observer(rec.Observer()))
	if e.Active() != n {
		t.Fatalf("Active() = %d after regrow", e.Active())
	}
	if rec.AvgRegret() > 5*agent.MaxGamma*float64(dem.Sum())+3 {
		t.Fatalf("no re-convergence after regrow: avg regret %v", rec.AvgRegret())
	}

	// Out-of-range targets panic like the agent engines.
	for _, bad := range []int{0, n + 1, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Resize(%d) did not panic", bad)
				}
			}()
			e.Resize(bad)
		}()
	}
}
