// Package agent implements the paper's ant automata: Algorithm Ant
// (Theorem 3.1), Algorithm Precise Sigmoid (Theorem 3.2), Algorithm
// Precise Adversarial (Theorem 3.6), and the trivial algorithm of
// Appendix D. Every agent is a constant-memory state machine driven only
// by the binary per-task feedback it receives each round; agents never
// observe loads, demands, or other ants.
//
// The simulation engines (package colony, package meanfield) construct n
// agents from a Factory, feed them one Feedback per round, and count the
// resulting assignments.
package agent

import (
	"fmt"
	"math"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Idle is the assignment of an ant that works on no task.
const Idle int32 = -1

// FeedbackStreamVersion documents the feedback RNG draw sequence the
// built-in automata consume, so trajectory-pinning artifacts (the golden
// scenario corpus, recorded experiment tables) can name the stream they
// were generated under.
//
// v1: every Precise Sigmoid ant sampled all k tasks each round, wasting
// k−1 draws per working ant (a working ant only ever consults its own
// task's counters).
//
// v2 (current): a working Precise Sigmoid ant samples only its own task
// — one feedback draw per working ant per round — while idle ants still
// sample the full vector (any task may be joined). Algorithm Ant and
// Precise Adversarial already drew this way. Precise Sigmoid
// trajectories with k > 1 therefore differ from v1 at the same seed;
// every other algorithm, and every k = 1 run, is unchanged. The batch
// and interface paths moved together, so they remain bit-identical
// (the colony equivalence matrix enforces it), and the stream tests in
// this package and internal/colony pin v2.
const FeedbackStreamVersion = 2

// Feedback exposes one round's feedback to an agent. Signals are sampled
// lazily so that a working ant that only inspects its own task costs one
// RNG draw instead of k.
//
// For a Bernoulli (sigmoid) model, repeated Sample calls for the same task
// would draw fresh coins; agents must sample each task at most once per
// round, which all implementations in this package do.
type Feedback struct {
	desc []noise.TaskFeedback
	r    *rng.Rng
}

// NewFeedback wraps the per-task descriptors and the sampling stream for
// one ant-round.
func NewFeedback(desc []noise.TaskFeedback, r *rng.Rng) Feedback {
	return Feedback{desc: desc, r: r}
}

// Tasks returns the number of tasks.
func (f *Feedback) Tasks() int { return len(f.desc) }

// Sample returns this ant's signal for task j.
func (f *Feedback) Sample(j int) noise.Signal {
	d := &f.desc[j]
	if d.Deterministic {
		return d.Value
	}
	if f.r.Bernoulli(d.LackProb) {
		return noise.Lack
	}
	return noise.Overload
}

// Agent is one ant's decision automaton. Implementations keep only
// constant memory (up to O(k) signal registers, as the paper permits) and
// derive their position within a phase from the global round number t,
// reflecting the paper's full-synchronization assumption.
type Agent interface {
	// Step consumes the feedback for round t (t >= 1) and returns the
	// ant's assignment for round t: a task index or Idle. r is the
	// ant's random stream, also used by fb's lazy sampling.
	Step(t uint64, fb *Feedback, r *rng.Rng) int32
	// Assignment returns the assignment chosen by the last Step (or the
	// initial assignment before any Step).
	Assignment() int32
	// Reset re-initializes the automaton: assignment a, cleared memory.
	Reset(a int32)
	// MemoryBits reports the automaton's state-memory footprint in bits
	// (excluding the shared global clock), for the Theorem 3.3 tables.
	MemoryBits() int
	// PhaseLen returns the synchronous phase length in rounds.
	PhaseLen() int
}

// Factory builds identical agents for a colony.
type Factory struct {
	// Name identifies the algorithm in reports.
	Name string
	// New constructs a fresh agent with cleared state and Idle assignment.
	New func() Agent
	// NewBatch, if non-nil, builds a struct-of-arrays population
	// equivalent to n calls of New (same automaton, same RNG draw
	// sequence). Engines prefer it over New because batch stepping
	// avoids per-ant interface dispatch; leave it nil for custom agents
	// and the engines fall back to the Agent path.
	NewBatch func(n int) Batch
}

// Params collects the tunable constants shared by the paper's algorithms.
type Params struct {
	// Gamma is the learning rate γ. Theorems 3.1/3.2/3.6 require
	// γ ∈ [γ*, 1/16]; sub-critical values are permitted by Validate only
	// through NewHugger (the Theorem 3.3 lower-bound witness).
	Gamma float64
	// Cs scales the temporary drop-out probability cs·γ. The paper's
	// pseudocode prints "cs ← 213"; the analysis pins cs to
	// [20/9 + 2/(cd−1), 1/(2γ)] (see DESIGN.md), so the default is 2.4.
	Cs float64
	// Cd scales the permanent leave probability γ/cd. Default 19.
	Cd float64
	// Epsilon is the precision parameter ε of the Precise algorithms.
	Epsilon float64
	// CChi is the median-amplification constant c_χ of Algorithm Precise
	// Sigmoid. Default 10.
	CChi float64
}

// Default constants from the paper (cs resolved per DESIGN.md).
const (
	DefaultCs   = 2.4
	DefaultCd   = 19
	DefaultCChi = 10
	// MaxGamma is the largest learning rate the analysis supports.
	MaxGamma = 1.0 / 16
)

// DefaultParams returns the paper's constants with the given learning
// rate and no precision parameter.
func DefaultParams(gamma float64) Params {
	return Params{Gamma: gamma, Cs: DefaultCs, Cd: DefaultCd, CChi: DefaultCChi}
}

// DefaultPreciseParams returns the paper's constants with the given
// learning rate and precision.
func DefaultPreciseParams(gamma, epsilon float64) Params {
	p := DefaultParams(gamma)
	p.Epsilon = epsilon
	return p
}

// Validate checks the parameter ranges required by the theorems.
// needEpsilon should be true for the Precise algorithms.
func (p Params) Validate(needEpsilon bool) error {
	if p.Gamma <= 0 || p.Gamma > MaxGamma {
		return fmt.Errorf("agent: gamma %v outside (0, 1/16]", p.Gamma)
	}
	if p.Cs <= 0 || p.Cd <= 0 {
		return fmt.Errorf("agent: non-positive constants cs=%v cd=%v", p.Cs, p.Cd)
	}
	if p.Cs*p.Gamma >= 1 {
		return fmt.Errorf("agent: cs*gamma = %v >= 1", p.Cs*p.Gamma)
	}
	if needEpsilon {
		if p.Epsilon <= 0 || p.Epsilon >= 1 {
			return fmt.Errorf("agent: epsilon %v outside (0, 1)", p.Epsilon)
		}
		if p.CChi <= 0 {
			return fmt.Errorf("agent: non-positive cChi %v", p.CChi)
		}
	}
	return nil
}

// bitsFor returns ceil(log2(values)) for values >= 1.
func bitsFor(values int) int {
	if values <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(values))))
}
