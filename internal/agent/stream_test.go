package agent

import (
	"testing"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// drawsConsumed steps one automaton at round t against probabilistic
// descriptors and returns how many RNG words it consumed, by comparing
// the stream state against a reference clone advanced draw by draw.
func drawsConsumed(t *testing.T, a Agent, round uint64, k int) int {
	t.Helper()
	desc := make([]noise.TaskFeedback, k)
	for j := range desc {
		desc[j] = noise.Bern(0.4)
	}
	r := rng.New(97)
	ref := rng.New(97)
	fb := NewFeedback(desc, r)
	a.Step(round, &fb, r)
	for n := 0; n <= 4*k+4; n++ {
		if *r == *ref {
			return n
		}
		ref.Uint64()
	}
	t.Fatalf("stream advanced by more than %d draws", 4*k+4)
	return -1
}

// TestFeedbackStreamVersion pins the documented stream version: bumping
// the draw sequence again requires bumping the constant (and
// regenerating the golden corpus), which this test makes explicit.
func TestFeedbackStreamVersion(t *testing.T) {
	if FeedbackStreamVersion != 2 {
		t.Fatalf("FeedbackStreamVersion = %d; the draw-sequence tests below pin v2",
			FeedbackStreamVersion)
	}
}

// TestPreciseSigmoidOneDrawPerWorkingAnt is the stream-v2 contract: in
// a sampling round, a working Precise Sigmoid ant consumes exactly one
// feedback draw (its own task) while an idle ant consumes k.
func TestPreciseSigmoidOneDrawPerWorkingAnt(t *testing.T) {
	const k = 4
	p := DefaultPreciseParams(0.05, 0.5)
	// Round 2 is a first-half-phase sampling round (rr = 2 ∈ [1, m], no
	// pause or join coins); round m+1 opens the second half-phase.
	m := NewPreciseSigmoid(k, p).HalfPhase()
	for _, round := range []uint64{2, uint64(m) + 1} {
		working := NewPreciseSigmoid(k, p)
		working.Reset(1)
		if got := drawsConsumed(t, working, round, k); got != 1 {
			t.Fatalf("round %d: working ant consumed %d draws, want 1", round, got)
		}
		idle := NewPreciseSigmoid(k, p)
		idle.Reset(Idle)
		if got := drawsConsumed(t, idle, round, k); got != k {
			t.Fatalf("round %d: idle ant consumed %d draws, want %d", round, got, k)
		}
	}
}

// TestAntDrawCountsUnchanged guards the already-lean algorithms against
// accidental stream drift: a working Algorithm Ant ant consumes its own
// sample plus the pause coin in odd rounds; an idle one samples all k.
func TestAntDrawCountsUnchanged(t *testing.T) {
	const k = 3
	p := DefaultParams(0.05)
	working := NewAnt(k, p)
	working.Reset(0)
	if got := drawsConsumed(t, working, 1, k); got != 2 {
		t.Fatalf("working ant consumed %d draws, want 2 (sample + pause coin)", got)
	}
	idle := NewAnt(k, p)
	idle.Reset(Idle)
	if got := drawsConsumed(t, idle, 1, k); got != k {
		t.Fatalf("idle ant consumed %d draws, want %d", got, k)
	}
}
