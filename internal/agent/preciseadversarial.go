package agent

import (
	"fmt"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// PreciseAdversarial implements Algorithm Precise Adversarial
// (Appendix C, Theorem 3.6).
//
// Each phase has two sub-phases. During the first (r1 = ⌈32/ε⌉ rounds)
// working ants drain gradually — each still-working ant pauses with
// probability ε·γ/32 per round — producing a sequence of samples spaced
// about ε·γ/32 apart in load. Each ant remembers the assignment it held
// in the round its own task's feedback first read Lack (round r_min):
// at that moment the deficit crossed zero, so that assignment level is
// the ant's best estimate of the correct workforce. Throughout the
// second sub-phase (r2 = 4·r1 rounds) the ant holds that assignment,
// keeping the load within ~ε·γ·d of the demand for 4/5 of the phase. At
// the phase end every surviving worker resumes its task; a worker whose
// samples were ALL Overload leaves permanently with probability ε·γ/32,
// and an idle ant joins a task whose samples were ALL Lack.
//
// Two ambiguities in the paper's pseudocode are resolved toward its own
// proof sketch (both recorded in DESIGN.md):
//
//  1. The draining is cumulative (a paused ant stays paused until the
//     sub-phase decision): re-applying the per-round "idle w.p. εγ/32"
//     independently would keep the load static at W(1−εγ/32) instead of
//     sweeping it downward, contradicting the stated "samples spaced
//     roughly εγ/32 apart".
//  2. At the phase close of an all-Overload phase, ants that drained away
//     during the phase stay out permanently (and surviving workers
//     additionally leave w.p. εγ/32 as written). The literal text would
//     resume every drained ant, making the per-phase reduction εγ/32 and
//     the drain from an overload take Θ(32/(εγ)) phases — contradicting
//     the proof sketch's "the number of ants reduces by a factor of
//     roughly γ" per phase, which is exactly what the cumulative drain
//     fraction (32/ε)·(εγ/32) = γ delivers.
type PreciseAdversarial struct {
	p      Params
	k      int
	r1, r2 int
	cur    int32
	assign int32
	// allLack[j] is true while every sample of task j this phase read
	// Lack; allOver is the same for Overload on the ant's own task.
	allLack []bool
	allOver bool
	// captured records whether r_min has been seen; capturedIdle is the
	// assignment held at that round (true = paused).
	captured     bool
	capturedIdle bool
}

// NewPreciseAdversarial returns an Algorithm Precise Adversarial
// automaton for k tasks. It panics on invalid parameters.
func NewPreciseAdversarial(k int, p Params) *PreciseAdversarial {
	if err := p.Validate(true); err != nil {
		panic(err)
	}
	if k <= 0 {
		panic("agent: NewPreciseAdversarial needs k >= 1")
	}
	r1 := int(32 / p.Epsilon)
	if float64(r1) < 32/p.Epsilon {
		r1++ // ceil
	}
	return &PreciseAdversarial{
		p: p, k: k, r1: r1, r2: 4 * r1,
		cur: Idle, assign: Idle,
		allLack: make([]bool, k),
	}
}

// Step implements Agent with r = t mod (r1+r2); r = 1 opens a phase,
// r = 0 closes it.
func (a *PreciseAdversarial) Step(t uint64, fb *Feedback, r *rng.Rng) int32 {
	cycle := uint64(a.r1 + a.r2)
	rr := t % cycle

	if rr == 1 {
		a.cur = a.assign
		for j := range a.allLack {
			a.allLack[j] = true
		}
		a.allOver = true
		a.captured = false
		a.capturedIdle = false
	}

	// Sample. Idle ants track every task (they may join any of them at
	// the phase end); workers only consult their own task.
	var own noise.Signal
	if a.cur == Idle {
		for j := 0; j < a.k; j++ {
			if fb.Sample(j) == noise.Lack {
				a.allOver = false
			} else {
				a.allLack[j] = false
			}
		}
	} else {
		own = fb.Sample(int(a.cur))
		if own == noise.Lack {
			a.allOver = false
		} else {
			a.allLack[a.cur] = false
		}
	}

	switch {
	case rr >= 1 && rr < uint64(a.r1):
		if a.cur != Idle {
			// Gradual drain: still-working ants pause w.p. εγ/32.
			if rr >= 2 && a.assign != Idle && r.Bernoulli(a.p.Epsilon*a.p.Gamma/32) {
				a.assign = Idle
			}
			// Capture the assignment held when the own-task feedback
			// first flips to Lack (round r_min of the pseudocode).
			if !a.captured && own == noise.Lack {
				a.captured = true
				a.capturedIdle = a.assign == Idle
			}
		}
		return a.assign

	case rr == uint64(a.r1):
		if a.cur != Idle {
			if !a.captured {
				// r_min = r1: the feedback never flipped; hold the
				// drained state through the second sub-phase.
				a.captured = true
				a.capturedIdle = a.assign == Idle
			}
			if a.capturedIdle {
				a.assign = Idle
			} else {
				a.assign = a.cur
			}
		}
		return a.assign

	case rr != 0: // second sub-phase interior: hold the r_min assignment
		return a.assign

	default: // rr == 0: phase close
		if a.cur == Idle {
			count := 0
			choice := Idle
			for j := 0; j < a.k; j++ {
				if a.allLack[j] {
					count++
					if r.Intn(count) == 0 {
						choice = int32(j)
					}
				}
			}
			a.assign = choice
			return a.assign
		}
		if a.allOver {
			// All samples read Overload: the phase's drain becomes
			// permanent — ants that paused stay out (the γ-factor
			// reduction of the Appendix C proof sketch), and surviving
			// workers leave w.p. εγ/32 per the pseudocode.
			if a.assign != Idle {
				if r.Bernoulli(a.p.Epsilon * a.p.Gamma / 32) {
					a.assign = Idle
				} else {
					a.assign = a.cur
				}
			}
		} else {
			a.assign = a.cur // resume for the next phase
		}
		return a.assign
	}
}

// Assignment implements Agent.
func (a *PreciseAdversarial) Assignment() int32 { return a.assign }

// Reset implements Agent.
func (a *PreciseAdversarial) Reset(assign int32) {
	a.assign = assign
	a.cur = assign
	for j := range a.allLack {
		a.allLack[j] = false
	}
	a.allOver = false
	a.captured = false
	a.capturedIdle = false
}

// MemoryBits implements Agent: current task, k all-Lack bits, the
// all-Overload bit, and the two capture bits. Phase position comes from
// the shared clock.
func (a *PreciseAdversarial) MemoryBits() int { return bitsFor(a.k+1) + a.k + 3 }

// PhaseLen implements Agent.
func (a *PreciseAdversarial) PhaseLen() int { return a.r1 + a.r2 }

// SubPhases returns (r1, r2).
func (a *PreciseAdversarial) SubPhases() (int, int) { return a.r1, a.r2 }

// PreciseAdversarialFactory returns a Factory producing Algorithm Precise
// Adversarial agents.
func PreciseAdversarialFactory(k int, p Params) Factory {
	if err := p.Validate(true); err != nil {
		panic(err)
	}
	return Factory{
		Name:     fmt.Sprintf("precise-adversarial(γ=%.4g, ε=%.4g)", p.Gamma, p.Epsilon),
		New:      func() Agent { return NewPreciseAdversarial(k, p) },
		NewBatch: func(n int) Batch { return newPreciseAdversarialBatch(n, k, p) },
	}
}
