package agent

import (
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// trivialBatch is the struct-of-arrays form of the Appendix D trivial
// algorithm: the only per-ant state is the assignment.
type trivialBatch struct {
	k      int
	assign []int32
}

func newTrivialBatch(n, k int) *trivialBatch {
	if k <= 0 {
		panic("agent: newTrivialBatch needs k >= 1")
	}
	b := &trivialBatch{k: k, assign: make([]int32, n)}
	for i := range b.assign {
		b.assign[i] = Idle
	}
	return b
}

// StepRange implements Batch, mirroring Trivial.Step.
func (b *trivialBatch) StepRange(_ uint64, lo, hi int, fb []BatchTaskFeedback, r *rng.Rng, counts []int) uint64 {
	k := b.k
	var switches uint64
	for i := lo; i < hi; i++ {
		old := b.assign[i]
		if old == Idle {
			count := 0
			choice := Idle
			for j := 0; j < k; j++ {
				if fb[j].Sample(r) == noise.Lack {
					count++
					if r.Intn(count) == 0 {
						choice = int32(j)
					}
				}
			}
			b.assign[i] = choice
		} else if fb[old].Sample(r) == noise.Overload {
			b.assign[i] = Idle
		}
		a := b.assign[i]
		counts[a+1]++
		if a != old {
			switches++
		}
	}
	return switches
}

// Assignment implements Batch.
func (b *trivialBatch) Assignment(i int) int32 { return b.assign[i] }

// Reset implements Batch.
func (b *trivialBatch) Reset(i int, a int32) { b.assign[i] = a }
