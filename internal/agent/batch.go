package agent

import (
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// BatchTaskFeedback is one task's feedback description compiled for the
// batch hot loop: the Bernoulli Lack probability is pre-converted to a
// 53-bit integer cutoff (see rng.Cutoff), so sampling is a single raw-word
// compare instead of an int→float conversion and a float compare. The
// compilation preserves Bernoulli's clamping semantics — probabilities
// ≤ 0 or ≥ 1 become deterministic descriptors that consume no draw — so a
// batch sample consumes exactly the same RNG draws as Feedback.Sample and
// returns the identical signal.
type BatchTaskFeedback struct {
	Det   bool
	Value noise.Signal
	Cut   uint64
}

// Sample returns one ant's signal for this task, consuming one RNG draw
// iff the descriptor is probabilistic.
func (f *BatchTaskFeedback) Sample(r *rng.Rng) noise.Signal {
	if f.Det {
		return f.Value
	}
	if r.BernoulliCut(f.Cut) {
		return noise.Lack
	}
	return noise.Overload
}

// CompileFeedback translates the model's per-task descriptors into batch
// form. out must have len(desc) entries. It is called once per round by
// the engine and shared read-only by every shard.
func CompileFeedback(desc []noise.TaskFeedback, out []BatchTaskFeedback) {
	for j := range desc {
		d := &desc[j]
		switch {
		case d.Deterministic:
			out[j] = BatchTaskFeedback{Det: true, Value: d.Value}
		case d.LackProb <= 0:
			out[j] = BatchTaskFeedback{Det: true, Value: noise.Overload}
		case d.LackProb >= 1:
			out[j] = BatchTaskFeedback{Det: true, Value: noise.Lack}
		default:
			out[j] = BatchTaskFeedback{Cut: rng.Cutoff(d.LackProb)}
		}
	}
}

// coin is a precompiled Bernoulli draw with Bernoulli's exact semantics:
// det < 0 is always-false (no draw), det > 0 always-true (no draw), and
// det == 0 consumes one raw word and compares it against cut.
type coin struct {
	cut uint64
	det int8
}

func makeCoin(p float64) coin {
	switch {
	case p <= 0:
		return coin{det: -1}
	case p >= 1:
		return coin{det: 1}
	default:
		return coin{cut: rng.Cutoff(p)}
	}
}

func (c coin) flip(r *rng.Rng) bool {
	if c.det != 0 {
		return c.det > 0
	}
	return r.BernoulliCut(c.cut)
}

// Batch is a struct-of-arrays population of n identical automata. All
// per-ant state lives in contiguous typed slices owned by the batch, and
// StepRange advances a whole index range with no interface dispatch, which
// is what makes the colony hot loop cache-friendly and inlinable.
//
// Implementations must be RNG-equivalent to their Agent counterpart: for
// the same stream, stepping ants [lo,hi) in index order must consume
// exactly the draws that calling Agent.Step on each ant in the same order
// would, and produce the same assignments. The colony engine's
// equivalence tests enforce this bit-for-bit.
//
// Distinct index ranges touch disjoint state, so shards may call
// StepRange concurrently as long as their ranges do not overlap and each
// passes its own RNG stream.
type Batch interface {
	// StepRange advances ants [lo,hi) for round t, incrementing
	// counts[a+1] for each ant's new assignment a (index 0 = idle) and
	// returning the number of ants whose assignment changed.
	StepRange(t uint64, lo, hi int, fb []BatchTaskFeedback, r *rng.Rng, counts []int) uint64
	// Assignment returns ant i's current assignment.
	Assignment(i int) int32
	// Reset re-initializes ant i with assignment a and cleared memory.
	Reset(i int, a int32)
}
