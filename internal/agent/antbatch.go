package agent

import (
	"math/bits"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// antBatch is the struct-of-arrays form of Algorithm Ant: the per-ant
// registers of n automata live in contiguous typed slices, and StepRange
// advances a whole index range with no interface dispatch. The decision
// logic and RNG draw sequence mirror Ant.Step exactly (the colony
// equivalence tests hold the two paths bit-identical); the two constant
// Bernoulli coins are precompiled to integer cutoffs, and every draw —
// including the reservoir's bounded Intn — is written out inline against
// a copy of the RNG state, so the xoshiro words never leave registers
// for the whole range.
type antBatch struct {
	k      int
	pause  coin // cs·γ temporary drop-out
	leave  coin // γ/cd permanent leave
	cur    []int32
	assign []int32
	s1     []noise.Signal // ant i's register is s1[i*k : (i+1)*k]
}

func newAntBatch(n, k int, p Params) *antBatch {
	if k <= 0 {
		panic("agent: newAntBatch needs k >= 1")
	}
	b := &antBatch{
		k:      k,
		pause:  makeCoin(p.Cs * p.Gamma),
		leave:  makeCoin(p.Gamma / p.Cd),
		cur:    make([]int32, n),
		assign: make([]int32, n),
		s1:     make([]noise.Signal, n*k),
	}
	for i := 0; i < n; i++ {
		b.Reset(i, Idle)
	}
	return b
}

// StepRange implements Batch.
func (b *antBatch) StepRange(t uint64, lo, hi int, fb []BatchTaskFeedback, r *rng.Rng, counts []int) uint64 {
	k := b.k
	assign, curArr, s1 := b.assign, b.cur, b.s1
	st := *r // xoshiro state lives in registers for the whole range
	var switches uint64

	if t%2 == 1 {
		// First sub-round: record s1, maybe pause. Idle-count increments
		// (the common case) accumulate in a register and land in
		// counts[0] once at the end.
		pause := b.pause
		idles := 0
		base := lo * k
		for i := lo; i < hi; i++ {
			cur := assign[i]
			curArr[i] = cur
			if cur == Idle {
				for j := 0; j < k; j++ {
					f := &fb[j]
					sig := f.Value
					if !f.Det {
						sig = noise.Overload
						if st.Uint64()>>11 < f.Cut {
							sig = noise.Lack
						}
					}
					s1[base+j] = sig
				}
				idles++ // stays idle; no switch
				base += k
				continue
			}
			f := &fb[cur]
			sig := f.Value
			if !f.Det {
				sig = noise.Overload
				if st.Uint64()>>11 < f.Cut {
					sig = noise.Lack
				}
			}
			s1[base+int(cur)] = sig
			base += k
			if pause.det == 0 && st.Uint64()>>11 < pause.cut || pause.det > 0 {
				assign[i] = Idle
				idles++
				switches++
			} else {
				counts[cur+1]++
			}
		}
		counts[0] += idles
		*r = st
		return switches
	}

	// Second sub-round: decide using both samples.
	leave := b.leave
	idles := 0
	base := lo * k
	for i := lo; i < hi; i++ {
		cur := curArr[i]
		if cur == Idle {
			// Reservoir-sample a uniform task among {j : s1=s2=Lack}. An
			// ant with cur == Idle necessarily still has assign == Idle.
			count := uint64(0)
			choice := Idle
			for j := 0; j < k; j++ {
				if s1[base+j] != noise.Lack {
					continue
				}
				f := &fb[j]
				if f.Det {
					if f.Value != noise.Lack {
						continue
					}
				} else if st.Uint64()>>11 >= f.Cut {
					continue
				}
				count++
				// Inline Lemire bounded draw (same draw sequence as
				// rng.Intn, which bits.Mul64 keeps call-free so the RNG
				// state is never forced out of registers).
				x := st.Uint64()
				idx, frac := bits.Mul64(x, count)
				if frac < count {
					thresh := -count % count
					for frac < thresh {
						x = st.Uint64()
						idx, frac = bits.Mul64(x, count)
					}
				}
				if idx == 0 {
					choice = int32(j)
				}
			}
			assign[i] = choice
			base += k
			if choice != Idle {
				counts[choice+1]++
				switches++
			} else {
				idles++
			}
			continue
		}
		old := assign[i]
		f := &fb[cur]
		s2 := f.Value
		if !f.Det {
			s2 = noise.Overload
			if st.Uint64()>>11 < f.Cut {
				s2 = noise.Lack
			}
		}
		if s1[base+int(cur)] == noise.Overload && s2 == noise.Overload &&
			(leave.det == 0 && st.Uint64()>>11 < leave.cut || leave.det > 0) {
			assign[i] = Idle
			idles++
			if old != Idle {
				switches++
			}
		} else {
			assign[i] = cur
			counts[cur+1]++
			if old != cur {
				switches++
			}
		}
		base += k
	}
	counts[0] += idles
	*r = st
	return switches
}

// Assignment implements Batch.
func (b *antBatch) Assignment(i int) int32 { return b.assign[i] }

// Reset implements Batch, mirroring Ant.Reset.
func (b *antBatch) Reset(i int, a int32) {
	b.assign[i] = a
	b.cur[i] = a
	s1 := b.s1[i*b.k : (i+1)*b.k]
	for j := range s1 {
		s1[j] = noise.Lack
	}
}
