package agent

import (
	"math"
	"testing"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// detFb builds a deterministic Feedback where task j reads signals[j].
func detFb(r *rng.Rng, signals ...noise.Signal) Feedback {
	desc := make([]noise.TaskFeedback, len(signals))
	for j, s := range signals {
		desc[j] = noise.Det(s)
	}
	return NewFeedback(desc, r)
}

func TestFeedbackSampleDeterministic(t *testing.T) {
	r := rng.New(1)
	fb := detFb(r, noise.Lack, noise.Overload)
	if fb.Tasks() != 2 {
		t.Fatalf("Tasks = %d", fb.Tasks())
	}
	for i := 0; i < 10; i++ {
		if fb.Sample(0) != noise.Lack || fb.Sample(1) != noise.Overload {
			t.Fatal("deterministic sampling changed value")
		}
	}
}

func TestFeedbackSampleBernoulli(t *testing.T) {
	r := rng.New(2)
	desc := []noise.TaskFeedback{noise.Bern(0.7)}
	fb := NewFeedback(desc, r)
	lacks := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if fb.Sample(0) == noise.Lack {
			lacks++
		}
	}
	got := float64(lacks) / trials
	if math.Abs(got-0.7) > 0.01 {
		t.Fatalf("lack frequency %v, want 0.7", got)
	}
}

func TestParamsValidate(t *testing.T) {
	ok := DefaultParams(0.05)
	if err := ok.Validate(false); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Gamma: 0, Cs: 2.4, Cd: 19},
		{Gamma: 0.2, Cs: 2.4, Cd: 19}, // > 1/16
		{Gamma: 0.05, Cs: 0, Cd: 19},
		{Gamma: 0.05, Cs: 2.4, Cd: 0},
		{Gamma: 0.05, Cs: 30, Cd: 19}, // cs*gamma >= 1
	}
	for i, p := range bad {
		if err := p.Validate(false); err == nil {
			t.Fatalf("bad params %d accepted: %+v", i, p)
		}
	}
	// Epsilon checks only when requested.
	p := DefaultParams(0.05)
	if err := p.Validate(true); err == nil {
		t.Fatal("missing epsilon accepted")
	}
	p.Epsilon = 0.5
	if err := p.Validate(true); err != nil {
		t.Fatalf("valid precise params rejected: %v", err)
	}
	p.Epsilon = 1
	if err := p.Validate(true); err == nil {
		t.Fatal("epsilon = 1 accepted")
	}
	p = DefaultPreciseParams(0.05, 0.5)
	p.CChi = 0
	if err := p.Validate(true); err == nil {
		t.Fatal("cChi = 0 accepted")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for v, want := range cases {
		if got := bitsFor(v); got != want {
			t.Fatalf("bitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

// --- Algorithm Ant -------------------------------------------------------

func TestAntJoinsOnDoubleLack(t *testing.T) {
	r := rng.New(3)
	a := NewAnt(1, DefaultParams(0.05))
	fb := detFb(r, noise.Lack)
	a.Step(1, &fb, r) // s1 = lack, idle stays idle
	if a.Assignment() != Idle {
		t.Fatal("idle ant changed assignment in sub-round 1")
	}
	a.Step(2, &fb, r) // s2 = lack -> join task 0
	if a.Assignment() != 0 {
		t.Fatalf("assignment %d, want 0", a.Assignment())
	}
}

func TestAntStaysIdleOnMixedSamples(t *testing.T) {
	p := DefaultParams(0.05)
	for _, sig := range [][2]noise.Signal{
		{noise.Lack, noise.Overload},
		{noise.Overload, noise.Lack},
		{noise.Overload, noise.Overload},
	} {
		r := rng.New(4)
		a := NewAnt(1, p)
		fb1 := detFb(r, sig[0])
		fb2 := detFb(r, sig[1])
		a.Step(1, &fb1, r)
		a.Step(2, &fb2, r)
		if a.Assignment() != Idle {
			t.Fatalf("idle ant joined on samples %v/%v", sig[0], sig[1])
		}
	}
}

func TestAntJoinUniformAmongLacking(t *testing.T) {
	r := rng.New(5)
	p := DefaultParams(0.05)
	counts := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		a := NewAnt(3, p)
		// Tasks 0 and 2 lack in both samples; task 1 is overloaded.
		fb1 := detFb(r, noise.Lack, noise.Overload, noise.Lack)
		fb2 := detFb(r, noise.Lack, noise.Overload, noise.Lack)
		a.Step(1, &fb1, r)
		a.Step(2, &fb2, r)
		if got := a.Assignment(); got == Idle {
			t.Fatal("ant failed to join with two lacking tasks")
		} else {
			counts[got]++
		}
	}
	if counts[1] != 0 {
		t.Fatalf("ant joined overloaded task %d times", counts[1])
	}
	frac0 := float64(counts[0]) / trials
	if math.Abs(frac0-0.5) > 0.02 {
		t.Fatalf("join split %v, want ~0.5", frac0)
	}
}

func TestAntTemporaryPauseRate(t *testing.T) {
	r := rng.New(6)
	p := DefaultParams(0.05) // cs*gamma = 0.12
	paused := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		a := NewAnt(1, p)
		a.Reset(0) // working on task 0
		fb := detFb(r, noise.Overload)
		if a.Step(1, &fb, r) == Idle {
			paused++
		}
	}
	got := float64(paused) / trials
	want := p.Cs * p.Gamma
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("pause rate %v, want %v", got, want)
	}
}

func TestAntPermanentLeaveRate(t *testing.T) {
	r := rng.New(7)
	p := DefaultParams(0.05)
	left := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		a := NewAnt(1, p)
		a.Reset(0)
		fb := detFb(r, noise.Overload)
		a.Step(1, &fb, r)
		a.Step(2, &fb, r)
		if a.Assignment() == Idle {
			left++
		}
	}
	got := float64(left) / trials
	want := p.Gamma / p.Cd // ~0.00263
	if math.Abs(got-want) > 0.0006 {
		t.Fatalf("leave rate %v, want %v", got, want)
	}
}

func TestAntResumesAfterPause(t *testing.T) {
	// A paused ant whose second sample reads Lack must resume its task:
	// with s1 = overload, s2 = lack the decision is "stay".
	p := DefaultParams(0.0625) // max gamma: cs*gamma = 0.15
	resumed := 0
	const trials = 20000
	r := rng.New(8)
	for i := 0; i < trials; i++ {
		a := NewAnt(1, p)
		a.Reset(0)
		fb1 := detFb(r, noise.Overload)
		fb2 := detFb(r, noise.Lack)
		mid := a.Step(1, &fb1, r)
		a.Step(2, &fb2, r)
		if a.Assignment() != 0 {
			t.Fatalf("ant with mixed samples left permanently (mid=%d)", mid)
		}
		if mid == Idle {
			resumed++
		}
	}
	if resumed == 0 {
		t.Fatal("no ant ever paused; pause path untested")
	}
}

func TestAntNeverLeavesOnDoubleLack(t *testing.T) {
	r := rng.New(9)
	p := DefaultParams(0.05)
	for i := 0; i < 5000; i++ {
		a := NewAnt(2, p)
		a.Reset(1)
		fb := detFb(r, noise.Lack, noise.Lack)
		a.Step(1, &fb, r)
		a.Step(2, &fb, r)
		if a.Assignment() != 1 {
			t.Fatal("working ant left despite double lack")
		}
	}
}

func TestAntResetClearsState(t *testing.T) {
	r := rng.New(10)
	a := NewAnt(2, DefaultParams(0.05))
	fb := detFb(r, noise.Lack, noise.Lack)
	a.Step(1, &fb, r)
	a.Step(2, &fb, r)
	a.Reset(Idle)
	if a.Assignment() != Idle {
		t.Fatal("Reset did not set assignment")
	}
	a.Reset(1)
	if a.Assignment() != 1 {
		t.Fatal("Reset to task failed")
	}
}

func TestAntMeta(t *testing.T) {
	a := NewAnt(4, DefaultParams(0.05))
	if a.PhaseLen() != 2 {
		t.Fatalf("PhaseLen = %d", a.PhaseLen())
	}
	// cur (3 bits for 5 values) + pause flag + 4 signal bits = 8.
	if a.MemoryBits() != 3+1+4 {
		t.Fatalf("MemoryBits = %d", a.MemoryBits())
	}
	f := AntFactory(4, DefaultParams(0.05))
	if f.Name == "" || f.New() == nil {
		t.Fatal("factory broken")
	}
}

func TestAntConstructorPanics(t *testing.T) {
	mustPanic(t, "k=0", func() { NewAnt(0, DefaultParams(0.05)) })
	mustPanic(t, "bad gamma", func() { NewAnt(1, DefaultParams(0.5)) })
	mustPanic(t, "factory bad params", func() { AntFactory(1, DefaultParams(0)) })
}

func TestHuggerAllowsSubCriticalGamma(t *testing.T) {
	p := DefaultParams(0.001) // would be fine for Ant too; check tiny gamma
	h := NewHugger(3, p)
	if h == nil {
		t.Fatal("hugger nil")
	}
	mustPanic(t, "hugger gamma>1/16", func() { NewHugger(1, DefaultParams(0.2)) })
	f := HuggerFactory(3, p)
	if f.New() == nil {
		t.Fatal("hugger factory broken")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// --- Algorithm Precise Sigmoid --------------------------------------------

func TestPreciseSigmoidHalfPhase(t *testing.T) {
	a := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.5))
	// m = ceil(2*10/0.5 + 1) = 41.
	if a.HalfPhase() != 41 {
		t.Fatalf("m = %d, want 41", a.HalfPhase())
	}
	if a.PhaseLen() != 82 {
		t.Fatalf("PhaseLen = %d, want 82", a.PhaseLen())
	}
}

// runPSPhase drives one full 2m-round phase with fixed signals per half.
func runPSPhase(a *PreciseSigmoid, r *rng.Rng, start uint64, first, second noise.Signal) uint64 {
	m := uint64(a.HalfPhase())
	t := start
	for i := uint64(0); i < m; i++ {
		fb := detFb(r, first)
		a.Step(t, &fb, r)
		t++
	}
	for i := uint64(0); i < m; i++ {
		fb := detFb(r, second)
		a.Step(t, &fb, r)
		t++
	}
	return t
}

func TestPreciseSigmoidJoinsOnDoubleLackMedian(t *testing.T) {
	r := rng.New(11)
	a := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.5))
	runPSPhase(a, r, 1, noise.Lack, noise.Lack)
	if a.Assignment() != 0 {
		t.Fatalf("assignment %d, want 0", a.Assignment())
	}
}

func TestPreciseSigmoidStaysOnMixedMedians(t *testing.T) {
	r := rng.New(12)
	a := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.5))
	runPSPhase(a, r, 1, noise.Overload, noise.Lack)
	if a.Assignment() != Idle {
		t.Fatal("idle ant joined on mixed medians")
	}
}

func TestPreciseSigmoidMedianRobustToMinorityNoise(t *testing.T) {
	// Minority of wrong signals must not change the decision.
	r := rng.New(13)
	a := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.5))
	m := a.HalfPhase()
	tt := uint64(1)
	for i := 0; i < m; i++ {
		sig := noise.Lack
		if i < m/3 { // minority overload
			sig = noise.Overload
		}
		fb := detFb(r, sig)
		a.Step(tt, &fb, r)
		tt++
	}
	for i := 0; i < m; i++ {
		sig := noise.Lack
		if i%3 == 0 { // minority overload
			sig = noise.Overload
		}
		fb := detFb(r, sig)
		a.Step(tt, &fb, r)
		tt++
	}
	if a.Assignment() != 0 {
		t.Fatal("median failed to filter minority noise")
	}
}

func TestPreciseSigmoidLeaveRateScaledDown(t *testing.T) {
	r := rng.New(14)
	p := DefaultPreciseParams(0.05, 0.5)
	left := 0
	const trials = 120000
	a := NewPreciseSigmoid(1, p) // reuse one automaton, reset per trial
	for i := 0; i < trials; i++ {
		a.Reset(0)
		runPSPhase(a, r, 1, noise.Overload, noise.Overload)
		if a.Assignment() == Idle {
			left++
		}
	}
	got := float64(left) / trials
	want := p.Gamma / (p.CChi * p.Cd) // ~2.6e-4
	if math.Abs(got-want) > 3e-4 {
		t.Fatalf("leave rate %v, want %v", got, want)
	}
	if left == 0 {
		t.Fatal("no leave ever observed; path untested")
	}
}

func TestPreciseSigmoidPauseAtHalfPhase(t *testing.T) {
	r := rng.New(15)
	p := DefaultPreciseParams(0.0625, 0.9) // pause prob = eps*cs*gamma/cchi = 0.0135
	m := NewPreciseSigmoid(1, p).HalfPhase()
	paused := 0
	const trials = 60000
	for i := 0; i < trials; i++ {
		a := NewPreciseSigmoid(1, p)
		a.Reset(0)
		tt := uint64(1)
		for j := 0; j < m; j++ {
			fb := detFb(r, noise.Overload)
			a.Step(tt, &fb, r)
			tt++
		}
		if a.Assignment() == Idle {
			paused++
		}
	}
	got := float64(paused) / trials
	want := p.Epsilon * p.Cs * p.Gamma / p.CChi
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("pause rate %v, want %v", got, want)
	}
}

func TestPreciseSigmoidMemoryGrowsLogInvEps(t *testing.T) {
	small := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.5))
	tiny := NewPreciseSigmoid(1, DefaultPreciseParams(0.05, 0.05))
	if tiny.MemoryBits() <= small.MemoryBits() {
		t.Fatal("memory should grow as epsilon shrinks")
	}
	// Counter width is log2(m); for a 10x epsilon drop, the growth must
	// be only a few bits per task, not 10x.
	if tiny.MemoryBits() > small.MemoryBits()+16 {
		t.Fatalf("memory grew too fast: %d -> %d", small.MemoryBits(), tiny.MemoryBits())
	}
}

func TestPreciseSigmoidFactoryAndPanics(t *testing.T) {
	f := PreciseSigmoidFactory(2, DefaultPreciseParams(0.05, 0.5))
	if f.New() == nil || f.Name == "" {
		t.Fatal("factory broken")
	}
	mustPanic(t, "no epsilon", func() { NewPreciseSigmoid(1, DefaultParams(0.05)) })
	mustPanic(t, "k=0", func() { NewPreciseSigmoid(0, DefaultPreciseParams(0.05, 0.5)) })
	mustPanic(t, "factory", func() { PreciseSigmoidFactory(1, DefaultParams(0.05)) })
}

// --- Algorithm Precise Adversarial -----------------------------------------

func TestPreciseAdversarialSubPhases(t *testing.T) {
	a := NewPreciseAdversarial(1, DefaultPreciseParams(0.05, 0.5))
	r1, r2 := a.SubPhases()
	if r1 != 64 || r2 != 256 {
		t.Fatalf("(r1, r2) = (%d, %d), want (64, 256)", r1, r2)
	}
	if a.PhaseLen() != 320 {
		t.Fatalf("PhaseLen = %d", a.PhaseLen())
	}
}

// runPAPhase drives one full phase with the own-task signal produced by
// sig(roundInPhase) (1-based within the phase).
func runPAPhase(a *PreciseAdversarial, r *rng.Rng, start uint64, sig func(i int) noise.Signal) uint64 {
	L := a.PhaseLen()
	t := start
	for i := 1; i <= L; i++ {
		fb := detFb(r, sig(i))
		a.Step(t, &fb, r)
		t++
	}
	return t
}

func TestPreciseAdversarialIdleJoinsOnAllLack(t *testing.T) {
	r := rng.New(16)
	a := NewPreciseAdversarial(1, DefaultPreciseParams(0.05, 0.5))
	runPAPhase(a, r, 1, func(int) noise.Signal { return noise.Lack })
	if a.Assignment() != 0 {
		t.Fatalf("assignment %d, want 0", a.Assignment())
	}
}

func TestPreciseAdversarialIdleStaysOnAnyOverload(t *testing.T) {
	r := rng.New(17)
	a := NewPreciseAdversarial(1, DefaultPreciseParams(0.05, 0.5))
	runPAPhase(a, r, 1, func(i int) noise.Signal {
		if i == 100 {
			return noise.Overload
		}
		return noise.Lack
	})
	if a.Assignment() != Idle {
		t.Fatal("idle ant joined despite an Overload sample")
	}
}

func TestPreciseAdversarialWorkerResumesWhenLackAppears(t *testing.T) {
	// Own-task feedback flips to Lack at round 5 while the ant is still
	// working, so the captured state is "working": the ant must hold its
	// task through sub-phase 2 and resume at the phase end.
	r := rng.New(18)
	a := NewPreciseAdversarial(1, DefaultPreciseParams(0.05, 0.5))
	a.Reset(0)
	runPAPhase(a, r, 1, func(i int) noise.Signal {
		if i >= 5 {
			return noise.Lack
		}
		return noise.Overload
	})
	if a.Assignment() != 0 {
		t.Fatalf("assignment %d, want 0", a.Assignment())
	}
}

func TestPreciseAdversarialAllOverloadLeaveRate(t *testing.T) {
	// An all-Overload phase makes the cumulative drain permanent: the
	// per-phase leave probability is 1−(1−εγ/32)^(r1−1) ≈ γ — the
	// "reduces by a factor of roughly γ" of the Appendix C proof sketch
	// (drain coins in rounds [2, r1) plus the phase-close coin).
	r := rng.New(19)
	p := DefaultPreciseParams(0.05, 0.5)
	left := 0
	const trials = 30000
	a := NewPreciseAdversarial(1, p)
	r1, _ := a.SubPhases()
	for i := 0; i < trials; i++ {
		a.Reset(0)
		runPAPhase(a, r, 1, func(int) noise.Signal { return noise.Overload })
		if a.Assignment() == Idle {
			left++
		}
	}
	got := float64(left) / trials
	q := p.Epsilon * p.Gamma / 32
	want := 1 - math.Pow(1-q, float64(r1-1))
	if math.Abs(got-want) > 0.004 {
		t.Fatalf("leave rate %v, want %v ~ γ", got, want)
	}
}

func TestPreciseAdversarialDrainsDuringSubPhase1(t *testing.T) {
	// With all-Overload feedback, a cohort of workers should thin
	// roughly geometrically at rate eps*gamma/32 per round during
	// sub-phase 1 and hold the drained level during sub-phase 2.
	r := rng.New(20)
	p := DefaultPreciseParams(0.0625, 0.9)
	const n = 20000
	ants := make([]*PreciseAdversarial, n)
	for i := range ants {
		ants[i] = NewPreciseAdversarial(1, p)
		ants[i].Reset(0)
	}
	r1, _ := ants[0].SubPhases()
	working := func(t uint64) int {
		count := 0
		for _, a := range ants {
			fb := detFb(r, noise.Overload)
			if a.Step(t, &fb, r) == 0 {
				count++
			}
		}
		return count
	}
	var atEndOfDrain int
	t0 := uint64(1)
	for i := 1; i <= r1; i++ {
		atEndOfDrain = working(t0)
		t0++
	}
	rate := p.Epsilon * p.Gamma / 32
	wantFrac := math.Pow(1-rate, float64(r1-2)) // drain active in rounds [2, r1)
	gotFrac := float64(atEndOfDrain) / n
	if math.Abs(gotFrac-wantFrac) > 0.03 {
		t.Fatalf("drained fraction %v, want ~%v", gotFrac, wantFrac)
	}
	if gotFrac > 0.99 {
		t.Fatal("no draining happened at all")
	}
}

func TestPreciseAdversarialResetAndMeta(t *testing.T) {
	a := NewPreciseAdversarial(3, DefaultPreciseParams(0.05, 0.5))
	a.Reset(2)
	if a.Assignment() != 2 {
		t.Fatal("Reset failed")
	}
	if a.MemoryBits() != bitsFor(4)+3+3 {
		t.Fatalf("MemoryBits = %d", a.MemoryBits())
	}
	f := PreciseAdversarialFactory(3, DefaultPreciseParams(0.05, 0.5))
	if f.New() == nil || f.Name == "" {
		t.Fatal("factory broken")
	}
	mustPanic(t, "k=0", func() { NewPreciseAdversarial(0, DefaultPreciseParams(0.05, 0.5)) })
	mustPanic(t, "no eps", func() { NewPreciseAdversarial(1, DefaultParams(0.05)) })
	mustPanic(t, "factory", func() { PreciseAdversarialFactory(1, DefaultParams(0.05)) })
}

// --- Trivial ---------------------------------------------------------------

func TestTrivialJoinsImmediately(t *testing.T) {
	r := rng.New(21)
	a := NewTrivial(2)
	fb := detFb(r, noise.Overload, noise.Lack)
	a.Step(1, &fb, r)
	if a.Assignment() != 1 {
		t.Fatalf("assignment %d, want 1", a.Assignment())
	}
}

func TestTrivialLeavesOnOverload(t *testing.T) {
	r := rng.New(22)
	a := NewTrivial(2)
	a.Reset(0)
	fb := detFb(r, noise.Overload, noise.Lack)
	a.Step(1, &fb, r)
	if a.Assignment() != Idle {
		t.Fatal("working ant did not leave on Overload")
	}
}

func TestTrivialStaysOnLack(t *testing.T) {
	r := rng.New(23)
	a := NewTrivial(1)
	a.Reset(0)
	for i := uint64(1); i < 20; i++ {
		fb := detFb(r, noise.Lack)
		a.Step(i, &fb, r)
		if a.Assignment() != 0 {
			t.Fatal("working ant left on Lack")
		}
	}
}

func TestTrivialStaysIdleWithoutLack(t *testing.T) {
	r := rng.New(24)
	a := NewTrivial(3)
	fb := detFb(r, noise.Overload, noise.Overload, noise.Overload)
	a.Step(1, &fb, r)
	if a.Assignment() != Idle {
		t.Fatal("idle ant joined without any Lack")
	}
}

func TestTrivialJoinUniform(t *testing.T) {
	r := rng.New(25)
	counts := make([]int, 2)
	const trials = 30000
	for i := 0; i < trials; i++ {
		a := NewTrivial(2)
		fb := detFb(r, noise.Lack, noise.Lack)
		a.Step(1, &fb, r)
		counts[a.Assignment()]++
	}
	frac := float64(counts[0]) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("join split %v, want ~0.5", frac)
	}
}

func TestTrivialMeta(t *testing.T) {
	a := NewTrivial(7)
	if a.PhaseLen() != 1 {
		t.Fatal("PhaseLen")
	}
	if a.MemoryBits() != 3 {
		t.Fatalf("MemoryBits = %d, want 3", a.MemoryBits())
	}
	f := TrivialFactory(7)
	if f.Name != "trivial" || f.New() == nil {
		t.Fatal("factory broken")
	}
	mustPanic(t, "k=0", func() { NewTrivial(0) })
}

// --- Cross-cutting properties ----------------------------------------------

// TestAssignmentsAlwaysValid drives every automaton with random feedback
// for many rounds and checks the assignment invariant.
func TestAssignmentsAlwaysValid(t *testing.T) {
	const k = 4
	factories := []Factory{
		AntFactory(k, DefaultParams(0.05)),
		PreciseSigmoidFactory(k, DefaultPreciseParams(0.05, 0.4)),
		PreciseAdversarialFactory(k, DefaultPreciseParams(0.05, 0.4)),
		TrivialFactory(k),
		HuggerFactory(k, DefaultParams(0.01)),
	}
	for _, f := range factories {
		r := rng.New(42)
		a := f.New()
		desc := make([]noise.TaskFeedback, k)
		for j := range desc {
			desc[j] = noise.Bern(0.5)
		}
		for tt := uint64(1); tt <= 3000; tt++ {
			fb := NewFeedback(desc, r)
			got := a.Step(tt, &fb, r)
			if got != a.Assignment() {
				t.Fatalf("%s: Step return %d != Assignment %d", f.Name, got, a.Assignment())
			}
			if got < Idle || got >= k {
				t.Fatalf("%s: invalid assignment %d at t=%d", f.Name, got, tt)
			}
		}
	}
}

// TestDeterministicTrajectories: identical seeds must give identical
// trajectories for every automaton.
func TestDeterministicTrajectories(t *testing.T) {
	const k = 3
	factories := []Factory{
		AntFactory(k, DefaultParams(0.05)),
		PreciseSigmoidFactory(k, DefaultPreciseParams(0.05, 0.4)),
		PreciseAdversarialFactory(k, DefaultPreciseParams(0.05, 0.4)),
		TrivialFactory(k),
	}
	for _, f := range factories {
		run := func() []int32 {
			r := rng.New(1234)
			a := f.New()
			desc := make([]noise.TaskFeedback, k)
			for j := range desc {
				desc[j] = noise.Bern(0.6)
			}
			out := make([]int32, 0, 500)
			for tt := uint64(1); tt <= 500; tt++ {
				fb := NewFeedback(desc, r)
				out = append(out, a.Step(tt, &fb, r))
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trajectories diverged at round %d", f.Name, i)
			}
		}
	}
}
