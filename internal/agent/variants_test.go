package agent

import (
	"math"
	"testing"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

func TestPhaseShiftedDelegates(t *testing.T) {
	r := rng.New(1)
	inner := NewAnt(2, DefaultParams(0.05))
	p := &PhaseShifted{Inner: inner, Offset: 1}
	p.Reset(1)
	if p.Assignment() != 1 || inner.Assignment() != 1 {
		t.Fatal("Reset/Assignment not delegated")
	}
	if p.MemoryBits() != inner.MemoryBits() || p.PhaseLen() != inner.PhaseLen() {
		t.Fatal("meta not delegated")
	}
	// With offset 1, global round 1 is the inner agent's round 2 (an
	// even, decision round): an idle inner agent with stale Lack sample
	// and Lack feedback joins immediately — behavior differs from an
	// unshifted agent, which merely records s1 at round 1.
	fb := detFb(r, noise.Lack, noise.Lack)
	p.Reset(Idle)
	p.Step(1, &fb, r)
	un := NewAnt(2, DefaultParams(0.05))
	fb2 := detFb(r, noise.Lack, noise.Lack)
	un.Step(1, &fb2, r)
	if un.Assignment() != Idle {
		t.Fatal("unshifted agent should not decide at round 1")
	}
}

func TestDesyncFactoryFraction(t *testing.T) {
	base := AntFactory(2, DefaultParams(0.05))
	fac := DesyncFactory(base, 0.3, 1)
	if fac.Name == base.Name {
		t.Fatal("desync factory should rename")
	}
	shifted := 0
	const total = 1000
	for i := 0; i < total; i++ {
		if _, ok := fac.New().(*PhaseShifted); ok {
			shifted++
		}
	}
	if shifted != 300 {
		t.Fatalf("shifted %d/1000, want exactly 300 (deterministic thinning)", shifted)
	}
	mustPanic(t, "bad frac", func() { DesyncFactory(base, 1.5, 1) })
}

func TestDesyncFactoryZeroAndFull(t *testing.T) {
	base := TrivialFactory(2)
	none := DesyncFactory(base, 0, 1)
	for i := 0; i < 50; i++ {
		if _, ok := none.New().(*PhaseShifted); ok {
			t.Fatal("frac=0 produced a shifted agent")
		}
	}
	all := DesyncFactory(base, 1, 1)
	for i := 0; i < 50; i++ {
		if _, ok := all.New().(*PhaseShifted); !ok {
			t.Fatal("frac=1 produced an unshifted agent")
		}
	}
}

func TestSingleFeedbackAntJoinsCandidateOnDoubleLack(t *testing.T) {
	r := rng.New(2)
	a := NewSingleFeedbackAnt(1, DefaultParams(0.05))
	fb := detFb(r, noise.Lack)
	a.Step(1, &fb, r)
	a.Step(2, &fb, r)
	if a.Assignment() != 0 {
		t.Fatalf("assignment %d, want 0", a.Assignment())
	}
}

func TestSingleFeedbackAntCandidateUniform(t *testing.T) {
	r := rng.New(3)
	counts := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		a := NewSingleFeedbackAnt(3, DefaultParams(0.05))
		fb := detFb(r, noise.Lack, noise.Lack, noise.Lack)
		a.Step(1, &fb, r)
		a.Step(2, &fb, r)
		if got := a.Assignment(); got != Idle {
			counts[got]++
		}
	}
	for j, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Fatalf("candidate %d frequency %v, want ~1/3", j, frac)
		}
	}
}

func TestSingleFeedbackAntMixedSamplesNoJoin(t *testing.T) {
	r := rng.New(4)
	a := NewSingleFeedbackAnt(1, DefaultParams(0.05))
	fb1 := detFb(r, noise.Lack)
	fb2 := detFb(r, noise.Overload)
	a.Step(1, &fb1, r)
	a.Step(2, &fb2, r)
	if a.Assignment() != Idle {
		t.Fatal("joined on mixed samples")
	}
}

func TestSingleFeedbackAntLeaveRate(t *testing.T) {
	r := rng.New(5)
	p := DefaultParams(0.05)
	left := 0
	const trials = 200000
	a := NewSingleFeedbackAnt(1, p)
	for i := 0; i < trials; i++ {
		a.Reset(0)
		fb := detFb(r, noise.Overload)
		a.Step(1, &fb, r)
		a.Step(2, &fb, r)
		if a.Assignment() == Idle {
			left++
		}
	}
	got := float64(left) / trials
	want := p.Gamma / p.Cd
	if math.Abs(got-want) > 0.0006 {
		t.Fatalf("leave rate %v, want %v", got, want)
	}
}

func TestSingleFeedbackAntMemoryConstantInK(t *testing.T) {
	small := NewSingleFeedbackAnt(2, DefaultParams(0.05))
	big := NewSingleFeedbackAnt(64, DefaultParams(0.05))
	full := NewAnt(64, DefaultParams(0.05))
	if big.MemoryBits() >= full.MemoryBits() {
		t.Fatalf("single-obs memory %d should be below full Ant's %d at k=64",
			big.MemoryBits(), full.MemoryBits())
	}
	// Growth is only the 2·log k task registers.
	if big.MemoryBits()-small.MemoryBits() > 12 {
		t.Fatalf("memory grew too fast: %d -> %d", small.MemoryBits(), big.MemoryBits())
	}
	if small.PhaseLen() != 2 {
		t.Fatal("phase length")
	}
}

func TestSingleFeedbackAntFactoryAndPanics(t *testing.T) {
	fac := SingleFeedbackAntFactory(3, DefaultParams(0.05))
	if fac.New() == nil || fac.Name == "" {
		t.Fatal("factory broken")
	}
	mustPanic(t, "k=0", func() { NewSingleFeedbackAnt(0, DefaultParams(0.05)) })
	mustPanic(t, "bad gamma", func() { NewSingleFeedbackAnt(1, DefaultParams(0.5)) })
	mustPanic(t, "factory", func() { SingleFeedbackAntFactory(1, DefaultParams(0)) })
}

func TestSingleFeedbackAntReset(t *testing.T) {
	a := NewSingleFeedbackAnt(3, DefaultParams(0.05))
	a.Reset(2)
	if a.Assignment() != 2 {
		t.Fatal("Reset failed")
	}
}
