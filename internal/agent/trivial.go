package agent

import (
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Trivial implements the memoryless algorithm of Appendix D: an idle ant
// joins a uniformly random task among those whose current feedback reads
// Lack; a working ant keeps working until its task's feedback reads
// Overload, at which point it leaves immediately.
//
// Under the sequential scheduler (colony.Sequential) this converges to a
// Θ(γ*·Σd) average regret (Appendix D.1). Under the synchronous
// scheduler every ant reacts to the same stale signal simultaneously and
// the system oscillates between empty and flooded for e^Ω(n) rounds
// (Appendix D.2) — the motivating failure that Algorithm Ant's phased
// two-sample design repairs.
type Trivial struct {
	k      int
	assign int32
}

// NewTrivial returns a trivial-algorithm automaton for k tasks.
func NewTrivial(k int) *Trivial {
	if k <= 0 {
		panic("agent: NewTrivial needs k >= 1")
	}
	return &Trivial{k: k, assign: Idle}
}

// Step implements Agent.
func (a *Trivial) Step(_ uint64, fb *Feedback, r *rng.Rng) int32 {
	if a.assign == Idle {
		count := 0
		choice := Idle
		for j := 0; j < a.k; j++ {
			if fb.Sample(j) == noise.Lack {
				count++
				if r.Intn(count) == 0 {
					choice = int32(j)
				}
			}
		}
		a.assign = choice
		return a.assign
	}
	if fb.Sample(int(a.assign)) == noise.Overload {
		a.assign = Idle
	}
	return a.assign
}

// Assignment implements Agent.
func (a *Trivial) Assignment() int32 { return a.assign }

// Reset implements Agent.
func (a *Trivial) Reset(assign int32) { a.assign = assign }

// MemoryBits implements Agent: just the current task.
func (a *Trivial) MemoryBits() int { return bitsFor(a.k + 1) }

// PhaseLen implements Agent.
func (a *Trivial) PhaseLen() int { return 1 }

// TrivialFactory returns a Factory producing trivial-algorithm agents.
func TrivialFactory(k int) Factory {
	return Factory{
		Name:     "trivial",
		New:      func() Agent { return NewTrivial(k) },
		NewBatch: func(n int) Batch { return newTrivialBatch(n, k) },
	}
}
