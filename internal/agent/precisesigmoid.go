package agent

import (
	"fmt"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// PreciseSigmoid implements Algorithm Precise Sigmoid (Section 5,
// Theorem 3.2).
//
// It is Algorithm Ant run at the much smaller step size ε·γ/c_χ, made
// safe by median amplification: instead of trusting single samples, each
// phase consists of 2m rounds (m = ⌈2c_χ/ε + 1⌉). The first m rounds are
// sampled at full load and reduced to the median signal ŝ1; the ant then
// pauses with probability ε·cs·γ/c_χ, and the remaining m rounds are
// sampled at the thinned load and reduced to ŝ2. Decisions are exactly
// Algorithm Ant's, with the permanent-leave probability scaled down to
// γ/(c_χ·cd). The median drives the per-round error probability of the
// sigmoid noise back below 1/n⁸, so Theorem 3.1's machinery applies at
// step size ε·γ/c_χ, yielding an ε-close assignment.
//
// Signals are binary, so each median is a strict-majority vote; ties
// resolve to Overload (the conservative direction: never join, may
// leave only with the scaled-down probability).
type PreciseSigmoid struct {
	p      Params
	k      int
	m      int // half-phase length; full phase is 2m rounds
	cur    int32
	assign int32
	// lack1/lack2 count Lack signals per task in each half-phase; the
	// median of m binary samples is Lack iff 2*count > m.
	lack1, lack2 []int32
	med1         []noise.Signal
}

// NewPreciseSigmoid returns an Algorithm Precise Sigmoid automaton for k
// tasks. It panics on invalid parameters.
func NewPreciseSigmoid(k int, p Params) *PreciseSigmoid {
	if err := p.Validate(true); err != nil {
		panic(err)
	}
	if k <= 0 {
		panic("agent: NewPreciseSigmoid needs k >= 1")
	}
	m := int(2*p.CChi/p.Epsilon + 1)
	if float64(m) < 2*p.CChi/p.Epsilon+1 {
		m++ // ceil
	}
	return &PreciseSigmoid{
		p: p, k: k, m: m,
		cur: Idle, assign: Idle,
		lack1: make([]int32, k),
		lack2: make([]int32, k),
		med1:  make([]noise.Signal, k),
	}
}

// Step implements Agent, following the paper's pseudocode with
// r = t mod 2m; r = 1 opens a phase, r = 0 closes it.
func (a *PreciseSigmoid) Step(t uint64, fb *Feedback, r *rng.Rng) int32 {
	m := uint64(a.m)
	rr := t % (2 * m)

	if rr == 1 {
		a.cur = a.assign
		for j := range a.lack1 {
			a.lack1[j] = 0
			a.lack2[j] = 0
		}
	}

	switch {
	case rr >= 1 && rr <= m:
		a.record(fb, a.lack1)
		if rr == m {
			a.reduce(a.lack1, a.med1)
			if a.cur != Idle && r.Bernoulli(a.p.Epsilon*a.p.Cs*a.p.Gamma/a.p.CChi) {
				a.assign = Idle // temporary pause for the second half-phase
			}
		}
		return a.assign

	default: // rr in [m+1, 2m-1] or rr == 0
		a.record(fb, a.lack2)
		if rr != 0 {
			return a.assign
		}
		// Phase close: compute ŝ2 and decide, exactly as Algorithm Ant
		// but at the scaled-down step size.
		if a.cur == Idle {
			count := 0
			choice := Idle
			for j := 0; j < a.k; j++ {
				if a.med1[j] == noise.Lack && a.median2(j) == noise.Lack {
					count++
					if r.Intn(count) == 0 {
						choice = int32(j)
					}
				}
			}
			a.assign = choice
			return a.assign
		}
		j := int(a.cur)
		if a.med1[j] == noise.Overload && a.median2(j) == noise.Overload &&
			r.Bernoulli(a.p.Gamma/(a.p.CChi*a.p.Cd)) {
			a.assign = Idle
		} else {
			a.assign = a.cur
		}
		return a.assign
	}
}

// record accumulates this round's Lack counts into dst. An idle ant
// samples every task (any task may be joined at phase close); a working
// ant samples only its own — it never consults another task's counters,
// so the extra k−1 draws of stream v1 were pure waste. One draw per
// working ant per round; see FeedbackStreamVersion.
func (a *PreciseSigmoid) record(fb *Feedback, dst []int32) {
	if a.cur != Idle {
		if fb.Sample(int(a.cur)) == noise.Lack {
			dst[a.cur]++
		}
		return
	}
	for j := 0; j < a.k; j++ {
		if fb.Sample(j) == noise.Lack {
			dst[j]++
		}
	}
}

// reduce writes the per-task strict-majority signal of counts into out.
func (a *PreciseSigmoid) reduce(counts []int32, out []noise.Signal) {
	for j, c := range counts {
		if 2*int(c) > a.m {
			out[j] = noise.Lack
		} else {
			out[j] = noise.Overload
		}
	}
}

// median2 returns the second half-phase's majority signal for task j.
func (a *PreciseSigmoid) median2(j int) noise.Signal {
	if 2*int(a.lack2[j]) > a.m {
		return noise.Lack
	}
	return noise.Overload
}

// Assignment implements Agent.
func (a *PreciseSigmoid) Assignment() int32 { return a.assign }

// Reset implements Agent.
func (a *PreciseSigmoid) Reset(assign int32) {
	a.assign = assign
	a.cur = assign
	for j := range a.lack1 {
		a.lack1[j] = 0
		a.lack2[j] = 0
		a.med1[j] = noise.Overload
	}
}

// MemoryBits implements Agent: current task, pause flag, and per task two
// ⌈log₂(m+1)⌉-bit counters plus the ŝ1 register. The per-task counter
// width is the O(log(1/ε)) of Theorem 3.2.
func (a *PreciseSigmoid) MemoryBits() int {
	return bitsFor(a.k+1) + 1 + a.k*(2*bitsFor(a.m+1)+1)
}

// PhaseLen implements Agent.
func (a *PreciseSigmoid) PhaseLen() int { return 2 * a.m }

// HalfPhase returns m, the number of samples per median.
func (a *PreciseSigmoid) HalfPhase() int { return a.m }

// PreciseSigmoidFactory returns a Factory producing Algorithm Precise
// Sigmoid agents.
func PreciseSigmoidFactory(k int, p Params) Factory {
	if err := p.Validate(true); err != nil {
		panic(err)
	}
	return Factory{
		Name:     fmt.Sprintf("precise-sigmoid(γ=%.4g, ε=%.4g)", p.Gamma, p.Epsilon),
		New:      func() Agent { return NewPreciseSigmoid(k, p) },
		NewBatch: func(n int) Batch { return newPreciseSigmoidBatch(n, k, p) },
	}
}
