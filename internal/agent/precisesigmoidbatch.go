package agent

import (
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// preciseSigmoidBatch is the struct-of-arrays form of Algorithm Precise
// Sigmoid. Per-ant Lack counters and the ŝ1 register are laid out as
// n·k contiguous slices; phase geometry (m) is taken from a prototype
// automaton so the two paths can never disagree on rounding.
type preciseSigmoidBatch struct {
	k     int
	m     int
	pause coin // ε·cs·γ/c_χ temporary drop-out
	leave coin // γ/(c_χ·cd) permanent leave

	cur    []int32
	assign []int32
	lack1  []int32 // ant i's counters at [i*k : (i+1)*k)
	lack2  []int32
	med1   []noise.Signal
}

func newPreciseSigmoidBatch(n, k int, p Params) *preciseSigmoidBatch {
	proto := NewPreciseSigmoid(k, p) // validates p and k, fixes m
	b := &preciseSigmoidBatch{
		k:      k,
		m:      proto.m,
		pause:  makeCoin(p.Epsilon * p.Cs * p.Gamma / p.CChi),
		leave:  makeCoin(p.Gamma / (p.CChi * p.Cd)),
		cur:    make([]int32, n),
		assign: make([]int32, n),
		lack1:  make([]int32, n*k),
		lack2:  make([]int32, n*k),
		med1:   make([]noise.Signal, n*k),
	}
	for i := 0; i < n; i++ {
		b.Reset(i, Idle)
	}
	return b
}

// StepRange implements Batch, mirroring PreciseSigmoid.Step.
func (b *preciseSigmoidBatch) StepRange(t uint64, lo, hi int, fb []BatchTaskFeedback, r *rng.Rng, counts []int) uint64 {
	k := b.k
	m := uint64(b.m)
	rr := t % (2 * m)
	var switches uint64

	for i := lo; i < hi; i++ {
		old := b.assign[i]
		base := i * k
		lack1 := b.lack1[base : base+k]
		lack2 := b.lack2[base : base+k]
		med1 := b.med1[base : base+k]

		if rr == 1 {
			b.cur[i] = b.assign[i]
			for j := 0; j < k; j++ {
				lack1[j] = 0
				lack2[j] = 0
			}
		}
		cur := b.cur[i]

		switch {
		case rr >= 1 && rr <= m:
			// Stream v2: a working ant samples only its own task (it
			// never reads another task's counters); idle ants need the
			// full vector. Mirrors PreciseSigmoid.record exactly.
			if cur != Idle {
				if fb[cur].Sample(r) == noise.Lack {
					lack1[cur]++
				}
			} else {
				for j := 0; j < k; j++ {
					if fb[j].Sample(r) == noise.Lack {
						lack1[j]++
					}
				}
			}
			if rr == m {
				for j := 0; j < k; j++ {
					if 2*int(lack1[j]) > b.m {
						med1[j] = noise.Lack
					} else {
						med1[j] = noise.Overload
					}
				}
				if cur != Idle && b.pause.flip(r) {
					b.assign[i] = Idle
				}
			}

		default: // rr in [m+1, 2m-1] or rr == 0
			if cur != Idle {
				if fb[cur].Sample(r) == noise.Lack {
					lack2[cur]++
				}
			} else {
				for j := 0; j < k; j++ {
					if fb[j].Sample(r) == noise.Lack {
						lack2[j]++
					}
				}
			}
			if rr == 0 {
				if cur == Idle {
					count := 0
					choice := Idle
					for j := 0; j < k; j++ {
						if med1[j] == noise.Lack && 2*int(lack2[j]) > b.m {
							count++
							if r.Intn(count) == 0 {
								choice = int32(j)
							}
						}
					}
					b.assign[i] = choice
				} else if med1[cur] == noise.Overload && 2*int(lack2[cur]) <= b.m && b.leave.flip(r) {
					b.assign[i] = Idle
				} else {
					b.assign[i] = cur
				}
			}
		}

		a := b.assign[i]
		counts[a+1]++
		if a != old {
			switches++
		}
	}
	return switches
}

// Assignment implements Batch.
func (b *preciseSigmoidBatch) Assignment(i int) int32 { return b.assign[i] }

// Reset implements Batch, mirroring PreciseSigmoid.Reset.
func (b *preciseSigmoidBatch) Reset(i int, a int32) {
	b.assign[i] = a
	b.cur[i] = a
	base := i * b.k
	for j := 0; j < b.k; j++ {
		b.lack1[base+j] = 0
		b.lack2[base+j] = 0
		b.med1[base+j] = noise.Overload
	}
}
