package agent

import (
	"testing"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// batchTestFactories returns every built-in factory that must provide a
// batch implementation.
func batchTestFactories(k int) []Factory {
	p := DefaultParams(0.05)
	pp := DefaultPreciseParams(0.05, 0.5)
	return []Factory{
		AntFactory(k, p),
		HuggerFactory(k, DefaultParams(0.004)),
		PreciseSigmoidFactory(k, pp),
		PreciseAdversarialFactory(k, pp),
		TrivialFactory(k),
	}
}

// describeRound fabricates a per-round feedback mix covering
// deterministic and Bernoulli descriptors.
func describeRound(t uint64, k int) []noise.TaskFeedback {
	desc := make([]noise.TaskFeedback, k)
	for j := range desc {
		switch (int(t) + j) % 4 {
		case 0:
			desc[j] = noise.Det(noise.Lack)
		case 1:
			desc[j] = noise.Det(noise.Overload)
		case 2:
			desc[j] = noise.Bern(0.3)
		default:
			desc[j] = noise.Bern(0.7)
		}
	}
	return desc
}

// TestBatchMatchesAgents steps a Batch and an equal population of
// interface Agents from identical RNG states and requires identical
// assignments after every round — the agent-level version of the colony
// equivalence harness.
func TestBatchMatchesAgents(t *testing.T) {
	const (
		n      = 64
		k      = 3
		rounds = 420 // covers two full PreciseSigmoid phases (2m = 82)
	)
	for _, f := range batchTestFactories(k) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if f.NewBatch == nil {
				t.Fatalf("factory %s has no NewBatch", f.Name)
			}
			batch := f.NewBatch(n)
			agents := make([]Agent, n)
			for i := range agents {
				agents[i] = f.New()
			}
			// Mixed initial assignments, mirrored on both sides.
			for i := 0; i < n; i++ {
				a := int32(i%(k+1)) - 1
				batch.Reset(i, a)
				agents[i].Reset(a)
				if got := batch.Assignment(i); got != a {
					t.Fatalf("batch Reset(%d, %d) left assignment %d", i, a, got)
				}
			}

			rb := rng.New(7)
			ra := rng.New(7)
			counts := make([]int, k+1)
			batchFb := make([]BatchTaskFeedback, k)
			for tt := uint64(1); tt <= rounds; tt++ {
				desc := describeRound(tt, k)
				CompileFeedback(desc, batchFb)
				for j := range counts {
					counts[j] = 0
				}
				batchSw := batch.StepRange(tt, 0, n, batchFb, rb, counts)

				fb := NewFeedback(desc, ra)
				var agentSw uint64
				agentCounts := make([]int, k+1)
				for i := range agents {
					old := agents[i].Assignment()
					a := agents[i].Step(tt, &fb, ra)
					agentCounts[a+1]++
					if a != old {
						agentSw++
					}
				}

				if batchSw != agentSw {
					t.Fatalf("round %d: batch switches %d != agent switches %d",
						tt, batchSw, agentSw)
				}
				for j := range counts {
					if counts[j] != agentCounts[j] {
						t.Fatalf("round %d: counts[%d] batch %d != agent %d",
							tt, j, counts[j], agentCounts[j])
					}
				}
				for i := range agents {
					if batch.Assignment(i) != agents[i].Assignment() {
						t.Fatalf("round %d ant %d: batch %d != agent %d",
							tt, i, batch.Assignment(i), agents[i].Assignment())
					}
				}
			}
		})
	}
}

// TestBatchStepRangeSharded checks that stepping [0,n) in two disjoint
// ranges with per-range RNG streams matches n individually forked
// agents — the sharded consumption pattern of the colony engine.
func TestBatchStepRangeSharded(t *testing.T) {
	const (
		n      = 40
		k      = 2
		mid    = 17
		rounds = 100
	)
	f := AntFactory(k, DefaultParams(0.05))
	batch := f.NewBatch(n)
	agents := make([]Agent, n)
	for i := range agents {
		agents[i] = f.New()
		agents[i].Reset(Idle)
		batch.Reset(i, Idle)
	}
	master := rng.New(11)
	rb0, rb1 := master.Fork(1), master.Fork(2)
	ra0, ra1 := master.Fork(1), master.Fork(2)
	counts := make([]int, k+1)
	batchFb := make([]BatchTaskFeedback, k)
	for tt := uint64(1); tt <= rounds; tt++ {
		desc := describeRound(tt, k)
		CompileFeedback(desc, batchFb)
		batch.StepRange(tt, 0, mid, batchFb, rb0, counts)
		batch.StepRange(tt, mid, n, batchFb, rb1, counts)

		fb0 := NewFeedback(desc, ra0)
		for i := 0; i < mid; i++ {
			agents[i].Step(tt, &fb0, ra0)
		}
		fb1 := NewFeedback(desc, ra1)
		for i := mid; i < n; i++ {
			agents[i].Step(tt, &fb1, ra1)
		}
		for i := range agents {
			if batch.Assignment(i) != agents[i].Assignment() {
				t.Fatalf("round %d ant %d: batch %d != agent %d",
					tt, i, batch.Assignment(i), agents[i].Assignment())
			}
		}
	}
}

// TestCompileFeedback pins the clamping semantics: out-of-range Bernoulli
// probabilities compile to deterministic descriptors (no RNG draw), in
// line with rng.Bernoulli's short-circuits.
func TestCompileFeedback(t *testing.T) {
	desc := []noise.TaskFeedback{
		noise.Det(noise.Lack),
		noise.Det(noise.Overload),
		noise.Bern(0),
		noise.Bern(-0.5),
		noise.Bern(1),
		noise.Bern(1.5),
		noise.Bern(0.25),
	}
	out := make([]BatchTaskFeedback, len(desc))
	CompileFeedback(desc, out)
	want := []BatchTaskFeedback{
		{Det: true, Value: noise.Lack},
		{Det: true, Value: noise.Overload},
		{Det: true, Value: noise.Overload},
		{Det: true, Value: noise.Overload},
		{Det: true, Value: noise.Lack},
		{Det: true, Value: noise.Lack},
		{Cut: rng.Cutoff(0.25)},
	}
	for j := range want {
		if out[j] != want[j] {
			t.Fatalf("descriptor %d: got %+v, want %+v", j, out[j], want[j])
		}
	}
	// A deterministic descriptor must not consume a draw.
	r1 := rng.New(3)
	r2 := rng.New(3)
	for j := 0; j < 6; j++ {
		out[j].Sample(r1)
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("deterministic Sample consumed an RNG draw")
	}
}

// TestCoinMatchesBernoulli checks the precompiled coin against
// rng.Bernoulli draw for draw across the probability range, including the
// degenerate endpoints that must not consume randomness.
func TestCoinMatchesBernoulli(t *testing.T) {
	ps := []float64{-1, 0, 1e-12, 0.15, 0.5, 0.85, 1 - 1e-12, 1, 2}
	for _, p := range ps {
		c := makeCoin(p)
		r1 := rng.New(99)
		r2 := rng.New(99)
		for i := 0; i < 2000; i++ {
			if got, want := c.flip(r1), r2.Bernoulli(p); got != want {
				t.Fatalf("p=%v draw %d: coin %v != Bernoulli %v", p, i, got, want)
			}
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("p=%v: coin and Bernoulli consumed different draw counts", p)
		}
	}
}

// TestBatchFactoryValidation ensures the batch constructors enforce the
// same parameter checks as their scalar counterparts.
func TestBatchFactoryValidation(t *testing.T) {
	cases := []func(){
		func() { newAntBatch(4, 0, DefaultParams(0.05)) },
		func() { newTrivialBatch(4, 0) },
		func() { newPreciseSigmoidBatch(4, 2, DefaultParams(0.05)) },              // no epsilon
		func() { newPreciseAdversarialBatch(4, 2, DefaultParams(0.05)) },          // no epsilon
		func() { HuggerFactory(2, Params{Gamma: 0.5, Cs: 1, Cd: 1}).NewBatch(4) }, // γ too big
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
