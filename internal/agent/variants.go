package agent

import (
	"fmt"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// PhaseShifted wraps an agent and shifts its view of the global clock by
// a fixed offset. The paper's algorithms assume all ants share the phase
// boundary ("full synchronization", achievable with one extra bit and
// limited communication — see package clock); this wrapper breaks that
// assumption on purpose, so experiments can measure how much the
// guarantee depends on it.
type PhaseShifted struct {
	Inner  Agent
	Offset uint64
}

// Step implements Agent.
func (p *PhaseShifted) Step(t uint64, fb *Feedback, r *rng.Rng) int32 {
	return p.Inner.Step(t+p.Offset, fb, r)
}

// Assignment implements Agent.
func (p *PhaseShifted) Assignment() int32 { return p.Inner.Assignment() }

// Reset implements Agent.
func (p *PhaseShifted) Reset(a int32) { p.Inner.Reset(a) }

// MemoryBits implements Agent (the offset is physical clock skew, not
// stored state).
func (p *PhaseShifted) MemoryBits() int { return p.Inner.MemoryBits() }

// PhaseLen implements Agent.
func (p *PhaseShifted) PhaseLen() int { return p.Inner.PhaseLen() }

// DesyncFactory wraps base so that a frac fraction of the constructed
// agents run with their phase shifted by offset rounds. Construction
// order is deterministic (engines build agents sequentially), so runs
// are reproducible.
func DesyncFactory(base Factory, frac float64, offset uint64) Factory {
	if frac < 0 || frac > 1 {
		panic("agent: DesyncFactory frac outside [0, 1]")
	}
	built := 0
	shifted := 0
	return Factory{
		Name: fmt.Sprintf("%s+desync(%.0f%%,+%d)", base.Name, frac*100, offset),
		New: func() Agent {
			built++
			a := base.New()
			// Deterministic thinning: shift when running behind quota.
			if float64(shifted) < frac*float64(built) {
				shifted++
				return &PhaseShifted{Inner: a, Offset: offset}
			}
			return a
		},
	}
}

// SingleFeedbackAnt is Algorithm Ant restricted to one observed task per
// round, per Remark 3.4: "this is not necessary and only the initial cost
// would change if each ant could only receive feedback from one
// (adaptively) chosen task". A working ant watches its own task exactly
// as Algorithm Ant does; an idle ant picks ONE candidate task uniformly
// at random at each phase start and joins it only if both of that task's
// samples read Lack. Steady-state behavior matches Algorithm Ant; the
// initial fill is up to k× slower because idle ants probe one task at a
// time.
type SingleFeedbackAnt struct {
	p         Params
	k         int
	cur       int32
	assign    int32
	candidate int32
	s1        noise.Signal
}

// NewSingleFeedbackAnt returns a single-observation Algorithm Ant for k
// tasks. It panics on invalid parameters.
func NewSingleFeedbackAnt(k int, p Params) *SingleFeedbackAnt {
	if err := p.Validate(false); err != nil {
		panic(err)
	}
	if k <= 0 {
		panic("agent: NewSingleFeedbackAnt needs k >= 1")
	}
	return &SingleFeedbackAnt{p: p, k: k, cur: Idle, assign: Idle, candidate: Idle}
}

// Step implements Agent.
func (a *SingleFeedbackAnt) Step(t uint64, fb *Feedback, r *rng.Rng) int32 {
	if t%2 == 1 {
		a.cur = a.assign
		if a.cur == Idle {
			a.candidate = int32(r.Intn(a.k))
			a.s1 = fb.Sample(int(a.candidate))
			return a.assign
		}
		a.candidate = a.cur
		a.s1 = fb.Sample(int(a.cur))
		if r.Bernoulli(a.p.Cs * a.p.Gamma) {
			a.assign = Idle
		}
		return a.assign
	}

	s2 := fb.Sample(int(a.candidate))
	if a.cur == Idle {
		if a.s1 == noise.Lack && s2 == noise.Lack {
			a.assign = a.candidate
		} else {
			a.assign = Idle
		}
		return a.assign
	}
	if a.s1 == noise.Overload && s2 == noise.Overload && r.Bernoulli(a.p.Gamma/a.p.Cd) {
		a.assign = Idle
	} else {
		a.assign = a.cur
	}
	return a.assign
}

// Assignment implements Agent.
func (a *SingleFeedbackAnt) Assignment() int32 { return a.assign }

// Reset implements Agent.
func (a *SingleFeedbackAnt) Reset(assign int32) {
	a.assign = assign
	a.cur = assign
	a.candidate = assign
	a.s1 = noise.Lack
}

// MemoryBits implements Agent: current task, candidate task, one signal
// bit, and the pause flag — constant in k, unlike Algorithm Ant's O(k)
// sample register.
func (a *SingleFeedbackAnt) MemoryBits() int { return 2*bitsFor(a.k+1) + 2 }

// PhaseLen implements Agent.
func (a *SingleFeedbackAnt) PhaseLen() int { return 2 }

// SingleFeedbackAntFactory returns a Factory producing single-observation
// Algorithm Ant agents.
func SingleFeedbackAntFactory(k int, p Params) Factory {
	if err := p.Validate(false); err != nil {
		panic(err)
	}
	return Factory{
		Name: fmt.Sprintf("ant-single-obs(γ=%.4g)", p.Gamma),
		New:  func() Agent { return NewSingleFeedbackAnt(k, p) },
	}
}
