package agent

import (
	"fmt"

	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// Ant implements Algorithm Ant (Section 4, Theorem 3.1).
//
// Time is divided into phases of two rounds. In the first (odd) round the
// ant records the feedback vector s1 and, if working, temporarily pauses
// with probability cs·γ — collectively thinning the workforce so that the
// second sample is taken at a load about (1−cs·γ)·W. In the second (even)
// round it records s2 and decides:
//
//   - a working ant whose own task showed Overload in BOTH samples leaves
//     permanently with probability γ/cd, otherwise resumes;
//   - an idle ant joins a task drawn uniformly from those showing Lack in
//     BOTH samples, if any.
//
// The two samples straddle the grey zone whenever the deficit is inside
// it, so with high probability the load only ever moves toward the stable
// zone [d(1+γ), d(1+(0.9cs−1)γ)] — a distributed, noisy gradient descent
// with learning rate γ.
type Ant struct {
	p      Params
	k      int
	cur    int32 // currentTask: assignment at the start of the phase
	assign int32 // assignment returned by the last Step
	s1     []noise.Signal
}

// NewAnt returns an Algorithm Ant automaton for k tasks. It panics if the
// parameters are invalid (use Params.Validate to pre-check).
func NewAnt(k int, p Params) *Ant {
	if err := p.Validate(false); err != nil {
		panic(err)
	}
	return newAntUnchecked(k, p)
}

// NewHugger returns Algorithm Ant run with a deliberately sub-critical
// learning rate γ < γ*. This violates the premise of Theorem 3.1 and is
// the constructive witness for the Theorem 3.3 lower bound: with both
// samples routinely landing inside the grey zone, the automaton's
// decisions degenerate to noise and the deficit exhibits ω(γ*·d)
// oscillations. Only the γ range check is waived; everything else is
// validated.
func NewHugger(k int, p Params) *Ant {
	validateHugger(p)
	return newAntUnchecked(k, p)
}

// validateHugger panics unless p satisfies every Algorithm Ant parameter
// constraint except the γ ≥ γ* premise (see NewHugger). Shared by the
// scalar and batch hugger constructors so the two paths cannot drift.
func validateHugger(p Params) {
	if p.Gamma <= 0 || p.Gamma > MaxGamma || p.Cs <= 0 || p.Cd <= 0 || p.Cs*p.Gamma >= 1 {
		panic(fmt.Errorf("agent: invalid hugger params %+v", p))
	}
}

func newAntUnchecked(k int, p Params) *Ant {
	if k <= 0 {
		panic("agent: NewAnt needs k >= 1")
	}
	return &Ant{p: p, k: k, cur: Idle, assign: Idle, s1: make([]noise.Signal, k)}
}

// Step implements Agent. Odd rounds are the first sub-round of a phase,
// even rounds the second, mirroring the paper's "t mod 2" convention.
func (a *Ant) Step(t uint64, fb *Feedback, r *rng.Rng) int32 {
	if t%2 == 1 {
		a.cur = a.assign
		if a.cur == Idle {
			// Idle ants need the full vector: any task may be joined.
			for j := 0; j < a.k; j++ {
				a.s1[j] = fb.Sample(j)
			}
			return a.assign
		}
		// A working ant only ever consults its own task's signal.
		a.s1[a.cur] = fb.Sample(int(a.cur))
		if r.Bernoulli(a.p.Cs * a.p.Gamma) {
			a.assign = Idle // temporary pause for the spaced second sample
		}
		return a.assign
	}

	// Second sub-round: decide using both samples.
	if a.cur == Idle {
		// Reservoir-sample a uniform task among {j : s1=s2=Lack}.
		count := 0
		choice := Idle
		for j := 0; j < a.k; j++ {
			if a.s1[j] == noise.Lack && fb.Sample(j) == noise.Lack {
				count++
				if r.Intn(count) == 0 {
					choice = int32(j)
				}
			}
		}
		a.assign = choice
		return a.assign
	}
	s2 := fb.Sample(int(a.cur))
	if a.s1[a.cur] == noise.Overload && s2 == noise.Overload && r.Bernoulli(a.p.Gamma/a.p.Cd) {
		a.assign = Idle // permanent leave
	} else {
		a.assign = a.cur // resume (also un-pauses a temporary drop-out)
	}
	return a.assign
}

// Assignment implements Agent.
func (a *Ant) Assignment() int32 { return a.assign }

// Reset implements Agent.
func (a *Ant) Reset(assign int32) {
	a.assign = assign
	a.cur = assign
	for j := range a.s1 {
		a.s1[j] = noise.Lack
	}
}

// MemoryBits implements Agent: current task (k+1 values), pause flag, and
// the k-bit first-sample register.
func (a *Ant) MemoryBits() int { return bitsFor(a.k+1) + 1 + a.k }

// PhaseLen implements Agent.
func (a *Ant) PhaseLen() int { return 2 }

// AntFactory returns a Factory producing Algorithm Ant agents.
func AntFactory(k int, p Params) Factory {
	if err := p.Validate(false); err != nil {
		panic(err)
	}
	return Factory{
		Name:     fmt.Sprintf("ant(γ=%.4g)", p.Gamma),
		New:      func() Agent { return NewAnt(k, p) },
		NewBatch: func(n int) Batch { return newAntBatch(n, k, p) },
	}
}

// HuggerFactory returns a Factory producing sub-critical Algorithm Ant
// agents (the Theorem 3.3 witness).
func HuggerFactory(k int, p Params) Factory {
	return Factory{
		Name: fmt.Sprintf("hugger(γ=%.4g)", p.Gamma),
		New:  func() Agent { return NewHugger(k, p) },
		NewBatch: func(n int) Batch {
			validateHugger(p)
			return newAntBatch(n, k, p)
		},
	}
}
