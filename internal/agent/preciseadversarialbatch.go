package agent

import (
	"taskalloc/internal/noise"
	"taskalloc/internal/rng"
)

// preciseAdversarialBatch is the struct-of-arrays form of Algorithm
// Precise Adversarial. The per-ant all-Lack registers are one n·k bool
// slice; sub-phase geometry (r1, r2) is taken from a prototype automaton
// so the two paths can never disagree on rounding.
type preciseAdversarialBatch struct {
	k      int
	r1, r2 int
	drain  coin // ε·γ/32, used for both the gradual drain and the final leave

	cur          []int32
	assign       []int32
	allLack      []bool // ant i's register at [i*k : (i+1)*k)
	allOver      []bool
	captured     []bool
	capturedIdle []bool
}

func newPreciseAdversarialBatch(n, k int, p Params) *preciseAdversarialBatch {
	proto := NewPreciseAdversarial(k, p) // validates p and k, fixes r1/r2
	b := &preciseAdversarialBatch{
		k:            k,
		r1:           proto.r1,
		r2:           proto.r2,
		drain:        makeCoin(p.Epsilon * p.Gamma / 32),
		cur:          make([]int32, n),
		assign:       make([]int32, n),
		allLack:      make([]bool, n*k),
		allOver:      make([]bool, n),
		captured:     make([]bool, n),
		capturedIdle: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		b.Reset(i, Idle)
	}
	return b
}

// StepRange implements Batch, mirroring PreciseAdversarial.Step.
func (b *preciseAdversarialBatch) StepRange(t uint64, lo, hi int, fb []BatchTaskFeedback, r *rng.Rng, counts []int) uint64 {
	k := b.k
	cycle := uint64(b.r1 + b.r2)
	rr := t % cycle
	var switches uint64

	for i := lo; i < hi; i++ {
		old := b.assign[i]
		allLack := b.allLack[i*k : i*k+k]

		if rr == 1 {
			b.cur[i] = b.assign[i]
			for j := 0; j < k; j++ {
				allLack[j] = true
			}
			b.allOver[i] = true
			b.captured[i] = false
			b.capturedIdle[i] = false
		}
		cur := b.cur[i]

		// Sample: idle ants track every task, workers only their own.
		var own noise.Signal
		if cur == Idle {
			for j := 0; j < k; j++ {
				if fb[j].Sample(r) == noise.Lack {
					b.allOver[i] = false
				} else {
					allLack[j] = false
				}
			}
		} else {
			own = fb[cur].Sample(r)
			if own == noise.Lack {
				b.allOver[i] = false
			} else {
				allLack[cur] = false
			}
		}

		switch {
		case rr >= 1 && rr < uint64(b.r1):
			if cur != Idle {
				if rr >= 2 && b.assign[i] != Idle && b.drain.flip(r) {
					b.assign[i] = Idle
				}
				if !b.captured[i] && own == noise.Lack {
					b.captured[i] = true
					b.capturedIdle[i] = b.assign[i] == Idle
				}
			}

		case rr == uint64(b.r1):
			if cur != Idle {
				if !b.captured[i] {
					b.captured[i] = true
					b.capturedIdle[i] = b.assign[i] == Idle
				}
				if b.capturedIdle[i] {
					b.assign[i] = Idle
				} else {
					b.assign[i] = cur
				}
			}

		case rr != 0: // second sub-phase interior: hold

		default: // rr == 0: phase close
			if cur == Idle {
				count := 0
				choice := Idle
				for j := 0; j < k; j++ {
					if allLack[j] {
						count++
						if r.Intn(count) == 0 {
							choice = int32(j)
						}
					}
				}
				b.assign[i] = choice
			} else if b.allOver[i] {
				if b.assign[i] != Idle {
					if b.drain.flip(r) {
						b.assign[i] = Idle
					} else {
						b.assign[i] = cur
					}
				}
			} else {
				b.assign[i] = cur
			}
		}

		a := b.assign[i]
		counts[a+1]++
		if a != old {
			switches++
		}
	}
	return switches
}

// Assignment implements Batch.
func (b *preciseAdversarialBatch) Assignment(i int) int32 { return b.assign[i] }

// Reset implements Batch, mirroring PreciseAdversarial.Reset.
func (b *preciseAdversarialBatch) Reset(i int, a int32) {
	b.assign[i] = a
	b.cur[i] = a
	base := i * b.k
	for j := 0; j < b.k; j++ {
		b.allLack[base+j] = false
	}
	b.allOver[i] = false
	b.captured[i] = false
	b.capturedIdle[i] = false
}
