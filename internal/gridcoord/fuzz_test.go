package gridcoord

import (
	"bytes"
	"encoding/json"
	"testing"

	"taskalloc/internal/simserver/client"
	"taskalloc/internal/wire"
)

// FuzzBackendStream drives arbitrary bytes through the exact path a
// backend response takes into the merged output: client.DecodeStream,
// the coordinator's stream-order checks, and the NDJSON merger. The
// contract under fuzzing: malformed, truncated, or reordered input must
// surface as an error — never a panic, and never bytes that diverge
// from the deterministic rendering of the correctly delivered prefix.
// The decode → check → merge pipeline is also required to be a pure
// function of its input (two passes, identical output).
func FuzzBackendStream(f *testing.F) {
	header := func(jobs int) string {
		b, _ := json.Marshal(wire.StreamHeader{Version: wire.V1, ID: "fuzz", Jobs: jobs})
		return string(b) + "\n"
	}
	line := func(idx int) string {
		b, _ := json.Marshal(wire.Result{Index: idx, Meta: []string{"i"}, Err: "x"})
		return string(b) + "\n"
	}
	f.Add([]byte(header(3) + line(0) + line(1) + line(2))) // well-formed
	f.Add([]byte(header(3) + line(0) + line(1)))           // truncated
	f.Add([]byte(header(3) + line(0) + line(2) + line(1))) // reordered
	f.Add([]byte(header(3) + line(0) + "{malformed\n" + line(2)))
	f.Add([]byte(header(5) + line(0) + line(1) + line(2) + line(3) + line(4))) // more than the chunk
	f.Add([]byte(""))
	f.Add([]byte("not json\n"))
	f.Add([]byte(header(0)))

	f.Fuzz(func(t *testing.T, data []byte) {
		run := func() ([]byte, bool) {
			// The chunk under merge: global indices 0..2 of a 3-job grid,
			// mirroring one backend sub-sweep.
			idxs := []int{0, 1, 2}
			var out bytes.Buffer
			m := newMerger(newNDJSONMerge(&out, wire.StreamHeader{
				Version: wire.V1, ID: "merged", Jobs: len(idxs),
			}), len(idxs))
			var delivered []wire.Result
			var protoErr bool
			_, err := client.DecodeStream(bytes.NewReader(data), 0, true, func(res wire.Result) {
				// The same order discipline Coordinator.stream enforces: a
				// line off the strict local sequence poisons the stream
				// instead of reaching the merger.
				if protoErr {
					return
				}
				if res.Index != len(delivered) || len(delivered) >= len(idxs) {
					protoErr = true
					return
				}
				delivered = append(delivered, res)
				m.deliver(idxs[res.Index], res)
			})
			// A stream that decodes cleanly but delivers too few results (a
			// header under-claiming the job count) is a failure too — the
			// coordinator re-dispatches the shortfall rather than letting
			// it vanish from the merge.
			short := err == nil && !protoErr && len(delivered) != len(idxs)
			failed := err != nil || protoErr || short
			if !failed {
				if ferr := m.finish(); ferr != nil {
					t.Fatalf("merger finish failed on an accepted stream: %v", ferr)
				}
			}

			// Whatever happened, the emitted bytes must equal the canonical
			// rendering of the delivered prefix: merged header, then each
			// delivered result re-encoded at its global index. Anything
			// else means a broken input leaked divergent bytes downstream.
			var want bytes.Buffer
			enc := json.NewEncoder(&want)
			_ = enc.Encode(wire.StreamHeader{Version: wire.V1, ID: "merged", Jobs: len(idxs)})
			for k, res := range delivered {
				res.Index = idxs[k]
				_ = enc.Encode(res)
			}
			if !bytes.Equal(out.Bytes(), want.Bytes()) {
				t.Fatalf("merged bytes diverge from the delivered prefix:\ngot:  %q\nwant: %q",
					out.Bytes(), want.Bytes())
			}
			return out.Bytes(), failed
		}

		out1, failed1 := run()
		out2, failed2 := run()
		if failed1 != failed2 || !bytes.Equal(out1, out2) {
			t.Fatalf("decode+merge is not deterministic: (%v, %q) vs (%v, %q)",
				failed1, out1, failed2, out2)
		}
	})
}
