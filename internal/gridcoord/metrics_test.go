package gridcoord

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"taskalloc/internal/obs"
	"taskalloc/internal/simserver"
)

// logBuffer is a goroutine-safe writer capturing a backend's access
// log.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestTraceRoundTripAndGridMetrics: one Run mints a trace ID, every
// backend sees it (it lands in their access logs), EventBackendDone
// fires once per backend stream, and the coordinator's registry serves
// a lint-clean exposition whose delivery counters sum to the sweep.
func TestTraceRoundTripAndGridMetrics(t *testing.T) {
	sweep := testSweep(t)
	const n = 2
	logs := make([]*logBuffer, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		logs[i] = &logBuffer{}
		srv := simserver.New(simserver.Options{Workers: 2, AccessLog: logs[i]})
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}

	var evMu sync.Mutex
	doneEvents := map[int]Event{}
	reg := obs.NewRegistry()
	coord, err := New(Options{
		Backends: urls,
		Registry: reg,
		// Static mode: one stream per backend, so "done fires once per
		// backend" and "stream_seconds_count == 1" stay exact. The
		// chunked scheduler's per-stream accounting is covered by the
		// property suite.
		StealChunk: -1,
		Observe: func(ev Event) {
			if ev.Kind != EventBackendDone {
				return
			}
			evMu.Lock()
			defer evMu.Unlock()
			if prior, dup := doneEvents[ev.Backend]; dup {
				t.Errorf("backend %d reported done twice: %+v then %+v", ev.Backend, prior, ev)
			}
			doneEvents[ev.Backend] = ev
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.TraceID) != 32 {
		t.Fatalf("stats.TraceID = %q, want a 32-char ID", stats.TraceID)
	}

	total := 0
	for b, d := range stats.Delivered {
		total += d
		if d != stats.JobsPerBackend[b] {
			t.Errorf("backend %d delivered %d of its %d jobs", b, d, stats.JobsPerBackend[b])
		}
	}
	if total != len(sweep.Jobs) {
		t.Fatalf("delivered %d results for %d jobs", total, len(sweep.Jobs))
	}

	// Every backend that received jobs logged the run's trace ID.
	for b := 0; b < n; b++ {
		if stats.JobsPerBackend[b] == 0 {
			continue
		}
		if got := logs[b].String(); !strings.Contains(got, `"trace_id":"`+stats.TraceID+`"`) {
			t.Errorf("backend %d access log missing trace %s:\n%s", b, stats.TraceID, got)
		}
		ev, ok := doneEvents[b]
		if !ok {
			t.Errorf("backend %d never reported EventBackendDone", b)
			continue
		}
		if ev.Err != nil || ev.Jobs != stats.Delivered[b] {
			t.Errorf("backend %d done event %+v, want err=nil jobs=%d", b, ev, stats.Delivered[b])
		}
	}

	var exp bytes.Buffer
	if err := reg.Render(&exp); err != nil {
		t.Fatal(err)
	}
	if problems := obs.Lint(exp.Bytes()); len(problems) != 0 {
		t.Fatalf("grid exposition lint: %v", problems)
	}
	for _, want := range []string{
		"taskalloc_grid_sweeps_total 1",
		`taskalloc_grid_jobs_delivered_total{backend="0"}`,
		`taskalloc_grid_backend_stream_seconds_count{backend="0"} 1`,
	} {
		if !strings.Contains(exp.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestBackendDoneOnImmediateFailure is the terminal-event contract for
// a backend that dies before delivering a single job: its
// EventBackendDone still fires, with zero jobs and the failure reason
// attached.
func TestBackendDoneOnImmediateFailure(t *testing.T) {
	sweep := testSweep(t)
	assign, err := Partition(sweep.Jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	victim := 0
	if len(assign[0]) == 0 {
		victim = 1
	}

	urls := bootBackends(t, 2, func(i int, h http.Handler) http.Handler {
		if i != victim {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				// Drop the connection before any result: a transport-level
				// death, not a rejection (4xx would be fatal, not retried).
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("test server not hijackable")
				}
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	var evMu sync.Mutex
	var victimDone []Event
	coord, err := New(Options{
		Backends: urls,
		Observe: func(ev Event) {
			if ev.Kind == EventBackendDone && ev.Backend == victim {
				evMu.Lock()
				victimDone = append(victimDone, ev)
				evMu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackendsLost != 1 || stats.Delivered[victim] != 0 {
		t.Fatalf("stats = %+v, want victim %d lost with 0 delivered", stats, victim)
	}
	if len(victimDone) != 1 {
		t.Fatalf("victim reported %d done events, want 1", len(victimDone))
	}
	if ev := victimDone[0]; ev.Err == nil || ev.Jobs != 0 {
		t.Fatalf("victim done event %+v, want err!=nil jobs=0", ev)
	}
}
