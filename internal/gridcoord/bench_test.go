package gridcoord

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"taskalloc/internal/simserver"
	"taskalloc/internal/wire"
)

// benchSweep builds a 12-cell grid; seedBase varies per iteration so
// every submission misses the backends' result caches (the benchmark
// measures execution + coordination, not cache replay).
func benchSweep(seedBase uint64) wire.Sweep {
	sweep := wire.Sweep{Version: wire.V1}
	for i := 0; i < 12; i++ {
		sweep.Jobs = append(sweep.Jobs, wire.Job{
			Meta:   []string{"n", "2000", "static", fmt.Sprint(seedBase + uint64(i))},
			Rounds: 600,
			Config: wire.Config{
				Ants:    2000,
				Demands: []int{700, 900},
				Gamma:   1.0 / 32,
				Seed:    seedBase + uint64(i),
				Shards:  1,
				BurnIn:  300,
			},
		})
	}
	return sweep
}

func benchBackends(b *testing.B, n int) []string {
	b.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := simserver.New(simserver.Options{})
		b.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		b.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// BenchmarkGridSweep measures the coordinator's end-to-end cost at 1
// and 3 backends; compared with BenchmarkSingleHostSweep, the delta is
// the coordination overhead (hashing, partitioning, HTTP fan-out,
// ordered merge) recorded in BENCH_5.json.
func BenchmarkGridSweep(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			coord, err := New(Options{Backends: benchBackends(b, n)})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep := benchSweep(uint64(1 + i*1000))
				if _, err := coord.Run(context.Background(), sweep, FormatNDJSON, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleHostSweep is the 1-host baseline: the same grid
// POSTed directly to one backend, no coordinator in the path.
func BenchmarkSingleHostSweep(b *testing.B) {
	url := benchBackends(b, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := wire.MarshalSweep(benchSweep(uint64(1 + i*1000)))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("POST: %s", resp.Status)
		}
	}
}

func benchBisectRequest() wire.BisectRequest {
	return wire.BisectRequest{
		Version: wire.V1,
		Job: wire.Job{
			Rounds: 600,
			Config: wire.Config{
				Ants:    2000,
				Demands: []int{700, 900},
				Seed:    7,
				Shards:  1,
				BurnIn:  300,
			},
		},
		GammaLo:    0.004,
		GammaHi:    1.0 / 16,
		TargetBand: 20,
		MaxEvals:   64,
	}
}

// BenchmarkBisect measures an adaptive γ-bisection cold (every cell
// simulated) and warm (an identical re-bisection served from the
// backend's job-level cache) — the cache-warm speedup recorded in
// BENCH_5.json.
func BenchmarkBisect(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			coord, err := New(Options{Backends: benchBackends(b, 1)})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := coord.Bisect(context.Background(), benchBisectRequest()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		coord, err := New(Options{Backends: benchBackends(b, 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := coord.Bisect(context.Background(), benchBisectRequest()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := coord.Bisect(context.Background(), benchBisectRequest())
			if err != nil {
				b.Fatal(err)
			}
			if resp.CacheHits != resp.Evals {
				b.Fatalf("warm bisect missed the cache: %d of %d", resp.CacheHits, resp.Evals)
			}
		}
	})
}
