package gridcoord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"taskalloc/internal/obs"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// The coordinator's own HTTP surface: POST /v1/sweeps streams the
// merged grid run, POST /v1/bisect runs the sharded refinement search,
// and GET /v1/sweeps/{id} fans the summary query out to the backends
// that streamed a completed run's chunks and fuses their answers into
// the single-host response body.

// ErrUnknownSweep is returned by SweepStatus (and mapped to 404 by
// Handler) for a sweep ID no completed run in the registry matches.
var ErrUnknownSweep = errors.New("gridcoord: unknown sweep")

// runRetention bounds the completed-run registry SweepStatus serves
// from: the most recent runs, evicted FIFO. Summaries are fetched from
// the backends on demand, so a record costs only the job list and the
// chunk map.
const runRetention = 32

// runRecord remembers one completed run: the sweep's jobs (for rounds
// and coverage checks) and which backend streamed which chunk under
// which sub-sweep ID.
type runRecord struct {
	jobs   []wire.Job
	chunks []chunkRecord
}

// recordRun registers a completed run for SweepStatus fan-out, evicting
// the oldest past the retention bound.
func (c *Coordinator) recordRun(id string, jobs []wire.Job, chunks []chunkRecord) {
	jc := make([]wire.Job, len(jobs))
	copy(jc, jobs)
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if _, ok := c.runs[id]; !ok {
		c.runOrder = append(c.runOrder, id)
	}
	c.runs[id] = &runRecord{jobs: jc, chunks: chunks}
	for len(c.runOrder) > runRetention {
		delete(c.runs, c.runOrder[0])
		c.runOrder = c.runOrder[1:]
	}
}

// SweepStatus reconstructs the single-host GET /v1/sweeps/{id} body for
// a completed grid run: it queries, in parallel, each backend that
// streamed one of the run's chunks for that chunk's sub-sweep summary,
// re-indexes the per-cell results to their global positions, and
// recomputes the fused summary with sweeprun.Summarize — the same
// aggregation a single host runs over the same per-cell reports, so
// the fused document equals the single-host one. Returns
// ErrUnknownSweep when no completed run with this ID is registered.
func (c *Coordinator) SweepStatus(ctx context.Context, id string) (*wire.SweepStatus, error) {
	c.rmu.Lock()
	rec := c.runs[id]
	c.rmu.Unlock()
	if rec == nil {
		return nil, ErrUnknownSweep
	}
	traceID := obs.NewID()
	results := make([]wire.Result, len(rec.jobs))
	got := make([]bool, len(rec.jobs))
	errs := make([]error, len(rec.chunks))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for ci, ch := range rec.chunks {
		wg.Add(1)
		go func(ci int, ch chunkRecord) {
			defer wg.Done()
			status, err := c.clients[ch.backend].WithTraceID(traceID).GetSweep(ctx, ch.id)
			if err != nil {
				errs[ci] = fmt.Errorf("gridcoord: backend %d sweep %s: %w", ch.backend, ch.id, err)
				return
			}
			if status.Status != "done" || len(status.Results) != len(ch.idxs) {
				errs[ci] = fmt.Errorf("gridcoord: backend %d sweep %s: status %q with %d of %d results",
					ch.backend, ch.id, status.Status, len(status.Results), len(ch.idxs))
				return
			}
			mu.Lock()
			for k, res := range status.Results {
				g := ch.idxs[k]
				res.Index = g
				results[g] = res
				got[g] = true
			}
			mu.Unlock()
		}(ci, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for g, ok := range got {
		if !ok {
			// A job delivered by a stream that later failed has no
			// queryable sub-sweep on any backend; the fused document
			// would be partial, so refuse rather than diverge.
			return nil, fmt.Errorf("gridcoord: sweep %s: job %d not covered by a completed chunk", id, g)
		}
	}
	runResults := make([]sweeprun.Result, len(results))
	for g, res := range results {
		rr := sweeprun.Result{Index: g, Job: sweeprun.Job{Meta: res.Meta, Rounds: rec.jobs[g].Rounds}}
		if res.Err != "" {
			rr.Err = errors.New(res.Err)
		} else if res.Report != nil {
			rr.Report = *res.Report
		}
		runResults[g] = rr
	}
	sum := sweeprun.Summarize(runResults)
	return &wire.SweepStatus{
		ID:      id,
		Status:  "done",
		Jobs:    len(rec.jobs),
		Failed:  sum.Failed,
		Summary: &sum,
		Results: results,
	}, nil
}

// maxCoordBodyBytes caps a coordinator-served request document; the
// backends' own admission still applies per sub-sweep.
const maxCoordBodyBytes = 64 << 20

// Handler returns the coordinator's HTTP surface: POST /v1/sweeps
// (merged grid stream, ?format=ndjson|csv), POST /v1/bisect (sharded
// refinement search), GET /v1/sweeps/{id} (fan-out summary fusion),
// GET /v1/healthz, and — when Options.Registry is set — GET /v1/metrics
// with the coordinator's own series. cmd/simgrid -serve mounts it.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", c.handleSweep)
	mux.HandleFunc("POST /v1/bisect", c.handleBisect)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepStatus)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "backends": len(c.clients),
		})
	})
	if c.opts.Registry != nil {
		mux.Handle("GET /v1/metrics", c.opts.Registry)
	}
	return mux
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	format := FormatNDJSON
	switch r.URL.Query().Get("format") {
	case "", "ndjson":
	case "csv":
		format = FormatCSV
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
		return
	}
	sweep, err := wire.DecodeSweep(http.MaxBytesReader(w, r.Body, maxCoordBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sweep.Version == "" {
		sweep.Version = wire.V1
	}
	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if format == FormatCSV {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Sweep-Id", id)
	// From the first merged byte on, a failure can only truncate the
	// body — the status line is already on the wire. The client's
	// stream decoder treats a short body as an error, so truncation is
	// never silent.
	if _, err := c.Run(r.Context(), sweep, format, w); err != nil {
		return
	}
}

func (c *Coordinator) handleBisect(w http.ResponseWriter, r *http.Request) {
	req, err := wire.DecodeBisectRequest(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := c.Bisect(r.Context(), req)
	if err != nil {
		// A backend rejection keeps its status (the coordinator shares
		// the backends' admission verdicts); anything else is a bad
		// gateway.
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			httpError(w, apiErr.StatusCode, "%s", apiErr.Message)
			return
		}
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	disposition := "miss"
	if resp.Evals > 0 && resp.CacheHits == resp.Evals {
		disposition = "hit"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", disposition)
	_ = json.NewEncoder(w).Encode(resp)
}

func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	status, err := c.SweepStatus(r.Context(), r.PathValue("id"))
	if errors.Is(err, ErrUnknownSweep) {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(status)
}

// httpError writes a plain-text error, mirroring the backends'
// non-tenant error rendering.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
