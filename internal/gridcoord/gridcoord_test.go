package gridcoord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"taskalloc/internal/goldencases"
	"taskalloc/internal/simserver"
	"taskalloc/internal/wire"
)

// testSweep builds a grid from the golden corpus (trajectories on for
// every other job, to exercise both render paths) plus a few extra
// seed-varied cells so the partition spreads over every backend.
func testSweep(t *testing.T) wire.Sweep {
	t.Helper()
	sweep := wire.Sweep{Version: wire.V1}
	for i, gc := range goldencases.All() {
		cfg, err := gc.Config()
		if err != nil {
			t.Fatal(err)
		}
		wcfg, err := wire.FromConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sweep.Jobs = append(sweep.Jobs, wire.Job{
			Meta:       []string{"case", gc.Name, "golden", "7"},
			Rounds:     gc.Rounds,
			Trajectory: i%2 == 0,
			Config:     wcfg,
		})
	}
	return sweep
}

// bootBackends starts n in-process simulation services, each wrapped by
// wrap (identity when nil), and returns their base URLs.
func bootBackends(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := simserver.New(simserver.Options{Workers: 2})
		t.Cleanup(srv.Close)
		var h http.Handler = srv
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// singleHost POSTs the sweep to one backend directly and returns the
// raw response body — the reference bytes the merged stream must equal.
func singleHost(t *testing.T, url string, sweep wire.Sweep, format string) []byte {
	t.Helper()
	body, err := wire.MarshalSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps?format="+format, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("single-host POST: %s: %s", resp.Status, msg)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMergedStreamMatchesSingleHost is the core tentpole contract: the
// coordinator's merged NDJSON and CSV are byte-identical to the same
// sweep served whole by one backend, at 1 and 3 backends.
func TestMergedStreamMatchesSingleHost(t *testing.T) {
	sweep := testSweep(t)
	urls := bootBackends(t, 4, nil)
	reference := urls[3] // not used by the coordinator below

	wantNDJSON := singleHost(t, reference, sweep, "ndjson")
	wantCSV := singleHost(t, reference, sweep, "csv")

	for _, n := range []int{1, 3} {
		coord, err := New(Options{Backends: urls[:n]})
		if err != nil {
			t.Fatal(err)
		}
		assign, err := Partition(sweep.Jobs, n)
		if err != nil {
			t.Fatal(err)
		}
		if n == 3 {
			for b, idxs := range assign {
				if len(idxs) == 0 {
					t.Fatalf("degenerate partition: backend %d got no jobs (%v)", b, assign)
				}
			}
		}
		var ndjson, csvOut bytes.Buffer
		stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &ndjson)
		if err != nil {
			t.Fatalf("%d backends: %v", n, err)
		}
		if got := sum(stats.JobsPerBackend); got != len(sweep.Jobs) {
			t.Fatalf("%d backends: partition covers %d of %d jobs", n, got, len(sweep.Jobs))
		}
		if _, err := coord.Run(context.Background(), sweep, FormatCSV, &csvOut); err != nil {
			t.Fatalf("%d backends csv: %v", n, err)
		}
		if !bytes.Equal(ndjson.Bytes(), wantNDJSON) {
			t.Errorf("%d backends: merged NDJSON differs from single host\n got: %s\nwant: %s",
				n, firstDiffLine(ndjson.Bytes(), wantNDJSON), firstDiffLine(wantNDJSON, ndjson.Bytes()))
		}
		if !bytes.Equal(csvOut.Bytes(), wantCSV) {
			t.Errorf("%d backends: merged CSV differs from single host\n got: %s\nwant: %s",
				n, firstDiffLine(csvOut.Bytes(), wantCSV), firstDiffLine(wantCSV, csvOut.Bytes()))
		}
	}
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// firstDiffLine returns x's first line that differs from y's.
func firstDiffLine(x, y []byte) []byte {
	xl, yl := bytes.Split(x, []byte("\n")), bytes.Split(y, []byte("\n"))
	for i := 0; i < len(xl); i++ {
		if i >= len(yl) || !bytes.Equal(xl[i], yl[i]) {
			return xl[i]
		}
	}
	return nil
}

// abortingHandler aborts the victim's first submission stream after
// two NDJSON lines (header + one result) by panicking with
// http.ErrAbortHandler from inside a Write — a deterministic mid-sweep
// backend death, as seen by the coordinator's client.
type abortingHandler struct {
	inner http.Handler
	armed atomic.Bool
}

func (a *abortingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweeps") &&
		a.armed.CompareAndSwap(true, false) {
		a.inner.ServeHTTP(&abortingWriter{ResponseWriter: w, failAfter: 2}, r)
		return
	}
	a.inner.ServeHTTP(w, r)
}

type abortingWriter struct {
	http.ResponseWriter
	lines     int
	failAfter int
}

func (w *abortingWriter) Write(p []byte) (int, error) {
	if w.lines >= w.failAfter {
		panic(http.ErrAbortHandler)
	}
	w.lines += bytes.Count(p, []byte("\n"))
	return w.ResponseWriter.Write(p)
}

func (w *abortingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestBackendFailureMidSweep kills one backend after it has delivered
// exactly one result; the merged stream must still be byte-identical
// to a single-host run, with the undelivered jobs retried elsewhere.
func TestBackendFailureMidSweep(t *testing.T) {
	sweep := testSweep(t)
	var aborters []*abortingHandler
	var mu sync.Mutex
	urls := bootBackends(t, 4, func(i int, h http.Handler) http.Handler {
		a := &abortingHandler{inner: h}
		mu.Lock()
		aborters = append(aborters, a)
		mu.Unlock()
		return a
	})
	want := singleHost(t, urls[3], sweep, "ndjson")

	// The victim must own >= 2 jobs so the abort strands some. Backends
	// use workers=1 via the coordinator? No: the abort is line-counted,
	// not timing-based, so any worker count works.
	assign, err := Partition(sweep.Jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := 0
	for b, idxs := range assign {
		if len(idxs) > len(assign[victim]) {
			victim = b
		}
	}
	if len(assign[victim]) < 2 {
		t.Fatalf("victim backend %d owns %d jobs; need >= 2 (%v)", victim, len(assign[victim]), assign)
	}
	aborters[victim].armed.Store(true)

	var lost, redispatched atomic.Int64
	coord, err := New(Options{
		Backends: urls[:3],
		// Static mode (no chunking/stealing): the victim's whole range
		// is one stream, so the exact retried-count assertion below —
		// every undelivered job of the range re-dispatches — stays
		// meaningful. Chunked failure accounting is covered by the
		// property suite and TestStalledBackendMidSweep.
		StealChunk: -1,
		// workers=1 keeps each backend's emission on the HTTP handler
		// goroutine, so the aborting writer's http.ErrAbortHandler panic
		// is recovered by net/http (a real process kill is exercised by
		// the cmd/simgrid e2e test).
		Workers: 1,
		Observe: func(ev Event) {
			switch ev.Kind {
			case EventBackendLost:
				lost.Add(1)
			case EventRedispatch:
				redispatched.Add(int64(ev.Jobs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &got)
	if err != nil {
		t.Fatal(err)
	}
	if lost.Load() == 0 {
		t.Fatal("victim backend was never lost — the abort did not fire")
	}
	if stats.Retried == 0 || redispatched.Load() == 0 {
		t.Fatalf("no jobs were re-dispatched after the mid-sweep abort (stats %+v)", stats)
	}
	if stats.Retried != len(assign[victim])-1 {
		t.Errorf("retried %d jobs, want the victim's %d undelivered",
			stats.Retried, len(assign[victim])-1)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged NDJSON after mid-sweep failure differs from single host\n got: %s\nwant: %s",
			firstDiffLine(got.Bytes(), want), firstDiffLine(want, got.Bytes()))
	}

	// CSV with the victim already dead (connection-level failure on a
	// fresh submission): the whole range redistributes, bytes hold.
	wantCSV := singleHost(t, urls[3], sweep, "csv")
	deadCoord, err := New(Options{Backends: []string{urls[0], "http://127.0.0.1:1", urls[2]}})
	if err != nil {
		t.Fatal(err)
	}
	var csvOut bytes.Buffer
	stats, err = deadCoord.Run(context.Background(), sweep, FormatCSV, &csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackendsLost != 1 {
		t.Errorf("BackendsLost = %d, want 1", stats.BackendsLost)
	}
	if !bytes.Equal(csvOut.Bytes(), wantCSV) {
		t.Errorf("merged CSV with a dead backend differs from single host\n got: %s\nwant: %s",
			firstDiffLine(csvOut.Bytes(), wantCSV), firstDiffLine(wantCSV, csvOut.Bytes()))
	}
}

// TestMalformedBackendStream: a peer that violates the stream contract
// (indices out of order / out of range) is a backend failure — its
// range retries on a well-behaved survivor, the process never panics,
// and the merged bytes still match a single host.
func TestMalformedBackendStream(t *testing.T) {
	sweep := testSweep(t)
	var goodURL string
	urls := bootBackends(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		// Backend 0 speaks a broken dialect: a correct header, then
		// result lines with absurd indices.
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost || !strings.HasPrefix(r.URL.Path, "/v1/sweeps") {
				h.ServeHTTP(w, r)
				return
			}
			sub, err := wire.DecodeSweep(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			enc := json.NewEncoder(w)
			_ = enc.Encode(wire.StreamHeader{Version: wire.V1, ID: "bogus", Jobs: len(sub.Jobs)})
			for range sub.Jobs {
				_ = enc.Encode(wire.Result{Index: 999, Err: "nonsense"})
			}
		})
	})
	goodURL = urls[1]
	want := singleHost(t, goodURL, sweep, "ndjson")

	coord, err := New(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackendsLost != 1 {
		t.Errorf("BackendsLost = %d, want the malformed backend only", stats.BackendsLost)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged stream with a malformed backend differs from single host\n got: %s\nwant: %s",
			firstDiffLine(got.Bytes(), want), firstDiffLine(want, got.Bytes()))
	}
}

// TestAllBackendsDown and the attempt budget: a run that cannot place
// its jobs must fail loudly, never emit a partial stream as success.
func TestAllBackendsDown(t *testing.T) {
	sweep := testSweep(t)
	coord, err := New(Options{Backends: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := coord.Run(context.Background(), sweep, FormatNDJSON, &out); err == nil {
		t.Fatal("run with every backend down reported success")
	}
}

// TestRejectionIsFatal: an admission rejection (4xx) must fail the run
// immediately instead of being retried across every backend.
func TestRejectionIsFatal(t *testing.T) {
	urls := bootBackends(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "grid has too many jobs", http.StatusRequestEntityTooLarge)
		})
	})
	coord, err := New(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	var redispatches atomic.Int64
	coord.opts.Observe = func(ev Event) {
		if ev.Kind == EventRedispatch {
			redispatches.Add(1)
		}
	}
	var out bytes.Buffer
	_, err = coord.Run(context.Background(), testSweep(t), FormatNDJSON, &out)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("want a rejection error, got %v", err)
	}
	if redispatches.Load() != 0 {
		t.Errorf("a 4xx rejection was re-dispatched %d times", redispatches.Load())
	}
}

// TestBisectThroughCoordinator: the coordinator shards each refinement
// round across the backends with deterministic per-γ affinity, so a
// repeat request replays every shard from a warm backend cache; killing
// a backend fails its shards over to survivors.
func TestBisectThroughCoordinator(t *testing.T) {
	urls := bootBackends(t, 3, nil)
	coord, err := New(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := goldencases.All()[0].Config()
	if err != nil {
		t.Fatal(err)
	}
	wcfg, err := wire.FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := wire.BisectRequest{
		Version:    wire.V1,
		Job:        wire.Job{Rounds: 120, Config: wcfg},
		GammaLo:    0.01,
		GammaHi:    1.0 / 16,
		TargetBand: 8,
		MaxEvals:   32,
	}
	ctx := context.Background()
	first, err := coord.Bisect(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Evals == 0 || len(first.Cells) != first.Evals {
		t.Fatalf("bad first response: %+v", first)
	}
	again, err := coord.Bisect(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != again.Evals {
		t.Errorf("repeat bisect hit %d of %d cells; affinity should make it all-cached",
			again.CacheHits, again.Evals)
	}

	// Failover: replace the owning backend with a dead address; the
	// request must still succeed on a survivor (cold cache).
	h, err := wire.BisectHash(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerIndex(t, h, len(urls))
	broken := append([]string(nil), urls...)
	broken[owner] = "http://127.0.0.1:1"
	failover, err := New(Options{Backends: broken})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := failover.Bisect(ctx, req)
	if err != nil {
		t.Fatalf("bisect failover: %v", err)
	}
	if resp.Evals != first.Evals {
		t.Errorf("failover response evaluated %d cells, owner evaluated %d", resp.Evals, first.Evals)
	}
}

// ownerIndex mirrors Bisect's affinity computation.
func ownerIndex(t *testing.T, hash string, n int) int {
	t.Helper()
	v, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return int(v / (^uint64(0)/uint64(n) + 1))
}
