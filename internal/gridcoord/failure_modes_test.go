package gridcoord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskalloc/internal/simserver/client"
	"taskalloc/internal/wire"
)

// Failure-mode coverage for the two transient backend pathologies the
// transport alone cannot classify: a 429 rate-limit rejection (the one
// retryable 4xx) and a stream that stays open but stops delivering.

// fastSweep is a grid of cheap deterministic jobs: small enough that
// healthy backends finish in milliseconds, so stall timeouts can stay
// short without racing real compute.
func fastSweep(seedBase uint64, jobs int) wire.Sweep {
	sweep := wire.Sweep{Version: wire.V1}
	for i := 0; i < jobs; i++ {
		sweep.Jobs = append(sweep.Jobs, propJob(seedBase+uint64(i)))
	}
	return sweep
}

// victimWithJobs picks the backend owning the largest equal-range slice.
func victimWithJobs(t *testing.T, sweep wire.Sweep, n int) (int, [][]int) {
	t.Helper()
	assign, err := Partition(sweep.Jobs, n)
	if err != nil {
		t.Fatal(err)
	}
	victim := 0
	for b, idxs := range assign {
		if len(idxs) > len(assign[victim]) {
			victim = b
		}
	}
	if len(assign[victim]) == 0 {
		t.Fatalf("no backend owns any job: %v", assign)
	}
	return victim, assign
}

// TestRateLimited429MidSweep: a backend that starts 429ing mid-sweep is
// a transient loss, not a fatal rejection — its range re-dispatches to
// the survivors, the typed RateLimitError (with the server's
// Retry-After) surfaces on the lost event, the terminal done event
// still fires for the failed stream, and the merged bytes stay
// identical to the single-host response.
func TestRateLimited429MidSweep(t *testing.T) {
	sweep := fastSweep(7100, 16)
	const retryAfter = 1500 * time.Millisecond

	victim, assign := victimWithJobs(t, sweep, 3)
	var armed atomic.Bool
	armed.Store(true)
	urls := bootBackends(t, 4, func(i int, h http.Handler) http.Handler {
		if i != victim {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && armed.CompareAndSwap(true, false) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(wire.ErrorBody{
					Error:        "tenant rate limited",
					Kind:         "rate_limited",
					RetryAfterMS: retryAfter.Milliseconds(),
				})
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	want := singleHost(t, urls[3], sweep, "ndjson")

	var (
		evMu       sync.Mutex
		lostEvents []Event
		doneEvents []Event
		redispatch int
	)
	coord, err := New(Options{
		Backends: urls[:3],
		// Static mode: the victim's whole range is one stream, so the
		// exact retried-count assertion below holds.
		StealChunk: -1,
		Observe: func(ev Event) {
			evMu.Lock()
			defer evMu.Unlock()
			switch {
			case ev.Kind == EventBackendLost:
				lostEvents = append(lostEvents, ev)
			case ev.Kind == EventRedispatch:
				redispatch++
			case ev.Kind == EventBackendDone && ev.Backend == victim:
				doneEvents = append(doneEvents, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &got)
	if err != nil {
		t.Fatalf("429 must re-dispatch, not fail the run: %v", err)
	}
	if stats.BackendsLost != 1 || stats.Retried != len(assign[victim]) {
		t.Fatalf("stats = %+v, want backend %d lost with its %d jobs retried",
			stats, victim, len(assign[victim]))
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged stream after a 429 differs from single host (%d vs %d bytes)",
			got.Len(), len(want))
	}

	evMu.Lock()
	defer evMu.Unlock()
	if len(lostEvents) != 1 || lostEvents[0].Backend != victim {
		t.Fatalf("lost events %+v, want exactly one for backend %d", lostEvents, victim)
	}
	var rle *client.RateLimitError
	if !errors.As(lostEvents[0].Err, &rle) {
		t.Fatalf("lost event error %v, want a typed *client.RateLimitError", lostEvents[0].Err)
	}
	if rle.RetryAfter != retryAfter {
		t.Errorf("RateLimitError.RetryAfter = %v, want the server's %v", rle.RetryAfter, retryAfter)
	}
	if redispatch == 0 {
		t.Error("no EventRedispatch observed after the 429")
	}
	if len(doneEvents) != 1 {
		t.Fatalf("victim reported %d done events, want exactly 1 (the rejected stream)", len(doneEvents))
	}
	if ev := doneEvents[0]; ev.Err == nil || ev.Jobs != 0 {
		t.Errorf("victim done event %+v, want err != nil and 0 delivered", ev)
	}
}

// TestStalledBackendMidSweep: a backend that accepts the sub-sweep and
// then goes silent — stream open, no results — never surfaces a
// transport error on its own, so the coordinator's StallTimeout
// watchdog must cancel the stream, re-dispatch the undelivered range,
// fire the terminal done event for the dead stream, and keep the merged
// bytes identical to the single-host response.
func TestStalledBackendMidSweep(t *testing.T) {
	sweep := fastSweep(7300, 16)
	victim, assign := victimWithJobs(t, sweep, 3)

	var armed atomic.Bool
	armed.Store(true)
	urls := bootBackends(t, 4, func(i int, h http.Handler) http.Handler {
		if i != victim {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && armed.CompareAndSwap(true, false) {
				// A convincing stall: the stream header goes out (the
				// request was accepted), then silence until the client
				// hangs up.
				w.Header().Set("Content-Type", "application/x-ndjson")
				_ = json.NewEncoder(w).Encode(wire.StreamHeader{
					Version: wire.V1, ID: "stall", Jobs: 999,
				})
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	want := singleHost(t, urls[3], sweep, "ndjson")

	var (
		evMu       sync.Mutex
		lostEvents []Event
		doneEvents []Event
	)
	coord, err := New(Options{
		Backends:     urls[:3],
		StealChunk:   -1,
		StallTimeout: time.Second,
		Observe: func(ev Event) {
			evMu.Lock()
			defer evMu.Unlock()
			switch {
			case ev.Kind == EventBackendLost:
				lostEvents = append(lostEvents, ev)
			case ev.Kind == EventBackendDone && ev.Backend == victim:
				doneEvents = append(doneEvents, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	start := time.Now()
	stats, err := coord.Run(context.Background(), sweep, FormatNDJSON, &got)
	if err != nil {
		t.Fatalf("a stalled backend must re-dispatch, not fail the run: %v", err)
	}
	if stats.BackendsLost != 1 || stats.Retried != len(assign[victim]) {
		t.Fatalf("stats = %+v, want backend %d lost with its %d jobs retried",
			stats, victim, len(assign[victim]))
	}
	// The watchdog, not some longer transport timeout, must have cut the
	// stream: the whole run bounds at the stall timeout plus fast-grid
	// compute, far under the test's own deadline.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("run took %v; the stall watchdog did not fire", elapsed)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged stream after a stalled backend differs from single host (%d vs %d bytes)",
			got.Len(), len(want))
	}

	evMu.Lock()
	defer evMu.Unlock()
	if len(lostEvents) != 1 || lostEvents[0].Backend != victim {
		t.Fatalf("lost events %+v, want exactly one for backend %d", lostEvents, victim)
	}
	if msg := lostEvents[0].Err.Error(); !bytes.Contains([]byte(msg), []byte("stalled")) {
		t.Errorf("lost event error %q does not attribute the failure to a stall", msg)
	}
	if len(doneEvents) != 1 {
		t.Fatalf("victim reported %d done events, want exactly 1 (the stalled stream)", len(doneEvents))
	}
	if ev := doneEvents[0]; ev.Err == nil || ev.Jobs != 0 {
		t.Errorf("victim done event %+v, want err != nil and 0 delivered", ev)
	}
}
