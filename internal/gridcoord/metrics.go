package gridcoord

import (
	"strconv"
	"time"

	"taskalloc/internal/obs"
)

// gridMetrics is the coordinator's own telemetry: run counts, failure
// handling, and per-backend delivery/stream-latency/throughput series
// (backend label = index into Options.Backends, the same index every
// Event carries). Families register on Options.Registry when the
// caller provides one — cmd/simgrid serves it on its own /v1/metrics —
// and on a private throwaway registry otherwise, so the recording path
// is unconditional. Metric names register once: give each Coordinator
// its own Registry.
type gridMetrics struct {
	sweeps       *obs.Counter
	bisects      *obs.Counter
	redispatches *obs.Counter
	retried      *obs.Counter
	lost         *obs.Counter
	steals       *obs.Counter

	// Per-backend children, indexed like Options.Backends.
	delivered  []*obs.Counter
	streamSecs []*obs.Histogram
	throughput []*obs.Gauge
	assigned   []*obs.Gauge
}

func newGridMetrics(r *obs.Registry, backends int) *gridMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	m := &gridMetrics{
		sweeps: r.Counter("taskalloc_grid_sweeps_total",
			"Sweeps sharded across the backend set."),
		bisects: r.Counter("taskalloc_grid_bisects_total",
			"Bisect requests forwarded by behavioral-hash affinity."),
		redispatches: r.Counter("taskalloc_grid_redispatches_total",
			"Failed ranges re-submitted to a surviving backend."),
		retried: r.Counter("taskalloc_grid_jobs_retried_total",
			"Job re-submissions after backend failures."),
		lost: r.Counter("taskalloc_grid_backends_lost_total",
			"Backends marked dead during runs."),
		steals: r.Counter("taskalloc_grid_steals_total",
			"Job chunks claimed from another backend's queue (work stealing)."),
	}
	deliveredVec := r.CounterVec("taskalloc_grid_jobs_delivered_total",
		"Job results delivered, by backend index.", "backend")
	streamVec := r.HistogramVec("taskalloc_grid_backend_stream_seconds",
		"Wall-clock duration of one backend sub-sweep stream.", nil, "backend")
	thrVec := r.GaugeVec("taskalloc_grid_backend_throughput_jobs_per_second",
		"Observed delivery rate of the backend's most recent stream.", "backend")
	assignedVec := r.GaugeVec("taskalloc_grid_backend_assigned_jobs",
		"Jobs currently assigned to the backend (initial range minus stolen away plus stolen in), for the most recent run.", "backend")
	for b := 0; b < backends; b++ {
		lbl := strconv.Itoa(b)
		m.delivered = append(m.delivered, deliveredVec.With(lbl))
		m.streamSecs = append(m.streamSecs, streamVec.With(lbl))
		m.throughput = append(m.throughput, thrVec.With(lbl))
		m.assigned = append(m.assigned, assignedVec.With(lbl))
	}
	return m
}

// streamDone records one finished backend stream: jobs delivered, the
// stream's wall-clock duration, and the observed throughput (jobs per
// second over the stream, 0 for an instant or empty stream).
func (m *gridMetrics) streamDone(b, delivered int, elapsed time.Duration) {
	m.delivered[b].Add(uint64(delivered))
	m.streamSecs[b].Observe(elapsed.Seconds())
	if secs := elapsed.Seconds(); secs > 0 && delivered > 0 {
		m.throughput[b].Set(float64(delivered) / secs)
	} else {
		m.throughput[b].Set(0)
	}
}
