package gridcoord

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"taskalloc/internal/simserver"
	"taskalloc/internal/wire"
)

// The heterogeneous-fleet benchmark pair: the same 3-backend grid with
// one backend 10x slower per job (the simserver JobDelay test hook),
// run under the static equal-range partitioner and under the adaptive
// scheduler (auto chunking + work stealing + learned weights). The
// adaptive ns/op beating the static one is the scheduler's headline
// claim, recorded in BENCH_7.json.

// benchGrid boots 3 in-process backends with the given per-job delays
// and returns a Coordinator over them.
func benchGrid(b *testing.B, delays []time.Duration, opts Options) *Coordinator {
	b.Helper()
	urls := make([]string, len(delays))
	for i, d := range delays {
		srv := simserver.New(simserver.Options{Workers: 1, JobDelay: d})
		b.Cleanup(srv.Close)
		ts := httptest.NewServer(srv)
		b.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	opts.Backends = urls
	opts.Workers = 1
	coord, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	return coord
}

// chaosBenchSweep builds a fresh 24-job grid per iteration (distinct
// seeds, so no backend cache hit ever shortcuts the delay hook).
func chaosBenchSweep(iter int) wire.Sweep {
	sweep := wire.Sweep{Version: wire.V1}
	base := uint64(iter)*1000 + 500_000
	for i := 0; i < 24; i++ {
		j := propJob(base + uint64(i))
		j.Meta = []string{"bench", fmt.Sprint(base + uint64(i))}
		sweep.Jobs = append(sweep.Jobs, j)
	}
	return sweep
}

var benchDelays = []time.Duration{
	2 * time.Millisecond, 20 * time.Millisecond, 2 * time.Millisecond,
}

// BenchmarkGridStaticSlowBackend: equal hash ranges, no stealing — the
// 10x-slow backend's range gates the whole run.
func BenchmarkGridStaticSlowBackend(b *testing.B) {
	coord := benchGrid(b, benchDelays, Options{StealChunk: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Run(context.Background(), chaosBenchSweep(i), FormatNDJSON, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridAdaptiveSlowBackend: auto chunking, work stealing, and
// throughput learned across iterations — fast backends drain the slow
// one's queue, so the run bounds near the fast backends' rate.
func BenchmarkGridAdaptiveSlowBackend(b *testing.B) {
	coord := benchGrid(b, benchDelays, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Run(context.Background(), chaosBenchSweep(i), FormatNDJSON, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
