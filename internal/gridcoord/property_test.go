package gridcoord

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"taskalloc"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// The property layer: randomized partition weights, steal granularities,
// per-line backend delays, and injected mid-stream aborts — every
// schedule must produce the same output bytes, deliver every job exactly
// once per attempt, and keep the stats ledger consistent with the
// observed events.

// propJob builds one deterministic sweep job; the fake backend's result
// is a pure function of it, so any backend computes identical bytes.
func propJob(seed uint64) wire.Job {
	return wire.Job{
		Meta:   []string{"seed", fmt.Sprint(seed)},
		Rounds: 100,
		Config: wire.Config{
			Ants:    100,
			Demands: []int{40, 50},
			Gamma:   1.0 / 32,
			Seed:    seed,
			Shards:  1,
		},
	}
}

// fakeCell is the deterministic per-job outcome the fake backends
// stream: dyadic floats only, so the JSON round trip through the
// merger is byte-stable by construction.
func fakeCell(local int, j wire.Job) wire.Result {
	seed := j.Config.Seed
	rep := taskalloc.Report{
		Rounds:      uint64(j.Rounds),
		TotalRegret: int64(seed * 7),
		AvgRegret:   float64(seed%97) / 8,
		StdRegret:   float64(seed%11) / 4,
		PeakRegret:  int(seed % 31),
		Closeness:   float64(seed%13) / 16,
		GammaStar:   1.0 / 16,
	}
	return wire.Result{Index: local, Meta: j.Meta, Report: &rep}
}

// fakeBackend serves POST /v1/sweeps with fakeCell lines. Per-iteration
// chaos knobs: a per-line delay, and a one-shot abort that kills the
// first stream after a chosen number of lines (the next request serves
// normally — the coordinator should have re-dispatched the remainder).
type fakeBackend struct {
	mu         sync.Mutex
	lineDelay  time.Duration
	abortAfter int // lines before the one-shot abort; -1 = never
}

// arm resets the chaos knobs for one property iteration.
func (f *fakeBackend) arm(lineDelay time.Duration, abortAfter int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lineDelay = lineDelay
	f.abortAfter = abortAfter
}

func (f *fakeBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	sweep, err := wire.DecodeSweep(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	delay := f.lineDelay
	abortAt := -1
	if f.abortAfter >= 0 {
		abortAt = f.abortAfter
		f.abortAfter = -1
	}
	f.mu.Unlock()

	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	_ = enc.Encode(wire.StreamHeader{Version: wire.V1, ID: id, Jobs: len(sweep.Jobs)})
	fl, _ := w.(http.Flusher)
	for k, j := range sweep.Jobs {
		if abortAt >= 0 && k >= abortAt {
			if fl != nil {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		_ = enc.Encode(fakeCell(k, j))
		if fl != nil {
			fl.Flush()
		}
	}
}

// expectedNDJSON renders the single-host NDJSON response for the fake
// backend's deterministic results: the merged grid stream must equal
// it byte for byte under every schedule.
func expectedNDJSON(t *testing.T, sweep wire.Sweep) []byte {
	t.Helper()
	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(wire.StreamHeader{Version: wire.V1, ID: id, Jobs: len(sweep.Jobs)}); err != nil {
		t.Fatal(err)
	}
	for i, j := range sweep.Jobs {
		if err := enc.Encode(fakeCell(i, j)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// expectedCSV is the single-host CSV rendering of the same results.
func expectedCSV(t *testing.T, sweep wire.Sweep) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(sweeprun.CSVHeader()); err != nil {
		t.Fatal(err)
	}
	for i, j := range sweep.Jobs {
		res := fakeCell(i, j)
		if err := w.Write(sweeprun.CSVRow(res.Meta, *res.Report, j.Rounds)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	return buf.Bytes()
}

// TestRandomizedStealSchedules is the scheduler's property suite: 1000
// randomized (weights, chunk size, per-backend speed, mid-stream abort)
// schedules against fake backends whose results are pure functions of
// the job. Every schedule must (a) merge byte-identically to the
// single-host rendering, (b) deliver each job exactly once, and (c)
// keep Stats consistent with the observed event stream — steals counted
// one-to-one, delivered counts summing to the grid.
func TestRandomizedStealSchedules(t *testing.T) {
	const n = 3
	fakes := make([]*fakeBackend, n)
	urls := make([]string, n)
	for b := 0; b < n; b++ {
		fakes[b] = &fakeBackend{abortAfter: -1}
		ts := httptest.NewServer(fakes[b])
		t.Cleanup(ts.Close)
		urls[b] = ts.URL
	}

	iters := 1000
	if testing.Short() {
		iters = 100
	}
	rng := rand.New(rand.NewSource(443))
	for it := 0; it < iters; it++ {
		sweep := wire.Sweep{Version: wire.V1}
		jobs := 5 + rng.Intn(20)
		seedBase := uint64(it)*1000 + 1
		for i := 0; i < jobs; i++ {
			sweep.Jobs = append(sweep.Jobs, propJob(seedBase+uint64(i)))
		}
		weights := make([]float64, n)
		for b := range weights {
			weights[b] = 0.1 + rng.Float64()*3.9
		}
		stealChunk := rng.Intn(4) // 0 = auto
		for b := range fakes {
			var delay time.Duration
			if rng.Intn(2) == 0 {
				delay = time.Duration(rng.Intn(300)) * time.Microsecond
			}
			abortAfter := -1
			if b == rng.Intn(n) && rng.Float64() < 0.3 {
				abortAfter = rng.Intn(4)
			}
			fakes[b].arm(delay, abortAfter)
		}

		var (
			evMu       sync.Mutex
			perJob     = make([]int, jobs)
			stealSeen  int
			stealsMove int
		)
		coord, err := New(Options{
			Backends:   urls,
			Weights:    weights,
			StealChunk: stealChunk,
			Attempts:   4,
			Observe: func(ev Event) {
				evMu.Lock()
				defer evMu.Unlock()
				switch ev.Kind {
				case EventResult:
					perJob[ev.Index]++
				case EventSteal:
					stealSeen++
					stealsMove += ev.Jobs
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		format, want := FormatNDJSON, expectedNDJSON(t, sweep)
		if rng.Intn(4) == 0 {
			format, want = FormatCSV, expectedCSV(t, sweep)
		}
		var got bytes.Buffer
		stats, err := coord.Run(context.Background(), sweep, format, &got)
		if err != nil {
			t.Fatalf("iter %d (chunk=%d weights=%v): %v", it, stealChunk, weights, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("iter %d (chunk=%d weights=%v): merged %s differs from single host (%d vs %d bytes)",
				it, stealChunk, weights, format, got.Len(), len(want))
		}
		evMu.Lock()
		for i, c := range perJob {
			if c != 1 {
				t.Fatalf("iter %d: job %d delivered %d times, want exactly once", it, i, c)
			}
		}
		if stats.Steals != stealSeen {
			t.Fatalf("iter %d: Stats.Steals = %d but %d EventSteal observed", it, stats.Steals, stealSeen)
		}
		if stealsMove > jobs {
			t.Fatalf("iter %d: steal events moved %d jobs, more than the %d-job grid", it, stealsMove, jobs)
		}
		evMu.Unlock()
		total := 0
		for _, d := range stats.Delivered {
			total += d
		}
		if total != jobs {
			t.Fatalf("iter %d: Delivered sums to %d for %d jobs", it, total, jobs)
		}
	}
}

// TestPartitionWeightedProperties: 1000 random weight vectors over a
// fixed grid — every assignment must cover each job exactly once, keep
// each backend's indices ascending (the range-order the chunker relies
// on), and be a pure function of its inputs.
func TestPartitionWeightedProperties(t *testing.T) {
	const jobs, n = 50, 4
	sweep := make([]wire.Job, jobs)
	for i := range sweep {
		sweep[i] = propJob(uint64(9000 + i))
	}
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 1000; it++ {
		weights := make([]float64, n)
		for b := range weights {
			weights[b] = 0.1 + rng.Float64()*3.9
		}
		// A sprinkle of invalid entries: they must be repaired (mean
		// substitution), never panic or drop jobs.
		if it%7 == 0 {
			weights[rng.Intn(n)] = 0
		}
		assign, err := PartitionWeighted(sweep, n, weights)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, jobs)
		for b, idxs := range assign {
			for k, i := range idxs {
				seen[i]++
				if k > 0 && idxs[k-1] >= i {
					t.Fatalf("iter %d: backend %d indices not ascending: %v", it, b, idxs)
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("iter %d: job %d assigned %d times (weights %v)", it, i, c, weights)
			}
		}
		again, err := PartitionWeighted(sweep, n, weights)
		if err != nil {
			t.Fatal(err)
		}
		for b := range assign {
			if len(assign[b]) != len(again[b]) {
				t.Fatalf("iter %d: assignment not deterministic for backend %d", it, b)
			}
			for k := range assign[b] {
				if assign[b][k] != again[b][k] {
					t.Fatalf("iter %d: assignment not deterministic for backend %d", it, b)
				}
			}
		}
	}

	// A dominant weight owns almost the whole hash space, so it must own
	// the bulk of any non-adversarial grid.
	assign, err := PartitionWeighted(sweep, 3, []float64{1000, 0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign[0]) < jobs*9/10 {
		t.Fatalf("dominant-weight backend got %d of %d jobs", len(assign[0]), jobs)
	}
}
