// Package gridcoord is the multi-host grid coordinator: it shards one
// wire-format sweep across several simulation-service backends
// (cmd/simserve instances) by canonical job-hash range, streams each
// backend's NDJSON response through the typed client, and merges the
// per-backend streams into one output that is byte-identical to the
// same sweep run on a single host — at any backend count, in both the
// NDJSON and CSV formats.
//
// Placement is adaptive. The initial partition assigns job i to the
// backend whose slice of the 64-bit hash space contains the leading
// bits of wire.SemanticHash(job) — the behavioral hash, under which
// equivalent spellings of one job (a frozen snapshot and its generative
// schedule, say) collapse to the same key — with slice widths sized by
// per-backend throughput weights (explicit, or learned from the
// previous run's observed delivery rates; equal when cold). Each
// backend's range is split into chunks that its worker streams in range
// order; a worker that drains its own queue steals pending chunks from
// the most-loaded peer's tail. Stealing moves only jobs that have not
// started streaming, so no job ever runs twice because of a steal, and
// the merged output is byte-identical at any steal schedule: the
// collector orders results by global job index, never by arrival.
//
// Failure handling: when a backend dies mid-chunk (transport error,
// truncated stream), the chunk's undelivered jobs are re-queued on the
// next surviving backend, bounded by a per-job attempt budget; the dead
// backend's pending chunks redistribute through the same stealing path
// at no attempt cost. Results already delivered are kept — each job
// runs at most once per attempt, and the merged order never depends on
// timing, so output bytes are identical whether or not a retry
// happened. Rejections (HTTP 4xx other than 429) are not retried: a
// backend that rejects a sub-sweep would reject it identically
// everywhere.
//
// Adaptive grids: Bisect runs the shared refinement search
// (internal/bisect) on the coordinator and shards each round's midpoint
// batch across all backends by per-γ hash affinity — the search path is
// deterministic, so a repeat request replays every γ from the backends'
// warm job caches. SweepStatus fans a completed run's summary query out
// to the backends that streamed its chunks and fuses the results into
// the single-host response; Handler serves both over HTTP.
package gridcoord

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"taskalloc/internal/obs"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// Format selects the merged output rendering.
type Format string

// The two merged output formats. Both are byte-identical to the same
// format served by a single backend for the whole sweep.
const (
	FormatNDJSON Format = "ndjson"
	FormatCSV    Format = "csv"
)

// Options configures a Coordinator.
type Options struct {
	// Backends are the simulation-service base URLs (e.g.
	// "http://127.0.0.1:8080"). Their order defines the hash-range
	// assignment, so it must be identical across submissions for the
	// backend caches to stay warm.
	Backends []string
	// HTTPClient is used for every backend call; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Workers is the per-backend ?workers override (0 = backend
	// default). Never changes the merged bytes.
	Workers int
	// Attempts is the per-job attempt budget across retries; <= 0
	// means 3. A job that fails its last attempt fails the whole run
	// (partial output would silently diverge from a single-host run).
	Attempts int
	// Weights sizes the initial hash ranges: backend b's slice of the
	// hash space is Weights[b]/sum(Weights) of it. Nil (or a length
	// mismatch) falls back to throughput learned from this
	// Coordinator's previous run, and to equal ranges when cold.
	// Entries that are zero, negative, or non-finite are replaced by
	// the mean of the valid ones.
	Weights []float64
	// StealChunk is the work-stealing granularity in jobs: each
	// backend's range is split into chunks of this size, and idle
	// backends steal pending chunks from the most-loaded peer. 0 picks
	// a size automatically (about a quarter of the mean range, at least
	// 1); negative disables stealing entirely — each range streams as
	// one static chunk, the pre-adaptive behavior.
	StealChunk int
	// StallTimeout aborts a backend stream that delivers no result for
	// this long (the transport alone cannot detect a peer that accepts
	// the request and then hangs); the chunk's undelivered jobs
	// re-dispatch under the attempt budget. 0 disables the watchdog.
	StallTimeout time.Duration
	// MaxBisectEvals is the default evaluation budget stamped on bisect
	// requests that leave max_evals 0, mirroring the backends' own
	// default; <= 0 means 128.
	MaxBisectEvals int
	// Observe, if non-nil, receives progress events (results delivered,
	// chunks stolen, backends lost, ranges re-dispatched). Called from
	// coordinator goroutines; it must be safe for concurrent use.
	Observe func(Event)
	// Token is the tenant bearer token sent to every backend (each
	// backend call authenticates as the coordinator's tenant). Empty
	// for open backends.
	Token string
	// Registry, if non-nil, receives the coordinator's metric families
	// (run counts, steals, redispatches, per-backend delivery/
	// stream-latency/throughput/assignment) for the caller to expose —
	// cmd/simgrid serves it on -metrics-addr. Families register at New,
	// so use one Registry per Coordinator. Nil records to a private,
	// unexposed registry.
	Registry *obs.Registry
}

// EventKind discriminates Event.
type EventKind int

// The event kinds Observe receives.
const (
	// EventResult: one job's result was delivered by a backend (before
	// merge emission).
	EventResult EventKind = iota
	// EventBackendLost: a backend failed; the failed chunk's
	// undelivered jobs will be re-dispatched if the attempt budget
	// allows.
	EventBackendLost
	// EventRedispatch: a failed chunk's remaining jobs were queued on a
	// surviving backend.
	EventRedispatch
	// EventBackendDone: one backend sub-sweep stream ended. Emitted
	// exactly once per launched stream — success or failure, even when
	// the backend died before delivering its first job — with the
	// delivered count, the stream's wall-clock duration, and the
	// failure (nil on success).
	EventBackendDone
	// EventSteal: an idle backend claimed a pending chunk from another
	// backend's queue (From) before streaming it itself.
	EventSteal
)

// Event is one coordinator progress notification.
type Event struct {
	// Kind says what happened.
	Kind EventKind
	// Backend is the backend index the event concerns.
	Backend int
	// From is the backend index a stolen chunk was queued on
	// (EventSteal only).
	From int
	// Index is the delivered job's global index (EventResult only).
	Index int
	// Jobs counts the jobs involved (EventBackendLost: undelivered;
	// EventRedispatch: re-queued; EventSteal: stolen; EventBackendDone:
	// delivered).
	Jobs int
	// Elapsed is the stream's wall-clock duration (EventBackendDone
	// only).
	Elapsed time.Duration
	// Err is the backend failure (EventBackendLost, and EventBackendDone
	// for a stream that ended in failure).
	Err error
}

// Stats summarizes one Run.
type Stats struct {
	// TraceID is the run's trace identifier, sent to every backend as
	// X-Trace-Id — grep it in the backends' request logs to follow one
	// sweep across the grid.
	TraceID string
	// JobsPerBackend is the initial hash-range assignment size per
	// backend (before any stealing).
	JobsPerBackend []int
	// Delivered counts the job results each backend actually delivered
	// (summing to the sweep size on success; redistributed under
	// stealing and failover).
	Delivered []int
	// Steals counts chunks claimed across backend queues.
	Steals int
	// Retried counts job re-submissions after backend failures.
	Retried int
	// BackendsLost counts backends marked dead during the run.
	BackendsLost int
}

// Coordinator shards sweeps across a fixed backend set. It is safe for
// concurrent use; each Run tracks backend health independently.
type Coordinator struct {
	opts    Options
	clients []*client.Client
	metrics *gridMetrics

	// wmu guards the throughput learned from completed runs (jobs per
	// second per backend), the cold-start fallback for Options.Weights.
	wmu     sync.Mutex
	learned []float64

	// rmu guards the completed-run registry SweepStatus fans out from.
	rmu      sync.Mutex
	runs     map[string]*runRecord
	runOrder []string
}

// New builds a Coordinator. At least one backend is required.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("gridcoord: need at least one backend")
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.MaxBisectEvals <= 0 {
		opts.MaxBisectEvals = 128
	}
	c := &Coordinator{opts: opts, runs: make(map[string]*runRecord)}
	for _, b := range opts.Backends {
		cl := client.New(b, opts.HTTPClient)
		if opts.Token != "" {
			cl = cl.WithToken(opts.Token)
		}
		c.clients = append(c.clients, cl)
	}
	c.metrics = newGridMetrics(opts.Registry, len(c.clients))
	return c, nil
}

// Partition assigns each job to one of n backends by behavioral
// job-hash range: the 64-bit prefix of wire.SemanticHash(job) falls
// into one of n equal slices of the hash space. The assignment is a
// pure function of (job's behavior, n) — re-submitting the same grid,
// or any behaviorally equivalent spelling of it, to the same backend
// count reproduces it exactly, so equivalent jobs land on the backend
// that already holds the result.
func Partition(jobs []wire.Job, n int) ([][]int, error) {
	return PartitionWeighted(jobs, n, nil)
}

// PartitionWeighted assigns each job to one of n backends by behavioral
// job-hash range, with slice widths proportional to weights (a faster
// backend gets a wider slice of the hash space and therefore, in
// expectation, proportionally more jobs). Nil weights, a length
// mismatch, or weights with no valid entry fall back to equal slices
// (exactly Partition's assignment); zero, negative, or non-finite
// entries are replaced by the mean of the valid ones. Like Partition,
// the assignment is a pure function of (job behaviors, n, weights).
func PartitionWeighted(jobs []wire.Job, n int, weights []float64) ([][]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridcoord: partition needs n >= 1, got %d", n)
	}
	bounds := weightBounds(weights, n)
	out := make([][]int, n)
	for i, j := range jobs {
		h, err := wire.SemanticHash(j)
		if err != nil {
			return nil, fmt.Errorf("gridcoord: jobs[%d]: %w", i, err)
		}
		var b int
		if bounds == nil {
			b, err = rangeIndex(h, n)
		} else {
			b, err = weightedIndex(h, bounds)
		}
		if err != nil {
			return nil, fmt.Errorf("gridcoord: jobs[%d]: %w", i, err)
		}
		out[b] = append(out[b], i)
	}
	return out, nil
}

// weightBounds converts throughput weights into the first n-1 exclusive
// upper boundaries of the hash space's slices (the last slice runs to
// the top). Nil means "use equal slices via rangeIndex" — returned for
// nil weights, a length mismatch, or no valid entry, so the unweighted
// path stays bit-exactly the historical assignment.
func weightBounds(weights []float64, n int) []uint64 {
	if len(weights) != n || n <= 1 {
		return nil
	}
	valid, sum := 0, 0.0
	for _, w := range weights {
		if w > 0 && !math.IsInf(w, 1) {
			valid++
			sum += w
		}
	}
	if valid == 0 {
		return nil
	}
	mean := sum / float64(valid)
	total := 0.0
	norm := make([]float64, n)
	for b, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			w = mean
		}
		norm[b] = w
		total += w
	}
	const maxU64 = float64(math.MaxUint64)
	bounds := make([]uint64, n-1)
	cum := 0.0
	for b := 0; b < n-1; b++ {
		cum += norm[b]
		fv := cum / total * (maxU64 + 1)
		if fv >= maxU64 {
			bounds[b] = math.MaxUint64
		} else {
			bounds[b] = uint64(fv)
		}
	}
	return bounds
}

// weightedIndex maps a canonical hash's 64-bit prefix to the slice
// whose boundary first exceeds it.
func weightedIndex(hash string, bounds []uint64) (int, error) {
	v, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("parse hash: %w", err)
	}
	return sort.Search(len(bounds), func(b int) bool { return v < bounds[b] }), nil
}

// rangeIndex maps a canonical hash's 64-bit prefix to one of n equal
// slices of the hash space.
func rangeIndex(hash string, n int) (int, error) {
	if n <= 1 {
		return 0, nil
	}
	v, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("parse hash: %w", err)
	}
	return int(v / (math.MaxUint64/uint64(n) + 1)), nil
}

// observe fires the Observe hook, if any.
func (c *Coordinator) observe(ev Event) {
	if c.opts.Observe != nil {
		c.opts.Observe(ev)
	}
}

// effectiveWeights picks the partition weights for one run: explicit
// Options.Weights when usable, else throughput learned from the
// previous run, else nil (equal ranges — the cold start).
func (c *Coordinator) effectiveWeights() []float64 {
	if len(c.opts.Weights) == len(c.clients) {
		return c.opts.Weights
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if len(c.learned) != len(c.clients) {
		return nil
	}
	w := make([]float64, len(c.learned))
	copy(w, c.learned)
	return w
}

// Throughput returns the per-backend delivery rates (jobs per second)
// learned from this Coordinator's most recent successful Run — the
// snapshot cmd/simgrid persists with -weights-file so the next process
// starts with warm placement. Nil before any run completes; entries for
// backends that delivered nothing are 0 (PartitionWeighted substitutes
// the mean).
func (c *Coordinator) Throughput() []float64 {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.learned == nil {
		return nil
	}
	w := make([]float64, len(c.learned))
	copy(w, c.learned)
	return w
}

// rates derives the run's observed per-backend delivery rates (jobs
// per second), the raw material for the learned partition weights.
func (st *runState) rates() []float64 {
	w := make([]float64, len(st.delivered))
	for b, d := range st.delivered {
		if d > 0 && st.streamSecs[b] > 0 {
			w[b] = float64(d) / st.streamSecs[b]
		}
	}
	return w
}

// chunkSizeFor picks the stealing granularity: the configured size, or
// about a quarter of the mean per-backend range (at least 1) — small
// enough that a 10×-slow backend sheds most of its range, large enough
// that per-chunk HTTP overhead stays negligible.
func (c *Coordinator) chunkSizeFor(jobs int) int {
	if c.opts.StealChunk > 0 {
		return c.opts.StealChunk
	}
	size := (jobs + 4*len(c.clients) - 1) / (4 * len(c.clients))
	if size < 1 {
		size = 1
	}
	return size
}

// Run shards sweep across the backends, merges the streams, and writes
// the rendered output to w. The bytes written are identical to the
// same sweep POSTed to one backend with the same format — the
// coordinator recomputes the semantic sweep hash (the service's public
// sweep ID) for the stream header, re-indexes each backend's local
// results to their global positions, and emits in strict job order —
// whatever partition weights, steal schedule, or failover path the run
// takes.
func (c *Coordinator) Run(ctx context.Context, sweep wire.Sweep, format Format, w io.Writer) (Stats, error) {
	if format != FormatNDJSON && format != FormatCSV {
		return Stats{}, fmt.Errorf("gridcoord: unknown format %q", format)
	}
	if sweep.Version == "" {
		sweep.Version = wire.V1
	}
	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		return Stats{}, err
	}
	assign, err := PartitionWeighted(sweep.Jobs, len(c.clients), c.effectiveWeights())
	if err != nil {
		return Stats{}, err
	}

	var m *merger
	switch format {
	case FormatCSV:
		m = newMerger(newCSVMerge(w, sweep.Jobs), len(sweep.Jobs))
	default:
		m = newMerger(newNDJSONMerge(w, wire.StreamHeader{
			Version: wire.V1, ID: id, Jobs: len(sweep.Jobs),
		}), len(sweep.Jobs))
	}

	// A fatal error (rejection, exhausted budget, no backends left)
	// cancels every in-flight backend stream: the run's outcome is
	// already decided, so finishing the merge would only delay the
	// report by the slowest sub-sweep.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One trace ID per run: every backend call this sweep makes carries
	// it as X-Trace-Id, so the backends' request logs can be joined on
	// it to reconstruct the whole grid run. Clients are copy-on-write,
	// so stamping is per-run, not per-Coordinator.
	traceID := obs.NewID()
	st := &runState{
		clients:    make([]*client.Client, len(c.clients)),
		queues:     make([][]chunk, len(c.clients)),
		alive:      make([]bool, len(c.clients)),
		attempts:   make([]int, len(sweep.Jobs)),
		delivered:  make([]int, len(c.clients)),
		streamSecs: make([]float64, len(c.clients)),
		assigned:   make([]int, len(c.clients)),
		stealOK:    c.opts.StealChunk >= 0,
		cancel:     cancel,
	}
	st.cond = sync.NewCond(&st.mu)
	for b, cl := range c.clients {
		st.clients[b] = cl.WithTraceID(traceID)
	}
	c.metrics.sweeps.Inc()
	stats := Stats{TraceID: traceID, JobsPerBackend: make([]int, len(c.clients))}
	chunkSize := c.chunkSizeFor(len(sweep.Jobs))
	for b, idxs := range assign {
		st.alive[b] = true
		st.assigned[b] = len(idxs)
		stats.JobsPerBackend[b] = len(idxs)
		c.metrics.assigned[b].Set(float64(len(idxs)))
		if st.stealOK {
			for len(idxs) > 0 {
				k := chunkSize
				if k > len(idxs) {
					k = len(idxs)
				}
				st.queues[b] = append(st.queues[b], chunk{idxs: idxs[:k]})
				idxs = idxs[k:]
			}
		} else if len(idxs) > 0 {
			st.queues[b] = []chunk{{idxs: idxs}}
		}
	}

	var wg sync.WaitGroup
	for b := range c.clients {
		wg.Add(1)
		go c.worker(ctx, &wg, st, m, sweep, b)
	}
	wg.Wait()

	st.mu.Lock()
	stats.Retried = st.retried
	stats.BackendsLost = st.lost
	stats.Steals = st.steals
	stats.Delivered = st.delivered
	fatal := st.fatal
	rates := st.rates()
	chunks := st.chunks
	st.mu.Unlock()
	if fatal != nil {
		return stats, fatal
	}
	if err := m.finish(); err != nil {
		return stats, err
	}
	// The run succeeded: fold its observed throughput into the learned
	// weights and register it for SweepStatus fan-out.
	c.wmu.Lock()
	c.learned = rates
	c.wmu.Unlock()
	c.recordRun(id, sweep.Jobs, chunks)
	return stats, nil
}

// chunk is one contiguous slice of a backend's assigned range: the unit
// of streaming, stealing, and failover. idxs are global job indices in
// ascending order.
type chunk struct {
	idxs []int
}

// chunkRecord remembers one successfully streamed chunk: which backend
// ran it, the sub-sweep's semantic hash (the backend's public sweep ID
// for it), and the global indices it covered — enough for SweepStatus
// to fan the summary query back out.
type chunkRecord struct {
	backend int
	id      string
	idxs    []int
}

// runState is one Run's shared scheduling state, plus the run's
// trace-stamped clients (one per backend, all carrying the run's
// X-Trace-Id).
type runState struct {
	clients []*client.Client

	mu         sync.Mutex
	cond       *sync.Cond // claimable-work / inflight-drained signal
	queues     [][]chunk  // pending chunks per backend, in range order
	alive      []bool
	attempts   []int
	delivered  []int     // per-backend delivered-result counts
	streamSecs []float64 // per-backend total stream wall-clock
	assigned   []int     // per-backend current assignment (steals move it)
	inflight   int       // chunks being streamed right now
	steals     int
	retried    int
	lost       int
	chunks     []chunkRecord
	stealOK    bool
	fatal      error
	cancel     context.CancelFunc // aborts in-flight streams on fatal
}

// fail records the run's fatal error (first one wins), cancels the
// in-flight backend streams, and wakes every waiting worker so they
// exit. Caller holds st.mu.
func (st *runState) fail(err error) {
	if st.fatal == nil {
		st.fatal = err
		st.cancel()
		st.cond.Broadcast()
	}
}

// claimLocked picks the next chunk for backend b: the head of its own
// queue, else — when stealing is enabled — the tail chunk of the peer
// with the most pending jobs (ties to the lowest index). Tail-stealing
// takes the work the owner is farthest from reaching. Caller holds
// st.mu.
func (st *runState) claimLocked(b int) (chunk, int, bool) {
	if q := st.queues[b]; len(q) > 0 {
		ch := q[0]
		st.queues[b] = q[1:]
		return ch, b, true
	}
	if !st.stealOK {
		return chunk{}, 0, false
	}
	victim, most := -1, 0
	for v := range st.queues {
		if v == b {
			continue
		}
		pending := 0
		for _, ch := range st.queues[v] {
			pending += len(ch.idxs)
		}
		if pending > most {
			victim, most = v, pending
		}
	}
	if victim == -1 {
		return chunk{}, 0, false
	}
	q := st.queues[victim]
	ch := q[len(q)-1]
	st.queues[victim] = q[:len(q)-1]
	return ch, victim, true
}

// worker is backend b's streaming loop: claim a chunk (own queue first,
// then steal), stream it, repeat — until the backend dies, the run
// fails, or no work remains anywhere and nothing is in flight (an
// in-flight chunk can still fail and re-queue, so idle workers wait
// rather than exit).
func (c *Coordinator) worker(ctx context.Context, wg *sync.WaitGroup, st *runState,
	m *merger, sweep wire.Sweep, b int) {
	defer wg.Done()
	for {
		st.mu.Lock()
		var (
			ch   chunk
			from int
		)
		for {
			if st.fatal != nil || !st.alive[b] {
				st.mu.Unlock()
				return
			}
			var ok bool
			if ch, from, ok = st.claimLocked(b); ok {
				break
			}
			if st.inflight == 0 {
				// Nothing pending, nothing in flight: the run is drained.
				// Wake the other idle workers so they see it too.
				st.cond.Broadcast()
				st.mu.Unlock()
				return
			}
			st.cond.Wait()
		}
		// Claim and accounting are one critical section: every job is
		// attempt-charged exactly once per stream it rides.
		for _, i := range ch.idxs {
			st.attempts[i]++
		}
		st.inflight++
		stolen := from != b
		if stolen {
			st.steals++
			st.assigned[from] -= len(ch.idxs)
			st.assigned[b] += len(ch.idxs)
			c.metrics.steals.Inc()
			c.metrics.assigned[from].Set(float64(st.assigned[from]))
			c.metrics.assigned[b].Set(float64(st.assigned[b]))
		}
		st.mu.Unlock()
		if stolen {
			c.observe(Event{Kind: EventSteal, Backend: b, From: from, Jobs: len(ch.idxs)})
		}

		c.stream(ctx, st, m, sweep, b, ch)

		// A failed stream re-queues its remainder inside stream (before
		// this decrement), so a waiter woken here always re-checks the
		// queues before concluding the run is drained.
		st.mu.Lock()
		st.inflight--
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// stream submits one chunk to backend b and delivers its results to the
// merger. On failure — transport error, broken stream order, stall —
// the undelivered remainder goes through chunkFailed.
func (c *Coordinator) stream(ctx context.Context, st *runState, m *merger,
	sweep wire.Sweep, b int, ch chunk) {
	sub := wire.Sweep{Version: wire.V1, Jobs: make([]wire.Job, len(ch.idxs))}
	for k, i := range ch.idxs {
		sub.Jobs[k] = sweep.Jobs[i]
	}
	delivered := 0
	start := time.Now()
	var protoErr error
	// The stall watchdog: a peer that accepts the request and then goes
	// silent never surfaces a transport error, so the coordinator
	// cancels the stream itself when no result lands for StallTimeout.
	sctx := ctx
	var stalled atomic.Bool
	var watchdog *time.Timer
	if d := c.opts.StallTimeout; d > 0 {
		var cancelStream context.CancelFunc
		sctx, cancelStream = context.WithCancel(ctx)
		defer cancelStream()
		watchdog = time.AfterFunc(d, func() {
			stalled.Store(true)
			cancelStream()
		})
		defer watchdog.Stop()
	}
	// DiscardResults: the merger owns buffering (released on emission),
	// so the client must not retain a second full copy.
	_, err := st.clients[b].SubmitSweep(sctx, sub,
		client.SubmitOptions{Workers: c.opts.Workers, DiscardResults: true},
		func(res wire.Result) {
			if watchdog != nil {
				watchdog.Reset(c.opts.StallTimeout)
			}
			// The service streams its sub-sweep strictly in order; a
			// line off that contract (a non-simserve peer, a
			// version-skewed binary, a mangling proxy) is a backend
			// failure like any other — never an index panic, and
			// never a result merged under the wrong job.
			if protoErr != nil {
				return
			}
			if res.Index != delivered {
				protoErr = fmt.Errorf("gridcoord: backend %d broke stream order: result index %d, want %d",
					b, res.Index, delivered)
				return
			}
			if delivered >= len(ch.idxs) {
				protoErr = fmt.Errorf("gridcoord: backend %d streamed more results than its %d jobs",
					b, len(ch.idxs))
				return
			}
			global := ch.idxs[res.Index]
			delivered++
			c.observe(Event{Kind: EventResult, Backend: b, Index: global})
			m.deliver(global, res)
		})
	if err == nil {
		err = protoErr
	}
	if err == nil && delivered != len(ch.idxs) {
		// A backend whose header under-claims the job count produces a
		// stream that decodes cleanly yet delivers too few results; left
		// unchecked, the shortfall would silently vanish from the merge.
		err = fmt.Errorf("gridcoord: backend %d stream ended after %d of %d results",
			b, delivered, len(ch.idxs))
	}
	if err != nil && stalled.Load() && ctx.Err() == nil {
		err = fmt.Errorf("gridcoord: backend %d stalled: no result in %v: %w",
			b, c.opts.StallTimeout, err)
	}
	elapsed := time.Since(start)
	st.mu.Lock()
	st.delivered[b] += delivered
	st.streamSecs[b] += elapsed.Seconds()
	st.mu.Unlock()
	c.metrics.streamDone(b, delivered, elapsed)
	// The terminal stream event fires on every path — a backend that
	// dies before its first delivered job still reports, with the
	// failure attached.
	c.observe(Event{Kind: EventBackendDone, Backend: b, Jobs: delivered, Elapsed: elapsed, Err: err})
	if err == nil {
		if subID, herr := wire.SemanticSweepHash(sub); herr == nil {
			st.mu.Lock()
			st.chunks = append(st.chunks, chunkRecord{backend: b, id: subID, idxs: ch.idxs})
			st.mu.Unlock()
		}
		return
	}
	remaining := ch.idxs[delivered:]
	c.observe(Event{Kind: EventBackendLost, Backend: b, Jobs: len(remaining), Err: err})
	c.chunkFailed(st, b, remaining, err)
}

// chunkFailed marks backend b dead and re-queues the failed chunk's
// undelivered jobs at the head of the next surviving backend's queue,
// honoring the per-job attempt budget. The dead backend's still-pending
// chunks stay where they are — the stealing path redistributes them at
// no attempt cost. Rejections (HTTP 4xx other than 429) are fatal
// immediately: every backend shares the admission rules, so a retry
// would be rejected identically.
func (c *Coordinator) chunkFailed(st *runState, b int, remaining []int, cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.alive[b] {
		st.alive[b] = false
		st.lost++
		c.metrics.lost.Inc()
	}
	if len(remaining) == 0 || st.fatal != nil {
		return
	}
	var apiErr *client.APIError
	if errors.As(cause, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
		apiErr.StatusCode != http.StatusTooManyRequests {
		// 429 is the one transient 4xx (a tenant rate limit refills on
		// its own); any other rejection is identical everywhere.
		st.fail(fmt.Errorf("gridcoord: backend %d rejected sub-sweep: %w", b, cause))
		return
	}
	for _, i := range remaining {
		if st.attempts[i] >= c.opts.Attempts {
			st.fail(fmt.Errorf("gridcoord: job %d exhausted its %d attempts (last: %w)",
				i, c.opts.Attempts, cause))
			return
		}
	}
	next := -1
	for k := 1; k <= len(st.alive); k++ {
		if cand := (b + k) % len(st.alive); st.alive[cand] {
			next = cand
			break
		}
	}
	if next == -1 {
		st.fail(fmt.Errorf("gridcoord: all backends failed (%d jobs undelivered; last: %w)",
			len(remaining), cause))
		return
	}
	st.retried += len(remaining)
	c.metrics.redispatches.Inc()
	c.metrics.retried.Add(uint64(len(remaining)))
	st.assigned[b] -= len(remaining)
	st.assigned[next] += len(remaining)
	c.metrics.assigned[b].Set(float64(st.assigned[b]))
	c.metrics.assigned[next].Set(float64(st.assigned[next]))
	st.queues[next] = append([]chunk{{idxs: remaining}}, st.queues[next]...)
	c.observe(Event{Kind: EventRedispatch, Backend: next, Jobs: len(remaining)})
	st.cond.Broadcast()
}

// --- merge: ordered collection + single-host-identical rendering ---

// mergeRenderer renders one result; calls arrive in strict global job
// order, serialized by the merger.
type mergeRenderer interface {
	result(global int, res wire.Result) error
	finish() error
}

// merger buffers out-of-order deliveries and emits the completed
// prefix in job order — sweeprun.Ordered's collection invariant,
// re-created across hosts. Emitted results are released immediately
// (trajectory-bearing results can be many MB each), so retained memory
// is bounded by the out-of-order window, not the sweep size.
type merger struct {
	mu        sync.Mutex
	results   []*wire.Result
	delivered []bool
	cursor    int
	render    mergeRenderer
	err       error
}

func newMerger(r mergeRenderer, n int) *merger {
	return &merger{results: make([]*wire.Result, n), delivered: make([]bool, n), render: r}
}

// deliver records global job index i's result and flushes the newly
// completed prefix. Duplicate deliveries (a retry racing a slow first
// stream) keep the first result; both attempts ran the identical job,
// so the bytes are the same either way.
func (m *merger) deliver(i int, res wire.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.delivered[i] {
		return
	}
	m.delivered[i] = true
	m.results[i] = &res
	for m.cursor < len(m.delivered) && m.delivered[m.cursor] {
		if m.err == nil {
			m.err = m.render.result(m.cursor, *m.results[m.cursor])
		}
		m.results[m.cursor] = nil
		m.cursor++
	}
}

// finish flushes the renderer and reports the first render error.
func (m *merger) finish() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return m.render.finish()
}

// ndjsonMerge re-emits the single-host NDJSON stream: the header line,
// then each result re-indexed to its global position. Decoding a
// backend's line and re-encoding it is byte-stable: Go's JSON encoder
// emits the shortest float representation that round-trips, and
// taskalloc.Report's NaN↔null mapping is symmetric.
type ndjsonMerge struct {
	enc *json.Encoder
	err error
}

func newNDJSONMerge(w io.Writer, header wire.StreamHeader) *ndjsonMerge {
	m := &ndjsonMerge{enc: json.NewEncoder(w)}
	m.err = m.enc.Encode(header)
	return m
}

func (m *ndjsonMerge) result(global int, res wire.Result) error {
	if m.err != nil {
		return m.err
	}
	res.Index = global
	if err := m.enc.Encode(res); err != nil {
		// Mirror the server renderer: a cell that cannot re-encode still
		// gets its line, as an error, deterministically.
		return m.enc.Encode(wire.Result{Index: global, Meta: res.Meta, Err: "encode: " + err.Error()})
	}
	return nil
}

func (m *ndjsonMerge) finish() error { return m.err }

// csvMerge re-emits the single-host CSV: the shared sweeprun header,
// then one row per successful cell in job order (failed cells skipped),
// through the same CSVRow helper the server and cmd/sweep render with.
type csvMerge struct {
	w    *csv.Writer
	jobs []wire.Job
}

func newCSVMerge(w io.Writer, jobs []wire.Job) *csvMerge {
	m := &csvMerge{w: csv.NewWriter(w), jobs: jobs}
	_ = m.w.Write(sweeprun.CSVHeader())
	return m
}

func (m *csvMerge) result(global int, res wire.Result) error {
	if res.Err != "" || res.Report == nil {
		return m.w.Error()
	}
	_ = m.w.Write(sweeprun.CSVRow(res.Meta, *res.Report, m.jobs[global].Rounds))
	return m.w.Error()
}

func (m *csvMerge) finish() error {
	m.w.Flush()
	return m.w.Error()
}
