// Package gridcoord is the multi-host grid coordinator: it shards one
// wire-format sweep across several simulation-service backends
// (cmd/simserve instances) by canonical job-hash range, streams each
// backend's NDJSON response through the typed client, and merges the
// per-backend streams into one output that is byte-identical to the
// same sweep run on a single host — at any backend count, in both the
// NDJSON and CSV formats.
//
// Partitioning is static: job i goes to the backend whose slice of the
// 64-bit hash space contains the leading bits of wire.SemanticHash(job)
// — the behavioral hash, under which equivalent spellings of one job
// (a frozen snapshot and its generative schedule, say) collapse to the
// same key. Static assignment keeps the placement deterministic and
// cache-friendly — an identical OR behaviorally equivalent
// re-submission sends every backend a sub-sweep it has already hashed
// and cached, so the whole grid replays from the backends' result
// caches even when the resubmitted document is spelled differently.
//
// Failure handling: when a backend dies mid-sweep (transport error,
// truncated stream), its undelivered jobs are re-submitted to the next
// surviving backend, bounded by a per-job attempt budget. Results
// already delivered are kept — each job runs at most once per attempt,
// and the merged order never depends on timing, so output bytes are
// identical whether or not a retry happened. Rejections (HTTP 4xx) are
// not retried: a backend that rejects a sub-sweep would reject it
// identically everywhere.
//
// Adaptive grids: Bisect forwards a γ-bisection request (POST
// /v1/bisect) to the backend that owns the request's behavioral hash
// (wire.SemanticBisectHash), failing over to the next surviving
// backend — so repeat or behaviorally equivalent bisections land on
// the backend whose job-level cache is already warm.
package gridcoord

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"taskalloc/internal/obs"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/sweeprun"
	"taskalloc/internal/wire"
)

// Format selects the merged output rendering.
type Format string

// The two merged output formats. Both are byte-identical to the same
// format served by a single backend for the whole sweep.
const (
	FormatNDJSON Format = "ndjson"
	FormatCSV    Format = "csv"
)

// Options configures a Coordinator.
type Options struct {
	// Backends are the simulation-service base URLs (e.g.
	// "http://127.0.0.1:8080"). Their order defines the hash-range
	// assignment, so it must be identical across submissions for the
	// backend caches to stay warm.
	Backends []string
	// HTTPClient is used for every backend call; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Workers is the per-backend ?workers override (0 = backend
	// default). Never changes the merged bytes.
	Workers int
	// Attempts is the per-job attempt budget across retries; <= 0
	// means 3. A job that fails its last attempt fails the whole run
	// (partial output would silently diverge from a single-host run).
	Attempts int
	// Observe, if non-nil, receives progress events (results delivered,
	// backends lost, ranges re-dispatched). Called from coordinator
	// goroutines; it must be safe for concurrent use.
	Observe func(Event)
	// Token is the tenant bearer token sent to every backend (each
	// backend call authenticates as the coordinator's tenant). Empty
	// for open backends.
	Token string
	// Registry, if non-nil, receives the coordinator's metric families
	// (run counts, redispatches, per-backend delivery/stream-latency/
	// throughput) for the caller to expose — cmd/simgrid serves it on
	// -metrics-addr. Families register at New, so use one Registry per
	// Coordinator. Nil records to a private, unexposed registry.
	Registry *obs.Registry
}

// EventKind discriminates Event.
type EventKind int

// The event kinds Observe receives.
const (
	// EventResult: one job's result was delivered by a backend (before
	// merge emission).
	EventResult EventKind = iota
	// EventBackendLost: a backend failed; its undelivered jobs will be
	// re-dispatched if the attempt budget allows.
	EventBackendLost
	// EventRedispatch: a failed range's remaining jobs were submitted
	// to a surviving backend.
	EventRedispatch
	// EventBackendDone: one backend sub-sweep stream ended. Emitted
	// exactly once per launched stream — success or failure, even when
	// the backend died before delivering its first job — with the
	// delivered count, the stream's wall-clock duration, and the
	// failure (nil on success).
	EventBackendDone
)

// Event is one coordinator progress notification.
type Event struct {
	// Kind says what happened.
	Kind EventKind
	// Backend is the backend index the event concerns.
	Backend int
	// Index is the delivered job's global index (EventResult only).
	Index int
	// Jobs counts the jobs involved (EventBackendLost: undelivered;
	// EventRedispatch: re-submitted; EventBackendDone: delivered).
	Jobs int
	// Elapsed is the stream's wall-clock duration (EventBackendDone
	// only).
	Elapsed time.Duration
	// Err is the backend failure (EventBackendLost, and EventBackendDone
	// for a stream that ended in failure).
	Err error
}

// Stats summarizes one Run.
type Stats struct {
	// TraceID is the run's trace identifier, sent to every backend as
	// X-Trace-Id — grep it in the backends' request logs to follow one
	// sweep across the grid.
	TraceID string
	// JobsPerBackend is the initial hash-range assignment size per
	// backend.
	JobsPerBackend []int
	// Delivered counts the job results each backend actually delivered
	// (summing to the sweep size on success; redistributed under
	// failover).
	Delivered []int
	// Retried counts job re-submissions after backend failures.
	Retried int
	// BackendsLost counts backends marked dead during the run.
	BackendsLost int
}

// Coordinator shards sweeps across a fixed backend set. It is safe for
// concurrent use; each Run tracks backend health independently.
type Coordinator struct {
	opts    Options
	clients []*client.Client
	metrics *gridMetrics
}

// New builds a Coordinator. At least one backend is required.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("gridcoord: need at least one backend")
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	c := &Coordinator{opts: opts}
	for _, b := range opts.Backends {
		cl := client.New(b, opts.HTTPClient)
		if opts.Token != "" {
			cl = cl.WithToken(opts.Token)
		}
		c.clients = append(c.clients, cl)
	}
	c.metrics = newGridMetrics(opts.Registry, len(c.clients))
	return c, nil
}

// Partition assigns each job to one of n backends by behavioral
// job-hash range: the 64-bit prefix of wire.SemanticHash(job) falls
// into one of n equal slices of the hash space. The assignment is a
// pure function of (job's behavior, n) — re-submitting the same grid,
// or any behaviorally equivalent spelling of it, to the same backend
// count reproduces it exactly, so equivalent jobs land on the backend
// that already holds the result.
func Partition(jobs []wire.Job, n int) ([][]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridcoord: partition needs n >= 1, got %d", n)
	}
	out := make([][]int, n)
	for i, j := range jobs {
		h, err := wire.SemanticHash(j)
		if err != nil {
			return nil, fmt.Errorf("gridcoord: jobs[%d]: %w", i, err)
		}
		b, err := rangeIndex(h, n)
		if err != nil {
			return nil, fmt.Errorf("gridcoord: jobs[%d]: %w", i, err)
		}
		out[b] = append(out[b], i)
	}
	return out, nil
}

// rangeIndex maps a canonical hash's 64-bit prefix to one of n equal
// slices of the hash space.
func rangeIndex(hash string, n int) (int, error) {
	if n <= 1 {
		return 0, nil
	}
	v, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("parse hash: %w", err)
	}
	return int(v / (math.MaxUint64/uint64(n) + 1)), nil
}

// observe fires the Observe hook, if any.
func (c *Coordinator) observe(ev Event) {
	if c.opts.Observe != nil {
		c.opts.Observe(ev)
	}
}

// Run shards sweep across the backends, merges the streams, and writes
// the rendered output to w. The bytes written are identical to the
// same sweep POSTed to one backend with the same format — the
// coordinator recomputes the semantic sweep hash (the service's public
// sweep ID) for the stream header, re-indexes each backend's local
// results to their global positions, and emits in strict job order.
func (c *Coordinator) Run(ctx context.Context, sweep wire.Sweep, format Format, w io.Writer) (Stats, error) {
	if format != FormatNDJSON && format != FormatCSV {
		return Stats{}, fmt.Errorf("gridcoord: unknown format %q", format)
	}
	if sweep.Version == "" {
		sweep.Version = wire.V1
	}
	id, err := wire.SemanticSweepHash(sweep)
	if err != nil {
		return Stats{}, err
	}
	assign, err := Partition(sweep.Jobs, len(c.clients))
	if err != nil {
		return Stats{}, err
	}

	var m *merger
	switch format {
	case FormatCSV:
		m = newMerger(newCSVMerge(w, sweep.Jobs), len(sweep.Jobs))
	default:
		m = newMerger(newNDJSONMerge(w, wire.StreamHeader{
			Version: wire.V1, ID: id, Jobs: len(sweep.Jobs),
		}), len(sweep.Jobs))
	}

	// A fatal error (rejection, exhausted budget, no backends left)
	// cancels every in-flight backend stream: the run's outcome is
	// already decided, so finishing the merge would only delay the
	// report by the slowest sub-sweep.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One trace ID per run: every backend call this sweep makes carries
	// it as X-Trace-Id, so the backends' request logs can be joined on
	// it to reconstruct the whole grid run. Clients are copy-on-write,
	// so stamping is per-run, not per-Coordinator.
	traceID := obs.NewID()
	st := &runState{
		clients:   make([]*client.Client, len(c.clients)),
		alive:     make([]bool, len(c.clients)),
		attempts:  make([]int, len(sweep.Jobs)),
		delivered: make([]int, len(c.clients)),
		cancel:    cancel,
	}
	for b, cl := range c.clients {
		st.clients[b] = cl.WithTraceID(traceID)
	}
	c.metrics.sweeps.Inc()
	stats := Stats{TraceID: traceID, JobsPerBackend: make([]int, len(c.clients))}
	for b, idxs := range assign {
		st.alive[b] = true
		stats.JobsPerBackend[b] = len(idxs)
	}

	var wg sync.WaitGroup
	for b, idxs := range assign {
		if len(idxs) == 0 {
			continue
		}
		for _, i := range idxs {
			st.attempts[i] = 1
		}
		c.launch(ctx, &wg, st, m, sweep, b, idxs)
	}
	wg.Wait()

	st.mu.Lock()
	stats.Retried = st.retried
	stats.BackendsLost = st.lost
	stats.Delivered = st.delivered
	fatal := st.fatal
	st.mu.Unlock()
	if fatal != nil {
		return stats, fatal
	}
	if err := m.finish(); err != nil {
		return stats, err
	}
	return stats, nil
}

// runState is one Run's shared failure-handling state, plus the run's
// trace-stamped clients (one per backend, all carrying the run's
// X-Trace-Id).
type runState struct {
	clients []*client.Client

	mu        sync.Mutex
	alive     []bool
	attempts  []int
	delivered []int // per-backend delivered-result counts
	retried   int
	lost      int
	fatal     error
	cancel    context.CancelFunc // aborts in-flight streams on fatal
}

// fail records the run's fatal error (first one wins) and cancels the
// in-flight backend streams. Caller holds st.mu.
func (st *runState) fail(err error) {
	if st.fatal == nil {
		st.fatal = err
		st.cancel()
	}
}

// launch submits the jobs at global indices idxs to backend b on a new
// goroutine, re-dispatching undelivered jobs on failure.
func (c *Coordinator) launch(ctx context.Context, wg *sync.WaitGroup, st *runState,
	m *merger, sweep wire.Sweep, b int, idxs []int) {
	sub := wire.Sweep{Version: wire.V1, Jobs: make([]wire.Job, len(idxs))}
	for k, i := range idxs {
		sub.Jobs[k] = sweep.Jobs[i]
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		delivered := 0
		start := time.Now()
		var protoErr error
		// DiscardResults: the merger owns buffering (released on
		// emission), so the client must not retain a second full copy.
		_, err := st.clients[b].SubmitSweep(ctx, sub,
			client.SubmitOptions{Workers: c.opts.Workers, DiscardResults: true},
			func(res wire.Result) {
				// The service streams its sub-sweep strictly in order; a
				// line off that contract (a non-simserve peer, a
				// version-skewed binary, a mangling proxy) is a backend
				// failure like any other — never an index panic, and
				// never a result merged under the wrong job.
				if protoErr != nil {
					return
				}
				if res.Index != delivered {
					protoErr = fmt.Errorf("gridcoord: backend %d broke stream order: result index %d, want %d",
						b, res.Index, delivered)
					return
				}
				if delivered >= len(idxs) {
					protoErr = fmt.Errorf("gridcoord: backend %d streamed more results than its %d jobs",
						b, len(idxs))
					return
				}
				global := idxs[res.Index]
				delivered++
				c.observe(Event{Kind: EventResult, Backend: b, Index: global})
				m.deliver(global, res)
			})
		if err == nil {
			err = protoErr
		}
		elapsed := time.Since(start)
		st.mu.Lock()
		st.delivered[b] += delivered
		st.mu.Unlock()
		c.metrics.streamDone(b, delivered, elapsed)
		// The terminal stream event fires on every path — a backend that
		// dies before its first delivered job still reports, with the
		// failure attached.
		c.observe(Event{Kind: EventBackendDone, Backend: b, Jobs: delivered, Elapsed: elapsed, Err: err})
		if err == nil {
			return
		}
		remaining := idxs[delivered:]
		c.observe(Event{Kind: EventBackendLost, Backend: b, Jobs: len(remaining), Err: err})
		c.redispatch(ctx, wg, st, m, sweep, b, remaining, err)
	}()
}

// redispatch marks backend b dead and re-submits its undelivered jobs
// to the next surviving backend, honoring the per-job attempt budget.
// Rejections (HTTP 4xx) are fatal immediately: every backend shares the
// admission rules, so a retry would be rejected identically.
func (c *Coordinator) redispatch(ctx context.Context, wg *sync.WaitGroup, st *runState,
	m *merger, sweep wire.Sweep, b int, remaining []int, cause error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.alive[b] {
		st.alive[b] = false
		st.lost++
		c.metrics.lost.Inc()
	}
	if len(remaining) == 0 {
		return
	}
	if st.fatal != nil {
		return
	}
	var apiErr *client.APIError
	if errors.As(cause, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
		apiErr.StatusCode != http.StatusTooManyRequests {
		// 429 is the one transient 4xx (a tenant rate limit refills on
		// its own); any other rejection is identical everywhere.
		st.fail(fmt.Errorf("gridcoord: backend %d rejected sub-sweep: %w", b, cause))
		return
	}
	next := -1
	for k := 1; k <= len(st.alive); k++ {
		if cand := (b + k) % len(st.alive); st.alive[cand] {
			next = cand
			break
		}
	}
	if next == -1 {
		st.fail(fmt.Errorf("gridcoord: all backends failed (%d jobs undelivered; last: %w)",
			len(remaining), cause))
		return
	}
	for _, i := range remaining {
		st.attempts[i]++
		if st.attempts[i] > c.opts.Attempts {
			st.fail(fmt.Errorf("gridcoord: job %d exhausted its %d attempts (last: %w)",
				i, c.opts.Attempts, cause))
			return
		}
	}
	st.retried += len(remaining)
	c.metrics.redispatches.Inc()
	c.metrics.retried.Add(uint64(len(remaining)))
	c.observe(Event{Kind: EventRedispatch, Backend: next, Jobs: len(remaining)})
	c.launch(ctx, wg, st, m, sweep, next, remaining)
}

// Bisect forwards a γ-bisection request to the backend that owns the
// request's behavioral hash, failing over to the next backend on
// transport or 5xx errors. Affinity is deterministic and semantic, so
// a repeat — or an equivalently spelled variant — of the same request
// reaches the same backend's warm job cache.
func (c *Coordinator) Bisect(ctx context.Context, req wire.BisectRequest) (*wire.BisectResponse, error) {
	h, err := wire.SemanticBisectHash(req)
	if err != nil {
		return nil, err
	}
	start, err := rangeIndex(h, len(c.clients))
	if err != nil {
		return nil, fmt.Errorf("gridcoord: %w", err)
	}
	c.metrics.bisects.Inc()
	traceID := obs.NewID()
	var lastErr error
	for k := 0; k < len(c.clients); k++ {
		b := (start + k) % len(c.clients)
		resp, err := c.clients[b].WithTraceID(traceID).Bisect(ctx, req)
		if err == nil {
			return resp, nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
			apiErr.StatusCode != http.StatusTooManyRequests {
			return nil, err // rejection: identical everywhere (429 is transient)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("gridcoord: all backends failed bisect: %w", lastErr)
}

// --- merge: ordered collection + single-host-identical rendering ---

// mergeRenderer renders one result; calls arrive in strict global job
// order, serialized by the merger.
type mergeRenderer interface {
	result(global int, res wire.Result) error
	finish() error
}

// merger buffers out-of-order deliveries and emits the completed
// prefix in job order — sweeprun.Ordered's collection invariant,
// re-created across hosts. Emitted results are released immediately
// (trajectory-bearing results can be many MB each), so retained memory
// is bounded by the out-of-order window, not the sweep size.
type merger struct {
	mu        sync.Mutex
	results   []*wire.Result
	delivered []bool
	cursor    int
	render    mergeRenderer
	err       error
}

func newMerger(r mergeRenderer, n int) *merger {
	return &merger{results: make([]*wire.Result, n), delivered: make([]bool, n), render: r}
}

// deliver records global job index i's result and flushes the newly
// completed prefix. Duplicate deliveries (a retry racing a slow first
// stream) keep the first result; both attempts ran the identical job,
// so the bytes are the same either way.
func (m *merger) deliver(i int, res wire.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.delivered[i] {
		return
	}
	m.delivered[i] = true
	m.results[i] = &res
	for m.cursor < len(m.delivered) && m.delivered[m.cursor] {
		if m.err == nil {
			m.err = m.render.result(m.cursor, *m.results[m.cursor])
		}
		m.results[m.cursor] = nil
		m.cursor++
	}
}

// finish flushes the renderer and reports the first render error.
func (m *merger) finish() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return m.render.finish()
}

// ndjsonMerge re-emits the single-host NDJSON stream: the header line,
// then each result re-indexed to its global position. Decoding a
// backend's line and re-encoding it is byte-stable: Go's JSON encoder
// emits the shortest float representation that round-trips, and
// taskalloc.Report's NaN↔null mapping is symmetric.
type ndjsonMerge struct {
	enc *json.Encoder
	err error
}

func newNDJSONMerge(w io.Writer, header wire.StreamHeader) *ndjsonMerge {
	m := &ndjsonMerge{enc: json.NewEncoder(w)}
	m.err = m.enc.Encode(header)
	return m
}

func (m *ndjsonMerge) result(global int, res wire.Result) error {
	if m.err != nil {
		return m.err
	}
	res.Index = global
	if err := m.enc.Encode(res); err != nil {
		// Mirror the server renderer: a cell that cannot re-encode still
		// gets its line, as an error, deterministically.
		return m.enc.Encode(wire.Result{Index: global, Meta: res.Meta, Err: "encode: " + err.Error()})
	}
	return nil
}

func (m *ndjsonMerge) finish() error { return m.err }

// csvMerge re-emits the single-host CSV: the shared sweeprun header,
// then one row per successful cell in job order (failed cells skipped),
// through the same CSVRow helper the server and cmd/sweep render with.
type csvMerge struct {
	w    *csv.Writer
	jobs []wire.Job
}

func newCSVMerge(w io.Writer, jobs []wire.Job) *csvMerge {
	m := &csvMerge{w: csv.NewWriter(w), jobs: jobs}
	_ = m.w.Write(sweeprun.CSVHeader())
	return m
}

func (m *csvMerge) result(global int, res wire.Result) error {
	if res.Err != "" || res.Report == nil {
		return m.w.Error()
	}
	_ = m.w.Write(sweeprun.CSVRow(res.Meta, *res.Report, m.jobs[global].Rounds))
	return m.w.Error()
}

func (m *csvMerge) finish() error {
	m.w.Flush()
	return m.w.Error()
}
