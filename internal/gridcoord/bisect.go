package gridcoord

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"taskalloc/internal/bisect"
	"taskalloc/internal/obs"
	"taskalloc/internal/simserver/client"
	"taskalloc/internal/wire"
)

// Sharded bisect: the coordinator runs the deterministic refinement
// search itself (internal/bisect — the same loop the backends run for
// POST /v1/bisect) and evaluates each round's γ batch by sharding it
// across ALL backends, one sub-sweep per owning backend, in parallel.
// Ownership is per-γ hash affinity over the cell's behavioral job hash
// — deliberately static, never weighted or stolen — so a repeat (or
// behaviorally equivalent) request sends every backend the exact
// sub-sweeps it has already cached: the whole search replays as sweep-
// cache hits, round by round, while a cold search gets every round's
// midpoints evaluated grid-wide instead of bottlenecked on one host.

// Bisect runs a γ-bisection request across the backend set, sharding
// each refinement round's midpoint batch over all backends by per-γ
// hash affinity, with failover to the next surviving backend per
// shard. The response is identical to the same request POSTed to one
// backend's /v1/bisect — same search path, same cells, same ID — and a
// repeat request is served entirely from the backends' caches.
func (c *Coordinator) Bisect(ctx context.Context, req wire.BisectRequest) (*wire.BisectResponse, error) {
	if req.Version == "" {
		req.Version = wire.V1
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Hash the request AS SENT — before the MaxEvals default — matching
	// the backends' response-ID convention, so coordinator and backend
	// agree on the public ID of one search.
	id, err := wire.SemanticBisectHash(req)
	if err != nil {
		return nil, err
	}
	if req.MaxEvals == 0 {
		req.MaxEvals = c.opts.MaxBisectEvals
	}
	req.Job.Trajectory = false // bisect cells never stream trajectories
	c.metrics.bisects.Inc()
	traceID := obs.NewID()
	clients := make([]*client.Client, len(c.clients))
	for b, cl := range c.clients {
		clients[b] = cl.WithTraceID(traceID)
	}
	resp, err := bisect.Run(req, c.shardEvaluator(ctx, clients, req))
	if err != nil {
		return nil, err
	}
	resp.Version = wire.V1
	resp.ID = id
	return &resp, nil
}

// shardEvaluator evaluates one refinement round's γ batch grid-wide:
// group the cells by owning backend (hash affinity over each cell's
// behavioral job hash), submit one sub-sweep per owner in parallel,
// and mark a group's cells Cached when its backend replayed the
// sub-sweep from cache (X-Sweep-Cache) — the signal bisect.Run's
// CacheHits accounting and the warm-hit classification build on.
func (c *Coordinator) shardEvaluator(ctx context.Context, clients []*client.Client, req wire.BisectRequest) bisect.Evaluator {
	return func(gammas []float64) ([]wire.BisectCell, error) {
		cells := make([]wire.BisectCell, len(gammas))
		jobs := make([]wire.Job, len(gammas))
		groups := make(map[int][]int)
		for k, g := range gammas {
			wj := req.Job
			cfg := wj.Config // value copy; Gamma override stays local
			cfg.Gamma = g
			wj.Config = cfg
			hash, err := wire.JobHash(wj)
			if err != nil {
				return nil, err
			}
			sem, err := wire.SemanticHash(wj)
			if err != nil {
				return nil, err
			}
			owner, err := rangeIndex(sem, len(clients))
			if err != nil {
				return nil, err
			}
			cells[k] = wire.BisectCell{Gamma: g, JobHash: hash}
			jobs[k] = wj
			groups[owner] = append(groups[owner], k)
		}
		owners := make([]int, 0, len(groups))
		for owner := range groups {
			owners = append(owners, owner)
		}
		sort.Ints(owners)

		var wg sync.WaitGroup
		errs := make([]error, len(owners))
		for gi, owner := range owners {
			wg.Add(1)
			go func(gi, owner int, poss []int) {
				defer wg.Done()
				errs[gi] = c.submitShard(ctx, clients, owner, poss, jobs, cells)
			}(gi, owner, groups[owner])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return cells, nil
	}
}

// submitShard runs one owner group's cells as a sub-sweep on the owning
// backend, failing over ((owner+k) mod n) on transport/5xx/429 errors.
// Results land in cells at the group's positions.
func (c *Coordinator) submitShard(ctx context.Context, clients []*client.Client,
	owner int, poss []int, jobs []wire.Job, cells []wire.BisectCell) error {
	sub := wire.Sweep{Version: wire.V1, Jobs: make([]wire.Job, len(poss))}
	for j, k := range poss {
		sub.Jobs[j] = jobs[k]
	}
	var lastErr error
	for k := 0; k < len(clients); k++ {
		b := (owner + k) % len(clients)
		subm, err := clients[b].SubmitSweep(ctx, sub, client.SubmitOptions{Workers: c.opts.Workers}, nil)
		if err == nil {
			if len(subm.Results) != len(poss) {
				return fmt.Errorf("gridcoord: backend %d returned %d results for %d bisect cells",
					b, len(subm.Results), len(poss))
			}
			for j, res := range subm.Results {
				cell := &cells[poss[j]]
				cell.Cached = subm.Cached
				if res.Err != "" {
					cell.Err = res.Err
				} else {
					cell.Report = res.Report
				}
			}
			return nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode >= 400 && apiErr.StatusCode < 500 &&
			apiErr.StatusCode != http.StatusTooManyRequests {
			return err // rejection: identical everywhere (429 is transient)
		}
		lastErr = err
	}
	return fmt.Errorf("gridcoord: all backends failed bisect shard: %w", lastErr)
}
