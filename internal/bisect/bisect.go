// Package bisect implements the deterministic γ-bisection refinement
// search shared by the simulation service (internal/simserver, which
// evaluates batches locally over its job-level result cache) and the
// grid coordinator (internal/gridcoord, which shards each batch across
// backends by hash affinity). The search itself is a pure function of
// the request plus the evaluated reports: segment order, midpoint
// arithmetic, and batch composition never depend on who evaluated a
// cell or how long it took, so every executor walks the identical γ
// sequence — which is what lets a repeat request replay entirely from
// caches, wherever those caches live.
package bisect

import (
	"fmt"
	"math"
	"sort"

	"taskalloc/internal/wire"
)

// GammaWidthFloor stops refining a segment whose γ width cannot
// meaningfully halve in float64 — without it, a regret band that never
// narrows (a noise floor) would burn the whole budget on one segment.
const GammaWidthFloor = 1e-9

// Evaluator evaluates one refinement round's γ batch, returning exactly
// one cell per γ, in batch order. Implementations set Cached on cells
// served from a cache (Run's CacheHits accounting counts them) and
// carry per-cell failures in the cell's Err field; a returned error
// aborts the whole search.
type Evaluator func(gammas []float64) ([]wire.BisectCell, error)

// segment is one live interval of the refinement loop, holding the
// evaluated cell indices of its endpoints.
type segment struct {
	lo, hi int // indices into cells
}

// Run executes the refinement search: evaluate the endpoints, then
// repeatedly evaluate the midpoints of every segment whose regret band
// — |ΔAvgRegret| across its endpoints — exceeds req.TargetBand, until
// every segment converges or req.MaxEvals is spent (the final round is
// truncated deterministically, leading segments first). req.MaxEvals
// must be positive: callers apply their own default before calling.
//
// The response carries Cells (sorted ascending by γ), Intervals (the
// final segmentation in γ order), Evals, CacheHits, and Converged;
// Version and ID are the caller's to stamp.
func Run(req wire.BisectRequest, eval Evaluator) (wire.BisectResponse, error) {
	var (
		resp  wire.BisectResponse
		cells []wire.BisectCell
	)
	regret := func(i int) float64 {
		if cells[i].Err != "" || cells[i].Report == nil {
			return math.NaN()
		}
		return cells[i].Report.AvgRegret
	}
	band := func(seg segment) float64 {
		return math.Abs(regret(seg.hi) - regret(seg.lo))
	}
	evaluate := func(gammas []float64) error {
		batch, err := eval(gammas)
		if err != nil {
			return err
		}
		if len(batch) != len(gammas) {
			return fmt.Errorf("bisect: evaluator returned %d cells for %d gammas",
				len(batch), len(gammas))
		}
		for _, c := range batch {
			resp.Evals++
			if c.Cached {
				resp.CacheHits++
			}
		}
		cells = append(cells, batch...)
		return nil
	}

	if err := evaluate([]float64{req.GammaLo, req.GammaHi}); err != nil {
		return wire.BisectResponse{}, err
	}
	segments := []segment{{lo: 0, hi: 1}}

	for {
		// Collect the midpoints of every refinable over-target segment;
		// segments stay sorted by γ, so the batch is deterministic.
		type split struct {
			seg int
			mid float64
		}
		var splits []split
		for i, seg := range segments {
			if b := band(seg); math.IsNaN(b) || b <= req.TargetBand {
				continue
			}
			lo, hi := cells[seg.lo].Gamma, cells[seg.hi].Gamma
			if hi-lo < GammaWidthFloor {
				continue
			}
			mid := (lo + hi) / 2
			if mid <= lo || mid >= hi {
				continue
			}
			splits = append(splits, split{seg: i, mid: mid})
		}
		if len(splits) == 0 {
			break
		}
		if budget := req.MaxEvals - resp.Evals; len(splits) > budget {
			// Budget exhausted mid-round: refine the leading segments
			// (deterministic truncation) and stop after this batch.
			if budget <= 0 {
				break
			}
			splits = splits[:budget]
		}
		gammas := make([]float64, len(splits))
		for i, sp := range splits {
			gammas[i] = sp.mid
		}
		first := len(cells)
		if err := evaluate(gammas); err != nil {
			return wire.BisectResponse{}, err
		}
		// Rebuild the segmentation with each split segment halved, in γ
		// order (splits are in ascending segment order already).
		next := make([]segment, 0, len(segments)+len(splits))
		si := 0
		for i, seg := range segments {
			if si < len(splits) && splits[si].seg == i {
				mid := first + si
				next = append(next, segment{lo: seg.lo, hi: mid}, segment{lo: mid, hi: seg.hi})
				si++
			} else {
				next = append(next, seg)
			}
		}
		segments = next
	}

	resp.Converged = true
	for _, seg := range segments {
		b := band(seg)
		resp.Intervals = append(resp.Intervals, wire.BisectInterval{
			Lo: cells[seg.lo].Gamma, Hi: cells[seg.hi].Gamma, Band: b,
		})
		if math.IsNaN(b) || b > req.TargetBand {
			resp.Converged = false
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Gamma < cells[j].Gamma })
	resp.Cells = cells
	return resp, nil
}
