// Package trace captures simulation time series (loads, deficits,
// regret) with optional downsampling and writes them as CSV or JSON for
// external plotting. A Trace doubles as a colony.Observer.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"taskalloc/internal/demand"
)

// Point is one recorded round.
type Point struct {
	Round  uint64 `json:"round"`
	Loads  []int  `json:"loads"`
	Demand []int  `json:"demand"`
	Regret int    `json:"regret"`
}

// Trace records a (possibly downsampled) trajectory. Construct with New.
// Not safe for concurrent use.
type Trace struct {
	k      int
	every  uint64
	max    int
	points []Point
}

// New builds a Trace for k tasks keeping one point per every rounds
// (every = 0 or 1 keeps all) and at most max points (0 means unlimited).
// When the cap is hit, the trace thins itself: it doubles the stride and
// drops every other retained point, so long runs keep uniform coverage.
func New(k int, every uint64, max int) *Trace {
	if k <= 0 {
		panic("trace: New needs k >= 1")
	}
	if every == 0 {
		every = 1
	}
	if max < 0 {
		max = 0
	}
	return &Trace{k: k, every: every, max: max}
}

// Observe implements the colony.Observer contract.
func (tr *Trace) Observe(t uint64, loads []int, dem demand.Vector) {
	if t%tr.every != 0 {
		return
	}
	if tr.max > 0 && len(tr.points) >= tr.max {
		tr.thin()
		if t%tr.every != 0 {
			return
		}
	}
	p := Point{
		Round:  t,
		Loads:  append([]int(nil), loads...),
		Demand: append([]int(nil), dem...),
	}
	for j, d := range p.Demand {
		diff := d - p.Loads[j]
		if diff < 0 {
			diff = -diff
		}
		p.Regret += diff
	}
	tr.points = append(tr.points, p)
}

// thin doubles the stride and keeps only points aligned to it, so the
// retained rounds stay uniformly spaced.
func (tr *Trace) thin() {
	tr.every *= 2
	kept := tr.points[:0]
	for _, p := range tr.points {
		if p.Round%tr.every == 0 {
			kept = append(kept, p)
		}
	}
	tr.points = kept
}

// Observer adapts the trace to the colony.Observer func type.
func (tr *Trace) Observer() func(t uint64, loads []int, dem demand.Vector) {
	return tr.Observe
}

// Len returns the number of stored points.
func (tr *Trace) Len() int { return len(tr.points) }

// Points returns the stored points (owned by the trace).
func (tr *Trace) Points() []Point { return tr.points }

// Stride returns the current sampling stride in rounds.
func (tr *Trace) Stride() uint64 { return tr.every }

// RegretSeries returns the regret of each stored point.
func (tr *Trace) RegretSeries() []int {
	out := make([]int, len(tr.points))
	for i, p := range tr.points {
		out[i] = p.Regret
	}
	return out
}

// LoadSeries returns the load of task j at each stored point.
func (tr *Trace) LoadSeries(j int) []int {
	if j < 0 || j >= tr.k {
		panic(fmt.Sprintf("trace: LoadSeries task %d outside [0,%d)", j, tr.k))
	}
	out := make([]int, len(tr.points))
	for i, p := range tr.points {
		out[i] = p.Loads[j]
	}
	return out
}

// DeficitSeries returns d(j) − W(j) at each stored point.
func (tr *Trace) DeficitSeries(j int) []int {
	if j < 0 || j >= tr.k {
		panic(fmt.Sprintf("trace: DeficitSeries task %d outside [0,%d)", j, tr.k))
	}
	out := make([]int, len(tr.points))
	for i, p := range tr.points {
		out[i] = p.Demand[j] - p.Loads[j]
	}
	return out
}

// WriteCSV writes "round,regret,load_0..,demand_0.." rows.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"round", "regret"}
	for j := 0; j < tr.k; j++ {
		header = append(header, "load_"+strconv.Itoa(j))
	}
	for j := 0; j < tr.k; j++ {
		header = append(header, "demand_"+strconv.Itoa(j))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, p := range tr.points {
		row = row[:0]
		row = append(row, strconv.FormatUint(p.Round, 10), strconv.Itoa(p.Regret))
		for _, l := range p.Loads {
			row = append(row, strconv.Itoa(l))
		}
		for _, d := range p.Demand {
			row = append(row, strconv.Itoa(d))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the points as a JSON array.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr.points)
}

// ReadJSON parses points previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Point, error) {
	var pts []Point
	if err := json.NewDecoder(r).Decode(&pts); err != nil {
		return nil, err
	}
	return pts, nil
}
