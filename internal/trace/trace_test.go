package trace

import (
	"bytes"
	"strings"
	"testing"

	"taskalloc/internal/demand"
)

func obs(tr *Trace, t uint64, loads ...int) {
	dem := demand.Vector{10, 20}
	tr.Observe(t, loads, dem)
}

func TestRecordAll(t *testing.T) {
	tr := New(2, 0, 0)
	obs(tr, 1, 5, 20)
	obs(tr, 2, 10, 25)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	p := tr.Points()[0]
	if p.Round != 1 || p.Regret != 5 {
		t.Fatalf("point %+v", p)
	}
	if tr.Points()[1].Regret != 5 {
		t.Fatalf("second regret %d, want 5", tr.Points()[1].Regret)
	}
}

func TestPointsAreCopies(t *testing.T) {
	tr := New(1, 1, 0)
	loads := []int{5}
	tr.Observe(1, loads, demand.Vector{10})
	loads[0] = 99
	if tr.Points()[0].Loads[0] != 5 {
		t.Fatal("trace aliased caller slice")
	}
}

func TestDownsampling(t *testing.T) {
	tr := New(1, 10, 0)
	for i := uint64(1); i <= 100; i++ {
		tr.Observe(i, []int{int(i)}, demand.Vector{50})
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	for i, p := range tr.Points() {
		if p.Round != uint64((i+1)*10) {
			t.Fatalf("point %d round %d", i, p.Round)
		}
	}
}

func TestThinningCap(t *testing.T) {
	tr := New(1, 1, 50)
	for i := uint64(1); i <= 1000; i++ {
		tr.Observe(i, []int{1}, demand.Vector{1})
	}
	if tr.Len() > 100 {
		t.Fatalf("Len = %d exceeds thinned cap", tr.Len())
	}
	if tr.Stride() < 2 {
		t.Fatalf("stride %d never doubled", tr.Stride())
	}
	// Retained rounds must be multiples of the final stride (uniform).
	for _, p := range tr.Points()[1:] {
		if p.Round%tr.Stride() != 0 {
			t.Fatalf("non-uniform retained round %d (stride %d)", p.Round, tr.Stride())
		}
	}
}

func TestSeriesAccessors(t *testing.T) {
	tr := New(2, 1, 0)
	obs(tr, 1, 4, 25)
	obs(tr, 2, 12, 15)
	if got := tr.RegretSeries(); got[0] != 11 || got[1] != 7 {
		t.Fatalf("regret series %v", got)
	}
	if got := tr.LoadSeries(0); got[0] != 4 || got[1] != 12 {
		t.Fatalf("load series %v", got)
	}
	if got := tr.DeficitSeries(1); got[0] != -5 || got[1] != 5 {
		t.Fatalf("deficit series %v", got)
	}
}

func TestSeriesPanics(t *testing.T) {
	tr := New(1, 1, 0)
	mustPanic(t, "LoadSeries", func() { tr.LoadSeries(1) })
	mustPanic(t, "DeficitSeries", func() { tr.DeficitSeries(-1) })
	mustPanic(t, "New k=0", func() { New(0, 1, 0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestWriteCSV(t *testing.T) {
	tr := New(2, 1, 0)
	obs(tr, 1, 5, 20)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines %d", len(lines))
	}
	if lines[0] != "round,regret,load_0,load_1,demand_0,demand_1" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1,5,5,20,10,20" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New(2, 1, 0)
	obs(tr, 1, 5, 20)
	obs(tr, 2, 11, 19)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("round-trip %d points", len(pts))
	}
	if pts[1].Round != 2 || pts[1].Loads[0] != 11 || pts[1].Regret != 2 {
		t.Fatalf("round-trip point %+v", pts[1])
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
