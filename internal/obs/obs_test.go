package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this doubles as the data-race gate for the hot path.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("taskalloc_test_total", "concurrent increments")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics: a value
// equal to an upper bound lands in that bucket (le is inclusive), one
// epsilon above lands in the next, and values past the last bound land
// only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("taskalloc_lat_seconds", "boundary test", []float64{0.01, 0.1, 1})
	h.Observe(0.01)  // == bound 0 → bucket le=0.01
	h.Observe(0.011) // just above → bucket le=0.1
	h.Observe(1)     // == last bound → bucket le=1
	h.Observe(5)     // beyond → +Inf only

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`taskalloc_lat_seconds_bucket{le="0.01"} 1`,
		`taskalloc_lat_seconds_bucket{le="0.1"} 2`,
		`taskalloc_lat_seconds_bucket{le="1"} 3`,
		`taskalloc_lat_seconds_bucket{le="+Inf"} 4`,
		`taskalloc_lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.01+0.011+1+5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

// TestHistogramConcurrent exercises Observe's CAS sum loop under
// contention (meaningful under -race and for the cumulative invariant).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("taskalloc_conc_seconds", "concurrent observe", nil)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	if want := float64(goroutines*per) * 0.001; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
}

// TestVecChildren checks label routing and child identity: the same
// label values return the same child, different values different ones.
func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("taskalloc_req_total", "requests", "route", "code")
	a := v.With("sweeps", "200")
	b := v.With("sweeps", "200")
	c := v.With("sweeps", "500")
	if a != b {
		t.Fatal("same label values returned distinct children")
	}
	if a == c {
		t.Fatal("distinct label values shared a child")
	}
	a.Add(2)
	c.Inc()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`taskalloc_req_total{route="sweeps",code="200"} 2`,
		`taskalloc_req_total{route="sweeps",code="500"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestGaugeAndFuncs covers gauge set/overwrite and collect-time funcs.
func TestGaugeAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("taskalloc_cache_bytes", "bytes held")
	g.Set(10)
	g.Set(3.5)
	n := 7.0
	r.GaugeFunc("taskalloc_entries", "live entries", func() float64 { return n })
	r.CounterFunc("taskalloc_appends_total", "appends", func() float64 { return 42 })
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"taskalloc_cache_bytes 3.5",
		"taskalloc_entries 7",
		"taskalloc_appends_total 42",
		"# TYPE taskalloc_appends_total counter",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryLintClean is the exposition-format self-check: a registry
// exercising every metric kind must pass Lint.
func TestRegistryLintClean(t *testing.T) {
	r := NewRegistry()
	r.Counter("taskalloc_a_total", "a").Inc()
	r.Gauge("taskalloc_b_bytes", "b").Set(1)
	r.Histogram("taskalloc_c_seconds", "c", nil).Observe(0.2)
	r.HistogramVec("taskalloc_d_seconds", "d", []float64{1, 2}, "stage").With("run").Observe(3)
	r.CounterVec("taskalloc_e_total", "e", "route").With(`with"quote\and
newline`).Inc()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if problems := Lint([]byte(b.String())); len(problems) != 0 {
		t.Fatalf("Lint problems on clean registry: %v\n%s", problems, b.String())
	}
}

// TestLintCatches guards the linter against passing malformed text.
func TestLintCatches(t *testing.T) {
	cases := map[string]string{
		"missing HELP": "# TYPE x_total counter\nx_total 1\n",
		"missing TYPE": "# HELP x_total x\nx_total 1\n",
		"duplicate family": "# HELP x_total x\n# TYPE x_total counter\nx_total 1\n" +
			"# HELP x_total x\n# TYPE x_total counter\nx_total 2\n",
		"non-cumulative buckets": "# HELP h_seconds h\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"1\"} 5\nh_seconds_bucket{le=\"+Inf\"} 3\n" +
			"h_seconds_sum 1\nh_seconds_count 3\n",
		"histogram missing +Inf": "# HELP h_seconds h\n# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"1\"} 5\nh_seconds_sum 1\nh_seconds_count 5\n",
		"sample without metadata": "orphan_total 3\n",
	}
	for name, text := range cases {
		if problems := Lint([]byte(text)); len(problems) == 0 {
			t.Errorf("%s: Lint passed malformed exposition:\n%s", name, text)
		}
	}
}

// TestDuplicateRegistrationPanics pins the fail-fast contract.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("taskalloc_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("taskalloc_x_total", "x again")
}

// TestObserveSince sanity-checks the time helper lands in a plausible
// bucket (it cannot be negative or wildly large for an immediate call).
func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("taskalloc_t_seconds", "t", nil)
	h.ObserveSince(time.Now())
	if h.Count() != 1 || h.Sum() < 0 || h.Sum() > 60 {
		t.Fatalf("ObserveSince recorded count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestNewID checks shape and uniqueness of minted IDs.
func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("NewID length: %q %q", a, b)
	}
	if a == b {
		t.Fatal("NewID returned duplicates")
	}
}
