package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition (version 0.0.4) against
// the invariants this package promises: every sample belongs to a
// family with both HELP and TYPE metadata, no family is declared
// twice, histogram bucket counts are cumulative and end in an +Inf
// bucket equal to _count, and every histogram carries _sum and _count.
// It returns one human-readable problem per violation (empty = clean).
// The simserver and gridcoord scrape tests run every /v1/metrics body
// through it, so the renderer and the linter keep each other honest.
func Lint(exposition []byte) []string {
	var problems []string
	type famState struct {
		typ     string
		hasHelp bool
		hasType bool
		// histogram bookkeeping, keyed by the non-le label signature
		buckets map[string][]bucketSample
		sums    map[string]bool
		counts  map[string]float64
	}
	fams := make(map[string]*famState)
	order := []string{}
	get := func(name string) *famState {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &famState{
			buckets: make(map[string][]bucketSample),
			sums:    make(map[string]bool),
			counts:  make(map[string]float64),
		}
		fams[name] = f
		order = append(order, name)
		return f
	}

	lines := strings.Split(string(exposition), "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.SplitN(line[2:], " ", 3)
			if len(fields) < 2 {
				problems = append(problems, fmt.Sprintf("line %d: malformed comment %q", lineNo, line))
				continue
			}
			switch fields[0] {
			case "HELP":
				f := get(fields[1])
				if f.hasHelp {
					problems = append(problems, fmt.Sprintf("line %d: duplicate HELP for family %s", lineNo, fields[1]))
				}
				f.hasHelp = true
			case "TYPE":
				if len(fields) != 3 {
					problems = append(problems, fmt.Sprintf("line %d: TYPE without a type: %q", lineNo, line))
					continue
				}
				f := get(fields[1])
				if f.hasType {
					problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for family %s", lineNo, fields[1]))
				}
				f.hasType = true
				f.typ = fields[2]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		// Resolve the sample's family: histogram samples carry
		// _bucket/_sum/_count suffixes on top of the family name.
		fam, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if bf, ok := fams[base]; ok && bf.typ == "histogram" {
					fam, suffix = base, sfx
					break
				}
			}
		}
		f, ok := fams[fam]
		if !ok || !f.hasHelp || !f.hasType {
			problems = append(problems, fmt.Sprintf("line %d: sample %s lacks HELP/TYPE metadata for family %s", lineNo, name, fam))
			continue
		}
		if f.typ == "histogram" {
			le, rest := splitLE(labels)
			switch suffix {
			case "_bucket":
				if le == "" {
					problems = append(problems, fmt.Sprintf("line %d: histogram bucket without le label: %q", lineNo, line))
					continue
				}
				f.buckets[rest] = append(f.buckets[rest], bucketSample{le: le, count: value, line: lineNo})
			case "_sum":
				f.sums[rest] = true
			case "_count":
				f.counts[rest] = value
			default:
				problems = append(problems, fmt.Sprintf("line %d: unexpected histogram sample %s", lineNo, name))
			}
		}
	}

	for _, name := range order {
		f := fams[name]
		if !f.hasHelp {
			problems = append(problems, fmt.Sprintf("family %s has no HELP", name))
		}
		if !f.hasType {
			problems = append(problems, fmt.Sprintf("family %s has no TYPE", name))
		}
		if f.typ != "histogram" {
			continue
		}
		series := make([]string, 0, len(f.buckets))
		for sig := range f.buckets {
			series = append(series, sig)
		}
		sort.Strings(series)
		for _, sig := range series {
			bs := f.buckets[sig]
			prev := math.Inf(-1)
			prevCount := -1.0
			sawInf := false
			for _, b := range bs {
				bound := math.Inf(1)
				if b.le != "+Inf" {
					v, err := strconv.ParseFloat(b.le, 64)
					if err != nil {
						problems = append(problems, fmt.Sprintf("line %d: histogram %s has unparseable le=%q", b.line, name, b.le))
						continue
					}
					bound = v
				} else {
					sawInf = true
				}
				if bound <= prev {
					problems = append(problems, fmt.Sprintf("line %d: histogram %s buckets out of order (le=%s)", b.line, name, b.le))
				}
				if b.count < prevCount {
					problems = append(problems, fmt.Sprintf("line %d: histogram %s bucket counts not cumulative (le=%s: %v < %v)", b.line, name, b.le, b.count, prevCount))
				}
				prev, prevCount = bound, b.count
			}
			if !sawInf {
				problems = append(problems, fmt.Sprintf("histogram %s{%s} has no +Inf bucket", name, sig))
			}
			total, ok := f.counts[sig]
			if !ok {
				problems = append(problems, fmt.Sprintf("histogram %s{%s} has no _count", name, sig))
			} else if sawInf && len(bs) > 0 && bs[len(bs)-1].count != total {
				problems = append(problems, fmt.Sprintf("histogram %s{%s}: +Inf bucket %v != _count %v", name, sig, bs[len(bs)-1].count, total))
			}
			if !f.sums[sig] {
				problems = append(problems, fmt.Sprintf("histogram %s{%s} has no _sum", name, sig))
			}
		}
	}
	return problems
}

// splitLE pulls the le="..." pair out of a raw label block, returning
// its value and the remaining label signature (used to group one
// histogram series' buckets with its _sum/_count).
func splitLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, pair)
	}
	return le, strings.Join(kept, ",")
}

// splitLabelPairs splits a label block on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	inQuote, escaped, start := false, false, 0
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, labels[start:i])
			start = i + 1
		}
	}
	return append(out, labels[start:])
}

// bucketSample is one parsed _bucket line of a histogram series.
type bucketSample struct {
	le    string
	count float64
	line  int
}

// parseSample splits a sample line into name, raw label block, value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", 0, fmt.Errorf("sample %q has no value", line)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("sample %q has unparseable value: %v", line, perr)
	}
	return name, labels, v, nil
}
