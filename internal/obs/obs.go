// Package obs is the repository's telemetry substrate: counters,
// gauges, and fixed-bucket latency histograms with atomic hot paths,
// collected in a Registry that renders the Prometheus text exposition
// format (version 0.0.4). It is stdlib-only by design — the container
// pins the toolchain — and allocation-free on the instrumentation hot
// path: Counter.Add, Gauge.Set, and Histogram.Observe touch only
// pre-allocated atomics, so per-job and per-cell instrumentation stays
// within benchmark noise of uninstrumented code.
//
// Naming conventions (DESIGN.md §14): every family is prefixed
// `taskalloc_`, counters end in `_total`, histograms measuring time
// end in `_seconds` and observe float64 seconds, gauges name the
// quantity directly (`_bytes`, `_entries`). Labels are closed, low-
// cardinality sets fixed at instrumentation time (route, stage,
// disposition, backend index) — never request-derived strings.
//
// Collection model: a Registry is per-component (one per simserver
// Server, one per gridcoord Coordinator), not global, so tests and
// multi-instance processes never share counters. Vec lookups
// (With/WithLabels) allocate on first use of a label combination and
// are intended for setup-time caching; the returned Counter/Gauge/
// Histogram handles are the hot-path objects.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricType discriminates a family's exposition TYPE line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotone cumulative count. The zero value is unusable;
// obtain one from Registry.Counter or CounterVec.With.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is unsigned: counters are monotone by contract).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: per-bucket atomic counts
// plus an atomic sum. Buckets are cumulative only at render time, so
// Observe touches exactly one bucket counter, the count, and the sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value (for latency histograms, float64 seconds).
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (<= ~20) and the slice is
	// cache-resident, so this beats binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince observes the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the histogram's upper bucket bounds (without +Inf).
// The returned slice is shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// DefBuckets is the default latency bucket layout, in seconds: fine
// sub-millisecond resolution for cache hits and render steps, coarse
// multi-second tail for full sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// series is one labeled child of a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
	fn          func() float64 // funcCounter / funcGauge
}

// family is one exposition family: name, help, type, label schema, and
// the child series in creation order.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	byKey  map[string]*series
	series []*series
}

// Registry collects families and renders them in the Prometheus text
// exposition format. Families render in registration order; a name
// can be registered only once (a duplicate panics — registration is
// setup-time code, and a silent merge would corrupt the exposition).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate or invalid name.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q in family %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	f.byKey = make(map[string]*series)
	r.byName[f.name] = f
	r.families = append(r.families, f)
	return f
}

// validName checks the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// child returns (creating if needed) the series for the label values.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: family %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or returns the existing) unlabeled counter family
// and returns its single child.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: typeCounter})
	return f.child(nil).c
}

// Gauge registers an unlabeled gauge family and returns its child.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: typeGauge})
	return f.child(nil).g
}

// GaugeFunc registers a gauge family whose single value is read from
// fn at collection time — for quantities another subsystem already
// tracks (cache sizes, store bytes). fn must be safe for concurrent
// use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeGauge})
	f.child(nil).fn = fn
}

// CounterFunc registers a counter family whose single value is read
// from fn at collection time. fn must be monotone and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeCounter})
	f.child(nil).fn = fn
}

// Histogram registers an unlabeled fixed-bucket histogram family and
// returns its child. buckets are ascending upper bounds (+Inf is
// implicit); nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: typeHistogram,
		buckets: normalizeBuckets(name, buckets)})
	return f.child(nil).h
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(&family{
		name: name, help: help, typ: typeCounter,
		labelNames: append([]string(nil), labelNames...),
	})}
}

// With returns the counter for the label values, creating it on first
// use. Intended for setup-time caching; the lookup takes a lock.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{
		name: name, help: help, typ: typeGauge,
		labelNames: append([]string(nil), labelNames...),
	})}
}

// With returns the gauge for the label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a labeled fixed-bucket histogram family. Every child
// shares the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; nil buckets means
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{
		name: name, help: help, typ: typeHistogram,
		buckets:    normalizeBuckets(name, buckets),
		labelNames: append([]string(nil), labelNames...),
	})}
}

// With returns the histogram for the label values, creating it on
// first use. Intended for setup-time caching.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// normalizeBuckets validates the bound layout (strictly ascending,
// finite) and applies the default.
func normalizeBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(out) {
		panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
	}
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && out[i-1] == b) {
			panic(fmt.Sprintf("obs: histogram %s has invalid bucket %v", name, b))
		}
	}
	return out
}

// Render writes every family in the Prometheus text exposition
// format, in registration order. It never fails on the formatting
// side; the error is the writer's.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP serves the exposition — mount it at GET /v1/metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.Render(w)
}

// render writes one family's HELP/TYPE lines and every series.
func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	for _, s := range series {
		switch {
		case s.fn != nil:
			sampleLine(b, f.name, f.labelNames, s.labelValues, "", "", s.fn())
		case f.typ == typeCounter:
			sampleLine(b, f.name, f.labelNames, s.labelValues, "", "", float64(s.c.Value()))
		case f.typ == typeGauge:
			sampleLine(b, f.name, f.labelNames, s.labelValues, "", "", s.g.Value())
		case f.typ == typeHistogram:
			h := s.h
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				sampleLine(b, f.name+"_bucket", f.labelNames, s.labelValues,
					"le", formatFloat(bound), float64(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			sampleLine(b, f.name+"_bucket", f.labelNames, s.labelValues, "le", "+Inf", float64(cum))
			sampleLine(b, f.name+"_sum", f.labelNames, s.labelValues, "", "", h.Sum())
			sampleLine(b, f.name+"_count", f.labelNames, s.labelValues, "", "", float64(h.Count()))
		}
	}
}

// sampleLine writes one sample with its label set (plus an optional
// trailing extra label, for histogram le).
func sampleLine(b *strings.Builder, name string, labelNames, labelValues []string,
	extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", ln, escapeLabel(labelValues[i]))
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraName, extraValue)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integers without a decimal
// point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value's backslashes and newlines (%q
// adds the quote escaping).
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

// NewID mints a 16-byte random hex identifier — the request and trace
// IDs the serving layers log and propagate (X-Request-Id, X-Trace-Id).
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// constant rather than panic in a logging path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
