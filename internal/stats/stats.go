// Package stats provides the small statistical toolkit the experiment
// harness uses to summarize repeated simulation runs: running moments,
// order statistics, confidence intervals, histograms, and a P² streaming
// quantile estimator for long trajectories that are too big to store.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates running moments. The zero value is ready to use.
type Summary struct {
	n              int
	mean, m2       float64
	min, max       float64
	hasObservation bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasObservation || x < s.min {
		s.min = x
	}
	if !s.hasObservation || x > s.max {
		s.max = x
	}
	s.hasObservation = true
}

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (NaN when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the unbiased sample variance (NaN for n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the minimum observation (NaN when empty).
func (s *Summary) Min() float64 {
	if !s.hasObservation {
		return math.NaN()
	}
	return s.min
}

// Max returns the maximum observation (NaN when empty).
func (s *Summary) Max() float64 {
	if !s.hasObservation {
		return math.NaN()
	}
	return s.max
}

// SE returns the standard error of the mean.
func (s *Summary) SE() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the normal-approximation 95% confidence half-width.
func (s *Summary) CI95() float64 { return 1.96 * s.SE() }

// String formats "mean ± ci95 [min, max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)",
		s.Mean(), s.CI95(), s.Min(), s.Max(), s.n)
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the middle order statistic (average of the two middle
// values for even length; NaN when empty). The input is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th empirical quantile (linear interpolation
// between order statistics, q in [0, 1]). NaN when empty or q invalid.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram builds a histogram with bins equal-width bins over
// [lo, hi). It panics on invalid ranges.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(lo < hi) || bins <= 0 {
		panic("stats: NewHistogram needs lo < hi and bins >= 1")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		b := int((x - h.Lo) / h.binWidth)
		if b >= len(h.Counts) { // float edge case at the top boundary
			b = len(h.Counts) - 1
		}
		h.Counts[b]++
	}
}

// Total returns the number of recorded observations including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// P2Quantile estimates a single quantile online with O(1) memory using
// the P² algorithm (Jain & Chlamtac 1985). Construct with NewP2Quantile.
type P2Quantile struct {
	p       float64
	count   int
	q       [5]float64 // marker heights
	n       [5]float64 // marker positions
	np      [5]float64 // desired positions
	dn      [5]float64 // position increments
	initial []float64
}

// NewP2Quantile estimates the p-th quantile, p in (0, 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: NewP2Quantile needs p in (0, 1)")
	}
	return &P2Quantile{p: p, initial: make([]float64, 0, 5)}
}

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.initial) < 5 {
		e.initial = append(e.initial, x)
		if len(e.initial) == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.q[i] = e.initial[i]
				e.n[i] = float64(i + 1)
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find the cell containing x and adjust extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers with parabolic (or linear) interpolation.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	return e.q[i] + d*(e.q[i+int(d)]-e.q[i])/(e.n[i+int(d)]-e.n[i])
}

// Value returns the current quantile estimate. Before five observations
// it falls back to the empirical quantile of what has been seen (NaN when
// empty).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return math.NaN()
	}
	if len(e.initial) < 5 {
		tmp := make([]float64, len(e.initial))
		copy(tmp, e.initial)
		return Quantile(tmp, e.p)
	}
	return e.q[2]
}

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.count }
