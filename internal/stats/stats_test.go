package stats

import (
	"math"
	"testing"
	"testing/quick"

	"taskalloc/internal/rng"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Var()) || !math.IsNaN(s.Min()) ||
		!math.IsNaN(s.Max()) || !math.IsNaN(s.SE()) {
		t.Fatal("empty summary should be all NaN")
	}
	if s.N() != 0 {
		t.Fatal("empty summary N != 0")
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("range [%v, %v]", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		n := int(seed%50) + 2
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			s.Add(xs[i])
		}
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianQuantile(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Fatal("empty slices should give NaN")
	}
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Median(xs) != 2 {
		t.Fatalf("Mean/Median of %v", xs)
	}
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); got != 2.5 {
		t.Fatalf("even median %v, want 2.5", got)
	}
	if got := Quantile(even, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(even, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(even, 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("q.25 = %v, want 1.75", got)
	}
	if !math.IsNaN(Quantile(even, -0.1)) || !math.IsNaN(Quantile(even, 1.1)) {
		t.Fatal("invalid q should give NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("outliers under=%d over=%d", h.Under, h.Over)
	}
	want := []int{2, 1, 0, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic(t, "lo>=hi", func() { NewHistogram(5, 5, 3) })
	mustPanic(t, "bins=0", func() { NewHistogram(0, 1, 0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestP2QuantileSmallCounts(t *testing.T) {
	e := NewP2Quantile(0.5)
	if !math.IsNaN(e.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	e.Add(3)
	e.Add(1)
	if got := e.Value(); got != 2 {
		t.Fatalf("two-element median %v, want 2", got)
	}
	if e.Count() != 2 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		e := NewP2Quantile(p)
		r := rng.New(uint64(p * 1000))
		const n = 200000
		for i := 0; i < n; i++ {
			e.Add(r.Float64()) // uniform: true quantile = p
		}
		if got := e.Value(); math.Abs(got-p) > 0.02 {
			t.Fatalf("P2(%v) estimate %v", p, got)
		}
	}
}

func TestP2QuantileNormal(t *testing.T) {
	e := NewP2Quantile(0.5)
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		e.Add(r.NormFloat64())
	}
	if got := e.Value(); math.Abs(got) > 0.03 {
		t.Fatalf("normal median estimate %v, want ~0", got)
	}
}

func TestP2QuantilePanics(t *testing.T) {
	mustPanic(t, "p=0", func() { NewP2Quantile(0) })
	mustPanic(t, "p=1", func() { NewP2Quantile(1) })
}

// TestQuantileMonotoneProperty: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(9)
	f := func(seed uint8) bool {
		n := int(seed%30) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
