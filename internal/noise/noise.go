// Package noise implements the paper's feedback models: the sigmoid
// stochastic model, the adversarial threshold model with pluggable
// grey-zone strategies, the noiseless binary model of Cornejo et al.
// (DISC 2014) as a baseline, and a correlated-noise wrapper (Remark 3.4).
//
// At the beginning of round t every ant receives, for every task j, a
// binary signal in {Lack, Overload} that depends on the deficit
// Δ(j) = d(j) − W(j) observed at time t−1. A Model describes, per round
// and per task, either a deterministic signal (all ants see the same
// thing) or a per-ant independent Bernoulli draw with a given Lack
// probability. The simulation engines consume that description; the
// mean-field engine additionally exploits the Bernoulli form directly.
package noise

import (
	"fmt"
	"math"
)

// Signal is the binary feedback an ant receives for one task.
type Signal uint8

const (
	// Lack means "this task needs more workers".
	Lack Signal = iota
	// Overload means "this task has too many workers".
	Overload
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case Lack:
		return "lack"
	case Overload:
		return "overload"
	default:
		return fmt.Sprintf("Signal(%d)", uint8(s))
	}
}

// Flip returns the opposite signal.
func (s Signal) Flip() Signal {
	if s == Lack {
		return Overload
	}
	return Lack
}

// TaskFeedback describes the feedback distribution for one task in one
// round. If Deterministic, every ant receives Value; otherwise each ant
// independently receives Lack with probability LackProb.
type TaskFeedback struct {
	Deterministic bool
	Value         Signal
	LackProb      float64
}

// Det returns a deterministic TaskFeedback.
func Det(v Signal) TaskFeedback { return TaskFeedback{Deterministic: true, Value: v} }

// Bern returns a per-ant Bernoulli TaskFeedback with the given Lack
// probability.
func Bern(lackProb float64) TaskFeedback { return TaskFeedback{LackProb: lackProb} }

// Env is the per-round information a model may condition on. Deficits and
// demands are indexed by task; Deficit[j] = d(j) − W(j) at time t−1.
type Env struct {
	Round   uint64
	Deficit []float64
	Demand  []int
}

// Model produces the feedback description for every task at the start of
// a round. Implementations must be deterministic functions of (their own
// state, env); per-ant randomness is expressed through Bernoulli
// TaskFeedback and drawn by the engine, which keeps models independent of
// RNG sharding.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Describe fills out[j] with the feedback description for task j.
	// len(out) == len(env.Deficit) == len(env.Demand).
	Describe(env Env, out []TaskFeedback)
	// CriticalValue returns the model's critical feedback value γ* for a
	// colony of n ants with minimum demand dMin (Definition 2.3).
	CriticalValue(n int, dMin int) float64
}

// Switcher is implemented by models whose regime changes over time
// (e.g. the scenario package's SwitchedModel): ModelAt returns the model
// in force at round t. Reporting code uses it to compute the in-force
// critical value γ* instead of the construction-time one.
type Switcher interface {
	ModelAt(t uint64) Model
}

// Sigmoid evaluates the logistic function 1/(1+e^{−λx}) in a numerically
// stable way.
func Sigmoid(lambda, x float64) float64 {
	z := lambda * x
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// SigmoidModel is the paper's stochastic feedback: each ant independently
// receives Lack with probability s(Δ) = 1/(1+e^{−λΔ}).
type SigmoidModel struct {
	// Lambda is the sigmoid steepness. Larger λ means sharper (more
	// reliable) feedback and a smaller critical value.
	Lambda float64
}

// Name implements Model.
func (m SigmoidModel) Name() string { return fmt.Sprintf("sigmoid(λ=%.4g)", m.Lambda) }

// Describe implements Model.
func (m SigmoidModel) Describe(env Env, out []TaskFeedback) {
	for j, deficit := range env.Deficit {
		out[j] = Bern(Sigmoid(m.Lambda, deficit))
	}
}

// CriticalValue implements Model. For the sigmoid model Definition 2.3
// sets γ* = y(1/n⁸), the smallest relative deficit x with
// s(−x·d) ≤ 1/n⁸ for every task, i.e. γ* = ln(n⁸−1)/(λ·dMin).
func (m SigmoidModel) CriticalValue(n int, dMin int) float64 {
	return m.GammaFor(n, dMin, 8)
}

// GammaFor generalizes CriticalValue: the relative deficit at which the
// per-ant error probability outside the zone is 1/n^exponent.
func (m SigmoidModel) GammaFor(n int, dMin int, exponent float64) float64 {
	if n < 2 || dMin <= 0 || m.Lambda <= 0 {
		return math.NaN()
	}
	// ln(n^e − 1) = e·ln n + log1p(−n^{−e}), stable for all n ≥ 2.
	logNe := exponent * math.Log(float64(n))
	return (logNe + math.Log1p(-math.Exp(-logNe))) / (m.Lambda * float64(dMin))
}

// ErrProb returns the probability that one ant receives the incorrect
// signal for a task with demand d when the relative deficit is gamma
// (i.e. |Δ| = gamma·d): s(−gamma·d) by the sigmoid's antisymmetry.
func (m SigmoidModel) ErrProb(gamma float64, d int) float64 {
	return Sigmoid(m.Lambda, -gamma*float64(d))
}

// LambdaForCritical returns the λ that makes the critical value equal to
// the requested gammaStar for a colony of n ants with minimum demand
// dMin. Experiments use it to place γ* at a chosen operating point.
func LambdaForCritical(gammaStar float64, n int, dMin int) float64 {
	if gammaStar <= 0 || n < 2 || dMin <= 0 {
		return math.NaN()
	}
	logNe := 8 * math.Log(float64(n))
	return (logNe + math.Log1p(-math.Exp(-logNe))) / (gammaStar * float64(dMin))
}

// PerfectModel is the noiseless binary feedback of Cornejo et al.: all
// ants receive Lack iff the load is at most the demand (Δ ≥ 0), and
// Overload otherwise. Its critical value is 0.
type PerfectModel struct{}

// Name implements Model.
func (PerfectModel) Name() string { return "perfect" }

// Describe implements Model.
func (PerfectModel) Describe(env Env, out []TaskFeedback) {
	for j, deficit := range env.Deficit {
		if deficit >= 0 {
			out[j] = Det(Lack)
		} else {
			out[j] = Det(Overload)
		}
	}
}

// CriticalValue implements Model.
func (PerfectModel) CriticalValue(int, int) float64 { return 0 }

// GreyStrategy decides the feedback inside the adversarial grey zone
// [−γad·d(j), γad·d(j)]. Implementations may keep state across rounds
// (they are invoked once per task per round in task order).
type GreyStrategy interface {
	Name() string
	// Grey returns the feedback description for a grey-zone task.
	Grey(round uint64, task int, deficit float64, demand int) TaskFeedback
}

// AdversarialModel is the paper's adversarial feedback: deterministic and
// correct when |Δ(j)| > γad·d(j), and chosen by Strategy inside the grey
// zone.
type AdversarialModel struct {
	// GammaAd is the threshold parameter γad (= the critical value).
	GammaAd float64
	// Strategy decides grey-zone feedback. Required.
	Strategy GreyStrategy
}

// Name implements Model.
func (m AdversarialModel) Name() string {
	return fmt.Sprintf("adversarial(γad=%g, %s)", m.GammaAd, m.Strategy.Name())
}

// Describe implements Model.
func (m AdversarialModel) Describe(env Env, out []TaskFeedback) {
	for j, deficit := range env.Deficit {
		bound := m.GammaAd * float64(env.Demand[j])
		switch {
		case deficit > bound:
			out[j] = Det(Lack)
		case deficit < -bound:
			out[j] = Det(Overload)
		default:
			out[j] = m.Strategy.Grey(env.Round, j, deficit, env.Demand[j])
		}
	}
}

// CriticalValue implements Model: γ* = γad regardless of colony size.
func (m AdversarialModel) CriticalValue(int, int) float64 { return m.GammaAd }

// --- Grey-zone strategies -------------------------------------------------

// AlwaysLack reports Lack everywhere in the grey zone; it lures idle ants
// into joining until the task leaves the zone upward.
type AlwaysLack struct{}

// Name implements GreyStrategy.
func (AlwaysLack) Name() string { return "always-lack" }

// Grey implements GreyStrategy.
func (AlwaysLack) Grey(uint64, int, float64, int) TaskFeedback { return Det(Lack) }

// AlwaysOverload reports Overload everywhere in the grey zone.
type AlwaysOverload struct{}

// Name implements GreyStrategy.
func (AlwaysOverload) Name() string { return "always-overload" }

// Grey implements GreyStrategy.
func (AlwaysOverload) Grey(uint64, int, float64, int) TaskFeedback { return Det(Overload) }

// Truthful reports the sign-correct signal even inside the grey zone
// (ties, Δ = 0, report Lack); the benign baseline.
type Truthful struct{}

// Name implements GreyStrategy.
func (Truthful) Name() string { return "truthful" }

// Grey implements GreyStrategy.
func (Truthful) Grey(_ uint64, _ int, deficit float64, _ int) TaskFeedback {
	if deficit >= 0 {
		return Det(Lack)
	}
	return Det(Overload)
}

// Inverted reports the sign-incorrect signal inside the grey zone: the
// regret-maximizing myopic adversary, pushing loads away from the demand.
type Inverted struct{}

// Name implements GreyStrategy.
func (Inverted) Name() string { return "inverted" }

// Grey implements GreyStrategy.
func (Inverted) Grey(_ uint64, _ int, deficit float64, _ int) TaskFeedback {
	if deficit >= 0 {
		return Det(Overload)
	}
	return Det(Lack)
}

// Alternating flips the reported signal every round, forcing maximal
// churn on algorithms that trust single samples.
type Alternating struct{}

// Name implements GreyStrategy.
func (Alternating) Name() string { return "alternating" }

// Grey implements GreyStrategy.
func (Alternating) Grey(round uint64, _ int, _ float64, _ int) TaskFeedback {
	if round%2 == 0 {
		return Det(Lack)
	}
	return Det(Overload)
}

// RandomGrey gives every ant an independent coin flip with the configured
// Lack probability inside the grey zone.
type RandomGrey struct {
	// LackProb is the per-ant Lack probability (default 0.5 when zero
	// value is used via NewRandomGrey).
	LackProb float64
}

// NewRandomGrey returns a RandomGrey with the fair-coin default.
func NewRandomGrey() RandomGrey { return RandomGrey{LackProb: 0.5} }

// Name implements GreyStrategy.
func (s RandomGrey) Name() string { return fmt.Sprintf("random(p=%g)", s.LackProb) }

// Grey implements GreyStrategy.
func (s RandomGrey) Grey(uint64, int, float64, int) TaskFeedback { return Bern(s.LackProb) }

// Sticky repeats whatever signal it last reported for the task, starting
// from Lack; it models slowly-drifting environmental stimuli. Sticky
// keeps per-task state and therefore must not be shared across concurrent
// simulations.
type Sticky struct {
	last map[int]Signal
	// FlipEvery flips the remembered signal every FlipEvery rounds
	// (0 disables flipping).
	FlipEvery uint64
}

// NewSticky returns a Sticky strategy flipping every flipEvery rounds.
func NewSticky(flipEvery uint64) *Sticky {
	return &Sticky{last: make(map[int]Signal), FlipEvery: flipEvery}
}

// Name implements GreyStrategy.
func (s *Sticky) Name() string { return fmt.Sprintf("sticky(flip=%d)", s.FlipEvery) }

// Grey implements GreyStrategy.
func (s *Sticky) Grey(round uint64, task int, _ float64, _ int) TaskFeedback {
	v, ok := s.last[task]
	if !ok {
		v = Lack
	}
	if s.FlipEvery > 0 && round > 0 && round%s.FlipEvery == 0 {
		v = v.Flip()
	}
	s.last[task] = v
	return Det(v)
}

// CorrelatedModel wraps a base model and, with probability FlipProb per
// task per round, replaces the base description with the flipped
// deterministic signal for ALL ants simultaneously — the arbitrarily
// correlated noise of Remark 3.4. The flip decision is derived from a
// hash of (seed, round, task) so the model stays deterministic and
// engine-shard independent.
type CorrelatedModel struct {
	Base Model
	// FlipProb is the per-round, per-task probability of a colony-wide
	// incorrect signal. Remark 3.4 requires it to be at most 1/n^c.
	FlipProb float64
	// Seed decorrelates the flip pattern across runs.
	Seed uint64
}

// Name implements Model.
func (m CorrelatedModel) Name() string {
	return fmt.Sprintf("correlated(%s, flip=%g)", m.Base.Name(), m.FlipProb)
}

// Describe implements Model.
func (m CorrelatedModel) Describe(env Env, out []TaskFeedback) {
	m.Base.Describe(env, out)
	for j := range out {
		if m.flip(env.Round, uint64(j)) {
			// Colony-wide incorrect signal: the flip of the correct
			// sign, regardless of what the base model would do.
			if env.Deficit[j] >= 0 {
				out[j] = Det(Overload)
			} else {
				out[j] = Det(Lack)
			}
		}
	}
}

// CriticalValue implements Model by delegating to the base model.
func (m CorrelatedModel) CriticalValue(n int, dMin int) float64 {
	return m.Base.CriticalValue(n, dMin)
}

// flip hashes (seed, round, task) to a uniform [0,1) value and compares
// with FlipProb.
func (m CorrelatedModel) flip(round, task uint64) bool {
	if m.FlipProb <= 0 {
		return false
	}
	x := m.Seed ^ 0x9e3779b97f4a7c15
	x ^= round * 0xd1342543de82ef95
	x ^= task * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	x *= 0xff51afd7ed558ccd
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53)
	return u < m.FlipProb
}
