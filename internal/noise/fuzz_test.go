package noise

import (
	"math"
	"testing"
)

// FuzzSigmoid checks range, antisymmetry, and monotonic ordering of the
// stable sigmoid under arbitrary inputs.
func FuzzSigmoid(f *testing.F) {
	f.Add(1.0, 0.0)
	f.Add(0.01, 700.0)
	f.Add(5.0, -700.0)
	f.Fuzz(func(t *testing.T, lambda, x float64) {
		if math.IsNaN(lambda) || math.IsNaN(x) || math.IsInf(lambda, 0) || math.IsInf(x, 0) {
			t.Skip()
		}
		v := Sigmoid(lambda, x)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Sigmoid(%v, %v) = %v out of [0,1]", lambda, x, v)
		}
		w := Sigmoid(lambda, -x)
		if s := v + w; math.Abs(s-1) > 1e-9 {
			t.Fatalf("antisymmetry broken: s(x)+s(-x) = %v", s)
		}
	})
}

// FuzzAdversarialDescribe checks that the adversarial model never emits
// an incorrect deterministic signal outside the grey zone, whatever the
// deficit, demand, and round.
func FuzzAdversarialDescribe(f *testing.F) {
	f.Add(0.1, 50.0, 100, uint64(3))
	f.Add(0.49, -300.0, 7, uint64(0))
	f.Fuzz(func(t *testing.T, gammaAd, deficit float64, d int, round uint64) {
		if gammaAd <= 0 || gammaAd > 0.5 || d <= 0 || d > 1<<20 ||
			math.IsNaN(deficit) || math.IsInf(deficit, 0) {
			t.Skip()
		}
		m := AdversarialModel{GammaAd: gammaAd, Strategy: Inverted{}}
		out := make([]TaskFeedback, 1)
		m.Describe(Env{Round: round, Deficit: []float64{deficit}, Demand: []int{d}}, out)
		bound := gammaAd * float64(d)
		if deficit > bound && (!out[0].Deterministic || out[0].Value != Lack) {
			t.Fatalf("deficit %v above grey zone got %+v", deficit, out[0])
		}
		if deficit < -bound && (!out[0].Deterministic || out[0].Value != Overload) {
			t.Fatalf("deficit %v below grey zone got %+v", deficit, out[0])
		}
	})
}
