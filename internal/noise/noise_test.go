package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignalStringAndFlip(t *testing.T) {
	if Lack.String() != "lack" || Overload.String() != "overload" {
		t.Fatalf("signal strings: %v %v", Lack, Overload)
	}
	if Signal(9).String() == "" {
		t.Fatal("unknown signal should still format")
	}
	if Lack.Flip() != Overload || Overload.Flip() != Lack {
		t.Fatal("Flip broken")
	}
}

func TestSigmoidBasics(t *testing.T) {
	if got := Sigmoid(1, 0); got != 0.5 {
		t.Fatalf("s(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(1, 1000); got != 1 {
		t.Fatalf("s(1000) = %v, want 1", got)
	}
	if got := Sigmoid(1, -1000); got != 0 {
		t.Fatalf("s(-1000) = %v, want 0", got)
	}
}

// TestSigmoidAntisymmetry verifies s(x) + s(−x) = 1 — the property the
// critical-value definition relies on (Definition 2.3).
func TestSigmoidAntisymmetry(t *testing.T) {
	f := func(xRaw int16, lRaw uint8) bool {
		x := float64(xRaw) / 100
		lambda := float64(lRaw%50)/10 + 0.1
		return math.Abs(Sigmoid(lambda, x)+Sigmoid(lambda, -x)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidMonotone(t *testing.T) {
	prev := -1.0
	for x := -50.0; x <= 50; x += 0.5 {
		v := Sigmoid(0.3, x)
		if v < prev {
			t.Fatalf("sigmoid not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestSigmoidModelDescribe(t *testing.T) {
	m := SigmoidModel{Lambda: 1}
	env := Env{Round: 1, Deficit: []float64{0, 10, -10}, Demand: []int{5, 5, 5}}
	out := make([]TaskFeedback, 3)
	m.Describe(env, out)
	for j, fb := range out {
		if fb.Deterministic {
			t.Fatalf("task %d: sigmoid feedback must be Bernoulli", j)
		}
	}
	if out[0].LackProb != 0.5 {
		t.Fatalf("deficit 0 lack prob %v, want 0.5", out[0].LackProb)
	}
	if out[1].LackProb < 0.99 {
		t.Fatalf("deficit +10 lack prob %v, want near 1", out[1].LackProb)
	}
	if out[2].LackProb > 0.01 {
		t.Fatalf("deficit -10 lack prob %v, want near 0", out[2].LackProb)
	}
}

// TestCriticalValueDefinition checks that γ* satisfies its defining
// property: s(−γ*·dMin) = 1/n⁸ exactly (Definition 2.3).
func TestCriticalValueDefinition(t *testing.T) {
	for _, c := range []struct {
		lambda float64
		n      int
		dMin   int
	}{
		{0.5, 100, 30}, {1, 1000, 50}, {0.05, 500, 200}, {2, 64, 10},
	} {
		m := SigmoidModel{Lambda: c.lambda}
		gs := m.CriticalValue(c.n, c.dMin)
		if gs <= 0 || math.IsNaN(gs) {
			t.Fatalf("invalid γ* %v for %+v", gs, c)
		}
		got := Sigmoid(c.lambda, -gs*float64(c.dMin))
		want := math.Pow(float64(c.n), -8)
		if math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("s(−γ*·d) = %v, want %v (case %+v)", got, want, c)
		}
	}
}

func TestCriticalValueInvalidInputs(t *testing.T) {
	m := SigmoidModel{Lambda: 1}
	for _, got := range []float64{
		m.CriticalValue(1, 10),
		m.CriticalValue(100, 0),
		SigmoidModel{Lambda: 0}.CriticalValue(100, 10),
	} {
		if !math.IsNaN(got) {
			t.Fatalf("invalid input produced %v, want NaN", got)
		}
	}
}

// TestLambdaForCriticalRoundTrip: λ chosen for a target γ* must reproduce
// that γ* via CriticalValue.
func TestLambdaForCriticalRoundTrip(t *testing.T) {
	f := func(gRaw, nRaw, dRaw uint16) bool {
		gamma := float64(gRaw%1000+1) / 10000 // (0, 0.1]
		n := int(nRaw%10000) + 10
		d := int(dRaw%500) + 10
		lambda := LambdaForCritical(gamma, n, d)
		if math.IsNaN(lambda) || lambda <= 0 {
			return false
		}
		back := SigmoidModel{Lambda: lambda}.CriticalValue(n, d)
		return math.Abs(back-gamma)/gamma < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestErrProbMatchesSigmoid(t *testing.T) {
	m := SigmoidModel{Lambda: 0.7}
	if got, want := m.ErrProb(0.1, 50), Sigmoid(0.7, -5); got != want {
		t.Fatalf("ErrProb = %v, want %v", got, want)
	}
}

func TestPerfectModel(t *testing.T) {
	m := PerfectModel{}
	env := Env{Deficit: []float64{0, 1, -1}, Demand: []int{10, 10, 10}}
	out := make([]TaskFeedback, 3)
	m.Describe(env, out)
	// Cornejo et al.: load <= demand (Δ >= 0) gives Lack for everyone.
	for j, want := range []Signal{Lack, Lack, Overload} {
		if !out[j].Deterministic || out[j].Value != want {
			t.Fatalf("task %d: got %+v, want deterministic %v", j, out[j], want)
		}
	}
	if m.CriticalValue(100, 10) != 0 {
		t.Fatal("perfect model critical value must be 0")
	}
}

func TestAdversarialOutsideGreyZoneIsCorrect(t *testing.T) {
	m := AdversarialModel{GammaAd: 0.1, Strategy: Inverted{}}
	env := Env{
		Round:   7,
		Deficit: []float64{11, -11, 10, -10, 0},
		Demand:  []int{100, 100, 100, 100, 100},
	}
	out := make([]TaskFeedback, 5)
	m.Describe(env, out)
	if out[0].Value != Lack || !out[0].Deterministic {
		t.Fatalf("deficit 11 > γd=10: got %+v, want Lack", out[0])
	}
	if out[1].Value != Overload {
		t.Fatalf("deficit -11: got %+v, want Overload", out[1])
	}
	// |Δ| = γd is inside the (closed) grey zone: strategy decides.
	if out[2].Value != Overload { // Inverted flips the correct Lack
		t.Fatalf("grey deficit 10: got %+v, want inverted Overload", out[2])
	}
	if out[3].Value != Lack {
		t.Fatalf("grey deficit -10: got %+v, want inverted Lack", out[3])
	}
	if out[4].Value != Overload {
		t.Fatalf("grey deficit 0: got %+v, want inverted Overload", out[4])
	}
	if m.CriticalValue(12345, 1) != 0.1 {
		t.Fatal("adversarial critical value must equal γad")
	}
}

// TestAdversarialGreyZoneProperty: for every deficit strictly outside the
// grey zone the signal is correct, regardless of strategy.
func TestAdversarialGreyZoneProperty(t *testing.T) {
	strategies := []GreyStrategy{
		AlwaysLack{}, AlwaysOverload{}, Truthful{}, Inverted{},
		Alternating{}, NewRandomGrey(), NewSticky(3),
	}
	f := func(defRaw int16, dRaw uint8, round uint16, sIdx uint8) bool {
		d := int(dRaw%100) + 10
		deficit := float64(defRaw) / 32 // roughly [-1024, 1024]/32
		m := AdversarialModel{GammaAd: 0.2, Strategy: strategies[int(sIdx)%len(strategies)]}
		out := make([]TaskFeedback, 1)
		m.Describe(Env{Round: uint64(round), Deficit: []float64{deficit}, Demand: []int{d}}, out)
		bound := 0.2 * float64(d)
		if deficit > bound {
			return out[0].Deterministic && out[0].Value == Lack
		}
		if deficit < -bound {
			return out[0].Deterministic && out[0].Value == Overload
		}
		return true // grey zone: anything goes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestGreyStrategies(t *testing.T) {
	if fb := (AlwaysLack{}).Grey(0, 0, 0, 10); fb.Value != Lack {
		t.Fatal("AlwaysLack")
	}
	if fb := (AlwaysOverload{}).Grey(0, 0, 0, 10); fb.Value != Overload {
		t.Fatal("AlwaysOverload")
	}
	if fb := (Truthful{}).Grey(0, 0, 3, 10); fb.Value != Lack {
		t.Fatal("Truthful positive deficit")
	}
	if fb := (Truthful{}).Grey(0, 0, -3, 10); fb.Value != Overload {
		t.Fatal("Truthful negative deficit")
	}
	if fb := (Alternating{}).Grey(2, 0, 0, 10); fb.Value != Lack {
		t.Fatal("Alternating even round")
	}
	if fb := (Alternating{}).Grey(3, 0, 0, 10); fb.Value != Overload {
		t.Fatal("Alternating odd round")
	}
	rg := NewRandomGrey()
	if fb := rg.Grey(0, 0, 0, 10); fb.Deterministic || fb.LackProb != 0.5 {
		t.Fatalf("RandomGrey: %+v", fb)
	}
}

func TestStickyStrategy(t *testing.T) {
	s := NewSticky(2)
	// Round 1: initial Lack (no flip: 1 % 2 != 0).
	if fb := s.Grey(1, 0, 0, 10); fb.Value != Lack {
		t.Fatalf("round 1: %v", fb.Value)
	}
	// Round 2: flips to Overload.
	if fb := s.Grey(2, 0, 0, 10); fb.Value != Overload {
		t.Fatalf("round 2: %v", fb.Value)
	}
	// Round 3: sticks.
	if fb := s.Grey(3, 0, 0, 10); fb.Value != Overload {
		t.Fatalf("round 3: %v", fb.Value)
	}
	// Round 4: flips back.
	if fb := s.Grey(4, 0, 0, 10); fb.Value != Lack {
		t.Fatalf("round 4: %v", fb.Value)
	}
	// Independent state per task.
	if fb := s.Grey(5, 1, 0, 10); fb.Value != Lack {
		t.Fatalf("task 1 first call: %v", fb.Value)
	}
}

func TestCorrelatedModelNoFlip(t *testing.T) {
	base := SigmoidModel{Lambda: 1}
	m := CorrelatedModel{Base: base, FlipProb: 0}
	env := Env{Round: 3, Deficit: []float64{5}, Demand: []int{10}}
	out := make([]TaskFeedback, 1)
	m.Describe(env, out)
	if out[0].Deterministic {
		t.Fatal("flip prob 0 must preserve base feedback")
	}
	if m.CriticalValue(100, 10) != base.CriticalValue(100, 10) {
		t.Fatal("correlated model must delegate critical value")
	}
}

func TestCorrelatedModelAlwaysFlip(t *testing.T) {
	m := CorrelatedModel{Base: PerfectModel{}, FlipProb: 1, Seed: 9}
	env := Env{Round: 3, Deficit: []float64{5, -5}, Demand: []int{10, 10}}
	out := make([]TaskFeedback, 2)
	m.Describe(env, out)
	if out[0].Value != Overload || out[1].Value != Lack {
		t.Fatalf("flip prob 1 must invert: %+v", out)
	}
}

func TestCorrelatedFlipFrequency(t *testing.T) {
	m := CorrelatedModel{Base: PerfectModel{}, FlipProb: 0.25, Seed: 4}
	flips := 0
	const rounds = 20000
	out := make([]TaskFeedback, 1)
	for r := uint64(0); r < rounds; r++ {
		m.Describe(Env{Round: r, Deficit: []float64{5}, Demand: []int{10}}, out)
		if out[0].Value == Overload { // correct would be Lack
			flips++
		}
	}
	got := float64(flips) / rounds
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("flip frequency %v, want 0.25", got)
	}
}

func TestCorrelatedFlipDeterministic(t *testing.T) {
	a := CorrelatedModel{Base: PerfectModel{}, FlipProb: 0.5, Seed: 11}
	b := CorrelatedModel{Base: PerfectModel{}, FlipProb: 0.5, Seed: 11}
	outA := make([]TaskFeedback, 4)
	outB := make([]TaskFeedback, 4)
	env := Env{Round: 77, Deficit: []float64{1, -1, 2, -2}, Demand: []int{9, 9, 9, 9}}
	a.Describe(env, outA)
	b.Describe(env, outB)
	for j := range outA {
		if outA[j] != outB[j] {
			t.Fatalf("same seed diverged at task %d", j)
		}
	}
}

func TestModelNames(t *testing.T) {
	names := []string{
		SigmoidModel{Lambda: 1}.Name(),
		PerfectModel{}.Name(),
		AdversarialModel{GammaAd: 0.1, Strategy: Truthful{}}.Name(),
		CorrelatedModel{Base: PerfectModel{}, FlipProb: 0.1}.Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("duplicate or empty model name %q", n)
		}
		seen[n] = true
	}
}
