// Package dist provides exact samplers for the discrete distributions
// the aggregate (mean-field) engine advances cohorts with. All samplers
// draw from the repo's deterministic rng streams, so simulations that use
// them stay reproducible for a fixed seed.
package dist

import (
	"math"

	"taskalloc/internal/rng"
)

// Binomial draws an exact Binomial(n, p) variate.
//
// The sampler is inversion from the mode: the pmf is evaluated once at
// the mode via lgamma and then extended outward with the two-term
// recurrence, subtracting probabilities from a single uniform until it is
// exhausted. Expected cost is O(sqrt(n·p·(1−p))) pmf steps, which keeps
// mean-field rounds cheap even for colony-sized n.
func Binomial(r *rng.Rng, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}

	// Mode m = floor((n+1)p) and its pmf.
	m := int(float64(n+1) * p)
	if m > n {
		m = n
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgM, _ := math.Lgamma(float64(m + 1))
	lgNM, _ := math.Lgamma(float64(n - m + 1))
	pm := math.Exp(lgN - lgM - lgNM +
		float64(m)*math.Log(p) + float64(n-m)*math.Log1p(-p))

	u := r.Float64() - pm
	if u < 0 {
		return m
	}
	// Walk outward from the mode, alternating up and down; any fixed
	// ordering of the outcomes yields an exact inversion.
	odds := p / (1 - p)
	lo, hi := m, m
	plo, phi := pm, pm
	for lo > 0 || hi < n {
		if hi < n {
			phi *= float64(n-hi) / float64(hi+1) * odds
			hi++
			u -= phi
			if u < 0 {
				return hi
			}
		}
		if lo > 0 {
			plo *= float64(lo) / (float64(n-lo+1) * odds)
			lo--
			u -= plo
			if u < 0 {
				return lo
			}
		}
	}
	// Floating-point leftover (total mass < 1 by ~1e-15): attribute it to
	// the upper boundary.
	return hi
}

// Multinomial distributes n trials over the categories in proportion to
// the non-negative weights w, writing the counts into out (len(out) must
// equal len(w); every entry is overwritten). It uses the conditional
// binomial decomposition, so the joint counts are exactly multinomial.
func Multinomial(r *rng.Rng, n int, w []float64, out []int) {
	if len(out) != len(w) {
		panic("dist: Multinomial len(out) != len(w)")
	}
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("dist: Multinomial negative or NaN weight")
		}
		total += x
	}
	for j := range out {
		out[j] = 0
	}
	if n <= 0 {
		return
	}
	if total <= 0 {
		panic("dist: Multinomial zero total weight with n > 0")
	}
	rem := n
	for j := 0; j < len(w)-1 && rem > 0; j++ {
		if w[j] <= 0 {
			continue
		}
		pj := w[j] / total
		if pj > 1 {
			pj = 1
		}
		c := Binomial(r, rem, pj)
		out[j] = c
		rem -= c
		total -= w[j]
		if total <= 0 {
			break
		}
	}
	if rem > 0 {
		out[len(w)-1] += rem
	}
}

// Hypergeometric draws the number of "successes" in draws draws without
// replacement from a population of size pop containing succ successes.
// The sampler is the exact sequential urn: each draw succeeds with the
// conditional probability (succ−s)/(pop−i), realized as one integer
// bounded draw, so cost is O(draws). The mean-field engine uses it for
// cohort intersections (pause∧leave overlaps) and for killing a uniform
// subset of the colony on Resize, where draws is small or a one-off.
func Hypergeometric(r *rng.Rng, pop, succ, draws int) int {
	if pop < 0 || succ < 0 || succ > pop || draws < 0 || draws > pop {
		panic("dist: Hypergeometric parameters out of range")
	}
	s := 0
	for i := 0; i < draws; i++ {
		if r.Uint64n(uint64(pop-i)) < uint64(succ-s) {
			s++
			if s == succ {
				break
			}
		}
	}
	return s
}
