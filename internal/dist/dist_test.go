package dist

import (
	"math"
	"testing"

	"taskalloc/internal/rng"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := rng.New(1)
	if got := Binomial(r, 0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := Binomial(r, 10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := Binomial(r, 10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
	if got := Binomial(r, -3, 0.5); got != 0 {
		t.Fatalf("Binomial(-3, .5) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		if got := Binomial(r, 1, 0.5); got != 0 && got != 1 {
			t.Fatalf("Binomial(1, .5) = %d", got)
		}
	}
}

func TestBinomialRange(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		n := 1 + int(r.Uint64n(2000))
		p := r.Float64()
		got := Binomial(r, n, p)
		if got < 0 || got > n {
			t.Fatalf("Binomial(%d, %g) = %d out of range", n, p, got)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {100, 0.03}, {100, 0.97}, {5000, 0.2}, {100000, 0.001},
	}
	r := rng.New(3)
	const draws = 20000
	for _, c := range cases {
		sum, sumsq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			x := float64(Binomial(r, c.n, c.p))
			sum += x
			sumsq += x * x
		}
		mean := sum / draws
		wantMean := float64(c.n) * c.p
		variance := sumsq/draws - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		// 6-sigma tolerance on the sample mean.
		tol := 6 * math.Sqrt(wantVar/draws)
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d, %g): mean %.3f, want %.3f ± %.3f",
				c.n, c.p, mean, wantMean, tol)
		}
		if wantVar > 1 && (variance < 0.8*wantVar || variance > 1.25*wantVar) {
			t.Errorf("Binomial(%d, %g): variance %.3f, want about %.3f",
				c.n, c.p, variance, wantVar)
		}
	}
}

func TestMultinomialConservation(t *testing.T) {
	r := rng.New(4)
	w := []float64{1, 2, 0, 5, 0.5}
	out := make([]int, len(w))
	for i := 0; i < 2000; i++ {
		n := int(r.Uint64n(500))
		// Dirty the scratch to verify every entry is overwritten.
		for j := range out {
			out[j] = -7
		}
		Multinomial(r, n, w, out)
		total := 0
		for j, c := range out {
			if c < 0 {
				t.Fatalf("negative count %d at %d", c, j)
			}
			if w[j] == 0 && c != 0 {
				t.Fatalf("zero-weight category %d received %d trials", j, c)
			}
			total += c
		}
		if total != n {
			t.Fatalf("counts sum to %d, want %d", total, n)
		}
	}
}

func TestMultinomialProportions(t *testing.T) {
	r := rng.New(5)
	w := []float64{1, 3, 6}
	out := make([]int, len(w))
	sums := make([]float64, len(w))
	const draws, n = 3000, 100
	for i := 0; i < draws; i++ {
		Multinomial(r, n, w, out)
		for j, c := range out {
			sums[j] += float64(c)
		}
	}
	for j := range w {
		mean := sums[j] / draws
		want := n * w[j] / 10
		if math.Abs(mean-want) > 0.05*n {
			t.Errorf("category %d: mean %.2f, want %.2f", j, mean, want)
		}
	}
}

func TestMultinomialPanics(t *testing.T) {
	r := rng.New(6)
	cases := []func(){
		func() { Multinomial(r, 5, []float64{1, 2}, make([]int, 3)) },
		func() { Multinomial(r, 5, []float64{1, -2}, make([]int, 2)) },
		func() { Multinomial(r, 5, []float64{0, 0}, make([]int, 2)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBinomialDeterminism(t *testing.T) {
	a, b := rng.New(9), rng.New(9)
	for i := 0; i < 1000; i++ {
		x := Binomial(a, 500, 0.123)
		y := Binomial(b, 500, 0.123)
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestHypergeometricMomentsAndBounds: the sampler must respect hard
// bounds and match the distribution's mean within Monte-Carlo error.
func TestHypergeometricMomentsAndBounds(t *testing.T) {
	r := rng.New(7)
	const pop, succ, draws, iters = 200, 60, 50, 20000
	sum := 0.0
	for i := 0; i < iters; i++ {
		s := Hypergeometric(r, pop, succ, draws)
		if s < 0 || s > succ || s > draws {
			t.Fatalf("sample %d outside [0, min(%d, %d)]", s, succ, draws)
		}
		if s < draws-(pop-succ) {
			t.Fatalf("sample %d below forced minimum", s)
		}
		sum += float64(s)
	}
	mean := sum / iters
	want := float64(draws) * float64(succ) / float64(pop) // 15
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("mean %v, want %v", mean, want)
	}
	// Degenerate corners.
	if Hypergeometric(r, 10, 0, 5) != 0 {
		t.Fatal("no successes in population must sample 0")
	}
	if Hypergeometric(r, 10, 10, 7) != 7 {
		t.Fatal("all-success population must sample draws")
	}
	if Hypergeometric(r, 10, 4, 0) != 0 {
		t.Fatal("zero draws must sample 0")
	}
	if Hypergeometric(r, 10, 4, 10) != 4 {
		t.Fatal("full sweep must sample every success")
	}
}
