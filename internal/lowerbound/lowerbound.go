// Package lowerbound implements the paper's impossibility constructions.
//
// Theorem 3.5 (adversarial noise): via Yao's principle, two demand
// vectors a gap 2τ(j) apart admit a single deterministic feedback
// function that is a legal adversarial response for both, so no
// algorithm — however much memory or communication — can tell them
// apart, and any load trajectory pays at least τ(j) per task per round
// in expectation against a uniform choice of the pair. NewPair builds
// the gap, the shared threshold feedback, and legality proofs;
// ExpectedFloor evaluates the resulting regret floor.
//
// Theorem 3.3's quantitative floor for memory-limited algorithms under
// sigmoid noise is exposed as SigmoidFloor and MemoryBudget; the
// constructive witness (Algorithm Ant at a sub-critical learning rate)
// lives in package agent as NewHugger.
package lowerbound

import (
	"fmt"
	"math"

	"taskalloc/internal/demand"
	"taskalloc/internal/noise"
)

// Pair is a Yao demand pair with its shared feedback thresholds.
type Pair struct {
	// D is the base demand vector; DPrime the indistinguishable twin
	// with DPrime[j] > D[j].
	D, DPrime demand.Vector
	// Theta[j] is the shared load threshold: every ant reads Lack for
	// task j iff W(j) <= Theta[j], under either demand vector.
	Theta []int
	// GammaAd is the adversarial threshold parameter both responses
	// respect.
	GammaAd float64
}

// NewPair constructs the Theorem 3.5 pair from a base demand vector and
// the adversarial threshold γad in (0, 1/2). For each task the feedback
// threshold sits at the top edge of D's grey zone and at the bottom edge
// of DPrime's grey zone:
//
//	Theta[j]  = ⌊D[j]·(1+γad)⌋
//	DPrime[j] = ⌈Theta[j]/(1−γad)⌉
//
// so a single "Lack iff W ≤ Theta" rule is a correct adversarial
// response for both demand vectors (Verify re-checks this exactly).
func NewPair(d demand.Vector, gammaAd float64) (*Pair, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if gammaAd <= 0 || gammaAd >= 0.5 {
		return nil, fmt.Errorf("lowerbound: gammaAd %v outside (0, 0.5)", gammaAd)
	}
	p := &Pair{
		D:       d.Clone(),
		DPrime:  make(demand.Vector, len(d)),
		Theta:   make([]int, len(d)),
		GammaAd: gammaAd,
	}
	for j, dj := range d {
		theta := int(math.Floor(float64(dj) * (1 + gammaAd)))
		p.Theta[j] = theta
		p.DPrime[j] = int(math.Ceil(float64(theta) / (1 - gammaAd)))
		if p.DPrime[j] <= dj {
			// Degenerate for tiny demands: force a strict gap.
			p.DPrime[j] = dj + 1
		}
	}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// Verify checks that the threshold rule is a legal adversarial feedback
// (correct outside the grey zone) for BOTH demand vectors: for demand
// vector v it must report Lack whenever Δ > γad·v(j) and Overload
// whenever Δ < −γad·v(j).
func (p *Pair) Verify() error {
	check := func(name string, v demand.Vector) error {
		for j, dj := range v {
			bound := p.GammaAd * float64(dj)
			// Lack is reported iff W <= Theta, i.e. iff Δ >= dj-Theta.
			// Required: Δ > bound  => Lack  => dj − Theta <= ceil stuff.
			// Equivalent integer conditions:
			//  (a) every W with dj − W > bound must satisfy W <= Theta:
			//      W < dj − bound  =>  W <= Theta, i.e. dj − bound − 1 <= Theta.
			if float64(dj)-bound-1 > float64(p.Theta[j])+1e-9 {
				return fmt.Errorf("lowerbound: %s task %d: lack side violated", name, j)
			}
			//  (b) every W with dj − W < −bound must satisfy W > Theta:
			//      W > dj + bound  =>  W > Theta, i.e. Theta <= dj + bound.
			if float64(p.Theta[j]) > float64(dj)+bound+1e-9 {
				return fmt.Errorf("lowerbound: %s task %d: overload side violated", name, j)
			}
		}
		return nil
	}
	if err := check("D", p.D); err != nil {
		return err
	}
	return check("D'", p.DPrime)
}

// Model returns the shared deterministic feedback as a noise.Model. Its
// CriticalValue reports γad.
func (p *Pair) Model() noise.Model {
	return &ThresholdModel{Theta: append([]int(nil), p.Theta...), GammaAd: p.GammaAd}
}

// Tau returns the per-task half-gap τ(j) = (D'(j) − D(j))/2: the
// per-round, per-task expected-regret floor.
func (p *Pair) Tau() []float64 {
	out := make([]float64, len(p.D))
	for j := range p.D {
		out[j] = float64(p.DPrime[j]-p.D[j]) / 2
	}
	return out
}

// ExpectedFloor returns Σ_j τ(j): the Theorem 3.5 lower bound on expected
// regret per round against the uniform pair choice.
func (p *Pair) ExpectedFloor() float64 {
	total := 0.0
	for _, t := range p.Tau() {
		total += t
	}
	return total
}

// RegretAgainstBoth returns the average of the regrets of loads against D
// and against D': the quantity Theorem 3.5 lower-bounds by ExpectedFloor
// pointwise in W.
func (p *Pair) RegretAgainstBoth(loads []int) float64 {
	if len(loads) != len(p.D) {
		panic("lowerbound: loads length mismatch")
	}
	total := 0.0
	for j, w := range loads {
		total += (math.Abs(float64(p.D[j]-w)) + math.Abs(float64(p.DPrime[j]-w))) / 2
	}
	return total
}

// ThresholdModel reports Lack for task j iff the load is at most
// Theta[j]. The load is recovered as Demand[j] − Deficit[j], so the same
// model instance serves runs under either demand vector of a Pair.
type ThresholdModel struct {
	Theta   []int
	GammaAd float64
}

// Name implements noise.Model.
func (m *ThresholdModel) Name() string {
	return fmt.Sprintf("yao-threshold(γad=%g)", m.GammaAd)
}

// Describe implements noise.Model.
func (m *ThresholdModel) Describe(env noise.Env, out []noise.TaskFeedback) {
	for j := range out {
		load := float64(env.Demand[j]) - env.Deficit[j]
		if load <= float64(m.Theta[j]) {
			out[j] = noise.Det(noise.Lack)
		} else {
			out[j] = noise.Det(noise.Overload)
		}
	}
}

// CriticalValue implements noise.Model.
func (m *ThresholdModel) CriticalValue(int, int) float64 { return m.GammaAd }

// SigmoidFloor returns the Theorem 3.3 per-round regret floor
// ε·γ*·Σd for memory-limited algorithms under sigmoid noise.
func SigmoidFloor(epsilon, gammaStar float64, demSum int) float64 {
	return epsilon * gammaStar * float64(demSum)
}

// AdversarialFloor returns the Theorem 3.5 per-round expected regret
// floor (1−o(1))·γ*·Σd, with the o(1) dropped.
func AdversarialFloor(gammaStar float64, demSum int) float64 {
	return gammaStar * float64(demSum)
}

// MemoryBudget returns the Theorem 3.3 memory bound c·⌊log₂(1/ε)⌋ bits:
// any collection of algorithms with at most this much memory is ε-far.
func MemoryBudget(c, epsilon float64) int {
	if epsilon <= 0 || epsilon >= 1 || c <= 0 {
		return 0
	}
	return int(c * math.Floor(math.Log2(1/epsilon)))
}
