package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
)

func TestNewPairBasics(t *testing.T) {
	d := demand.Vector{100, 200}
	p, err := NewPair(d, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range d {
		if p.DPrime[j] <= p.D[j] {
			t.Fatalf("task %d: D'=%d not above D=%d", j, p.DPrime[j], p.D[j])
		}
		if p.Theta[j] < p.D[j] || p.Theta[j] > p.DPrime[j] {
			t.Fatalf("task %d: threshold %d outside [D, D']", j, p.Theta[j])
		}
	}
	if p.ExpectedFloor() <= 0 {
		t.Fatal("floor must be positive")
	}
}

func TestNewPairRejectsBadInputs(t *testing.T) {
	if _, err := NewPair(demand.Vector{}, 0.1); err == nil {
		t.Fatal("empty demand accepted")
	}
	if _, err := NewPair(demand.Vector{10}, 0); err == nil {
		t.Fatal("gammaAd = 0 accepted")
	}
	if _, err := NewPair(demand.Vector{10}, 0.5); err == nil {
		t.Fatal("gammaAd = 0.5 accepted")
	}
}

// TestPairLegalityProperty: for random demands and thresholds the
// constructed feedback must be a legal adversarial response for both
// vectors — Verify, and also a brute-force check over all loads.
func TestPairLegalityProperty(t *testing.T) {
	f := func(dRaw uint16, gRaw uint8) bool {
		d := int(dRaw%500) + 20
		gammaAd := float64(gRaw%40+1) / 100 // [0.01, 0.40]
		p, err := NewPair(demand.Vector{d}, gammaAd)
		if err != nil {
			return false
		}
		// Brute force: the rule "Lack iff W <= Theta" must be correct
		// outside the grey zones of BOTH demand vectors. The boundary
		// |Δ| = γad·v is inside the (closed) grey zone, and γad·v can
		// round just below its exact integer value in floats (e.g.
		// 0.29·100 = 28.999…996), so compare with the same 1e-9
		// tolerance Verify uses — otherwise a mathematically legal
		// boundary load flakes the property.
		for _, v := range []int{p.D[0], p.DPrime[0]} {
			bound := gammaAd * float64(v)
			for w := 0; w <= 3*d; w++ {
				deficit := float64(v - w)
				lack := w <= p.Theta[0]
				if deficit > bound+1e-9 && !lack {
					return false
				}
				if deficit < -bound-1e-9 && lack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRegretFloorPointwise: for ANY load vector, the average regret
// against the two demands is at least the floor — the heart of the Yao
// argument.
func TestRegretFloorPointwise(t *testing.T) {
	p, err := NewPair(demand.Vector{100, 200, 300}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	floor := p.ExpectedFloor()
	f := func(w0, w1, w2 uint16) bool {
		loads := []int{int(w0 % 1000), int(w1 % 1000), int(w2 % 1000)}
		return p.RegretAgainstBoth(loads) >= floor-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRegretAgainstBothPanics(t *testing.T) {
	p, _ := NewPair(demand.Vector{10}, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	p.RegretAgainstBoth([]int{1, 2})
}

func TestThresholdModelFeedback(t *testing.T) {
	m := &ThresholdModel{Theta: []int{110}, GammaAd: 0.1}
	out := make([]noise.TaskFeedback, 1)
	// Load 110 (= theta): Lack.
	m.Describe(noise.Env{Deficit: []float64{-10}, Demand: []int{100}}, out)
	if !out[0].Deterministic || out[0].Value != noise.Lack {
		t.Fatalf("load at theta: %+v", out[0])
	}
	// Load 111: Overload.
	m.Describe(noise.Env{Deficit: []float64{-11}, Demand: []int{100}}, out)
	if out[0].Value != noise.Overload {
		t.Fatalf("load above theta: %+v", out[0])
	}
	if m.CriticalValue(1000, 10) != 0.1 {
		t.Fatal("critical value should be gammaAd")
	}
	if m.Name() == "" {
		t.Fatal("empty name")
	}
}

// TestFeedbackIdenticalUnderBothDemands: the same loads must produce the
// same signals whichever demand vector the engine believes in — the
// indistinguishability at the core of Theorem 3.5.
func TestFeedbackIdenticalUnderBothDemands(t *testing.T) {
	p, err := NewPair(demand.Vector{100}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Model()
	outD := make([]noise.TaskFeedback, 1)
	outP := make([]noise.TaskFeedback, 1)
	for w := 0; w <= 300; w++ {
		m.Describe(noise.Env{
			Deficit: []float64{float64(p.D[0] - w)}, Demand: []int{p.D[0]},
		}, outD)
		m.Describe(noise.Env{
			Deficit: []float64{float64(p.DPrime[0] - w)}, Demand: []int{p.DPrime[0]},
		}, outP)
		if outD[0] != outP[0] {
			t.Fatalf("load %d distinguishable: %+v vs %+v", w, outD[0], outP[0])
		}
	}
}

// TestYaoFloorBindsSimulatedAlgorithm runs Algorithm Ant against the pair
// under both demand vectors and checks the averaged measured regret is at
// least the floor — an end-to-end validation of Theorem 3.5.
func TestYaoFloorBindsSimulatedAlgorithm(t *testing.T) {
	base := demand.Vector{200, 200}
	p, err := NewPair(base, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	n := 2000
	model := p.Model()
	run := func(dem demand.Vector, seed uint64) float64 {
		e, err := colony.New(colony.Config{
			N:        n,
			Schedule: demand.Static{V: dem},
			Model:    model,
			Factory:  agent.AntFactory(2, agent.DefaultParams(0.05)),
			Seed:     seed,
			Shards:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder(2, 0.05, agent.DefaultCs, 500)
		e.Run(3000, rec.Observer())
		return rec.AvgRegret()
	}
	avg := (run(p.D, 1) + run(p.DPrime, 2)) / 2
	floor := p.ExpectedFloor()
	if avg < floor*0.9 {
		t.Fatalf("measured Yao regret %v below floor %v", avg, floor)
	}
}

func TestClosedFormFloors(t *testing.T) {
	if got := SigmoidFloor(0.1, 0.05, 1000); math.Abs(got-5) > 1e-12 {
		t.Fatalf("SigmoidFloor = %v, want 5", got)
	}
	if got := AdversarialFloor(0.05, 1000); math.Abs(got-50) > 1e-12 {
		t.Fatalf("AdversarialFloor = %v, want 50", got)
	}
}

func TestMemoryBudget(t *testing.T) {
	if got := MemoryBudget(1, 0.25); got != 2 {
		t.Fatalf("MemoryBudget(1, 1/4) = %d, want 2", got)
	}
	if got := MemoryBudget(0.5, 1.0/1024); got != 5 {
		t.Fatalf("MemoryBudget(.5, 2^-10) = %d, want 5", got)
	}
	for _, got := range []int{MemoryBudget(0, 0.5), MemoryBudget(1, 0), MemoryBudget(1, 1)} {
		if got != 0 {
			t.Fatalf("invalid input gave %d, want 0", got)
		}
	}
}
