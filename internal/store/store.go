// Package store is the durability layer of the simulation service: a
// crash-safe, append-only journal store for sweep checkpoints and a
// disk-backed content-addressed blob cache for job results. Everything
// the service keeps in memory dies with the process; this package is
// what lets a sweep survive a restart (internal/simserver re-runs only
// the jobs past the last checkpoint and replays the rest from disk,
// byte-identical to an uninterrupted run) and lets result caches stay
// warm across process lifetimes and be shared by several grid backends
// mounting one directory.
//
// Durability model:
//
//   - A Journal is one sweep's write-ahead log: a header record (the
//     submitted document), one checkpoint record per completed cell in
//     index order, and a terminal commit record. Records are
//     length-prefixed and CRC-framed; recovery reads the longest valid
//     prefix and truncates the torn tail, so a crash mid-append loses
//     at most the record being written — never an earlier checkpoint.
//   - Journal creation stages the header in a temp file and renames it
//     into place, so a journal either exists with a complete header or
//     not at all. Completion is marked by a sidecar ".ok" file written
//     the same way (content: the committed byte size), so "complete"
//     is itself an atomic, crash-safe property.
//   - The BlobCache stores each entry as its own CRC-framed file under
//     a two-hex-digit fanout directory, written via temp file + atomic
//     rename. Entries are idempotent (content-addressed by a canonical
//     hash of a deterministic computation), so concurrent writers —
//     several backends sharing one mount — cannot corrupt each other.
//
// Both stores enforce byte budgets by evicting least-recently-used
// complete entries; in-flight journals are never evicted.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds, the first byte of every frame.
const (
	kindHeader byte = 0
	kindRecord byte = 1
	kindCommit byte = 2
)

// journalMagic leads every journal file; a file without it is not a
// journal (a foreign file, or a header rename that never happened —
// impossible by construction, but checked anyway).
const journalMagic = "TAJRNL1\n"

// frameHeaderSize is the fixed per-record overhead: kind byte, 4-byte
// little-endian payload length, 4-byte CRC-32 (IEEE) over kind+payload.
const frameHeaderSize = 1 + 4 + 4

// maxFrameBytes bounds one record's payload so a corrupt length field
// cannot make recovery allocate without bound.
const maxFrameBytes = 1 << 30

// okSuffix marks a committed journal: "<id>.wal" + "<id>.ok".
const (
	walSuffix = ".wal"
	okSuffix  = ".ok"
)

// Sentinel errors callers branch on.
var (
	// ErrNotExist reports a journal id with no file behind it.
	ErrNotExist = errors.New("store: journal does not exist")
	// ErrExists reports a Create for an id that already has a journal.
	ErrExists = errors.New("store: journal already exists")
	// ErrCorrupt reports a journal whose header cannot be recovered (or
	// whose commit marker contradicts the file). The caller should
	// Remove it and start over; checkpoints in a corrupt journal are
	// not trustworthy.
	ErrCorrupt = errors.New("store: journal corrupt")
)

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the journals' total disk usage; complete journals
	// are evicted least-recently-committed past it. <= 0 means no cap.
	// In-flight (uncommitted) journals are never evicted.
	MaxBytes int64
	// Sync fsyncs after every append and commit. Off, the OS page cache
	// still survives a process kill (SIGKILL-safe); on, checkpoints
	// additionally survive a machine crash, at a large append cost.
	Sync bool
}

// Store manages the sweep journals under one directory. It is safe for
// concurrent use within a process; the directory must not be shared by
// several Store instances writing the same ids.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	journals map[string]*journalInfo
	bytes    int64

	// Monotone activity counters, exported for the telemetry layer.
	appends   atomic.Uint64
	evictions atomic.Uint64
}

// journalInfo is the Store's index entry for one journal.
type journalInfo struct {
	size     int64 // wal + ok marker bytes
	mtime    time.Time
	complete bool
	open     bool // an un-Closed Journal handle exists
}

// EntryInfo describes one journal in the store's index.
type EntryInfo struct {
	// ID is the journal's identity (the sweep's semantic hash).
	ID string
	// Complete reports whether the journal has a commit marker.
	Complete bool
	// Bytes is the journal's on-disk size (log + marker).
	Bytes int64
}

// Open opens (creating if needed) the journal store rooted at dir and
// rebuilds its index by scanning the fanout directories.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, journals: make(map[string]*journalInfo)}
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			name := f.Name()
			id, isWal := strings.CutSuffix(name, walSuffix)
			if !isWal {
				if !strings.HasSuffix(name, okSuffix) {
					_ = os.Remove(filepath.Join(dir, sh.Name(), name)) // stale temp
				}
				continue
			}
			if !ValidID(id) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			ji := &journalInfo{size: info.Size(), mtime: info.ModTime()}
			if ok, err := os.Stat(s.okPath(id)); err == nil {
				ji.complete = true
				ji.size += ok.Size()
				ji.mtime = ok.ModTime()
			}
			s.journals[id] = ji
			s.bytes += ji.size
		}
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

// ValidID reports whether id is usable as a journal or blob key: at
// least 8 lowercase hex digits (the canonical hashes are 64), so ids
// can never traverse paths.
func ValidID(id string) bool {
	if len(id) < 8 || len(id) > 128 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) walPath(id string) string {
	return filepath.Join(s.dir, id[:2], id+walSuffix)
}

func (s *Store) okPath(id string) string {
	return filepath.Join(s.dir, id[:2], id+okSuffix)
}

// Entries snapshots the index: every journal id with its completeness
// and size, in unspecified order.
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntryInfo, 0, len(s.journals))
	for id, ji := range s.journals {
		out = append(out, EntryInfo{ID: id, Complete: ji.complete, Bytes: ji.size})
	}
	return out
}

// Stats reports the index's journal count and total bytes.
func (s *Store) Stats() (journals int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.journals), s.bytes
}

// Counters reports the store's monotone activity counters since Open:
// journal record appends (checkpoint frames, not headers or commits)
// and complete journals evicted past the byte budget. The telemetry
// layer exposes them as Prometheus counters.
func (s *Store) Counters() (appends, evictions uint64) {
	return s.appends.Load(), s.evictions.Load()
}

// Create starts a new journal for id with the given header payload.
// The header is staged in a temp file and renamed into place, so a
// crash can never leave a journal without a recoverable header.
// Returns ErrExists if the id already has a journal.
func (s *Store) Create(id string, header []byte) (*Journal, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("store: invalid journal id %q", id)
	}
	s.mu.Lock()
	if _, ok := s.journals[id]; ok {
		s.mu.Unlock()
		return nil, ErrExists
	}
	// Reserve the id so a concurrent Create cannot race the rename.
	s.journals[id] = &journalInfo{open: true, mtime: time.Now()}
	s.mu.Unlock()

	fail := func(err error) (*Journal, error) {
		s.mu.Lock()
		delete(s.journals, id)
		s.mu.Unlock()
		return nil, err
	}
	shard := filepath.Join(s.dir, id[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	if _, err := tmp.Write([]byte(journalMagic)); err == nil {
		err = writeFrame(tmp, kindHeader, header)
	} else {
		err = fmt.Errorf("store: %w", err)
	}
	if err == nil && s.opts.Sync {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), s.walPath(id)); err != nil {
		_ = os.Remove(tmp.Name())
		return fail(fmt.Errorf("store: %w", err))
	}
	f, err := os.OpenFile(s.walPath(id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	size := int64(len(journalMagic) + frameHeaderSize + len(header))
	s.mu.Lock()
	s.journals[id].size = size
	s.bytes += size
	s.evictLocked(id)
	s.mu.Unlock()
	return &Journal{s: s, id: id, f: f, size: size}, nil
}

// Load recovers a journal read-only: the longest valid record prefix,
// whether a torn tail was dropped, and — when the commit marker is
// present — the final commit payload. The file is not modified; use
// OpenAppend to truncate the tail and continue appending.
func (s *Store) Load(id string) (*Recovered, error) {
	rec, _, err := s.recover(id)
	return rec, err
}

// OpenAppend recovers a journal and reopens it for appending: the torn
// tail (if any) is truncated so subsequent Appends extend the valid
// prefix. It fails with ErrCorrupt on an unrecoverable journal and
// ErrExists if the journal is already committed (append after commit
// would violate the commit-is-terminal contract).
func (s *Store) OpenAppend(id string) (*Journal, *Recovered, error) {
	rec, validBytes, err := s.recover(id)
	if err != nil {
		return nil, nil, err
	}
	if rec.Complete {
		return nil, nil, fmt.Errorf("%w (already committed)", ErrExists)
	}
	f, err := os.OpenFile(s.walPath(id), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	ji, ok := s.journals[id]
	if !ok {
		ji = &journalInfo{}
		s.journals[id] = ji
	}
	s.bytes += validBytes - ji.size
	ji.size = validBytes
	ji.open = true
	s.mu.Unlock()
	return &Journal{s: s, id: id, f: f, size: validBytes}, rec, nil
}

// Remove deletes a journal and its commit marker.
func (s *Store) Remove(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("store: invalid journal id %q", id)
	}
	err1 := os.Remove(s.walPath(id))
	err2 := os.Remove(s.okPath(id))
	s.mu.Lock()
	if ji, ok := s.journals[id]; ok {
		s.bytes -= ji.size
		delete(s.journals, id)
	}
	s.mu.Unlock()
	if err1 != nil && !errors.Is(err1, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err1)
	}
	_ = err2
	return nil
}

// evictLocked drops least-recently-committed complete journals while
// over the byte budget. keep (the id being written, if any) and open
// or incomplete journals are never evicted. Caller holds s.mu.
func (s *Store) evictLocked(keep string) {
	if s.opts.MaxBytes <= 0 {
		return
	}
	type cand struct {
		id    string
		mtime time.Time
	}
	var cands []cand
	for id, ji := range s.journals {
		if ji.complete && !ji.open && id != keep {
			cands = append(cands, cand{id, ji.mtime})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mtime.Equal(cands[j].mtime) {
			return cands[i].mtime.Before(cands[j].mtime)
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if s.bytes <= s.opts.MaxBytes {
			return
		}
		ji := s.journals[c.id]
		_ = os.Remove(s.walPath(c.id))
		_ = os.Remove(s.okPath(c.id))
		s.bytes -= ji.size
		delete(s.journals, c.id)
		s.evictions.Add(1)
	}
}

// Recovered is a journal's recovered state.
type Recovered struct {
	// ID is the journal's identity.
	ID string
	// Header is the creation payload (record 0).
	Header []byte
	// Records are the checkpoint payloads after the header, in append
	// order — for a sweep journal, cell 0..len(Records)-1.
	Records [][]byte
	// Complete reports a terminal commit record (and its sidecar
	// marker); Final is its payload.
	Complete bool
	// Final is the commit payload when Complete.
	Final []byte
	// Truncated reports that a torn tail (a partially written record)
	// was found past the valid prefix.
	Truncated bool
}

// recover reads the journal's longest valid prefix. validBytes is the
// offset the file should be truncated to before further appends.
func (s *Store) recover(id string) (*Recovered, int64, error) {
	if !ValidID(id) {
		return nil, 0, fmt.Errorf("store: invalid journal id %q", id)
	}
	f, err := os.Open(s.walPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, ErrNotExist
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	var committedSize int64 = -1
	if ok, err := os.ReadFile(s.okPath(id)); err == nil {
		n, perr := strconv.ParseInt(strings.TrimSpace(string(ok)), 10, 64)
		if perr != nil {
			return nil, 0, fmt.Errorf("%w: unreadable commit marker", ErrCorrupt)
		}
		committedSize = n
	}

	r := &reader{r: f}
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != journalMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	r.off = int64(len(journalMagic))

	rec := &Recovered{ID: id}
	valid := r.off
	for {
		kind, payload, ok := r.next()
		if !ok {
			rec.Truncated = r.sawTail
			break
		}
		switch {
		case kind == kindHeader && rec.Header == nil && len(rec.Records) == 0 && !rec.Complete:
			rec.Header = payload
		case kind == kindRecord && rec.Header != nil && !rec.Complete:
			rec.Records = append(rec.Records, payload)
		case kind == kindCommit && rec.Header != nil && !rec.Complete:
			rec.Complete = true
			rec.Final = payload
		default:
			// Frame kinds out of protocol order (a second header, a
			// record after commit): treat like a torn tail — keep the
			// valid prefix, drop the rest.
			rec.Truncated = true
			kind = 0xff
		}
		if kind == 0xff {
			break
		}
		valid = r.off
		if rec.Complete {
			break
		}
	}
	if rec.Header == nil {
		return nil, 0, fmt.Errorf("%w: no recoverable header", ErrCorrupt)
	}
	if committedSize >= 0 {
		// The marker says the journal committed; the log must agree, or
		// data the marker promised has been lost.
		if !rec.Complete || valid != committedSize {
			return nil, 0, fmt.Errorf("%w: commit marker disagrees with log", ErrCorrupt)
		}
	} else if rec.Complete {
		// Commit frame present but the marker rename never happened:
		// the commit did not complete. Treat the journal as incomplete
		// and drop the commit frame, so the owner recommits.
		rec.Complete = false
		rec.Final = nil
		rec.Truncated = true
		valid = r.commitStart
	}
	return rec, valid, nil
}

// reader decodes frames sequentially, tracking the valid offset.
type reader struct {
	r           io.Reader
	off         int64
	commitStart int64
	sawTail     bool
}

// next reads one frame; ok=false at EOF or at the first invalid frame
// (sawTail distinguishes the two).
func (r *reader) next() (kind byte, payload []byte, ok bool) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(r.r, hdr[:])
	if err != nil {
		r.sawTail = n > 0
		return 0, nil, false
	}
	kind = hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:5])
	crc := binary.LittleEndian.Uint32(hdr[5:9])
	if kind > kindCommit || length > maxFrameBytes {
		r.sawTail = true
		return 0, nil, false
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		r.sawTail = true
		return 0, nil, false
	}
	if frameCRC(kind, payload) != crc {
		r.sawTail = true
		return 0, nil, false
	}
	if kind == kindCommit {
		r.commitStart = r.off
	}
	r.off += int64(frameHeaderSize) + int64(length)
	return kind, payload, true
}

// frameCRC covers the kind byte and the payload.
func frameCRC(kind byte, payload []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, []byte{kind})
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// writeFrame appends one framed record to w.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [frameHeaderSize]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], frameCRC(kind, payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Journal is one sweep's open write-ahead log. Append and Commit are
// not safe for concurrent use (the service serializes checkpoints in
// cell order by construction).
type Journal struct {
	s      *Store
	id     string
	f      *os.File
	size   int64
	closed bool
}

// ID returns the journal's identity.
func (j *Journal) ID() string { return j.id }

// Append writes one checkpoint record and flushes it to the OS (so the
// record survives a process kill; Options.Sync extends that to a
// machine crash).
func (j *Journal) Append(payload []byte) error {
	if j.closed {
		return errors.New("store: append to closed journal")
	}
	if err := writeFrame(j.f, kindRecord, payload); err != nil {
		return err
	}
	if j.s.opts.Sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	j.s.appends.Add(1)
	grow := int64(frameHeaderSize + len(payload))
	j.size += grow
	j.s.mu.Lock()
	if ji, ok := j.s.journals[j.id]; ok {
		ji.size += grow
		j.s.bytes += grow
		j.s.evictLocked(j.id)
	}
	j.s.mu.Unlock()
	return nil
}

// Commit writes the terminal commit record, then the sidecar marker
// via temp file + atomic rename, and closes the journal. After Commit
// the journal is complete: OpenAppend refuses it and recovery returns
// every record plus the commit payload.
func (j *Journal) Commit(payload []byte) error {
	if j.closed {
		return errors.New("store: commit on closed journal")
	}
	if err := writeFrame(j.f, kindCommit, payload); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil && !j.s.opts.Sync {
		// Best-effort when Sync is off; the marker below is what makes
		// completion durable, and it is ordered after this write.
		_ = err
	}
	committed := j.size + int64(frameHeaderSize+len(payload))
	shard := filepath.Join(j.s.dir, j.id[:2])
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := fmt.Fprintf(tmp, "%d\n", committed)
	if werr == nil && j.s.opts.Sync {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), j.s.okPath(j.id)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	markerSize := int64(len(strconv.FormatInt(committed, 10)) + 1)
	grow := committed - j.size + markerSize
	j.size = committed
	j.s.mu.Lock()
	if ji, ok := j.s.journals[j.id]; ok {
		ji.size += grow
		ji.complete = true
		ji.open = false
		ji.mtime = time.Now()
		j.s.bytes += grow
		j.s.evictLocked(j.id)
	}
	j.s.mu.Unlock()
	j.closed = true
	return j.f.Close()
}

// Close releases the handle without committing; the journal stays
// incomplete and OpenAppend can continue it. Idempotent.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	j.s.mu.Lock()
	if ji, ok := j.s.journals[j.id]; ok {
		ji.open = false
	}
	j.s.mu.Unlock()
	return j.f.Close()
}
