package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// blobMagic leads every cache entry file, so a foreign file in the
// cache directory is never misread as an entry.
const blobMagic uint32 = 0x7441424c // "tABL"

// blobHeaderSize is the entry file prefix: magic + CRC-32 (IEEE) of
// the payload.
const blobHeaderSize = 8

// BlobCache is a disk-backed content-addressed cache: one CRC-framed
// file per entry under a two-hex-digit fanout directory, written via
// temp file + atomic rename, with a byte-budgeted LRU index rebuilt
// from the directory on open (recency approximated by file mtime).
//
// Entries are keyed by canonical hashes of deterministic computations,
// so writes are idempotent and the directory can be mounted
// read-write by several processes at once (every grid backend sharing
// one cache): concurrent Puts of one key produce identical bytes, and
// a Get racing another process's eviction is an ordinary miss.
type BlobCache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64

	// Monotone activity counters, exported for the telemetry layer.
	puts      atomic.Uint64
	evictions atomic.Uint64
}

// blobEntry is one LRU element.
type blobEntry struct {
	key  string
	size int64
}

// OpenBlobCache opens (creating if needed) the cache rooted at dir
// with the given byte budget (<= 0 means 1 GiB) and rebuilds the LRU
// index by scanning the fanout directories in mtime order.
func OpenBlobCache(dir string, maxBytes int64) (*BlobCache, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	c := &BlobCache{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key := d.Name()
		if !ValidID(key) {
			return nil // temp file or foreign debris; Put cleans its own temps
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		found = append(found, scanned{key: key, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].key < found[j].key
	})
	c.mu.Lock()
	for _, f := range found {
		c.entries[f.key] = c.lru.PushFront(&blobEntry{key: f.key, size: f.size})
		c.bytes += f.size
	}
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

func (c *BlobCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key)
}

// Get returns the payload stored under key. A missing, corrupt, or
// concurrently evicted entry is a miss; corrupt files are removed.
func (c *BlobCache) Get(key string) ([]byte, bool) {
	if !ValidID(key) {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.forget(key)
		return nil, false
	}
	if len(raw) < blobHeaderSize ||
		binary.LittleEndian.Uint32(raw[0:4]) != blobMagic ||
		crc32.ChecksumIEEE(raw[blobHeaderSize:]) != binary.LittleEndian.Uint32(raw[4:8]) {
		_ = os.Remove(c.path(key))
		c.forget(key)
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
	} else {
		// Another process wrote it after our index scan: adopt it.
		c.entries[key] = c.lru.PushFront(&blobEntry{key: key, size: int64(len(raw))})
		c.bytes += int64(len(raw))
		c.evictLocked()
	}
	c.mu.Unlock()
	// Best-effort mtime touch, so cross-process LRU rebuilds see the use.
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
	return raw[blobHeaderSize:], true
}

// Put stores payload under key via temp file + atomic rename, then
// evicts least-recently-used entries past the byte budget.
func (c *BlobCache) Put(key string, payload []byte) error {
	if !ValidID(key) {
		return fmt.Errorf("store: invalid cache key %q", key)
	}
	shard := filepath.Join(c.dir, key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [blobHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], blobMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	_, werr := tmp.Write(hdr[:])
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if cerr := tmp.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	c.puts.Add(1)
	size := int64(blobHeaderSize + len(payload))
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.bytes += size - el.Value.(*blobEntry).size
		el.Value.(*blobEntry).size = size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&blobEntry{key: key, size: size})
		c.bytes += size
	}
	c.evictLocked()
	c.mu.Unlock()
	return nil
}

// forget drops key from the index (the file is already gone or bad).
func (c *BlobCache) forget(key string) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.bytes -= el.Value.(*blobEntry).size
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// evictLocked removes least-recently-used entries while over budget,
// never the most recent one (a single oversized entry stays usable).
// Caller holds c.mu.
func (c *BlobCache) evictLocked() {
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		be := el.Value.(*blobEntry)
		_ = os.Remove(c.path(be.key))
		c.bytes -= be.size
		c.lru.Remove(el)
		delete(c.entries, be.key)
		c.evictions.Add(1)
	}
}

// Stats reports the index's entry count and total bytes (including
// per-entry framing overhead).
func (c *BlobCache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}

// Counters reports the cache's monotone activity counters since open:
// successful Puts and budget evictions. The telemetry layer exposes
// them as Prometheus counters.
func (c *BlobCache) Counters() (puts, evictions uint64) {
	return c.puts.Load(), c.evictions.Load()
}
