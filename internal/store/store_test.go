package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const testID = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"index":%d,"body":"record body %d with some padding"}`, i, i))
	}
	return out
}

// writeJournal builds a journal with n records; commit selects whether
// it is completed. Returns the store.
func writeJournal(t *testing.T, dir string, n int, commit bool) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Create(testID, []byte(`{"header":true}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(n) {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if commit {
		if err := j.Commit([]byte(`{"done":true}`)); err != nil {
			t.Fatal(err)
		}
	} else if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 5, true)

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Load(testID)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Complete || rec.Truncated {
		t.Fatalf("complete=%v truncated=%v, want complete, untruncated", rec.Complete, rec.Truncated)
	}
	if string(rec.Header) != `{"header":true}` || string(rec.Final) != `{"done":true}` {
		t.Fatalf("header/final mismatch: %q / %q", rec.Header, rec.Final)
	}
	want := payloads(5)
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i := range want {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	ents := s.Entries()
	if len(ents) != 1 || ents[0].ID != testID || !ents[0].Complete {
		t.Fatalf("index: %+v", ents)
	}
}

// TestTornTailEveryTruncation is the crash-consistency core: for EVERY
// byte-truncation point of an uncommitted journal, recovery returns an
// exact prefix of the records — never a divergent or corrupted one —
// and appending after OpenAppend extends that prefix cleanly.
func TestTornTailEveryTruncation(t *testing.T) {
	golden := t.TempDir()
	writeJournal(t, golden, 4, false)
	walRel := filepath.Join(testID[:2], testID+walSuffix)
	full, err := os.ReadFile(filepath.Join(golden, walRel))
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(4)

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, testID[:2]), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walRel), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Load(testID)
		if err != nil {
			// Cut inside magic or the header frame: the journal is
			// unrecoverable, and must say so rather than invent state.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: unexpected error %v", cut, err)
			}
			continue
		}
		if len(rec.Records) > len(want) {
			t.Fatalf("cut=%d: recovered %d records from a 4-record journal", cut, len(rec.Records))
		}
		for i, p := range rec.Records {
			if !bytes.Equal(p, want[i]) {
				t.Fatalf("cut=%d: record %d diverges after truncation", cut, i)
			}
		}
		if cut < len(full) && !rec.Truncated && len(rec.Records) != recordsBelow(t, full, cut) {
			t.Fatalf("cut=%d: clean recovery of a torn file", cut)
		}

		// Recover-then-append must behave exactly like never-crashed:
		// continue the journal to 4 records + commit and compare the
		// full recovery against the golden content.
		j, rec2, err := s.OpenAppend(testID)
		if err != nil {
			t.Fatalf("cut=%d: openappend: %v", cut, err)
		}
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("cut=%d: OpenAppend recovered %d records, Load %d",
				cut, len(rec2.Records), len(rec.Records))
		}
		for i := len(rec2.Records); i < 4; i++ {
			if err := j.Append(want[i]); err != nil {
				t.Fatalf("cut=%d: append: %v", cut, err)
			}
		}
		if err := j.Commit([]byte(`{"done":true}`)); err != nil {
			t.Fatalf("cut=%d: commit: %v", cut, err)
		}
		final, err := s.Load(testID)
		if err != nil {
			t.Fatalf("cut=%d: reload: %v", cut, err)
		}
		if !final.Complete || len(final.Records) != 4 {
			t.Fatalf("cut=%d: after repair: complete=%v records=%d", cut, final.Complete, len(final.Records))
		}
		for i := range want {
			if !bytes.Equal(final.Records[i], want[i]) {
				t.Fatalf("cut=%d: repaired record %d diverges from never-crashed", cut, i)
			}
		}
	}
}

// recordsBelow counts how many full record frames fit under cut bytes.
func recordsBelow(t *testing.T, full []byte, cut int) int {
	t.Helper()
	off := len(journalMagic)
	// skip header frame
	frames := -1
	for off+frameHeaderSize <= cut {
		n := int(uint32(full[off+1]) | uint32(full[off+2])<<8 | uint32(full[off+3])<<16 | uint32(full[off+4])<<24)
		if off+frameHeaderSize+n > cut {
			break
		}
		off += frameHeaderSize + n
		frames++
	}
	if frames < 0 {
		return 0
	}
	return frames
}

// TestCorruptMiddleRecord: a bit flip inside an early record must stop
// recovery at the last record before it — never emit the corrupted
// record or anything after it.
func TestCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 4, false)
	path := filepath.Join(dir, testID[:2], testID+walSuffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 2's payload: locate frame offsets.
	off := len(journalMagic)
	for skip := 0; skip < 3; skip++ { // header + records 0,1
		n := int(uint32(full[off+1]) | uint32(full[off+2])<<8 | uint32(full[off+3])<<16 | uint32(full[off+4])<<24)
		off += frameHeaderSize + n
	}
	full[off+frameHeaderSize+5] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Load(testID)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || len(rec.Records) != 2 {
		t.Fatalf("recovered %d records (truncated=%v), want exactly 2, truncated",
			len(rec.Records), rec.Truncated)
	}
	want := payloads(4)
	for i := 0; i < 2; i++ {
		if !bytes.Equal(rec.Records[i], want[i]) {
			t.Fatalf("surviving record %d diverges", i)
		}
	}
}

// TestCommitMarkerContract: a commit marker that contradicts the log
// (log truncated after commit) is ErrCorrupt; a commit frame without
// its marker (crash between frame write and rename) recovers as
// incomplete with the commit frame dropped.
func TestCommitMarkerContract(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 3, true)
	wal := filepath.Join(dir, testID[:2], testID+walSuffix)
	okf := filepath.Join(dir, testID[:2], testID+okSuffix)

	t.Run("marker-without-full-log", func(t *testing.T) {
		full, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal, full[:len(full)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(testID); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for marker/log disagreement, got %v", err)
		}
		if err := os.WriteFile(wal, full, 0o644); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("commit-frame-without-marker", func(t *testing.T) {
		if err := os.Remove(okf); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Load(testID)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Complete || len(rec.Records) != 3 {
			t.Fatalf("complete=%v records=%d, want incomplete with 3 records",
				rec.Complete, len(rec.Records))
		}
		// The journal must accept a recommit.
		j, _, err := s.OpenAppend(testID)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Commit([]byte(`{"done":"again"}`)); err != nil {
			t.Fatal(err)
		}
		rec, err = s.Load(testID)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Complete || string(rec.Final) != `{"done":"again"}` {
			t.Fatalf("recommit not recovered: complete=%v final=%q", rec.Complete, rec.Final)
		}
	})
}

func TestOpenAppendRefusesCommitted(t *testing.T) {
	dir := t.TempDir()
	s := writeJournal(t, dir, 2, true)
	if _, _, err := s.OpenAppend(testID); !errors.Is(err, ErrExists) {
		t.Fatalf("OpenAppend on a committed journal: %v, want ErrExists", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	s := writeJournal(t, dir, 1, false)
	if _, err := s.Create(testID, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over an existing journal: %v, want ErrExists", err)
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, commit bool) string {
		id := fmt.Sprintf("%064x", 0xe0+i)
		j, err := s.Create(id, []byte(`{"h":1}`))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(bytes.Repeat([]byte("x"), 120)); err != nil {
			t.Fatal(err)
		}
		if commit {
			if err := j.Commit(nil); err != nil {
				t.Fatal(err)
			}
		} else if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Distinct commit mtimes so LRU order is deterministic.
		now := time.Now().Add(time.Duration(i) * time.Second)
		_ = os.Chtimes(filepath.Join(dir, id[:2], id+okSuffix), now, now)
		_ = os.Chtimes(filepath.Join(dir, id[:2], id+walSuffix), now, now)
		s.mu.Lock()
		if ji := s.journals[id]; ji != nil {
			ji.mtime = now
		}
		s.mu.Unlock()
		return id
	}
	incomplete := mk(0, false)
	var complete []string
	for i := 1; i <= 5; i++ {
		complete = append(complete, mk(i, true))
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()

	if _, err := s.Load(incomplete); err != nil {
		t.Fatalf("incomplete journal evicted: %v", err)
	}
	_, bytesNow := s.Stats()
	if bytesNow > 600+200 { // one in-flight journal may keep it slightly over
		t.Fatalf("store holds %d bytes, budget 600", bytesNow)
	}
	if _, err := s.Load(complete[len(complete)-1]); err != nil {
		t.Fatalf("newest complete journal evicted: %v", err)
	}
	if _, err := s.Load(complete[0]); !errors.Is(err, ErrNotExist) {
		t.Fatalf("oldest complete journal not evicted: %v", err)
	}
}

func TestBlobCacheRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenBlobCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064x", 42)
	val := []byte(`{"report":{"avg_regret":0.25}}`)
	if err := c.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("get: %q ok=%v", got, ok)
	}

	// Corrupt the payload on disk: Get must miss and remove the file.
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry not removed")
	}
}

func TestBlobCacheIndexRebuildAndEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenBlobCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("%064x", 0xa0+i)
		keys = append(keys, key)
		if err := c.Put(key, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the rebuilt LRU order is deterministic.
		mt := time.Now().Add(time.Duration(i-10) * time.Hour)
		_ = os.Chtimes(filepath.Join(dir, key[:2], key), mt, mt)
	}

	// Reopen with a budget that holds ~3 entries: the 3 oldest by
	// mtime must be evicted at open, the 3 newest kept.
	c2, err := OpenBlobCache(dir, 340)
	if err != nil {
		t.Fatal(err)
	}
	entries, bytesNow := c2.Stats()
	if entries != 3 || bytesNow > 340 {
		t.Fatalf("after reopen: %d entries, %d bytes (budget 340)", entries, bytesNow)
	}
	for _, key := range keys[:3] {
		if _, ok := c2.Get(key); ok {
			t.Fatalf("old entry %s survived eviction", key[:8])
		}
	}
	for _, key := range keys[3:] {
		if _, ok := c2.Get(key); !ok {
			t.Fatalf("new entry %s evicted", key[:8])
		}
	}
}

func TestValidID(t *testing.T) {
	good := []string{"abcdef12", testID}
	bad := []string{"", "short", "ABCDEF12", "../../etc/passwd", "abcdef1g", "abc def12"}
	for _, id := range good {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false", id)
		}
	}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true", id)
		}
	}
}
