// Package plot renders small ASCII line charts so the experiment harness
// can regenerate the paper's figures directly in a terminal, with no
// external plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name   string
	Y      []float64
	Marker byte
}

// defaultMarkers cycle when a series does not set one.
var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Chart configures a plot. Zero values get sensible defaults.
type Chart struct {
	Title  string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 16)
	// YMin/YMax fix the vertical range; when both are zero the range is
	// derived from the data.
	YMin, YMax float64
	// HLines draws horizontal reference lines (e.g. grey-zone bounds).
	HLines []HLine
	// XLabel annotates the x axis.
	XLabel string
}

// HLine is a horizontal reference line at Y labeled Label.
type HLine struct {
	Y     float64
	Label string
}

// Render draws the series into a text block. Series are resampled to the
// chart width (mean pooling), so arbitrarily long trajectories render in
// O(width) columns.
func (c Chart) Render(series ...Series) string {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}

	ymin, ymax := c.YMin, c.YMax
	if ymin == 0 && ymax == 0 {
		ymin, ymax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, y := range s.Y {
				if math.IsNaN(y) {
					continue
				}
				ymin = math.Min(ymin, y)
				ymax = math.Max(ymax, y)
			}
		}
		for _, h := range c.HLines {
			ymin = math.Min(ymin, h.Y)
			ymax = math.Max(ymax, h.Y)
		}
		if math.IsInf(ymin, 1) { // no data at all
			ymin, ymax = 0, 1
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for _, h := range c.HLines {
		r := row(h.Y)
		for x := 0; x < width; x++ {
			if grid[r][x] == ' ' {
				grid[r][x] = '-'
			}
		}
	}

	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		cols := resample(s.Y, width)
		for x, y := range cols {
			if math.IsNaN(y) {
				continue
			}
			grid[row(y)][x] = marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	labelW := 0
	labels := make([]string, height)
	for r := 0; r < height; r++ {
		y := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		labels[r] = fmt.Sprintf("%.4g", y)
		if len(labels[r]) > labelW {
			labelW = len(labels[r])
		}
	}
	for r := 0; r < height; r++ {
		// Label the top, middle, and bottom rows only.
		label := ""
		if r == 0 || r == height-1 || r == height/2 {
			label = labels[r]
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW, label, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", labelW+1))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%*s  %s\n", labelW, "", c.XLabel)
	}
	var legend []string
	for si, s := range series {
		if s.Name == "" {
			continue
		}
		m := s.Marker
		if m == 0 {
			m = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", m, s.Name))
	}
	for _, h := range c.HLines {
		if h.Label != "" {
			legend = append(legend, fmt.Sprintf("- %s", h.Label))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%*s  legend: %s\n", labelW, "", strings.Join(legend, " | "))
	}
	return b.String()
}

// resample reduces (or stretches) ys to exactly width columns using mean
// pooling per column; an empty input yields all-NaN columns.
func resample(ys []float64, width int) []float64 {
	out := make([]float64, width)
	if len(ys) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for x := 0; x < width; x++ {
		lo := x * len(ys) / width
		hi := (x + 1) * len(ys) / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(ys) {
			hi = len(ys)
		}
		sum, cnt := 0.0, 0
		for i := lo; i < hi; i++ {
			if !math.IsNaN(ys[i]) {
				sum += ys[i]
				cnt++
			}
		}
		if cnt == 0 {
			out[x] = math.NaN()
		} else {
			out[x] = sum / float64(cnt)
		}
	}
	return out
}

// Ints converts an int series to float64 for plotting.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Func samples f at n evenly spaced points over [lo, hi].
func Func(f func(float64) float64, lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := range out {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = f(x)
	}
	return out
}
