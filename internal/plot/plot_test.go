package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Title: "test chart", Width: 20, Height: 5}
	out := c.Render(Series{Name: "up", Y: []float64{0, 1, 2, 3, 4}})
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "legend: * up") {
		t.Fatalf("missing legend in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + legend = 8
	if len(lines) != 8 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestRenderMonotoneSeriesSlopesCorrectly(t *testing.T) {
	c := Chart{Width: 10, Height: 5}
	out := c.Render(Series{Y: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	lines := strings.Split(out, "\n")
	// The first plot row (max y) should have a marker near the right
	// edge; the last plot row near the left edge.
	top := strings.Index(lines[0], "*")
	bottom := strings.Index(lines[4], "*")
	if top < 0 || bottom < 0 {
		t.Fatalf("markers missing:\n%s", out)
	}
	if top <= bottom {
		t.Fatalf("increasing series renders with top marker left of bottom:\n%s", out)
	}
}

func TestRenderHLines(t *testing.T) {
	c := Chart{Width: 12, Height: 6, HLines: []HLine{{Y: 5, Label: "bound"}}}
	out := c.Render(Series{Y: []float64{0, 10}})
	if !strings.Contains(out, "------") {
		t.Fatalf("missing hline:\n%s", out)
	}
	if !strings.Contains(out, "- bound") {
		t.Fatal("missing hline legend")
	}
}

func TestRenderEmptySeries(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	out := c.Render(Series{Name: "empty"})
	if out == "" {
		t.Fatal("empty series should still render axes")
	}
}

func TestRenderNaNOnlySeries(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	out := c.Render(Series{Y: []float64{math.NaN(), math.NaN()}})
	if strings.Contains(out, "*") {
		t.Fatal("NaN values must not be plotted")
	}
}

func TestRenderFixedRangeClamps(t *testing.T) {
	c := Chart{Width: 10, Height: 4, YMin: 0, YMax: 1}
	out := c.Render(Series{Y: []float64{-100, 100}})
	if !strings.Contains(out, "*") {
		t.Fatal("out-of-range values should clamp, not vanish")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{Width: 8, Height: 4}
	out := c.Render(Series{Y: []float64{5, 5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series missing markers:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	c := Chart{Width: 16, Height: 6}
	out := c.Render(
		Series{Name: "a", Y: []float64{0, 1, 2}},
		Series{Name: "b", Y: []float64{2, 1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers not distinct:\n%s", out)
	}
}

func TestRenderXLabel(t *testing.T) {
	c := Chart{Width: 8, Height: 3, XLabel: "rounds"}
	out := c.Render(Series{Y: []float64{1, 2}})
	if !strings.Contains(out, "rounds") {
		t.Fatal("missing x label")
	}
}

func TestResample(t *testing.T) {
	// Downsample 6 -> 3 with mean pooling.
	got := resample([]float64{1, 3, 5, 7, 9, 11}, 3)
	want := []float64{2, 6, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("resample %v, want %v", got, want)
		}
	}
	// Upsample 2 -> 4: nearest buckets.
	up := resample([]float64{1, 9}, 4)
	if up[0] != 1 || up[3] != 9 {
		t.Fatalf("upsample %v", up)
	}
	// Empty -> NaN.
	for _, v := range resample(nil, 3) {
		if !math.IsNaN(v) {
			t.Fatal("empty resample should be NaN")
		}
	}
	// NaN entries skipped in pooling.
	mixed := resample([]float64{math.NaN(), 4}, 1)
	if mixed[0] != 4 {
		t.Fatalf("NaN pooling %v", mixed)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, -2, 3})
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("Ints %v", got)
	}
}

func TestFunc(t *testing.T) {
	ys := Func(func(x float64) float64 { return 2 * x }, 0, 10, 11)
	if len(ys) != 11 || ys[0] != 0 || ys[10] != 20 || ys[5] != 10 {
		t.Fatalf("Func samples %v", ys)
	}
	short := Func(func(x float64) float64 { return x }, 0, 1, 1)
	if len(short) != 2 {
		t.Fatal("n < 2 should clamp to 2")
	}
}
