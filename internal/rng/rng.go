// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded through splitmix64. It is not
// cryptographically secure; it is chosen for speed (a few ns per draw, no
// locks) and for cheap stream forking: every shard of the parallel engine
// owns an independent stream derived deterministically from (seed, shard),
// so simulation results are reproducible for a fixed (seed, shard count).
package rng

import (
	"math"
	"math/bits"
)

// Rng is a xoshiro256++ generator. The zero value is NOT valid; use New.
// Rng is not safe for concurrent use; fork one stream per goroutine.
type Rng struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the splitmix64 state and returns the next value.
// It is used only for seeding, per Blackman & Vigna's recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed, including zero, gives
// a valid, full-period stream.
func New(seed uint64) *Rng {
	r := &Rng{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place from seed.
func (r *Rng) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
}

// Fork returns a new independent stream derived from this generator's
// current state and the given stream index. Forking does not advance the
// parent; two forks with distinct indices are distinct, and the same
// (parent state, index) always yields the same child.
func (r *Rng) Fork(index uint64) *Rng {
	// Mix the parent state with the index through splitmix64 so that
	// consecutive indices land far apart in the child seed space.
	seed := r.s0 ^ rotl(r.s2, 17) ^ (index * 0xd1342543de82ef95)
	return New(seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rng) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Word53 returns the raw 53-bit word underlying Float64: Float64 is
// exactly float64(Word53()) / 2^53, so integer comparisons against a
// Cutoff reproduce Float64-based Bernoulli draws bit for bit while
// skipping the int→float conversion and the float compare.
func (r *Rng) Word53() uint64 { return r.Uint64() >> 11 }

// Cutoff converts a probability p in (0, 1) to the integer threshold c
// such that Word53() < c exactly when Float64() < p. The scaling by 2^53
// is exact for every normal float64 in (0, 1), so for any such p
//
//	r.Bernoulli(p)  ==  r.Word53() < Cutoff(p)
//
// draw for draw. Callers must handle p <= 0 and p >= 1 themselves
// (Bernoulli short-circuits those without consuming a draw).
func Cutoff(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// BernoulliCut returns true with probability cut/2^53, consuming exactly
// one draw. With cut = Cutoff(p) this is bit-identical to Bernoulli(p)
// for p in (0, 1).
func (r *Rng) BernoulliCut(cut uint64) bool { return r.Word53() < cut }

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *Rng) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded generation.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method: multiply-shift with a rejection step to remove bias.
	x := r.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. Average cost is ~1.27 uniform pairs per variate.
func (r *Rng) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rng) ExpFloat64() float64 {
	// -log(U) with U in (0,1]; guard against U == 0.
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Rng) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
