package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/1000 draws", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Fork(0)
	c2 := parent.Fork(1)
	agree := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			agree++
		}
	}
	if agree > 2 {
		t.Fatalf("sibling forks agreed on %d/1000 draws", agree)
	}
}

func TestForkDeterministic(t *testing.T) {
	p1 := New(5)
	p2 := New(5)
	c1 := p1.Fork(3)
	c2 := p2.Fork(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same (parent, index) forks diverged at draw %d", i)
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.Fork(1)
	_ = a.Fork(2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("forking advanced the parent stream (draw %d)", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12345)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	r := New(8)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(77)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn(%d): value %d count %d, want about %.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(21)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		const trials = 100000
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		sd := math.Sqrt(p * (1 - p) / trials)
		if math.Abs(got-p) > 6*sd {
			t.Fatalf("Bernoulli(%v) frequency %v (|diff| > 6 sd)", p, got)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(18)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(23)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Perm(%d)[0]=%d count %d, want about %.0f", n, v, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
