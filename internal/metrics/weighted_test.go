package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"taskalloc/internal/demand"
)

func TestWeightedRegret(t *testing.T) {
	dem := demand.Vector{10, 10}
	// Task 0 underloaded by 4, task 1 overloaded by 6.
	got := WeightedRegret([]int{6, 16}, dem, 2, 0.5)
	if got != 2*4+0.5*6 {
		t.Fatalf("WeightedRegret = %v, want 11", got)
	}
	// Equal weights reduce to plain regret.
	if WeightedRegret([]int{6, 16}, dem, 1, 1) != float64(Regret([]int{6, 16}, dem)) {
		t.Fatal("unit weights must match Regret")
	}
}

// TestWeightedRegretReducesToRegret is the unit-weight identity under
// random loads.
func TestWeightedRegretReducesToRegret(t *testing.T) {
	f := func(l0, l1 uint8, d0, d1 uint8) bool {
		dem := demand.Vector{int(d0) + 1, int(d1) + 1}
		loads := []int{int(l0), int(l1)}
		return WeightedRegret(loads, dem, 1, 1) == float64(Regret(loads, dem))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRecorderAccumulates(t *testing.T) {
	dem := demand.Vector{10}
	w := NewWeightedRecorder(1, 2, 1, 0.5, 0)
	w.Observe(1, []int{6}, dem, 3)  // under 4: cost 8 + 0.5*3 = 9.5
	w.Observe(2, []int{14}, dem, 5) // over 4: cost 4 + 0.5*2 = 5
	if w.Rounds() != 2 {
		t.Fatalf("Rounds = %d", w.Rounds())
	}
	if got := w.TotalCost(); got != 14.5 {
		t.Fatalf("TotalCost = %v, want 14.5", got)
	}
	if got := w.AvgCost(); got != 7.25 {
		t.Fatalf("AvgCost = %v, want 7.25", got)
	}
	under, over, switches := w.Breakdown()
	if under != 4 || over != 4 || switches != 5 {
		t.Fatalf("Breakdown = (%v, %v, %d)", under, over, switches)
	}
}

func TestWeightedRecorderBurnIn(t *testing.T) {
	dem := demand.Vector{10}
	w := NewWeightedRecorder(1, 1, 1, 0, 1)
	w.Observe(1, []int{0}, dem, 0) // burn-in: cost 10
	w.Observe(2, []int{8}, dem, 0) // post: cost 2
	if got := w.AvgCost(); got != 2 {
		t.Fatalf("AvgCost = %v, want 2 (burn-in excluded)", got)
	}
	if got := w.TotalCost(); got != 12 {
		t.Fatalf("TotalCost = %v, want 12", got)
	}
}

func TestWeightedRecorderEmptyWindow(t *testing.T) {
	w := NewWeightedRecorder(1, 1, 1, 0, 100)
	w.Observe(1, []int{1}, demand.Vector{2}, 0)
	if !math.IsNaN(w.AvgCost()) {
		t.Fatal("empty post window should be NaN")
	}
}

func TestWeightedRecorderPanics(t *testing.T) {
	mustPanic(t, "k=0", func() { NewWeightedRecorder(0, 1, 1, 1, 0) })
	mustPanic(t, "neg weight", func() { NewWeightedRecorder(1, -1, 1, 1, 0) })
	w := NewWeightedRecorder(2, 1, 1, 1, 0)
	mustPanic(t, "mismatch", func() { w.Observe(1, []int{1}, demand.Vector{1, 2}, 0) })
	w2 := NewWeightedRecorder(1, 1, 1, 1, 0)
	w2.Observe(1, []int{1}, demand.Vector{2}, 10)
	mustPanic(t, "switch counter backwards", func() {
		w2.Observe(2, []int{1}, demand.Vector{2}, 5)
	})
}
