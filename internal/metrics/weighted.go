package metrics

import (
	"fmt"
	"math"

	"taskalloc/internal/demand"
)

// WeightedRegret is the asymmetric-cost variant the paper leaves as a
// future direction (Section 2.3): underload (work not done) and overload
// (work wasted) are charged different weights.
func WeightedRegret(loads []int, dem demand.Vector, wUnder, wOver float64) float64 {
	total := 0.0
	for j, d := range dem {
		deficit := d - loads[j]
		if deficit > 0 {
			total += wUnder * float64(deficit)
		} else {
			total += wOver * float64(-deficit)
		}
	}
	return total
}

// WeightedRecorder accumulates weighted regret and the switching-cost
// composite the paper's Section 3.4 remark motivates:
//
//	cost(t) = wUnder·underload(t) + wOver·overload(t) + wSwitch·switches(t)
//
// Switch counts are fed separately (they come from the engine, not the
// loads). Not safe for concurrent use.
type WeightedRecorder struct {
	k                      int
	wUnder, wOver, wSwitch float64
	burnIn                 uint64

	rounds, postRounds uint64
	total, post        float64
	underTotal         float64
	overTotal          float64
	switchTotal        uint64
	lastSwitches       uint64
}

// NewWeightedRecorder builds a recorder for k tasks with the given
// weights; burnIn rounds are excluded from the averages.
func NewWeightedRecorder(k int, wUnder, wOver, wSwitch float64, burnIn uint64) *WeightedRecorder {
	if k <= 0 {
		panic("metrics: NewWeightedRecorder needs k >= 1")
	}
	if wUnder < 0 || wOver < 0 || wSwitch < 0 {
		panic("metrics: negative weights")
	}
	return &WeightedRecorder{k: k, wUnder: wUnder, wOver: wOver, wSwitch: wSwitch, burnIn: burnIn}
}

// Observe records one round. cumulativeSwitches is the engine's running
// switch counter (monotone); the recorder differences it internally.
func (w *WeightedRecorder) Observe(t uint64, loads []int, dem demand.Vector, cumulativeSwitches uint64) {
	if len(loads) != w.k || len(dem) != w.k {
		panic(fmt.Sprintf("metrics: WeightedRecorder.Observe with %d loads, %d demands, want %d",
			len(loads), len(dem), w.k))
	}
	if cumulativeSwitches < w.lastSwitches {
		panic("metrics: switch counter went backwards")
	}
	newSwitches := cumulativeSwitches - w.lastSwitches
	w.lastSwitches = cumulativeSwitches
	w.switchTotal += newSwitches

	var under, over float64
	for j, d := range dem {
		deficit := d - loads[j]
		if deficit > 0 {
			under += float64(deficit)
		} else {
			over += float64(-deficit)
		}
	}
	w.underTotal += under
	w.overTotal += over

	cost := w.wUnder*under + w.wOver*over + w.wSwitch*float64(newSwitches)
	w.rounds++
	w.total += cost
	if t > w.burnIn {
		w.postRounds++
		w.post += cost
	}
}

// Rounds returns the number of observed rounds.
func (w *WeightedRecorder) Rounds() uint64 { return w.rounds }

// TotalCost returns the cumulative weighted cost.
func (w *WeightedRecorder) TotalCost() float64 { return w.total }

// AvgCost returns the post-burn-in average cost per round (NaN if empty).
func (w *WeightedRecorder) AvgCost() float64 {
	if w.postRounds == 0 {
		return math.NaN()
	}
	return w.post / float64(w.postRounds)
}

// Breakdown returns the cumulative unweighted underload, overload, and
// switch totals.
func (w *WeightedRecorder) Breakdown() (under, over float64, switches uint64) {
	return w.underTotal, w.overTotal, w.switchTotal
}
