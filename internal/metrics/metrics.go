// Package metrics measures task-allocation quality in the paper's terms:
// the per-round regret r(t) = Σ_j |d(j) − W(j)|, its cumulative total
// R(t), the three-way decomposition R⁺/R≈/R⁻ used in the Theorem 3.1
// analysis, the potentials Φ and Ψ of Claim 4.5, deficit-bound violation
// counts, and oscillation statistics (zero crossings, amplitudes).
package metrics

import (
	"fmt"
	"math"

	"taskalloc/internal/demand"
)

// Regret returns the instantaneous regret of loads against dem.
func Regret(loads []int, dem demand.Vector) int {
	total := 0
	for j, d := range dem {
		total += abs(d - loads[j])
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// fpSlack absorbs float rounding in threshold comparisons like
// (1+γ)·d, which is not exactly representable (e.g. 1.1*100 > 110).
const fpSlack = 1e-9

// Phi is the Claim 4.5 potential Σ_j ((1+γ)d(j) − W(j))⁺: the total
// worker shortfall against the saturation level (1+γ)d.
func Phi(loads []int, dem demand.Vector, gamma float64) float64 {
	total := 0.0
	for j, d := range dem {
		if v := (1+gamma)*float64(d) - float64(loads[j]); v > fpSlack {
			total += v
		}
	}
	return total
}

// Psi is the Claim 4.5 potential counting unsaturated tasks:
// Σ_j 1[W(j) < (1+γ)d(j)].
func Psi(loads []int, dem demand.Vector, gamma float64) int {
	count := 0
	for j, d := range dem {
		if float64(loads[j]) < (1+gamma)*float64(d)-fpSlack {
			count++
		}
	}
	return count
}

// Saturated reports whether every task j has W(j) >= (1−γ)d(j)
// (the Claim 4.4 condition under which r⁻ stays zero).
func Saturated(loads []int, dem demand.Vector, gamma float64) bool {
	for j, d := range dem {
		if float64(loads[j]) < (1-gamma)*float64(d)-fpSlack {
			return false
		}
	}
	return true
}

// Recorder accumulates regret statistics as a colony.Observer. The zero
// value is not usable; construct with NewRecorder. Not safe for
// concurrent use.
type Recorder struct {
	k int
	// Decomposition thresholds (Section 4): r⁺ counts load above
	// (1+c⁺γ)d, r⁻ counts load below (1−c⁻γ)d, r≈ is the rest, with
	// c⁺ = 1.2cs and c⁻ = 1+1.2cs.
	gamma, cPlus, cMinus float64
	// deficitBound is the Theorem 3.1 per-task excursion bound
	// 5γd(j)+3; rounds violating it are counted per task.
	burnIn uint64

	rounds     uint64
	postRounds uint64

	totalRegret int64
	postRegret  int64
	rPlus       int64
	rApprox     int64
	rMinus      int64

	maxAbsDeficit   []int
	zeroCrossings   []int64
	prevSign        []int8
	boundViolations []int64

	peakRegret    int
	lastRegret    int
	sumSqPost     float64
	lastLoadsCopy []int
}

// NewRecorder builds a Recorder for k tasks. gamma and cs feed the
// decomposition thresholds and the Theorem 3.1 deficit bound; burnIn
// rounds are excluded from the post-burn-in averages (but still counted
// in the cumulative totals).
func NewRecorder(k int, gamma, cs float64, burnIn uint64) *Recorder {
	if k <= 0 {
		panic("metrics: NewRecorder needs k >= 1")
	}
	if gamma < 0 || cs < 0 {
		panic("metrics: negative gamma or cs")
	}
	return &Recorder{
		k:               k,
		gamma:           gamma,
		cPlus:           1.2 * cs,
		cMinus:          1 + 1.2*cs,
		burnIn:          burnIn,
		maxAbsDeficit:   make([]int, k),
		zeroCrossings:   make([]int64, k),
		prevSign:        make([]int8, k),
		boundViolations: make([]int64, k),
		lastLoadsCopy:   make([]int, k),
	}
}

// Observe implements colony.Observer.
func (r *Recorder) Observe(t uint64, loads []int, dem demand.Vector) {
	if len(loads) != r.k || len(dem) != r.k {
		panic(fmt.Sprintf("metrics: Observe with %d loads, %d demands, want %d",
			len(loads), len(dem), r.k))
	}
	r.rounds++
	post := t > r.burnIn

	regret := 0
	for j, d := range dem {
		deficit := d - loads[j]
		ad := abs(deficit)
		regret += ad

		if ad > r.maxAbsDeficit[j] {
			r.maxAbsDeficit[j] = ad
		}
		if float64(ad) > 5*r.gamma*float64(d)+3 {
			r.boundViolations[j]++
		}

		// Zero crossings: strict sign flips of the deficit.
		sign := int8(0)
		if deficit > 0 {
			sign = 1
		} else if deficit < 0 {
			sign = -1
		}
		if sign != 0 && r.prevSign[j] != 0 && sign != r.prevSign[j] {
			r.zeroCrossings[j]++
		}
		if sign != 0 {
			r.prevSign[j] = sign
		}

		// Decomposition.
		fd := float64(d)
		w := float64(loads[j])
		switch {
		case w > (1+r.cPlus*r.gamma)*fd:
			r.rPlus += int64(ad)
		case w < (1-r.cMinus*r.gamma)*fd:
			r.rMinus += int64(ad)
		default:
			r.rApprox += int64(ad)
		}
	}

	r.totalRegret += int64(regret)
	r.lastRegret = regret
	if regret > r.peakRegret {
		r.peakRegret = regret
	}
	if post {
		r.postRounds++
		r.postRegret += int64(regret)
		r.sumSqPost += float64(regret) * float64(regret)
	}
	copy(r.lastLoadsCopy, loads)
}

// Rounds returns the number of observed rounds.
func (r *Recorder) Rounds() uint64 { return r.rounds }

// TotalRegret returns R(t) over all observed rounds.
func (r *Recorder) TotalRegret() int64 { return r.totalRegret }

// LastRegret returns r(t) of the most recent round.
func (r *Recorder) LastRegret() int { return r.lastRegret }

// PeakRegret returns max_t r(t).
func (r *Recorder) PeakRegret() int { return r.peakRegret }

// AvgRegret returns the average per-round regret after burn-in, or NaN if
// no post-burn-in rounds were observed.
func (r *Recorder) AvgRegret() float64 {
	if r.postRounds == 0 {
		return math.NaN()
	}
	return float64(r.postRegret) / float64(r.postRounds)
}

// StdRegret returns the post-burn-in standard deviation of r(t).
func (r *Recorder) StdRegret() float64 {
	if r.postRounds == 0 {
		return math.NaN()
	}
	mean := r.AvgRegret()
	v := r.sumSqPost/float64(r.postRounds) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Closeness returns AvgRegret / (γ*·Σd): the paper's c in "c-close". It
// returns NaN for γ* <= 0 or an empty window.
func (r *Recorder) Closeness(gammaStar float64, demSum int) float64 {
	if gammaStar <= 0 || demSum <= 0 {
		return math.NaN()
	}
	return r.AvgRegret() / (gammaStar * float64(demSum))
}

// Decomposition returns the cumulative (R⁺, R≈, R⁻).
func (r *Recorder) Decomposition() (plus, approx, minus int64) {
	return r.rPlus, r.rApprox, r.rMinus
}

// MaxAbsDeficit returns the per-task maximum |Δ(j)| observed.
func (r *Recorder) MaxAbsDeficit() []int { return r.maxAbsDeficit }

// ZeroCrossings returns the per-task count of deficit sign flips — the
// oscillation measure of Theorem 3.3.
func (r *Recorder) ZeroCrossings() []int64 { return r.zeroCrossings }

// BoundViolations returns, per task, the number of rounds with
// |Δ(j)| > 5γd(j)+3 — Theorem 3.1 predicts O(k·log n/γ) such rounds in
// any n⁴-length window.
func (r *Recorder) BoundViolations() []int64 { return r.boundViolations }

// LastLoads returns a copy of the most recently observed loads.
func (r *Recorder) LastLoads() []int {
	out := make([]int, r.k)
	copy(out, r.lastLoadsCopy)
	return out
}

// Observer adapts the Recorder to the colony.Observer func type without
// forcing packages to import colony.
func (r *Recorder) Observer() func(t uint64, loads []int, dem demand.Vector) {
	return r.Observe
}

// Multi fans one observation out to several observers.
func Multi(obs ...func(t uint64, loads []int, dem demand.Vector)) func(t uint64, loads []int, dem demand.Vector) {
	return func(t uint64, loads []int, dem demand.Vector) {
		for _, o := range obs {
			if o != nil {
				o(t, loads, dem)
			}
		}
	}
}

// ConvergenceTime scans a regret series (one entry per round) and returns
// the first index after which the regret stays at or below threshold for
// at least hold consecutive rounds, or -1 if it never does.
func ConvergenceTime(series []int, threshold, hold int) int {
	if hold <= 0 {
		hold = 1
	}
	run := 0
	for i, v := range series {
		if v <= threshold {
			run++
			if run >= hold {
				return i - hold + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}
