package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"taskalloc/internal/demand"
)

func TestRegret(t *testing.T) {
	dem := demand.Vector{10, 20, 30}
	cases := []struct {
		loads []int
		want  int
	}{
		{[]int{10, 20, 30}, 0},
		{[]int{0, 0, 0}, 60},
		{[]int{15, 20, 25}, 10},
		{[]int{20, 40, 60}, 60},
	}
	for _, c := range cases {
		if got := Regret(c.loads, dem); got != c.want {
			t.Fatalf("Regret(%v) = %d, want %d", c.loads, got, c.want)
		}
	}
}

// TestRegretNonNegativeProperty: regret is always >= 0 and zero only at
// the exact demand.
func TestRegretNonNegativeProperty(t *testing.T) {
	f := func(l0, l1 uint8, d0, d1 uint8) bool {
		dem := demand.Vector{int(d0) + 1, int(d1) + 1}
		loads := []int{int(l0), int(l1)}
		r := Regret(loads, dem)
		if r < 0 {
			return false
		}
		if r == 0 {
			return loads[0] == dem[0] && loads[1] == dem[1]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPhi(t *testing.T) {
	dem := demand.Vector{100}
	gamma := 0.1
	// Saturation level is 110.
	if got := Phi([]int{110}, dem, gamma); got != 0 {
		t.Fatalf("Phi at saturation = %v, want 0", got)
	}
	if got := Phi([]int{60}, dem, gamma); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Phi = %v, want 50", got)
	}
	if got := Phi([]int{200}, dem, gamma); got != 0 {
		t.Fatalf("Phi above saturation = %v, want 0", got)
	}
}

func TestPsi(t *testing.T) {
	dem := demand.Vector{100, 100}
	gamma := 0.1
	if got := Psi([]int{110, 109}, dem, gamma); got != 1 {
		t.Fatalf("Psi = %d, want 1", got)
	}
	if got := Psi([]int{200, 300}, dem, gamma); got != 0 {
		t.Fatalf("Psi = %d, want 0", got)
	}
}

func TestSaturated(t *testing.T) {
	dem := demand.Vector{100, 50}
	if !Saturated([]int{90, 45}, dem, 0.1) {
		t.Fatal("loads at (1-γ)d should be saturated")
	}
	if Saturated([]int{89, 45}, dem, 0.1) {
		t.Fatal("load below (1-γ)d should not be saturated")
	}
}

func TestRecorderTotals(t *testing.T) {
	dem := demand.Vector{10}
	r := NewRecorder(1, 0.05, 2.4, 0)
	r.Observe(1, []int{5}, dem)  // regret 5
	r.Observe(2, []int{12}, dem) // regret 2
	r.Observe(3, []int{10}, dem) // regret 0
	if r.Rounds() != 3 {
		t.Fatalf("Rounds = %d", r.Rounds())
	}
	if r.TotalRegret() != 7 {
		t.Fatalf("TotalRegret = %d, want 7", r.TotalRegret())
	}
	if r.LastRegret() != 0 {
		t.Fatalf("LastRegret = %d, want 0", r.LastRegret())
	}
	if r.PeakRegret() != 5 {
		t.Fatalf("PeakRegret = %d, want 5", r.PeakRegret())
	}
	if got := r.AvgRegret(); math.Abs(got-7.0/3) > 1e-12 {
		t.Fatalf("AvgRegret = %v, want 7/3", got)
	}
}

func TestRecorderBurnIn(t *testing.T) {
	dem := demand.Vector{10}
	r := NewRecorder(1, 0.05, 2.4, 2)
	r.Observe(1, []int{0}, dem)  // burn-in, regret 10
	r.Observe(2, []int{0}, dem)  // burn-in, regret 10
	r.Observe(3, []int{9}, dem)  // post, regret 1
	r.Observe(4, []int{11}, dem) // post, regret 1
	if r.TotalRegret() != 22 {
		t.Fatalf("TotalRegret = %d, want 22", r.TotalRegret())
	}
	if got := r.AvgRegret(); got != 1 {
		t.Fatalf("AvgRegret = %v, want 1 (burn-in excluded)", got)
	}
	if got := r.StdRegret(); got != 0 {
		t.Fatalf("StdRegret = %v, want 0", got)
	}
}

func TestRecorderAvgRegretEmptyWindow(t *testing.T) {
	r := NewRecorder(1, 0.05, 2.4, 100)
	r.Observe(1, []int{5}, demand.Vector{10})
	if !math.IsNaN(r.AvgRegret()) {
		t.Fatal("AvgRegret with empty post window should be NaN")
	}
	if !math.IsNaN(r.StdRegret()) {
		t.Fatal("StdRegret with empty post window should be NaN")
	}
}

func TestRecorderCloseness(t *testing.T) {
	dem := demand.Vector{100}
	r := NewRecorder(1, 0.05, 2.4, 0)
	r.Observe(1, []int{90}, dem) // regret 10
	// closeness = 10 / (γ*·Σd) with γ* = 0.05, Σd = 100 -> 2.
	if got := r.Closeness(0.05, 100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Closeness = %v, want 2", got)
	}
	if !math.IsNaN(r.Closeness(0, 100)) || !math.IsNaN(r.Closeness(0.1, 0)) {
		t.Fatal("invalid closeness inputs should give NaN")
	}
}

func TestRecorderDecomposition(t *testing.T) {
	// gamma = 0.1, cs = 2.4: c+ = 2.88, c- = 3.88.
	// Thresholds for d=100: above 128.8 -> R+, below 61.2 -> R-.
	dem := demand.Vector{100}
	r := NewRecorder(1, 0.1, 2.4, 0)
	r.Observe(1, []int{150}, dem) // R+ += 50
	r.Observe(2, []int{100}, dem) // R~ += 0
	r.Observe(3, []int{110}, dem) // R~ += 10
	r.Observe(4, []int{50}, dem)  // R- += 50
	plus, approx, minus := r.Decomposition()
	if plus != 50 || approx != 10 || minus != 50 {
		t.Fatalf("decomposition (%d, %d, %d), want (50, 10, 50)", plus, approx, minus)
	}
	if plus+approx+minus != r.TotalRegret() {
		t.Fatal("decomposition must sum to total regret")
	}
}

// TestDecompositionSumsToTotal is the invariant R = R⁺ + R≈ + R⁻ under
// random trajectories.
func TestDecompositionSumsToTotal(t *testing.T) {
	f := func(loadsRaw [8]uint8) bool {
		dem := demand.Vector{50, 70}
		r := NewRecorder(2, 0.05, 2.4, 0)
		for i := 0; i < 4; i++ {
			loads := []int{int(loadsRaw[2*i]), int(loadsRaw[2*i+1])}
			r.Observe(uint64(i+1), loads, dem)
		}
		plus, approx, minus := r.Decomposition()
		return plus+approx+minus == r.TotalRegret()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderZeroCrossings(t *testing.T) {
	dem := demand.Vector{10}
	r := NewRecorder(1, 0.05, 2.4, 0)
	// Deficits: +5, -2, -1, +3, 0, -4 -> crossings at rounds 2, 4, 6.
	for i, load := range []int{5, 12, 11, 7, 10, 14} {
		r.Observe(uint64(i+1), []int{load}, dem)
	}
	if got := r.ZeroCrossings()[0]; got != 3 {
		t.Fatalf("ZeroCrossings = %d, want 3", got)
	}
}

func TestRecorderMaxAbsDeficitAndViolations(t *testing.T) {
	dem := demand.Vector{100}
	gamma := 0.05 // bound = 5*0.05*100 + 3 = 28
	r := NewRecorder(1, gamma, 2.4, 0)
	r.Observe(1, []int{100 - 28}, dem) // |Δ|=28, not a violation
	r.Observe(2, []int{100 - 29}, dem) // violation
	r.Observe(3, []int{100 + 40}, dem) // violation, max 40
	if got := r.MaxAbsDeficit()[0]; got != 40 {
		t.Fatalf("MaxAbsDeficit = %d, want 40", got)
	}
	if got := r.BoundViolations()[0]; got != 2 {
		t.Fatalf("BoundViolations = %d, want 2", got)
	}
}

func TestRecorderLastLoadsIsCopy(t *testing.T) {
	dem := demand.Vector{10, 20}
	r := NewRecorder(2, 0.05, 2.4, 0)
	loads := []int{3, 4}
	r.Observe(1, loads, dem)
	got := r.LastLoads()
	loads[0] = 99
	if got[0] != 3 {
		t.Fatal("LastLoads must be a snapshot")
	}
	got[1] = 77
	if r.LastLoads()[1] != 4 {
		t.Fatal("returned slice must not alias recorder state")
	}
}

func TestRecorderPanics(t *testing.T) {
	mustPanic(t, "k=0", func() { NewRecorder(0, 0.1, 2.4, 0) })
	mustPanic(t, "neg gamma", func() { NewRecorder(1, -0.1, 2.4, 0) })
	r := NewRecorder(2, 0.05, 2.4, 0)
	mustPanic(t, "mismatched", func() { r.Observe(1, []int{1}, demand.Vector{1, 2}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestMulti(t *testing.T) {
	dem := demand.Vector{5}
	a := NewRecorder(1, 0.05, 2.4, 0)
	b := NewRecorder(1, 0.05, 2.4, 0)
	obs := Multi(a.Observer(), nil, b.Observer())
	obs(1, []int{3}, dem)
	if a.TotalRegret() != 2 || b.TotalRegret() != 2 {
		t.Fatal("Multi did not fan out")
	}
}

func TestConvergenceTime(t *testing.T) {
	series := []int{9, 8, 7, 2, 1, 5, 1, 1, 1, 1}
	if got := ConvergenceTime(series, 2, 3); got != 6 {
		t.Fatalf("ConvergenceTime = %d, want 6", got)
	}
	if got := ConvergenceTime(series, 2, 1); got != 3 {
		t.Fatalf("hold=1: %d, want 3", got)
	}
	if got := ConvergenceTime(series, 0, 1); got != -1 {
		t.Fatalf("unreachable threshold: %d, want -1", got)
	}
	if got := ConvergenceTime(series, 2, 0); got != 3 {
		t.Fatalf("hold=0 treated as 1: %d, want 3", got)
	}
	if got := ConvergenceTime(nil, 5, 1); got != -1 {
		t.Fatalf("empty series: %d, want -1", got)
	}
}
