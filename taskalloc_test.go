package taskalloc

import (
	"math"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no ants", Config{Demands: []int{10}}},
		{"no demands", Config{Ants: 100}},
		{"zero demand entry", Config{Ants: 100, Demands: []int{10, 0}}},
		{"adversarial without gammaAd", Config{Ants: 100, Demands: []int{10},
			Noise: Noise{Kind: NoiseAdversarial}}},
		{"bad grey strategy", Config{Ants: 100, Demands: []int{10},
			Noise: Noise{Kind: NoiseAdversarial, GammaAd: 0.1, GreyStrategy: "nope"}}},
		{"precise without epsilon", Config{Ants: 100, Demands: []int{10},
			Algorithm: PreciseSigmoid}},
		{"gamma too large", Config{Ants: 100, Demands: []int{10}, Gamma: 0.2}},
		{"unknown algorithm", Config{Ants: 100, Demands: []int{10}, Algorithm: Algorithm(99)}},
		{"unknown noise", Config{Ants: 100, Demands: []int{10}, Noise: Noise{Kind: NoiseKind(99)}}},
		{"unknown init", Config{Ants: 100, Demands: []int{10}, Init: InitKind(99)}},
		{"assumptions: sum too large", Config{Ants: 100, Demands: []int{80},
			CheckAssumptions: true}},
		{"exact init too big", Config{Ants: 100, Demands: []int{200}, Init: InitExact}},
		{"bad demand change", Config{Ants: 100, Demands: []int{10},
			DemandChanges: []DemandChange{{At: 5, Demands: []int{1, 2}}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := New(Config{Ants: 100, Demands: []int{20}}); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

func TestAlgorithmAndNoiseStrings(t *testing.T) {
	names := map[string]bool{}
	for _, a := range []Algorithm{Ant, PreciseSigmoid, PreciseAdversarial, Trivial, Algorithm(9)} {
		s := a.String()
		if s == "" || names[s] {
			t.Fatalf("bad algorithm string %q", s)
		}
		names[s] = true
	}
}

func TestQuickstartConverges(t *testing.T) {
	sim, err := New(Config{
		Ants:    4000,
		Demands: []int{600, 1000},
		Noise:   SigmoidNoise(0.03),
		Seed:    3,
		Shards:  2,
		BurnIn:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(8000, nil)
	rep := sim.Report()
	if rep.Rounds != 8000 {
		t.Fatalf("Rounds = %d", rep.Rounds)
	}
	if rep.AvgRegret > sim.RegretBand() {
		t.Fatalf("avg regret %v above Theorem 3.1 band %v", rep.AvgRegret, sim.RegretBand())
	}
	if rep.Closeness > 5*(1.0/16)/0.03+1 {
		t.Fatalf("closeness %v above 5·γ/γ*", rep.Closeness)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestCriticalValuePlacement(t *testing.T) {
	sim, err := New(Config{
		Ants:    2000,
		Demands: []int{400},
		Noise:   SigmoidNoise(0.04),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CriticalValue(); math.Abs(got-0.04)/0.04 > 1e-9 {
		t.Fatalf("γ* = %v, want 0.04", got)
	}
}

func TestObserverAndLoads(t *testing.T) {
	sim, err := New(Config{Ants: 500, Demands: []int{100}, Seed: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sim.Run(50, func(round uint64, loads []int, demands []int) {
		calls++
		if len(loads) != 1 || demands[0] != 100 {
			t.Fatal("observer payload wrong")
		}
	})
	if calls != 50 {
		t.Fatalf("observer called %d times", calls)
	}
	loads := sim.Loads()
	loads[0] = -5
	if sim.Loads()[0] == -5 {
		t.Fatal("Loads must return a copy")
	}
	if sim.Round() != 50 {
		t.Fatalf("Round = %d", sim.Round())
	}
}

func TestSequentialMode(t *testing.T) {
	sim, err := New(Config{
		Ants:       400,
		Demands:    []int{100},
		Algorithm:  Trivial,
		Sequential: true,
		Noise:      SigmoidNoise(0.05),
		Seed:       5,
		BurnIn:     20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(60000, nil)
	rep := sim.Report()
	if rep.AvgRegret > 40 {
		t.Fatalf("sequential trivial avg regret %v", rep.AvgRegret)
	}
	if rep.Switches == 0 {
		t.Fatal("no switches recorded")
	}
	if sim.Round() != 60000 {
		t.Fatalf("Round = %d", sim.Round())
	}
	if len(sim.Loads()) != 1 {
		t.Fatal("Loads broken in sequential mode")
	}
}

func TestDemandChanges(t *testing.T) {
	sim, err := New(Config{
		Ants:    3000,
		Demands: []int{300, 600},
		DemandChanges: []DemandChange{
			{At: 3000, Demands: []int{600, 300}},
		},
		Noise:  SigmoidNoise(0.03),
		Seed:   6,
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var after []int
	sim.Run(7000, func(round uint64, loads []int, demands []int) {
		if round == 7000 {
			after = append([]int(nil), loads...)
			if demands[0] != 600 || demands[1] != 300 {
				t.Fatalf("demands not switched: %v", demands)
			}
		}
	})
	if after[0] < 450 || after[1] > 450 {
		t.Fatalf("loads %v did not track the swapped demands", after)
	}
}

func TestAdversarialNoiseAndStrategies(t *testing.T) {
	for _, strat := range []string{"", "truthful", "alternating", "always-lack",
		"always-overload", "random", "inverted"} {
		sim, err := New(Config{
			Ants:    1000,
			Demands: []int{200},
			Gamma:   0.05,
			Noise: Noise{Kind: NoiseAdversarial, GammaAd: 0.01,
				GreyStrategy: strat},
			Seed:   7,
			Shards: 1,
		})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		sim.Run(500, nil)
		if sim.CriticalValue() != 0.01 {
			t.Fatalf("strategy %q: γ* = %v", strat, sim.CriticalValue())
		}
	}
}

func TestPreciseAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{PreciseSigmoid, PreciseAdversarial} {
		sim, err := New(Config{
			Ants:      1000,
			Demands:   []int{200},
			Algorithm: alg,
			Gamma:     0.03,
			Epsilon:   0.5,
			Noise:     SigmoidNoise(0.03),
			Seed:      8,
			Shards:    1,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		sim.Run(1000, nil)
		if sim.Report().Rounds != 1000 {
			t.Fatalf("%v did not run", alg)
		}
	}
}

func TestInitKinds(t *testing.T) {
	for _, init := range []InitKind{InitIdle, InitUniform, InitFlood, InitExact} {
		sim, err := New(Config{
			Ants:    500,
			Demands: []int{100, 100},
			Init:    init,
			Seed:    9,
			Shards:  1,
		})
		if err != nil {
			t.Fatalf("init %d: %v", init, err)
		}
		switch init {
		case InitFlood:
			if got := sim.Loads(); got[0] != 500 || got[1] != 0 {
				t.Fatalf("flood loads %v", got)
			}
		case InitExact:
			if got := sim.Loads(); got[0] != 100 || got[1] != 100 {
				t.Fatalf("exact loads %v", got)
			}
		case InitIdle:
			if got := sim.Loads(); got[0] != 0 || got[1] != 0 {
				t.Fatalf("idle loads %v", got)
			}
		}
	}
}

func TestCorrelatedNoiseWrapper(t *testing.T) {
	sim, err := New(Config{
		Ants:    1000,
		Demands: []int{200},
		Noise: Noise{Kind: NoiseSigmoid, GammaStar: 0.04,
			CorrelatedFlipProb: 1e-6},
		Seed:   10,
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(200, nil)
	if sim.Report().Rounds != 200 {
		t.Fatal("correlated wrapper broke the run")
	}
}

func TestPerfectNoise(t *testing.T) {
	sim, err := New(Config{
		Ants:    1000,
		Demands: []int{200},
		Noise:   PerfectNoise(),
		Seed:    11,
		Shards:  1,
		// The γ/cd drain from the all-join overshoot takes ~900 rounds
		// (ln(n/d)·cd/γ phases); burn past it.
		BurnIn: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3500, nil)
	// Perfect feedback has γ* = 0; Closeness divides by it and must be NaN.
	rep := sim.Report()
	if !math.IsNaN(rep.Closeness) {
		t.Fatalf("closeness under perfect noise = %v, want NaN", rep.Closeness)
	}
	if rep.AvgRegret > 30 {
		t.Fatalf("perfect-noise regret %v", rep.AvgRegret)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Report {
		sim, err := New(Config{
			Ants: 800, Demands: []int{150, 150}, Seed: 12, Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(300, nil)
		return sim.Report()
	}
	a, b := run(), run()
	if a.TotalRegret != b.TotalRegret || a.Switches != b.Switches {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestMeanFieldEngine(t *testing.T) {
	sim, err := New(Config{
		Ants:      4000,
		Demands:   []int{600, 1000},
		MeanField: true,
		Noise:     SigmoidNoise(0.03),
		Seed:      13,
		BurnIn:    2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(8000, nil)
	rep := sim.Report()
	if rep.AvgRegret > sim.RegretBand() {
		t.Fatalf("mean-field avg regret %v above band %v", rep.AvgRegret, sim.RegretBand())
	}
	if sim.Switches() == 0 {
		t.Fatal("mean-field engine must track aggregate switches")
	}
	if len(sim.Loads()) != 2 || sim.Round() != 8000 {
		t.Fatal("accessors broken under mean-field engine")
	}
}

func TestMeanFieldValidation(t *testing.T) {
	base := Config{Ants: 100, Demands: []int{20}, MeanField: true}
	bad := []func(Config) Config{
		func(c Config) Config { c.Sequential = true; return c },
		func(c Config) Config { c.Algorithm = Trivial; return c },
		func(c Config) Config { c.Init = InitFlood; return c },
	}
	for i, mutate := range bad {
		if _, err := New(mutate(base)); err == nil {
			t.Fatalf("bad mean-field config %d accepted", i)
		}
	}
	ok := base
	ok.Init = InitExact
	if _, err := New(ok); err != nil {
		t.Fatalf("InitExact mean-field rejected: %v", err)
	}
}
