module taskalloc

go 1.24
