// Command numcpu prints runtime.NumCPU() — the logical core count the
// Go runtime will actually schedule on — so the bench scripts can
// record it without parsing /proc (which containers and cpuset limits
// routinely make wrong).
package main

import (
	"fmt"
	"runtime"
)

func main() { fmt.Println(runtime.NumCPU()) }
