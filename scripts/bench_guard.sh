#!/usr/bin/env bash
# Bench smoke guard: fail if BenchmarkEngineParallel regresses more than
# TOLERANCE (default 20%) against the checked-in baseline BENCH_N.json.
# Usage:
#
#   scripts/bench_guard.sh [baseline-N]     # default baseline 1
#   TOLERANCE=0.3 BENCHTIME=20x scripts/bench_guard.sh
#
# Intended as a CI smoke: short -benchtime keeps it fast, the generous
# tolerance absorbs run-to-run noise, and a real engine regression (like
# losing the persistent-pool or batch-path wins) blows well past it.
#
# Caveat: the baseline's ns/op were recorded on the repo's bench host
# (see the json's "cpu" field). On a substantially different machine the
# absolute comparison degrades — raise TOLERANCE there, or re-record a
# local baseline with scripts/bench.sh and pass its N.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="BENCH_${1:-1}.json"
TOLERANCE="${TOLERANCE:-0.20}"
BENCHTIME="${BENCHTIME:-20x}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

[ -f "$BASE" ] || { echo "bench_guard: missing baseline $BASE" >&2; exit 2; }

# The engine's headline numbers are parallel-speedup claims; on a
# starved host they are noise. Warn loudly rather than fail — CI
# runners vary — but make the verdict's weakness impossible to miss.
NCPU="$(go run ./scripts/numcpu)"

# ns/op baselines only transfer between hosts with the same logical CPU
# count: BenchmarkEngineParallel's shape is a function of GOMAXPROCS,
# so comparing a 1-vCPU recording against an 8-core run (or vice versa)
# yields a verdict about the hardware, not the code. Baselines that
# predate the "num_cpu" field (BENCH_1-6) were recorded on 1-vCPU CI
# hosts. On a mismatch the regression comparison is SKIPPED — the
# smokes below still run, so the benchmarks cannot silently rot.
BASE_NCPU="$(sed -n 's/.*"num_cpu": *\([0-9][0-9]*\).*/\1/p' "$BASE" | head -1)"
[ -n "$BASE_NCPU" ] || BASE_NCPU=1
SKIP_COMPARE=0
if [ "$NCPU" != "$BASE_NCPU" ]; then
  SKIP_COMPARE=1
  echo "bench_guard: ############################################################" >&2
  echo "bench_guard: WARNING: ${BASE} was recorded on a ${BASE_NCPU}-CPU host;" >&2
  echo "bench_guard: this host has ${NCPU} logical CPUs. The ns/op comparison" >&2
  echo "bench_guard: would judge the hardware, not the code, so the regression" >&2
  echo "bench_guard: check is SKIPPED. Re-record a local baseline with" >&2
  echo "bench_guard: scripts/bench.sh and pass its N to restore the guard." >&2
  echo "bench_guard: ############################################################" >&2
fi
if [ "$NCPU" -lt 4 ]; then
  echo "bench_guard: ############################################################" >&2
  echo "bench_guard: WARNING: only ${NCPU} logical CPUs on this host." >&2
  echo "bench_guard: BenchmarkEngineParallel is a parallel-speedup measurement;" >&2
  echo "bench_guard: under 4 cores its ns/op (and any regression verdict drawn" >&2
  echo "bench_guard: from it) does not reflect the engine. Treat this run as" >&2
  echo "bench_guard: smoke only and re-run on a >=4-core host before trusting" >&2
  echo "bench_guard: or recording numbers (see BENCH_*.json \"num_cpu\")." >&2
  echo "bench_guard: ############################################################" >&2
fi

# Sweep-runner smoke: one iteration of both worker counts. No baseline
# comparison (grid wall-clock is hardware-bound); this exists so the
# multi-simulation batch runner and its shared-pool path can never
# silently stop compiling or start erroring.
echo "bench_guard: sweep-runner smoke (-benchtime 1x)"
go test -run '^$' -bench 'BenchmarkSweepRunner$' -benchtime 1x -count 1 . \
  || { echo "bench_guard: BenchmarkSweepRunner smoke failed" >&2; exit 1; }

# Simulation-service smoke: one fresh POST→stream round trip per worker
# count plus one cache replay. No baseline comparison (wall-clock is
# simulation-bound); this exists so the HTTP layer, wire codec, and
# cache path can never silently stop compiling or start erroring.
echo "bench_guard: simulation-service smoke (-benchtime 1x)"
go test -run '^$' -bench 'BenchmarkServerSweep$|BenchmarkServerSweepCached$' \
  -benchtime 1x -count 1 ./internal/simserver \
  || { echo "bench_guard: BenchmarkServerSweep smoke failed" >&2; exit 1; }

go test -run '^$' -bench 'BenchmarkEngineParallel$' -benchtime "$BENCHTIME" -count 1 . | tee "$TMP"

if [ "$SKIP_COMPARE" = 1 ]; then
  echo "bench_guard: regression comparison skipped (CPU-count mismatch with $BASE); smokes passed"
  exit 0
fi

awk -v base="$BASE" -v tol="$TOLERANCE" '
  BEGIN {
    # Baseline entries come in two schemas: bench.sh emits
    # {"benchmark": ..., "ns_op": M}; annotated baselines carry
    # before/after pairs, where "after_ns_op" is the recorded value.
    while ((getline line < base) > 0) {
      if (line ~ /BenchmarkEngineParallel/ && line ~ /"(after_)?ns_op"/) {
        name = line; sub(/.*"benchmark": *"/, "", name); sub(/".*/, "", name)
        ns = line
        if (ns ~ /"after_ns_op"/) sub(/.*"after_ns_op": *[^0-9]*/, "", ns)
        else sub(/.*"ns_op": *[^0-9]*/, "", ns)
        sub(/[^0-9].*/, "", ns)
        want[name] = ns + 0
      }
    }
    close(base)
    if (length(want) == 0) { print "bench_guard: no baseline entries in " base; exit 2 }
  }
  /^BenchmarkEngineParallel/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!(name in want)) next
    got = $3 + 0
    limit = want[name] * (1 + tol)
    checked++
    if (got > limit) {
      printf("bench_guard: REGRESSION %s: %.0f ns/op > %.0f (baseline %.0f +%d%%)\n",
             name, got, limit, want[name], tol * 100)
      failed++
    } else {
      printf("bench_guard: ok %s: %.0f ns/op <= %.0f (baseline %.0f +%d%%)\n",
             name, got, limit, want[name], tol * 100)
    }
  }
  END {
    if (checked == 0) { print "bench_guard: no benchmark output matched the baseline"; exit 2 }
    if (failed > 0) exit 1
    printf("bench_guard: %d benchmarks within %d%% of %s\n", checked, tol * 100, base)
  }
' "$TMP"
