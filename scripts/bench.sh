#!/usr/bin/env bash
# Run the engine benchmarks and record them as BENCH_<N>.json, the
# per-PR performance trajectory (see PERFORMANCE.md). Usage:
#
#   scripts/bench.sh [N]            # writes BENCH_N.json (default N=1)
#   BENCHTIME=5s scripts/bench.sh 2 # longer per-benchmark runtime
#
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-1}"
OUT="BENCH_${N}.json"
BENCHTIME="${BENCHTIME:-2s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
  -bench 'BenchmarkEngineStep$|BenchmarkEngineStepInterface$|BenchmarkEngineParallel$|BenchmarkSweepRunner$|BenchmarkServerSweep$|BenchmarkServerSweepCached$|BenchmarkGridStaticSlowBackend$|BenchmarkGridAdaptiveSlowBackend$' \
  -benchtime "$BENCHTIME" -count 1 . ./internal/simserver ./internal/gridcoord | tee "$TMP"

{
  echo '{'
  echo "  \"id\": ${N},"
  echo "  \"date\": \"$(date -u +%Y-%m-%d)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"cpu\": \"$(awk -F: '/model name/ {gsub(/^ +/, "", $2); print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)\","
  echo "  \"num_cpu\": $(go run ./scripts/numcpu),"
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"benchtime\": \"${BENCHTIME}\","
  echo '  "results": ['
  awk 'BEGIN { first = 1 }
    /^Benchmark/ && $4 == "ns/op" {
      name = $1; sub(/-[0-9]+$/, "", name)
      if (!first) printf(",\n")
      first = 0
      printf("    {\"benchmark\": \"%s\", \"ns_op\": %s}", name, $3)
    }
    END { printf("\n") }' "$TMP"
  echo '  ]'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
