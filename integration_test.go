package taskalloc

import (
	"math"
	"testing"

	"taskalloc/internal/agent"
	"taskalloc/internal/colony"
	"taskalloc/internal/demand"
	"taskalloc/internal/metrics"
	"taskalloc/internal/noise"
	"taskalloc/internal/trace"
)

// TestTraceAndRecorderAgree attaches both a trace and the built-in
// recorder to the same run and checks that the regret series they derive
// are identical — cross-module consistency between internal/trace,
// internal/metrics, and the public observer plumbing.
func TestTraceAndRecorderAgree(t *testing.T) {
	sim, err := New(Config{
		Ants: 1000, Demands: []int{200, 150},
		Noise: SigmoidNoise(0.03), Seed: 21, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(2, 1, 0)
	rec := metrics.NewRecorder(2, 1.0/16, agent.DefaultCs, 0)
	sim.Run(500, func(round uint64, loads []int, demands []int) {
		dv := demand.Vector(demands)
		tr.Observe(round, loads, dv)
		rec.Observe(round, loads, dv)
	})
	series := tr.RegretSeries()
	total := int64(0)
	for _, r := range series {
		total += int64(r)
	}
	if total != rec.TotalRegret() {
		t.Fatalf("trace total %d != recorder total %d", total, rec.TotalRegret())
	}
	// The built-in recorder (driven by the same engine) must agree too.
	if sim.Report().TotalRegret != total {
		t.Fatalf("public report total %d != observer total %d",
			sim.Report().TotalRegret, total)
	}
}

// TestDecompositionConsistencyUnderSimulation: R = R⁺ + R≈ + R⁻ holds on
// a live trajectory, not just synthetic loads.
func TestDecompositionConsistencyUnderSimulation(t *testing.T) {
	sim, err := New(Config{
		Ants: 1500, Demands: []int{300},
		Noise: SigmoidNoise(0.03), Seed: 22, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(1, 1.0/16, agent.DefaultCs, 0)
	sim.Run(2000, func(round uint64, loads []int, demands []int) {
		rec.Observe(round, loads, demand.Vector(demands))
	})
	plus, approx, minus := rec.Decomposition()
	if plus+approx+minus != rec.TotalRegret() {
		t.Fatalf("decomposition %d+%d+%d != total %d",
			plus, approx, minus, rec.TotalRegret())
	}
	if plus == 0 || minus == 0 {
		t.Fatal("a from-idle run must visit both the overload and lack regimes")
	}
}

// TestPotentialsSettleUnderPerfectFeedback: the Claim 4.5 potentials Φ
// and Ψ reach and hold zero once Algorithm Ant saturates every task
// under noiseless feedback.
func TestPotentialsSettleUnderPerfectFeedback(t *testing.T) {
	gamma := 1.0 / 16
	sim, err := New(Config{
		Ants: 1500, Demands: []int{200, 200},
		Noise: PerfectNoise(), Gamma: gamma, Seed: 23, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2500, nil) // converge (γ/cd drain from the all-join overshoot)
	zeroPhi, total := 0, 0
	sim.Run(500, func(round uint64, loads []int, demands []int) {
		if round%2 != 0 {
			return // potentials are defined at phase ends (even rounds)
		}
		total++
		if metrics.Phi(loads, demand.Vector(demands), gamma) == 0 &&
			metrics.Psi(loads, demand.Vector(demands), gamma) == 0 {
			zeroPhi++
		}
	})
	if zeroPhi < total*9/10 {
		t.Fatalf("potentials at zero in only %d/%d phase ends", zeroPhi, total)
	}
}

// TestBandViolationsConcentrateInConvergence: Theorem 3.1's second claim —
// after the transient, deficits stay within 5γd+3 in nearly all rounds.
func TestBandViolationsConcentrateInConvergence(t *testing.T) {
	gamma := 1.0 / 16
	sim, err := New(Config{
		Ants: 2000, Demands: []int{300, 300},
		Noise: SigmoidNoise(gamma / 2), Gamma: gamma, Seed: 24, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2500, nil) // transient
	rec := metrics.NewRecorder(2, gamma, agent.DefaultCs, 0)
	const window = 3000
	sim.Run(window, func(round uint64, loads []int, demands []int) {
		rec.Observe(round, loads, demand.Vector(demands))
	})
	for j, v := range rec.BoundViolations() {
		if float64(v) > 0.02*window {
			t.Fatalf("task %d: %d/%d post-transient band violations", j, v, window)
		}
	}
}

// TestReportFieldsCoherent: the public Report's fields must be mutually
// consistent on a real run.
func TestReportFieldsCoherent(t *testing.T) {
	sim, err := New(Config{
		Ants: 800, Demands: []int{150, 150},
		Noise: SigmoidNoise(0.03), Seed: 25, Shards: 1, BurnIn: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1200, nil)
	rep := sim.Report()
	if rep.Rounds != 1200 {
		t.Fatalf("Rounds %d", rep.Rounds)
	}
	if rep.PeakRegret < int(rep.AvgRegret) {
		t.Fatal("peak below average")
	}
	if float64(rep.TotalRegret) < rep.AvgRegret*float64(1200-400) {
		t.Fatal("total regret below post-burn mass")
	}
	wantClose := rep.AvgRegret / (rep.GammaStar * 300)
	if math.Abs(rep.Closeness-wantClose) > 1e-9 {
		t.Fatalf("closeness %v, want %v", rep.Closeness, wantClose)
	}
	if len(rep.MaxAbsDeficit) != 2 || len(rep.ZeroCrossings) != 2 {
		t.Fatal("per-task slices wrong length")
	}
	for _, m := range rep.MaxAbsDeficit {
		if m < 150 {
			t.Fatal("from-idle run must have seen the full initial deficit")
		}
	}
}

// TestPublicAndInternalEnginesIdentical: the facade adds a recorder but
// must not perturb the trajectory — same seed through the public API and
// the internal engine gives identical loads.
func TestPublicAndInternalEnginesIdentical(t *testing.T) {
	// Public run.
	sim, err := New(Config{
		Ants: 600, Demands: []int{120}, Gamma: 0.05,
		Noise: Noise{Kind: NoiseSigmoid, Lambda: 2}, Seed: 26, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pub []int
	sim.Run(300, func(_ uint64, loads []int, _ []int) {
		pub = append(pub, loads[0])
	})
	// Equivalent internal run.
	e, err := newInternalEngineForTest(600, 120, 0.05, 2, 26, 2)
	if err != nil {
		t.Fatal(err)
	}
	var internal []int
	e.Run(300, func(_ uint64, loads []int, _ demand.Vector) {
		internal = append(internal, loads[0])
	})
	for i := range pub {
		if pub[i] != internal[i] {
			t.Fatalf("trajectories diverge at round %d: %d vs %d", i+1, pub[i], internal[i])
		}
	}
}

// newInternalEngineForTest mirrors the facade's engine construction for
// the determinism cross-check above.
func newInternalEngineForTest(n, d int, gamma, lambda float64, seed uint64, shards int) (*colony.Engine, error) {
	return colony.New(colony.Config{
		N:        n,
		Schedule: demand.Static{V: demand.Vector{d}},
		Model:    noise.SigmoidModel{Lambda: lambda},
		Factory:  agent.AntFactory(1, agent.DefaultParams(gamma)),
		Seed:     seed,
		Shards:   shards,
	})
}
