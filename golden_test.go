package taskalloc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"taskalloc/internal/goldencases"
)

// TestGoldenScenarioCorpus replays every golden case and byte-compares
// its trajectory against testdata/golden/. A mismatch means the
// engines' trajectories drifted — scenario demand evaluation, resize
// semantics, the feedback RNG stream, or the shard handoff. If (and
// only if) the change is intended, bump/justify it and regenerate with
// `go generate ./...`.
func TestGoldenScenarioCorpus(t *testing.T) {
	cases := goldencases.All()
	if len(cases) < 20 {
		t.Fatalf("corpus shrank to %d cases", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel() // cases are independent; exercises concurrent replay
			path := filepath.Join("testdata", "golden", c.Name+".csv")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go generate ./...`): %v", err)
			}
			got, err := goldencases.CSV(c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trajectory drifted from %s at line %d\n"+
					"(intended? regenerate with `go generate ./...`)\n got: %s\nwant: %s",
					path, firstDiffLine(got, want), firstDiff(got, want), firstDiff(want, got))
			}
		})
		seen[c.Name+".csv"] = true
	}

	// No stale files: everything in testdata/golden must be a live case
	// (or the ensemble fixture, asserted by its own test below).
	seen[goldencases.EnsembleFile] = true
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !seen[e.Name()] {
			t.Errorf("stale golden file %s (no matching case)", e.Name())
		}
	}
}

// TestGoldenEnsembleQuantiles byte-compares the S5-family ensemble
// statistics — mean/std and the quantile band of AvgRegret, Closeness,
// and SwitchesPerRound over the seed ensemble — against the pinned
// fixture. It is the aggregate-layer counterpart of the trajectory
// corpus: a change that preserves every single pinned trajectory but
// shifts the ensemble (e.g. how per-seed configurations are derived)
// still fails here.
func TestGoldenEnsembleQuantiles(t *testing.T) {
	path := filepath.Join("testdata", "golden", goldencases.EnsembleFile)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing ensemble fixture (run `go generate ./...`): %v", err)
	}
	got, err := goldencases.EnsembleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ensemble quantiles drifted from %s at line %d\n"+
			"(intended? regenerate with `go generate ./...`)\n got: %s\nwant: %s",
			path, firstDiffLine(got, want), firstDiff(got, want), firstDiff(want, got))
	}
}

// firstDiffLine returns the 1-based line number of the first differing
// line between a and b.
func firstDiffLine(a, b []byte) int {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return i + 1
		}
	}
	return min(len(al), len(bl)) + 1
}

// firstDiff returns x's first line that differs from y's same-index line.
func firstDiff(x, y []byte) []byte {
	xl, yl := bytes.Split(x, []byte("\n")), bytes.Split(y, []byte("\n"))
	for i := 0; i < len(xl); i++ {
		if i >= len(yl) || !bytes.Equal(xl[i], yl[i]) {
			return xl[i]
		}
	}
	return nil
}
