package taskalloc

import (
	"math"
	"testing"
	"time"

	"taskalloc/internal/scenario"
)

// TestReportTracksDemandSwitch is the regression test for the stale
// dynamic-demand reporting bug: Report.GammaStar, Report.Closeness, and
// RegretBand must be computed from the demand vector in force, not the
// initial one, after a DemandChange.
func TestReportTracksDemandSwitch(t *testing.T) {
	const (
		n       = 3000
		switch0 = 200
	)
	initial := []int{300, 600} // dMin 300, Σd 900
	changed := []int{150, 900} // dMin 150, Σd 1050
	sim, err := New(Config{
		Ants:          n,
		Demands:       initial,
		DemandChanges: []DemandChange{{At: switch0, Demands: changed}},
		Gamma:         0.05,
		Noise:         SigmoidNoise(0.03),
		Seed:          21,
		Shards:        1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before the switch: γ* is the placed value, band uses Σd = 900.
	if got := sim.CriticalValue(); math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("initial γ* = %v, want 0.03", got)
	}
	if got, want := sim.RegretBand(), 5*0.05*900+3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("initial band = %v, want %v", got, want)
	}
	sim.Run(switch0-1, nil)
	if got := sim.Report().GammaStar; math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("pre-switch GammaStar = %v, want 0.03", got)
	}

	// Cross the switch. λ is fixed at construction, so the in-force
	// γ* scales inversely with dMin: 0.03 · 300/150 = 0.06.
	sim.Run(2, nil)
	if got := sim.Demands(); got[0] != 150 || got[1] != 900 {
		t.Fatalf("in-force demands %v, want %v", got, changed)
	}
	rep := sim.Report()
	if want := 0.03 * 300 / 150; math.Abs(rep.GammaStar-want)/want > 1e-9 {
		t.Fatalf("post-switch GammaStar = %v, want %v (stale value 0.03 retained?)", rep.GammaStar, want)
	}
	if got, want := sim.RegretBand(), 5*0.05*1050+3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-switch band = %v, want %v (stale Σd retained?)", got, want)
	}
	if want := rep.AvgRegret / (rep.GammaStar * 1050); math.Abs(rep.Closeness-want)/want > 1e-9 {
		t.Fatalf("post-switch Closeness = %v, want %v from in-force γ*·Σd", rep.Closeness, want)
	}
}

// TestReportTracksNoiseSwitch: after a scheduled noise-regime change the
// reported γ* must come from the regime in force.
func TestReportTracksNoiseSwitch(t *testing.T) {
	sim, err := New(Config{
		Ants:    1000,
		Demands: []int{200},
		Noise:   SigmoidNoise(0.03),
		NoiseChanges: []NoiseChange{
			{At: 100, Noise: AdversarialNoise(0.08)},
			{At: 200, Noise: PerfectNoise()},
		},
		Seed:   22,
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CriticalValue(); math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("initial γ* = %v", got)
	}
	sim.Run(150, nil)
	if got := sim.Report().GammaStar; math.Abs(got-0.08) > 1e-9 {
		t.Fatalf("γ* in adversarial regime = %v, want 0.08", got)
	}
	sim.Run(100, nil)
	if got := sim.Report().GammaStar; got != 0 {
		t.Fatalf("γ* in perfect regime = %v, want 0", got)
	}
	if !math.IsNaN(sim.Report().Closeness) {
		t.Fatal("Closeness must be NaN once γ* = 0 is in force")
	}
}

// TestSizeChangesApplied: scheduled resizes land at their exact rounds,
// across chunked Run calls, on both agent engines.
func TestSizeChangesApplied(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		cfg := Config{
			Ants:      1000,
			Demands:   []int{150},
			Algorithm: Ant,
			Noise:     SigmoidNoise(0.04),
			SizeChanges: []SizeChange{
				{At: 50, To: 400},
				{At: 120, To: 1000},
			},
			Seed: 23,
		}
		if sequential {
			cfg.Algorithm = Trivial
			cfg.Sequential = true
		} else {
			cfg.Shards = 2
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		activeAt := map[uint64]int{}
		obs := func(round uint64, _ []int, _ []int) { activeAt[round] = sim.Active() }
		sim.Run(60, obs)  // crosses the first change
		sim.Run(100, obs) // crosses the second in a separate Run call
		for _, c := range []struct {
			r    uint64
			want int
		}{{49, 1000}, {50, 400}, {119, 400}, {120, 1000}, {160, 1000}} {
			if activeAt[c.r] != c.want {
				t.Fatalf("sequential=%v round %d: active %d, want %d",
					sequential, c.r, activeAt[c.r], c.want)
			}
		}
		// Load conservation against the active population at every round
		// is checked engine-side; spot-check the final state here.
		working := 0
		for _, w := range sim.Loads() {
			working += w
		}
		if working > sim.Active() {
			t.Fatalf("sequential=%v: %d workers > %d active", sequential, working, sim.Active())
		}
	}
}

// TestSizeChangesMeanField: the mean-field engine accepts SizeChanges
// and applies each at the next phase boundary (at most one round after
// the scheduled round), with commanded Active reported immediately and
// load conservation against the active population.
func TestSizeChangesMeanField(t *testing.T) {
	cfg := Config{
		Ants:      4000,
		Demands:   []int{500, 700},
		MeanField: true,
		Noise:     SigmoidNoise(0.03),
		SizeChanges: []SizeChange{
			{At: 1000, To: 1600},
			{At: 2000, To: 4000},
		},
		Seed: 31,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	activeAt := map[uint64]int{}
	working := map[uint64]int{}
	sim.Run(3000, func(round uint64, loads []int, _ []int) {
		activeAt[round] = sim.Active()
		w := 0
		for _, x := range loads {
			w += x
		}
		working[round] = w
	})
	for _, c := range []struct {
		r    uint64
		want int
	}{{999, 4000}, {1000, 1600}, {1999, 1600}, {2000, 4000}, {2900, 4000}} {
		if activeAt[c.r] != c.want {
			t.Fatalf("round %d: active %d, want %d", c.r, activeAt[c.r], c.want)
		}
	}
	// The kill lands within one phase (2 rounds) of the schedule.
	if working[1002] > 1600 {
		t.Fatalf("shrink not realized by round 1002: %d workers", working[1002])
	}
	if sim.Switches() == 0 {
		t.Fatal("mean-field switches untracked under a resize scenario")
	}
	rep := sim.Report()
	if math.IsNaN(rep.AvgRegret) || rep.AvgRegret <= 0 {
		t.Fatalf("implausible report %+v", rep)
	}
}

// TestSizeChangeFarFuture: a change scheduled beyond MaxInt64 rounds
// ahead must not wrap Run's chunking negative (regression: Run spun
// forever instead of finishing the requested rounds).
func TestSizeChangeFarFuture(t *testing.T) {
	sim, err := New(Config{
		Ants:        300,
		Demands:     []int{60},
		SizeChanges: []SizeChange{{At: math.MaxUint64 - 7, To: 100}},
		Seed:        28,
		Shards:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sim.Run(40, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung on a far-future SizeChange")
	}
	if sim.Round() != 40 || sim.Active() != 300 {
		t.Fatalf("round %d active %d", sim.Round(), sim.Active())
	}
}

// TestSizeChangeValidation: malformed schedules and unsupported engines
// are rejected up front.
func TestSizeChangeValidation(t *testing.T) {
	base := Config{Ants: 100, Demands: []int{20}}
	bad := []func(Config) Config{
		func(c Config) Config { c.SizeChanges = []SizeChange{{At: 0, To: 50}}; return c },
		func(c Config) Config { c.SizeChanges = []SizeChange{{At: 5, To: 0}}; return c },
		func(c Config) Config { c.SizeChanges = []SizeChange{{At: 5, To: 101}}; return c },
		func(c Config) Config {
			c.SizeChanges = []SizeChange{{At: 5, To: 50}, {At: 5, To: 60}}
			return c
		},
		func(c Config) Config { c.Sequential = true; c.Shards = 2; return c },
		func(c Config) Config { c.NoiseChanges = []NoiseChange{{At: 0, Noise: PerfectNoise()}}; return c },
		func(c Config) Config {
			c.NoiseChanges = []NoiseChange{
				{At: 9, Noise: PerfectNoise()}, {At: 9, Noise: PerfectNoise()}}
			return c
		},
		func(c Config) Config {
			c.NoiseChanges = []NoiseChange{{At: 5, Noise: Noise{Kind: NoiseAdversarial}}}
			return c
		},
	}
	for i, mutate := range bad {
		if _, err := New(mutate(base)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// TestSimulationResize: the public Resize mirrors the engine semantics
// and rejects out-of-range and mean-field use.
func TestSimulationResize(t *testing.T) {
	sim, err := New(Config{Ants: 500, Demands: []int{100}, Seed: 24, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(500, nil)
	if err := sim.Resize(200); err != nil {
		t.Fatal(err)
	}
	if sim.Active() != 200 {
		t.Fatalf("Active = %d", sim.Active())
	}
	working := 0
	for _, w := range sim.Loads() {
		working += w
	}
	if working > 200 {
		t.Fatalf("dead ants still working: %d", working)
	}
	if err := sim.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	if err := sim.Resize(501); err == nil {
		t.Fatal("Resize above Ants accepted")
	}

	mf, err := New(Config{Ants: 500, Demands: []int{100}, MeanField: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mf.Resize(100); err != nil {
		t.Fatalf("mean-field Resize rejected: %v", err)
	}
	if mf.Active() != 100 {
		t.Fatalf("mean-field Active = %d after Resize(100)", mf.Active())
	}
	if err := mf.Resize(501); err == nil {
		t.Fatal("mean-field Resize above Ants accepted")
	}
}

// TestSimulationClose: Close releases the multi-shard worker pool and is
// idempotent on every engine kind.
func TestSimulationClose(t *testing.T) {
	sim, err := New(Config{Ants: 800, Demands: []int{100}, Seed: 29, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(20, nil)
	sim.Close()
	sim.Close()
	seq, err := New(Config{Ants: 100, Demands: []int{20}, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	seq.Close() // no pool: must be a no-op
	mf, err := New(Config{Ants: 100, Demands: []int{20}, MeanField: true})
	if err != nil {
		t.Fatal(err)
	}
	mf.Close()
}

// TestDemandScheduleConfig: Config.Demand plugs a generative scenario
// schedule into the root API; the observer sees the schedule's vectors
// and the metrics track them.
func TestDemandScheduleConfig(t *testing.T) {
	sin, err := scenario.NewSinusoid([]int{200, 200}, []float64{0.4, 0.4}, 300, []float64{0, math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Ants:   2000,
		Demand: sin,
		Noise:  SigmoidNoise(0.04),
		Seed:   25,
		Shards: 1,
		BurnIn: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	var hiSum, hiN, loSum, loN float64
	sim.Run(900, func(round uint64, loads []int, demands []int) {
		want := sin.At(round)
		for j := range want {
			if demands[j] != want[j] {
				t.Fatalf("round %d: observer demands %v, schedule %v", round, demands, want)
			}
		}
		distinct[demands[0]] = true
		if round > 600 { // past burn-in
			switch {
			case demands[0] >= 260:
				hiSum += float64(loads[0])
				hiN++
			case demands[0] <= 140:
				loSum += float64(loads[0])
				loN++
			}
		}
	})
	if len(distinct) < 10 {
		t.Fatalf("sinusoid produced only %d distinct demand values", len(distinct))
	}
	// The colony must actually track the oscillation: task 0's load is
	// substantially higher when its demand is near the crest than near
	// the trough (a frozen colony would show no separation).
	if hiN == 0 || loN == 0 {
		t.Fatal("sinusoid never visited its crest/trough after burn-in")
	}
	if sep := hiSum/hiN - loSum/loN; sep < 40 {
		t.Fatalf("crest-vs-trough load separation %.1f: colony not tracking the sinusoid", sep)
	}

	// Mutual exclusion with the fixed-vector forms.
	if _, err := New(Config{Ants: 2000, Demands: []int{100}, Demand: sin}); err == nil {
		t.Fatal("Demand plus Demands accepted")
	}
	if _, err := New(Config{
		Ants:          2000,
		Demand:        sin,
		DemandChanges: []DemandChange{{At: 5, Demands: []int{1, 2}}},
	}); err == nil {
		t.Fatal("Demand plus DemandChanges accepted")
	}
}

// TestMetricsAcrossRegimeSwitch: deterministic check that the recorder
// evaluates each round against the demand in force — under perfect
// feedback the colony settles at the old demand, so the first round
// after a switch must register regret |d_new − d_old| against the new
// vector, then re-converge.
func TestMetricsAcrossRegimeSwitch(t *testing.T) {
	sim, err := New(Config{
		Ants:          2000,
		Demands:       []int{200},
		DemandChanges: []DemandChange{{At: 4000, Demands: []int{600}}},
		Noise:         PerfectNoise(),
		Init:          InitExact,
		Seed:          26,
		Shards:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var atSwitch, after int
	sim.Run(6000, func(round uint64, loads []int, demands []int) {
		switch round {
		case 4000:
			atSwitch = demands[0] - loads[0]
		case 6000:
			after = demands[0] - loads[0]
		}
	})
	rep := sim.Report()
	// The switch instant shows a deficit near 400 — and PeakRegret must
	// have recorded it against the NEW demand.
	if atSwitch < 300 {
		t.Fatalf("deficit at switch %d; expected ≈400 against the new demand", atSwitch)
	}
	if rep.PeakRegret < 300 {
		t.Fatalf("PeakRegret %d missed the regime switch", rep.PeakRegret)
	}
	if after > 100 || after < -100 {
		t.Fatalf("no re-convergence after switch: deficit %d", after)
	}
	if rep.MaxAbsDeficit[0] < 300 {
		t.Fatalf("MaxAbsDeficit %v missed the switch excursion", rep.MaxAbsDeficit)
	}
}

// TestResizeDemandInterplay: the load-conservation invariant holds
// through interleaved shrink→grow cycles and demand changes on both the
// batch and interface engine paths, and the trajectories of the two
// paths stay bit-identical under that interplay (the colony package
// owns the per-algorithm equivalence matrix; this pins the root wiring).
func TestResizeDemandInterplay(t *testing.T) {
	run := func(shards int) []int {
		sim, err := New(Config{
			Ants:    1200,
			Demands: []int{150, 250},
			DemandChanges: []DemandChange{
				{At: 150, Demands: []int{250, 150}},
				{At: 450, Demands: []int{100, 100}},
			},
			SizeChanges: []SizeChange{
				{At: 100, To: 500},  // shrink below Σd of the next regime
				{At: 300, To: 1200}, // hatch back
				{At: 500, To: 700},  // shrink again
			},
			Noise:  SigmoidNoise(0.04),
			Seed:   27,
			Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		var series []int
		sim.Run(600, func(round uint64, loads []int, demands []int) {
			working := 0
			for _, w := range loads {
				if w < 0 {
					t.Fatalf("round %d: negative load", round)
				}
				working += w
			}
			if working > sim.Active() {
				t.Fatalf("round %d: %d workers exceed %d active", round, working, sim.Active())
			}
			series = append(series, working)
		})
		return series
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	// Different shard counts are different RNG streams (not comparable);
	// re-running the same config must be bit-identical.
	c := run(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("round %d: rerun diverged under resize+demand interplay", i+1)
		}
	}
}
