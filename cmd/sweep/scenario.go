package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"taskalloc"
	"taskalloc/internal/demand"
	"taskalloc/internal/scenario"
)

// scenarioOpts collects the scenario-family flags. Base is the -demands
// vector; the family generates the time-varying schedule around it.
type scenarioOpts struct {
	family string // static | sinusoid | burst | randomwalk | markov | trace
	seed   uint64

	sinPeriod float64 // sinusoid: rounds per cycle
	sinAmp    float64 // sinusoid: relative amplitude in [0, 1)

	burstStart uint64  // burst: first onset round
	burstEvery uint64  // burst: period (0 = single burst)
	burstLen   uint64  // burst: duration
	burstTask  int     // burst: which task spikes
	burstScale float64 // burst: peak = round(base · scale) on that task

	walkEvery uint64  // random walk: epoch length
	walkStep  int     // random walk: max per-epoch move (0 = 10% of base)
	walkSpan  float64 // random walk: bounds base·(1±span)

	markovDwell   uint64  // markov: rounds per sojourn decision
	markovStay    float64 // markov: self-transition probability
	markovRegimes string  // markov: "d1,d2;d1,d2;..." ("" = base and its reverse)

	traceFile string // trace: CSV path of "round,d1,d2,..." lines
}

// buildSchedule turns the options into a demand.Schedule, or nil for the
// static family (the plain -demands vector).
func buildSchedule(base []int, o scenarioOpts) (demand.Schedule, error) {
	bv := demand.Vector(base)
	switch o.family {
	case "", "static":
		return nil, nil

	case "sinusoid":
		amp := make([]float64, len(bv))
		phase := make([]float64, len(bv))
		for j := range amp {
			amp[j] = o.sinAmp
			// Stagger tasks around the cycle so total demand stays
			// roughly level while the split shifts.
			phase[j] = 2 * math.Pi * float64(j) / float64(len(bv))
		}
		return scenario.NewSinusoid(bv, amp, o.sinPeriod, phase)

	case "burst":
		if o.burstTask < 0 || o.burstTask >= len(bv) {
			return nil, fmt.Errorf("burst task %d outside [0, %d)", o.burstTask, len(bv))
		}
		if o.burstScale <= 0 {
			return nil, fmt.Errorf("burst scale %v must be positive", o.burstScale)
		}
		peak := bv.Clone()
		peak[o.burstTask] = int(math.Round(float64(peak[o.burstTask]) * o.burstScale))
		if peak[o.burstTask] < 1 {
			peak[o.burstTask] = 1
		}
		return scenario.NewBurst(bv, peak, o.burstStart, o.burstEvery, o.burstLen)

	case "randomwalk":
		step := o.walkStep
		if step == 0 {
			step = bv.Min() / 10
			if step < 1 {
				step = 1
			}
		}
		if o.walkSpan <= 0 || o.walkSpan >= 1 {
			return nil, fmt.Errorf("walk span %v outside (0, 1)", o.walkSpan)
		}
		min := make(demand.Vector, len(bv))
		max := make(demand.Vector, len(bv))
		for j, d := range bv {
			min[j] = int(math.Floor(float64(d) * (1 - o.walkSpan)))
			if min[j] < 1 {
				min[j] = 1
			}
			max[j] = int(math.Ceil(float64(d) * (1 + o.walkSpan)))
		}
		return scenario.NewRandomWalk(bv, step, o.walkEvery, min, max, o.seed)

	case "markov":
		var regimes []demand.Vector
		if o.markovRegimes == "" {
			rev := make(demand.Vector, len(bv))
			for j := range bv {
				rev[j] = bv[len(bv)-1-j]
			}
			regimes = []demand.Vector{bv, rev}
		} else {
			for _, part := range strings.Split(o.markovRegimes, ";") {
				v, err := parseInts(part)
				if err != nil {
					return nil, fmt.Errorf("bad markov regime %q: %v", part, err)
				}
				regimes = append(regimes, demand.Vector(v))
			}
		}
		if o.markovStay < 0 || o.markovStay > 1 {
			return nil, fmt.Errorf("markov stay probability %v outside [0, 1]", o.markovStay)
		}
		p := make([][]float64, len(regimes))
		for i := range p {
			p[i] = make([]float64, len(regimes))
			for j := range p[i] {
				if i == j {
					p[i][j] = o.markovStay
				} else if len(regimes) > 1 {
					p[i][j] = (1 - o.markovStay) / float64(len(regimes)-1)
				}
			}
			if len(regimes) == 1 {
				p[i][i] = 1
			}
		}
		return scenario.NewMarkovModulated(regimes, p, o.markovDwell, 0, o.seed)

	case "trace":
		f, err := os.Open(o.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return scenario.ParseTrace(f)

	default:
		return nil, fmt.Errorf("unknown scenario family %q", o.family)
	}
}

// parseResizes parses a "at:to,at:to" resize schedule.
func parseResizes(s string) ([]taskalloc.SizeChange, error) {
	if s == "" {
		return nil, nil
	}
	var out []taskalloc.SizeChange
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(strings.TrimSpace(part), ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad resize %q: want at:to", part)
		}
		at, err := strconv.ParseUint(strings.TrimSpace(bits[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad resize round %q: %v", bits[0], err)
		}
		to, err := strconv.Atoi(strings.TrimSpace(bits[1]))
		if err != nil {
			return nil, fmt.Errorf("bad resize size %q: %v", bits[1], err)
		}
		out = append(out, taskalloc.SizeChange{At: at, To: to})
	}
	return out, nil
}
